// Quickstart: train the paper's headline design (OS-ELM-L2-Lipschitz) on
// CartPole-v0 and report when it solves the task.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"oselmrl/internal/env"
	"oselmrl/internal/harness"
	"oselmrl/internal/qnet"
)

func main() {
	// The agent uses the paper's §4.1 parameters: ε₁ = 0.7, ε₂ = 0.5,
	// δ = 0.5, UPDATE_STEP = 2, spectral normalization for α.
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 32)
	cfg.Seed = 4
	agent := qnet.MustNew(cfg)

	// Rewards reshaped to the [-1, 1] convention of §3.1: +1 per step,
	// -1 on failure.
	task := env.NewShaped(env.NewCartPoleV0(104), env.RewardSurvival)

	// The harness applies the 300-episode reset rule and the 100-episode
	// moving-average solve criterion.
	runCfg := harness.Defaults()
	runCfg.MaxEpisodes = 10000

	fmt.Println("Training OS-ELM-L2-Lipschitz (32 hidden units) on CartPole-v0 ...")
	res := harness.Run(agent, task, runCfg)

	if res.Solved {
		fmt.Printf("Solved in %d episodes (%d env steps, %d weight resets) — wall time %v\n",
			res.Episodes, res.TotalSteps, res.Resets, res.WallTime.Round(1e6))
	} else {
		fmt.Printf("Not solved within %d episodes (%d resets)\n", res.Episodes, res.Resets)
	}

	bd := harness.Breakdown(harness.DesignOSELML2Lipschitz, res.Counters)
	fmt.Println("\nModelled on-device (650 MHz Cortex-A9) execution-time breakdown:")
	fmt.Print(bd.Format())

	fmt.Printf("\nNetwork Lipschitz bound σmax(β) = %.3f (§3.3: bounded by spectral\n", agent.BetaSigmaMax())
	fmt.Println("normalization of α plus L2 regularization of β).")
}
