// Actor-critic: the paper's §5 future work — the OS-ELM on-device learning
// machinery composed into a one-step actor-critic (OS-ELM critic + linear
// softmax actor over frozen spectrally-normalized features), trained on
// CartPole-v0 with terminal-only rewards.
//
// Run:
//
//	go run ./examples/actorcritic
package main

import (
	"fmt"

	"oselmrl/internal/ac"
	"oselmrl/internal/env"
	"oselmrl/internal/replay"
)

func main() {
	cfg := ac.DefaultConfig(4, 2, 32)
	cfg.Seed = 4
	agent := ac.MustNew(cfg)
	// Terminal-only rewards keep the critic's TD error informative (see
	// the internal/ac package comment).
	task := env.NewShaped(env.NewCartPoleV0(54), env.RewardTerminal)

	fmt.Println("OS-ELM actor-critic on CartPole-v0 (future work, paper §5)")
	var window []float64
	best := 0.0
	for ep := 1; ep <= 2000; ep++ {
		s := task.Reset()
		steps := 0
		for {
			a := agent.SelectAction(s)
			ns, r, done := task.Step(a)
			if err := agent.Observe(replay.Transition{
				State: s, Action: a, Reward: r, NextState: ns, Done: done,
			}); err != nil {
				fmt.Println("update error:", err)
				return
			}
			s = ns
			steps++
			if done {
				break
			}
		}
		agent.EndEpisode(ep)
		window = append(window, float64(steps))
		if len(window) >= 100 {
			sum := 0.0
			for _, v := range window[len(window)-100:] {
				sum += v
			}
			if avg := sum / 100; avg > best {
				best = avg
			}
		}
		if ep%200 == 0 {
			sum := 0.0
			n := 100
			if len(window) < n {
				n = len(window)
			}
			for _, v := range window[len(window)-n:] {
				sum += v
			}
			fmt.Printf("episode %4d: 100-episode average %6.1f steps\n", ep, sum/float64(n))
		}
		// The §4.3 reset rule, applied when learning stalls.
		if ep%400 == 0 && best < 50 {
			agent.Reinitialize()
		}
	}
	fmt.Printf("\nBest 100-episode average: %.1f steps (random policy: ~20)\n", best)
	p := agent.Policy([]float64{0, 0, 0.05, 0})
	fmt.Printf("Softmax policy at probe state [0 0 0.05 0]: [%.2f %.2f]\n", p[0], p[1])
}
