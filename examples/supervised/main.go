// Supervised: OS-ELM as an online sequential regressor and anomaly
// detector — the on-device learning substrate (Tsukada et al., reference
// [3]) the paper builds its Q-networks on. Demonstrates (1) initial
// training on a small chunk, (2) rank-1 sequential updates tracking a
// drifting signal, (3) prediction-error anomaly flagging, and (4) the
// ONLAD-style autoencoder detector from internal/onlad.
//
// Run:
//
//	go run ./examples/supervised
package main

import (
	"fmt"
	"math"

	"oselmrl/internal/activation"
	"oselmrl/internal/elm"
	"oselmrl/internal/mat"
	"oselmrl/internal/onlad"
	"oselmrl/internal/oselm"
	"oselmrl/internal/rng"
)

func main() {
	r := rng.New(42)
	// No spectral normalization here: it bounds the Lipschitz constant for
	// RL stability (§3.3) at the cost of feature expressiveness, which a
	// plain regressor does not want.
	base := elm.NewModel(1, 48, 1, activation.Sigmoid, r, elm.DefaultOptions())
	model := oselm.New(base, 0.01)

	// Phase 1: initial training (Eq. 8) on 48 samples of y = sin(x).
	k := 48
	x := mat.Zeros(k, 1)
	y := mat.Zeros(k, 1)
	for i := 0; i < k; i++ {
		v := r.Uniform(-math.Pi, math.Pi)
		x.Set(i, 0, v)
		y.Set(i, 0, math.Sin(v))
	}
	if err := model.InitTrain(x, y); err != nil {
		fmt.Println("init training failed:", err)
		return
	}
	fmt.Printf("initial training on %d samples: test error %.4f\n", k, testError(model, r, 0))

	// Phase 2: the signal drifts to sin(x) + 0.5; sequential updates track
	// it without retraining on past data (the OS-ELM property of §2.2).
	for i := 0; i < 3000; i++ {
		v := r.Uniform(-math.Pi, math.Pi)
		if err := model.SeqTrainOne([]float64{v}, []float64{math.Sin(v) + 0.5}); err != nil {
			fmt.Println("sequential update failed:", err)
			return
		}
	}
	fmt.Printf("after 3000 sequential updates on drifted signal: test error %.4f\n",
		testError(model, r, 0.5))

	// Phase 3: anomaly detection by prediction error, as in the on-device
	// anomaly detector of [3].
	threshold := 0.15
	fmt.Println("\nanomaly detection (|prediction - observation| > threshold):")
	for _, probe := range []struct {
		x, y  float64
		label string
	}{
		{0.5, math.Sin(0.5) + 0.5, "nominal"},
		{-1.2, math.Sin(-1.2) + 0.5, "nominal"},
		{0.8, math.Sin(0.8) + 1.7, "anomalous (offset fault)"},
		{-0.3, -2.0, "anomalous (stuck sensor)"},
	} {
		pred := model.PredictOne([]float64{probe.x})[0]
		err := math.Abs(pred - probe.y)
		flag := "OK     "
		if err > threshold {
			flag = "ANOMALY"
		}
		fmt.Printf("  x=%+.2f observed=%+.3f predicted=%+.3f error=%.3f  %s  (%s)\n",
			probe.x, probe.y, pred, err, flag, probe.label)
	}

	autoencoderDemo(r)
}

// autoencoderDemo runs the ONLAD-style detector (reference [3]) on a
// 3-D correlated sensor stream: fit on normals, flag outliers, keep
// adapting on unflagged samples.
func autoencoderDemo(r *rng.RNG) {
	fmt.Println("\nONLAD autoencoder detector (internal/onlad):")
	cfg := onlad.DefaultConfig(3, 16)
	cfg.Seed = 9
	det := onlad.MustNew(cfg)

	sample := func() []float64 {
		base := r.Uniform(-1, 1)
		return []float64{base, 2 * base, -base + r.Normal(0, 0.02)}
	}
	calib := mat.Zeros(150, 3)
	for i := 0; i < 150; i++ {
		calib.SetRow(i, sample())
	}
	if err := det.Fit(calib); err != nil {
		fmt.Println("fit failed:", err)
		return
	}
	fmt.Printf("  calibrated threshold: %.4f\n", det.Threshold())
	probes := []struct {
		x     []float64
		label string
	}{
		{sample(), "nominal"},
		{sample(), "nominal"},
		{[]float64{0.5, 1.0, 2.0}, "broken correlation"},
		{[]float64{3, 6, -3}, "out of range"},
	}
	for _, p := range probes {
		score, anomaly, err := det.UpdateIfNormal(p.x)
		if err != nil {
			fmt.Println("update failed:", err)
			return
		}
		flag := "OK     "
		if anomaly {
			flag = "ANOMALY"
		}
		fmt.Printf("  score=%.4f  %s  (%s)\n", score, flag, p.label)
	}
}

// testError returns the mean absolute error against sin(x) + offset.
func testError(m *oselm.Model, r *rng.RNG, offset float64) float64 {
	var sum float64
	const n = 200
	for i := 0; i < n; i++ {
		v := r.Uniform(-math.Pi, math.Pi)
		sum += math.Abs(m.PredictOne([]float64{v})[0] - (math.Sin(v) + offset))
	}
	return sum / n
}
