// Comparison: run the paper's seven designs head-to-head on CartPole-v0 at
// one hidden width and print a Figure 5-style summary (who solves, in how
// many episodes, at what modelled device time).
//
// Run:
//
//	go run ./examples/comparison
package main

import (
	"fmt"

	"oselmrl/internal/env"
	"oselmrl/internal/harness"
)

func main() {
	const hidden = 32
	fmt.Printf("Seven-design comparison on CartPole-v0, %d hidden units\n", hidden)
	fmt.Printf("%-22s %-9s %-10s %-8s %-12s %s\n",
		"design", "solved", "episodes", "resets", "model time", "dominant phase")

	for _, d := range harness.AllDesigns {
		// DQN is backprop-per-step and slow in wall-clock; give it a small
		// episode budget in this demo (cmd/timetocomplete runs it fully).
		budget := 6000
		if d == harness.DesignDQN {
			budget = 1500
		}
		agent, err := harness.NewAgent(d, 4, 2, hidden, 2)
		if err != nil {
			fmt.Printf("%-22s construction failed: %v\n", d, err)
			continue
		}
		task := env.NewShaped(env.NewCartPoleV0(102), env.RewardSurvival)
		cfg := harness.RunConfigFor(d, harness.Defaults())
		cfg.MaxEpisodes = budget
		cfg.RecordCurve = false
		res := harness.Run(agent, task, cfg)

		bd := harness.Breakdown(d, res.Counters)
		var top string
		var topV float64
		for p, v := range bd {
			if v > topV {
				top, topV = string(p), v
			}
		}
		fmt.Printf("%-22s %-9v %-10d %-8d %9.2fs  %s (%.0f%%)\n",
			d, res.Solved, res.Episodes, res.Resets, bd.Total(), top, 100*topV/bd.Total())
	}

	fmt.Println("\nExpected shape (paper §4.4): FPGA fastest, then the regularized")
	fmt.Println("OS-ELM designs, with DQN slowest; OS-ELM time dominated by seq_train,")
	fmt.Println("DQN by train_DQN and its batch predictions.")
}
