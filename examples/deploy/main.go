// Deploy: the edge workflow the paper targets — train an OS-ELM Q-network,
// persist the learned weights (α, b, β and the inverse-covariance P) to a
// JSON snapshot, reload it in a fresh "deployment" agent, verify the
// greedy policies agree bit-for-bit, and continue sequential training on
// the device. OS-ELM makes this natural: the entire learner state is two
// small matrices, not an optimizer plus replay buffer.
//
// Run:
//
//	go run ./examples/deploy
package main

import (
	"bytes"
	"fmt"

	"oselmrl/internal/env"
	"oselmrl/internal/harness"
	"oselmrl/internal/persist"
	"oselmrl/internal/qnet"
	"oselmrl/internal/replay"
)

func main() {
	// Phase 1: train on the "host".
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 32)
	cfg.Seed = 4
	trainer := qnet.MustNew(cfg)
	task := env.NewShaped(env.NewCartPoleV0(104), env.RewardSurvival)
	runCfg := harness.Defaults()
	runCfg.MaxEpisodes = 3000
	runCfg.RecordCurve = false
	res := harness.Run(trainer, task, runCfg)
	fmt.Printf("training: solved=%v episodes=%d resets=%d\n", res.Solved, res.Episodes, res.Resets)

	// Phase 2: snapshot.
	var snapshot bytes.Buffer
	if err := persist.SaveAgent(&snapshot, trainer); err != nil {
		fmt.Println("save failed:", err)
		return
	}
	fmt.Printf("snapshot: %d bytes of JSON (two %dx%d matrices dominate: beta and P)\n",
		snapshot.Len(), cfg.Hidden, cfg.Hidden)

	// Phase 3: load on the "device".
	device, err := persist.LoadAgent(bytes.NewReader(snapshot.Bytes()))
	if err != nil {
		fmt.Println("load failed:", err)
		return
	}

	// Phase 4: verify behavioural identity on probe states.
	probeEnv := env.NewCartPoleV0(777)
	agree := 0
	const probes = 200
	s := probeEnv.Reset()
	for i := 0; i < probes; i++ {
		if trainer.GreedyAction(s) == device.GreedyAction(s) {
			agree++
		}
		ns, _, done := probeEnv.Step(i % 2)
		s = ns
		if done {
			s = probeEnv.Reset()
		}
	}
	fmt.Printf("greedy agreement on %d probe states: %d/%d\n", probes, agree, probes)

	// Phase 5: the deployed agent keeps learning sequentially on-device.
	eval := func(a *qnet.Agent) float64 {
		return harness.EvaluateGreedy(a, env.NewCartPoleV0(888), 20, true)
	}
	before := eval(device)
	devTask := env.NewShaped(env.NewCartPoleV0(999), env.RewardSurvival)
	st := devTask.Reset()
	for i := 0; i < 5000; i++ {
		act := device.SelectAction(st)
		ns, r, done := devTask.Step(act)
		if err := device.Observe(replay.Transition{State: st, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
			fmt.Println("on-device update error:", err)
			return
		}
		st = ns
		if done {
			st = devTask.Reset()
		}
	}
	fmt.Printf("greedy steps/episode before on-device fine-tuning: %.1f, after: %.1f\n",
		before, eval(device))
}
