// FPGA simulation: train the fixed-point (Q20) OS-ELM Q-Network on the
// simulated PYNQ-Z1 core, then report the resource utilization of the
// design, the datapath cycle budget, and the quantization error of the
// fixed-point model against its float twin.
//
// Run:
//
//	go run ./examples/fpgasim
package main

import (
	"fmt"

	"oselmrl/internal/env"
	"oselmrl/internal/fpga"
	"oselmrl/internal/harness"
	"oselmrl/internal/qnet"
	"oselmrl/internal/timing"
)

func main() {
	const hidden = 64

	// Resource check first — exactly what Vivado synthesis gates on.
	u := fpga.EstimateResources(5, hidden)
	fmt.Printf("Design: OS-ELM Q-Network core, %d hidden units, 32-bit Q20 fixed point\n", hidden)
	fmt.Printf("Target: %s\n", fpga.XC7Z020.Name)
	b, d, f, l := u.Percent(fpga.XC7Z020)
	fmt.Printf("Resources: BRAM %.2f%%  DSP %.2f%%  FF %.2f%%  LUT %.2f%%\n\n", b, d, f, l)

	core := fpga.NewCore(5, hidden, 1, fpga.DefaultCycleModel())
	fmt.Printf("Cycle budget at 125 MHz: predict %d cycles (%.1f us), seq_train %d cycles (%.1f us)\n\n",
		core.PredictCycles(), float64(core.PredictCycles())/125,
		core.SeqTrainCycles(), float64(core.SeqTrainCycles())/125)

	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, hidden)
	cfg.Seed = 4
	agent := fpga.MustNewAgent(cfg, fpga.DefaultCycleModel())
	task := env.NewShaped(env.NewCartPoleV0(104), env.RewardSurvival)
	runCfg := harness.Defaults()
	runCfg.MaxEpisodes = 8000
	runCfg.RecordCurve = false

	fmt.Println("Training the fixed-point agent on CartPole-v0 ...")
	res := harness.Run(agent, task, runCfg)
	if res.Solved {
		fmt.Printf("Solved in %d episodes (%d resets)\n", res.Episodes, res.Resets)
	} else {
		fmt.Printf("Not solved in %d episodes (%d resets) — the paper averages over\n", res.Episodes, res.Resets)
		fmt.Println("20 trials; success depends on initial weights (seed).")
	}

	bd := timing.ModelMixed(res.Counters, fpga.PhaseProfiles(), timing.CortexA9Init)
	fmt.Println("\nModelled execution-time breakdown (PL at 125 MHz, init on CPU):")
	fmt.Print(bd.Format())
	fmt.Printf("\nDatapath cycles consumed: %d (seq_train %.0f + predict_seq %.0f)\n",
		agent.Core().Cycles(),
		res.Counters.Work(timing.PhaseSeqTrain),
		res.Counters.Work(timing.PhasePredictSeq))
}
