// Package oselmrl is a Go reproduction of "An FPGA-Based On-Device
// Reinforcement Learning Approach using Online Sequential Learning"
// (Watanabe, Tsukada, Matsutani): backpropagation-free Q-learning built on
// OS-ELM with spectral normalization and L2 regularization, a conventional
// DQN baseline, a bit-accurate fixed-point simulator of the paper's
// PYNQ-Z1 core (Q20 by default, any Qm.f format via NewAgentQ), and the
// experiment harness that regenerates the paper's tables and figures.
//
// This package is the public facade over the internal implementation:
//
//	agent, _ := oselmrl.NewAgent(oselmrl.DesignOSELML2Lipschitz, 4, 2, 64, seed)
//	task := oselmrl.NewCartPole(seed)
//	result := oselmrl.Run(agent, task, oselmrl.DefaultRunConfig())
//
// The internal packages remain available for fine-grained use: internal/elm
// and internal/oselm implement the training algorithms, internal/qnet the
// Q-network agents (paper Algorithm 1), internal/dqn the baseline,
// internal/fpga the fixed-point core with cycle counting and the Table 3
// resource model, internal/env the CartPole/MountainCar/Acrobot/GridWorld/
// Pendulum environments, and internal/harness the experiment driver.
package oselmrl

import (
	"oselmrl/internal/env"
	"oselmrl/internal/fixed"
	"oselmrl/internal/harness"
	"oselmrl/internal/timing"
)

// Design names the paper's seven compared designs (§4.1).
type Design = harness.Design

// The seven designs, in the paper's order.
const (
	DesignELM              = harness.DesignELM
	DesignOSELM            = harness.DesignOSELM
	DesignOSELML2          = harness.DesignOSELML2
	DesignOSELMLipschitz   = harness.DesignOSELMLipschitz
	DesignOSELML2Lipschitz = harness.DesignOSELML2Lipschitz
	DesignDQN              = harness.DesignDQN
	DesignFPGA             = harness.DesignFPGA
)

// AllDesigns lists the seven designs in the paper's order.
var AllDesigns = harness.AllDesigns

// Agent is the contract every design implements.
type Agent = harness.Agent

// Env is a discrete-action episodic environment.
type Env = env.Env

// RunConfig controls a training run (solve criterion, reset rule, cutoff).
type RunConfig = harness.Config

// Result summarizes one training run.
type Result = harness.Result

// Breakdown maps execution phases to modelled device seconds.
type Breakdown = timing.Breakdown

// QFormat selects the fixed-point format of the FPGA design's datapath: a
// signed 32-bit word with Frac fractional bits (Qm.f with m = 31−Frac).
// The zero value is the paper's Q20 default.
type QFormat = fixed.QFormat

// Predeclared formats: the paper's Q20 default plus the wordlength-sweep
// neighbours.
var (
	Q16 = fixed.Q16
	Q20 = fixed.Q20
	Q24 = fixed.Q24
)

// ParseQFormat parses a format name ("Q20", "q20" or "20").
func ParseQFormat(s string) (QFormat, error) { return fixed.ParseQFormat(s) }

// NewAgent constructs the named design with the paper's hyperparameters
// for an environment with obsSize observations and actions actions, Ñ =
// hidden, seeded deterministically.
func NewAgent(d Design, obsSize, actions, hidden int, seed uint64) (Agent, error) {
	return harness.NewAgent(d, obsSize, actions, hidden, seed)
}

// NewAgentQ is NewAgent with a selectable fixed-point format for the FPGA
// design. Only DesignFPGA accepts a non-default format — the software
// designs run in float64. Storage, cycle counts and the Table 3 resource
// model are format-invariant: only the binary point moves.
func NewAgentQ(d Design, obsSize, actions, hidden int, seed uint64, q QFormat) (Agent, error) {
	return harness.NewAgentQ(d, obsSize, actions, hidden, seed, q)
}

// NewCartPole returns the paper's evaluation task: CartPole-v0 with the
// [-1, 1] reward convention of §3.1 (+1 per step, -1 on failure).
func NewCartPole(seed uint64) Env {
	return env.NewShaped(env.NewCartPoleV0(seed), env.RewardSurvival)
}

// DefaultRunConfig returns the paper's run settings: 50,000-episode
// cutoff, 300-episode reset rule, solved at a 100-episode average of 195.
func DefaultRunConfig() RunConfig { return harness.Defaults() }

// RunConfigFor adapts a run configuration to a design (DQN runs without
// the reset rule, matching §4.3).
func RunConfigFor(d Design, base RunConfig) RunConfig {
	return harness.RunConfigFor(d, base)
}

// Run trains agent on e until solved or cut off.
func Run(agent Agent, e Env, cfg RunConfig) *Result { return harness.Run(agent, e, cfg) }

// ModelBreakdown converts a finished run's work counters into the paper's
// Figure 5 per-phase device-time breakdown for the given design.
func ModelBreakdown(d Design, r *Result) Breakdown {
	return harness.Breakdown(d, r.Counters)
}
