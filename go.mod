module oselmrl

go 1.22
