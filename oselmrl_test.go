package oselmrl_test

import (
	"testing"

	"oselmrl"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	agent, err := oselmrl.NewAgent(oselmrl.DesignOSELML2Lipschitz, 4, 2, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	task := oselmrl.NewCartPole(104)
	cfg := oselmrl.RunConfigFor(oselmrl.DesignOSELML2Lipschitz, oselmrl.DefaultRunConfig())
	cfg.MaxEpisodes = 200
	cfg.RecordCurve = true
	res := oselmrl.Run(agent, task, cfg)
	if res.Episodes == 0 || res.TotalSteps == 0 {
		t.Fatal("run produced no episodes")
	}
	if len(res.Curve) != res.Episodes {
		t.Fatalf("curve %d vs episodes %d", len(res.Curve), res.Episodes)
	}
	bd := oselmrl.ModelBreakdown(oselmrl.DesignOSELML2Lipschitz, res)
	if bd.Total() <= 0 {
		t.Fatal("empty breakdown")
	}
}

func TestFacadeAllDesignsConstruct(t *testing.T) {
	for _, d := range oselmrl.AllDesigns {
		if _, err := oselmrl.NewAgent(d, 4, 2, 32, 1); err != nil {
			t.Errorf("%s: %v", d, err)
		}
	}
}
