// Package onlad implements the on-device learning anomaly detector the
// paper builds on (reference [3]: Tsukada, Kondo, Matsutani, "A Neural
// Network-Based On-device Learning Anomaly Detector for Edge Devices",
// IEEE TC 2020) — the substrate whose "low-cost OS-ELM core optimized to
// batch size 1" the paper's §4.2 extends into the Q-network core.
//
// The detector is an OS-ELM *autoencoder*: a single-hidden-layer network
// trained to reconstruct its input (targets = inputs). The anomaly score
// of a sample is its reconstruction error ‖x − x̂‖; scores far above the
// normal regime's distribution flag anomalies. Training is sequential
// (rank-1, batch size 1), so the detector adapts on-device to
// concept drift — with an optional forgetting factor to track
// non-stationary normals, mirroring the FOS-ELM extension.
package onlad

import (
	"fmt"
	"math"

	"oselmrl/internal/activation"
	"oselmrl/internal/elm"
	"oselmrl/internal/mat"
	"oselmrl/internal/oselm"
	"oselmrl/internal/rng"
	"oselmrl/internal/stats"
)

// Config holds the detector's hyperparameters.
type Config struct {
	// InputSize is the feature dimension.
	InputSize int
	// Hidden is the autoencoder's hidden width; typically below InputSize
	// for a compressing bottleneck, but OS-ELM also works overcomplete.
	Hidden int
	// Delta is the ReOS-ELM L2 regularization for initial training.
	Delta float64
	// Forgetting is the FOS-ELM factor λ in (0, 1]; 1 disables forgetting.
	Forgetting float64
	// Activation is the hidden activation (sigmoid is the classic choice).
	Activation activation.Func
	// Seed drives the random frozen weights.
	Seed uint64
	// ThresholdQuantile sets the anomaly threshold at this quantile of the
	// calibration scores (e.g. 0.99).
	ThresholdQuantile float64
}

// DefaultConfig returns the standard detector settings.
func DefaultConfig(inputSize, hidden int) Config {
	return Config{
		InputSize:         inputSize,
		Hidden:            hidden,
		Delta:             0.05,
		Forgetting:        1,
		Activation:        activation.Sigmoid,
		Seed:              1,
		ThresholdQuantile: 0.99,
	}
}

// Detector is the OS-ELM autoencoder anomaly detector.
type Detector struct {
	cfg   Config
	model *oselm.Model

	calibScores []float64
	threshold   float64
}

// New builds a detector.
func New(cfg Config) (*Detector, error) {
	if cfg.InputSize <= 0 || cfg.Hidden <= 0 {
		return nil, fmt.Errorf("onlad: invalid sizes in=%d hidden=%d", cfg.InputSize, cfg.Hidden)
	}
	if cfg.Forgetting <= 0 || cfg.Forgetting > 1 {
		return nil, fmt.Errorf("onlad: forgetting factor %g outside (0, 1]", cfg.Forgetting)
	}
	if cfg.ThresholdQuantile <= 0 || cfg.ThresholdQuantile >= 1 {
		return nil, fmt.Errorf("onlad: threshold quantile %g outside (0, 1)", cfg.ThresholdQuantile)
	}
	if cfg.Activation.F == nil {
		cfg.Activation = activation.Sigmoid
	}
	base := elm.NewModel(cfg.InputSize, cfg.Hidden, cfg.InputSize,
		cfg.Activation, rng.New(cfg.Seed), elm.DefaultOptions())
	return &Detector{cfg: cfg, model: oselm.New(base, cfg.Delta)}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Detector {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Fit performs the initial training on a chunk of normal samples
// (autoencoder targets = inputs) and calibrates the anomaly threshold on
// the same chunk's reconstruction errors.
func (d *Detector) Fit(normal *mat.Dense) error {
	if normal.Cols() != d.cfg.InputSize {
		return fmt.Errorf("onlad: samples have %d features, detector expects %d",
			normal.Cols(), d.cfg.InputSize)
	}
	if err := d.model.InitTrain(normal, normal); err != nil {
		return fmt.Errorf("onlad: initial training: %w", err)
	}
	d.calibScores = d.calibScores[:0]
	for i := 0; i < normal.Rows(); i++ {
		d.calibScores = append(d.calibScores, d.Score(normal.Row(i)))
	}
	d.threshold = stats.Percentile(d.calibScores, d.cfg.ThresholdQuantile*100)
	return nil
}

// Fitted reports whether initial training has completed.
func (d *Detector) Fitted() bool { return d.model.Initialized() }

// Score returns the reconstruction error ‖x − x̂‖₂ — the anomaly score.
func (d *Detector) Score(x []float64) float64 {
	rec := d.model.PredictOne(x)
	var sum float64
	for i, v := range x {
		diff := v - rec[i]
		sum += diff * diff
	}
	return math.Sqrt(sum)
}

// Threshold returns the calibrated anomaly threshold.
func (d *Detector) Threshold() float64 { return d.threshold }

// SetThreshold overrides the calibrated threshold.
func (d *Detector) SetThreshold(t float64) { d.threshold = t }

// IsAnomaly reports whether x's score exceeds the threshold.
func (d *Detector) IsAnomaly(x []float64) bool { return d.Score(x) > d.threshold }

// Update performs one sequential training step on a sample assumed normal
// — the on-device adaptation loop. With Forgetting < 1 old normals decay,
// letting the detector track drifting regimes.
func (d *Detector) Update(x []float64) error {
	if !d.Fitted() {
		return fmt.Errorf("onlad: Update before Fit")
	}
	if d.cfg.Forgetting < 1 {
		return d.model.SeqTrainOneForgetting(x, x, d.cfg.Forgetting)
	}
	return d.model.SeqTrainOne(x, x)
}

// UpdateIfNormal scores x first and only trains on it when it is not
// flagged — the guard [3] uses so anomalies do not poison the model.
// It returns the score and whether x was flagged.
func (d *Detector) UpdateIfNormal(x []float64) (score float64, anomaly bool, err error) {
	score = d.Score(x)
	anomaly = score > d.threshold
	if !anomaly {
		err = d.Update(x)
	}
	return score, anomaly, err
}

// Model exposes the underlying OS-ELM (tests, persistence).
func (d *Detector) Model() *oselm.Model { return d.model }
