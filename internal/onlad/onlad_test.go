package onlad

import (
	"math"
	"testing"

	"oselmrl/internal/mat"
	"oselmrl/internal/rng"
)

// normalChunk draws samples from the "normal" regime: points on a noisy
// 2-D circle embedded in 4 dimensions.
func normalChunk(r *rng.RNG, n int, offset float64) *mat.Dense {
	out := mat.Zeros(n, 4)
	for i := 0; i < n; i++ {
		theta := r.Uniform(0, 2*math.Pi)
		out.SetRow(i, []float64{
			math.Cos(theta) + r.Normal(0, 0.02) + offset,
			math.Sin(theta) + r.Normal(0, 0.02),
			0.5*math.Cos(theta) + r.Normal(0, 0.02),
			0.5*math.Sin(theta) + r.Normal(0, 0.02),
		})
	}
	return out
}

func fitted(t *testing.T, cfg Config) *Detector {
	t.Helper()
	d := MustNew(cfg)
	r := rng.New(cfg.Seed + 100)
	if err := d.Fit(normalChunk(r, 200, 0)); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{InputSize: 0, Hidden: 4, Forgetting: 1, ThresholdQuantile: 0.9},
		{InputSize: 4, Hidden: 0, Forgetting: 1, ThresholdQuantile: 0.9},
		{InputSize: 4, Hidden: 4, Forgetting: 0, ThresholdQuantile: 0.9},
		{InputSize: 4, Hidden: 4, Forgetting: 1, ThresholdQuantile: 1.5},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDetectsAnomalies(t *testing.T) {
	cfg := DefaultConfig(4, 24)
	cfg.Seed = 2
	d := fitted(t, cfg)
	if !d.Fitted() || d.Threshold() <= 0 {
		t.Fatal("fit failed")
	}
	r := rng.New(3)
	// Normal samples: almost none flagged (threshold at the 99th pct).
	flagged := 0
	const n = 300
	for i := 0; i < n; i++ {
		x := normalChunk(r, 1, 0).Row(0)
		if d.IsAnomaly(x) {
			flagged++
		}
	}
	if rate := float64(flagged) / n; rate > 0.05 {
		t.Errorf("false positive rate %v on normal data", rate)
	}
	// Gross anomalies: all flagged.
	for i := 0; i < 50; i++ {
		x := []float64{r.Uniform(5, 10), r.Uniform(5, 10), r.Uniform(-10, -5), 0}
		if !d.IsAnomaly(x) {
			t.Fatalf("missed anomaly %v (score %v, threshold %v)", x, d.Score(x), d.Threshold())
		}
	}
}

func TestUpdateBeforeFitErrors(t *testing.T) {
	d := MustNew(DefaultConfig(4, 8))
	if err := d.Update([]float64{0, 0, 0, 0}); err == nil {
		t.Error("Update before Fit must fail")
	}
}

func TestFitShapeError(t *testing.T) {
	d := MustNew(DefaultConfig(4, 8))
	if err := d.Fit(mat.Zeros(10, 3)); err == nil {
		t.Error("wrong feature width must fail")
	}
}

// TestDriftAdaptation: with forgetting enabled, the detector follows a
// shifted normal regime after sequential updates; without, it lags.
func TestDriftAdaptation(t *testing.T) {
	run := func(lambda float64) float64 {
		cfg := DefaultConfig(4, 24)
		cfg.Seed = 4
		cfg.Forgetting = lambda
		d := MustNew(cfg)
		r := rng.New(5)
		if err := d.Fit(normalChunk(r, 200, 0)); err != nil {
			t.Fatal(err)
		}
		// The regime drifts: offset 1.5 on the first coordinate. Train on
		// the new normal.
		for i := 0; i < 1500; i++ {
			if err := d.Update(normalChunk(r, 1, 1.5).Row(0)); err != nil {
				t.Fatal(err)
			}
		}
		// Mean score on the NEW normal regime (lower = better adapted).
		var sum float64
		const n = 200
		for i := 0; i < n; i++ {
			sum += d.Score(normalChunk(r, 1, 1.5).Row(0))
		}
		return sum / n
	}
	plain := run(1)
	forgetting := run(0.99)
	if forgetting >= plain {
		t.Errorf("forgetting (%v) should adapt better than plain (%v)", forgetting, plain)
	}
}

// TestUpdateIfNormalGuards: anomalous samples must not be trained on.
func TestUpdateIfNormalGuards(t *testing.T) {
	cfg := DefaultConfig(4, 24)
	cfg.Seed = 6
	d := fitted(t, cfg)
	before := d.Model().Updates()
	// A gross anomaly: flagged, not trained.
	score, anomaly, err := d.UpdateIfNormal([]float64{9, 9, -9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !anomaly || score <= d.Threshold() {
		t.Fatal("gross anomaly must be flagged")
	}
	if d.Model().Updates() != before {
		t.Error("anomaly must not trigger training")
	}
	// A normal sample: trained.
	r := rng.New(7)
	_, anomaly, err = d.UpdateIfNormal(normalChunk(r, 1, 0).Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if anomaly {
		t.Skip("unlucky normal sample above the 99th percentile")
	}
	if d.Model().Updates() != before+1 {
		t.Error("normal sample must train the model")
	}
}

func TestSetThreshold(t *testing.T) {
	cfg := DefaultConfig(4, 8)
	d := fitted(t, cfg)
	d.SetThreshold(1e9)
	if d.IsAnomaly([]float64{100, 100, 100, 100}) {
		t.Error("threshold override ignored")
	}
}
