package persist

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oselmrl/internal/activation"
	"oselmrl/internal/elm"
	"oselmrl/internal/env"
	"oselmrl/internal/mat"
	"oselmrl/internal/oselm"
	"oselmrl/internal/qnet"
	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
)

func trainedModel(t *testing.T) *oselm.Model {
	t.Helper()
	r := rng.New(1)
	base := elm.NewModel(3, 12, 2, activation.Sigmoid, r, elm.DefaultOptions())
	m := oselm.New(base, 0.4)
	x := mat.Zeros(15, 3)
	y := mat.Zeros(15, 2)
	r.FillUniform(x.RawData(), -1, 1)
	r.FillUniform(y.RawData(), -1, 1)
	if err := m.InitTrain(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		xi := make([]float64, 3)
		r.FillUniform(xi, -1, 1)
		if err := m.SeqTrainOne(xi, []float64{r.Float64(), r.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestOSELMRoundTrip(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := SaveOSELM(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadOSELM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Initialized() {
		t.Fatal("restored model must be initialized")
	}
	if got.Delta != m.Delta || got.Updates() != m.Updates() {
		t.Error("hyperparameters not restored")
	}
	// Predictions identical.
	probe := []float64{0.3, -0.2, 0.9}
	a, b := m.PredictOne(probe), got.PredictOne(probe)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction[%d]: %v vs %v", i, a[i], b[i])
		}
	}
	// Restored model can continue sequential training.
	if err := got.SeqTrainOne(probe, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
}

func TestOSELMUntrainedRoundTrip(t *testing.T) {
	base := elm.NewModel(2, 6, 1, activation.ReLU, rng.New(2), elm.DefaultOptions())
	m := oselm.New(base, 0.1)
	var buf bytes.Buffer
	if err := SaveOSELM(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadOSELM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Initialized() {
		t.Error("untrained model must restore as untrained")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadOSELM(strings.NewReader("{not json")); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := LoadOSELM(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("wrong version must fail")
	}
	// Inconsistent dimensions.
	bad := `{"version":1,"input_size":2,"hidden_size":3,"output_size":1,
		"activation":"relu","alpha":{"rows":2,"cols":2,"data":[1,2,3,4]},
		"bias":[0,0,0],"beta":{"rows":3,"cols":1,"data":[1,2,3]}}`
	if _, err := LoadOSELM(strings.NewReader(bad)); err == nil {
		t.Error("inconsistent dims must fail")
	}
	// Unknown activation.
	bad2 := strings.Replace(bad, `"relu"`, `"mystery"`, 1)
	if _, err := LoadOSELM(strings.NewReader(bad2)); err == nil {
		t.Error("unknown activation must fail")
	}
}

// TestAgentRoundTrip: a trained Q-network agent survives save/load with
// identical greedy behaviour, and can keep learning.
func TestAgentRoundTrip(t *testing.T) {
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 16)
	cfg.Seed = 5
	agent := qnet.MustNew(cfg)

	// Train for a while on CartPole.
	e := env.NewShaped(env.NewCartPoleV0(105), env.RewardSurvival)
	s := e.Reset()
	for i := 0; i < 2000; i++ {
		act := agent.SelectAction(s)
		ns, r, done := e.Step(act)
		if err := agent.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
			t.Fatal(err)
		}
		s = ns
		if done {
			s = e.Reset()
		}
	}
	if !agent.Trained() {
		t.Fatal("agent should be trained")
	}

	var buf bytes.Buffer
	if err := SaveAgent(&buf, agent); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadAgent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Name() != agent.Name() {
		t.Errorf("restored design %q", restored.Name())
	}
	if !restored.Trained() {
		t.Fatal("restored agent must be trained")
	}
	// Greedy decisions must agree across a batch of probe states.
	r := rng.New(9)
	for i := 0; i < 100; i++ {
		probe := make([]float64, 4)
		r.FillUniform(probe, -1, 1)
		if agent.GreedyAction(probe) != restored.GreedyAction(probe) {
			t.Fatalf("greedy action mismatch at probe %d", i)
		}
	}
	// σmax(β) identical.
	if math.Abs(agent.BetaSigmaMax()-restored.BetaSigmaMax()) > 1e-9 {
		t.Error("restored beta differs")
	}
	// The restored agent continues learning without error.
	s = e.Reset()
	for i := 0; i < 100; i++ {
		act := restored.SelectAction(s)
		ns, rw, done := e.Step(act)
		if err := restored.Observe(replay.Transition{State: s, Action: act, Reward: rw, NextState: ns, Done: done}); err != nil {
			t.Fatal(err)
		}
		s = ns
		if done {
			s = e.Reset()
		}
	}
}

func TestAgentSnapshotIsJSON(t *testing.T) {
	cfg := qnet.DefaultConfig(qnet.VariantOSELM, 4, 2, 8)
	agent := qnet.MustNew(cfg)
	var buf bytes.Buffer
	if err := SaveAgent(&buf, agent); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, key := range []string{`"config"`, `"theta1"`, `"theta2"`, `"alpha"`, `"hidden":8`} {
		if !strings.Contains(out, key) {
			t.Errorf("snapshot missing %s", key)
		}
	}
}

func TestLoadAgentErrorPaths(t *testing.T) {
	if _, err := LoadAgent(strings.NewReader("{bad")); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := LoadAgent(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("wrong version must fail")
	}
	if _, err := LoadAgent(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("missing networks must fail")
	}
	// A valid snapshot with corrupted theta dimensions must be rejected by
	// RestoreModels.
	cfg := qnet.DefaultConfig(qnet.VariantOSELM, 4, 2, 8)
	agent := qnet.MustNew(cfg)
	var buf bytes.Buffer
	if err := SaveAgent(&buf, agent); err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(buf.String(), `"hidden":8`, `"hidden":16`, 1)
	if _, err := LoadAgent(strings.NewReader(corrupted)); err == nil {
		t.Error("config/network dimension mismatch must fail")
	}
}

func TestDecodeMatrixErrors(t *testing.T) {
	if _, err := decodeMatrix(&matrixJSON{Rows: 2, Cols: 2, Data: []float64{1}}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := decodeMatrix(&matrixJSON{Rows: -1, Cols: 2}); err == nil {
		t.Error("negative dims must fail")
	}
	m, err := decodeMatrix(nil)
	if err != nil || m != nil {
		t.Error("nil payload must decode to nil")
	}
}

func TestAgentFileRoundTrip(t *testing.T) {
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2, 4, 2, 8)
	agent := qnet.MustNew(cfg)
	path := filepath.Join(t.TempDir(), "agent.json")
	if err := SaveAgentFile(path, agent); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadAgentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Name() != agent.Name() || restored.Config().Hidden != 8 {
		t.Errorf("restored %s hidden=%d", restored.Name(), restored.Config().Hidden)
	}
}

func TestLoadAgentFileErrors(t *testing.T) {
	if _, err := LoadAgentFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	// A future format version must be rejected with the path in the error.
	path := filepath.Join(t.TempDir(), "v999.json")
	agent := qnet.MustNew(qnet.DefaultConfig(qnet.VariantOSELM, 4, 2, 8))
	var buf bytes.Buffer
	if err := SaveAgent(&buf, agent); err != nil {
		t.Fatal(err)
	}
	snap := strings.Replace(buf.String(), `{"version":1,`, `{"version":999,`, 1)
	if !strings.Contains(snap, `"version":999`) {
		t.Fatal("fixture did not rewrite the version field")
	}
	if err := os.WriteFile(path, []byte(snap), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadAgentFile(path)
	if err == nil {
		t.Fatal("version 999 snapshot must be rejected")
	}
	if !strings.Contains(err.Error(), "version 999") || !strings.Contains(err.Error(), path) {
		t.Errorf("error should name the version and path: %v", err)
	}
}
