// Package persist serializes trained models to JSON so an agent trained in
// one process can be deployed in another — the edge-device workflow the
// paper targets: train on-device or on a host, persist β and P, and resume
// sequential training anywhere. The encoding is self-describing (versioned
// with dimensions and hyperparameters) and uses the standard library only.
package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"oselmrl/internal/activation"
	"oselmrl/internal/elm"
	"oselmrl/internal/mat"
	"oselmrl/internal/oselm"
	"oselmrl/internal/qnet"
)

// FormatVersion guards against loading snapshots from incompatible builds.
const FormatVersion = 1

// matrixJSON is a dims + row-major payload encoding of mat.Dense.
type matrixJSON struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

func encodeMatrix(m *mat.Dense) *matrixJSON {
	if m == nil {
		return nil
	}
	r, c := m.Dims()
	data := make([]float64, len(m.RawData()))
	copy(data, m.RawData())
	return &matrixJSON{Rows: r, Cols: c, Data: data}
}

func decodeMatrix(j *matrixJSON) (*mat.Dense, error) {
	if j == nil {
		return nil, nil
	}
	if j.Rows < 0 || j.Cols < 0 || len(j.Data) != j.Rows*j.Cols {
		return nil, fmt.Errorf("persist: matrix payload %dx%d with %d values",
			j.Rows, j.Cols, len(j.Data))
	}
	data := make([]float64, len(j.Data))
	copy(data, j.Data)
	return mat.New(j.Rows, j.Cols, data), nil
}

// oselmJSON is a complete OS-ELM snapshot.
type oselmJSON struct {
	Version    int         `json:"version"`
	InputSize  int         `json:"input_size"`
	HiddenSize int         `json:"hidden_size"`
	OutputSize int         `json:"output_size"`
	Activation string      `json:"activation"`
	Delta      float64     `json:"delta"`
	Updates    int         `json:"updates"`
	Alpha      *matrixJSON `json:"alpha"`
	Bias       []float64   `json:"bias"`
	Beta       *matrixJSON `json:"beta"`
	P          *matrixJSON `json:"p,omitempty"`
}

func snapshotOSELM(m *oselm.Model) *oselmJSON {
	return &oselmJSON{
		Version:    FormatVersion,
		InputSize:  m.InputSize(),
		HiddenSize: m.HiddenSize(),
		OutputSize: m.OutputSize(),
		Activation: m.Act.Name,
		Delta:      m.Delta,
		Updates:    m.Updates(),
		Alpha:      encodeMatrix(m.Alpha),
		Bias:       append([]float64(nil), m.Bias...),
		Beta:       encodeMatrix(m.Beta),
		P:          encodeMatrix(m.P),
	}
}

func restoreOSELM(j *oselmJSON) (*oselm.Model, error) {
	if j.Version != FormatVersion {
		return nil, fmt.Errorf("persist: snapshot version %d, this build reads %d", j.Version, FormatVersion)
	}
	act, ok := activation.ByName(j.Activation)
	if !ok {
		return nil, fmt.Errorf("persist: unknown activation %q", j.Activation)
	}
	alpha, err := decodeMatrix(j.Alpha)
	if err != nil {
		return nil, err
	}
	beta, err := decodeMatrix(j.Beta)
	if err != nil {
		return nil, err
	}
	p, err := decodeMatrix(j.P)
	if err != nil {
		return nil, err
	}
	if alpha == nil || beta == nil {
		return nil, fmt.Errorf("persist: snapshot missing alpha or beta")
	}
	if alpha.Rows() != j.InputSize || alpha.Cols() != j.HiddenSize ||
		beta.Rows() != j.HiddenSize || beta.Cols() != j.OutputSize ||
		len(j.Bias) != j.HiddenSize {
		return nil, fmt.Errorf("persist: snapshot dimensions inconsistent")
	}
	base := elm.RestoreModel(alpha, append([]float64(nil), j.Bias...), beta, act)
	return oselm.Restore(base, p, j.Delta, j.Updates)
}

// SaveOSELM writes a JSON snapshot of m.
func SaveOSELM(w io.Writer, m *oselm.Model) error {
	enc := json.NewEncoder(w)
	return enc.Encode(snapshotOSELM(m))
}

// LoadOSELM reads a JSON snapshot produced by SaveOSELM.
func LoadOSELM(r io.Reader) (*oselm.Model, error) {
	var j oselmJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("persist: decoding OS-ELM snapshot: %w", err)
	}
	return restoreOSELM(&j)
}

// configJSON mirrors qnet.Config without the activation function value
// (func types cannot be marshalled; the activation name rides inside the
// model snapshots).
type configJSON struct {
	Variant         int     `json:"variant"`
	ObservationSize int     `json:"observation_size"`
	ActionCount     int     `json:"action_count"`
	Hidden          int     `json:"hidden"`
	Epsilon1        float64 `json:"epsilon1"`
	ExploreDecay    float64 `json:"explore_decay"`
	Epsilon2        float64 `json:"epsilon2"`
	Gamma           float64 `json:"gamma"`
	Delta           float64 `json:"delta"`
	UpdateEvery     int     `json:"update_every"`
	ClipLow         float64 `json:"clip_low"`
	ClipHigh        float64 `json:"clip_high"`
	Seed            uint64  `json:"seed"`
	InitLow         float64 `json:"init_low"`
	InitHigh        float64 `json:"init_high"`
}

func encodeConfig(c qnet.Config) configJSON {
	return configJSON{
		Variant:         int(c.Variant),
		ObservationSize: c.ObservationSize,
		ActionCount:     c.ActionCount,
		Hidden:          c.Hidden,
		Epsilon1:        c.Epsilon1,
		ExploreDecay:    c.ExploreDecay,
		Epsilon2:        c.Epsilon2,
		Gamma:           c.Gamma,
		Delta:           c.Delta,
		UpdateEvery:     c.UpdateEvery,
		ClipLow:         c.ClipLow,
		ClipHigh:        c.ClipHigh,
		Seed:            c.Seed,
		InitLow:         c.InitLow,
		InitHigh:        c.InitHigh,
	}
}

func decodeConfig(j configJSON) qnet.Config {
	return qnet.Config{
		Variant:         qnet.Variant(j.Variant),
		ObservationSize: j.ObservationSize,
		ActionCount:     j.ActionCount,
		Hidden:          j.Hidden,
		Epsilon1:        j.Epsilon1,
		ExploreDecay:    j.ExploreDecay,
		Epsilon2:        j.Epsilon2,
		Gamma:           j.Gamma,
		Delta:           j.Delta,
		UpdateEvery:     j.UpdateEvery,
		ClipLow:         j.ClipLow,
		ClipHigh:        j.ClipHigh,
		Seed:            j.Seed,
		InitLow:         j.InitLow,
		InitHigh:        j.InitHigh,
	}
}

// agentJSON is a complete Q-network agent snapshot: configuration plus both
// networks (θ1 online, θ2 target).
type agentJSON struct {
	Version int        `json:"version"`
	Config  configJSON `json:"config"`
	Theta1  *oselmJSON `json:"theta1"`
	Theta2  *oselmJSON `json:"theta2"`
}

// SaveAgent writes a JSON snapshot of a Q-network agent. The activation
// function in Config is persisted by name via the model snapshots.
func SaveAgent(w io.Writer, a *qnet.Agent) error {
	j := agentJSON{
		Version: FormatVersion,
		Config:  encodeConfig(a.Config()),
		Theta1:  snapshotOSELM(a.Theta1()),
		Theta2:  snapshotOSELM(a.Theta2()),
	}
	return json.NewEncoder(w).Encode(&j)
}

// SaveAgentFile writes an agent snapshot to path, creating or truncating
// the file. The write is not atomic; writers coordinating with a live
// checkpoint watcher should write to a temp file and rename.
func SaveAgentFile(path string, a *qnet.Agent) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := SaveAgent(f, a); err != nil {
		f.Close()
		return fmt.Errorf("persist: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: writing %s: %w", path, err)
	}
	return nil
}

// LoadAgentFile loads an agent snapshot from path — the checkpoint
// entry point for deployment tools (cmd/serve hot-reload). The format
// version is validated before any weights are reconstructed.
func LoadAgentFile(path string) (*qnet.Agent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	a, err := LoadAgent(f)
	if err != nil {
		return nil, fmt.Errorf("persist: checkpoint %s: %w", path, err)
	}
	return a, nil
}

// LoadAgent reconstructs a Q-network agent from a snapshot. Exploration
// schedule and step counters restart fresh; the learned weights (α, b, β,
// P for both networks) are restored exactly.
func LoadAgent(r io.Reader) (*qnet.Agent, error) {
	var j agentJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("persist: decoding agent snapshot: %w", err)
	}
	if j.Version != FormatVersion {
		return nil, fmt.Errorf("persist: snapshot version %d, this build reads %d", j.Version, FormatVersion)
	}
	if j.Theta1 == nil || j.Theta2 == nil {
		return nil, fmt.Errorf("persist: agent snapshot missing networks")
	}
	act, ok := activation.ByName(j.Theta1.Activation)
	if !ok {
		return nil, fmt.Errorf("persist: unknown activation %q", j.Theta1.Activation)
	}
	cfg := decodeConfig(j.Config)
	cfg.Activation = act
	agent, err := qnet.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("persist: rebuilding agent: %w", err)
	}
	t1, err := restoreOSELM(j.Theta1)
	if err != nil {
		return nil, fmt.Errorf("persist: theta1: %w", err)
	}
	t2, err := restoreOSELM(j.Theta2)
	if err != nil {
		return nil, fmt.Errorf("persist: theta2: %w", err)
	}
	if err := agent.RestoreModels(t1, t2); err != nil {
		return nil, err
	}
	return agent, nil
}
