package mat

import (
	"fmt"
	"math"
)

// LU holds an LU decomposition with partial pivoting: P·a = L·U, stored
// compactly (L's unit diagonal implicit) with the pivot permutation.
type LU struct {
	lu    *Dense
	pivot []int
	// signDet is +1 or -1 depending on the permutation parity.
	signDet float64
}

// LUDecompose factors a square matrix with partial pivoting. It returns
// ErrSingular when a pivot underflows working precision.
func LUDecompose(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: LU of %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	d := lu.data
	pivot := make([]int, n)
	sign := 1.0
	for i := range pivot {
		pivot[i] = i
	}
	for col := 0; col < n; col++ {
		// Select pivot row.
		pivRow, pivVal := col, math.Abs(d[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(d[r*n+col]); v > pivVal {
				pivRow, pivVal = r, v
			}
		}
		if pivVal < 1e-300 {
			return nil, fmt.Errorf("%w: LU pivot %d", ErrSingular, col)
		}
		if pivRow != col {
			swapRows(d, n, pivRow, col)
			pivot[pivRow], pivot[col] = pivot[col], pivot[pivRow]
			sign = -sign
		}
		// Eliminate below the pivot, storing multipliers in place.
		inv := 1 / d[col*n+col]
		for r := col + 1; r < n; r++ {
			m := d[r*n+col] * inv
			d[r*n+col] = m
			if m == 0 {
				continue
			}
			for c := col + 1; c < n; c++ {
				d[r*n+c] -= m * d[col*n+c]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, signDet: sign}, nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := f.signDet
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Solve solves a·x = b for one or more right-hand sides.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	n := f.lu.rows
	if b.rows != n {
		return nil, fmt.Errorf("%w: LU solve rhs %dx%d", ErrShape, b.rows, b.cols)
	}
	// Apply the permutation to b.
	x := Zeros(n, b.cols)
	for i := 0; i < n; i++ {
		x.SetRow(i, b.Row(f.pivot[i]))
	}
	d := f.lu.data
	// Forward substitution with unit lower triangle.
	for c := 0; c < x.cols; c++ {
		for i := 1; i < n; i++ {
			s := x.At(i, c)
			for k := 0; k < i; k++ {
				s -= d[i*n+k] * x.At(k, c)
			}
			x.Set(i, c, s)
		}
		// Back substitution with U.
		for i := n - 1; i >= 0; i-- {
			s := x.At(i, c)
			for k := i + 1; k < n; k++ {
				s -= d[i*n+k] * x.At(k, c)
			}
			x.Set(i, c, s/d[i*n+i])
		}
	}
	return x, nil
}

// SolveLU solves a·x = b directly via LU with partial pivoting. For a
// single solve this is ~3× cheaper than forming the inverse.
func SolveLU(a, b *Dense) (*Dense, error) {
	f, err := LUDecompose(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Det returns det(a) via LU; 0 for singular matrices.
func Det(a *Dense) (float64, error) {
	f, err := LUDecompose(a)
	if err != nil {
		if a.rows == a.cols {
			return 0, nil // singular: determinant is exactly 0
		}
		return 0, err
	}
	return f.Det(), nil
}

// SymEigen computes the eigendecomposition of a symmetric matrix by the
// classical cyclic Jacobi method: a = V·diag(λ)·Vᵀ with eigenvalues in
// descending order and orthonormal V columns. Used for diagnostics on
// OS-ELM's P matrix (its eigenvalue floor tracks learning-rate collapse).
func SymEigen(a *Dense) (values []float64, vectors *Dense, err error) {
	if a.rows != a.cols {
		return nil, nil, fmt.Errorf("%w: SymEigen of %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	w := a.Clone()
	v := Eye(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				// Rotate rows/cols p and q of w.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				// Accumulate rotations into v.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort descending by eigenvalue, permuting V's columns.
	for i := 0; i < n-1; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if values[j] > values[best] {
				best = j
			}
		}
		if best != i {
			values[i], values[best] = values[best], values[i]
			swapCols(v, i, best)
		}
	}
	return values, v, nil
}
