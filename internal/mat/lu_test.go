package mat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"oselmrl/internal/rng"
)

func TestLUSolveRoundTrip(t *testing.T) {
	r := rng.New(20)
	for _, n := range []int{1, 3, 8, 25} {
		a := wellConditioned(r, n)
		b := randomMatrix(r, n, 2, -5, 5)
		x, err := SolveLU(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !Equal(Mul(a, x), b, 1e-8) {
			t.Errorf("n=%d: a·x != b", n)
		}
	}
}

func TestLUMatchesInverseSolve(t *testing.T) {
	r := rng.New(21)
	a := wellConditioned(r, 10)
	b := randomMatrix(r, 10, 1, -3, 3)
	x1, err := SolveLU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	x2 := Mul(inv, b)
	if !Equal(x1, x2, 1e-8) {
		t.Error("LU solve disagrees with inverse-multiply")
	}
}

func TestLUSingular(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 2, 4})
	if _, err := LUDecompose(a); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := LUDecompose(Zeros(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("expected ErrShape, got %v", err)
	}
}

func TestDetKnown(t *testing.T) {
	cases := []struct {
		a    *Dense
		want float64
	}{
		{Eye(3), 1},
		{New(2, 2, []float64{2, 0, 0, 3}), 6},
		{New(2, 2, []float64{0, 1, 1, 0}), -1}, // permutation: sign flip
		{New(2, 2, []float64{1, 2, 3, 4}), -2},
		{New(2, 2, []float64{1, 2, 2, 4}), 0}, // singular
	}
	for i, c := range cases {
		got, err := Det(c.a)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: det = %v want %v", i, got, c.want)
		}
	}
}

// Property: det(a·b) = det(a)·det(b).
func TestPropertyDetMultiplicative(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(6)
		a := wellConditioned(r, n)
		b := wellConditioned(r, n)
		da, err1 := Det(a)
		db, err2 := Det(b)
		dab, err3 := Det(Mul(a, b))
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return math.Abs(dab-da*db) <= 1e-6*math.Abs(da*db)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := New(3, 3, []float64{5, 0, 0, 0, -2, 0, 0, 0, 1})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 1, -2}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-10 {
			t.Errorf("eigenvalue[%d] = %v want %v", i, vals[i], w)
		}
	}
	if !Equal(Mul(vecs.T(), vecs), Eye(3), 1e-10) {
		t.Error("eigenvectors not orthonormal")
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	r := rng.New(22)
	a := spd(r, 12)
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild V·diag(λ)·Vᵀ.
	vd := vecs.Clone()
	for j := range vals {
		for i := 0; i < vd.Rows(); i++ {
			vd.Set(i, j, vd.At(i, j)*vals[j])
		}
	}
	if !Equal(Mul(vd, vecs.T()), a, 1e-8) {
		t.Error("V·diag(λ)·Vᵀ != a")
	}
	// SPD: all eigenvalues positive, sorted descending.
	for i, v := range vals {
		if v <= 0 {
			t.Errorf("eigenvalue[%d] = %v not positive for SPD matrix", i, v)
		}
		if i > 0 && v > vals[i-1]+1e-12 {
			t.Error("eigenvalues not sorted")
		}
	}
}

// Property: trace equals the eigenvalue sum, σmax² equals the top
// eigenvalue of aᵀa.
func TestPropertyEigenInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(6)
		a := spd(r, n)
		vals, _, err := SymEigen(a)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if math.Abs(sum-a.Trace()) > 1e-8*math.Abs(sum) {
			return false
		}
		sigma := LargestSingularValue(a, 400, nil)
		// For SPD a, σmax = λmax.
		return math.Abs(sigma-vals[0]) <= 1e-6*vals[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, _, err := SymEigen(Zeros(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("expected ErrShape, got %v", err)
	}
}
