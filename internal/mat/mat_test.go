package mat

import (
	"math"
	"testing"
	"testing/quick"

	"oselmrl/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(r *rng.RNG, rows, cols int, lo, hi float64) *Dense {
	m := Zeros(rows, cols)
	r.FillUniform(m.RawData(), lo, hi)
	return m
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("Dims = %d,%d want 2,3", r, c)
	}
	if got := m.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v", got)
	}
	if got := m.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v", got)
	}
	m.Set(1, 2, 42)
	if got := m.At(1, 2); got != 42 {
		t.Errorf("after Set, At(1,2) = %v", got)
	}
}

func TestNewNilDataAllocatesZeros(t *testing.T) {
	m := New(3, 4, nil)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestNewPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	New(2, 2, []float64{1, 2, 3})
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := Zeros(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for index %v", idx)
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestEye(t *testing.T) {
	m := Eye(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Eye(4)[%d,%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if r, c := m.Dims(); r != 3 || c != 2 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v", m.At(2, 1))
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowColVector(t *testing.T) {
	rv := RowVector([]float64{1, 2, 3})
	if r, c := rv.Dims(); r != 1 || c != 3 {
		t.Fatalf("RowVector dims %d,%d", r, c)
	}
	cv := ColVector([]float64{1, 2, 3})
	if r, c := cv.Dims(); r != 3 || c != 1 {
		t.Fatalf("ColVector dims %d,%d", r, c)
	}
	// Both copy their input.
	src := []float64{9}
	v := RowVector(src)
	src[0] = 1
	if v.At(0, 0) != 9 {
		t.Error("RowVector must copy input")
	}
}

func TestRowColCopies(t *testing.T) {
	m := New(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("Row must return a copy")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Col(1) = %v", c)
	}
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Error("Col must return a copy")
	}
}

func TestSetRow(t *testing.T) {
	m := Zeros(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 0) != 7 || m.At(1, 2) != 9 {
		t.Errorf("SetRow failed: %v", m.Row(1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong row length")
		}
	}()
	m.SetRow(0, []float64{1})
}

func TestCloneIndependence(t *testing.T) {
	m := New(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone must deep-copy")
	}
}

func TestTranspose(t *testing.T) {
	m := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims %d,%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(1)
	m := randomMatrix(r, 5, 7, -10, 10)
	if !Equal(m, m.T().T(), 0) {
		t.Error("T(T(m)) != m")
	}
}

func TestAddSub(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 3, 4})
	b := New(2, 2, []float64{10, 20, 30, 40})
	s := Add(a, b)
	if s.At(1, 1) != 44 {
		t.Errorf("Add = %v", s)
	}
	d := Sub(b, a)
	if d.At(0, 0) != 9 {
		t.Errorf("Sub = %v", d)
	}
	// Operands unchanged.
	if a.At(0, 0) != 1 || b.At(0, 0) != 10 {
		t.Error("Add/Sub must not mutate operands")
	}
}

func TestAddSubInPlace(t *testing.T) {
	a := New(1, 2, []float64{1, 2})
	b := New(1, 2, []float64{3, 4})
	AddInPlace(a, b)
	if a.At(0, 0) != 4 || a.At(0, 1) != 6 {
		t.Errorf("AddInPlace = %v", a)
	}
	SubInPlace(a, b)
	if a.At(0, 0) != 1 || a.At(0, 1) != 2 {
		t.Errorf("SubInPlace = %v", a)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := Zeros(2, 2), Zeros(2, 3)
	for name, f := range map[string]func(){
		"Add":      func() { Add(a, b) },
		"Sub":      func() { Sub(a, b) },
		"Hadamard": func() { Hadamard(a, b) },
		"Mul":      func() { Mul(b, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected shape panic", name)
				}
			}()
			f()
		}()
	}
}

func TestScale(t *testing.T) {
	a := New(1, 3, []float64{1, -2, 3})
	s := Scale(2, a)
	if s.At(0, 1) != -4 {
		t.Errorf("Scale = %v", s)
	}
	ScaleInPlace(0.5, a)
	if a.At(0, 2) != 1.5 {
		t.Errorf("ScaleInPlace = %v", a)
	}
}

func TestHadamardAndApply(t *testing.T) {
	a := New(1, 3, []float64{1, 2, 3})
	b := New(1, 3, []float64{4, 5, 6})
	h := Hadamard(a, b)
	if h.At(0, 2) != 18 {
		t.Errorf("Hadamard = %v", h)
	}
	sq := Apply(a, func(x float64) float64 { return x * x })
	if sq.At(0, 2) != 9 {
		t.Errorf("Apply = %v", sq)
	}
	ApplyInPlace(a, func(x float64) float64 { return -x })
	if a.At(0, 0) != -1 {
		t.Errorf("ApplyInPlace = %v", a)
	}
}

func TestMulKnownValues(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := New(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := New(2, 2, []float64{58, 64, 139, 154})
	if !Equal(c, want, 1e-12) {
		t.Errorf("Mul = %v want %v", c, want)
	}
}

func TestMulIdentity(t *testing.T) {
	r := rng.New(2)
	a := randomMatrix(r, 6, 6, -5, 5)
	if !Equal(Mul(a, Eye(6)), a, 1e-12) {
		t.Error("a·I != a")
	}
	if !Equal(Mul(Eye(6), a), a, 1e-12) {
		t.Error("I·a != a")
	}
}

func TestMulSerialParallelAgree(t *testing.T) {
	r := rng.New(3)
	a := randomMatrix(r, 67, 45, -1, 1)
	b := randomMatrix(r, 45, 83, -1, 1)
	s := MulSerial(a, b)
	p := MulParallel(a, b)
	if !Equal(s, p, 1e-10) {
		t.Error("serial and parallel GEMM disagree")
	}
}

func TestMulAssociativity(t *testing.T) {
	r := rng.New(4)
	a := randomMatrix(r, 4, 5, -2, 2)
	b := randomMatrix(r, 5, 6, -2, 2)
	c := randomMatrix(r, 6, 3, -2, 2)
	left := Mul(Mul(a, b), c)
	right := Mul(a, Mul(b, c))
	if !Equal(left, right, 1e-10) {
		t.Error("(ab)c != a(bc)")
	}
	if !Equal(MulT3(a, b, c), left, 1e-10) {
		t.Error("MulT3 disagrees with explicit product")
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := MulVec(a, []float64{1, 1, 1})
	if v[0] != 6 || v[1] != 15 {
		t.Errorf("MulVec = %v", v)
	}
	w := VecMul([]float64{1, 1}, a)
	if w[0] != 5 || w[1] != 7 || w[2] != 9 {
		t.Errorf("VecMul = %v", w)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	r := rng.New(5)
	a := randomMatrix(r, 8, 11, -3, 3)
	x := make([]float64, 11)
	r.FillUniform(x, -3, 3)
	got := MulVec(a, x)
	want := Mul(a, ColVector(x))
	for i := range got {
		if !almostEqual(got[i], want.At(i, 0), 1e-12) {
			t.Fatalf("MulVec[%d] = %v want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestDotAndOuter(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	o := OuterProduct([]float64{1, 2}, []float64{3, 4, 5})
	if r, c := o.Dims(); r != 2 || c != 3 {
		t.Fatalf("Outer dims %d,%d", r, c)
	}
	if o.At(1, 2) != 10 {
		t.Errorf("Outer(1,2) = %v", o.At(1, 2))
	}
}

func TestAddScaledIdentity(t *testing.T) {
	a := Zeros(3, 3)
	b := AddScaledIdentity(a, 2.5)
	if b.At(1, 1) != 2.5 || b.At(0, 1) != 0 {
		t.Errorf("AddScaledIdentity = %v", b)
	}
	if a.At(1, 1) != 0 {
		t.Error("AddScaledIdentity must not mutate input")
	}
}

func TestNormsAndTrace(t *testing.T) {
	a := New(2, 2, []float64{3, 0, -4, 0})
	if got := a.FrobeniusNorm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("FrobeniusNorm = %v", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v", got)
	}
	if got := a.Trace(); got != 3 {
		t.Errorf("Trace = %v", got)
	}
}

func TestSymmetrize(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 4, 3})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Errorf("Symmetrize = %v", a)
	}
}

func TestCopyFrom(t *testing.T) {
	a := Zeros(2, 2)
	b := New(2, 2, []float64{1, 2, 3, 4})
	a.CopyFrom(b)
	if !Equal(a, b, 0) {
		t.Error("CopyFrom mismatch")
	}
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Error("CopyFrom must copy, not alias")
	}
}

// Property: (A+B)ᵀ = Aᵀ + Bᵀ on random matrices, via testing/quick seeds.
func TestPropertyTransposeLinear(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows, cols := 1+r.Intn(10), 1+r.Intn(10)
		a := randomMatrix(r, rows, cols, -100, 100)
		b := randomMatrix(r, rows, cols, -100, 100)
		return Equal(Add(a, b).T(), Add(a.T(), b.T()), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestPropertyMulTranspose(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randomMatrix(r, m, k, -10, 10)
		b := randomMatrix(r, k, n, -10, 10)
		return Equal(Mul(a, b).T(), Mul(b.T(), a.T()), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Frobenius norm is invariant under transpose.
func TestPropertyFrobeniusTransposeInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := randomMatrix(r, 1+r.Intn(12), 1+r.Intn(12), -50, 50)
		return almostEqual(a.FrobeniusNorm(), a.T().FrobeniusNorm(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringTruncates(t *testing.T) {
	small := Zeros(2, 2)
	if s := small.String(); len(s) == 0 {
		t.Error("String empty")
	}
	big := Zeros(20, 20)
	s := big.String()
	if len(s) == 0 {
		t.Error("String empty for big matrix")
	}
}
