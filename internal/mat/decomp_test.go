package mat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"oselmrl/internal/rng"
)

// wellConditioned returns A + n·I for random A, guaranteeing invertibility.
func wellConditioned(r *rng.RNG, n int) *Dense {
	a := randomMatrix(r, n, n, -1, 1)
	return AddScaledIdentity(a, float64(n))
}

// spd returns a random symmetric positive-definite matrix AᵀA + I.
func spd(r *rng.RNG, n int) *Dense {
	a := randomMatrix(r, n, n, -1, 1)
	return AddScaledIdentity(Mul(a.T(), a), 1)
}

func TestInverseIdentity(t *testing.T) {
	inv, err := Inverse(Eye(5))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(inv, Eye(5), 1e-14) {
		t.Error("I⁻¹ != I")
	}
}

func TestInverseKnown2x2(t *testing.T) {
	a := New(2, 2, []float64{4, 7, 2, 6})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := New(2, 2, []float64{0.6, -0.7, -0.2, 0.4})
	if !Equal(inv, want, 1e-12) {
		t.Errorf("inverse = %v want %v", inv, want)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	r := rng.New(10)
	for n := 1; n <= 40; n += 7 {
		a := wellConditioned(r, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !Equal(Mul(a, inv), Eye(n), 1e-8) {
			t.Errorf("n=%d: a·a⁻¹ != I", n)
		}
		if !Equal(Mul(inv, a), Eye(n), 1e-8) {
			t.Errorf("n=%d: a⁻¹·a != I", n)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 2, 4}) // rank 1
	if _, err := Inverse(a); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestInverseNonSquare(t *testing.T) {
	if _, err := Inverse(Zeros(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("expected ErrShape, got %v", err)
	}
}

func TestInverseNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	a := New(2, 2, []float64{0, 1, 1, 0})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(inv, a, 1e-14) { // a is its own inverse
		t.Errorf("inverse = %v", inv)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := New(2, 2, []float64{4, 2, 2, 3})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Mul(l, l.T()), a, 1e-12) {
		t.Error("L·Lᵀ != a")
	}
	if l.At(0, 1) != 0 {
		t.Error("L not lower triangular")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestSolveCholeskyMatchesInverse(t *testing.T) {
	r := rng.New(11)
	a := spd(r, 12)
	b := randomMatrix(r, 12, 3, -5, 5)
	x, err := SolveCholesky(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Mul(a, x), b, 1e-8) {
		t.Error("a·x != b")
	}
}

func TestQRReconstruction(t *testing.T) {
	r := rng.New(12)
	for _, dims := range [][2]int{{5, 5}, {10, 4}, {20, 7}} {
		a := randomMatrix(r, dims[0], dims[1], -3, 3)
		qr, err := QRDecompose(a)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(Mul(qr.Q, qr.R), a, 1e-9) {
			t.Errorf("%v: Q·R != a", dims)
		}
		// QᵀQ = I.
		if !Equal(Mul(qr.Q.T(), qr.Q), Eye(dims[1]), 1e-9) {
			t.Errorf("%v: Q columns not orthonormal", dims)
		}
		// R upper triangular.
		for i := 1; i < dims[1]; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(qr.R.At(i, j)) > 1e-10 {
					t.Errorf("%v: R(%d,%d) = %v below diagonal", dims, i, j, qr.R.At(i, j))
				}
			}
		}
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := QRDecompose(Zeros(2, 5)); !errors.Is(err, ErrShape) {
		t.Errorf("expected ErrShape, got %v", err)
	}
}

func TestSVDReconstruction(t *testing.T) {
	r := rng.New(13)
	for _, dims := range [][2]int{{4, 4}, {8, 3}, {3, 8}, {15, 15}} {
		a := randomMatrix(r, dims[0], dims[1], -2, 2)
		sv, err := SVDDecompose(a)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild U·diag(S)·Vᵀ.
		k := len(sv.S)
		us := sv.U.Clone()
		for j := 0; j < k; j++ {
			for i := 0; i < us.Rows(); i++ {
				us.Set(i, j, us.At(i, j)*sv.S[j])
			}
		}
		if !Equal(Mul(us, sv.V.T()), a, 1e-8) {
			t.Errorf("%v: U·S·Vᵀ != a", dims)
		}
		// Singular values sorted descending, nonnegative.
		for i := 0; i < k; i++ {
			if sv.S[i] < 0 {
				t.Errorf("%v: negative singular value %v", dims, sv.S[i])
			}
			if i > 0 && sv.S[i] > sv.S[i-1]+1e-12 {
				t.Errorf("%v: singular values unsorted", dims)
			}
		}
		// U, V orthonormal columns.
		if !Equal(Mul(sv.U.T(), sv.U), Eye(k), 1e-8) {
			t.Errorf("%v: U not orthonormal", dims)
		}
		if !Equal(Mul(sv.V.T(), sv.V), Eye(k), 1e-8) {
			t.Errorf("%v: V not orthonormal", dims)
		}
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := New(3, 3, []float64{3, 0, 0, 0, -5, 0, 0, 0, 1})
	sv, err := SVDDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i, w := range want {
		if !almostEqual(sv.S[i], w, 1e-10) {
			t.Errorf("S[%d] = %v want %v", i, sv.S[i], w)
		}
	}
}

func TestPseudoInverseProperties(t *testing.T) {
	r := rng.New(14)
	// Tall full-rank matrix: A†·A = I.
	a := randomMatrix(r, 10, 4, -1, 1)
	pinv, err := PseudoInverse(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Mul(pinv, a), Eye(4), 1e-8) {
		t.Error("A†·A != I for full-column-rank A")
	}
	// Moore-Penrose condition: A·A†·A = A.
	if !Equal(Mul(Mul(a, pinv), a), a, 1e-8) {
		t.Error("A·A†·A != A")
	}
}

func TestPseudoInverseRankDeficient(t *testing.T) {
	// Rank-1 matrix: pseudo-inverse must still satisfy A·A†·A = A.
	a := New(3, 2, []float64{1, 2, 2, 4, 3, 6})
	pinv, err := PseudoInverse(a, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Mul(Mul(a, pinv), a), a, 1e-8) {
		t.Error("A·A†·A != A for rank-deficient A")
	}
}

func TestLargestSingularValueMatchesSVD(t *testing.T) {
	r := rng.New(15)
	for i := 0; i < 5; i++ {
		a := randomMatrix(r, 6+i, 9-i, -4, 4)
		sv, err := SVDDecompose(a)
		if err != nil {
			t.Fatal(err)
		}
		got := LargestSingularValue(a, 500, nil)
		if !almostEqual(got, sv.S[0], 1e-6*sv.S[0]) {
			t.Errorf("power iteration σmax = %v, SVD = %v", got, sv.S[0])
		}
	}
}

func TestLargestSingularValueZeroMatrix(t *testing.T) {
	if got := LargestSingularValue(Zeros(4, 4), 50, nil); got != 0 {
		t.Errorf("σmax of zero matrix = %v", got)
	}
}

func TestConditionNumber(t *testing.T) {
	a := New(2, 2, []float64{10, 0, 0, 2})
	c, err := ConditionNumber(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 5, 1e-9) {
		t.Errorf("cond = %v want 5", c)
	}
	// Singular matrix: infinite condition number.
	s := New(2, 2, []float64{1, 1, 1, 1})
	c, err = ConditionNumber(s)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c, 1) {
		t.Errorf("cond of singular = %v want +Inf", c)
	}
}

// Property: σmax(A) <= ||A||_F (paper Relation 13, the L2-vs-spectral-norm
// bound that justifies replacing spectral regularization with L2).
func TestPropertySpectralLEFrobenius(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := randomMatrix(r, 1+r.Intn(10), 1+r.Intn(10), -20, 20)
		return LargestSingularValue(a, 300, nil) <= a.FrobeniusNorm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the inverse of an SPD matrix is SPD (diagonal positive,
// symmetric) — the invariant OS-ELM's P relies on.
func TestPropertySPDInverseSPD(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(8)
		a := spd(r, n)
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if inv.At(i, i) <= 0 {
				return false
			}
			for j := i + 1; j < n; j++ {
				if math.Abs(inv.At(i, j)-inv.At(j, i)) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Inverse agrees with SolveCholesky on SPD systems.
func TestPropertyInverseVsCholesky(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(6)
		a := spd(r, n)
		b := randomMatrix(r, n, 1, -3, 3)
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		x1 := Mul(inv, b)
		x2, err := SolveCholesky(a, b)
		if err != nil {
			return false
		}
		return Equal(x1, x2, 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
