package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the rows*inner*cols work estimate above which GEMM
// fans out across goroutines. Below it, the goroutine and synchronization
// overhead outweighs the parallel speedup for the small matrices OS-ELM uses.
const parallelThreshold = 256 * 256 * 64

// gemmBlock is the cache-blocking tile edge. 64 float64 = 512 bytes per row
// tile, comfortably inside L1 for three operand tiles.
const gemmBlock = 64

// gemmSerial computes dst[rowLo:rowHi] = a[rowLo:rowHi]·b using i-k-j loop
// order (streaming b rows) with k-blocking.
func gemmSerial(dst, a, b *Dense, rowLo, rowHi int) {
	n, p := a.cols, b.cols
	ad, bd, dd := a.data, b.data, dst.data
	for i := rowLo; i < rowHi; i++ {
		di := dd[i*p : (i+1)*p]
		for j := range di {
			di[j] = 0
		}
		for k0 := 0; k0 < n; k0 += gemmBlock {
			k1 := k0 + gemmBlock
			if k1 > n {
				k1 = n
			}
			for k := k0; k < k1; k++ {
				aik := ad[i*n+k]
				if aik == 0 {
					continue
				}
				bk := bd[k*p : (k+1)*p]
				for j, bv := range bk {
					di[j] += aik * bv
				}
			}
		}
	}
}

// gemmParallel splits dst rows across GOMAXPROCS workers.
func gemmParallel(dst, a, b *Dense) {
	workers := runtime.GOMAXPROCS(0)
	if workers > a.rows {
		workers = a.rows
	}
	if workers <= 1 {
		gemmSerial(dst, a, b, 0, a.rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.rows {
			hi = a.rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmSerial(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MulSerial forces the serial GEMM path regardless of size. It is used by
// the timing harness, where deterministic single-core operation counts are
// needed to model the Cortex-A9.
func MulSerial(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(ErrShape)
	}
	out := Zeros(a.rows, b.cols)
	gemmSerial(out, a, b, 0, a.rows)
	return out
}

// MulSerialInto computes dst = a·b through the serial GEMM kernel
// regardless of size, without allocating. dst must be preallocated with
// shape a.Rows()×b.Cols() and must not alias a or b. Beyond the timing
// harness's determinism needs, this is the batched-inference kernel of
// qnet.Evaluator: gemmSerial accumulates each output row over the inner
// dimension in ascending order with the same zero-operand skip as
// VecMulInto, so row i of dst is bit-identical to a per-row VecMulInto —
// the property the serving tier's batched-vs-unbatched golden tests pin.
func MulSerialInto(dst, a, b *Dense) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Errorf("%w: MulSerialInto %dx%d = %dx%d · %dx%d",
			ErrShape, dst.rows, dst.cols, a.rows, a.cols, b.rows, b.cols))
	}
	gemmSerial(dst, a, b, 0, a.rows)
}

// MulParallel forces the parallel GEMM path regardless of size.
func MulParallel(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(ErrShape)
	}
	out := Zeros(a.rows, b.cols)
	gemmParallel(out, a, b)
	return out
}
