package mat

import (
	"fmt"
	"math"
)

// Inverse returns a⁻¹ computed by Gauss-Jordan elimination with partial
// pivoting. It returns ErrSingular if a pivot underflows working precision.
func Inverse(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Inverse of %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	// Augmented [a | I] worked in place.
	work := a.Clone()
	inv := Eye(n)
	wd, id := work.data, inv.data
	for col := 0; col < n; col++ {
		// Partial pivot: largest |value| in this column at or below the diagonal.
		pivRow, pivVal := col, math.Abs(wd[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(wd[r*n+col]); v > pivVal {
				pivRow, pivVal = r, v
			}
		}
		if pivVal < 1e-300 {
			return nil, fmt.Errorf("%w: pivot %d", ErrSingular, col)
		}
		if pivRow != col {
			swapRows(wd, n, pivRow, col)
			swapRows(id, n, pivRow, col)
		}
		// Normalize pivot row.
		p := wd[col*n+col]
		invP := 1 / p
		for j := 0; j < n; j++ {
			wd[col*n+j] *= invP
			id[col*n+j] *= invP
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := wd[r*n+col]
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				wd[r*n+j] -= f * wd[col*n+j]
				id[r*n+j] -= f * id[col*n+j]
			}
		}
	}
	return inv, nil
}

func swapRows(d []float64, n, i, j int) {
	ri, rj := d[i*n:(i+1)*n], d[j*n:(j+1)*n]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Cholesky returns the lower-triangular L with a = L·Lᵀ for a symmetric
// positive-definite a. It returns ErrSingular when a is not positive
// definite to working precision.
func Cholesky(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	l := Zeros(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("%w: Cholesky pivot %d = %g", ErrSingular, i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves a·x = b for SPD a using its Cholesky factor. b may
// have multiple columns.
func SolveCholesky(a, b *Dense) (*Dense, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	if b.rows != n {
		return nil, fmt.Errorf("%w: SolveCholesky rhs %dx%d", ErrShape, b.rows, b.cols)
	}
	x := b.Clone()
	// Forward substitution: L·y = b.
	for c := 0; c < x.cols; c++ {
		for i := 0; i < n; i++ {
			s := x.At(i, c)
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * x.At(k, c)
			}
			x.Set(i, c, s/l.At(i, i))
		}
		// Back substitution: Lᵀ·x = y.
		for i := n - 1; i >= 0; i-- {
			s := x.At(i, c)
			for k := i + 1; k < n; k++ {
				s -= l.At(k, i) * x.At(k, c)
			}
			x.Set(i, c, s/l.At(i, i))
		}
	}
	return x, nil
}

// QR holds a thin Householder QR decomposition a = Q·R with Q m×n
// orthonormal columns (m >= n) and R n×n upper triangular.
type QR struct {
	Q *Dense
	R *Dense
}

// QRDecompose computes a thin QR factorization via Householder reflections.
func QRDecompose(a *Dense) (*QR, error) {
	m, n := a.rows, a.cols
	if m < n {
		return nil, fmt.Errorf("%w: QR needs rows >= cols, got %dx%d", ErrShape, m, n)
	}
	r := a.Clone()
	// Accumulate Q as a full m×m product, then trim to m×n.
	q := Eye(m)
	v := make([]float64, m)
	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm += r.At(i, k) * r.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := -math.Copysign(norm, r.At(k, k))
		var vnorm2 float64
		for i := k; i < m; i++ {
			v[i] = r.At(i, k)
			if i == k {
				v[i] -= alpha
			}
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			continue
		}
		// Apply H = I - 2 v vᵀ / (vᵀv) to R (columns k..n-1).
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * r.At(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-f*v[i])
			}
		}
		// Accumulate into Q: Q = Q·H.
		for i := 0; i < m; i++ {
			var dot float64
			for l := k; l < m; l++ {
				dot += q.At(i, l) * v[l]
			}
			f := 2 * dot / vnorm2
			for l := k; l < m; l++ {
				q.Set(i, l, q.At(i, l)-f*v[l])
			}
		}
	}
	// Trim to thin form.
	qt := Zeros(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			qt.Set(i, j, q.At(i, j))
		}
	}
	rt := Zeros(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rt.Set(i, j, r.At(i, j))
		}
	}
	return &QR{Q: qt, R: rt}, nil
}

// SVD holds a thin singular value decomposition a = U·diag(S)·Vᵀ where U is
// m×r, S has r = min(m,n) entries in descending order, and V is n×r.
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

// SVDDecompose computes a thin SVD by one-sided Jacobi rotations applied to
// the columns of a (transposing first when m < n). One-sided Jacobi is
// simple, numerically robust, and ample for OS-ELM-scale matrices.
func SVDDecompose(a *Dense) (*SVD, error) {
	m, n := a.rows, a.cols
	if m < n {
		// SVD(aᵀ) = V·S·Uᵀ: swap U and V.
		sv, err := SVDDecompose(a.T())
		if err != nil {
			return nil, err
		}
		return &SVD{U: sv.V, S: sv.S, V: sv.U}, nil
	}
	u := a.Clone() // becomes U·diag(S) column-wise
	v := Eye(n)    // accumulates right rotations
	const maxSweeps = 60
	eps := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram entries for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					app += up * up
					aqq += uq * uq
					apq += up * uq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
					continue
				}
				off += math.Abs(apq)
				// Jacobi rotation zeroing the (p,q) Gram entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					u.Set(i, p, c*up-s*uq)
					u.Set(i, q, s*up+c*uq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off == 0 {
			break
		}
	}
	// Extract singular values as column norms of u, normalize columns.
	s := make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += u.At(i, j) * u.At(i, j)
		}
		norm = math.Sqrt(norm)
		s[j] = norm
		if norm > 0 {
			inv := 1 / norm
			for i := 0; i < m; i++ {
				u.Set(i, j, u.At(i, j)*inv)
			}
		}
	}
	// Sort descending by singular value (selection sort; n is small).
	for i := 0; i < n-1; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if s[j] > s[best] {
				best = j
			}
		}
		if best != i {
			s[i], s[best] = s[best], s[i]
			swapCols(u, i, best)
			swapCols(v, i, best)
		}
	}
	return &SVD{U: u, S: s, V: v}, nil
}

func swapCols(m *Dense, i, j int) {
	for r := 0; r < m.rows; r++ {
		vi, vj := m.At(r, i), m.At(r, j)
		m.Set(r, i, vj)
		m.Set(r, j, vi)
	}
}

// PseudoInverse returns the Moore-Penrose pseudo-inverse a† = V·S⁺·Uᵀ,
// truncating singular values below rcond·σmax.
func PseudoInverse(a *Dense, rcond float64) (*Dense, error) {
	sv, err := SVDDecompose(a)
	if err != nil {
		return nil, err
	}
	if rcond <= 0 {
		rcond = 1e-12
	}
	var smax float64
	for _, s := range sv.S {
		if s > smax {
			smax = s
		}
	}
	cut := rcond * smax
	r := len(sv.S)
	// a† = V · diag(1/s) · Uᵀ, skipping truncated components.
	vs := Zeros(sv.V.Rows(), r)
	for j := 0; j < r; j++ {
		if sv.S[j] <= cut {
			continue
		}
		inv := 1 / sv.S[j]
		for i := 0; i < sv.V.Rows(); i++ {
			vs.Set(i, j, sv.V.At(i, j)*inv)
		}
	}
	return Mul(vs, sv.U.T()), nil
}

// LargestSingularValue estimates σmax(a) by power iteration on aᵀa. It
// converges geometrically with ratio (σ₂/σ₁)² and is the cheap runtime
// counterpart to the SVD the paper's Algorithm 1 uses at initialization.
func LargestSingularValue(a *Dense, iters int, seedVec []float64) float64 {
	n := a.cols
	if n == 0 || a.rows == 0 {
		return 0
	}
	v := make([]float64, n)
	if seedVec != nil && len(seedVec) == n {
		copy(v, seedVec)
	} else {
		for i := range v {
			v[i] = 1 / math.Sqrt(float64(n))
		}
	}
	if iters <= 0 {
		iters = 100
	}
	var sigma float64
	for it := 0; it < iters; it++ {
		// w = aᵀ(a v)
		av := MulVec(a, v)
		w := VecMul(av, a)
		norm := math.Sqrt(Dot(w, w))
		if norm == 0 {
			return 0
		}
		for i := range v {
			v[i] = w[i] / norm
		}
		next := math.Sqrt(norm)
		if it > 3 && math.Abs(next-sigma) <= 1e-12*next {
			sigma = next
			break
		}
		sigma = next
	}
	return sigma
}

// ConditionNumber returns σmax/σmin from a full SVD.
func ConditionNumber(a *Dense) (float64, error) {
	sv, err := SVDDecompose(a)
	if err != nil {
		return 0, err
	}
	n := len(sv.S)
	if n == 0 {
		return 0, fmt.Errorf("%w: empty matrix", ErrShape)
	}
	smin := sv.S[n-1]
	if smin == 0 {
		return math.Inf(1), nil
	}
	return sv.S[0] / smin, nil
}
