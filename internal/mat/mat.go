// Package mat provides a dense, row-major float64 matrix library built on
// the standard library only. It implements everything the OS-ELM
// reproduction needs: general matrix multiplication (naive, blocked, and
// goroutine-parallel), transpose, elementwise operations, Gauss-Jordan
// inversion, Cholesky and QR decompositions, a one-sided Jacobi SVD,
// Moore-Penrose pseudo-inverse, power iteration for the largest singular
// value, and assorted norms.
//
// The package is deliberately small-matrix oriented: OS-ELM works with
// matrices no larger than a few hundred rows/columns, so clarity and
// correctness win over cache heroics, but a blocked parallel GEMM is
// provided for the harness's larger sweeps.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Dense is a dense row-major matrix. The zero value is an empty matrix.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// ErrShape is returned (or wrapped) when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// ErrSingular is returned when a matrix is singular to working precision.
var ErrSingular = errors.New("mat: matrix is singular")

// New returns a rows×cols matrix. If data is nil a zero matrix is allocated;
// otherwise data is used directly (not copied) and must have length rows*cols.
func New(rows, cols int, data []float64) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	if data == nil {
		data = make([]float64, rows*cols)
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// Zeros returns a rows×cols zero matrix.
func Zeros(rows, cols int) *Dense { return New(rows, cols, nil) }

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := Zeros(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return Zeros(0, 0)
	}
	c := len(rows[0])
	m := Zeros(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("mat: ragged rows")
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// RowVector returns a 1×n matrix holding a copy of v.
func RowVector(v []float64) *Dense {
	d := make([]float64, len(v))
	copy(d, v)
	return New(1, len(v), d)
}

// ColVector returns an n×1 matrix holding a copy of v.
func ColVector(v []float64) *Dense {
	d := make([]float64, len(v))
	copy(d, v)
	return New(len(v), 1, d)
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// RawData returns the underlying row-major backing slice. Mutating it
// mutates the matrix.
func (m *Dense) RawData() []float64 { return m.data }

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic("mat: row index out of range")
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic("mat: col index out of range")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic("mat: SetRow length mismatch")
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return New(m.rows, m.cols, d)
}

// CopyFrom copies src into m; shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(ErrShape)
	}
	copy(m.data, src.data)
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := Zeros(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		base := i * m.cols
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[base+j]
		}
	}
	return t
}

// Add returns a + b.
func Add(a, b *Dense) *Dense {
	requireSameShape(a, b)
	out := Zeros(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Dense) *Dense {
	requireSameShape(a, b)
	out := Zeros(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// AddInPlace sets a = a + b and returns a.
func AddInPlace(a, b *Dense) *Dense {
	requireSameShape(a, b)
	for i := range a.data {
		a.data[i] += b.data[i]
	}
	return a
}

// SubInPlace sets a = a - b and returns a.
func SubInPlace(a, b *Dense) *Dense {
	requireSameShape(a, b)
	for i := range a.data {
		a.data[i] -= b.data[i]
	}
	return a
}

// Scale returns s * a as a new matrix.
func Scale(s float64, a *Dense) *Dense {
	out := Zeros(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = s * a.data[i]
	}
	return out
}

// ScaleInPlace sets a = s*a and returns a.
func ScaleInPlace(s float64, a *Dense) *Dense {
	for i := range a.data {
		a.data[i] *= s
	}
	return a
}

// Hadamard returns the elementwise product a ∘ b.
func Hadamard(a, b *Dense) *Dense {
	requireSameShape(a, b)
	out := Zeros(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// Apply returns a new matrix with f applied to every element of a.
func Apply(a *Dense, f func(float64) float64) *Dense {
	out := Zeros(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// ApplyInPlace applies f to every element of a and returns a.
func ApplyInPlace(a *Dense, f func(float64) float64) *Dense {
	for i := range a.data {
		a.data[i] = f(a.data[i])
	}
	return a
}

// AddScaledIdentity returns a + s*I for square a.
func AddScaledIdentity(a *Dense, s float64) *Dense {
	if a.rows != a.cols {
		panic(ErrShape)
	}
	out := a.Clone()
	for i := 0; i < a.rows; i++ {
		out.data[i*a.cols+i] += s
	}
	return out
}

func requireSameShape(a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Errorf("%w: %dx%d vs %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols))
	}
}

// Mul returns a·b using the default strategy (blocked serial for small
// matrices, parallel for large ones).
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols))
	}
	out := Zeros(a.rows, b.cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a·b. dst must be preallocated with shape
// a.Rows()×b.Cols() and must not alias a or b.
func MulInto(dst, a, b *Dense) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Errorf("%w: MulInto %dx%d = %dx%d · %dx%d",
			ErrShape, dst.rows, dst.cols, a.rows, a.cols, b.rows, b.cols))
	}
	// Work estimate decides serial vs parallel.
	work := a.rows * a.cols * b.cols
	if work >= parallelThreshold {
		gemmParallel(dst, a, b)
		return
	}
	gemmSerial(dst, a, b, 0, a.rows)
}

// MulT3 returns a·b·c, associating to minimize intermediate size.
func MulT3(a, b, c *Dense) *Dense {
	// Cost of (a·b)·c vs a·(b·c).
	left := a.rows*a.cols*b.cols + a.rows*b.cols*c.cols
	right := b.rows*b.cols*c.cols + a.rows*a.cols*c.cols
	if left <= right {
		return Mul(Mul(a, b), c)
	}
	return Mul(a, Mul(b, c))
}

// MulVec computes a·x for a column vector x given as a slice, returning a slice.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Errorf("%w: MulVec %dx%d · %d", ErrShape, a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		base := i * a.cols
		var s float64
		for j, xv := range x {
			s += a.data[base+j] * xv
		}
		out[i] = s
	}
	return out
}

// MulVecInto computes dst = a·x without allocating; dst must have length
// a.Rows() and must not alias x.
func MulVecInto(dst []float64, a *Dense, x []float64) {
	if a.cols != len(x) || a.rows != len(dst) {
		panic(fmt.Errorf("%w: MulVecInto %d = %dx%d · %d", ErrShape, len(dst), a.rows, a.cols, len(x)))
	}
	for i := 0; i < a.rows; i++ {
		base := i * a.cols
		var s float64
		for j, xv := range x {
			s += a.data[base+j] * xv
		}
		dst[i] = s
	}
}

// VecMul computes xᵀ·a for a row vector x given as a slice, returning a slice.
func VecMul(x []float64, a *Dense) []float64 {
	if a.rows != len(x) {
		panic(fmt.Errorf("%w: VecMul %d · %dx%d", ErrShape, len(x), a.rows, a.cols))
	}
	out := make([]float64, a.cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		base := i * a.cols
		for j := 0; j < a.cols; j++ {
			out[j] += xv * a.data[base+j]
		}
	}
	return out
}

// VecMulInto computes dst = xᵀ·a without allocating; dst must have length
// a.Cols() and must not alias x.
func VecMulInto(dst []float64, x []float64, a *Dense) {
	if a.rows != len(x) || a.cols != len(dst) {
		panic(fmt.Errorf("%w: VecMulInto %d = %d · %dx%d", ErrShape, len(dst), len(x), a.rows, a.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		base := i * a.cols
		for j := 0; j < a.cols; j++ {
			dst[j] += xv * a.data[base+j]
		}
	}
}

// Dot returns the dot product of two equal-length slices.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// OuterProduct returns the rows(a)×rows(b) matrix a bᵀ for column vectors
// given as slices.
func OuterProduct(a, b []float64) *Dense {
	out := Zeros(len(a), len(b))
	for i, av := range a {
		if av == 0 {
			continue
		}
		base := i * len(b)
		for j, bv := range b {
			out.data[base+j] = av * bv
		}
	}
	return out
}

// Equal reports whether a and b have the same shape and elements within tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Trace returns the trace of a square matrix.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic(ErrShape)
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// Symmetrize sets m = (m + mᵀ)/2 for square m and returns m. OS-ELM's P
// matrix is symmetric in exact arithmetic; re-symmetrizing controls drift.
func (m *Dense) Symmetrize() *Dense {
	if m.rows != m.cols {
		panic(ErrShape)
	}
	n := m.rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (m.data[i*n+j] + m.data[j*n+i])
			m.data[i*n+j] = v
			m.data[j*n+i] = v
		}
	}
	return m
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dense %dx%d\n", m.rows, m.cols)
	maxR, maxC := m.rows, m.cols
	const cap = 8
	trunc := false
	if maxR > cap {
		maxR, trunc = cap, true
	}
	if maxC > cap {
		maxC, trunc = cap, true
	}
	for i := 0; i < maxR; i++ {
		for j := 0; j < maxC; j++ {
			fmt.Fprintf(&sb, "% .5g\t", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	if trunc {
		sb.WriteString("...\n")
	}
	return sb.String()
}
