package mat

import (
	"testing"

	"oselmrl/internal/rng"
)

func TestMulVecInto(t *testing.T) {
	r := rng.New(80)
	a := randomMatrix(r, 7, 5, -3, 3)
	x := make([]float64, 5)
	r.FillUniform(x, -3, 3)
	dst := make([]float64, 7)
	MulVecInto(dst, a, x)
	want := MulVec(a, x)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecInto[%d] = %v want %v", i, dst[i], want[i])
		}
	}
	// Stale destination contents must be overwritten.
	for i := range dst {
		dst[i] = 999
	}
	MulVecInto(dst, a, x)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatal("MulVecInto must overwrite dst")
		}
	}
}

func TestVecMulInto(t *testing.T) {
	r := rng.New(81)
	a := randomMatrix(r, 6, 9, -2, 2)
	x := make([]float64, 6)
	r.FillUniform(x, -2, 2)
	dst := make([]float64, 9)
	for i := range dst {
		dst[i] = -1 // stale values
	}
	VecMulInto(dst, x, a)
	want := VecMul(x, a)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("VecMulInto[%d] = %v want %v", i, dst[i], want[i])
		}
	}
}

func TestIntoShapePanics(t *testing.T) {
	a := Zeros(3, 4)
	cases := map[string]func(){
		"MulVecInto dst": func() { MulVecInto(make([]float64, 2), a, make([]float64, 4)) },
		"MulVecInto x":   func() { MulVecInto(make([]float64, 3), a, make([]float64, 5)) },
		"VecMulInto dst": func() { VecMulInto(make([]float64, 5), make([]float64, 3), a) },
		"VecMulInto x":   func() { VecMulInto(make([]float64, 4), make([]float64, 2), a) },
		"MulInto shape":  func() { MulInto(Zeros(2, 2), a, Zeros(4, 5)) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestMulLargeUsesParallelPath: a product big enough to cross the
// parallel threshold must agree with the serial reference.
func TestMulLargeUsesParallelPath(t *testing.T) {
	r := rng.New(82)
	// 300*300*300 = 2.7e7 > parallelThreshold (4.2e6).
	a := randomMatrix(r, 300, 300, -1, 1)
	b := randomMatrix(r, 300, 300, -1, 1)
	got := Mul(a, b)
	want := MulSerial(a, b)
	if !Equal(got, want, 1e-9) {
		t.Error("parallel Mul path disagrees with serial")
	}
}

func TestMulT3RightAssociation(t *testing.T) {
	r := rng.New(83)
	// Shapes chosen so a·(b·c) is cheaper: a is 2x10, b 10x10, c 10x1.
	a := randomMatrix(r, 2, 10, -1, 1)
	b := randomMatrix(r, 10, 10, -1, 1)
	c := randomMatrix(r, 10, 1, -1, 1)
	got := MulT3(a, b, c)
	want := Mul(Mul(a, b), c)
	if !Equal(got, want, 1e-10) {
		t.Error("MulT3 right-association path wrong")
	}
}

func TestSolveLUErrorPaths(t *testing.T) {
	// Singular matrix surfaces the factorization error.
	if _, err := SolveLU(New(2, 2, []float64{1, 1, 1, 1}), Zeros(2, 1)); err == nil {
		t.Error("singular SolveLU must fail")
	}
	// Mismatched rhs rows.
	f, err := LUDecompose(Eye(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(Zeros(2, 1)); err == nil {
		t.Error("rhs row mismatch must fail")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(Zeros(2, 2), Zeros(2, 3), 1) {
		t.Error("different shapes are never equal")
	}
}

func TestCopyFromShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zeros(2, 2).CopyFrom(Zeros(3, 3))
}

func TestColsAccessor(t *testing.T) {
	if Zeros(2, 5).Cols() != 5 {
		t.Error("Cols")
	}
}

func TestDotLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// MulSerialInto row i must be BIT-identical to VecMulInto of row i — the
// accumulation order and zero-skip are shared, and the serving tier's
// batched-vs-unbatched golden tests depend on it.
func TestMulSerialIntoRowsBitIdenticalToVecMul(t *testing.T) {
	r := rng.New(82)
	a := randomMatrix(r, 9, 130, -2, 2) // inner dim > gemmBlock to cross a tile edge
	a.Set(3, 17, 0)                     // exercise the zero-operand skip
	b := randomMatrix(r, 130, 7, -2, 2)
	dst := Zeros(9, 7)
	for i := range dst.data {
		dst.data[i] = 42 // stale values must be overwritten
	}
	MulSerialInto(dst, a, b)
	row := make([]float64, 7)
	for i := 0; i < 9; i++ {
		VecMulInto(row, a.Row(i), b)
		for j := range row {
			if dst.At(i, j) != row[j] {
				t.Fatalf("dst[%d,%d] = %v, VecMulInto gives %v", i, j, dst.At(i, j), row[j])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch must panic")
		}
	}()
	MulSerialInto(Zeros(2, 2), a, b)
}
