package fleet

import (
	"fmt"
	"strings"

	"oselmrl/internal/fpga"
)

// PopulationTraining is the fleet's training workload: members
// independent OS-ELM agents (one per chain), each running steps RL
// transitions of the paper's inner loop — two predicts (ε-greedy action
// selection and the Bellman target) and one seq_train per transition.
// Costs come from the kernel-boundary table.
func PopulationTraining(members, steps int, costs fpga.KernelCosts) Workload {
	w := Workload{Name: "population-training", Members: make([]Chain, members)}
	for m := range w.Members {
		chain := make(Chain, 0, 3*steps)
		for s := 0; s < steps; s++ {
			chain = append(chain,
				Job{Kernel: fpga.KernelPredict, Cycles: costs[fpga.KernelPredict]},
				Job{Kernel: fpga.KernelPredict, Cycles: costs[fpga.KernelPredict]},
				Job{Kernel: fpga.KernelSeqTrain, Cycles: costs[fpga.KernelSeqTrain]},
			)
		}
		w.Members[m] = chain
	}
	return w
}

// BatchedInference is the fleet's serving workload: batch independent
// single-predict requests (micro-batched evaluation fanned out across
// cores). Each request is its own member so any free core can take it.
func BatchedInference(batch int, costs fpga.KernelCosts) Workload {
	w := Workload{Name: "batched-inference", Members: make([]Chain, batch)}
	for m := range w.Members {
		w.Members[m] = Chain{{Kernel: fpga.KernelPredict, Cycles: costs[fpga.KernelPredict]}}
	}
	return w
}

// SpeedupPoint is one row of a 1→N speedup curve.
type SpeedupPoint struct {
	// Cores is the simulated core count.
	Cores int
	// MakespanCycles and MakespanSeconds are the fleet completion time.
	MakespanCycles  int64
	MakespanSeconds float64
	// Speedup is the serialized-reference time over the makespan.
	Speedup float64
	// BusyMin and BusyMax bound the per-core busy fractions.
	BusyMin, BusyMax float64
	// MaxQueueDepth is the peak dispatcher ready-queue depth.
	MaxQueueDepth int
}

// SpeedupCurve simulates the workload at 1..maxCores cores (overriding
// cfg.Cores) and returns one point per core count — the headline
// modelled-speedup artifact. Monotonicity and Amdahl-style saturation
// of the curve are asserted in tests and CI smoke.
func SpeedupCurve(w Workload, cfg Config, maxCores int) []SpeedupPoint {
	if maxCores < 1 {
		maxCores = 1
	}
	curve := make([]SpeedupPoint, 0, maxCores)
	for n := 1; n <= maxCores; n++ {
		c := cfg
		c.Cores = n
		r := Simulate(w, c)
		lo, hi := r.BusyMinMax()
		curve = append(curve, SpeedupPoint{
			Cores:           n,
			MakespanCycles:  r.MakespanCycles,
			MakespanSeconds: r.MakespanSeconds(),
			Speedup:         r.Speedup(),
			BusyMin:         lo,
			BusyMax:         hi,
			MaxQueueDepth:   r.MaxQueueDepth,
		})
	}
	return curve
}

// FormatSpeedupTable renders a curve as an aligned text table (the
// schema documented in results/README.md). The bytes are deterministic
// for equal curves — the determinism test compares them directly.
func FormatSpeedupTable(curve []SpeedupPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s %14s %9s %9s %9s %10s\n",
		"cores", "makespan_ms", "speedup", "busy_min", "busy_max", "queue_max")
	for _, p := range curve {
		fmt.Fprintf(&sb, "%6d %14.3f %9.3f %9.3f %9.3f %10d\n",
			p.Cores, p.MakespanSeconds*1e3, p.Speedup, p.BusyMin, p.BusyMax, p.MaxQueueDepth)
	}
	return sb.String()
}

// HeadroomProjection is the per-device projection cmd/fpgares reports:
// how many cores the resource estimator admits, and the modelled
// aggregate update rate of the fully replicated device running the RL
// inner loop, from the fleet simulator's busy fractions (not from the
// single-core occupancy profile — the dispatcher's serialization is
// part of the model).
type HeadroomProjection struct {
	// Hidden is the design point.
	Hidden int
	// Cores and Binding come from fpga.CoresPerDevice.
	Cores   int
	Binding string
	// UpdatesPerSecCore is one core's modelled transition rate (a
	// 1-core fleet running the inner loop, dispatch included).
	UpdatesPerSecCore float64
	// UpdatesPerSecDevice is the fully replicated device's aggregate
	// modelled transition rate (an N-core fleet sharing the dispatcher).
	UpdatesPerSecDevice float64
	// BusyMean is the mean per-core busy fraction of the N-core fleet.
	BusyMean float64
	// Speedup is the N-core fleet's modelled speedup over one core.
	Speedup float64
}

// headroomSteps is the probe length (transitions per member) used for
// headroom projections — long enough that startup skew is negligible.
const headroomSteps = 8

// ProjectHeadroom computes the device headroom for one design point.
// The N=1 path of this projection is pinned against the executed
// sequential core in tests (the fpgares agreement regression test).
func ProjectHeadroom(inputs, hidden int, cfg Config) HeadroomProjection {
	u := fpga.EstimateResources(inputs, hidden)
	p := HeadroomProjection{Hidden: hidden}
	if !u.Feasible {
		return p
	}
	p.Cores, p.Binding = fpga.CoresPerDevice(u, fpga.XC7Z020)
	if p.Cores < 1 {
		return p
	}
	costs := fpga.AnalyticKernelCosts(inputs, hidden, 1, fpga.DefaultCycleModel())
	cfg = cfg.fill()

	one := Simulate(PopulationTraining(1, headroomSteps, costs), Config{
		Cores: 1, DispatchCycles: cfg.DispatchCycles, ClockHz: cfg.ClockHz,
	})
	p.UpdatesPerSecCore = float64(headroomSteps) / one.MakespanSeconds()

	cfg.Cores = p.Cores
	full := Simulate(PopulationTraining(p.Cores, headroomSteps, costs), cfg)
	p.UpdatesPerSecDevice = float64(p.Cores*headroomSteps) / full.MakespanSeconds()
	p.Speedup = full.Speedup()
	var busy float64
	for i := range full.CoreBusyCycles {
		busy += full.BusyFraction(i)
	}
	p.BusyMean = busy / float64(p.Cores)
	return p
}
