// Package fleet is a discrete-event simulator for a multi-core OS-ELM
// fleet on one FPGA device: N replicated single-unit cores (N capped by
// the Table 3 resource estimator via fpga.CoresPerDevice) fed
// predict/seq_train kernels by a single shared dispatcher over the AXI
// interconnect. It answers the question the paper's single-core cycle
// model cannot: how does modelled time scale as cores are replicated,
// and where does the shared dispatcher saturate the curve?
//
// # Model
//
// Time is counted in integer device cycles (125 MHz by default, the
// paper's PL clock). A Workload is a set of members, each a sequential
// chain of kernel invocations (Jobs) with per-invocation cycle costs
// taken from the fpga kernel-boundary interface (Core.KernelCycles /
// AnalyticKernelCosts) — the simulator charges time without
// re-executing any arithmetic. The dispatcher is serialized: issuing
// one kernel to a core occupies it for Config.DispatchCycles (default
// 1000 cycles = the 8 µs AXI handshake of timing.FPGA125 at 125 MHz),
// which is the Amdahl-style serial fraction that bounds fleet speedup.
// Cores execute at most one job at a time; each core accumulates its
// busy cycles in its own timing.Counters (merged only at the
// simulation barrier — the safe-for-concurrent-use pattern).
//
// # Determinism
//
// The event queue is a binary heap ordered by (time, seq): events at
// equal timestamps fire in ascending sequence number, i.e. insertion
// order — the tie-break rule. Ready members queue FIFO; a free core is
// always the lowest-indexed free core. Two simulations of the same
// workload and config therefore produce byte-identical event logs and
// speedup tables (asserted by TestFleetDeterminism).
package fleet

import (
	"container/heap"
	"fmt"
	"strings"

	"oselmrl/internal/fpga"
	"oselmrl/internal/timing"
)

// DefaultClockHz is the paper's programmable-logic clock (§4.2).
const DefaultClockHz = 125e6

// DefaultDispatchCycles is the serialized per-kernel dispatch cost: the
// 8 µs AXI invocation handshake of timing.FPGA125 expressed in 125 MHz
// cycles. With this default a 1-core fleet's makespan equals the
// sequential timing model's Profile.Seconds to the cycle.
// (Pinned against timing.FPGA125 in tests; a const cannot reference it.)
const DefaultDispatchCycles int64 = 1000

// Job is one kernel invocation in a member's chain.
type Job struct {
	// Kernel identifies the module invoked (predict or seq_train).
	Kernel fpga.Kernel
	// Cycles is the invocation's datapath cost at the kernel boundary.
	Cycles int64
}

// Chain is one member's sequential program: job i+1 becomes ready only
// when job i completes (an agent cannot overlap its own kernels).
type Chain []Job

// Workload is a named set of member chains to schedule on one device.
type Workload struct {
	// Name labels reports and logs ("population-training", ...).
	Name string
	// Members holds one chain per fleet member. Distinct members are
	// independent and may run concurrently on different cores.
	Members []Chain
}

// TotalJobs counts kernel invocations across all members.
func (w Workload) TotalJobs() int {
	n := 0
	for _, c := range w.Members {
		n += len(c)
	}
	return n
}

// TotalCycles sums the kernel-boundary cycle cost across all members
// (excluding dispatch).
func (w Workload) TotalCycles() int64 {
	var s int64
	for _, c := range w.Members {
		for _, j := range c {
			s += j.Cycles
		}
	}
	return s
}

// Config parameterizes one simulation.
type Config struct {
	// Cores is the number of replicated cores on the device (>= 1).
	Cores int
	// DispatchCycles is the serialized dispatcher occupancy per issued
	// kernel; 0 selects DefaultDispatchCycles.
	DispatchCycles int64
	// ClockHz converts cycles to modelled seconds; 0 selects
	// DefaultClockHz.
	ClockHz float64
}

func (c Config) fill() Config {
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.DispatchCycles <= 0 {
		c.DispatchCycles = DefaultDispatchCycles
	}
	if c.ClockHz <= 0 {
		c.ClockHz = DefaultClockHz
	}
	return c
}

// Record is one event-log entry. Logs are deterministic: equal inputs
// produce byte-identical LogText output.
type Record struct {
	// At is the event time in device cycles.
	At int64
	// Seq is the record's index in the log — strictly increasing, so
	// equal-time records preserve their firing order.
	Seq uint64
	// Ev is the event kind: "ready", "dispatch", "start" or "done".
	Ev string
	// Member is the chain the event belongs to.
	Member int
	// Core is the core involved (-1 for ready events, which precede
	// core assignment).
	Core int
	// Kernel and Cycles describe the job.
	Kernel fpga.Kernel
	// Cycles is the job's kernel-boundary cost.
	Cycles int64
}

// Result summarizes one simulation.
type Result struct {
	// Workload and Config echo the inputs.
	Workload string
	Config   Config
	// MakespanCycles is the completion time of the last job.
	MakespanCycles int64
	// CoreBusyCycles[i] is the total cycles core i spent executing jobs.
	CoreBusyCycles []int64
	// CoreJobs[i] counts jobs executed on core i.
	CoreJobs []int64
	// CoreCounters[i] is core i's private per-phase work counters
	// (predict_seq / seq_train calls and cycle work), owned by the core
	// during simulation and merged only via MergedCounters — the
	// Counters-per-core pattern that keeps timing.Counters safe for
	// concurrent fleet use.
	CoreCounters []*timing.Counters
	// Dispatches counts issued kernels; DispatchBusyCycles is the
	// dispatcher's total occupancy (Dispatches × DispatchCycles).
	Dispatches         int64
	DispatchBusyCycles int64
	// MaxQueueDepth is the peak length of the ready queue observed when
	// a member became ready; QueueDepthSum/Dispatches is the mean depth
	// seen at dispatch time.
	MaxQueueDepth int
	QueueDepthSum int64
	// TotalJobCycles is Σ CoreBusyCycles — the fleet's modelled kernel
	// cycles, which the N=1 property test pins against Core.Cycles().
	TotalJobCycles int64
	// Log is the full deterministic event log.
	Log []Record
}

// MakespanSeconds converts the makespan to modelled device seconds.
func (r *Result) MakespanSeconds() float64 {
	return float64(r.MakespanCycles) / r.Config.ClockHz
}

// BusyFraction returns core i's busy fraction of the makespan (0 for an
// empty run).
func (r *Result) BusyFraction(i int) float64 {
	if r.MakespanCycles == 0 {
		return 0
	}
	return float64(r.CoreBusyCycles[i]) / float64(r.MakespanCycles)
}

// BusyMinMax returns the smallest and largest per-core busy fraction.
func (r *Result) BusyMinMax() (lo, hi float64) {
	for i := range r.CoreBusyCycles {
		f := r.BusyFraction(i)
		if i == 0 || f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return lo, hi
}

// MeanQueueDepth is the mean ready-queue depth observed at dispatch
// instants.
func (r *Result) MeanQueueDepth() float64 {
	if r.Dispatches == 0 {
		return 0
	}
	return float64(r.QueueDepthSum) / float64(r.Dispatches)
}

// MergedCounters merges every core's private counters at the fleet
// barrier — the only sanctioned cross-core aggregation point.
func (r *Result) MergedCounters() *timing.Counters {
	merged := timing.NewCounters()
	for _, c := range r.CoreCounters {
		merged.Merge(c)
	}
	return merged
}

// Breakdown reports the fleet's modelled time as a timing.Breakdown:
// per-phase device seconds of the serialized reference execution (each
// kernel's cycles plus its dispatch handshake), compatible with the
// sequential model's Figure 5 shape. For a 1-core fleet the breakdown
// total equals MakespanSeconds exactly; for N cores the ratio
// Breakdown().Total() / MakespanSeconds() is the modelled speedup.
func (r *Result) Breakdown() timing.Breakdown {
	out := make(timing.Breakdown)
	merged := r.MergedCounters()
	for _, p := range []timing.Phase{timing.PhasePredictSeq, timing.PhaseSeqTrain} {
		calls := merged.Calls(p)
		if calls == 0 {
			continue
		}
		cycles := merged.Work(p) + float64(calls*r.Config.DispatchCycles)
		out[p] = cycles / r.Config.ClockHz
	}
	return out
}

// SequentialSeconds is the serialized reference time: every kernel plus
// its dispatch run back-to-back on one core — identical to a 1-core
// simulation's makespan (asserted in tests).
func (r *Result) SequentialSeconds() float64 {
	return float64(r.TotalJobCycles+r.DispatchBusyCycles) / r.Config.ClockHz
}

// Speedup is the modelled fleet speedup over the serialized reference.
func (r *Result) Speedup() float64 {
	if r.MakespanCycles == 0 {
		return 1
	}
	return float64(r.TotalJobCycles+r.DispatchBusyCycles) / float64(r.MakespanCycles)
}

// LogText renders the event log, one line per record, in a stable
// format (the determinism test compares these bytes).
func (r *Result) LogText() []byte {
	var sb strings.Builder
	for _, rec := range r.Log {
		fmt.Fprintf(&sb, "t=%012d seq=%06d %-8s member=%03d core=%03d kernel=%s cycles=%d\n",
			rec.At, rec.Seq, rec.Ev, rec.Member, rec.Core, rec.Kernel, rec.Cycles)
	}
	return []byte(sb.String())
}

// event kinds inside the queue.
const (
	evReady      = iota // a member's next job entered the ready queue
	evDispatched        // dispatch handshake finished; job starts on its core
	evDone              // core finished a job
)

type event struct {
	at     int64
	seq    uint64
	kind   int
	member int
	core   int
}

// eventQueue is a binary min-heap ordered by (at, seq) — the package's
// documented tie-break: equal timestamps fire in insertion order.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)   { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)     { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any       { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventQueue) peekEmpty() bool { return len(q) == 0 }

// Simulate runs the workload to completion and returns the result.
func Simulate(w Workload, cfg Config) *Result {
	cfg = cfg.fill()
	res := &Result{
		Workload:       w.Name,
		Config:         cfg,
		CoreBusyCycles: make([]int64, cfg.Cores),
		CoreJobs:       make([]int64, cfg.Cores),
		CoreCounters:   make([]*timing.Counters, cfg.Cores),
	}
	for i := range res.CoreCounters {
		res.CoreCounters[i] = timing.NewCounters()
	}

	var (
		q        eventQueue
		seq      uint64
		nextJob  = make([]int, len(w.Members)) // index into each chain
		coreBusy = make([]bool, cfg.Cores)
		readyQ   []int // FIFO of members awaiting dispatch
		dispFree int64 // dispatcher free at this time
		clock    int64
	)
	push := func(at int64, kind, member, core int) {
		heap.Push(&q, event{at: at, seq: seq, kind: kind, member: member, core: core})
		seq++
	}
	logEv := func(at int64, ev string, member, core int, j Job) {
		res.Log = append(res.Log, Record{
			At: at, Seq: uint64(len(res.Log)), Ev: ev, Member: member, Core: core,
			Kernel: j.Kernel, Cycles: j.Cycles,
		})
	}
	jobOf := func(member int) Job { return w.Members[member][nextJob[member]] }

	// tryDispatch issues at most one kernel: the dispatcher is
	// serialized, so after reserving a core it is busy until
	// now + DispatchCycles and cannot issue again until then.
	tryDispatch := func(now int64) {
		if dispFree > now || len(readyQ) == 0 {
			return
		}
		core := -1
		for i, busy := range coreBusy {
			if !busy {
				core = i
				break
			}
		}
		if core < 0 {
			return
		}
		member := readyQ[0]
		readyQ = readyQ[1:]
		res.QueueDepthSum += int64(len(readyQ)) + 1
		coreBusy[core] = true
		dispFree = now + cfg.DispatchCycles
		res.Dispatches++
		res.DispatchBusyCycles += cfg.DispatchCycles
		logEv(now, "dispatch", member, core, jobOf(member))
		push(dispFree, evDispatched, member, core)
	}

	for m, chain := range w.Members {
		if len(chain) > 0 {
			push(0, evReady, m, -1)
		}
	}
	for !q.peekEmpty() {
		e := heap.Pop(&q).(event)
		clock = e.at
		switch e.kind {
		case evReady:
			readyQ = append(readyQ, e.member)
			if d := len(readyQ); d > res.MaxQueueDepth {
				res.MaxQueueDepth = d
			}
			logEv(clock, "ready", e.member, -1, jobOf(e.member))
			tryDispatch(clock)
		case evDispatched:
			j := jobOf(e.member)
			logEv(clock, "start", e.member, e.core, j)
			push(clock+j.Cycles, evDone, e.member, e.core)
			// The handshake just finished, so the dispatcher is free
			// again at exactly this time.
			tryDispatch(clock)
		case evDone:
			j := jobOf(e.member)
			logEv(clock, "done", e.member, e.core, j)
			res.CoreBusyCycles[e.core] += j.Cycles
			res.CoreJobs[e.core]++
			res.TotalJobCycles += j.Cycles
			res.CoreCounters[e.core].Add(j.Kernel.Phase(), float64(j.Cycles))
			coreBusy[e.core] = false
			nextJob[e.member]++
			if nextJob[e.member] < len(w.Members[e.member]) {
				push(clock, evReady, e.member, -1)
			}
			if clock > res.MakespanCycles {
				res.MakespanCycles = clock
			}
			tryDispatch(clock)
		}
	}
	return res
}
