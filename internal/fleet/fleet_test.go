package fleet_test

import (
	"bytes"
	"math"
	"testing"

	"oselmrl/internal/fixed"
	"oselmrl/internal/fleet"
	"oselmrl/internal/fpga"
	"oselmrl/internal/timing"
)

// TestDefaultDispatchMatchesTimingProfile pins the simulator's default
// dispatch cost to the sequential timing model's AXI handshake — the
// equality that makes a 1-core fleet reproduce Profile.Seconds exactly.
func TestDefaultDispatchMatchesTimingProfile(t *testing.T) {
	want := int64(math.Round(timing.FPGA125.CallOverheadSec * fleet.DefaultClockHz))
	if fleet.DefaultDispatchCycles != want {
		t.Fatalf("DefaultDispatchCycles = %d, timing.FPGA125 handshake = %d cycles",
			fleet.DefaultDispatchCycles, want)
	}
	if fleet.DefaultClockHz != timing.FPGA125.WorkUnitsPerSec {
		t.Fatalf("DefaultClockHz = %g, timing.FPGA125 rate = %g",
			fleet.DefaultClockHz, timing.FPGA125.WorkUnitsPerSec)
	}
}

// TestFleetN1MatchesSequentialCore is the N=1 property test: for every
// QFormat × hidden size × cycle model, a 1-core fleet running the RL
// inner loop charges exactly the cycles the executed datapath counts —
// Σ fleet modelled cycles == Core.Cycles() == analytic kernel cycles —
// and its makespan is that plus one dispatch handshake per kernel
// (extending the Prof attribution invariant across the fleet layer).
func TestFleetN1MatchesSequentialCore(t *testing.T) {
	models := map[string]fpga.CycleModel{
		"default":   fpga.DefaultCycleModel(),
		"pipelined": fpga.PipelinedCycleModel(),
	}
	qformats := make([]fixed.QFormat, 0, 3)
	for _, s := range []string{"Q16", "Q20", "Q24"} {
		q, err := fixed.ParseQFormat(s)
		if err != nil {
			t.Fatal(err)
		}
		qformats = append(qformats, q)
	}
	const steps = 6
	for name, model := range models {
		for _, q := range qformats {
			for _, hidden := range []int{32, 64, 128, 192} {
				core := fpga.NewCoreQ(5, hidden, 1, model, q)

				// The kernel-boundary interface agrees with the analytic
				// formulas at every design point.
				costs := core.KernelCosts()
				if got := fpga.AnalyticKernelCosts(5, hidden, 1, model); got != costs {
					t.Fatalf("%s/%s/h=%d: AnalyticKernelCosts %v != core table %v",
						name, q, hidden, got, costs)
				}
				if costs.Cycles(fpga.KernelPredict) != core.KernelCycles(fpga.KernelPredict) ||
					costs.Cycles(fpga.KernelSeqTrain) != core.KernelCycles(fpga.KernelSeqTrain) {
					t.Fatalf("%s/%s/h=%d: KernelCycles disagrees with KernelCosts", name, q, hidden)
				}

				// Execute the inner loop on the real datapath.
				x := make([]fixed.Fixed, 5)
				target := []fixed.Fixed{q.Normalized().FromFloat(0.25)}
				for s := 0; s < steps; s++ {
					core.Predict(x)
					core.Predict(x)
					core.SeqTrain(x, target)
				}
				executed := core.Cycles()

				// Simulate the same program on a 1-core fleet.
				w := fleet.PopulationTraining(1, steps, costs)
				r := fleet.Simulate(w, fleet.Config{Cores: 1})
				if r.TotalJobCycles != executed {
					t.Fatalf("%s/%s/h=%d: fleet modelled %d cycles, core executed %d",
						name, q, hidden, r.TotalJobCycles, executed)
				}
				jobs := int64(w.TotalJobs())
				wantMakespan := executed + jobs*fleet.DefaultDispatchCycles
				if r.MakespanCycles != wantMakespan {
					t.Fatalf("%s/%s/h=%d: makespan %d, want %d (executed + %d dispatches)",
						name, q, hidden, r.MakespanCycles, wantMakespan, jobs)
				}
				if got := r.Speedup(); got != 1 {
					t.Fatalf("%s/%s/h=%d: 1-core speedup = %v, want exactly 1", name, q, hidden, got)
				}

				// The merged per-core counters reproduce the sequential
				// timing model: same calls, same cycle work, and modelled
				// seconds matching Profile.Seconds per PL phase.
				merged := r.MergedCounters()
				if merged.Calls(timing.PhasePredictSeq) != 2*steps || merged.Calls(timing.PhaseSeqTrain) != steps {
					t.Fatalf("%s/%s/h=%d: merged calls %d/%d, want %d/%d", name, q, hidden,
						merged.Calls(timing.PhasePredictSeq), merged.Calls(timing.PhaseSeqTrain), 2*steps, steps)
				}
				var profSeconds float64
				for _, p := range []timing.Phase{timing.PhasePredictSeq, timing.PhaseSeqTrain} {
					profSeconds += timing.FPGA125.Seconds(p, merged.Calls(p), merged.Work(p))
				}
				if rel := math.Abs(profSeconds-r.MakespanSeconds()) / profSeconds; rel > 1e-12 {
					t.Fatalf("%s/%s/h=%d: fleet makespan %.12gs vs Profile.Seconds %.12gs (rel %g)",
						name, q, hidden, r.MakespanSeconds(), profSeconds, rel)
				}
				bd := r.Breakdown()
				if rel := math.Abs(bd.Total()-r.MakespanSeconds()) / profSeconds; rel > 1e-12 {
					t.Fatalf("%s/%s/h=%d: 1-core Breakdown total %.12g != makespan %.12g",
						name, q, hidden, bd.Total(), r.MakespanSeconds())
				}
			}
		}
	}
}

// TestFleetDeterminism runs the same config twice and demands
// byte-identical event logs and speedup tables (the documented
// (time, seq) tie-break makes this exact, not statistical).
func TestFleetDeterminism(t *testing.T) {
	costs := fpga.AnalyticKernelCosts(5, 64, 1, fpga.DefaultCycleModel())
	w := fleet.PopulationTraining(5, 7, costs)
	// Unequal chains exercise equal-timestamp ties from staggered
	// completions.
	w.Members[2] = w.Members[2][:9]
	w.Members[4] = append(fleet.Chain{{Kernel: fpga.KernelPredict, Cycles: 123}}, w.Members[4]...)

	run := func() ([]byte, []byte) {
		r := fleet.Simulate(w, fleet.Config{Cores: 3})
		curve := fleet.SpeedupCurve(w, fleet.Config{}, 4)
		return r.LogText(), []byte(fleet.FormatSpeedupTable(curve))
	}
	log1, tab1 := run()
	log2, tab2 := run()
	if !bytes.Equal(log1, log2) {
		t.Fatalf("event logs differ between identical runs:\n--- run1 ---\n%s--- run2 ---\n%s", log1, log2)
	}
	if !bytes.Equal(tab1, tab2) {
		t.Fatalf("speedup tables differ between identical runs:\n%s\nvs\n%s", tab1, tab2)
	}
	if len(log1) == 0 {
		t.Fatal("empty event log")
	}
}

// TestSpeedupCurveMonotoneAndSaturates checks the headline artifact's
// shape for both workloads: speedup starts at exactly 1, never
// decreases as cores are added, stays below linear, and saturates at
// the serialized dispatcher's Amdahl bound.
func TestSpeedupCurveMonotoneAndSaturates(t *testing.T) {
	costs := fpga.AnalyticKernelCosts(5, 64, 1, fpga.DefaultCycleModel())
	for _, tc := range []struct {
		name string
		w    fleet.Workload
	}{
		{"population", fleet.PopulationTraining(8, 10, costs)},
		{"inference", fleet.BatchedInference(64, costs)},
	} {
		curve := fleet.SpeedupCurve(tc.w, fleet.Config{}, 8)
		if curve[0].Speedup != 1 {
			t.Fatalf("%s: speedup at 1 core = %v, want exactly 1", tc.name, curve[0].Speedup)
		}
		for i := 1; i < len(curve); i++ {
			if curve[i].Speedup < curve[i-1].Speedup {
				t.Fatalf("%s: speedup not monotone: cores %d -> %d went %.4f -> %.4f",
					tc.name, curve[i-1].Cores, curve[i].Cores, curve[i-1].Speedup, curve[i].Speedup)
			}
			if curve[i].Speedup >= float64(curve[i].Cores) {
				t.Fatalf("%s: speedup %.4f at %d cores is not sublinear (free dispatcher?)",
					tc.name, curve[i].Speedup, curve[i].Cores)
			}
		}
		// Amdahl bound: the dispatcher serializes jobs ×
		// DefaultDispatchCycles, so makespan >= that and speedup <=
		// total/(serial fraction).
		totalJobs := int64(tc.w.TotalJobs())
		serial := totalJobs * fleet.DefaultDispatchCycles
		bound := float64(tc.w.TotalCycles()+serial) / float64(serial)
		last := curve[len(curve)-1]
		if last.Speedup > bound+1e-9 {
			t.Fatalf("%s: speedup %.4f exceeds dispatcher Amdahl bound %.4f", tc.name, last.Speedup, bound)
		}
	}

	// The single-predict inference workload (400-cycle jobs behind a
	// 1000-cycle dispatch) saturates early: adding cores beyond a few
	// changes nothing, so the curve must flatten completely.
	costs32 := fpga.AnalyticKernelCosts(5, 32, 1, fpga.DefaultCycleModel())
	curve := fleet.SpeedupCurve(fleet.BatchedInference(64, costs32), fleet.Config{}, 8)
	if diff := curve[7].Speedup - curve[3].Speedup; diff > 1e-9 {
		t.Fatalf("inference curve did not saturate: speedup(8)-speedup(4) = %g", diff)
	}
	if curve[7].Speedup <= 1 {
		t.Fatal("inference curve shows no speedup at all")
	}
}

// TestSimulateAccounting cross-checks the bookkeeping identities every
// simulation must satisfy.
func TestSimulateAccounting(t *testing.T) {
	costs := fpga.AnalyticKernelCosts(5, 32, 1, fpga.DefaultCycleModel())
	w := fleet.PopulationTraining(6, 5, costs)
	r := fleet.Simulate(w, fleet.Config{Cores: 4})

	var busy, jobs int64
	for i := range r.CoreBusyCycles {
		busy += r.CoreBusyCycles[i]
		jobs += r.CoreJobs[i]
		if f := r.BusyFraction(i); f < 0 || f > 1 {
			t.Fatalf("core %d busy fraction %v out of [0,1]", i, f)
		}
	}
	if busy != r.TotalJobCycles || r.TotalJobCycles != w.TotalCycles() {
		t.Fatalf("busy cycles %d / total %d / workload %d disagree", busy, r.TotalJobCycles, w.TotalCycles())
	}
	if jobs != int64(w.TotalJobs()) || r.Dispatches != jobs {
		t.Fatalf("jobs %d, dispatches %d, workload %d disagree", jobs, r.Dispatches, w.TotalJobs())
	}
	if r.MaxQueueDepth < 1 || r.MaxQueueDepth > len(w.Members) {
		t.Fatalf("implausible max queue depth %d", r.MaxQueueDepth)
	}
	merged := r.MergedCounters()
	wantPred := int64(6 * 5 * 2)
	if merged.Calls(timing.PhasePredictSeq) != wantPred || merged.Calls(timing.PhaseSeqTrain) != 30 {
		t.Fatalf("merged counters calls %d/%d, want %d/30",
			merged.Calls(timing.PhasePredictSeq), merged.Calls(timing.PhaseSeqTrain), wantPred)
	}
}

// TestProjectHeadroomN1Agreement is the fpgares regression test: the
// headroom projection's per-core rate must equal the direct sequential
// computation — executed datapath cycles plus one handshake per kernel
// — not the occupancy-only estimate the old report projected from.
func TestProjectHeadroomN1Agreement(t *testing.T) {
	for _, hidden := range []int{32, 64} {
		p := fleet.ProjectHeadroom(5, hidden, fleet.Config{})
		if p.Cores < 1 {
			t.Fatalf("h=%d: no cores fit", hidden)
		}

		// Direct path: execute the probe's inner loop on a real core.
		core := fpga.NewCore(5, hidden, 1, fpga.DefaultCycleModel())
		x := make([]fixed.Fixed, 5)
		target := []fixed.Fixed{core.Format().FromFloat(0.25)}
		const steps = 8
		for s := 0; s < steps; s++ {
			core.Predict(x)
			core.Predict(x)
			core.SeqTrain(x, target)
		}
		cycles := core.Cycles() + 3*steps*fleet.DefaultDispatchCycles
		direct := float64(steps) * fleet.DefaultClockHz / float64(cycles)
		if rel := math.Abs(p.UpdatesPerSecCore-direct) / direct; rel > 1e-12 {
			t.Fatalf("h=%d: projection %.6f upd/s vs direct %.6f upd/s (rel %g)",
				hidden, p.UpdatesPerSecCore, direct, rel)
		}
		if p.UpdatesPerSecDevice < p.UpdatesPerSecCore {
			t.Fatalf("h=%d: device rate %.1f below single-core rate %.1f",
				hidden, p.UpdatesPerSecDevice, p.UpdatesPerSecCore)
		}
		if p.BusyMean <= 0 || p.BusyMean > 1 {
			t.Fatalf("h=%d: busy mean %v out of (0,1]", hidden, p.BusyMean)
		}
	}
}

// TestCoresPerDeviceCapsCurve ensures the resource estimator bounds the
// sweep: the cap is positive at every feasible Table 3 point and zero
// for the 256-unit design that does not fit.
func TestCoresPerDeviceCapsCurve(t *testing.T) {
	for _, hidden := range []int{32, 64, 128, 192} {
		u := fpga.EstimateResources(5, hidden)
		cores, binding := fpga.CoresPerDevice(u, fpga.XC7Z020)
		if cores < 1 || binding == "" {
			t.Fatalf("h=%d: cores=%d binding=%q", hidden, cores, binding)
		}
	}
	u := fpga.EstimateResources(5, 256)
	if u.Feasible {
		t.Fatal("256-unit design should not fit (paper Table 3)")
	}
}
