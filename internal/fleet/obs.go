package fleet

import (
	"fmt"
	"strconv"

	"oselmrl/internal/obs"
)

// Publish records the simulation's fleet_* metrics on the emitter
// (naming documented in results/README.md): per-core busy-fraction
// gauges labeled {device, core}, dispatcher queue-depth gauges, the
// modelled speedup and makespan, and job/dispatch counters. It also
// emits one fleet_sim event carrying the headline numbers. Nil-safe
// like all emitter paths.
func (r *Result) Publish(e *obs.Emitter, device int) {
	if !e.Enabled() {
		return
	}
	dev := strconv.Itoa(device)
	for i := range r.CoreBusyCycles {
		e.SetGauge(obs.Labeled(obs.GaugeFleetCoreBusy, "device", dev, "core", strconv.Itoa(i)),
			r.BusyFraction(i))
	}
	e.SetGauge(obs.Labeled(obs.GaugeFleetCores, "device", dev), float64(r.Config.Cores))
	e.SetGauge(obs.Labeled(obs.GaugeFleetQueueDepthMax, "device", dev), float64(r.MaxQueueDepth))
	e.SetGauge(obs.Labeled(obs.GaugeFleetQueueDepthMean, "device", dev), r.MeanQueueDepth())
	e.SetGauge(obs.Labeled(obs.GaugeFleetSpeedup, "device", dev), r.Speedup())
	e.SetGauge(obs.Labeled(obs.GaugeFleetMakespan, "device", dev), r.MakespanSeconds())
	e.Inc(obs.Labeled(obs.MetricFleetDispatches, "device", dev), r.Dispatches)
	var jobs int64
	for _, n := range r.CoreJobs {
		jobs += n
	}
	e.Inc(obs.Labeled(obs.MetricFleetJobs, "device", dev), jobs)
	e.Emit(obs.EventFleetSim, 0, map[string]float64{
		"device":      float64(device),
		"cores":       float64(r.Config.Cores),
		"jobs":        float64(jobs),
		"makespan_s":  r.MakespanSeconds(),
		"speedup":     r.Speedup(),
		"queue_max":   float64(r.MaxQueueDepth),
		"queue_mean":  r.MeanQueueDepth(),
		"dispatches":  float64(r.Dispatches),
		"busy_cycles": float64(r.TotalJobCycles),
	})
}

// EmitTrace lays the simulation on the Perfetto timeline: one span
// group per simulated core (fleet-d<device>-core<i>) holding its
// executed kernels, plus a dispatcher group (fleet-d<device>-dispatch)
// holding the serialized handshakes. Groups follow the paired
// wall/device convention of the trace exporter — the modelled thread of
// each group lays the spans end-to-end in modelled device time, so a
// core's track length is its busy time and the dispatcher track shows
// the serial fraction that caps fleet speedup. Nil-safe.
func (r *Result) EmitTrace(tr *obs.Tracer, device int) {
	if tr == nil {
		return
	}
	clock := r.Config.ClockHz
	for _, rec := range r.Log {
		switch rec.Ev {
		case "dispatch":
			sp := tr.StartSpanGroup("dispatch:"+rec.Kernel.String(),
				fmt.Sprintf("fleet-d%d-dispatch", device))
			sp.EndModelled(float64(r.Config.DispatchCycles) / clock)
		case "start":
			sp := tr.StartSpanGroup("kern:"+rec.Kernel.String(),
				fmt.Sprintf("fleet-d%d-core%d", device, rec.Core))
			sp.EndModelled(float64(rec.Cycles) / clock)
		}
	}
}
