package fixed

import (
	"testing"

	"oselmrl/internal/mat"
	"oselmrl/internal/rng"
)

func TestMatrixRoundTrip(t *testing.T) {
	r := rng.New(1)
	d := mat.Zeros(4, 5)
	r.FillUniform(d.RawData(), -100, 100)
	// Snap to the Q20 grid first so the round trip is exact.
	for i, v := range d.RawData() {
		d.RawData()[i] = FromFloat(v).Float()
		_ = i
	}
	fm := FromDense(d)
	back := fm.ToDense()
	if !mat.Equal(d, back, 0) {
		t.Error("FromDense/ToDense round trip not exact on grid values")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, FromFloat(7))
	if m.At(1, 2).Float() != 7 {
		t.Errorf("At = %v", m.At(1, 2))
	}
	if m.Words() != 6 {
		t.Errorf("Words = %d", m.Words())
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, FromFloat(1))
	c := m.Clone()
	c.Set(0, 0, FromFloat(9))
	if m.At(0, 0).Float() != 1 {
		t.Error("Clone must deep-copy")
	}
}

func TestMaxAbsError(t *testing.T) {
	d := mat.New(1, 2, []float64{1.0, 2.0})
	fm := FromDense(d)
	ref := mat.New(1, 2, []float64{1.5, 2.0})
	if got := fm.MaxAbsError(ref); got != 0.5 {
		t.Errorf("MaxAbsError = %v", got)
	}
}

func TestQuantizationErrorBound(t *testing.T) {
	r := rng.New(2)
	d := mat.Zeros(8, 8)
	r.FillUniform(d.RawData(), -10, 10)
	fm := FromDense(d)
	if e := fm.MaxAbsError(d); e > 1.0/float64(One) {
		t.Errorf("quantization error %v exceeds one LSB", e)
	}
}

func TestNegativeDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(-1, 2)
}
