package fixed

import (
	"fmt"
	"math"

	"oselmrl/internal/mat"
)

// Matrix is a dense row-major matrix of Q20 fixed-point values — the
// on-chip BRAM contents of the FPGA core.
type Matrix struct {
	rows, cols int
	data       []Fixed
}

// NewMatrix allocates a rows×cols zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("fixed: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]Fixed, rows*cols)}
}

// FromDense quantizes a float64 matrix into fixed point.
func FromDense(m *mat.Dense) *Matrix {
	return FromDenseAcct(m, nil)
}

// FromDenseAcct is FromDense with per-element conversion accounting (NaN
// coercions, rail saturations, accumulated quantization error). acct may
// be nil, which is exactly FromDense.
func FromDenseAcct(m *mat.Dense, acct *Acct) *Matrix {
	r, c := m.Dims()
	out := NewMatrix(r, c)
	src := m.RawData()
	for i := range src {
		out.data[i] = acct.FromFloat(src[i])
	}
	return out
}

// ToDense converts back to float64.
func (m *Matrix) ToDense() *mat.Dense {
	out := mat.Zeros(m.rows, m.cols)
	dst := out.RawData()
	for i := range m.data {
		dst[i] = m.data[i].Float()
	}
	return out
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) Fixed { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v Fixed) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Words returns the number of 32-bit storage words the matrix occupies —
// the quantity the BRAM resource estimator charges for.
func (m *Matrix) Words() int { return len(m.data) }

// FrobeniusNorm returns the Frobenius norm of the matrix in real value
// units — the β-magnitude drift signal the learning-dynamics telemetry
// tracks for the quantized network.
func (m *Matrix) FrobeniusNorm() float64 {
	var sum float64
	for _, v := range m.data {
		f := v.Float()
		sum += f * f
	}
	return math.Sqrt(sum)
}

// Trace returns the sum of diagonal elements in real value units. Panics
// on a non-square matrix. For the core's P BRAM this is the gain-trace
// numerator: trace(P)/Ñ tracks how much adaptation capacity remains.
func (m *Matrix) Trace() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("fixed: Trace of non-square %dx%d matrix", m.rows, m.cols))
	}
	var sum float64
	for i := 0; i < m.rows; i++ {
		sum += m.At(i, i).Float()
	}
	return sum
}

// MaxAbsError returns the largest |fixed - float| discrepancy against a
// reference float64 matrix, used by the precision tests.
func (m *Matrix) MaxAbsError(ref *mat.Dense) float64 {
	r, c := ref.Dims()
	if r != m.rows || c != m.cols {
		panic("fixed: shape mismatch in MaxAbsError")
	}
	var worst float64
	rd := ref.RawData()
	for i := range m.data {
		d := m.data[i].Float() - rd[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
