package fixed

import (
	"fmt"

	"oselmrl/internal/mat"
)

// Matrix is a dense row-major matrix of Q20 fixed-point values — the
// on-chip BRAM contents of the FPGA core.
type Matrix struct {
	rows, cols int
	data       []Fixed
}

// NewMatrix allocates a rows×cols zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("fixed: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]Fixed, rows*cols)}
}

// FromDense quantizes a float64 matrix into fixed point.
func FromDense(m *mat.Dense) *Matrix {
	r, c := m.Dims()
	out := NewMatrix(r, c)
	src := m.RawData()
	for i := range src {
		out.data[i] = FromFloat(src[i])
	}
	return out
}

// ToDense converts back to float64.
func (m *Matrix) ToDense() *mat.Dense {
	out := mat.Zeros(m.rows, m.cols)
	dst := out.RawData()
	for i := range m.data {
		dst[i] = m.data[i].Float()
	}
	return out
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) Fixed { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v Fixed) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Words returns the number of 32-bit storage words the matrix occupies —
// the quantity the BRAM resource estimator charges for.
func (m *Matrix) Words() int { return len(m.data) }

// MaxAbsError returns the largest |fixed - float| discrepancy against a
// reference float64 matrix, used by the precision tests.
func (m *Matrix) MaxAbsError(ref *mat.Dense) float64 {
	r, c := ref.Dims()
	if r != m.rows || c != m.cols {
		panic("fixed: shape mismatch in MaxAbsError")
	}
	var worst float64
	rd := ref.RawData()
	for i := range m.data {
		d := m.data[i].Float() - rd[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
