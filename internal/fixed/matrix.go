package fixed

import (
	"fmt"
	"math"

	"oselmrl/internal/mat"
)

// Matrix is a dense row-major matrix of Qm.f fixed-point values — the
// on-chip BRAM contents of the FPGA core. The matrix carries its format so
// float-boundary methods (ToDense, FrobeniusNorm, Trace, MaxAbsError)
// interpret the words correctly; storage is 32-bit per element in every
// format. The zero format is the Q20 default.
type Matrix struct {
	rows, cols int
	q          QFormat
	data       []Fixed
}

// NewMatrix allocates a rows×cols zero matrix in the default Q20 format.
func NewMatrix(rows, cols int) *Matrix {
	return NewMatrixQ(rows, cols, QFormat{})
}

// NewMatrixQ allocates a rows×cols zero matrix in the given format.
func NewMatrixQ(rows, cols int, q QFormat) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("fixed: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, q: q.Normalized(), data: make([]Fixed, rows*cols)}
}

// Format returns the matrix's Qm.f format (normalized, so the zero-format
// default reports Q20).
func (m *Matrix) Format() QFormat { return m.q.Normalized() }

// FromDense quantizes a float64 matrix into fixed point (Q20 default).
func FromDense(m *mat.Dense) *Matrix {
	return FromDenseAcct(m, nil)
}

// FromDenseAcct is FromDense with per-element conversion accounting (NaN
// coercions, rail saturations, accumulated quantization error). acct may
// be nil, which is exactly FromDense.
func FromDenseAcct(m *mat.Dense, acct *Acct) *Matrix {
	return FromDenseQ(m, QFormat{}, acct)
}

// FromDenseQ quantizes a float64 matrix into the given format, with
// optional per-element conversion accounting (acct may be nil).
func FromDenseQ(m *mat.Dense, q QFormat, acct *Acct) *Matrix {
	r, c := m.Dims()
	out := NewMatrixQ(r, c, q)
	src := m.RawData()
	for i := range src {
		out.data[i] = acct.FromFloatQ(q, src[i])
	}
	return out
}

// ToDense converts back to float64 under the matrix's format.
func (m *Matrix) ToDense() *mat.Dense {
	out := mat.Zeros(m.rows, m.cols)
	dst := out.RawData()
	for i := range m.data {
		dst[i] = m.q.Float(m.data[i])
	}
	return out
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) Fixed { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v Fixed) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy preserving the format.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrixQ(m.rows, m.cols, m.q)
	copy(out.data, m.data)
	return out
}

// Words returns the number of 32-bit storage words the matrix occupies —
// the quantity the BRAM resource estimator charges for, identical in
// every Qm.f format.
func (m *Matrix) Words() int { return len(m.data) }

// FrobeniusNorm returns the Frobenius norm of the matrix in real value
// units — the β-magnitude drift signal the learning-dynamics telemetry
// tracks for the quantized network.
func (m *Matrix) FrobeniusNorm() float64 {
	var sum float64
	for _, v := range m.data {
		f := m.q.Float(v)
		sum += f * f
	}
	return math.Sqrt(sum)
}

// Trace returns the sum of diagonal elements in real value units. Panics
// on a non-square matrix. For the core's P BRAM this is the gain-trace
// numerator: trace(P)/Ñ tracks how much adaptation capacity remains.
func (m *Matrix) Trace() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("fixed: Trace of non-square %dx%d matrix", m.rows, m.cols))
	}
	var sum float64
	for i := 0; i < m.rows; i++ {
		sum += m.q.Float(m.At(i, i))
	}
	return sum
}

// MaxAbsError returns the largest |fixed - float| discrepancy against a
// reference float64 matrix, used by the precision tests.
func (m *Matrix) MaxAbsError(ref *mat.Dense) float64 {
	r, c := ref.Dims()
	if r != m.rows || c != m.cols {
		panic("fixed: shape mismatch in MaxAbsError")
	}
	var worst float64
	rd := ref.RawData()
	for i := range m.data {
		d := m.q.Float(m.data[i]) - rd[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
