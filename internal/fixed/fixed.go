// Package fixed implements the 32-bit Qm.f fixed-point arithmetic the
// paper's FPGA design uses for its predict and seq_train datapaths (§4.2:
// "We use 32-bit Q20 number as a fixed-point number format"). A value is a
// signed 32-bit integer with f fractional bits; the paper's — and this
// package's default — format is Q20 (Q11.20 plus sign), covering roughly
// ±2048 with a resolution of 2⁻²⁰ ≈ 9.5e-7.
//
// The fraction width is a first-class parameter: QFormat is the arithmetic
// context, and its format-carrying methods (FromFloat, Float, Mul, Div,
// Recip, Quantize, One, Eps) interpret the same 32-bit words under any
// Qm.f layout. The storage word stays 32 bits for every format — only the
// binary point moves — so memory footprints (and the FPGA BRAM model) are
// format-invariant. The package-level functions are the Q20 fast path; the
// zero QFormat behaves identically to them, which keeps the default
// datapath byte-compatible with the pre-parameterized golden vectors.
//
// All operations saturate instead of wrapping: in the FPGA core an
// overflowing accumulator clamps at the rails, and saturation is also what
// keeps the Q-network's clipped targets well behaved.
//
// Rounding is round-to-nearest with ties toward +inf everywhere — the
// behaviour of a DSP48 multiply-shift with the half-LSB pre-add — so
// FromFloat, Mul, Div and QFormat.Quantize all land on the same grid
// point for the same real value. One convention across conversion and
// arithmetic is what makes the simulator's golden vectors meaningful.
package fixed

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// FracBits is the number of fractional bits in the default Q20 format.
const FracBits = 20

// MaxFracBits bounds the fraction width of any QFormat: at 30 fractional
// bits one sign bit and one integer bit remain in the 32-bit word.
const MaxFracBits = 30

// One is the default-format (Q20) fixed-point representation of 1.0; other
// formats get theirs from QFormat.One.
const One = int32(1) << FracBits

// Max and Min are the saturation rails.
const (
	Max = int32(math.MaxInt32)
	Min = int32(math.MinInt32)
)

// Fixed is a signed 32-bit fixed-point word. Its real value depends on the
// Qm.f format interpreting it — Q11.20 under the package default; use
// QFormat.Float for other layouts.
type Fixed int32

// FromFloat converts a float64 to fixed point with round-to-nearest
// (ties toward +inf, matching Mul and Div) and saturation.
//
// Non-finite inputs follow the hardware AXI-boundary convention: NaN maps
// to 0 (a NaN observation must not poison the BRAM state; the conversion
// hardware has no NaN encoding to pass through), +Inf saturates to Max and
// -Inf to Min. This holds with accounting off as well — Acct.FromFloat
// additionally *counts* the coercion, it does not change it.
func FromFloat(f float64) Fixed {
	if math.IsNaN(f) {
		return 0
	}
	scaled := f * float64(One)
	if scaled >= float64(Max) {
		return Fixed(Max)
	}
	if scaled <= float64(Min) {
		return Fixed(Min)
	}
	return Fixed(int32(math.Floor(scaled + 0.5)))
}

// Float converts back to float64 exactly under the default Q20 format
// (every fixed-point value is float64-representable). Use QFormat.Float
// for other formats.
func (x Fixed) Float() float64 { return float64(x) / float64(One) }

// String renders the value in decimal for debugging.
func (x Fixed) String() string { return fmt.Sprintf("%.6f", x.Float()) }

func sat64(v int64) Fixed {
	if v > int64(Max) {
		return Fixed(Max)
	}
	if v < int64(Min) {
		return Fixed(Min)
	}
	return Fixed(v)
}

// Add returns x + y with saturation.
func Add(x, y Fixed) Fixed { return sat64(int64(x) + int64(y)) }

// Sub returns x - y with saturation.
func Sub(x, y Fixed) Fixed { return sat64(int64(x) - int64(y)) }

// Neg returns -x with saturation (negating Min saturates to Max).
func Neg(x Fixed) Fixed { return sat64(-int64(x)) }

// Mul returns x * y with a 64-bit intermediate, rounding and saturation —
// the behaviour of a DSP48 multiply followed by a shift.
func Mul(x, y Fixed) Fixed {
	prod := int64(x) * int64(y)
	// Arithmetic right shift rounds toward -inf; adding half first turns
	// it into round-to-nearest (ties toward +inf) for either sign.
	prod += 1 << (FracBits - 1)
	return sat64(prod >> FracBits)
}

// Div returns x / y with saturation; division by zero saturates to the
// rail matching the sign of x (hardware divider convention here).
func Div(x, y Fixed) Fixed {
	if y == 0 {
		if x >= 0 {
			return Fixed(Max)
		}
		return Fixed(Min)
	}
	num := int64(x) << FracBits
	den := int64(y)
	if den < 0 {
		num, den = -num, -den
	}
	// floor(num/den + 1/2) = floor((2·num + den) / (2·den)): round to
	// nearest with ties toward +inf, the same convention as Mul.
	a, b := 2*num+den, 2*den
	q := a / b
	if a%b != 0 && a < 0 {
		q-- // Go's integer division truncates toward zero; we need floor.
	}
	return sat64(q)
}

// Recip returns 1/x, the scalar reciprocal that replaces the k×k matrix
// inverse when OS-ELM's batch size is fixed to 1 (paper §2.2).
func Recip(x Fixed) Fixed { return Div(Fixed(One), x) }

// MulAcc returns acc + x*y keeping the product in 64 bits before the
// shift, matching a MAC unit with a wide accumulator.
func MulAcc(acc Fixed, x, y Fixed) Fixed { return Add(acc, Mul(x, y)) }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi Fixed) Fixed {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ReLU is the fixed-point activation used by the FPGA core.
func ReLU(x Fixed) Fixed {
	if x > 0 {
		return x
	}
	return 0
}

// Abs returns |x| with saturation.
func Abs(x Fixed) Fixed {
	if x < 0 {
		return Neg(x)
	}
	return x
}

// Eps is the smallest positive fixed-point value — one LSB. The word is
// the same in every Qm.f format; its real value is format-relative
// (2^-Frac, i.e. QFormat.Resolution — 2⁻²⁰ under the Q20 default).
const Eps = Fixed(1)

// QFormat is the Qm.f arithmetic context: it fixes where the binary point
// sits inside the 32-bit word and carries every format-dependent operation
// (conversion, multiply, divide, quantization). The paper chose 20
// fractional bits; the wordlength ablation sweeps Frac and measures
// learning quality. The zero value selects the default Q20 format, so
// format-agnostic code keeps its pre-parameterized behaviour. Saturation
// rails are format-invariant: every format clamps at the int32 limits.
type QFormat struct {
	// Frac is the number of fractional bits (1..MaxFracBits). Zero selects
	// the default FracBits (Q20).
	Frac uint
}

// Predeclared formats: the paper's Q20 default plus the wordlength-sweep
// neighbours.
var (
	Q16 = QFormat{Frac: 16}
	Q20 = QFormat{Frac: 20}
	Q24 = QFormat{Frac: 24}
)

// DefaultFormat is the paper's §4.2 choice, the format the zero QFormat
// and the package-level functions implement.
var DefaultFormat = Q20

// frac resolves the effective fraction width (the zero value means the
// Q20 default) WITHOUT validating it — the hot-path variant that must
// stay cheap enough for the arithmetic ops to inline into the
// datapath's inner loops. Widths beyond MaxFracBits are programming
// errors caught where formats enter the system (Normalized, and through
// it every constructor, plus ParseQFormat and Quantize); an unchecked
// invalid width degrades to a harmless over-wide shift, never memory
// unsafety.
func (q QFormat) frac() uint {
	f := q.Frac
	if f == 0 {
		return FracBits
	}
	return f
}

// fracValid is frac with the programming-error check, for the cold
// entry points.
func (q QFormat) fracValid() uint {
	f := q.frac()
	if f > MaxFracBits {
		badFrac(f)
	}
	return f
}

//go:noinline
func badFrac(f uint) {
	panic(fmt.Sprintf("fixed: invalid fraction width %d", f))
}

// pow2 and invPow2 tabulate 2^i and 2^-i (both exact in float64) so the
// format-generic conversion and error paths multiply by a loaded constant
// instead of dividing by a computed one — the default-format package
// functions get this for free from constant folding, and a float divide
// would otherwise dominate the per-op accounting cost. Indexed with &63
// so the compiler drops the bounds check; every validated width (≤
// MaxFracBits, and 2·f ≤ 60 for the product-grid error) is in range.
var pow2, invPow2 = func() (p, ip [64]float64) {
	for i := range p {
		p[i] = math.Ldexp(1, i)
		ip[i] = math.Ldexp(1, -i)
	}
	return
}()

// Normalized returns the format with its fraction width made explicit
// (the zero value becomes Q20), so normalized formats compare with == and
// String never prints a placeholder. Panics on an invalid width.
func (q QFormat) Normalized() QFormat { return QFormat{Frac: q.fracValid()} }

// String renders the format as "Q<frac>" ("Q20"), the spelling
// ParseQFormat accepts.
func (q QFormat) String() string { return fmt.Sprintf("Q%d", q.frac()) }

// IntBits returns m, the number of integer bits left of the binary point
// (sign bit excluded): 31 − Frac.
func (q QFormat) IntBits() uint { return 31 - q.frac() }

// One is the format's fixed-point representation of 1.0.
func (q QFormat) One() Fixed { return Fixed(int32(1) << q.frac()) }

// Eps is the smallest positive value in the format — one LSB, the same
// word in every format; Resolution gives its real value.
func (q QFormat) Eps() Fixed { return Eps }

// ParseQFormat parses a format name: "Q20", "q20" or a bare fraction
// width "20", bounded to 1..MaxFracBits.
func ParseQFormat(s string) (QFormat, error) {
	t := strings.TrimSpace(s)
	if len(t) > 0 && (t[0] == 'Q' || t[0] == 'q') {
		t = t[1:]
	}
	frac, err := strconv.Atoi(t)
	if err != nil {
		return QFormat{}, fmt.Errorf("fixed: invalid format %q (want e.g. Q20)", s)
	}
	if frac < 1 || frac > MaxFracBits {
		return QFormat{}, fmt.Errorf("fixed: fraction width %d out of range 1..%d", frac, MaxFracBits)
	}
	return QFormat{Frac: uint(frac)}, nil
}

// FromFloat is fixed.FromFloat under this format: round-to-nearest (ties
// toward +inf) with saturation, NaN to 0, ±Inf to the matching rail.
func (q QFormat) FromFloat(f float64) Fixed {
	if math.IsNaN(f) {
		return 0
	}
	scaled := f * pow2[q.frac()&63]
	if scaled >= float64(Max) {
		return Fixed(Max)
	}
	if scaled <= float64(Min) {
		return Fixed(Min)
	}
	return Fixed(int32(math.Floor(scaled + 0.5)))
}

// Float converts a word of this format back to float64 exactly
// (multiplying by the exact 2^-f is the exact division by 2^f).
func (q QFormat) Float(x Fixed) float64 { return float64(x) * invPow2[q.frac()&63] }

// Mul is fixed.Mul under this format: 64-bit intermediate, half-LSB
// pre-add rounding, saturation.
func (q QFormat) Mul(x, y Fixed) Fixed {
	f := q.frac()
	prod := int64(x) * int64(y)
	prod += 1 << (f - 1)
	return sat64(prod >> f)
}

// Div is fixed.Div under this format; division by zero saturates to the
// rail matching the sign of x.
func (q QFormat) Div(x, y Fixed) Fixed {
	f := q.frac()
	if y == 0 {
		if x >= 0 {
			return Fixed(Max)
		}
		return Fixed(Min)
	}
	num := int64(x) << f
	den := int64(y)
	if den < 0 {
		num, den = -num, -den
	}
	a, b := 2*num+den, 2*den
	r := a / b
	if a%b != 0 && a < 0 {
		r--
	}
	return sat64(r)
}

// Recip returns 1/x in this format.
func (q QFormat) Recip(x Fixed) Fixed { return q.Div(q.One(), x) }

// MulAcc returns acc + x*y in this format.
func (q QFormat) MulAcc(acc, x, y Fixed) Fixed { return Add(acc, q.Mul(x, y)) }

// Quantize rounds f to the format's grid with saturation at the 32-bit
// rails, staying in float64 — the float-side twin of FromFloat: both land
// on the same grid point for the same real value (asserted by the
// format-agreement tests). Non-finite inputs follow FromFloat's boundary
// convention: NaN quantizes to 0, ±Inf to the matching rail.
func (q QFormat) Quantize(f float64) float64 {
	if math.IsNaN(f) {
		return 0
	}
	w := q.frac()
	if w > MaxFracBits {
		badFrac(w)
	}
	one := pow2[w]
	scaled := math.Floor(f*one + 0.5)
	maxV := float64(math.MaxInt32)
	if scaled > maxV {
		scaled = maxV
	}
	if scaled < -maxV-1 {
		scaled = -maxV - 1
	}
	return scaled * invPow2[w]
}

// Resolution returns the grid spacing 2^-Frac.
func (q QFormat) Resolution() float64 { return 1 / float64(int64(1)<<q.frac()) }

// MaxValue returns the largest representable magnitude.
func (q QFormat) MaxValue() float64 { return float64(math.MaxInt32) / float64(int64(1)<<q.frac()) }
