// Package fixed implements the 32-bit Q20 fixed-point arithmetic the
// paper's FPGA design uses for its predict and seq_train datapaths (§4.2:
// "We use 32-bit Q20 number as a fixed-point number format"). A value is a
// signed 32-bit integer with 20 fractional bits (Q11.20 plus sign),
// covering roughly ±2048 with a resolution of 2⁻²⁰ ≈ 9.5e-7.
//
// All operations saturate instead of wrapping: in the FPGA core an
// overflowing accumulator clamps at the rails, and saturation is also what
// keeps the Q-network's clipped targets well behaved.
//
// Rounding is round-to-nearest with ties toward +inf everywhere — the
// behaviour of a DSP48 multiply-shift with the half-LSB pre-add — so
// FromFloat, Mul, Div and QFormat.Quantize all land on the same grid
// point for the same real value. One convention across conversion and
// arithmetic is what makes the simulator's golden vectors meaningful.
package fixed

import (
	"fmt"
	"math"
)

// FracBits is the number of fractional bits in the Q20 format.
const FracBits = 20

// One is the fixed-point representation of 1.0.
const One = int32(1) << FracBits

// Max and Min are the saturation rails.
const (
	Max = int32(math.MaxInt32)
	Min = int32(math.MinInt32)
)

// Fixed is a Q11.20 signed fixed-point number.
type Fixed int32

// FromFloat converts a float64 to fixed point with round-to-nearest
// (ties toward +inf, matching Mul and Div) and saturation.
//
// Non-finite inputs follow the hardware AXI-boundary convention: NaN maps
// to 0 (a NaN observation must not poison the BRAM state; the conversion
// hardware has no NaN encoding to pass through), +Inf saturates to Max and
// -Inf to Min. This holds with accounting off as well — Acct.FromFloat
// additionally *counts* the coercion, it does not change it.
func FromFloat(f float64) Fixed {
	if math.IsNaN(f) {
		return 0
	}
	scaled := f * float64(One)
	if scaled >= float64(Max) {
		return Fixed(Max)
	}
	if scaled <= float64(Min) {
		return Fixed(Min)
	}
	return Fixed(int32(math.Floor(scaled + 0.5)))
}

// Float converts back to float64 exactly (every Q20 value is representable).
func (x Fixed) Float() float64 { return float64(x) / float64(One) }

// String renders the value in decimal for debugging.
func (x Fixed) String() string { return fmt.Sprintf("%.6f", x.Float()) }

func sat64(v int64) Fixed {
	if v > int64(Max) {
		return Fixed(Max)
	}
	if v < int64(Min) {
		return Fixed(Min)
	}
	return Fixed(v)
}

// Add returns x + y with saturation.
func Add(x, y Fixed) Fixed { return sat64(int64(x) + int64(y)) }

// Sub returns x - y with saturation.
func Sub(x, y Fixed) Fixed { return sat64(int64(x) - int64(y)) }

// Neg returns -x with saturation (negating Min saturates to Max).
func Neg(x Fixed) Fixed { return sat64(-int64(x)) }

// Mul returns x * y with a 64-bit intermediate, rounding and saturation —
// the behaviour of a DSP48 multiply followed by a shift.
func Mul(x, y Fixed) Fixed {
	prod := int64(x) * int64(y)
	// Arithmetic right shift rounds toward -inf; adding half first turns
	// it into round-to-nearest (ties toward +inf) for either sign.
	prod += 1 << (FracBits - 1)
	return sat64(prod >> FracBits)
}

// Div returns x / y with saturation; division by zero saturates to the
// rail matching the sign of x (hardware divider convention here).
func Div(x, y Fixed) Fixed {
	if y == 0 {
		if x >= 0 {
			return Fixed(Max)
		}
		return Fixed(Min)
	}
	num := int64(x) << FracBits
	den := int64(y)
	if den < 0 {
		num, den = -num, -den
	}
	// floor(num/den + 1/2) = floor((2·num + den) / (2·den)): round to
	// nearest with ties toward +inf, the same convention as Mul.
	a, b := 2*num+den, 2*den
	q := a / b
	if a%b != 0 && a < 0 {
		q-- // Go's integer division truncates toward zero; we need floor.
	}
	return sat64(q)
}

// Recip returns 1/x, the scalar reciprocal that replaces the k×k matrix
// inverse when OS-ELM's batch size is fixed to 1 (paper §2.2).
func Recip(x Fixed) Fixed { return Div(Fixed(One), x) }

// MulAcc returns acc + x*y keeping the product in 64 bits before the
// shift, matching a MAC unit with a wide accumulator.
func MulAcc(acc Fixed, x, y Fixed) Fixed { return Add(acc, Mul(x, y)) }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi Fixed) Fixed {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ReLU is the fixed-point activation used by the FPGA core.
func ReLU(x Fixed) Fixed {
	if x > 0 {
		return x
	}
	return 0
}

// Abs returns |x| with saturation.
func Abs(x Fixed) Fixed {
	if x < 0 {
		return Neg(x)
	}
	return x
}

// Eps is the smallest positive Q20 value.
const Eps = Fixed(1)

// QFormat describes a generic Qm.f fixed-point layout for the precision
// ablation (A3 in DESIGN.md): the paper chose 20 fractional bits; the
// ablation sweeps the fraction width and measures learning quality.
type QFormat struct {
	// Frac is the number of fractional bits (1..30).
	Frac uint
}

// Quantize rounds f to the format's grid with saturation at the 32-bit
// rails. Non-finite inputs follow FromFloat's boundary convention: NaN
// quantizes to 0, ±Inf to the matching rail.
func (q QFormat) Quantize(f float64) float64 {
	if q.Frac < 1 || q.Frac > 30 {
		panic(fmt.Sprintf("fixed: invalid fraction width %d", q.Frac))
	}
	if math.IsNaN(f) {
		return 0
	}
	one := float64(int64(1) << q.Frac)
	scaled := math.Floor(f*one + 0.5)
	maxV := float64(math.MaxInt32)
	if scaled > maxV {
		scaled = maxV
	}
	if scaled < -maxV-1 {
		scaled = -maxV - 1
	}
	return scaled / one
}

// Resolution returns the grid spacing 2^-Frac.
func (q QFormat) Resolution() float64 { return 1 / float64(int64(1)<<q.Frac) }

// MaxValue returns the largest representable magnitude.
func (q QFormat) MaxValue() float64 { return float64(math.MaxInt32) / float64(int64(1)<<q.Frac) }
