package fixed

import (
	"math"
	"testing"
	"testing/quick"

	"oselmrl/internal/rng"
)

func TestFromFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 0.5, -0.5, 1.25, 100.125, -2047, 2047} {
		f := FromFloat(v)
		if got := f.Float(); got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestFromFloatRounding(t *testing.T) {
	// Values off the Q20 grid round to nearest.
	res := 1.0 / float64(One)
	v := 3.3
	f := FromFloat(v)
	if d := math.Abs(f.Float() - v); d > res/2+1e-15 {
		t.Errorf("rounding error %v exceeds half-resolution", d)
	}
}

// All rounding sites share one convention: nearest, ties toward +inf.
// FromFloat previously used round-half-to-even while Mul/Div rounded
// half-up, so conversion and arithmetic could disagree by one LSB on the
// same real value.
func TestRoundingConventionUnified(t *testing.T) {
	res := 1.0 / float64(One)
	// +2.5 LSB: half-up gives 3, half-to-even gave 2.
	if got := FromFloat(2.5 * res); got != Fixed(3) {
		t.Errorf("FromFloat(+2.5 LSB) = %d, want 3 (ties toward +inf)", got)
	}
	// -1.5 LSB: toward +inf gives -1, half-to-even gave -2.
	if got := FromFloat(-1.5 * res); got != Fixed(-1) {
		t.Errorf("FromFloat(-1.5 LSB) = %d, want -1 (ties toward +inf)", got)
	}
	// Mul ties: ±0.5 LSB products round toward +inf.
	if got := Mul(Fixed(1), Fixed(1<<(FracBits-1))); got != Fixed(1) {
		t.Errorf("Mul(+0.5 LSB tie) = %d, want 1", got)
	}
	if got := Mul(Fixed(-1), Fixed(1<<(FracBits-1))); got != Fixed(0) {
		t.Errorf("Mul(-0.5 LSB tie) = %d, want 0", got)
	}
	// Div ties: ±1.5 LSB quotients round toward +inf (the old code
	// rounded half away from zero, giving -2 for the negative case).
	two := FromFloat(2)
	if got := Div(Fixed(3), two); got != Fixed(2) {
		t.Errorf("Div(+1.5 LSB tie) = %d, want 2", got)
	}
	if got := Div(Fixed(-3), two); got != Fixed(-1) {
		t.Errorf("Div(-1.5 LSB tie) = %d, want -1", got)
	}
	// Negative divisor: (-3)/(-2) = +1.5 LSB, still toward +inf.
	if got := Div(Fixed(-3), Neg(two)); got != Fixed(2) {
		t.Errorf("Div(-3, -2) = %d, want 2", got)
	}
	// QFormat follows the same convention.
	q := QFormat{Frac: FracBits}
	if got := q.Quantize(2.5 * res); got != 3*res {
		t.Errorf("Quantize(+2.5 LSB) = %v, want %v", got, 3*res)
	}
	if got := q.Quantize(-1.5 * res); got != -res {
		t.Errorf("Quantize(-1.5 LSB) = %v, want %v", got, -res)
	}
}

// Property: Mul agrees bit-for-bit with converting the exact float
// product, for operands small enough that the product is exact in a
// float64 (|raw| < 2^25 keeps the integer product under 2^50).
func TestPropertyMulMatchesFromFloat(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		x := Fixed(r.Intn(1<<26) - 1<<25)
		y := Fixed(r.Intn(1<<26) - 1<<25)
		return Mul(x, y) == FromFloat(x.Float()*y.Float())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(1e9) != Fixed(Max) {
		t.Error("large positive must saturate to Max")
	}
	if FromFloat(-1e9) != Fixed(Min) {
		t.Error("large negative must saturate to Min")
	}
	if FromFloat(math.NaN()) != 0 {
		t.Error("NaN must map to 0")
	}
	if FromFloat(math.Inf(1)) != Fixed(Max) {
		t.Error("+Inf must saturate to Max")
	}
}

func TestAddSub(t *testing.T) {
	a, b := FromFloat(1.5), FromFloat(2.25)
	if got := Add(a, b).Float(); got != 3.75 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(a, b).Float(); got != -0.75 {
		t.Errorf("Sub = %v", got)
	}
}

func TestAddSaturates(t *testing.T) {
	if Add(Fixed(Max), Fixed(One)) != Fixed(Max) {
		t.Error("Add overflow must saturate")
	}
	if Sub(Fixed(Min), Fixed(One)) != Fixed(Min) {
		t.Error("Sub underflow must saturate")
	}
}

func TestNeg(t *testing.T) {
	if Neg(FromFloat(1.5)).Float() != -1.5 {
		t.Error("Neg(1.5)")
	}
	if Neg(Fixed(Min)) != Fixed(Max) {
		t.Error("Neg(Min) must saturate to Max")
	}
}

func TestMulKnown(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{2, 3, 6},
		{-2, 3, -6},
		{0.5, 0.5, 0.25},
		{1.5, -2, -3},
		{0, 100, 0},
	}
	for _, c := range cases {
		if got := Mul(FromFloat(c.a), FromFloat(c.b)).Float(); got != c.want {
			t.Errorf("Mul(%v, %v) = %v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMulSaturates(t *testing.T) {
	big := FromFloat(2000)
	if Mul(big, big) != Fixed(Max) {
		t.Error("Mul overflow must saturate")
	}
	if Mul(big, Neg(big)) != Fixed(Min) {
		t.Error("Mul negative overflow must saturate")
	}
}

func TestDivKnown(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{6, 3, 2},
		{-6, 3, -2},
		{1, 4, 0.25},
		{0, 5, 0},
	}
	for _, c := range cases {
		if got := Div(FromFloat(c.a), FromFloat(c.b)).Float(); got != c.want {
			t.Errorf("Div(%v, %v) = %v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDivByZero(t *testing.T) {
	if Div(FromFloat(1), 0) != Fixed(Max) {
		t.Error("positive/0 must saturate to Max")
	}
	if Div(FromFloat(-1), 0) != Fixed(Min) {
		t.Error("negative/0 must saturate to Min")
	}
}

func TestRecip(t *testing.T) {
	if got := Recip(FromFloat(4)).Float(); got != 0.25 {
		t.Errorf("Recip(4) = %v", got)
	}
	// Reciprocal of a denominator >= 1, the OS-ELM case: 1/(1+hPh) <= 1.
	d := FromFloat(1.7)
	got := Recip(d).Float()
	if math.Abs(got-1/1.7) > 2e-6 {
		t.Errorf("Recip(1.7) = %v want %v", got, 1/1.7)
	}
}

func TestMulAcc(t *testing.T) {
	acc := FromFloat(1)
	acc = MulAcc(acc, FromFloat(2), FromFloat(3))
	if acc.Float() != 7 {
		t.Errorf("MulAcc = %v", acc.Float())
	}
}

func TestClampReLUAbs(t *testing.T) {
	if Clamp(FromFloat(5), FromFloat(-1), FromFloat(1)) != FromFloat(1) {
		t.Error("Clamp upper")
	}
	if Clamp(FromFloat(-5), FromFloat(-1), FromFloat(1)) != FromFloat(-1) {
		t.Error("Clamp lower")
	}
	if ReLU(FromFloat(-3)) != 0 {
		t.Error("ReLU negative")
	}
	if ReLU(FromFloat(3)) != FromFloat(3) {
		t.Error("ReLU positive")
	}
	if Abs(FromFloat(-2)).Float() != 2 {
		t.Error("Abs")
	}
}

// Property: fixed-point multiply matches float multiply within quantization
// error for in-range operands.
func TestPropertyMulAccuracy(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := r.Uniform(-30, 30)
		b := r.Uniform(-30, 30)
		got := Mul(FromFloat(a), FromFloat(b)).Float()
		// Error sources: two input quantizations (each <= 2^-21 relative to
		// the other operand) plus the product rounding.
		tol := (math.Abs(a)+math.Abs(b))/float64(One)*2 + 2.0/float64(One)
		return math.Abs(got-a*b) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative and Sub antisymmetric under saturation-free
// operands.
func TestPropertyAddCommutative(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := FromFloat(r.Uniform(-500, 500))
		b := FromFloat(r.Uniform(-500, 500))
		return Add(a, b) == Add(b, a) && Sub(a, b) == Neg(Sub(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQFormatQuantize(t *testing.T) {
	q := QFormat{Frac: 20}
	if got := q.Quantize(0.5); got != 0.5 {
		t.Errorf("Quantize(0.5) = %v", got)
	}
	if got := q.Resolution(); got != 1.0/(1<<20) {
		t.Errorf("Resolution = %v", got)
	}
	// Coarser format quantizes harder.
	q8 := QFormat{Frac: 8}
	v := 0.123456789
	d20 := math.Abs(q.Quantize(v) - v)
	d8 := math.Abs(q8.Quantize(v) - v)
	if d8 < d20 {
		t.Error("coarser format should not be more accurate")
	}
	if d8 > q8.Resolution() {
		t.Errorf("Q8 error %v exceeds resolution %v", d8, q8.Resolution())
	}
}

func TestQFormatSaturates(t *testing.T) {
	q := QFormat{Frac: 20}
	if got := q.Quantize(1e9); got > q.MaxValue() {
		t.Errorf("Quantize must saturate: %v > %v", got, q.MaxValue())
	}
}

func TestQFormatInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid fraction width")
		}
	}()
	QFormat{Frac: 31}.Quantize(1)
}

func TestStringer(t *testing.T) {
	if s := FromFloat(1.5).String(); s != "1.500000" {
		t.Errorf("String = %q", s)
	}
}
