package fixed

import (
	"math"
	"testing"
)

// sweepFormats are the wordlength-ablation formats every format-generic
// test exercises.
var sweepFormats = []QFormat{Q16, Q20, Q24}

// sweepValues covers the shared dynamic range of Q16..Q24 (|v| < 127)
// plus grid points, ties and near-tie offsets.
func sweepValues() []float64 {
	vals := []float64{0, 1, -1, 0.5, -0.5, 0.25, 1.0 / 3, -2.0 / 3, math.Pi,
		-math.E, 100.125, -126.99, 1e-7, -1e-7, 42.000001}
	for i := 1; i <= 24; i++ {
		step := 1 / float64(int64(1)<<i)
		vals = append(vals, step, -step, step/2, -step/2, 1+step, -1-step)
	}
	return vals
}

// TestFormatAgreementQuantizeVsFromFloat is the float-side/fixed-side
// differential test: for every format and value, QFormat.Quantize (pure
// float64) and QFormat.FromFloat→Float (through the 32-bit word) must land
// on the same grid point — one rounding convention across conversion and
// arithmetic.
func TestFormatAgreementQuantizeVsFromFloat(t *testing.T) {
	for _, q := range sweepFormats {
		for _, v := range sweepValues() {
			got := q.Float(q.FromFloat(v))
			want := q.Quantize(v)
			if got != want {
				t.Errorf("%s: FromFloat/Float(%g) = %g, Quantize = %g", q, v, got, want)
			}
		}
	}
}

// TestFormatAgreementMul asserts the multiply lands on the same grid point
// as quantizing the exact product of the quantized operands — the DSP48
// half-LSB convention applied consistently.
func TestFormatAgreementMul(t *testing.T) {
	for _, q := range sweepFormats {
		vals := []float64{0, 1, -1, 0.5, 1.0 / 3, -0.75, 2.5, -1.25}
		for _, a := range vals {
			for _, b := range vals {
				fa, fb := q.FromFloat(a), q.FromFloat(b)
				got := q.Mul(fa, fb)
				// The exact product of the two grid values lives on the
				// 2^-2f grid; the rounded result must be within half an LSB.
				exact := q.Float(fa) * q.Float(fb)
				if math.Abs(q.Float(got)-exact) > q.Resolution()/2 {
					t.Errorf("%s: Mul(%g, %g) = %g, exact %g (off by > LSB/2)",
						q, a, b, q.Float(got), exact)
				}
			}
		}
	}
}

// TestQ20MethodsMatchPackageFunctions pins the zero/default format
// bit-for-bit to the package-level Q20 fast path — the property that keeps
// the refactored datapath byte-identical to the pre-parameterized golden
// vectors.
func TestQ20MethodsMatchPackageFunctions(t *testing.T) {
	words := []Fixed{0, 1, -1, Fixed(One), -Fixed(One), 12345, -98765,
		Fixed(One) / 3, Fixed(Max) / 2, Fixed(Min) / 2, Fixed(Max), Fixed(Min)}
	floats := []float64{0, 1, -1, 0.5, 1.0 / 3, math.Pi, -1e6, 1e9, -1e9,
		math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, q := range []QFormat{{}, Q20, DefaultFormat} {
		for _, x := range words {
			for _, y := range words {
				if got, want := q.Mul(x, y), Mul(x, y); got != want {
					t.Fatalf("%s.Mul(%d, %d) = %d, package Mul = %d", q, x, y, got, want)
				}
				if got, want := q.Div(x, y), Div(x, y); got != want {
					t.Fatalf("%s.Div(%d, %d) = %d, package Div = %d", q, x, y, got, want)
				}
			}
			if got, want := q.Recip(x), Recip(x); got != want {
				t.Fatalf("%s.Recip(%d) = %d, package Recip = %d", q, x, got, want)
			}
			if got, want := q.Float(x), x.Float(); got != want {
				t.Fatalf("%s.Float(%d) = %g, Fixed.Float = %g", q, x, got, want)
			}
		}
		for _, f := range floats {
			if got, want := q.FromFloat(f), FromFloat(f); got != want {
				t.Fatalf("%s.FromFloat(%g) = %d, package FromFloat = %d", q, f, got, want)
			}
		}
		if q.One() != Fixed(One) {
			t.Fatalf("%s.One() = %d, want %d", q, q.One(), One)
		}
		if q.Eps() != Eps {
			t.Fatalf("%s.Eps() = %d, want %d", q, q.Eps(), Eps)
		}
	}
}

func TestQFormatAccessors(t *testing.T) {
	if (QFormat{}).Normalized() != Q20 {
		t.Errorf("zero format normalizes to %v, want Q20", (QFormat{}).Normalized())
	}
	if got := (QFormat{}).String(); got != "Q20" {
		t.Errorf("zero format String() = %q, want Q20", got)
	}
	if got := Q16.IntBits(); got != 15 {
		t.Errorf("Q16.IntBits() = %d, want 15", got)
	}
	if got := Q24.One(); got != Fixed(1<<24) {
		t.Errorf("Q24.One() = %d, want %d", got, 1<<24)
	}
	if got := Q16.Resolution(); got != 1.0/65536 {
		t.Errorf("Q16.Resolution() = %g", got)
	}
	if got := Q16.MaxValue(); got != float64(math.MaxInt32)/65536 {
		t.Errorf("Q16.MaxValue() = %g", got)
	}
}

func TestParseQFormat(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want QFormat
	}{
		{"Q20", Q20}, {"q16", Q16}, {"24", Q24}, {" Q20 ", Q20},
		{"1", QFormat{Frac: 1}}, {"30", QFormat{Frac: 30}},
	} {
		got, err := ParseQFormat(tc.in)
		if err != nil {
			t.Errorf("ParseQFormat(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseQFormat(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "Q", "Q0", "0", "31", "Q31", "float", "Q20.5", "-3"} {
		if _, err := ParseQFormat(bad); err == nil {
			t.Errorf("ParseQFormat(%q) accepted", bad)
		}
	}
}

func TestParseQFormatRoundTripsString(t *testing.T) {
	for _, q := range sweepFormats {
		got, err := ParseQFormat(q.String())
		if err != nil || got != q {
			t.Errorf("ParseQFormat(%s) = %v, %v", q, got, err)
		}
	}
}

// TestAcctQVariantsMatchArithmetic asserts the format-explicit accounting
// ops return exactly what the un-accounted arithmetic returns, at every
// sweep format, enabled and disabled.
func TestAcctQVariantsMatchArithmetic(t *testing.T) {
	words := []Fixed{0, 1, -1, 54321, -9999, Fixed(Max) / 3, Fixed(Min) / 3, Fixed(Max), Fixed(Min)}
	floats := []float64{0, 1.5, -2.25, 1e8, -1e8, math.NaN(), math.Inf(1)}
	for _, q := range sweepFormats {
		for _, a := range []*Acct{nil, {}} {
			for _, x := range words {
				for _, y := range words {
					if got, want := a.MulQ(q, x, y), q.Mul(x, y); got != want {
						t.Fatalf("%s Acct(%v).MulQ(%d, %d) = %d, want %d", q, a != nil, x, y, got, want)
					}
					if got, want := a.DivQ(q, x, y), q.Div(x, y); got != want {
						t.Fatalf("%s Acct(%v).DivQ(%d, %d) = %d, want %d", q, a != nil, x, y, got, want)
					}
				}
			}
			for _, f := range floats {
				if got, want := a.FromFloatQ(q, f), q.FromFloat(f); got != want {
					t.Fatalf("%s Acct(%v).FromFloatQ(%g) = %d, want %d", q, a != nil, f, got, want)
				}
			}
		}
	}
}

// TestAcctQVariantCounts spot-checks the accounting semantics under a
// non-default format: saturation at the rails, NaN coercion and a nonzero
// rounding-error accumulation.
func TestAcctQVariantCounts(t *testing.T) {
	var a Acct
	q := Q24
	// 200 * 200 = 40000 > Q24's max (~127.9): saturates.
	big := q.FromFloat(120)
	if a.MulQ(q, big, big) != Fixed(Max) {
		t.Fatal("expected rail")
	}
	if a.Saturations != 1 {
		t.Fatalf("Saturations = %d, want 1", a.Saturations)
	}
	a.DivQ(q, q.One(), 0)
	if a.Saturations != 2 {
		t.Fatalf("Saturations = %d, want 2 after div-by-zero", a.Saturations)
	}
	a.FromFloatQ(q, math.NaN())
	if a.NaNs != 1 {
		t.Fatalf("NaNs = %d, want 1", a.NaNs)
	}
	before := a.QuantErrAbs
	a.FromFloatQ(q, 1.0/3) // not on any binary grid: must accumulate error
	if a.QuantErrAbs <= before {
		t.Fatal("expected quantization error to accumulate")
	}
	if a.Ops != 4 {
		t.Fatalf("Ops = %d, want 4", a.Ops)
	}
}

// TestMatrixFormat covers the format-carrying matrix paths: construction,
// conversion round-trip within the format's resolution, format-preserving
// Clone, and storage invariance.
func TestMatrixFormat(t *testing.T) {
	for _, q := range sweepFormats {
		m := NewMatrixQ(2, 3, q)
		if m.Format() != q {
			t.Fatalf("Format() = %v, want %v", m.Format(), q)
		}
		if m.Words() != 6 {
			t.Fatalf("Words() = %d, want 6 (storage is format-invariant)", m.Words())
		}
		c := m.Clone()
		if c.Format() != q {
			t.Fatalf("Clone dropped format: %v", c.Format())
		}
	}
	if NewMatrix(1, 1).Format() != Q20 {
		t.Error("NewMatrix should default to Q20")
	}
}
