package fixed

import (
	"math"
	"testing"
)

// Fuzz targets run their seed corpus under plain `go test`, giving cheap
// structured-random coverage of the saturating arithmetic that the FPGA
// simulator's correctness rests on.

func FuzzAddProperties(f *testing.F) {
	f.Add(int32(0), int32(0))
	f.Add(int32(1<<20), int32(-1<<20))
	f.Add(int32(math.MaxInt32), int32(math.MaxInt32))
	f.Add(int32(math.MinInt32), int32(math.MinInt32))
	f.Add(int32(123456), int32(-654321))
	f.Fuzz(func(t *testing.T, a, b int32) {
		x, y := Fixed(a), Fixed(b)
		sum := Add(x, y)
		// Commutativity.
		if sum != Add(y, x) {
			t.Fatal("Add not commutative")
		}
		// Saturation bounds.
		exact := int64(a) + int64(b)
		switch {
		case exact > int64(Max):
			if sum != Fixed(Max) {
				t.Fatalf("overflow must saturate: %d + %d = %d", a, b, sum)
			}
		case exact < int64(Min):
			if sum != Fixed(Min) {
				t.Fatalf("underflow must saturate: %d + %d = %d", a, b, sum)
			}
		default:
			if int64(sum) != exact {
				t.Fatalf("in-range Add wrong: %d + %d = %d", a, b, sum)
			}
		}
		// Sub is Add of the negation (away from the Min edge case).
		if b != math.MinInt32 && Sub(x, y) != Add(x, Neg(y)) {
			t.Fatal("Sub != Add(Neg)")
		}
	})
}

func FuzzMulAccuracy(f *testing.F) {
	f.Add(int32(1<<20), int32(1<<20))
	f.Add(int32(-1<<20), int32(3<<20))
	f.Add(int32(1), int32(1))
	f.Add(int32(-1), int32(1<<30))
	f.Fuzz(func(t *testing.T, a, b int32) {
		x, y := Fixed(a), Fixed(b)
		got := Mul(x, y)
		exact := x.Float() * y.Float()
		switch {
		case exact >= Fixed(Max).Float():
			if got != Fixed(Max) {
				t.Fatalf("Mul(%v, %v) must saturate high, got %v", x, y, got)
			}
		case exact <= Fixed(Min).Float():
			if got != Fixed(Min) {
				t.Fatalf("Mul(%v, %v) must saturate low, got %v", x, y, got)
			}
		default:
			// Within one LSB of the exact product.
			if math.Abs(got.Float()-exact) > 1.0/float64(One) {
				t.Fatalf("Mul(%v, %v) = %v, exact %v", x, y, got, exact)
			}
		}
	})
}

func FuzzDivAccuracy(f *testing.F) {
	f.Add(int32(6<<20), int32(3<<20))
	f.Add(int32(-1<<20), int32(7))
	f.Add(int32(1<<20), int32(0))
	f.Fuzz(func(t *testing.T, a, b int32) {
		x, y := Fixed(a), Fixed(b)
		got := Div(x, y)
		if y == 0 {
			want := Fixed(Max)
			if x < 0 {
				want = Fixed(Min)
			}
			if got != want {
				t.Fatalf("Div by zero = %v", got)
			}
			return
		}
		exact := x.Float() / y.Float()
		switch {
		case exact >= Fixed(Max).Float():
			if got != Fixed(Max) {
				t.Fatalf("Div must saturate high")
			}
		case exact <= Fixed(Min).Float():
			if got != Fixed(Min) {
				t.Fatalf("Div must saturate low")
			}
		default:
			if math.Abs(got.Float()-exact) > 1.5/float64(One) {
				t.Fatalf("Div(%v, %v) = %v, exact %v", x, y, got, exact)
			}
		}
	})
}

func FuzzClampReLU(f *testing.F) {
	f.Add(int32(5 << 20))
	f.Add(int32(-5 << 20))
	f.Add(int32(0))
	f.Fuzz(func(t *testing.T, a int32) {
		x := Fixed(a)
		one := Fixed(One)
		c := Clamp(x, Neg(one), one)
		if c < Neg(one) || c > one {
			t.Fatalf("Clamp out of range: %v", c)
		}
		r := ReLU(x)
		if r < 0 {
			t.Fatalf("ReLU negative: %v", r)
		}
		if x > 0 && r != x {
			t.Fatal("ReLU must pass positives")
		}
	})
}
