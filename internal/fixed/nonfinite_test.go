package fixed

import (
	"math"
	"testing"
)

// TestNonFiniteConversionTable pins the documented boundary convention for
// non-finite floats end to end: FromFloat's NaN→0 / ±Inf→rail mapping, the
// behaviour of those coerced values through Div, and QFormat.Quantize's
// matching treatment. The convention is silent by design (the AXI
// conversion hardware has no NaN encoding); the table makes it tested,
// documented behaviour instead of an accident.
func TestNonFiniteConversionTable(t *testing.T) {
	cases := []struct {
		name string
		got  Fixed
		want Fixed
	}{
		{"FromFloat(NaN)", FromFloat(math.NaN()), 0},
		{"FromFloat(+Inf)", FromFloat(math.Inf(1)), Fixed(Max)},
		{"FromFloat(-Inf)", FromFloat(math.Inf(-1)), Fixed(Min)},
		{"FromFloat(huge)", FromFloat(1e300), Fixed(Max)},
		{"FromFloat(-huge)", FromFloat(-1e300), Fixed(Min)},
		// NaN coerced to 0 then divided: 0/x = 0.
		{"Div(FromFloat(NaN), 2)", Div(FromFloat(math.NaN()), FromFloat(2)), 0},
		// Dividing by a coerced NaN (0) pins the rail matching the sign.
		{"Div(1, FromFloat(NaN))", Div(Fixed(One), FromFloat(math.NaN())), Fixed(Max)},
		{"Div(-1, FromFloat(NaN))", Div(Neg(Fixed(One)), FromFloat(math.NaN())), Fixed(Min)},
		// Inf saturates at conversion, then divides like the rail value:
		// Max/2 rounds half-up to 2³⁰, and 1/Max ≈ 2⁻¹¹ (512 LSBs).
		{"Div(FromFloat(+Inf), 2)", Div(FromFloat(math.Inf(1)), FromFloat(2)), Fixed(1 << 30)},
		{"Div(1, FromFloat(+Inf))", Div(Fixed(One), FromFloat(math.Inf(1))), Fixed(512)},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d (%v), want %d (%v)", c.name, int32(c.got), c.got, int32(c.want), c.want)
		}
	}

	q := QFormat{Frac: 20}
	qcases := []struct {
		name string
		in   float64
		want float64
	}{
		{"Quantize(NaN)", math.NaN(), 0},
		{"Quantize(+Inf)", math.Inf(1), q.MaxValue()},
		{"Quantize(-Inf)", math.Inf(-1), -float64(math.MaxInt32+1) / float64(int64(1)<<20)},
		{"Quantize(huge)", 1e300, q.MaxValue()},
	}
	for _, c := range qcases {
		got := q.Quantize(c.in)
		if math.IsNaN(got) || got != c.want {
			t.Errorf("%s = %g, want %g", c.name, got, c.want)
		}
	}

	// Quantize must agree with FromFloat on the Q20 grid for finite values
	// near the rails, keeping the two conversion paths one convention.
	for _, f := range []float64{2047.5, -2047.5, 0.3, -0.3} {
		if got, want := q.Quantize(f), FromFloat(f).Float(); got != want {
			t.Errorf("Quantize(%g) = %g, FromFloat = %g", f, got, want)
		}
	}
}
