package fixed

import "math"

// Acct accumulates numeric-health counters for the fixed-point datapath
// (any Qm.f format — the format-dependent ops take the format via the *Q
// method variants; the plain methods are the Q20-default shorthand): how often
// an operation hit the saturation rails, how many NaN inputs were coerced
// to zero at conversion, and how much value was lost to rounding. A nil
// *Acct is the fully disabled state — every method delegates straight to
// the plain package function at the cost of one pointer comparison, no
// allocation and no atomics — the same contract as obs.Tracer, pinned by
// an AllocsPerRun test.
//
// An Acct is NOT synchronized: each consumer (one fpga.Core phase, one
// conversion site) owns its own accumulator, and aggregation happens at
// snapshot time. That keeps the per-op cost to a handful of integer adds.
type Acct struct {
	// Ops counts accounted operations (Add/Sub/Mul/Div/FromFloat calls).
	Ops int64
	// Saturations counts results clamped at the int32 rails, including
	// division by zero (which saturates by convention).
	Saturations int64
	// NaNs counts NaN inputs coerced to zero by FromFloat.
	NaNs int64
	// QuantErrAbs accumulates the absolute rounding error, in real value
	// units, of every non-saturating Mul, Div and FromFloat. Saturating
	// results are excluded — their (unbounded) clamping loss is tracked by
	// Saturations instead, keeping this series a pure quantization signal.
	QuantErrAbs float64
}

// Enabled reports whether the accumulator records anything.
func (a *Acct) Enabled() bool { return a != nil }

// Reset zeroes the accumulator. Nil-safe.
func (a *Acct) Reset() {
	if a == nil {
		return
	}
	*a = Acct{}
}

// AddTo merges this accumulator into dst (nil-safe on both sides) — how
// per-phase accumulators roll up into run totals.
func (a *Acct) AddTo(dst *Acct) {
	if a == nil || dst == nil {
		return
	}
	dst.Ops += a.Ops
	dst.Saturations += a.Saturations
	dst.NaNs += a.NaNs
	dst.QuantErrAbs += a.QuantErrAbs
}

// SaturationRate returns Saturations/Ops (0 for an empty or nil Acct).
func (a *Acct) SaturationRate() float64 {
	if a == nil || a.Ops == 0 {
		return 0
	}
	return float64(a.Saturations) / float64(a.Ops)
}

// saturated reports whether v clamps at the rails.
func saturated(v int64) bool { return v > int64(Max) || v < int64(Min) }

// Add is fixed.Add with accounting.
func (a *Acct) Add(x, y Fixed) Fixed {
	if a == nil {
		return Add(x, y)
	}
	a.Ops++
	v := int64(x) + int64(y)
	if saturated(v) {
		a.Saturations++
	}
	return sat64(v)
}

// Sub is fixed.Sub with accounting.
func (a *Acct) Sub(x, y Fixed) Fixed {
	if a == nil {
		return Sub(x, y)
	}
	a.Ops++
	v := int64(x) - int64(y)
	if saturated(v) {
		a.Saturations++
	}
	return sat64(v)
}

// Mul is fixed.Mul with accounting under the default Q20 format — the
// same accounting MulQ does at Frac = 20, with the shifts constant (the
// datapath's enabled-accounting ops stay one call deep).
func (a *Acct) Mul(x, y Fixed) Fixed {
	if a == nil {
		return Mul(x, y)
	}
	a.Ops++
	prod := int64(x) * int64(y)
	rounded := (prod + 1<<(FracBits-1)) >> FracBits
	if saturated(rounded) {
		a.Saturations++
		return sat64(rounded)
	}
	a.QuantErrAbs += math.Abs(float64(prod-(rounded<<FracBits))) * invPow2[2*FracBits]
	return Fixed(rounded)
}

// MulQ is QFormat.Mul with accounting: saturation at the rails plus the
// rounding error of the 2⁻²ᶠ → 2⁻ᶠ shift. Nil-safe. The disabled path is
// the datapath's hot loop: the default format takes the package Mul's
// constant-shift body (bit-identical to q.Mul at f = 20; this is what
// keeps the Q20 kernels at their pre-parameterization speed).
func (a *Acct) MulQ(q QFormat, x, y Fixed) Fixed {
	if a == nil {
		if q.Frac == FracBits || q.Frac == 0 {
			return Mul(x, y)
		}
		return q.Mul(x, y)
	}
	f := q.frac()
	a.Ops++
	prod := int64(x) * int64(y)
	rounded := (prod + 1<<(f-1)) >> f
	if saturated(rounded) {
		a.Saturations++
		return sat64(rounded)
	}
	// Rounding error in real units: the exact product lives on the 2⁻²ᶠ
	// grid, the result on the 2⁻ᶠ grid.
	a.QuantErrAbs += math.Abs(float64(prod-(rounded<<f))) * invPow2[(2*f)&63]
	return Fixed(rounded)
}

// Div is fixed.Div with accounting under the default Q20 format.
func (a *Acct) Div(x, y Fixed) Fixed {
	if a == nil {
		return Div(x, y)
	}
	a.Ops++
	if y == 0 {
		a.Saturations++
		return Div(x, y)
	}
	res := Div(x, y)
	if res == Fixed(Max) || res == Fixed(Min) {
		a.Saturations++
		return res
	}
	exact := float64(x) / float64(y)
	a.QuantErrAbs += math.Abs(exact - float64(res)*invPow2[FracBits])
	return res
}

// DivQ is QFormat.Div with accounting: division by zero counts as a
// saturation (it pins the matching rail), and the rounding error of the
// quotient is accumulated otherwise. Nil-safe.
func (a *Acct) DivQ(q QFormat, x, y Fixed) Fixed {
	if a == nil {
		if q.Frac == FracBits || q.Frac == 0 {
			return Div(x, y)
		}
		return q.Div(x, y)
	}
	a.Ops++
	if y == 0 {
		a.Saturations++
		return q.Div(x, y)
	}
	res := q.Div(x, y)
	if res == Fixed(Max) || res == Fixed(Min) {
		// Distinguishing an exact rail hit from a clamped quotient is not
		// worth a second wide division; rail results are rare and counting
		// them as saturations is the conservative reading.
		a.Saturations++
		return res
	}
	// Exact quotient x/y in real units vs the rounded fixed-point result.
	exact := float64(x) / float64(y)
	a.QuantErrAbs += math.Abs(exact - float64(res)*invPow2[q.frac()&63])
	return res
}

// FromFloat is fixed.FromFloat with accounting under the default Q20
// format.
func (a *Acct) FromFloat(f float64) Fixed {
	if a == nil {
		return FromFloat(f)
	}
	a.Ops++
	if math.IsNaN(f) {
		a.NaNs++
		return 0
	}
	scaled := f * float64(One)
	if scaled >= float64(Max) || scaled <= float64(Min) {
		a.Saturations++
		return FromFloat(f)
	}
	res := FromFloat(f)
	a.QuantErrAbs += math.Abs(f - float64(res)*invPow2[FracBits])
	return res
}

// FromFloatQ is QFormat.FromFloat with accounting: NaN coercion,
// saturation at the rails (±Inf always saturates) and conversion rounding
// error. Nil-safe.
func (a *Acct) FromFloatQ(q QFormat, f float64) Fixed {
	if a == nil {
		return q.FromFloat(f)
	}
	a.Ops++
	if math.IsNaN(f) {
		a.NaNs++
		return 0
	}
	w := q.frac() & 63
	scaled := f * pow2[w]
	if scaled >= float64(Max) || scaled <= float64(Min) {
		a.Saturations++
		return q.FromFloat(f)
	}
	res := q.FromFloat(f)
	a.QuantErrAbs += math.Abs(f - float64(res)*invPow2[w])
	return res
}
