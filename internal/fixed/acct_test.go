package fixed

import (
	"math"
	"testing"

	"oselmrl/internal/mat"
)

// TestAcctResultsIdentical pins the accounting layer's core contract: the
// accounted operations return bit-identical results to the plain ones —
// accounting observes the datapath, it never changes it. This is what
// keeps the fpga golden vectors valid with accounting on.
func TestAcctResultsIdentical(t *testing.T) {
	acct := &Acct{}
	cases := []struct{ x, y Fixed }{
		{FromFloat(0.5), FromFloat(-0.25)},
		{FromFloat(1.5), FromFloat(3.25)},
		{Fixed(Max), Fixed(Max)},
		{Fixed(Min), Fixed(One)},
		{FromFloat(1000), FromFloat(2000)},
		{FromFloat(-0.001), FromFloat(0.003)},
		{Fixed(1), Fixed(3)},
		{FromFloat(7), Fixed(0)},
	}
	for _, c := range cases {
		if got, want := acct.Add(c.x, c.y), Add(c.x, c.y); got != want {
			t.Errorf("Acct.Add(%v,%v) = %v, plain Add = %v", c.x, c.y, got, want)
		}
		if got, want := acct.Sub(c.x, c.y), Sub(c.x, c.y); got != want {
			t.Errorf("Acct.Sub(%v,%v) = %v, plain Sub = %v", c.x, c.y, got, want)
		}
		if got, want := acct.Mul(c.x, c.y), Mul(c.x, c.y); got != want {
			t.Errorf("Acct.Mul(%v,%v) = %v, plain Mul = %v", c.x, c.y, got, want)
		}
		if got, want := acct.Div(c.x, c.y), Div(c.x, c.y); got != want {
			t.Errorf("Acct.Div(%v,%v) = %v, plain Div = %v", c.x, c.y, got, want)
		}
	}
	for _, f := range []float64{0, 0.5, -1.25, 3000, -3000, math.NaN(), math.Inf(1), math.Inf(-1), 1e-9} {
		if got, want := acct.FromFloat(f), FromFloat(f); got != want {
			t.Errorf("Acct.FromFloat(%g) = %v, plain FromFloat = %v", f, got, want)
		}
	}
}

func TestAcctCounts(t *testing.T) {
	a := &Acct{}

	// Exact small-value arithmetic: ops counted, nothing else.
	a.Add(FromFloat(0.5), FromFloat(0.25))
	a.Sub(FromFloat(0.5), FromFloat(0.25))
	if a.Ops != 2 || a.Saturations != 0 || a.NaNs != 0 || a.QuantErrAbs != 0 {
		t.Fatalf("exact add/sub polluted the accumulator: %+v", a)
	}

	// Saturating add.
	a.Reset()
	a.Add(Fixed(Max), Fixed(One))
	if a.Saturations != 1 {
		t.Fatalf("saturating add not counted: %+v", a)
	}

	// Saturating multiply (2000 * 2000 >> Q11 range).
	a.Reset()
	big := FromFloat(2000)
	if got := a.Mul(big, big); got != Fixed(Max) {
		t.Fatalf("Mul(2000, 2000) = %v, want rail", got)
	}
	if a.Saturations != 1 || a.QuantErrAbs != 0 {
		t.Fatalf("saturating mul must count a saturation and no quant error: %+v", a)
	}

	// Rounding multiply: eps*eps rounds; error accumulates, no saturation.
	a.Reset()
	a.Mul(Fixed(3), Fixed(3)) // 9·2⁻⁴⁰ rounds to 0
	if a.QuantErrAbs <= 0 || a.Saturations != 0 {
		t.Fatalf("rounding mul must accumulate quant error: %+v", a)
	}

	// Division by zero saturates by convention.
	a.Reset()
	if got := a.Div(Fixed(One), 0); got != Fixed(Max) {
		t.Fatalf("Div(1, 0) = %v, want Max", got)
	}
	if a.Saturations != 1 {
		t.Fatalf("div-by-zero not counted as saturation: %+v", a)
	}

	// Inexact division accumulates rounding error.
	a.Reset()
	a.Div(Fixed(One), FromFloat(3))
	if a.QuantErrAbs <= 0 {
		t.Fatalf("1/3 must accumulate quant error: %+v", a)
	}

	// NaN coercion and Inf saturation at conversion.
	a.Reset()
	a.FromFloat(math.NaN())
	a.FromFloat(math.Inf(1))
	a.FromFloat(math.Inf(-1))
	if a.NaNs != 1 || a.Saturations != 2 {
		t.Fatalf("non-finite conversions miscounted: %+v", a)
	}

	// Off-grid conversion error.
	a.Reset()
	a.FromFloat(1e-9) // below Q20 resolution: rounds to 0 or Eps
	if a.QuantErrAbs <= 0 {
		t.Fatalf("off-grid conversion must accumulate quant error: %+v", a)
	}
}

func TestAcctRollup(t *testing.T) {
	a := &Acct{Ops: 3, Saturations: 1, NaNs: 2, QuantErrAbs: 0.5}
	b := &Acct{Ops: 7, Saturations: 2, NaNs: 0, QuantErrAbs: 0.25}
	a.AddTo(b)
	if b.Ops != 10 || b.Saturations != 3 || b.NaNs != 2 || b.QuantErrAbs != 0.75 {
		t.Fatalf("AddTo rollup wrong: %+v", b)
	}
	if got := b.SaturationRate(); got != 0.3 {
		t.Fatalf("SaturationRate = %g, want 0.3", got)
	}
	// Nil on either side is inert.
	var nilA *Acct
	nilA.AddTo(b)
	a.AddTo(nil)
	nilA.Reset()
	if nilA.Enabled() {
		t.Fatal("nil Acct must report disabled")
	}
	if nilA.SaturationRate() != 0 {
		t.Fatal("nil Acct rate must be 0")
	}
}

// TestDisabledAcctPathDoesNotAllocate pins the zero-cost contract of the
// nil accumulator, mirroring obs.Tracer's disabled-span test: with
// accounting off the per-op cost is one pointer comparison.
func TestDisabledAcctPathDoesNotAllocate(t *testing.T) {
	var a *Acct
	x, y := FromFloat(0.5), FromFloat(-0.25)
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = a.Add(x, y)
		_ = a.Sub(x, y)
		_ = a.Mul(x, y)
		_ = a.Div(x, y)
		_ = a.FromFloat(0.123)
	}); allocs != 0 {
		t.Fatalf("nil Acct op path allocates %g per run", allocs)
	}
}

// The enabled path must be allocation-free too — it only bumps fields of
// a caller-owned struct.
func TestEnabledAcctPathDoesNotAllocate(t *testing.T) {
	a := &Acct{}
	x, y := FromFloat(0.5), FromFloat(-0.25)
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = a.Add(x, y)
		_ = a.Mul(x, y)
		_ = a.Div(x, y)
		_ = a.FromFloat(0.123)
	}); allocs != 0 {
		t.Fatalf("enabled Acct op path allocates %g per run", allocs)
	}
}

func TestFromDenseAcct(t *testing.T) {
	m := mat.Zeros(2, 2)
	m.Set(0, 0, 0.5)
	m.Set(0, 1, math.NaN())
	m.Set(1, 0, math.Inf(1))
	m.Set(1, 1, 1e-9)
	acct := &Acct{}
	got := FromDenseAcct(m, acct)
	want := FromDense(m)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Errorf("FromDenseAcct differs from FromDense at (%d,%d)", i, j)
			}
		}
	}
	if acct.Ops != 4 || acct.NaNs != 1 || acct.Saturations != 1 || acct.QuantErrAbs <= 0 {
		t.Fatalf("conversion accounting wrong: %+v", acct)
	}
}

// The benchmark pair quantifies disabled-vs-enabled accounting cost (the
// PR's no-overhead-when-off evidence).
func BenchmarkAcctDisabledMul(b *testing.B) {
	var a *Acct
	x, y := FromFloat(0.5), FromFloat(-0.25)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(x, y)
	}
}

func BenchmarkAcctEnabledMul(b *testing.B) {
	a := &Acct{}
	x, y := FromFloat(0.5), FromFloat(-0.25)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(x, y)
	}
}
