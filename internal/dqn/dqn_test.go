package dqn

import (
	"math"
	"testing"

	"oselmrl/internal/env"
	"oselmrl/internal/replay"
	"oselmrl/internal/timing"
)

func testCfg() Config {
	c := DefaultConfig(4, 2, 16)
	c.Seed = 3
	return c
}

func TestDefaultConfigPaperParams(t *testing.T) {
	c := DefaultConfig(4, 2, 64)
	if c.LearningRate != 0.01 {
		t.Errorf("lr = %v, paper says 0.01", c.LearningRate)
	}
	if c.BatchSize != 32 {
		t.Errorf("batch = %d, Figure 5 shows predict_32", c.BatchSize)
	}
	if c.Epsilon1 != 0.7 || c.UpdateEvery != 2 {
		t.Error("epsilon1/UPDATE_STEP must match §4.1")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Hidden = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.BufferCapacity = 1 },
		func(c *Config) { c.ExploreDecay = 0 },
	}
	for i, mutate := range bad {
		c := testCfg()
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNetworkTopology(t *testing.T) {
	a := MustNew(testCfg())
	sizes := a.Network().Sizes()
	// Three layers (§4.1: "a three-layer DQN"): input, hidden, output.
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 16 || sizes[2] != 2 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestNoTrainingBeforeBatchFills(t *testing.T) {
	a := MustNew(testCfg())
	s := []float64{0, 0, 0, 0}
	for i := 0; i < 31; i++ {
		if err := a.Observe(replay.Transition{State: s, NextState: s}); err != nil {
			t.Fatal(err)
		}
	}
	if a.Counters().Calls(timing.PhaseTrainDQN) != 0 {
		t.Error("no training before the buffer holds a batch")
	}
	if err := a.Observe(replay.Transition{State: s, NextState: s}); err != nil {
		t.Fatal(err)
	}
	if a.Counters().Calls(timing.PhaseTrainDQN) != 1 {
		t.Error("training must begin at batch size")
	}
	if a.Counters().Calls(timing.PhasePredict32) != 1 {
		t.Error("each train step includes one batch-32 target prediction")
	}
}

func TestSelectActionCounts(t *testing.T) {
	cfg := testCfg()
	cfg.Epsilon1 = 1 // always greedy
	cfg.ExploreDecay = 1
	a := MustNew(cfg)
	a.SelectAction([]float64{0, 0, 0, 0})
	if a.Counters().Calls(timing.PhasePredict1) != 1 {
		t.Error("greedy action must record predict_1")
	}
}

func TestTrainingMovesTowardTargets(t *testing.T) {
	// Feed a constant transition with reward 1 and done; Q(s, a) must
	// approach 1 for the taken action.
	cfg := testCfg()
	cfg.Epsilon1 = 0 // act randomly; training is what we test
	a := MustNew(cfg)
	s := []float64{0.5, -0.5, 0.2, -0.2}
	for i := 0; i < 400; i++ {
		if err := a.Observe(replay.Transition{State: s, Action: 1, Reward: 1, NextState: s, Done: true}); err != nil {
			t.Fatal(err)
		}
	}
	q := a.Network().Forward(s)
	if math.Abs(q[1]-1) > 0.1 {
		t.Errorf("Q(s, 1) = %v, want ~1 after training", q[1])
	}
}

func TestTargetSync(t *testing.T) {
	a := MustNew(testCfg())
	s := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 64; i++ {
		if err := a.Observe(replay.Transition{State: s, Action: i % 2, Reward: 1, NextState: s, Done: true}); err != nil {
			t.Fatal(err)
		}
	}
	q1 := a.theta1.Forward(s)
	q2 := a.theta2.Forward(s)
	if math.Abs(q1[0]-q2[0]) < 1e-9 {
		t.Fatal("θ1 should have diverged from θ2")
	}
	a.EndEpisode(2)
	q2 = a.theta2.Forward(s)
	if math.Abs(q1[0]-q2[0]) > 1e-12 {
		t.Error("EndEpisode(2) must sync θ2")
	}
}

func TestReinitializeClearsBuffer(t *testing.T) {
	a := MustNew(testCfg())
	s := []float64{0, 0, 0, 0}
	for i := 0; i < 10; i++ {
		if err := a.Observe(replay.Transition{State: s, NextState: s}); err != nil {
			t.Fatal(err)
		}
	}
	a.Reinitialize()
	if a.BufferLen() != 0 {
		t.Error("Reinitialize must clear the replay buffer")
	}
}

// TestDQNLearnsGridWorld: integration — the baseline must master a
// deterministic 3x3 grid world quickly.
func TestDQNLearnsGridWorld(t *testing.T) {
	g := env.NewGridWorld(3, 9)
	cfg := DefaultConfig(g.ObservationSize(), g.ActionCount(), 24)
	cfg.Seed = 11
	cfg.ExploreDecay = 0.995
	a := MustNew(cfg)
	for ep := 1; ep <= 300; ep++ {
		s := g.Reset()
		for {
			act := a.SelectAction(s)
			ns, r, done := g.Step(act)
			if err := a.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
				t.Fatal(err)
			}
			s = ns
			if done {
				break
			}
		}
		a.EndEpisode(ep)
	}
	// Greedy rollout must reach the goal in the minimal 4 moves.
	s := g.Reset()
	steps := 0
	for {
		ns, r, done := g.Step(a.GreedyAction(s))
		s = ns
		steps++
		if done {
			if r != 1 {
				t.Fatalf("greedy policy failed (terminal reward %v)", r)
			}
			break
		}
		if steps > 8 {
			t.Fatal("greedy policy too slow on 3x3 grid")
		}
	}
}

func TestLastLossFiniteAfterTraining(t *testing.T) {
	a := MustNew(testCfg())
	s := []float64{0.1, 0.1, 0.1, 0.1}
	if a.LastLoss() != 0 {
		t.Error("LastLoss before batch must be 0")
	}
	for i := 0; i < 50; i++ {
		if err := a.Observe(replay.Transition{State: s, Action: i % 2, Reward: 1, NextState: s, Done: i%5 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	l := a.LastLoss()
	if math.IsNaN(l) || math.IsInf(l, 0) || l < 0 {
		t.Errorf("LastLoss = %v", l)
	}
}

// TestDoubleDQNTargets: Double DQN must compute its targets from θ2's
// value at θ1's argmax. Verified behaviourally: both variants train
// without error and the Double variant's counters include the extra
// batch prediction.
func TestDoubleDQNTargets(t *testing.T) {
	cfg := testCfg()
	cfg.DoubleQ = true
	a := MustNew(cfg)
	s := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 33; i++ {
		if err := a.Observe(replay.Transition{State: s, Action: i % 2, Reward: 1, NextState: s, Done: i%5 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	// Two train steps happened (at 32 and 33 observations), each with two
	// batch-32 predictions (θ2 targets + θ1 ranking).
	if got := a.Counters().Calls(timing.PhasePredict32); got != 4 {
		t.Errorf("predict_32 calls = %d, want 4 (2 per Double-DQN step)", got)
	}
}
