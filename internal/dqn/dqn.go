// Package dqn implements the conventional Deep Q-Network baseline the
// paper compares against (§2.4, §4.1 design (6)): a three-layer MLP trained
// by backpropagation with the Adam optimizer (lr = 0.01), the Huber loss
// (Eq. 14-15), uniform experience replay, and a fixed target network θ2
// synced from θ1 at a fixed episode interval (Eq. 9).
package dqn

import (
	"fmt"
	"math"
	"time"

	"oselmrl/internal/activation"
	"oselmrl/internal/mat"
	"oselmrl/internal/nn"
	"oselmrl/internal/obs"
	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
	"oselmrl/internal/timing"
)

// Config holds the baseline's hyperparameters with the paper's defaults.
type Config struct {
	// ObservationSize and ActionCount describe the environment.
	ObservationSize, ActionCount int
	// Hidden is the hidden-layer width (swept 32..192 like the OS-ELM Ñ).
	Hidden int
	// Epsilon1 is the initial greedy-action probability, matching
	// Algorithm 1's convention (greedy iff r < ε₁); the paper notes ε₂ is
	// not used by DQN.
	Epsilon1 float64
	// ExploreDecay multiplies the exploration probability (1 − ε₁) after
	// every episode, the same annealing interpretation as qnet.Config (see
	// that field's comment and DESIGN.md §5). 1 keeps ε constant.
	ExploreDecay float64
	// Gamma is the discount rate.
	Gamma float64
	// LearningRate feeds Adam (paper: 0.01).
	LearningRate float64
	// BatchSize is the replay sample size (paper Figure 5 shows
	// predict_32, i.e. batch 32).
	BatchSize int
	// BufferCapacity is the experience-replay size — the memory cost the
	// paper's edge argument targets.
	BufferCapacity int
	// UpdateEvery syncs θ2 ← θ1 every this many episodes.
	UpdateEvery int
	// DoubleQ selects Double DQN targets (van Hasselt et al., 2016): θ1
	// chooses the next action, θ2 evaluates it. Extension beyond the
	// paper's conventional DQN baseline.
	DoubleQ bool
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig returns the paper-aligned baseline configuration.
func DefaultConfig(obsSize, actions, hidden int) Config {
	return Config{
		ObservationSize: obsSize,
		ActionCount:     actions,
		Hidden:          hidden,
		Epsilon1:        0.7,
		ExploreDecay:    0.99,
		Gamma:           0.99,
		LearningRate:    0.01,
		BatchSize:       32,
		BufferCapacity:  10000,
		UpdateEvery:     2,
		Seed:            1,
	}
}

// Agent is the DQN baseline.
type Agent struct {
	cfg Config
	rng *rng.RNG

	theta1 *nn.MLP
	theta2 *nn.MLP
	opt    *nn.Adam
	buffer *replay.Buffer
	loss   nn.HuberLoss

	dims        timing.DQNDims
	counters    *timing.Counters
	exploreProb float64

	// obs receives structured events and metrics; nil disables.
	obs *obs.Emitter
}

// New builds the baseline agent.
func New(cfg Config) (*Agent, error) {
	if cfg.ObservationSize <= 0 || cfg.ActionCount <= 0 || cfg.Hidden <= 0 {
		return nil, fmt.Errorf("dqn: invalid dimensions obs=%d actions=%d hidden=%d",
			cfg.ObservationSize, cfg.ActionCount, cfg.Hidden)
	}
	if cfg.BatchSize <= 0 || cfg.BufferCapacity < cfg.BatchSize {
		return nil, fmt.Errorf("dqn: batch %d must fit in buffer %d", cfg.BatchSize, cfg.BufferCapacity)
	}
	if cfg.ExploreDecay <= 0 || cfg.ExploreDecay > 1 {
		return nil, fmt.Errorf("dqn: ExploreDecay must be in (0, 1]: %g", cfg.ExploreDecay)
	}
	a := &Agent{
		cfg:      cfg,
		rng:      rng.New(cfg.Seed),
		buffer:   replay.NewBuffer(cfg.BufferCapacity),
		counters: timing.NewCounters(),
		dims: timing.DQNDims{
			In:      cfg.ObservationSize,
			Hidden:  cfg.Hidden,
			Actions: cfg.ActionCount,
		},
	}
	a.initModels()
	return a, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Agent {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

func (a *Agent) initModels() {
	sizes := []int{a.cfg.ObservationSize, a.cfg.Hidden, a.cfg.ActionCount}
	acts := []activation.Func{activation.ReLU, activation.Identity}
	a.theta1 = nn.NewMLP(sizes, acts, a.rng)
	a.theta2 = a.theta1.Clone()
	a.opt = nn.NewAdam(a.cfg.LearningRate)
	a.buffer.Clear()
	a.exploreProb = 1 - a.cfg.Epsilon1
}

// Name returns the paper's design name.
func (a *Agent) Name() string { return "DQN" }

// Counters exposes the accumulated timing counters.
func (a *Agent) Counters() *timing.Counters { return a.counters }

// SetObserver installs the observability emitter (harness.Observable).
func (a *Agent) SetObserver(e *obs.Emitter) { a.obs = e }

// SelectAction is ε-greedy with the same convention as Algorithm 1.
func (a *Agent) SelectAction(state []float64) int {
	if a.rng.Float64() >= a.exploreProb {
		sp := a.obs.StartSpan(string(timing.PhasePredict1))
		act := a.greedy(state)
		a.counters.Add(timing.PhasePredict1, a.dims.Predict1Flops())
		if sp.Active() {
			// Modelled counterpart on the DQN software stack (§4.3: NumPy).
			sp.EndModelled(timing.CortexA9NumPy.Seconds(timing.PhasePredict1, 1, a.dims.Predict1Flops()))
		}
		return act
	}
	return a.rng.Intn(a.cfg.ActionCount)
}

// GreedyAction returns argmax_a Q(s,a) without exploration.
func (a *Agent) GreedyAction(state []float64) int { return a.greedy(state) }

func (a *Agent) greedy(state []float64) int {
	q := a.theta1.Forward(state)
	best, arg, ties := math.Inf(-1), 0, 0
	for i, v := range q {
		switch {
		case v > best:
			best, arg, ties = v, i, 1
		case v == best:
			ties++
			if a.rng.Intn(ties) == 0 {
				arg = i
			}
		}
	}
	return arg
}

// Observe stores the transition and, once the buffer holds a full batch,
// performs one gradient step per environment step.
func (a *Agent) Observe(t replay.Transition) error {
	a.buffer.Add(t)
	if a.obs != nil {
		a.obs.SetGauge(obs.GaugeBufferOccupancy, float64(a.buffer.Len())/float64(a.buffer.Cap()))
	}
	if a.buffer.Len() < a.cfg.BatchSize {
		return nil
	}
	a.trainStep()
	return nil
}

// trainStep samples a batch, builds targets from θ2 (Eq. 9) and applies
// one Adam update on the Huber loss of the selected-action Q values.
func (a *Agent) trainStep() {
	sp := a.obs.StartSpan(string(timing.PhaseTrainDQN))
	t0 := a.obs.Now()
	batch := a.buffer.Sample(a.rng, a.cfg.BatchSize)
	k := len(batch)
	// predict32Calls tracks the batched target/ranking forward passes so
	// the span's modelled time covers everything the step dispatched.
	predict32Calls := int64(1)

	states := matFromStates(batch, false, a.cfg.ObservationSize)
	nextStates := matFromStates(batch, true, a.cfg.ObservationSize)

	// Target-network forward pass at batch size (the paper's predict_32).
	nextQ, _ := a.theta2.ForwardBatch(nextStates)
	a.counters.Add(timing.PhasePredict32, a.dims.PredictBatchFlops(k))

	// Double DQN needs θ1's ranking of the next states.
	var nextQ1 *mat.Dense
	if a.cfg.DoubleQ {
		nextQ1, _ = a.theta1.ForwardBatch(nextStates)
		a.counters.Add(timing.PhasePredict32, a.dims.PredictBatchFlops(k))
		predict32Calls++
	}

	targets := make([]float64, k)
	for i, tr := range batch {
		y := tr.Reward
		if !tr.Done {
			if a.cfg.DoubleQ {
				argmax, best := 0, math.Inf(-1)
				for j := 0; j < a.cfg.ActionCount; j++ {
					if v := nextQ1.At(i, j); v > best {
						best, argmax = v, j
					}
				}
				y += a.cfg.Gamma * nextQ.At(i, argmax)
			} else {
				best := math.Inf(-1)
				for j := 0; j < a.cfg.ActionCount; j++ {
					if v := nextQ.At(i, j); v > best {
						best = v
					}
				}
				y += a.cfg.Gamma * best
			}
		}
		targets[i] = y
	}

	// Online-network forward pass, also batch-sized.
	q, cache := a.theta1.ForwardBatch(states)

	// Gradient of the mean Huber loss w.r.t. the selected-action outputs;
	// all other outputs get zero gradient.
	pred := make([]float64, k)
	for i, tr := range batch {
		pred[i] = q.At(i, tr.Action)
	}
	g := a.loss.Grad(pred, targets)
	dLoss := zerosLike(q)
	for i, tr := range batch {
		dLoss.Set(i, tr.Action, g[i])
	}
	grads := a.theta1.BackwardBatch(cache, dLoss)
	a.opt.Step(a.theta1, grads)
	a.counters.Add(timing.PhaseTrainDQN, a.dims.TrainFlops(k))
	if a.obs != nil {
		// Modelled device time for everything the step dispatched: the
		// batched forward passes plus the gradient step (NumPy profile).
		model := timing.CortexA9NumPy.Seconds(timing.PhasePredict32, predict32Calls,
			float64(predict32Calls)*a.dims.PredictBatchFlops(k)) +
			timing.CortexA9NumPy.Seconds(timing.PhaseTrainDQN, 1, a.dims.TrainFlops(k))
		sp.EndModelled(model)
		d := time.Since(t0)
		// Batch-mean TD error and Q value: one histogram observation per
		// gradient step keeps registry lock traffic off the per-sample path
		// while still catching a blowup within one step.
		var tdSum, qSum float64
		for i := range pred {
			tdSum += math.Abs(targets[i] - pred[i])
			qSum += pred[i]
		}
		tdMean := tdSum / float64(k)
		a.obs.AddWall(string(timing.PhaseTrainDQN), d)
		a.obs.Inc(obs.MetricTrainSteps, 1)
		a.obs.Observe(obs.HistLearnTDErrorAbs, tdMean)
		a.obs.Observe(obs.HistLearnQValue, qSum/float64(k))
		a.obs.Emit(obs.EventTrainStep, 0, map[string]float64{
			"batch":    float64(k),
			"td_error": tdMean,
			"dur_ms":   float64(d) / float64(time.Millisecond),
			"model_ms": model * 1e3,
		})
	}
}

// EndEpisode syncs θ2 ← θ1 every UpdateEvery episodes (1-based episodes).
func (a *Agent) EndEpisode(episode int) {
	a.exploreProb *= a.cfg.ExploreDecay
	if episode%a.cfg.UpdateEvery == 0 {
		a.theta2.CopyWeightsFrom(a.theta1)
		if a.obs != nil {
			norm := a.theta1.WeightNorm()
			a.obs.Inc(obs.MetricTheta2Syncs, 1)
			a.obs.SetGauge(obs.GaugeLearnBetaNorm, norm)
			a.obs.Emit(obs.EventTheta2Sync, episode, map[string]float64{
				"weight_norm": norm,
			})
		}
	}
}

// Reinitialize draws fresh weights and clears the replay buffer. The
// baseline normally never resets (the paper's reset rule applies to the
// ELM/OS-ELM designs), but the harness calls it uniformly when configured.
func (a *Agent) Reinitialize() { a.initModels() }

// LastLoss computes the Huber loss on a fresh batch without updating, for
// diagnostics. Returns 0 when the buffer cannot fill a batch.
func (a *Agent) LastLoss() float64 {
	if a.buffer.Len() < a.cfg.BatchSize {
		return 0
	}
	batch := a.buffer.Sample(a.rng, a.cfg.BatchSize)
	states := matFromStates(batch, false, a.cfg.ObservationSize)
	nextStates := matFromStates(batch, true, a.cfg.ObservationSize)
	nextQ, _ := a.theta2.ForwardBatch(nextStates)
	q, _ := a.theta1.ForwardBatch(states)
	pred := make([]float64, len(batch))
	targets := make([]float64, len(batch))
	for i, tr := range batch {
		pred[i] = q.At(i, tr.Action)
		y := tr.Reward
		if !tr.Done {
			best := math.Inf(-1)
			for j := 0; j < a.cfg.ActionCount; j++ {
				if v := nextQ.At(i, j); v > best {
					best = v
				}
			}
			y += a.cfg.Gamma * best
		}
		targets[i] = y
	}
	return a.loss.Loss(pred, targets)
}

// BufferLen reports the replay occupancy (tests).
func (a *Agent) BufferLen() int { return a.buffer.Len() }

// Network exposes θ1 for white-box tests.
func (a *Agent) Network() *nn.MLP { return a.theta1 }
