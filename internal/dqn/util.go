package dqn

import (
	"oselmrl/internal/mat"
	"oselmrl/internal/replay"
)

// matFromStates packs batch states (or next-states) into a k×obs matrix.
func matFromStates(batch []replay.Transition, next bool, obs int) *mat.Dense {
	out := mat.Zeros(len(batch), obs)
	for i, tr := range batch {
		s := tr.State
		if next {
			s = tr.NextState
		}
		out.SetRow(i, s)
	}
	return out
}

// zerosLike allocates a zero matrix with m's shape.
func zerosLike(m *mat.Dense) *mat.Dense {
	r, c := m.Dims()
	return mat.Zeros(r, c)
}
