package serve

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/) support for
// the serving path: an incoming `traceparent` header is honored so a
// caller's distributed trace continues through the policy service, and
// requests arriving without one get a fresh trace ID whenever request
// observability (access logging or span tracing) needs one. The ID is
// returned on every traced response as `X-Trace-Id`, keyed into the
// serve_access event, and names the request's span group in the
// Perfetto timeline — one identifier to follow a single slow request
// across the access log, the trace view, and the client.

// traceContext is one request's W3C trace context.
type traceContext struct {
	// traceID is the 16-byte trace-id; all-zero is invalid per spec.
	traceID [16]byte
	// parent is the incoming parent-id (the caller's span), zero when
	// the request opened a new trace.
	parent [8]byte
	// sampled is the trace-flags sampled bit (set on generated
	// contexts).
	sampled bool
}

// valid reports whether the context carries a usable trace ID.
func (tc traceContext) valid() bool { return tc.traceID != [16]byte{} }

// traceIDHex is the 32-hex-digit trace ID (the X-Trace-Id value and the
// serve_access `trace` label).
func (tc traceContext) traceIDHex() string {
	return hex.EncodeToString(tc.traceID[:])
}

// spanGroup names the request's span group in the trace timeline: the
// trace ID's low 8 bytes, enough to match against the access log while
// keeping Perfetto process names short.
func (tc traceContext) spanGroup() string {
	return "req:" + hex.EncodeToString(tc.traceID[8:])
}

// traceSeed is the process-unique generator state: an 8-byte random
// prefix drawn once at init plus an atomic counter. A generated trace ID
// is prefix ⊕ counter-high in the top half and the counter in the low
// half — unique within the process without locks, unique across
// processes with 2⁻⁶⁴ collision odds, and allocation-free to generate.
var traceSeed struct {
	prefix  [8]byte
	counter atomic.Uint64
}

func init() {
	if _, err := rand.Read(traceSeed.prefix[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a fixed prefix rather than panic — uniqueness within the
		// process still holds via the counter.
		copy(traceSeed.prefix[:], "oselmrl!")
	}
	// Start the counter at a random offset so two processes sharing a
	// rare prefix collision still diverge.
	var off [8]byte
	rand.Read(off[:])
	traceSeed.counter.Store(binary.BigEndian.Uint64(off[:]))
}

// newTraceContext generates a fresh sampled context. Safe for concurrent
// use from any number of request goroutines.
func newTraceContext() traceContext {
	n := traceSeed.counter.Add(1)
	var tc traceContext
	copy(tc.traceID[:8], traceSeed.prefix[:])
	binary.BigEndian.PutUint64(tc.traceID[8:], n)
	// Fold the counter into the prefix half too, so the full 128 bits
	// differ between consecutive IDs, not just the tail.
	for i := 0; i < 8; i++ {
		tc.traceID[i] ^= tc.traceID[8+i]
	}
	if tc.traceID == [16]byte{} {
		tc.traceID[15] = 1 // all-zero is invalid per spec
	}
	tc.sampled = true
	return tc
}

// parseTraceparent parses a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). Unknown
// versions are accepted if the fixed-length prefix still parses
// (version ff and malformed or all-zero fields are not).
func parseTraceparent(h string) (traceContext, bool) {
	var tc traceContext
	if len(h) < 55 {
		return tc, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tc, false
	}
	if len(h) > 55 && h[55] != '-' {
		// A future version may append fields, but only after a dash.
		return tc, false
	}
	version := h[0:2]
	if !isHex(version) || version == "ff" {
		return tc, false
	}
	if !isHex(h[3:35]) || !isHex(h[36:52]) || !isHex(h[53:55]) {
		return tc, false
	}
	hex.Decode(tc.traceID[:], []byte(h[3:35]))
	hex.Decode(tc.parent[:], []byte(h[36:52]))
	if tc.traceID == [16]byte{} || tc.parent == [8]byte{} {
		return tc, false
	}
	var flags [1]byte
	hex.Decode(flags[:], []byte(h[53:55]))
	tc.sampled = flags[0]&0x01 != 0
	return tc, true
}

// isHex reports whether s is entirely lowercase hex (the traceparent
// grammar forbids uppercase).
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
