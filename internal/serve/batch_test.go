package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"oselmrl/internal/obs"
	"oselmrl/internal/rng"
)

// tenantItem submits one hand-built item to a tenant's collector and
// returns its reply — the deterministic way to exercise batch boundaries.
func tenantItem(state []float64, includeQ bool) *batchItem {
	return &batchItem{state: state, includeQ: includeQ, out: make(chan batchOut, 1)}
}

// Reaching BatchMax must flush immediately, long before the window.
func TestBatchMaxSizeFlush(t *testing.T) {
	s, _ := newTestService(t, Config{BatchWindow: 5 * time.Second, BatchMax: 4, Obs: obs.NewEmitter(nil)})
	defer s.Close()
	b := s.def.batch
	start := time.Now()
	items := make([]*batchItem, 4)
	for i := range items {
		items[i] = tenantItem([]float64{float64(i), 0, 0, 0}, true)
		if !b.submit(items[i]) {
			t.Fatal("submit refused")
		}
	}
	for i, it := range items {
		bo := <-it.out
		if bo.err != nil {
			t.Fatalf("item %d: %v", i, bo.err)
		}
		if bo.size != 4 {
			t.Errorf("item %d evaluated in batch of %d, want 4", i, bo.size)
		}
	}
	if time.Since(start) > time.Second {
		t.Error("max-size batch waited for the window instead of flushing")
	}
}

// A lone request is flushed by window expiry and takes the per-request
// fallthrough (batch size 1) with the exact per-request Q values.
func TestBatchWindowExpiryAndSingleFallthrough(t *testing.T) {
	s, _ := newTestService(t, Config{BatchWindow: 20 * time.Millisecond, BatchMax: 64, Obs: obs.NewEmitter(nil)})
	defer s.Close()
	state := []float64{0.3, -0.1, 0.8, 0.2}
	it := tenantItem(state, true)
	start := time.Now()
	if !s.def.batch.submit(it) {
		t.Fatal("submit refused")
	}
	bo := <-it.out
	if bo.err != nil {
		t.Fatal(bo.err)
	}
	if bo.size != 1 {
		t.Errorf("batch size %d, want 1", bo.size)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("flush after %v, want ≈ the 20ms window", elapsed)
	}
	// Bit-identical to the per-request evaluator path.
	p := s.def.Policy()
	ev := p.acquire()
	defer p.release(ev)
	want, err := ev.QValues(state)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if bo.q[i] != want[i] {
			t.Fatalf("q[%d] = %v, per-request path %v", i, bo.q[i], want[i])
		}
	}
}

// An item whose state is stale for the current policy (the reload-
// mid-batch case: the checkpoint swapped to a different observation size
// between submit and flush) is answered with the per-request error text
// and must not poison the valid items sharing its batch.
func TestBatchMixedValidityItems(t *testing.T) {
	s, _ := newTestService(t, Config{BatchWindow: 5 * time.Second, BatchMax: 3, Obs: obs.NewEmitter(nil)})
	defer s.Close()
	good1 := tenantItem([]float64{0.1, 0.2, 0.3, 0.4}, true)
	bad := tenantItem([]float64{1, 2}, true) // wrong length for the 4-dim policy
	good2 := tenantItem([]float64{-0.4, 0.3, -0.2, 0.1}, true)
	for _, it := range []*batchItem{good1, bad, good2} {
		if !s.def.batch.submit(it) {
			t.Fatal("submit refused")
		}
	}
	if bo := <-bad.out; bo.err == nil {
		t.Error("stale-shape item must error")
	} else if bo.err.Error() != "qnet: state has 2 features, model expects 4" {
		t.Errorf("error text %q must match the per-request path", bo.err)
	}
	for i, it := range []*batchItem{good1, good2} {
		if bo := <-it.out; bo.err != nil {
			t.Errorf("valid item %d rejected: %v", i, bo.err)
		} else if bo.size != 3 {
			t.Errorf("valid item %d batch size %d, want 3", i, bo.size)
		}
	}
}

// The golden batching contract over HTTP: answers from a batched service
// are byte-identical to the unbatched service over the same checkpoint —
// same actions, same Q bytes, request by request — even while real
// multi-request batches form (run with -race).
func TestBatchedByteIdenticalToUnbatched(t *testing.T) {
	em := obs.NewEmitter(nil)
	batched, ckpt := newTestService(t, Config{BatchWindow: 2 * time.Millisecond, BatchMax: 8, Pool: 8, Queue: 128, Obs: em})
	defer batched.Close()
	plain, err := New(Config{Checkpoint: ckpt, Obs: obs.NewEmitter(nil)})
	if err != nil {
		t.Fatal(err)
	}
	hBatched, hPlain := batched.Handler(), plain.Handler()

	r := rng.New(5)
	states := make([][]float64, 64)
	for i := range states {
		states[i] = []float64{r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1)}
	}
	want := make([]string, len(states))
	for i, st := range states {
		w := postPredict(hPlain, "/v1/predict", st)
		if w.Code != http.StatusOK {
			t.Fatalf("unbatched status %d", w.Code)
		}
		want[i] = w.Body.String()
	}

	got := make([]string, len(states))
	var wg sync.WaitGroup
	for i, st := range states {
		wg.Add(1)
		go func(i int, st []float64) {
			defer wg.Done()
			w := postPredict(hBatched, "/v1/predict", st)
			if w.Code != http.StatusOK {
				got[i] = fmt.Sprintf("status %d: %s", w.Code, w.Body)
				return
			}
			got[i] = w.Body.String()
		}(i, st)
	}
	wg.Wait()
	for i := range states {
		if got[i] != want[i] {
			t.Fatalf("state %d: batched %q != unbatched %q", i, got[i], want[i])
		}
	}
	// The concurrent burst must have produced at least one real batch.
	snap := em.Metrics().Snapshot()
	h := snap.Histograms[HistBatchSize]
	if h == nil || h.N == 0 {
		t.Fatal("no batch-size observations recorded")
	}
	if h.Max < 2 {
		t.Logf("warning: no multi-request batch formed (max %v); identity still holds", h.Max)
	}
}

// Close drains the collector: requests in flight when the drain begins
// and requests arriving afterwards are all answered — none dropped.
func TestBatchedDrainDropsNothing(t *testing.T) {
	s, _ := newTestService(t, Config{BatchWindow: 2 * time.Millisecond, BatchMax: 8, Pool: 8, Queue: 128, Obs: obs.NewEmitter(nil)})
	h := s.Handler()
	const n = 48
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postPredict(h, "/v1/predict", []float64{float64(i) / n, 0, 0, 0})
			codes <- w.Code
		}(i)
		if i == n/2 {
			s.Close() // drain mid-traffic
		}
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request dropped across drain: status %d", code)
		}
	}
	// Post-drain traffic still works (inline fallback) and Close is
	// idempotent.
	s.Close()
	if w := postPredict(h, "/v1/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusOK {
		t.Fatalf("post-drain status %d", w.Code)
	}
}

// Hot reload under concurrent batched traffic: zero failed requests,
// monotonic generations (run with -race).
func TestBatchedPredictDuringHotReload(t *testing.T) {
	s, ckpt := newTestService(t, Config{BatchWindow: time.Millisecond, BatchMax: 8, Pool: 8, Obs: obs.NewEmitter(nil)})
	defer s.Close()
	h := s.Handler()

	const workers = 8
	stop := make(chan struct{})
	errs := make(chan string, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g + 1))
			lastGen := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := postPredict(h, "/v1/predict", []float64{r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1)})
				if w.Code != http.StatusOK {
					errs <- w.Body.String()
					return
				}
				var resp evalResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- err.Error()
					return
				}
				if resp.Generation < lastGen {
					errs <- "generation went backwards"
					return
				}
				lastGen = resp.Generation
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		hidden := 8
		if i%2 == 1 {
			hidden = 16
		}
		writeCheckpoint(t, ckpt, makeAgent(t, hidden, uint64(i+2)))
		if err := s.Reload(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatalf("request failed during batched reload: %s", e)
	default:
	}
}

// Multi-tenant routing: named policies resolve at /v1/t/{tenant}/*, each
// with its own network and generation; unknown tenants 404; with several
// tenants and no default, the bare routes refuse.
func TestTenantRouting(t *testing.T) {
	dir := t.TempDir()
	ckptA := filepath.Join(dir, "a.json")
	ckptB := filepath.Join(dir, "b.json")
	writeCheckpoint(t, ckptA, makeAgent(t, 8, 1))
	writeCheckpoint(t, ckptB, makeAgent(t, 16, 2))
	em := obs.NewEmitter(nil)
	s, err := New(Config{Policies: map[string]string{"alpha": ckptA, "beta": ckptB}, Obs: em})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	for name, hidden := range map[string]int{"alpha": 8, "beta": 16} {
		req := httptest.NewRequest(http.MethodGet, "/v1/t/"+name+"/info", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s info status %d", name, rec.Code)
		}
		var info struct {
			Info
			Tenant  string   `json:"tenant"`
			Tenants []string `json:"tenants"`
		}
		json.Unmarshal(rec.Body.Bytes(), &info)
		if info.Tenant != name || info.Hidden != hidden {
			t.Errorf("%s info %+v", name, info)
		}
		if len(info.Tenants) != 2 {
			t.Errorf("tenants list %v", info.Tenants)
		}
		if w := postPredict(h, "/v1/t/"+name+"/predict", []float64{0.1, 0.2, 0.3, 0.4}); w.Code != http.StatusOK {
			t.Errorf("%s predict status %d", name, w.Code)
		}
	}
	if w := postPredict(h, "/v1/t/nosuch/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusNotFound {
		t.Errorf("unknown tenant status %d", w.Code)
	}
	if w := postPredict(h, "/v1/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusNotFound {
		t.Errorf("bare route with no default tenant: status %d", w.Code)
	}
	// Tenant-labeled counters and generation gauges exist.
	snap := em.Metrics().Snapshot()
	if n := snap.Counter(obs.Labeled(MetricRequests, "tenant", "alpha")); n != 1 {
		t.Errorf("alpha labeled requests = %d, want 1", n)
	}
	if g := snap.Gauges[obs.Labeled(GaugeGeneration, "tenant", "beta")]; g != 1 {
		t.Errorf("beta labeled generation = %v", g)
	}

	// A single named policy also serves the bare routes.
	s2, err := New(Config{Policies: map[string]string{"only": ckptA}, Obs: obs.NewEmitter(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if w := postPredict(s2.Handler(), "/v1/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusOK {
		t.Errorf("single-tenant bare route status %d", w.Code)
	}
}

// Tenants hot-reload independently: reloading one leaves the other's
// generation untouched; ReloadAll bumps every tenant.
func TestTenantIndependentReload(t *testing.T) {
	dir := t.TempDir()
	ckptA := filepath.Join(dir, "a.json")
	ckptB := filepath.Join(dir, "b.json")
	writeCheckpoint(t, ckptA, makeAgent(t, 8, 1))
	writeCheckpoint(t, ckptB, makeAgent(t, 8, 2))
	em := obs.NewEmitter(nil)
	s, err := New(Config{Policies: map[string]string{"alpha": ckptA, "beta": ckptB}, Obs: em})
	if err != nil {
		t.Fatal(err)
	}
	alpha, _ := s.Tenant("alpha")
	beta, _ := s.Tenant("beta")
	writeCheckpoint(t, ckptA, makeAgent(t, 16, 3))
	if err := s.reloadTenant(alpha); err != nil {
		t.Fatal(err)
	}
	if g := alpha.Policy().Generation(); g != 2 {
		t.Errorf("alpha generation %d, want 2", g)
	}
	if g := beta.Policy().Generation(); g != 1 {
		t.Errorf("beta generation %d, want 1 after alpha-only reload", g)
	}
	if err := s.ReloadAll(); err != nil {
		t.Fatal(err)
	}
	if alpha.Policy().Generation() != 3 || beta.Policy().Generation() != 2 {
		t.Errorf("generations after ReloadAll: alpha %d beta %d",
			alpha.Policy().Generation(), beta.Policy().Generation())
	}
	snap := em.Metrics().Snapshot()
	if g := snap.Gauges[obs.Labeled(GaugeGeneration, "tenant", "alpha")]; g != 3 {
		t.Errorf("alpha labeled gauge %v", g)
	}
}

// A tenant over quota answers 429 with a refill-derived Retry-After while
// other tenants keep serving.
func TestTenantQuota(t *testing.T) {
	dir := t.TempDir()
	ckptA := filepath.Join(dir, "a.json")
	ckptB := filepath.Join(dir, "b.json")
	writeCheckpoint(t, ckptA, makeAgent(t, 8, 1))
	writeCheckpoint(t, ckptB, makeAgent(t, 8, 2))
	em := obs.NewEmitter(nil)
	s, err := New(Config{
		Policies: map[string]string{"alpha": ckptA, "beta": ckptB},
		Quotas:   map[string]float64{"alpha": 0.001}, // burst 1, ~no refill
		Obs:      em,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if w := postPredict(h, "/v1/t/alpha/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusOK {
		t.Fatalf("first alpha request status %d", w.Code)
	}
	w := postPredict(h, "/v1/t/alpha/predict", []float64{0, 0, 0, 0})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d", w.Code)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > maxRetryAfterSeconds {
		t.Errorf("quota Retry-After %q", w.Header().Get("Retry-After"))
	}
	// The unquota'd tenant is unaffected.
	for i := 0; i < 5; i++ {
		if w := postPredict(h, "/v1/t/beta/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusOK {
			t.Fatalf("beta request %d status %d", i, w.Code)
		}
	}
	snap := em.Metrics().Snapshot()
	if n := snap.Counter(MetricQuotaDenied); n != 1 {
		t.Errorf("serve_quota_denied = %d", n)
	}
	if n := snap.Counter(obs.Labeled(MetricQuotaDenied, "tenant", "alpha")); n != 1 {
		t.Errorf("labeled quota denials = %d", n)
	}
}

// The overload Retry-After hint scales with queue depth and the measured
// evaluation time, clamped to [1, 30].
func TestRetryAfterDerivation(t *testing.T) {
	s, _ := newTestService(t, Config{Pool: 1, Queue: -1, Obs: obs.NewEmitter(nil)})
	if ra := s.retryAfterSeconds(); ra != 1 {
		t.Errorf("cold Retry-After = %d, want 1", ra)
	}
	s.noteEvalMS(2500) // 2.5s per request, depth 0, pool 1 → ceil(2.5) = 3
	if ra := s.retryAfterSeconds(); ra != 3 {
		t.Errorf("Retry-After = %d, want 3", ra)
	}
	s.noteEvalMS(1e9) // absurd: clamps at the max
	if ra := s.retryAfterSeconds(); ra != maxRetryAfterSeconds {
		t.Errorf("Retry-After = %d, want %d", ra, maxRetryAfterSeconds)
	}

	// End to end: a shed response carries the derived header.
	em := obs.NewEmitter(nil)
	s2, _ := newTestService(t, Config{Pool: 1, Queue: -1, Timeout: 50 * time.Millisecond, Obs: em})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s2.testHookEval = func() {
		entered <- struct{}{}
		<-release
	}
	h := s2.Handler()
	go postPredict(h, "/v1/predict", []float64{0, 0, 0, 0})
	<-entered
	w := postPredict(h, "/v1/predict", []float64{0, 0, 0, 0})
	close(release)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d", w.Code)
	}
	if ra, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || ra < 1 || ra > maxRetryAfterSeconds {
		t.Errorf("shed Retry-After %q", w.Header().Get("Retry-After"))
	}
}

// Access events carry the tenant label and the batch size the request was
// evaluated in.
func TestAccessEventTenantAndBatchFields(t *testing.T) {
	sink := &memSink{}
	em := obs.NewEmitter(sink)
	s, _ := newTestService(t, Config{BatchWindow: time.Millisecond, BatchMax: 8, Obs: em, AccessLog: true})
	defer s.Close()
	if w := postPredict(s.Handler(), "/v1/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	evs := sink.byType(EventAccess)
	if len(evs) != 1 {
		t.Fatalf("access events = %d", len(evs))
	}
	if evs[0].Labels["tenant"] != DefaultTenant {
		t.Errorf("tenant label %q", evs[0].Labels["tenant"])
	}
	if evs[0].Data["batch"] < 1 {
		t.Errorf("batch field %v", evs[0].Data["batch"])
	}
}
