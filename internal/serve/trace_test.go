package serve

import (
	"strings"
	"sync"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, ok := parseTraceparent(valid)
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if tc.traceIDHex() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace ID = %s", tc.traceIDHex())
	}
	if !tc.sampled {
		t.Error("sampled flag lost")
	}
	if tc.spanGroup() != "req:a3ce929d0e0e4736" {
		t.Errorf("span group = %s", tc.spanGroup())
	}

	// Unsampled flag parses with sampled=false.
	tc, ok = parseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if !ok || tc.sampled {
		t.Errorf("unsampled parse: ok=%v sampled=%v", ok, tc.sampled)
	}

	// A future version with appended fields is accepted.
	if _, ok := parseTraceparent(valid[:55] + "-extrastate"); !ok {
		t.Error("future-version suffix after a dash must parse")
	}

	invalid := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // version ff forbidden
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace-id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero parent-id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",   // non-hex
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01xx", // junk after flags
	}
	for _, h := range invalid {
		if _, ok := parseTraceparent(h); ok {
			t.Errorf("accepted invalid traceparent %q", h)
		}
	}
}

func TestNewTraceContext(t *testing.T) {
	tc := newTraceContext()
	if !tc.valid() || !tc.sampled {
		t.Fatalf("generated context invalid: %+v", tc)
	}
	id := tc.traceIDHex()
	if len(id) != 32 || id == strings.Repeat("0", 32) {
		t.Errorf("trace ID %q", id)
	}
	if !strings.HasPrefix(tc.spanGroup(), "req:") || len(tc.spanGroup()) != 4+16 {
		t.Errorf("span group %q", tc.spanGroup())
	}
}

// Concurrent trace-ID generation must never collide or race: 64
// goroutines generate 512 IDs each; all 32768 must be distinct. Run
// under -race this is also the generator's data-race proof.
func TestConcurrentTraceIDsUnique(t *testing.T) {
	const workers = 64
	const perWorker = 512
	ids := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]string, perWorker)
			for i := range out {
				out[i] = newTraceContext().traceIDHex()
			}
			ids[w] = out
		}(w)
	}
	wg.Wait()
	seen := make(map[string]struct{}, workers*perWorker)
	for _, batch := range ids {
		for _, id := range batch {
			if _, dup := seen[id]; dup {
				t.Fatalf("duplicate trace ID %s", id)
			}
			seen[id] = struct{}{}
		}
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("generated %d unique IDs, want %d", len(seen), workers*perWorker)
	}
}

func TestTraceIDGenerationDoesNotAllocate(t *testing.T) {
	if allocs := testing.AllocsPerRun(1000, func() {
		newTraceContext()
	}); allocs != 0 {
		t.Errorf("newTraceContext allocates %v/op", allocs)
	}
}
