package serve

import (
	"sync"
	"time"

	"oselmrl/internal/qnet"
)

// Policy is one immutable loaded checkpoint: the reconstructed agent plus
// provenance, with a pool of per-goroutine evaluators over its frozen θ1.
// The service swaps the current *Policy atomically on hot-reload; requests
// that already hold the old pointer finish against the old weights, so a
// reload never fails or corrupts an in-flight prediction.
type Policy struct {
	agent      *qnet.Agent
	generation int
	source     string
	loadedAt   time.Time
	evals      sync.Pool
}

func newPolicy(agent *qnet.Agent, source string, generation int) *Policy {
	p := &Policy{
		agent:      agent,
		generation: generation,
		source:     source,
		loadedAt:   time.Now(),
	}
	p.evals.New = func() any { return agent.NewEvaluator() }
	return p
}

// Generation is the reload counter (1 for the initially loaded policy).
func (p *Policy) Generation() int { return p.generation }

// acquire borrows an evaluator; return it with release. Evaluators are
// bound to this policy's model and must never outlive the borrow.
func (p *Policy) acquire() *qnet.Evaluator   { return p.evals.Get().(*qnet.Evaluator) }
func (p *Policy) release(ev *qnet.Evaluator) { p.evals.Put(ev) }

// Info describes the loaded checkpoint — the /v1/info payload.
type Info struct {
	// Source is the checkpoint path, Generation the reload count and
	// LoadedAt the load wall time.
	Source     string    `json:"source"`
	Generation int       `json:"generation"`
	LoadedAt   time.Time `json:"loaded_at"`
	// Design, ObservationSize, ActionCount and Hidden describe the policy
	// network; Updates is θ1's sequential-update count at save time.
	Design          string `json:"design"`
	ObservationSize int    `json:"observation_size"`
	ActionCount     int    `json:"action_count"`
	Hidden          int    `json:"hidden"`
	Updates         int    `json:"updates"`
}

// Info returns the checkpoint description.
func (p *Policy) Info() Info {
	cfg := p.agent.Config()
	return Info{
		Source:          p.source,
		Generation:      p.generation,
		LoadedAt:        p.loadedAt,
		Design:          p.agent.Name(),
		ObservationSize: cfg.ObservationSize,
		ActionCount:     cfg.ActionCount,
		Hidden:          cfg.Hidden,
		Updates:         p.agent.Theta1().Updates(),
	}
}
