package serve

import (
	"sync"
	"time"
)

// batchOut is one request's answer from a batch flush. q is a copy owned
// by the request (the evaluator's row is reused on the next flush).
type batchOut struct {
	action     int
	q          []float64
	generation int
	size       int // batch size this request was evaluated in
	err        error
}

// batchItem is one in-flight request parked in the collector. out is
// buffered so the collector never blocks on a reply, even if the waiting
// handler has been abandoned.
type batchItem struct {
	state    []float64
	includeQ bool
	out      chan batchOut
}

// batcher micro-batches one tenant's predict/act evaluations: requests
// accumulate for at most `window` (started at the first item) or until
// `max` items are parked, then the whole batch runs as a single GEMM
// through qnet.Evaluator.QValuesBatch. Row i of that GEMM is bit-identical
// to the per-request QValues path, so batching changes latency and
// throughput but never an answer. A single-element flush falls through to
// the per-request path. One collector goroutine per tenant serializes that
// tenant's evaluations — the batch itself is the parallelism.
type batcher struct {
	svc    *Service
	t      *Tenant
	window time.Duration
	max    int
	items  chan *batchItem
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once
}

func newBatcher(svc *Service, t *Tenant, window time.Duration, max int) *batcher {
	return &batcher{
		svc:    svc,
		t:      t,
		window: window,
		max:    max,
		// The channel holds a full batch beyond the one being collected so
		// submitters rarely block on the collector.
		items: make(chan *batchItem, 2*max),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// submit parks the request with the collector and reports true; after
// close it reports false and the caller evaluates inline — the no-drop
// guarantee across drain.
func (b *batcher) submit(it *batchItem) bool {
	select {
	case <-b.stop:
		return false
	default:
	}
	select {
	case b.items <- it:
		return true
	case <-b.stop:
		return false
	}
}

// await blocks for the item's reply. It returns ok=false when the
// collector exited without answering — a submit that raced the stop
// signal can strand its item in the buffer after the drain pass; the
// caller then evaluates inline. Once done is closed no flush can run, so
// a final non-blocking read of out is race-free.
func (b *batcher) await(it *batchItem) (batchOut, bool) {
	select {
	case bo := <-it.out:
		return bo, true
	case <-b.done:
		select {
		case bo := <-it.out:
			return bo, true
		default:
			return batchOut{}, false
		}
	}
}

// close stops the collector, flushes everything already parked, and waits
// for it to exit. Idempotent.
func (b *batcher) close() {
	b.once.Do(func() { close(b.stop) })
	<-b.done
}

func (b *batcher) run() {
	defer close(b.done)
	pending := make([]*batchItem, 0, b.max)
	var timer *time.Timer
	var timerC <-chan time.Time
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
		if len(pending) > 0 {
			b.flush(pending)
			pending = pending[:0]
		}
	}
	for {
		select {
		case it := <-b.items:
			pending = append(pending, it)
			if len(pending) >= b.max {
				flush()
			} else if timer == nil {
				timer = time.NewTimer(b.window)
				timerC = timer.C
			}
		case <-timerC:
			timer, timerC = nil, nil
			flush()
		case <-b.stop:
			// Drain: answer everything already parked, then exit. Later
			// submits see the closed stop channel and evaluate inline.
			for {
				select {
				case it := <-b.items:
					pending = append(pending, it)
				default:
					flush()
					return
				}
			}
		}
	}
}

// flush evaluates one collected batch against a single policy snapshot.
// Items whose state no longer matches the snapshot's input width (e.g. a
// hot-reload changed the observation size mid-batch) are answered
// individually with the same error text the per-request path produces;
// they never poison the batch for the valid items.
func (b *batcher) flush(pending []*batchItem) {
	size := len(pending)
	p := b.t.policy.Load()
	ev := p.acquire()
	defer p.release(ev)
	start := time.Now()

	b.svc.obs.Observe(HistBatchSize, float64(size))
	b.svc.obs.Observe(b.t.hBatch, float64(size))

	valid := pending[:0:0]
	for _, it := range pending {
		if len(it.state) != ev.ObservationSize() {
			// QValues rejects before evaluating; its error text is the
			// per-request contract.
			_, err := ev.QValues(it.state)
			it.out <- batchOut{err: err, generation: p.generation, size: size}
			continue
		}
		valid = append(valid, it)
	}
	switch len(valid) {
	case 0:
	case 1:
		// Single-element fallthrough: the per-request path, no GEMM.
		it := valid[0]
		qs, err := ev.QValues(it.state)
		it.out <- answer(qs, err, it.includeQ, p.generation, size)
	default:
		states := make([][]float64, len(valid))
		for i, it := range valid {
			states[i] = it.state
		}
		qm, err := ev.QValuesBatch(states)
		if err != nil {
			for _, it := range valid {
				it.out <- batchOut{err: err, generation: p.generation, size: size}
			}
			break
		}
		qd := qm.RawData()
		na := ev.ActionCount()
		for i, it := range valid {
			it.out <- answer(qd[i*na:(i+1)*na], nil, it.includeQ, p.generation, size)
		}
	}
	if n := len(valid); n > 0 {
		b.svc.noteEvalMS(msSince(start) / float64(n))
	}
}

// answer builds a batchOut from a Q row, with the same lowest-index
// argmax tie-break as the per-request handler, copying the row only when
// the caller asked for Q values.
func answer(qs []float64, err error, includeQ bool, generation, size int) batchOut {
	if err != nil {
		return batchOut{err: err, generation: generation, size: size}
	}
	out := batchOut{generation: generation, size: size}
	for a := 1; a < len(qs); a++ {
		if qs[a] > qs[out.action] {
			out.action = a
		}
	}
	if includeQ {
		out.q = append([]float64(nil), qs...)
	}
	return out
}
