package serve

import (
	"hash/fnv"
	"io"
	"os"
	"sync"
	"time"
)

// fingerprint identifies checkpoint content cheaply: size, mtime, and an
// FNV-1a hash of the first 64 KiB. Size+mtime alone (what the watcher
// compared before PR 8) miss a writer that rewrites the file at the same
// length within the filesystem's mtime granularity; the head hash catches
// those, because a retrained checkpoint changes bytes early in the JSON
// document (β values serialize near the front).
type fingerprint struct {
	size  int64
	mtime time.Time
	hash  uint64
}

// fingerprintHead bounds how much of the file the hash reads.
const fingerprintHead = 64 << 10

func fingerprintFile(path string) (fingerprint, error) {
	f, err := os.Open(path)
	if err != nil {
		return fingerprint{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fingerprint{}, err
	}
	h := fnv.New64a()
	if _, err := io.Copy(h, io.LimitReader(f, fingerprintHead)); err != nil {
		return fingerprint{}, err
	}
	return fingerprint{size: st.Size(), mtime: st.ModTime(), hash: h.Sum64()}, nil
}

func (fp fingerprint) equal(other fingerprint) bool {
	return fp.size == other.size && fp.hash == other.hash && fp.mtime.Equal(other.mtime)
}

// WatchCheckpoint polls the default tenant's checkpoint every interval
// and hot-reloads when its content fingerprint changes — the -watch flag
// of cmd/serve, for deployments where sending SIGHUP is inconvenient
// (training jobs overwriting the snapshot on a schedule). The returned
// stop function terminates the watcher; calling it more than once is
// safe. onErr (may be nil) receives reload and stat errors; serving
// continues on the old policy either way. The reload baseline advances
// only on a successful reload, so a failed reload (e.g. a partially
// written snapshot) retries on every subsequent tick until it succeeds.
func (s *Service) WatchCheckpoint(interval time.Duration, onErr func(error)) (stop func()) {
	if s.def == nil {
		return func() {}
	}
	return s.watch(interval, onErr, []*Tenant{s.def})
}

// WatchAll watches every tenant's checkpoint with one poller, reloading
// each tenant independently as its file changes. Same semantics as
// WatchCheckpoint otherwise.
func (s *Service) WatchAll(interval time.Duration, onErr func(error)) (stop func()) {
	tenants := make([]*Tenant, 0, len(s.names))
	for _, name := range s.names {
		tenants = append(tenants, s.tenants[name])
	}
	return s.watch(interval, onErr, tenants)
}

func (s *Service) watch(interval time.Duration, onErr func(error), tenants []*Tenant) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	last := make(map[*Tenant]fingerprint, len(tenants))
	for _, t := range tenants {
		if fp, err := fingerprintFile(t.source); err == nil {
			last[t] = fp
		}
		// On error the zero fingerprint stays: the first successful stat
		// will differ and trigger a (re)load.
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			for _, t := range tenants {
				fp, err := fingerprintFile(t.source)
				if err != nil {
					if onErr != nil {
						onErr(err)
					}
					continue
				}
				if fp.equal(last[t]) {
					continue
				}
				if err := s.reloadTenant(t); err != nil {
					if onErr != nil {
						onErr(err)
					}
					// Baseline unchanged: retry next tick.
					continue
				}
				last[t] = fp
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
