package serve

import (
	"os"
	"sync"
	"time"
)

// WatchCheckpoint polls the checkpoint file's mtime and size every
// interval and hot-reloads when either changes — the -watch flag of
// cmd/serve, for deployments where sending SIGHUP is inconvenient
// (training jobs overwriting the snapshot on a schedule). The returned
// stop function terminates the watcher; calling it more than once is
// safe. onErr (may be nil) receives reload and stat errors; serving
// continues on the old policy either way.
func (s *Service) WatchCheckpoint(interval time.Duration, onErr func(error)) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	lastMod, lastSize := statCheckpoint(s.cfg.Checkpoint)
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			st, err := os.Stat(s.cfg.Checkpoint)
			if err != nil {
				if onErr != nil {
					onErr(err)
				}
				continue
			}
			if st.ModTime().Equal(lastMod) && st.Size() == lastSize {
				continue
			}
			// Record the observed state before reloading: a failed reload
			// (e.g. a partially written snapshot) retries only after the
			// writer touches the file again, not every tick.
			lastMod, lastSize = st.ModTime(), st.Size()
			if err := s.Reload(); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

func statCheckpoint(path string) (time.Time, int64) {
	st, err := os.Stat(path)
	if err != nil {
		return time.Time{}, -1
	}
	return st.ModTime(), st.Size()
}
