// Package serve is the deployment layer the paper's cheap-inference story
// points at: a concurrent policy-inference service over a checkpointed
// OS-ELM Q-network (internal/persist), answering predict/act requests as
// HTTP JSON with bounded worker-pool backpressure, request timeouts, and
// atomic checkpoint hot-reload — the current *Policy swaps through an
// atomic pointer, so reloads drop zero requests. Observability rides the
// internal/obs stack: request counters and a latency histogram in the
// metrics registry (scraped via the shared telemetry mux, see
// export.WithRoute), optional per-request tracer spans, and a structured
// event per reload.
//
// Endpoints (all JSON):
//
//	POST /v1/predict  {"state":[...]} → {"action":n,"q":[...],"generation":g}
//	POST /v1/act      {"state":[...]} → {"action":n,"generation":g}
//	GET  /v1/info     checkpoint provenance, network dims, pool config
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"oselmrl/internal/obs"
	"oselmrl/internal/persist"
)

// Metric and event names the service records (results/README.md documents
// the exported forms under the oselmrl_ prefix).
const (
	// MetricRequests counts every /v1/predict and /v1/act request.
	MetricRequests = "serve_requests"
	// MetricOK counts requests answered 200.
	MetricOK = "serve_ok"
	// MetricErrors counts requests rejected for client or decode errors.
	MetricErrors = "serve_errors"
	// MetricShed counts requests shed with 429 by backpressure (queue
	// full, or the request timeout expired while waiting for a worker).
	MetricShed = "serve_shed"
	// MetricReloads and MetricReloadErrors count checkpoint hot-reloads.
	MetricReloads      = "serve_reloads"
	MetricReloadErrors = "serve_reload_errors"
	// HistLatencyMS is the request latency histogram (milliseconds,
	// admission wait included).
	HistLatencyMS = "serve_latency_ms"
	// GaugeGeneration is the current policy generation.
	GaugeGeneration = "serve_generation"
	// EventReload is emitted once per successful hot-reload.
	EventReload = "serve_reload"
)

// LatencyBuckets are the HistLatencyMS upper bounds in milliseconds,
// sized for an in-process predict path that answers in microseconds.
var LatencyBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250}

// maxBodyBytes bounds a request body; states are tiny.
const maxBodyBytes = 1 << 20

// Config configures a Service.
type Config struct {
	// Checkpoint is the agent snapshot path, loaded at New and re-read by
	// every Reload.
	Checkpoint string
	// Pool caps concurrently evaluating requests (default GOMAXPROCS).
	Pool int
	// Queue caps requests waiting for a worker beyond the pool; arrivals
	// past pool+queue are shed immediately with 429 (default 4×Pool).
	Queue int
	// Timeout bounds one request including its wait for a worker
	// (default 1s). A request still queued at the deadline is shed.
	Timeout time.Duration
	// Obs receives metrics, events and tracer spans; nil disables
	// observability (every obs call is nil-safe).
	Obs *obs.Emitter
}

func (c *Config) fill() {
	if c.Pool <= 0 {
		c.Pool = runtime.GOMAXPROCS(0)
	}
	if c.Queue < 0 {
		c.Queue = 0
	} else if c.Queue == 0 {
		c.Queue = 4 * c.Pool
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
}

// Service serves a checkpointed policy concurrently with hot-reload.
type Service struct {
	cfg    Config
	obs    *obs.Emitter
	policy atomic.Pointer[Policy]
	sem    chan struct{} // worker slots
	queue  chan struct{} // bounded wait slots beyond the pool

	// reloading serializes Reload calls so generations stay monotonic.
	reloading chan struct{}

	// testHookEval, when set, runs inside the worker slot before each
	// evaluation — tests use it to hold workers busy deterministically.
	testHookEval func()
}

// New loads the initial checkpoint and returns a ready service.
func New(cfg Config) (*Service, error) {
	cfg.fill()
	agent, err := persist.LoadAgentFile(cfg.Checkpoint)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Service{
		cfg:       cfg,
		obs:       cfg.Obs,
		sem:       make(chan struct{}, cfg.Pool),
		queue:     make(chan struct{}, cfg.Queue),
		reloading: make(chan struct{}, 1),
	}
	if reg := s.obs.Metrics(); reg != nil {
		reg.NewHistogram(HistLatencyMS, LatencyBuckets)
	}
	s.policy.Store(newPolicy(agent, cfg.Checkpoint, 1))
	s.obs.SetGauge(GaugeGeneration, 1)
	return s, nil
}

// Policy returns the currently served policy.
func (s *Service) Policy() *Policy { return s.policy.Load() }

// Reload re-reads the checkpoint and atomically swaps it in. In-flight
// requests keep the policy they started with; new requests see the new
// generation. On error the old policy keeps serving.
func (s *Service) Reload() error {
	s.reloading <- struct{}{}
	defer func() { <-s.reloading }()
	agent, err := persist.LoadAgentFile(s.cfg.Checkpoint)
	if err != nil {
		s.obs.Inc(MetricReloadErrors, 1)
		return fmt.Errorf("serve: reload: %w", err)
	}
	gen := s.policy.Load().Generation() + 1
	s.policy.Store(newPolicy(agent, s.cfg.Checkpoint, gen))
	s.obs.SetGauge(GaugeGeneration, float64(gen))
	s.obs.Inc(MetricReloads, 1)
	s.obs.Emit(EventReload, 0, map[string]float64{"generation": float64(gen)})
	return nil
}

// Handler returns the /v1 mux. Mount it on a dedicated server or on the
// telemetry mux via export.WithRoute("/v1/", s.Handler()).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		s.handleEval(w, r, true)
	})
	mux.HandleFunc("/v1/act", func(w http.ResponseWriter, r *http.Request) {
		s.handleEval(w, r, false)
	})
	mux.HandleFunc("/v1/info", s.handleInfo)
	return mux
}

// evalRequest and evalResponse are the /v1/predict / /v1/act wire types.
type evalRequest struct {
	State []float64 `json:"state"`
}

type evalResponse struct {
	Action     int       `json:"action"`
	Q          []float64 `json:"q,omitempty"`
	Generation int       `json:"generation"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// admit implements the bounded-pool backpressure: a free worker slot
// admits immediately; otherwise the request takes a bounded queue slot
// and waits for a worker until ctx expires; a full queue sheds at once.
// On ok the caller must invoke release exactly once.
func (s *Service) admit(ctx context.Context) (release func(), ok bool) {
	release = func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, true
	default:
	}
	select {
	case s.queue <- struct{}{}:
		defer func() { <-s.queue }()
		select {
		case s.sem <- struct{}{}:
			return release, true
		case <-ctx.Done():
			return nil, false
		}
	default:
		return nil, false
	}
}

func (s *Service) handleEval(w http.ResponseWriter, r *http.Request, includeQ bool) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	start := time.Now()
	s.obs.Inc(MetricRequests, 1)
	sp := s.obs.StartSpan("serve_predict")
	defer func() {
		sp.End()
		s.obs.Observe(HistLatencyMS, float64(time.Since(start))/float64(time.Millisecond))
	}()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	release, ok := s.admit(ctx)
	if !ok {
		s.obs.Inc(MetricShed, 1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{"overloaded, retry later"})
		return
	}
	defer release()

	var req evalRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.obs.Inc(MetricErrors, 1)
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	if s.testHookEval != nil {
		s.testHookEval()
	}

	// The policy pointer read and the evaluation both happen against one
	// consistent snapshot: a concurrent Reload swaps the pointer for
	// future requests without touching this one.
	p := s.policy.Load()
	ev := p.acquire()
	qs, err := ev.QValues(req.State)
	if err != nil {
		p.release(ev)
		s.obs.Inc(MetricErrors, 1)
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	resp := evalResponse{Generation: p.generation}
	for a := 1; a < len(qs); a++ {
		if qs[a] > qs[resp.Action] {
			resp.Action = a
		}
	}
	if includeQ {
		resp.Q = qs // evaluator-owned; marshalled before release below
	}
	writeJSON(w, http.StatusOK, resp)
	p.release(ev)
	s.obs.Inc(MetricOK, 1)
}

func (s *Service) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	info := s.policy.Load().Info()
	writeJSON(w, http.StatusOK, struct {
		Info
		Pool    int     `json:"pool"`
		Queue   int     `json:"queue"`
		Timeout float64 `json:"timeout_seconds"`
	}{info, s.cfg.Pool, s.cfg.Queue, s.cfg.Timeout.Seconds()})
}
