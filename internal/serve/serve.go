// Package serve is the deployment layer the paper's cheap-inference story
// points at: a concurrent policy-inference service over a checkpointed
// OS-ELM Q-network (internal/persist), answering predict/act requests as
// HTTP JSON with bounded worker-pool backpressure, request timeouts, and
// atomic checkpoint hot-reload — the current *Policy swaps through an
// atomic pointer, so reloads drop zero requests. Observability rides the
// internal/obs stack: request counters and a latency histogram in the
// metrics registry (scraped via the shared telemetry mux, see
// export.WithRoute), optional per-request tracer spans, and a structured
// event per reload.
//
// Endpoints (all JSON):
//
//	POST /v1/predict  {"state":[...]} → {"action":n,"q":[...],"generation":g}
//	POST /v1/act      {"state":[...]} → {"action":n,"generation":g}
//	GET  /v1/info     checkpoint provenance, network dims, pool config
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"oselmrl/internal/obs"
	"oselmrl/internal/obs/slo"
	"oselmrl/internal/persist"
)

// Metric and event names the service records (results/README.md documents
// the exported forms under the oselmrl_ prefix).
const (
	// MetricRequests counts every /v1/predict and /v1/act request.
	MetricRequests = "serve_requests"
	// MetricOK counts requests answered 200.
	MetricOK = "serve_ok"
	// MetricErrors counts requests rejected for client or decode errors.
	MetricErrors = "serve_errors"
	// MetricShed counts requests shed with 429 because the worker pool
	// and its bounded queue were full on arrival.
	MetricShed = "serve_shed"
	// MetricTimeout counts requests admitted to the queue but shed with
	// 429 because their request budget expired before a worker freed up
	// — the distinct outcome that separates "overloaded now" (shed) from
	// "overloaded for longer than callers will wait" (timeout).
	MetricTimeout = "serve_timeouts"
	// MetricReloads and MetricReloadErrors count checkpoint hot-reloads.
	MetricReloads      = "serve_reloads"
	MetricReloadErrors = "serve_reload_errors"
	// HistLatencyMS is the total request latency histogram (milliseconds,
	// admission wait and response encode included).
	HistLatencyMS = "serve_latency_ms"
	// HistQueueMS is the admission-wait component: time from request
	// arrival to a worker slot (observed for every counted request,
	// including shed and timed-out ones — their whole life is queue
	// wait).
	HistQueueMS = "serve_queue_ms"
	// HistEvalMS is the evaluator component: acquiring an evaluator and
	// running the forward pass (observed only for requests that reached
	// evaluation).
	HistEvalMS = "serve_eval_ms"
	// GaugeGeneration is the current policy generation.
	GaugeGeneration = "serve_generation"
	// EventReload is emitted once per successful hot-reload.
	EventReload = "serve_reload"
	// EventAccess is the structured access log: one event per request
	// when Config.AccessLog is on. Labels: trace (32-hex W3C trace ID),
	// route. Data: status, queue_ms, eval_ms, total_ms, generation,
	// shed (0/1), timeout (0/1).
	EventAccess = "serve_access"
)

// Span names of the per-request trace tree (group "req:<trace-id-low>"):
// SpanRequest covers the whole request, with the queue-wait, evaluator
// and response-encode phases as child spans on the same track.
const (
	SpanRequest = "serve_predict"
	SpanQueue   = "serve_queue"
	SpanEval    = "serve_eval"
	SpanEncode  = "serve_encode"
)

// LatencyBuckets are the HistLatencyMS upper bounds in milliseconds,
// sized for an in-process predict path that answers in microseconds.
var LatencyBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250}

// maxBodyBytes bounds a request body; states are tiny.
const maxBodyBytes = 1 << 20

// Config configures a Service.
type Config struct {
	// Checkpoint is the agent snapshot path, loaded at New and re-read by
	// every Reload.
	Checkpoint string
	// Pool caps concurrently evaluating requests (default GOMAXPROCS).
	Pool int
	// Queue caps requests waiting for a worker beyond the pool; arrivals
	// past pool+queue are shed immediately with 429 (default 4×Pool).
	Queue int
	// Timeout bounds one request including its wait for a worker
	// (default 1s). A request still queued at the deadline is shed.
	Timeout time.Duration
	// Obs receives metrics, events and tracer spans; nil disables
	// observability (every obs call is nil-safe).
	Obs *obs.Emitter
	// AccessLog emits one EventAccess per request through Obs's event
	// sink. Off (the default) the access path allocates nothing.
	AccessLog bool
	// SLO, when non-nil, receives every request's outcome and latency
	// split for burn-rate evaluation (internal/obs/slo); expose its
	// report via export.WithSLO. A nil engine costs one pointer
	// comparison per request.
	SLO *slo.Engine
}

func (c *Config) fill() {
	if c.Pool <= 0 {
		c.Pool = runtime.GOMAXPROCS(0)
	}
	if c.Queue < 0 {
		c.Queue = 0
	} else if c.Queue == 0 {
		c.Queue = 4 * c.Pool
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
}

// Service serves a checkpointed policy concurrently with hot-reload.
type Service struct {
	cfg    Config
	obs    *obs.Emitter
	slo    *slo.Engine
	policy atomic.Pointer[Policy]
	sem    chan struct{} // worker slots
	queue  chan struct{} // bounded wait slots beyond the pool

	// reloading serializes Reload calls so generations stay monotonic.
	reloading chan struct{}

	// testHookEval, when set, runs inside the worker slot before each
	// evaluation — tests use it to hold workers busy deterministically.
	testHookEval func()
}

// New loads the initial checkpoint and returns a ready service.
func New(cfg Config) (*Service, error) {
	cfg.fill()
	agent, err := persist.LoadAgentFile(cfg.Checkpoint)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Service{
		cfg:       cfg,
		obs:       cfg.Obs,
		slo:       cfg.SLO,
		sem:       make(chan struct{}, cfg.Pool),
		queue:     make(chan struct{}, cfg.Queue),
		reloading: make(chan struct{}, 1),
	}
	if reg := s.obs.Metrics(); reg != nil {
		reg.NewHistogram(HistLatencyMS, LatencyBuckets)
		reg.NewHistogram(HistQueueMS, LatencyBuckets)
		reg.NewHistogram(HistEvalMS, LatencyBuckets)
	}
	s.policy.Store(newPolicy(agent, cfg.Checkpoint, 1))
	s.obs.SetGauge(GaugeGeneration, 1)
	return s, nil
}

// Policy returns the currently served policy.
func (s *Service) Policy() *Policy { return s.policy.Load() }

// Reload re-reads the checkpoint and atomically swaps it in. In-flight
// requests keep the policy they started with; new requests see the new
// generation. On error the old policy keeps serving.
func (s *Service) Reload() error {
	s.reloading <- struct{}{}
	defer func() { <-s.reloading }()
	agent, err := persist.LoadAgentFile(s.cfg.Checkpoint)
	if err != nil {
		s.obs.Inc(MetricReloadErrors, 1)
		return fmt.Errorf("serve: reload: %w", err)
	}
	gen := s.policy.Load().Generation() + 1
	s.policy.Store(newPolicy(agent, s.cfg.Checkpoint, gen))
	s.obs.SetGauge(GaugeGeneration, float64(gen))
	s.obs.Inc(MetricReloads, 1)
	s.obs.Emit(EventReload, 0, map[string]float64{"generation": float64(gen)})
	return nil
}

// Handler returns the /v1 mux. Mount it on a dedicated server or on the
// telemetry mux via export.WithRoute("/v1/", s.Handler()).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		s.handleEval(w, r, true)
	})
	mux.HandleFunc("/v1/act", func(w http.ResponseWriter, r *http.Request) {
		s.handleEval(w, r, false)
	})
	mux.HandleFunc("/v1/info", s.handleInfo)
	return mux
}

// evalRequest and evalResponse are the /v1/predict / /v1/act wire types.
type evalRequest struct {
	State []float64 `json:"state"`
}

type evalResponse struct {
	Action     int       `json:"action"`
	Q          []float64 `json:"q,omitempty"`
	Generation int       `json:"generation"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// admit implements the bounded-pool backpressure: a free worker slot
// admits immediately; otherwise the request takes a bounded queue slot
// and waits for a worker until ctx expires; a full queue sheds at once.
// On ok the caller must invoke release exactly once; timedOut
// distinguishes a queue-wait expiry from an immediate full-queue shed.
func (s *Service) admit(ctx context.Context) (release func(), ok, timedOut bool) {
	release = func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, true, false
	default:
	}
	select {
	case s.queue <- struct{}{}:
		defer func() { <-s.queue }()
		select {
		case s.sem <- struct{}{}:
			return release, true, false
		case <-ctx.Done():
			return nil, false, true
		}
	default:
		return nil, false, false
	}
}

// request is the per-request observability state threaded from admission
// to the final access-log record. Held by value on the handler stack so
// the fully disabled path allocates nothing.
type request struct {
	route      string
	tc         traceContext
	traced     bool
	start      time.Time
	queueMS    float64
	evalMS     float64
	evaluated  bool
	status     int
	outcome    slo.Outcome
	generation int
	root       obs.Span
}

// msSince is the elapsed milliseconds since t.
func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

// beginRequest establishes the trace context: an incoming W3C
// traceparent header continues the caller's trace; otherwise a fresh
// trace ID is generated whenever request observability (span tracing or
// access logging) will use one. With everything off and no incoming
// header, the request stays untraced at the cost of one header lookup.
func (s *Service) beginRequest(r *http.Request, rq *request) {
	if h := r.Header.Get("traceparent"); h != "" {
		if tc, ok := parseTraceparent(h); ok {
			rq.tc, rq.traced = tc, true
		}
	}
	if !rq.traced && (s.obs.Tracer() != nil || s.cfg.AccessLog) {
		rq.tc, rq.traced = newTraceContext(), true
	}
	if rq.traced {
		if tr := s.obs.Tracer(); tr != nil {
			rq.root = tr.StartSpanGroup(SpanRequest, rq.tc.spanGroup())
		}
	}
}

// span opens a child span of the request's trace tree (inactive when
// the request is untraced or no tracer is attached).
func (s *Service) span(rq *request, name string) obs.Span {
	if !rq.root.Active() {
		return obs.Span{}
	}
	return s.obs.Tracer().StartSpanGroup(name, rq.tc.spanGroup())
}

// finishRequest records the request's outcome everywhere it is
// observable: the latency histograms (total always, queue always, eval
// when an evaluator ran), the SLO engine, the request root span, and —
// with access logging on — one serve_access event. Every disabled
// consumer is skipped without allocating.
func (s *Service) finishRequest(rq *request) {
	totalMS := msSince(rq.start)
	s.obs.Observe(HistLatencyMS, totalMS)
	s.obs.Observe(HistQueueMS, rq.queueMS)
	if rq.evaluated {
		s.obs.Observe(HistEvalMS, rq.evalMS)
	}
	s.slo.Record(rq.outcome, rq.queueMS, rq.evalMS, totalMS)
	rq.root.End()
	if s.cfg.AccessLog {
		s.obs.EmitLabeled(EventAccess,
			map[string]string{"trace": rq.tc.traceIDHex(), "route": rq.route},
			map[string]float64{
				"status":     float64(rq.status),
				"queue_ms":   rq.queueMS,
				"eval_ms":    rq.evalMS,
				"total_ms":   totalMS,
				"generation": float64(rq.generation),
				"shed":       boolToFloat(rq.outcome == slo.Shed),
				"timeout":    boolToFloat(rq.outcome == slo.Timeout),
			})
	}
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// setTimingHeaders annotates the response with the request's identity
// and latency split: X-Trace-Id (when traced) and a standard
// Server-Timing header carrying the queue and eval components, which is
// how cmd/loadgen -slo splits client-observed latency without a
// server-side log.
func setTimingHeaders(w http.ResponseWriter, rq *request) {
	h := w.Header()
	if rq.traced {
		h.Set("X-Trace-Id", rq.tc.traceIDHex())
	}
	if rq.evaluated {
		h.Set("Server-Timing", fmt.Sprintf("queue;dur=%.4f, eval;dur=%.4f", rq.queueMS, rq.evalMS))
	} else {
		h.Set("Server-Timing", fmt.Sprintf("queue;dur=%.4f", rq.queueMS))
	}
}

func (s *Service) handleEval(w http.ResponseWriter, r *http.Request, includeQ bool) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	rq := request{route: r.URL.Path, start: time.Now()}
	s.obs.Inc(MetricRequests, 1)
	s.beginRequest(r, &rq)
	rq.generation = s.policy.Load().Generation()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	qSpan := s.span(&rq, SpanQueue)
	release, ok, timedOut := s.admit(ctx)
	qSpan.End()
	rq.queueMS = msSince(rq.start)
	if !ok {
		rq.status, rq.outcome = http.StatusTooManyRequests, slo.Shed
		if timedOut {
			rq.outcome = slo.Timeout
			s.obs.Inc(MetricTimeout, 1)
		} else {
			s.obs.Inc(MetricShed, 1)
		}
		setTimingHeaders(w, &rq)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{"overloaded, retry later"})
		s.finishRequest(&rq)
		return
	}
	defer release()

	var req evalRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.obs.Inc(MetricErrors, 1)
		rq.status, rq.outcome = http.StatusBadRequest, slo.ClientError
		setTimingHeaders(w, &rq)
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		s.finishRequest(&rq)
		return
	}
	if s.testHookEval != nil {
		s.testHookEval()
	}

	// The policy pointer read and the evaluation both happen against one
	// consistent snapshot: a concurrent Reload swaps the pointer for
	// future requests without touching this one.
	evalStart := time.Now()
	eSpan := s.span(&rq, SpanEval)
	p := s.policy.Load()
	rq.generation = p.generation
	ev := p.acquire()
	qs, err := ev.QValues(req.State)
	eSpan.End()
	rq.evalMS, rq.evaluated = msSince(evalStart), true
	if err != nil {
		p.release(ev)
		s.obs.Inc(MetricErrors, 1)
		rq.status, rq.outcome = http.StatusBadRequest, slo.ClientError
		setTimingHeaders(w, &rq)
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		s.finishRequest(&rq)
		return
	}
	resp := evalResponse{Generation: p.generation}
	for a := 1; a < len(qs); a++ {
		if qs[a] > qs[resp.Action] {
			resp.Action = a
		}
	}
	if includeQ {
		resp.Q = qs // evaluator-owned; marshalled before release below
	}
	encSpan := s.span(&rq, SpanEncode)
	setTimingHeaders(w, &rq)
	writeJSON(w, http.StatusOK, resp)
	encSpan.End()
	p.release(ev)
	s.obs.Inc(MetricOK, 1)
	rq.status, rq.outcome = http.StatusOK, slo.OK
	s.finishRequest(&rq)
}

func (s *Service) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	info := s.policy.Load().Info()
	writeJSON(w, http.StatusOK, struct {
		Info
		Pool    int     `json:"pool"`
		Queue   int     `json:"queue"`
		Timeout float64 `json:"timeout_seconds"`
	}{info, s.cfg.Pool, s.cfg.Queue, s.cfg.Timeout.Seconds()})
}
