// Package serve is the deployment layer the paper's cheap-inference story
// points at: a concurrent policy-inference service over checkpointed
// OS-ELM Q-networks (internal/persist), answering predict/act requests as
// HTTP JSON with bounded worker-pool backpressure, request timeouts, and
// atomic checkpoint hot-reload — the current *Policy swaps through an
// atomic pointer, so reloads drop zero requests. Observability rides the
// internal/obs stack: request counters and a latency histogram in the
// metrics registry (scraped via the shared telemetry mux, see
// export.WithRoute), optional per-request tracer spans, and a structured
// event per reload.
//
// The service is multi-tenant: Config.Policies maps tenant names to
// independently hot-reloadable checkpoints, routed at /v1/t/{tenant}/*
// with per-tenant generation gauges, tenant-labeled serve_* metrics and
// optional per-tenant request quotas (429 on breach). The unprefixed
// /v1/* routes serve the "default" tenant (Config.Checkpoint).
//
// With Config.BatchWindow > 0 each tenant micro-batches its in-flight
// evaluations: requests arriving within the window (up to BatchMax)
// evaluate as one GEMM through qnet.Evaluator.QValuesBatch, amortizing
// per-request overhead while staying bit-identical to the per-request
// path — the host-side analogue of the batch inference hardware
// accelerators use to reach "millions of users" throughput.
//
// Endpoints (all JSON):
//
//	POST /v1/predict             {"state":[...]} → {"action":n,"q":[...],"generation":g}
//	POST /v1/act                 {"state":[...]} → {"action":n,"generation":g}
//	GET  /v1/info                checkpoint provenance, network dims, pool config
//	POST /v1/t/{tenant}/predict  per-tenant predict
//	POST /v1/t/{tenant}/act      per-tenant act
//	GET  /v1/t/{tenant}/info     per-tenant info
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"oselmrl/internal/obs"
	"oselmrl/internal/obs/slo"
	"oselmrl/internal/persist"
)

// Metric and event names the service records (results/README.md documents
// the exported forms under the oselmrl_ prefix). Each counter and the
// generation gauge also exist tenant-labeled (obs.Labeled, rendered as
// Prometheus labels); the unlabeled series aggregate across tenants.
const (
	// MetricRequests counts every /v1/predict and /v1/act request.
	MetricRequests = "serve_requests"
	// MetricOK counts requests answered 200.
	MetricOK = "serve_ok"
	// MetricErrors counts requests rejected for client or decode errors.
	MetricErrors = "serve_errors"
	// MetricShed counts requests shed with 429 because the worker pool
	// and its bounded queue were full on arrival.
	MetricShed = "serve_shed"
	// MetricTimeout counts requests admitted to the queue but shed with
	// 429 because their request budget expired before a worker freed up
	// — the distinct outcome that separates "overloaded now" (shed) from
	// "overloaded for longer than callers will wait" (timeout).
	MetricTimeout = "serve_timeouts"
	// MetricQuotaDenied counts requests rejected with 429 because the
	// tenant's request quota (Config.Quotas) was exhausted.
	MetricQuotaDenied = "serve_quota_denied"
	// MetricReloads and MetricReloadErrors count checkpoint hot-reloads.
	MetricReloads      = "serve_reloads"
	MetricReloadErrors = "serve_reload_errors"
	// HistLatencyMS is the total request latency histogram (milliseconds,
	// admission wait and response encode included).
	HistLatencyMS = "serve_latency_ms"
	// HistQueueMS is the admission-wait component: time from request
	// arrival to a worker slot (observed for every counted request,
	// including shed and timed-out ones — their whole life is queue
	// wait).
	HistQueueMS = "serve_queue_ms"
	// HistEvalMS is the evaluator component: acquiring an evaluator and
	// running the forward pass (observed only for requests that reached
	// evaluation).
	HistEvalMS = "serve_eval_ms"
	// HistBatchSize is the micro-batch size distribution, observed once
	// per flush (only with batching on; also tenant-labeled).
	HistBatchSize = "serve_batch_size"
	// GaugeGeneration is the current policy generation (tenant-labeled
	// per tenant; the unlabeled gauge tracks the default tenant).
	GaugeGeneration = "serve_generation"
	// EventReload is emitted once per successful hot-reload, labeled with
	// the tenant.
	EventReload = "serve_reload"
	// EventAccess is the structured access log: one event per request
	// when Config.AccessLog is on. Labels: trace (32-hex W3C trace ID),
	// route, tenant. Data: status, queue_ms, eval_ms, total_ms,
	// generation, batch (micro-batch size the request was evaluated in;
	// 1 on the per-request path, 0 when it never reached evaluation),
	// shed (0/1), timeout (0/1).
	EventAccess = "serve_access"
)

// Span names of the per-request trace tree (group "req:<trace-id-low>"):
// SpanRequest covers the whole request, with the queue-wait, evaluator
// and response-encode phases as child spans on the same track.
const (
	SpanRequest = "serve_predict"
	SpanQueue   = "serve_queue"
	SpanEval    = "serve_eval"
	SpanEncode  = "serve_encode"
)

// LatencyBuckets are the HistLatencyMS upper bounds in milliseconds,
// sized for an in-process predict path that answers in microseconds.
var LatencyBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250}

// BatchBuckets are the HistBatchSize upper bounds (requests per flush).
var BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// maxBodyBytes bounds a request body; states are tiny.
const maxBodyBytes = 1 << 20

// maxRetryAfterSeconds caps the queue-depth-derived Retry-After hint.
const maxRetryAfterSeconds = 30

// Config configures a Service.
type Config struct {
	// Checkpoint is the default tenant's agent snapshot path, loaded at
	// New and re-read by every Reload. Optional when Policies names at
	// least one tenant.
	Checkpoint string
	// Policies maps tenant names to checkpoint paths (cmd/serve's
	// repeatable -policy name=path). Each tenant hot-reloads
	// independently. A "default" entry conflicts with Checkpoint.
	Policies map[string]string
	// Quotas maps tenant names to a sustained request rate limit in
	// requests/second (token bucket, burst = max(rate, 1)). Tenants
	// absent from the map are unlimited. Breaches answer 429 with a
	// Retry-After derived from the bucket's refill time.
	Quotas map[string]float64
	// Pool caps concurrently evaluating requests (default GOMAXPROCS).
	Pool int
	// Queue caps requests waiting for a worker beyond the pool; arrivals
	// past pool+queue are shed immediately with 429 (default 4×Pool).
	Queue int
	// Timeout bounds one request including its wait for a worker
	// (default 1s). A request still queued at the deadline is shed.
	Timeout time.Duration
	// BatchWindow, when > 0, micro-batches evaluations per tenant:
	// requests arriving within the window coalesce into one GEMM. 0 (the
	// default) keeps the per-request path.
	BatchWindow time.Duration
	// BatchMax caps a micro-batch (default 16). Reaching it flushes the
	// batch before the window expires.
	BatchMax int
	// Obs receives metrics, events and tracer spans; nil disables
	// observability (every obs call is nil-safe).
	Obs *obs.Emitter
	// AccessLog emits one EventAccess per request through Obs's event
	// sink. Off (the default) the access path allocates nothing.
	AccessLog bool
	// SLO, when non-nil, receives every request's outcome and latency
	// split for burn-rate evaluation (internal/obs/slo); expose its
	// report via export.WithSLO. A nil engine costs one pointer
	// comparison per request.
	SLO *slo.Engine
}

func (c *Config) fill() {
	if c.Pool <= 0 {
		c.Pool = runtime.GOMAXPROCS(0)
	}
	if c.Queue < 0 {
		c.Queue = 0
	} else if c.Queue == 0 {
		c.Queue = 4 * c.Pool
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
}

// Service serves checkpointed policies concurrently with hot-reload.
type Service struct {
	cfg     Config
	obs     *obs.Emitter
	slo     *slo.Engine
	tenants map[string]*Tenant // immutable after New
	names   []string           // sorted tenant names
	def     *Tenant            // tenant behind the unprefixed routes (may be nil)
	sem     chan struct{}      // worker slots
	queue   chan struct{}      // bounded wait slots beyond the pool

	// evalEWMA is the exponentially weighted per-request evaluation time
	// in milliseconds (float64 bits), fed by every eval and read by the
	// 429 Retry-After estimate.
	evalEWMA atomic.Uint64

	// reloading serializes Reload calls so generations stay monotonic.
	reloading chan struct{}

	// testHookEval, when set, runs inside the worker slot before each
	// evaluation — tests use it to hold workers busy deterministically.
	testHookEval func()
}

// New loads every configured checkpoint and returns a ready service.
func New(cfg Config) (*Service, error) {
	cfg.fill()
	specs := make(map[string]string, len(cfg.Policies)+1)
	for name, path := range cfg.Policies {
		if name == "" || path == "" {
			return nil, fmt.Errorf("serve: empty tenant name or path in Policies")
		}
		if strings.ContainsAny(name, "/{}=,") {
			return nil, fmt.Errorf("serve: tenant name %q contains reserved characters", name)
		}
		specs[name] = path
	}
	if cfg.Checkpoint != "" {
		if other, dup := specs[DefaultTenant]; dup && other != cfg.Checkpoint {
			return nil, fmt.Errorf("serve: both Checkpoint and Policies[%q] set", DefaultTenant)
		}
		specs[DefaultTenant] = cfg.Checkpoint
	}
	if len(specs) == 0 {
		return nil, errors.New("serve: no checkpoint configured")
	}
	s := &Service{
		cfg:       cfg,
		obs:       cfg.Obs,
		slo:       cfg.SLO,
		tenants:   make(map[string]*Tenant, len(specs)),
		sem:       make(chan struct{}, cfg.Pool),
		queue:     make(chan struct{}, cfg.Queue),
		reloading: make(chan struct{}, 1),
	}
	if reg := s.obs.Metrics(); reg != nil {
		reg.NewHistogram(HistLatencyMS, LatencyBuckets)
		reg.NewHistogram(HistQueueMS, LatencyBuckets)
		reg.NewHistogram(HistEvalMS, LatencyBuckets)
		if cfg.BatchWindow > 0 {
			reg.NewHistogram(HistBatchSize, BatchBuckets)
		}
	}
	for name, path := range specs {
		agent, err := persist.LoadAgentFile(path)
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %q: %w", name, err)
		}
		t := newTenant(name, path)
		t.policy.Store(newPolicy(agent, path, 1))
		if rps := cfg.Quotas[name]; rps > 0 {
			t.quota = newTokenBucket(rps)
		}
		if cfg.BatchWindow > 0 {
			t.batch = newBatcher(s, t, cfg.BatchWindow, cfg.BatchMax)
			if reg := s.obs.Metrics(); reg != nil {
				reg.NewHistogram(t.hBatch, BatchBuckets)
			}
			go t.batch.run()
		}
		s.obs.SetGauge(t.gGen, 1)
		s.tenants[name] = t
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	s.def = s.tenants[DefaultTenant]
	if s.def == nil && len(s.tenants) == 1 {
		s.def = s.tenants[s.names[0]]
	}
	if s.def != nil {
		s.obs.SetGauge(GaugeGeneration, 1)
	}
	return s, nil
}

// Close stops the per-tenant batch collectors, flushing anything already
// parked; requests arriving afterwards evaluate inline, so a drain never
// drops a request. Safe without batching and safe to call more than once.
func (s *Service) Close() {
	for _, name := range s.names {
		if b := s.tenants[name].batch; b != nil {
			b.close()
		}
	}
}

// Policy returns the default tenant's currently served policy (nil when
// no default tenant is configured).
func (s *Service) Policy() *Policy {
	if s.def == nil {
		return nil
	}
	return s.def.policy.Load()
}

// Tenant looks up a tenant by name.
func (s *Service) Tenant(name string) (*Tenant, bool) {
	t, ok := s.tenants[name]
	return t, ok
}

// Tenants returns the tenant names in sorted order.
func (s *Service) Tenants() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Reload re-reads the default tenant's checkpoint and atomically swaps it
// in. In-flight requests keep the policy they started with; new requests
// see the new generation. On error the old policy keeps serving.
func (s *Service) Reload() error {
	if s.def == nil {
		return errors.New("serve: no default tenant")
	}
	return s.reloadTenant(s.def)
}

// ReloadAll reloads every tenant, joining the per-tenant errors; tenants
// that reload cleanly swap in even when others fail.
func (s *Service) ReloadAll() error {
	var errs []error
	for _, name := range s.names {
		if err := s.reloadTenant(s.tenants[name]); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (s *Service) reloadTenant(t *Tenant) error {
	s.reloading <- struct{}{}
	defer func() { <-s.reloading }()
	agent, err := persist.LoadAgentFile(t.source)
	if err != nil {
		s.obs.Inc(MetricReloadErrors, 1)
		s.obs.Inc(t.mReloadErr, 1)
		return fmt.Errorf("serve: reload tenant %q: %w", t.name, err)
	}
	gen := t.policy.Load().Generation() + 1
	t.policy.Store(newPolicy(agent, t.source, gen))
	s.obs.SetGauge(t.gGen, float64(gen))
	if t == s.def {
		s.obs.SetGauge(GaugeGeneration, float64(gen))
	}
	s.obs.Inc(MetricReloads, 1)
	s.obs.Inc(t.mReloads, 1)
	s.obs.EmitLabeled(EventReload, map[string]string{"tenant": t.name},
		map[string]float64{"generation": float64(gen)})
	return nil
}

// Handler returns the /v1 mux. Mount it on a dedicated server or on the
// telemetry mux via export.WithRoute("/v1/", s.Handler()).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		s.handleEval(w, r, s.def, true)
	})
	mux.HandleFunc("/v1/act", func(w http.ResponseWriter, r *http.Request) {
		s.handleEval(w, r, s.def, false)
	})
	mux.HandleFunc("/v1/info", func(w http.ResponseWriter, r *http.Request) {
		s.handleInfo(w, r, s.def)
	})
	mux.HandleFunc("/v1/t/", s.handleTenantRoute)
	return mux
}

// handleTenantRoute dispatches /v1/t/{tenant}/{predict|act|info}.
func (s *Service) handleTenantRoute(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/t/")
	name, op, ok := strings.Cut(rest, "/")
	if !ok || name == "" {
		writeJSON(w, http.StatusNotFound, errorResponse{"want /v1/t/{tenant}/{predict|act|info}"})
		return
	}
	t := s.tenants[name]
	if t == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown tenant " + strconv.Quote(name)})
		return
	}
	switch op {
	case "predict":
		s.handleEval(w, r, t, true)
	case "act":
		s.handleEval(w, r, t, false)
	case "info":
		s.handleInfo(w, r, t)
	default:
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown endpoint " + strconv.Quote(op)})
	}
}

// evalRequest and evalResponse are the /v1/predict / /v1/act wire types.
type evalRequest struct {
	State []float64 `json:"state"`
}

type evalResponse struct {
	Action     int       `json:"action"`
	Q          []float64 `json:"q,omitempty"`
	Generation int       `json:"generation"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// admit implements the bounded-pool backpressure: a free worker slot
// admits immediately; otherwise the request takes a bounded queue slot
// and waits for a worker until ctx expires; a full queue sheds at once.
// On ok the caller must invoke release exactly once; timedOut
// distinguishes a queue-wait expiry from an immediate full-queue shed.
func (s *Service) admit(ctx context.Context) (release func(), ok, timedOut bool) {
	release = func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, true, false
	default:
	}
	select {
	case s.queue <- struct{}{}:
		defer func() { <-s.queue }()
		select {
		case s.sem <- struct{}{}:
			return release, true, false
		case <-ctx.Done():
			return nil, false, true
		}
	default:
		return nil, false, false
	}
}

// noteEvalMS folds one per-request evaluation time into the EWMA the
// Retry-After estimate reads (lock-free; last CAS winner is fine).
func (s *Service) noteEvalMS(ms float64) {
	const alpha = 0.2
	for {
		old := s.evalEWMA.Load()
		next := ms
		if old != 0 {
			cur := math.Float64frombits(old)
			next = cur + alpha*(ms-cur)
		}
		if s.evalEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfterSeconds estimates when a shed caller should come back: the
// current backlog (busy workers plus queued waiters) times the EWMA
// per-request evaluation time, spread over the pool, rounded up and
// clamped to [1, maxRetryAfterSeconds]. A cold EWMA assumes 1ms.
func (s *Service) retryAfterSeconds() int {
	depth := len(s.sem) + len(s.queue)
	ms := math.Float64frombits(s.evalEWMA.Load())
	if ms <= 0 {
		ms = 1
	}
	secs := float64(depth+1) * ms / (float64(s.cfg.Pool) * 1000)
	ra := int(math.Ceil(secs))
	if ra < 1 {
		ra = 1
	}
	if ra > maxRetryAfterSeconds {
		ra = maxRetryAfterSeconds
	}
	return ra
}

// retryAfterHeader formats a duration as a whole-second Retry-After
// value, rounding up and clamping like retryAfterSeconds.
func retryAfterHeader(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return strconv.Itoa(secs)
}

// request is the per-request observability state threaded from admission
// to the final access-log record. Held by value on the handler stack so
// the fully disabled path allocates nothing.
type request struct {
	route      string
	tenant     string
	tc         traceContext
	traced     bool
	start      time.Time
	queueMS    float64
	evalMS     float64
	evaluated  bool
	status     int
	outcome    slo.Outcome
	generation int
	batch      int
	root       obs.Span
}

// msSince is the elapsed milliseconds since t.
func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

// beginRequest establishes the trace context: an incoming W3C
// traceparent header continues the caller's trace; otherwise a fresh
// trace ID is generated whenever request observability (span tracing or
// access logging) will use one. With everything off and no incoming
// header, the request stays untraced at the cost of one header lookup.
func (s *Service) beginRequest(r *http.Request, rq *request) {
	if h := r.Header.Get("traceparent"); h != "" {
		if tc, ok := parseTraceparent(h); ok {
			rq.tc, rq.traced = tc, true
		}
	}
	if !rq.traced && (s.obs.Tracer() != nil || s.cfg.AccessLog) {
		rq.tc, rq.traced = newTraceContext(), true
	}
	if rq.traced {
		if tr := s.obs.Tracer(); tr != nil {
			rq.root = tr.StartSpanGroup(SpanRequest, rq.tc.spanGroup())
		}
	}
}

// span opens a child span of the request's trace tree (inactive when
// the request is untraced or no tracer is attached).
func (s *Service) span(rq *request, name string) obs.Span {
	if !rq.root.Active() {
		return obs.Span{}
	}
	return s.obs.Tracer().StartSpanGroup(name, rq.tc.spanGroup())
}

// finishRequest records the request's outcome everywhere it is
// observable: the latency histograms (total always, queue always, eval
// when an evaluator ran), the SLO engine, the request root span, and —
// with access logging on — one serve_access event. Every disabled
// consumer is skipped without allocating.
func (s *Service) finishRequest(rq *request) {
	totalMS := msSince(rq.start)
	s.obs.Observe(HistLatencyMS, totalMS)
	s.obs.Observe(HistQueueMS, rq.queueMS)
	if rq.evaluated {
		s.obs.Observe(HistEvalMS, rq.evalMS)
	}
	s.slo.Record(rq.outcome, rq.queueMS, rq.evalMS, totalMS)
	rq.root.End()
	if s.cfg.AccessLog {
		s.obs.EmitLabeled(EventAccess,
			map[string]string{"trace": rq.tc.traceIDHex(), "route": rq.route, "tenant": rq.tenant},
			map[string]float64{
				"status":     float64(rq.status),
				"queue_ms":   rq.queueMS,
				"eval_ms":    rq.evalMS,
				"total_ms":   totalMS,
				"generation": float64(rq.generation),
				"batch":      float64(rq.batch),
				"shed":       boolToFloat(rq.outcome == slo.Shed),
				"timeout":    boolToFloat(rq.outcome == slo.Timeout),
			})
	}
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// setTimingHeaders annotates the response with the request's identity
// and latency split: X-Trace-Id (when traced) and a standard
// Server-Timing header carrying the queue and eval components, which is
// how cmd/loadgen -slo splits client-observed latency without a
// server-side log.
func setTimingHeaders(w http.ResponseWriter, rq *request) {
	h := w.Header()
	if rq.traced {
		h.Set("X-Trace-Id", rq.tc.traceIDHex())
	}
	if rq.evaluated {
		h.Set("Server-Timing", fmt.Sprintf("queue;dur=%.4f, eval;dur=%.4f", rq.queueMS, rq.evalMS))
	} else {
		h.Set("Server-Timing", fmt.Sprintf("queue;dur=%.4f", rq.queueMS))
	}
}

func (s *Service) handleEval(w http.ResponseWriter, r *http.Request, t *Tenant, includeQ bool) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	if t == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"no default tenant; use /v1/t/{tenant}/"})
		return
	}
	rq := request{route: r.URL.Path, tenant: t.name, start: time.Now()}
	s.obs.Inc(MetricRequests, 1)
	s.obs.Inc(t.mReq, 1)
	s.beginRequest(r, &rq)
	rq.generation = t.policy.Load().Generation()

	if t.quota != nil {
		if ok, retryIn := t.quota.allow(rq.start); !ok {
			s.obs.Inc(MetricQuotaDenied, 1)
			s.obs.Inc(t.mQuota, 1)
			rq.status, rq.outcome = http.StatusTooManyRequests, slo.Shed
			rq.queueMS = msSince(rq.start)
			setTimingHeaders(w, &rq)
			w.Header().Set("Retry-After", retryAfterHeader(retryIn))
			writeJSON(w, http.StatusTooManyRequests, errorResponse{"tenant quota exceeded, retry later"})
			s.finishRequest(&rq)
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	qSpan := s.span(&rq, SpanQueue)
	release, ok, timedOut := s.admit(ctx)
	qSpan.End()
	rq.queueMS = msSince(rq.start)
	if !ok {
		rq.status, rq.outcome = http.StatusTooManyRequests, slo.Shed
		if timedOut {
			rq.outcome = slo.Timeout
			s.obs.Inc(MetricTimeout, 1)
			s.obs.Inc(t.mTimeout, 1)
		} else {
			s.obs.Inc(MetricShed, 1)
			s.obs.Inc(t.mShed, 1)
		}
		setTimingHeaders(w, &rq)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{"overloaded, retry later"})
		s.finishRequest(&rq)
		return
	}
	released := false
	releaseOnce := func() {
		if !released {
			released = true
			release()
		}
	}
	defer releaseOnce()

	var req evalRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.obs.Inc(MetricErrors, 1)
		s.obs.Inc(t.mErr, 1)
		rq.status, rq.outcome = http.StatusBadRequest, slo.ClientError
		setTimingHeaders(w, &rq)
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		s.finishRequest(&rq)
		return
	}
	if s.testHookEval != nil {
		s.testHookEval()
	}

	var resp evalResponse
	var evalErr error
	evalStart := time.Now()
	eSpan := s.span(&rq, SpanEval)
	if t.batch != nil {
		// Micro-batched path: park with the tenant's collector; the reply
		// carries the batch size and a Q copy. A closed collector (drain)
		// falls back to inline evaluation so the request is never dropped.
		it := &batchItem{state: req.State, includeQ: includeQ, out: make(chan batchOut, 1)}
		var bo batchOut
		answered := false
		if t.batch.submit(it) {
			// The worker slot only gates admission: free it while parked so
			// peer requests can join the same batch (otherwise a small -pool
			// would cap every batch at the pool size). Eval concurrency is
			// bounded by the per-tenant collector and the evaluator pool.
			releaseOnce()
			bo, answered = t.batch.await(it)
		}
		if !answered {
			bo = t.evalInline(req.State, includeQ)
		}
		rq.generation, rq.batch = bo.generation, bo.size
		resp = evalResponse{Action: bo.action, Q: bo.q, Generation: bo.generation}
		evalErr = bo.err
		eSpan.End()
		rq.evalMS, rq.evaluated = msSince(evalStart), true
		if evalErr == nil {
			s.writeEvalOK(w, &rq, t, resp)
			return
		}
	} else {
		// Per-request path: the policy pointer read and the evaluation
		// both happen against one consistent snapshot — a concurrent
		// Reload swaps the pointer for future requests without touching
		// this one.
		p := t.policy.Load()
		rq.generation, rq.batch = p.generation, 1
		ev := p.acquire()
		qs, err := ev.QValues(req.State)
		eSpan.End()
		rq.evalMS, rq.evaluated = msSince(evalStart), true
		s.noteEvalMS(rq.evalMS)
		if err == nil {
			resp = evalResponse{Generation: p.generation}
			for a := 1; a < len(qs); a++ {
				if qs[a] > qs[resp.Action] {
					resp.Action = a
				}
			}
			if includeQ {
				resp.Q = qs // evaluator-owned; marshalled before release below
			}
			s.writeEvalOK(w, &rq, t, resp)
			p.release(ev)
			return
		}
		p.release(ev)
		evalErr = err
	}
	s.obs.Inc(MetricErrors, 1)
	s.obs.Inc(t.mErr, 1)
	rq.status, rq.outcome = http.StatusBadRequest, slo.ClientError
	setTimingHeaders(w, &rq)
	writeJSON(w, http.StatusBadRequest, errorResponse{evalErr.Error()})
	s.finishRequest(&rq)
}

// writeEvalOK encodes the 200 response and closes out the request
// bookkeeping shared by the batched and per-request paths.
func (s *Service) writeEvalOK(w http.ResponseWriter, rq *request, t *Tenant, resp evalResponse) {
	encSpan := s.span(rq, SpanEncode)
	setTimingHeaders(w, rq)
	writeJSON(w, http.StatusOK, resp)
	encSpan.End()
	s.obs.Inc(MetricOK, 1)
	s.obs.Inc(t.mOK, 1)
	rq.status, rq.outcome = http.StatusOK, slo.OK
	s.finishRequest(rq)
}

// evalInline answers one request on the per-request path — the fallback
// when the batch collector has been closed for drain.
func (t *Tenant) evalInline(state []float64, includeQ bool) batchOut {
	p := t.policy.Load()
	ev := p.acquire()
	defer p.release(ev)
	qs, err := ev.QValues(state)
	return answer(qs, err, includeQ, p.generation, 1)
}

func (s *Service) handleInfo(w http.ResponseWriter, r *http.Request, t *Tenant) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	if t == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"no default tenant; use /v1/t/{tenant}/"})
		return
	}
	info := t.policy.Load().Info()
	writeJSON(w, http.StatusOK, struct {
		Info
		Tenant       string   `json:"tenant"`
		Tenants      []string `json:"tenants"`
		Pool         int      `json:"pool"`
		Queue        int      `json:"queue"`
		Timeout      float64  `json:"timeout_seconds"`
		BatchWindowS float64  `json:"batch_window_seconds"`
		BatchMax     int      `json:"batch_max"`
	}{info, t.name, s.Tenants(), s.cfg.Pool, s.cfg.Queue, s.cfg.Timeout.Seconds(),
		s.cfg.BatchWindow.Seconds(), s.cfg.BatchMax})
}
