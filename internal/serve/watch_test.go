package serve

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"oselmrl/internal/obs"
	"oselmrl/internal/persist"
	"oselmrl/internal/qnet"
)

// checkpointBytes serializes an agent the way writeCheckpoint does,
// without touching disk.
func checkpointBytes(t *testing.T, a *qnet.Agent) []byte {
	t.Helper()
	tmp := filepath.Join(t.TempDir(), "tmp.json")
	if err := persist.SaveAgentFile(tmp, a); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Regression (PR 8): a writer that rewrites the checkpoint with the SAME
// byte length and the SAME mtime must still trigger a reload — the
// pre-fix watcher compared only size+mtime and missed it. The test crafts
// two different same-hidden checkpoints padded to equal length (the JSON
// decoder ignores trailing whitespace) and pins the mtime with Chtimes.
func TestWatchDetectsSameSizeSameMtimeRewrite(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "agent.json")
	b1 := checkpointBytes(t, makeAgent(t, 8, 1))
	b2 := checkpointBytes(t, makeAgent(t, 8, 2))
	// Pad both to a common length so os.Stat sees no size change.
	n := len(b1)
	if len(b2) > n {
		n = len(b2)
	}
	pad := func(b []byte) []byte {
		for len(b) < n {
			b = append(b, ' ')
		}
		return b
	}
	b1, b2 = pad(b1), pad(b2)
	if err := os.WriteFile(ckpt, b1, 0o644); err != nil {
		t.Fatal(err)
	}
	mtime := time.Now().Add(-time.Hour)
	if err := os.Chtimes(ckpt, mtime, mtime); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Checkpoint: ckpt, Obs: obs.NewEmitter(nil)})
	if err != nil {
		t.Fatal(err)
	}
	stop := s.WatchCheckpoint(5*time.Millisecond, nil)
	defer stop()

	// Rewrite: different content, identical size, identical mtime.
	if err := os.WriteFile(ckpt, b2, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(ckpt, mtime, mtime); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Policy().Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watcher missed the same-size same-mtime rewrite")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Regression (PR 8): a failed reload (partially written / corrupt
// snapshot) must be retried on every subsequent tick, not only after the
// writer touches the file again — the pre-fix watcher advanced its
// baseline before reloading, so one corrupt read wedged it until the next
// external write.
func TestWatchRetriesFailedReload(t *testing.T) {
	s, ckpt := newTestService(t, Config{Obs: obs.NewEmitter(nil)})
	var reloadErrs atomic.Int64
	stop := s.WatchCheckpoint(5*time.Millisecond, func(error) { reloadErrs.Add(1) })
	defer stop()

	// Corrupt the checkpoint: every tick must now attempt and fail.
	if err := os.WriteFile(ckpt, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reloadErrs.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("failed reload retried %d times, want ≥ 2 (watcher wedged)", reloadErrs.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.Policy().Generation() != 1 {
		t.Error("generation advanced on a corrupt checkpoint")
	}

	// Once the writer completes a good snapshot, the watcher recovers
	// without any extra touch.
	writeCheckpoint(t, ckpt, makeAgent(t, 16, 9))
	deadline = time.Now().Add(5 * time.Second)
	for s.Policy().Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never recovered after the corrupt window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Policy().Info().Hidden; got != 16 {
		t.Errorf("recovered hidden = %d, want 16", got)
	}
}

// WatchAll reloads each tenant independently as its own file changes.
func TestWatchAllPerTenant(t *testing.T) {
	dir := t.TempDir()
	ckptA := filepath.Join(dir, "a.json")
	ckptB := filepath.Join(dir, "b.json")
	writeCheckpoint(t, ckptA, makeAgent(t, 8, 1))
	writeCheckpoint(t, ckptB, makeAgent(t, 8, 2))
	s, err := New(Config{Policies: map[string]string{"alpha": ckptA, "beta": ckptB}, Obs: obs.NewEmitter(nil)})
	if err != nil {
		t.Fatal(err)
	}
	stop := s.WatchAll(5*time.Millisecond, nil)
	defer stop()

	alpha, _ := s.Tenant("alpha")
	beta, _ := s.Tenant("beta")
	writeCheckpoint(t, ckptB, makeAgent(t, 16, 3))
	deadline := time.Now().Add(5 * time.Second)
	for beta.Policy().Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never reloaded tenant beta")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if g := alpha.Policy().Generation(); g != 1 {
		t.Errorf("alpha generation %d, want 1 (only beta's file changed)", g)
	}
}
