package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"oselmrl/internal/obs"
	"oselmrl/internal/obs/slo"
)

// memSink captures emitted events for assertions.
type memSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (m *memSink) Write(ev *obs.Event) error {
	m.mu.Lock()
	m.events = append(m.events, *ev)
	m.mu.Unlock()
	return nil
}

func (m *memSink) Close() error { return nil }

func (m *memSink) byType(typ string) []obs.Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []obs.Event
	for _, ev := range m.events {
		if ev.Type == typ {
			out = append(out, ev)
		}
	}
	return out
}

func TestAccessLogPerRequest(t *testing.T) {
	sink := &memSink{}
	em := obs.NewEmitter(sink)
	s, _ := newTestService(t, Config{Obs: em, AccessLog: true})
	h := s.Handler()

	if w := postPredict(h, "/v1/predict", []float64{0.1, -0.2, 0.3, 0}); w.Code != http.StatusOK {
		t.Fatalf("predict status %d", w.Code)
	}
	if w := postPredict(h, "/v1/act", []float64{1}); w.Code != http.StatusBadRequest {
		t.Fatalf("short state status %d", w.Code)
	}

	evs := sink.byType(EventAccess)
	if len(evs) != 2 {
		t.Fatalf("access events = %d, want 2", len(evs))
	}
	okEv, errEv := evs[0], evs[1]
	if okEv.Labels["route"] != "/v1/predict" || errEv.Labels["route"] != "/v1/act" {
		t.Errorf("routes: %q, %q", okEv.Labels["route"], errEv.Labels["route"])
	}
	if len(okEv.Labels["trace"]) != 32 {
		t.Errorf("trace label %q", okEv.Labels["trace"])
	}
	if okEv.Data["status"] != 200 || errEv.Data["status"] != 400 {
		t.Errorf("statuses: %v, %v", okEv.Data["status"], errEv.Data["status"])
	}
	if okEv.Data["generation"] != 1 {
		t.Errorf("generation %v", okEv.Data["generation"])
	}
	if okEv.Data["total_ms"] < okEv.Data["queue_ms"] || okEv.Data["total_ms"] < okEv.Data["eval_ms"] {
		t.Errorf("latency split inconsistent: %+v", okEv.Data)
	}
	if okEv.Data["shed"] != 0 || okEv.Data["timeout"] != 0 {
		t.Errorf("ok request flagged shed/timeout: %+v", okEv.Data)
	}
}

// The serve_access schema is pinned by a golden file: field names are a
// public contract for dashboards and cmd/runlog, so adding or renaming a
// field must show up as a reviewed diff of testdata/access_golden.json.
// Volatile values (timings, sequence, trace ID) are normalized before
// comparison.
func TestAccessEventGoldenSchema(t *testing.T) {
	sink := &memSink{}
	em := obs.NewEmitter(sink)
	s, _ := newTestService(t, Config{Obs: em, AccessLog: true})
	if w := postPredict(s.Handler(), "/v1/predict", []float64{0.1, -0.2, 0.3, 0}); w.Code != http.StatusOK {
		t.Fatalf("predict status %d", w.Code)
	}
	evs := sink.byType(EventAccess)
	if len(evs) != 1 {
		t.Fatalf("access events = %d", len(evs))
	}
	ev := evs[0]

	// Every volatile field must exist before being pinned.
	for _, k := range []string{"queue_ms", "eval_ms", "total_ms"} {
		if _, ok := ev.Data[k]; !ok {
			t.Fatalf("missing data field %q", k)
		}
	}
	if _, ok := ev.Labels["trace"]; !ok {
		t.Fatal("missing trace label")
	}
	ev.Seq = 1
	ev.WallMS = 1.25
	ev.Data["queue_ms"] = 0.01
	ev.Data["eval_ms"] = 0.02
	ev.Data["total_ms"] = 0.05
	ev.Labels["trace"] = "4bf92f3577b34da6a3ce929d0e0e4736"

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(ev); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	goldenPath := filepath.Join("testdata", "access_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1 go test ./internal/serve)", err)
	}
	if got != string(want) {
		t.Errorf("serve_access schema drifted from golden.\ngot:\n%s\nwant:\n%s\n(if intentional: UPDATE_GOLDEN=1 go test ./internal/serve)", got, want)
	}
}

// An incoming W3C traceparent continues the caller's trace: its trace ID
// shows up in the X-Trace-Id response header and the access log.
func TestTraceparentIngestion(t *testing.T) {
	sink := &memSink{}
	em := obs.NewEmitter(sink)
	s, _ := newTestService(t, Config{Obs: em, AccessLog: true})
	h := s.Handler()

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, _ := json.Marshal(evalRequest{State: []float64{0, 0, 0, 0}})
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
	req.Header.Set("traceparent", "00-"+callerTrace+"-00f067aa0ba902b7-01")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if got := w.Header().Get("X-Trace-Id"); got != callerTrace {
		t.Errorf("X-Trace-Id = %q, want %q", got, callerTrace)
	}
	if st := w.Header().Get("Server-Timing"); !strings.Contains(st, "queue;dur=") || !strings.Contains(st, "eval;dur=") {
		t.Errorf("Server-Timing = %q", st)
	}
	evs := sink.byType(EventAccess)
	if len(evs) != 1 || evs[0].Labels["trace"] != callerTrace {
		t.Errorf("access trace label = %+v", evs)
	}

	// A malformed traceparent is ignored; a fresh ID is generated.
	req = httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
	req.Header.Set("traceparent", "garbage")
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if got := w.Header().Get("X-Trace-Id"); len(got) != 32 || got == callerTrace {
		t.Errorf("generated X-Trace-Id = %q", got)
	}
}

// With a tracer attached, one request produces the span tree
// queue→eval→encode under a per-request group, inspectable in Perfetto.
func TestRequestSpanTree(t *testing.T) {
	em := obs.NewEmitter(nil)
	tr := obs.NewTracer()
	em.SetTracer(tr)
	s, _ := newTestService(t, Config{Obs: em})
	if w := postPredict(s.Handler(), "/v1/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	spans := tr.Spans()
	byName := map[string]obs.SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	for _, name := range []string{SpanRequest, SpanQueue, SpanEval, SpanEncode} {
		sp, ok := byName[name]
		if !ok {
			t.Fatalf("span %q missing (have %v)", name, names(spans))
		}
		if !strings.HasPrefix(sp.Group, "req:") {
			t.Errorf("span %q group %q", name, sp.Group)
		}
	}
	root := byName[SpanRequest]
	for _, name := range []string{SpanQueue, SpanEval, SpanEncode} {
		sp := byName[name]
		if sp.Group != root.Group {
			t.Errorf("span %q group %q != root %q", name, sp.Group, root.Group)
		}
		if sp.StartUS < root.StartUS || sp.StartUS+sp.DurUS > root.StartUS+root.DurUS+50 {
			t.Errorf("span %q [%f,+%f] escapes root [%f,+%f]", name, sp.StartUS, sp.DurUS, root.StartUS, root.DurUS)
		}
	}
}

func names(spans []obs.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	sort.Strings(out)
	return out
}

// The queue/eval histogram split and the SLO engine both see every
// request.
func TestLatencySplitAndSLORecording(t *testing.T) {
	em := obs.NewEmitter(nil)
	eng := slo.NewEngine(slo.DefaultObjectives())
	s, _ := newTestService(t, Config{Obs: em, SLO: eng})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if w := postPredict(h, "/v1/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusOK {
			t.Fatalf("status %d", w.Code)
		}
	}
	postPredict(h, "/v1/predict", []float64{1}) // client error

	snap := em.Metrics().Snapshot()
	if hq := snap.Histograms[HistQueueMS]; hq == nil || hq.N != 4 {
		t.Errorf("queue histogram %+v", hq)
	}
	if he := snap.Histograms[HistEvalMS]; he == nil || he.N != 4 {
		t.Errorf("eval histogram %+v", he)
	}
	if ht := snap.Histograms[HistLatencyMS]; ht == nil || ht.N != 4 {
		t.Errorf("total histogram %+v", ht)
	}

	rep := eng.Report()
	if rep.Requests != 4 || rep.OK != 3 || rep.ClientErrors != 1 {
		t.Errorf("slo report %+v", rep)
	}
	if rep.QueueMS.N != 4 || rep.EvalMS.N != 4 || rep.TotalMS.N != 4 {
		t.Errorf("slo distributions %+v", rep)
	}
}

// A forced breach — an absurd latency objective — must drive the engine
// into fast burn via real served traffic.
func TestForcedBreachFastBurn(t *testing.T) {
	eng := slo.NewEngine(slo.Objectives{LatencyP99MS: 0.00001})
	eng.SetFastBurn(0, 5) // default rate, tiny minimum population
	s, _ := newTestService(t, Config{Obs: obs.NewEmitter(nil), SLO: eng})
	h := s.Handler()
	for i := 0; i < 25; i++ {
		if w := postPredict(h, "/v1/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusOK {
			t.Fatalf("status %d", w.Code)
		}
	}
	if !eng.FastBurn() {
		t.Fatalf("engine must fast-burn under a sub-µs objective: %+v", eng.Report())
	}
	if br := slo.GateBreaches(eng.Report()); len(br) != 1 || br[0] != "latency" {
		t.Errorf("gate breaches = %v", br)
	}
}

// Shed and timed-out requests carry distinct flags in the access log and
// distinct outcomes in the SLO engine.
func TestShedAndTimeoutOutcomes(t *testing.T) {
	sink := &memSink{}
	em := obs.NewEmitter(sink)
	eng := slo.NewEngine(slo.DefaultObjectives())
	s, _ := newTestService(t, Config{Pool: 1, Queue: 1, Timeout: 50 * time.Millisecond,
		Obs: em, SLO: eng, AccessLog: true})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHookEval = func() {
		select {
		case entered <- struct{}{}:
			<-release
		default:
		}
	}
	h := s.Handler()

	done := make(chan struct{})
	go func() {
		postPredict(h, "/v1/predict", []float64{0, 0, 0, 0})
		close(done)
	}()
	<-entered

	// Second request: queued, then times out. Third: queue full, shed.
	timedOut := make(chan *httptest.ResponseRecorder, 1)
	go func() { timedOut <- postPredict(h, "/v1/predict", []float64{0, 0, 0, 0}) }()
	time.Sleep(10 * time.Millisecond) // let it take the queue slot
	wShed := postPredict(h, "/v1/predict", []float64{0, 0, 0, 0})
	if wShed.Code != http.StatusTooManyRequests {
		t.Fatalf("shed status %d", wShed.Code)
	}
	if w := <-timedOut; w.Code != http.StatusTooManyRequests {
		t.Fatalf("timeout status %d", w.Code)
	}
	close(release)
	<-done

	snap := em.Metrics().Snapshot()
	if snap.Counter(MetricShed) != 1 || snap.Counter(MetricTimeout) != 1 {
		t.Errorf("shed=%d timeouts=%d, want 1 each",
			snap.Counter(MetricShed), snap.Counter(MetricTimeout))
	}
	var sheds, timeouts int
	for _, ev := range sink.byType(EventAccess) {
		sheds += int(ev.Data["shed"])
		timeouts += int(ev.Data["timeout"])
	}
	if sheds != 1 || timeouts != 1 {
		t.Errorf("access flags: shed=%d timeout=%d", sheds, timeouts)
	}
	rep := eng.Report()
	if rep.Shed != 1 || rep.Timeouts != 1 || rep.OK != 1 {
		t.Errorf("slo outcomes %+v", rep)
	}
}

// With access logging, SLO evaluation and tracing all off, the
// per-request bookkeeping path must not allocate — the serving hot path
// stays as cheap as before this instrumentation existed.
func TestDisabledRequestObservabilityDoesNotAllocate(t *testing.T) {
	s, _ := newTestService(t, Config{Obs: obs.NewEmitter(nil)})
	rq := request{route: "/v1/predict", start: time.Now(),
		queueMS: 0.01, evalMS: 0.02, evaluated: true,
		status: http.StatusOK, outcome: slo.OK, generation: 1}
	if allocs := testing.AllocsPerRun(1000, func() {
		s.finishRequest(&rq)
	}); allocs != 0 {
		t.Errorf("disabled finishRequest allocates %v/op", allocs)
	}
	// Span helpers on the untraced path are free too.
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := s.span(&rq, SpanQueue)
		sp.End()
	}); allocs != 0 {
		t.Errorf("untraced span allocates %v/op", allocs)
	}
}
