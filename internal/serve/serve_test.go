package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"oselmrl/internal/obs"
	"oselmrl/internal/obs/export"
	"oselmrl/internal/persist"
	"oselmrl/internal/qnet"
	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
)

// makeAgent builds a briefly trained agent (4-dim state, 2 actions).
func makeAgent(t *testing.T, hidden int, seed uint64) *qnet.Agent {
	t.Helper()
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, hidden)
	cfg.Seed = seed
	a := qnet.MustNew(cfg)
	r := rng.New(seed)
	randState := func() []float64 {
		return []float64{r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1)}
	}
	for i := 0; i < 3*hidden; i++ {
		if err := a.Observe(replay.Transition{
			State: randState(), Action: r.Intn(2), Reward: r.Uniform(-1, 1),
			NextState: randState(), Done: i%11 == 0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

// writeCheckpoint atomically (via rename) writes an agent snapshot.
func writeCheckpoint(t *testing.T, path string, a *qnet.Agent) {
	t.Helper()
	tmp := path + ".tmp"
	if err := persist.SaveAgentFile(tmp, a); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

func newTestService(t *testing.T, cfg Config) (*Service, string) {
	t.Helper()
	ckpt := filepath.Join(t.TempDir(), "agent.json")
	writeCheckpoint(t, ckpt, makeAgent(t, 8, 1))
	cfg.Checkpoint = ckpt
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, ckpt
}

func postPredict(h http.Handler, path string, state []float64) *httptest.ResponseRecorder {
	body, _ := json.Marshal(evalRequest{State: state})
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestServeEndpoints(t *testing.T) {
	em := obs.NewEmitter(nil)
	s, _ := newTestService(t, Config{Obs: em})
	h := s.Handler()

	w := postPredict(h, "/v1/predict", []float64{0.1, -0.2, 0.3, 0})
	if w.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", w.Code, w.Body)
	}
	var resp evalResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Q) != 2 || resp.Generation != 1 || resp.Action < 0 || resp.Action > 1 {
		t.Fatalf("predict response %+v", resp)
	}

	w = postPredict(h, "/v1/act", []float64{0.1, -0.2, 0.3, 0})
	if w.Code != http.StatusOK {
		t.Fatalf("act status %d", w.Code)
	}
	var act evalResponse
	json.Unmarshal(w.Body.Bytes(), &act)
	if act.Q != nil {
		t.Error("/v1/act must omit q values")
	}
	if act.Action != resp.Action {
		t.Errorf("act %d != predict %d for the same state", act.Action, resp.Action)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/info", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("info status %d", rec.Code)
	}
	var info Info
	json.Unmarshal(rec.Body.Bytes(), &info)
	if info.ObservationSize != 4 || info.ActionCount != 2 || info.Hidden != 8 || info.Generation != 1 {
		t.Errorf("info %+v", info)
	}

	// Client errors: wrong state size, bad JSON, wrong method.
	if w := postPredict(h, "/v1/predict", []float64{1}); w.Code != http.StatusBadRequest {
		t.Errorf("short state status %d", w.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader([]byte("{")))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON status %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/predict", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET predict status %d", rec.Code)
	}

	// 4 counted requests: the 405 is rejected before metrics.
	snap := em.Metrics().Snapshot()
	if snap.Counter(MetricRequests) != 4 || snap.Counter(MetricOK) != 2 || snap.Counter(MetricErrors) != 2 {
		t.Errorf("counters %+v", snap.Counters)
	}
	if h := snap.Histograms[HistLatencyMS]; h == nil || h.N != 4 {
		t.Errorf("latency histogram %+v", snap.Histograms)
	}
}

// The hot-reload contract: continuous prediction traffic across many
// checkpoint swaps (including a hidden-width change) sees zero failed
// requests. Run under -race this also proves the pointer-swap scheme has
// no data races between evaluators and reloads.
func TestPredictDuringHotReload(t *testing.T) {
	s, ckpt := newTestService(t, Config{Pool: 8, Obs: obs.NewEmitter(nil)})
	h := s.Handler()

	const workers = 8
	stop := make(chan struct{})
	errs := make(chan string, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g + 1))
			lastGen := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := postPredict(h, "/v1/predict", []float64{r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1)})
				if w.Code != http.StatusOK {
					errs <- w.Body.String()
					return
				}
				var resp evalResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- err.Error()
					return
				}
				if resp.Generation < lastGen {
					errs <- "generation went backwards"
					return
				}
				lastGen = resp.Generation
			}
		}(g)
	}

	// 20 reloads under load, alternating hidden widths so the swapped
	// model even changes shape.
	for i := 0; i < 20; i++ {
		hidden := 8
		if i%2 == 1 {
			hidden = 16
		}
		writeCheckpoint(t, ckpt, makeAgent(t, hidden, uint64(i+2)))
		if err := s.Reload(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatalf("request failed during reload: %s", e)
	default:
	}
	if gen := s.Policy().Generation(); gen != 21 {
		t.Errorf("generation = %d, want 21", gen)
	}
}

// Backpressure: with one worker and no queue, a second concurrent request
// is shed immediately with 429; with a one-slot queue and a short timeout,
// a queued request that cannot get a worker in time is shed too.
func TestBackpressureSheds429(t *testing.T) {
	em := obs.NewEmitter(nil)
	s, _ := newTestService(t, Config{Pool: 1, Queue: -1, Timeout: 50 * time.Millisecond, Obs: em})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHookEval = func() {
		entered <- struct{}{}
		<-release
	}
	h := s.Handler()

	first := make(chan int, 1)
	go func() {
		w := postPredict(h, "/v1/predict", []float64{0, 0, 0, 0})
		first <- w.Code
	}()
	<-entered // the single worker is now busy

	if w := postPredict(h, "/v1/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusTooManyRequests {
		t.Fatalf("expected 429 with a full pool and no queue, got %d", w.Code)
	}
	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("in-flight request must still succeed, got %d", code)
	}
	if shed := em.Metrics().Snapshot().Counter(MetricShed); shed != 1 {
		t.Errorf("serve_shed = %d, want 1", shed)
	}

	// Queued-then-timed-out: the hook gate is re-armed, queue holds the
	// second request until its 50ms budget expires.
	s2, _ := newTestService(t, Config{Pool: 1, Queue: 1, Timeout: 50 * time.Millisecond, Obs: obs.NewEmitter(nil)})
	entered2 := make(chan struct{}, 1)
	release2 := make(chan struct{})
	s2.testHookEval = func() {
		entered2 <- struct{}{}
		<-release2
	}
	h2 := s2.Handler()
	go func() {
		postPredict(h2, "/v1/predict", []float64{0, 0, 0, 0})
	}()
	<-entered2
	start := time.Now()
	if w := postPredict(h2, "/v1/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusTooManyRequests {
		t.Fatalf("expected 429 after queue timeout, got %d", w.Code)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("queued request was shed before its timeout")
	}
	close(release2)
}

// Graceful shutdown over a real listener: a request in flight when
// Shutdown begins is drained to completion, not killed.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	em := obs.NewEmitter(nil)
	s, _ := newTestService(t, Config{Pool: 2, Obs: em})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHookEval = func() {
		select {
		case entered <- struct{}{}:
			<-release
		default: // later requests (none expected) pass through
		}
	}
	srv, err := export.Serve("127.0.0.1:0", em.Metrics(), export.WithRoute("/v1/", s.Handler()))
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(evalRequest{State: []float64{0, 0, 0, 0}})
	type result struct {
		code int
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+srv.Addr()+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- result{0, err}
			return
		}
		defer resp.Body.Close()
		inflight <- result{resp.StatusCode, nil}
	}()
	<-entered // request is inside the handler

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must be waiting on the in-flight request, not killing it.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a request was still in flight")
	default:
	}
	close(release)
	if r := <-inflight; r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight request during shutdown: code=%d err=%v", r.code, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The drained server refuses new work.
	if _, err := http.Post("http://"+srv.Addr()+"/v1/predict", "application/json", bytes.NewReader(body)); err == nil {
		t.Error("post-shutdown request should fail")
	}
}

// A failed reload (corrupt checkpoint) keeps the old policy serving.
func TestReloadFailureKeepsOldPolicy(t *testing.T) {
	em := obs.NewEmitter(nil)
	s, ckpt := newTestService(t, Config{Obs: em})
	if err := os.WriteFile(ckpt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil {
		t.Fatal("reload of a corrupt checkpoint must error")
	}
	if w := postPredict(s.Handler(), "/v1/predict", []float64{0, 0, 0, 0}); w.Code != http.StatusOK {
		t.Errorf("old policy must keep serving, got %d", w.Code)
	}
	if s.Policy().Generation() != 1 {
		t.Error("generation must not advance on a failed reload")
	}
	if n := em.Metrics().Snapshot().Counter(MetricReloadErrors); n != 1 {
		t.Errorf("serve_reload_errors = %d", n)
	}
}

// The mtime watcher reloads when the checkpoint file changes.
func TestWatchCheckpoint(t *testing.T) {
	s, ckpt := newTestService(t, Config{Obs: obs.NewEmitter(nil)})
	stop := s.WatchCheckpoint(5*time.Millisecond, nil)
	defer stop()

	// Ensure the rewritten file differs in size or mtime: a different
	// hidden width changes the payload size.
	writeCheckpoint(t, ckpt, makeAgent(t, 16, 7))
	deadline := time.Now().Add(5 * time.Second)
	for s.Policy().Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never reloaded the changed checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Policy().Info().Hidden; got != 16 {
		t.Errorf("reloaded hidden = %d, want 16", got)
	}
	stop()
	stop() // idempotent
}
