package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"oselmrl/internal/obs"
)

// DefaultTenant is the tenant name the unprefixed /v1/* routes serve.
// Config.Checkpoint registers its policy under this name; a service
// configured with exactly one named policy also serves it on the bare
// routes for convenience.
const DefaultTenant = "default"

// Tenant is one named, independently hot-reloadable policy: its own
// checkpoint source, atomic *Policy pointer (the same zero-drop swap the
// single-policy service used), optional request quota, optional
// micro-batcher, and a precomputed set of tenant-labeled metric keys so
// the per-request accounting path never rebuilds label strings.
type Tenant struct {
	name   string
	source string
	policy atomic.Pointer[Policy]
	batch  *batcher
	quota  *tokenBucket

	// Labeled registry keys (obs.Labeled(name, "tenant", t.name)); the
	// export layer renders them as Prometheus labels.
	mReq, mOK, mErr, mShed, mTimeout, mQuota string
	mReloads, mReloadErr, gGen, hBatch       string
}

func newTenant(name, source string) *Tenant {
	lbl := func(metric string) string { return obs.Labeled(metric, "tenant", name) }
	return &Tenant{
		name:       name,
		source:     source,
		mReq:       lbl(MetricRequests),
		mOK:        lbl(MetricOK),
		mErr:       lbl(MetricErrors),
		mShed:      lbl(MetricShed),
		mTimeout:   lbl(MetricTimeout),
		mQuota:     lbl(MetricQuotaDenied),
		mReloads:   lbl(MetricReloads),
		mReloadErr: lbl(MetricReloadErrors),
		gGen:       lbl(GaugeGeneration),
		hBatch:     lbl(HistBatchSize),
	}
}

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.name }

// Policy returns the tenant's currently served policy.
func (t *Tenant) Policy() *Policy { return t.policy.Load() }

// Source returns the tenant's checkpoint path.
func (t *Tenant) Source() string { return t.source }

// tokenBucket is a minimal per-tenant rate limiter: sustained rate tokens
// per second with burst max(rate, 1). It is taken on every request of a
// quota'd tenant, so it stays a single short critical section.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rps float64) *tokenBucket {
	burst := rps
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rps, burst: burst, tokens: burst, last: time.Now()}
}

// allow spends one token if available; on denial it reports how long
// until the next token refills — the Retry-After hint for quota 429s.
func (b *tokenBucket) allow(now time.Time) (ok bool, retryIn time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}
