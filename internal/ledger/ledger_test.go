package ledger

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func appendCells(t *testing.T, l *Ledger, n int, artifacts ...Artifact) []Record {
	t.Helper()
	var out []Record
	for i := 0; i < n; i++ {
		rec, err := l.Append(Record{
			Kind:       KindCell,
			Cell:       "cartpole/OS-ELM-L2/h32",
			ConfigHash: HashOrDie(t, map[string]int{"cell": i}),
			Verdict:    "solved",
			Metrics:    map[string]float64{"trials": 3, "solved_trials": float64(i % 4)},
			Artifacts:  artifacts,
		})
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		out = append(out, rec)
	}
	return out
}

func HashOrDie(t *testing.T, v any) string {
	t.Helper()
	h, err := HashConfig(v)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustVerifyFile(t *testing.T, dir string, opts VerifyOptions) (*VerifyStats, error) {
	t.Helper()
	records, truncated, err := Read(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if truncated {
		t.Fatal("unexpected torn tail")
	}
	return Verify(records, opts)
}

func TestAppendVerifyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCells(t, l, 10)
	head := l.Head()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	stats, err := mustVerifyFile(t, dir, VerifyOptions{ArtifactRoot: dir})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// 10 cells at the default cadence of 8 seal one batch: 11 records.
	if stats.Records != 11 || stats.Batches != 1 || stats.Cells != 10 {
		t.Fatalf("stats = %+v, want 11 records / 1 batch / 10 cells", stats)
	}
	if stats.Head != head {
		t.Fatalf("verified head %s != appended head %s", stats.Head, head)
	}

	// Pinned-head verification: the right head passes, a wrong one fails.
	if _, err := mustVerifyFile(t, dir, VerifyOptions{ArtifactRoot: dir, ExpectHead: head}); err != nil {
		t.Fatalf("Verify with correct pinned head: %v", err)
	}
	if _, err := mustVerifyFile(t, dir, VerifyOptions{ArtifactRoot: dir, ExpectHead: Genesis}); err == nil {
		t.Fatal("Verify accepted a wrong pinned head")
	}
}

func TestReopenContinuesChain(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCells(t, l, 3)
	l.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 3 {
		t.Fatalf("reopened ledger has %d records, want 3", l2.Len())
	}
	appendCells(t, l2, 6) // crosses the batch cadence across the reopen
	l2.Close()

	stats, err := mustVerifyFile(t, dir, VerifyOptions{ArtifactRoot: dir})
	if err != nil {
		t.Fatalf("Verify after reopen: %v", err)
	}
	if stats.Batches != 1 || stats.Cells != 9 {
		t.Fatalf("stats = %+v, want 1 batch sealed across the reopen", stats)
	}
}

// tamper flips content in the stored file via string replacement.
func tamper(t *testing.T, dir, old, new string) {
	t.Helper()
	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), old, new, 1)
	if mutated == string(data) {
		t.Fatalf("tamper target %q not found", old)
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsMiddleRecordTampering(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := appendCells(t, l, 5)
	l.Close()

	// Flip one byte of record 3's verdict (JSON stays well-formed).
	tamper(t, dir, `"config_hash":"`+recs[2].ConfigHash+`","verdict":"solved"`,
		`"config_hash":"`+recs[2].ConfigHash+`","verdict":"Solved"`)

	records, _, err := Read(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Verify(records, VerifyOptions{ArtifactRoot: dir})
	var brk *BreakError
	if !errors.As(err, &brk) {
		t.Fatalf("Verify = %v, want a BreakError", err)
	}
	if brk.Seq != 3 {
		t.Fatalf("break reported at record %d, want 3 (the mutated record): %v", brk.Seq, err)
	}
}

func TestVerifyDetectsHeadTampering(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCells(t, l, 3)
	l.Close()

	// The head record's metrics: 3 cells, no batch yet, so seq 3 is last.
	tamper(t, dir, `"solved_trials":2`, `"solved_trials":3`)

	records, _, err := Read(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Verify(records, VerifyOptions{ArtifactRoot: dir})
	var brk *BreakError
	if !errors.As(err, &brk) {
		t.Fatalf("Verify = %v, want a BreakError", err)
	}
	if brk.Seq != 3 {
		t.Fatalf("break reported at record %d, want the head record 3: %v", brk.Seq, err)
	}
}

func TestVerifyDetectsArtifactTampering(t *testing.T) {
	dir := t.TempDir()
	artPath := filepath.Join(dir, "cell.json")
	if err := os.WriteFile(artPath, []byte(`{"solved":true,"episodes":463}`), 0o644); err != nil {
		t.Fatal(err)
	}
	digest, err := HashFile(artPath)
	if err != nil {
		t.Fatal(err)
	}

	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCells(t, l, 1, Artifact{Path: "cell.json", SHA256: digest})
	appendCells(t, l, 1)
	l.Close()

	records, _, err := Read(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(records, VerifyOptions{ArtifactRoot: dir}); err != nil {
		t.Fatalf("honest verify: %v", err)
	}

	// Single-byte mutation of the referenced results file.
	if err := os.WriteFile(artPath, []byte(`{"solved":true,"episodes":464}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Verify(records, VerifyOptions{ArtifactRoot: dir})
	var brk *BreakError
	if !errors.As(err, &brk) {
		t.Fatalf("Verify = %v, want a BreakError", err)
	}
	if brk.Seq != 1 || brk.Artifact != "cell.json" {
		t.Fatalf("break = seq %d artifact %q, want seq 1 cell.json: %v", brk.Seq, brk.Artifact, err)
	}

	// SkipArtifacts ignores the file mutation (chain is still intact).
	if _, err := Verify(records, VerifyOptions{SkipArtifacts: true}); err != nil {
		t.Fatalf("SkipArtifacts verify: %v", err)
	}
}

func TestVerifyDetectsBatchRootTampering(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCells(t, l, 8) // seals one batch at seq 9
	l.Close()

	tamper(t, dir, `"batch_count":8`, `"batch_count":7`)
	records, _, err := Read(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Verify(records, VerifyOptions{ArtifactRoot: dir})
	var brk *BreakError
	if !errors.As(err, &brk) {
		t.Fatalf("Verify = %v, want a BreakError", err)
	}
	if brk.Seq != 9 {
		t.Fatalf("break reported at record %d, want the batch record 9: %v", brk.Seq, err)
	}
}

func TestOpenRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCells(t, l, 3)
	l.Close()

	// Simulate a SIGKILL mid-append: half a record at the end.
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"seq":4,"kind":"cell","metr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open on torn ledger: %v", err)
	}
	if !l2.Truncated() {
		t.Fatal("torn tail not reported")
	}
	if l2.Len() != 3 {
		t.Fatalf("recovered %d records, want 3", l2.Len())
	}
	appendCells(t, l2, 1)
	l2.Close()

	stats, err := mustVerifyFile(t, dir, VerifyOptions{ArtifactRoot: dir})
	if err != nil {
		t.Fatalf("Verify after recovery: %v", err)
	}
	if stats.Records != 4 {
		t.Fatalf("got %d records after recovery+append, want 4", stats.Records)
	}
}

func TestMerkleRoot(t *testing.T) {
	a, b, c := hashHex([]byte("a")), hashHex([]byte("b")), hashHex([]byte("c"))
	if merkleRoot(nil) != hashHex(nil) {
		t.Error("empty root")
	}
	if merkleRoot([]string{a}) != a {
		t.Error("singleton root must be the leaf itself")
	}
	ab := hashHex([]byte(a + b))
	if got := merkleRoot([]string{a, b}); got != ab {
		t.Errorf("pair root = %s, want %s", got, ab)
	}
	want := hashHex([]byte(ab + c))
	if got := merkleRoot([]string{a, b, c}); got != want {
		t.Errorf("odd root = %s, want %s (unpaired leaf promoted)", got, want)
	}
}

func TestLatestByConfigPrefersNewest(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash := HashOrDie(t, "same-cell")
	if _, err := l.Append(Record{Kind: KindCell, ConfigHash: hash, Verdict: "timeout"}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Kind: KindCell, ConfigHash: hash, Verdict: "solved"}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := l2.LatestByConfig()
	if rec, ok := got[hash]; !ok || rec.Verdict != "solved" {
		t.Fatalf("LatestByConfig = %+v, want the newest (solved) record", rec)
	}
}
