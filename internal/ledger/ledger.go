// Package ledger is the tamper-evident run store behind cmd/grid: an
// append-only JSONL file where every record carries the hash of its
// predecessor, periodic records seal a Merkle root over the batch since
// the previous seal, and records reference result artifacts by content
// digest. Verify walks the chain end to end — recomputing record hashes,
// link hashes, batch roots and artifact digests — and reports the exact
// first break, so any single-byte mutation of a past record or of a
// referenced results file is caught and named.
//
// The threat model is accidental or casual tampering (hand-edited result
// files, a crashed writer, a stale artifact): the chain proves internal
// consistency. An adversary who rewrites the whole suffix of the file
// can of course recompute every hash; pinning the head hash somewhere
// external (the Verify -head option, a CI artifact, a commit message)
// closes that hole, which is why Append returns it and cmd/grid prints
// it after every run.
package ledger

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// SchemaVersion is stamped into every record as "v". Hash computation
// covers it, so records from a future incompatible layout fail
// verification rather than silently misparse.
const SchemaVersion = 1

// FileName is the ledger file inside the ledger directory.
const FileName = "ledger.jsonl"

// DefaultBatchSize is the Merkle seal cadence: after this many unsealed
// records a batch record is appended automatically.
const DefaultBatchSize = 8

// Record kinds.
const (
	// KindCell is one completed experiment cell (a verdict).
	KindCell = "cell"
	// KindBatch seals the records since the previous batch record under
	// a Merkle root.
	KindBatch = "batch"
	// KindReport registers emitted report artifacts (paper tables) so
	// they are digest-protected like cell artifacts.
	KindReport = "report"
)

// Artifact is a content-addressed reference to a results file, path
// relative to the verification root (the directory cmd/grid ran in).
type Artifact struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
}

// Record is one line of the ledger. Seq, PrevHash and Hash are filled by
// Append; everything else is the caller's payload.
type Record struct {
	// V is SchemaVersion at write time.
	V int `json:"v"`
	// Seq is the 1-based position in the chain.
	Seq int `json:"seq"`
	// Time is the RFC3339 append timestamp.
	Time string `json:"time,omitempty"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Cell is the human-readable cell identifier (env/design/qformat/hidden).
	Cell string `json:"cell,omitempty"`
	// ConfigHash is the canonical hash of the cell's full configuration —
	// the resume key: a matrix cell whose config hash already has a
	// verdict in the ledger is skipped.
	ConfigHash string `json:"config_hash,omitempty"`
	// GitSHA / GitDirty pin the commit the cell executed against.
	GitSHA   string `json:"git_sha,omitempty"`
	GitDirty bool   `json:"git_dirty,omitempty"`
	// Verdict is the cell outcome: "solved", "unsolved", "timeout".
	Verdict string `json:"verdict,omitempty"`
	// Metrics carries the cell's key numbers (solved_trials, trials,
	// mean_episodes, sec_<phase> breakdowns, wall_seconds, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Manifest is the cell's run-manifest artifact path (also listed in
	// Artifacts with its digest); the manifest ↔ ledger linkage.
	Manifest string `json:"manifest,omitempty"`
	// Artifacts are the digest-protected result files of this record.
	Artifacts []Artifact `json:"artifacts,omitempty"`
	// BatchRoot is the Merkle root over the hashes of the records since
	// the previous batch record (KindBatch only).
	BatchRoot string `json:"batch_root,omitempty"`
	// BatchCount is how many records the root covers (KindBatch only).
	BatchCount int `json:"batch_count,omitempty"`
	// PrevHash chains to the predecessor record (Genesis for Seq 1).
	PrevHash string `json:"prev_hash"`
	// Hash is the record's own hash: sha256 over the canonical JSON
	// encoding of the record with Hash itself blanked.
	Hash string `json:"hash"`
}

// Genesis is the PrevHash of the first record.
var Genesis = hashHex([]byte("oselmrl ledger genesis v1"))

func hashHex(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// recordHash computes a record's canonical hash: the JSON encoding with
// the Hash field blanked. encoding/json emits struct fields in
// declaration order, so the encoding is deterministic for a given
// SchemaVersion.
func recordHash(r Record) string {
	r.Hash = ""
	b, err := json.Marshal(r)
	if err != nil {
		// A Record is plain data; Marshal cannot fail on one.
		panic(fmt.Sprintf("ledger: marshaling record: %v", err))
	}
	return hashHex(b)
}

// HashConfig canonicalizes any JSON-serializable configuration value into
// a hex digest — the cell resume key. Map keys are sorted by Go's JSON
// encoder, so semantically equal configs hash equal.
func HashConfig(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("ledger: hashing config: %w", err)
	}
	return hashHex(b), nil
}

// HashFile digests a file's content.
func HashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("ledger: digesting %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// merkleRoot reduces a list of record hashes pairwise: each level hashes
// the concatenation of two children (an odd tail node is promoted
// unpaired). An empty batch roots to the hash of the empty string.
func merkleRoot(hashes []string) string {
	if len(hashes) == 0 {
		return hashHex(nil)
	}
	level := append([]string(nil), hashes...)
	for len(level) > 1 {
		next := make([]string, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashHex([]byte(level[i]+level[i+1])))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// Ledger is an open, appendable chain.
type Ledger struct {
	path      string
	f         *os.File
	records   []Record
	truncated bool
	batchSize int
	// sinceBatch holds the hashes of records appended after the last
	// batch record — the leaves of the next Merkle seal.
	sinceBatch []string
}

// Open opens (creating if needed) the ledger in dir for appending. A
// torn trailing line — the writer was killed mid-append — is dropped and
// the file truncated back to the last complete record; Truncated reports
// that this happened. Any earlier malformed line is a hard error: only
// the tail can legitimately be torn.
func Open(dir string) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	records, validLen, truncated, err := readRecords(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %s: %w", path, err)
	}
	if truncated {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: dropping torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l := &Ledger{path: path, f: f, records: records, truncated: truncated,
		batchSize: DefaultBatchSize}
	// Rebuild the pending-batch leaves so the next seal covers exactly
	// the records appended since the last batch record, across reopens.
	for _, r := range records {
		if r.Kind == KindBatch {
			l.sinceBatch = l.sinceBatch[:0]
		} else {
			l.sinceBatch = append(l.sinceBatch, r.Hash)
		}
	}
	return l, nil
}

// readRecords parses the ledger stream, returning the records, the byte
// length of the valid prefix, and whether a torn tail was dropped.
func readRecords(r io.Reader) (records []Record, validLen int64, truncated bool, err error) {
	br := bufio.NewReader(r)
	lineNo := 0
	for {
		line, rerr := br.ReadBytes('\n')
		lineNo++
		complete := len(line) > 0 && line[len(line)-1] == '\n'
		if len(bytes.TrimSpace(line)) > 0 {
			var rec Record
			if jerr := json.Unmarshal(line, &rec); jerr != nil {
				if complete && rerr == nil {
					return nil, 0, false, fmt.Errorf("line %d: %w", lineNo, jerr)
				}
				return records, validLen, true, nil
			}
			if !complete {
				// Parseable but unterminated: treat as torn — the writer
				// always terminates records, so the line may be cut inside
				// a trailing value.
				return records, validLen, true, nil
			}
			records = append(records, rec)
			validLen += int64(len(line))
		} else {
			validLen += int64(len(line))
		}
		if rerr != nil {
			if rerr == io.EOF {
				return records, validLen, truncated, nil
			}
			return nil, 0, false, rerr
		}
	}
}

// Truncated reports whether Open dropped a torn trailing line.
func (l *Ledger) Truncated() bool { return l.truncated }

// Records returns the chain in order. The slice is shared; callers must
// not mutate it.
func (l *Ledger) Records() []Record { return l.records }

// Len returns the number of records.
func (l *Ledger) Len() int { return len(l.records) }

// Head returns the hash of the last record (Genesis for an empty chain)
// — the value to pin externally for suffix-rewrite detection.
func (l *Ledger) Head() string {
	if len(l.records) == 0 {
		return Genesis
	}
	return l.records[len(l.records)-1].Hash
}

// SetBatchSize overrides the Merkle seal cadence (n < 1 disables
// automatic sealing).
func (l *Ledger) SetBatchSize(n int) { l.batchSize = n }

// LatestByConfig indexes the newest cell record per config hash — the
// grid resumer's skip set.
func (l *Ledger) LatestByConfig() map[string]Record {
	out := make(map[string]Record)
	for _, r := range l.records {
		if r.Kind == KindCell && r.ConfigHash != "" {
			out[r.ConfigHash] = r
		}
	}
	return out
}

// Append chains and persists one record: Seq, V, PrevHash and Hash are
// filled, the line is written and fsynced (a SIGKILL after Append
// returns cannot lose the record), and — at the batch cadence — a
// sealing batch record is appended behind it. The stored record is
// returned.
func (l *Ledger) Append(r Record) (Record, error) {
	stored, err := l.appendOne(r)
	if err != nil {
		return Record{}, err
	}
	if r.Kind != KindBatch && l.batchSize > 0 && len(l.sinceBatch) >= l.batchSize {
		if _, err := l.appendOne(Record{
			Kind:       KindBatch,
			Time:       r.Time,
			BatchRoot:  merkleRoot(l.sinceBatch),
			BatchCount: len(l.sinceBatch),
		}); err != nil {
			return Record{}, err
		}
	}
	return stored, nil
}

func (l *Ledger) appendOne(r Record) (Record, error) {
	r.V = SchemaVersion
	r.Seq = len(l.records) + 1
	r.PrevHash = l.Head()
	r.Hash = recordHash(r)
	line, err := json.Marshal(r)
	if err != nil {
		return Record{}, fmt.Errorf("ledger: %w", err)
	}
	line = append(line, '\n')
	if _, err := l.f.Write(line); err != nil {
		return Record{}, fmt.Errorf("ledger: appending record %d: %w", r.Seq, err)
	}
	if err := l.f.Sync(); err != nil {
		return Record{}, fmt.Errorf("ledger: syncing record %d: %w", r.Seq, err)
	}
	l.records = append(l.records, r)
	if r.Kind == KindBatch {
		l.sinceBatch = l.sinceBatch[:0]
	} else {
		l.sinceBatch = append(l.sinceBatch, r.Hash)
	}
	return r, nil
}

// Close releases the file handle.
func (l *Ledger) Close() error { return l.f.Close() }

// Read loads a ledger file read-only (no truncation repair): records
// plus whether a torn tail was dropped from the returned slice.
func Read(path string) (records []Record, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	records, _, truncated, err = readRecords(f)
	if err != nil {
		return nil, false, fmt.Errorf("ledger: %s: %w", path, err)
	}
	return records, truncated, nil
}

// BreakError names the first broken link Verify found.
type BreakError struct {
	// Seq is the 1-based record at which the chain breaks (0 when the
	// break is not attributable to a record, e.g. a head mismatch).
	Seq int
	// Cell is the record's cell label, when it has one.
	Cell string
	// Artifact is the offending artifact path for digest breaks.
	Artifact string
	// Reason describes the break.
	Reason string
}

func (e *BreakError) Error() string {
	msg := "ledger: verification failed"
	if e.Seq > 0 {
		msg += fmt.Sprintf(" at record %d", e.Seq)
		if e.Cell != "" {
			msg += fmt.Sprintf(" (%s)", e.Cell)
		}
	}
	if e.Artifact != "" {
		msg += fmt.Sprintf(", artifact %s", e.Artifact)
	}
	return msg + ": " + e.Reason
}

// VerifyStats summarizes a successful verification.
type VerifyStats struct {
	// Records, Batches and Artifacts count what was checked.
	Records   int
	Batches   int
	Artifacts int
	// Head is the verified chain head hash.
	Head string
	// Cells counts cell records.
	Cells int
}

// VerifyOptions tune Verify.
type VerifyOptions struct {
	// ArtifactRoot resolves relative artifact paths ("." when empty).
	ArtifactRoot string
	// SkipArtifacts verifies only the chain, not file digests (the
	// summarize path, which may run far from the artifacts).
	SkipArtifacts bool
	// ExpectHead, when non-empty, additionally requires the chain head
	// to equal this hash — the external anchor closing the
	// suffix-rewrite hole.
	ExpectHead string
}

// Verify walks the chain: sequence numbers, prev-hash links, recomputed
// record hashes, recomputed Merkle batch roots, and recomputed artifact
// digests. The first inconsistency is returned as a *BreakError naming
// the exact record (and artifact, if any); a clean chain returns stats.
func Verify(records []Record, opts VerifyOptions) (*VerifyStats, error) {
	root := opts.ArtifactRoot
	if root == "" {
		root = "."
	}
	stats := &VerifyStats{Head: Genesis}
	prev := Genesis
	var leaves []string
	for i, r := range records {
		seq := i + 1
		brk := func(reason string) error {
			return &BreakError{Seq: seq, Cell: r.Cell, Reason: reason}
		}
		if r.Seq != seq {
			return nil, brk(fmt.Sprintf("sequence number %d out of order (want %d)", r.Seq, seq))
		}
		if r.V <= 0 || r.V > SchemaVersion {
			return nil, brk(fmt.Sprintf("unsupported schema version %d (supported: 1..%d)", r.V, SchemaVersion))
		}
		if r.PrevHash != prev {
			return nil, brk("prev_hash does not match the preceding record — a record was altered, inserted or removed")
		}
		if got := recordHash(r); got != r.Hash {
			return nil, brk("stored hash does not match the record content — the record was altered")
		}
		switch r.Kind {
		case KindBatch:
			if got := merkleRoot(leaves); got != r.BatchRoot {
				return nil, brk("batch Merkle root does not match the sealed records")
			}
			if r.BatchCount != len(leaves) {
				return nil, brk(fmt.Sprintf("batch seals %d records but %d were appended since the last seal", r.BatchCount, len(leaves)))
			}
			leaves = leaves[:0]
			stats.Batches++
		default:
			leaves = append(leaves, r.Hash)
			if r.Kind == KindCell {
				stats.Cells++
			}
		}
		if !opts.SkipArtifacts {
			for _, a := range r.Artifacts {
				got, err := HashFile(filepath.Join(root, a.Path))
				if err != nil {
					return nil, &BreakError{Seq: seq, Cell: r.Cell, Artifact: a.Path,
						Reason: fmt.Sprintf("artifact unreadable: %v", err)}
				}
				if got != a.SHA256 {
					return nil, &BreakError{Seq: seq, Cell: r.Cell, Artifact: a.Path,
						Reason: "artifact digest does not match the ledger — the results file was altered"}
				}
				stats.Artifacts++
			}
		}
		prev = r.Hash
		stats.Records++
		stats.Head = r.Hash
	}
	if opts.ExpectHead != "" && stats.Head != opts.ExpectHead {
		return nil, &BreakError{Reason: fmt.Sprintf("chain head %s does not match the pinned head %s — the ledger suffix was rewritten", short(stats.Head), short(opts.ExpectHead))}
	}
	return stats, nil
}

// short abbreviates a hash for messages.
func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// SortedCells returns the cell records ordered by cell label then seq —
// the stable iteration order behind the deterministic paper tables.
func SortedCells(records []Record) []Record {
	var cells []Record
	for _, r := range records {
		if r.Kind == KindCell {
			cells = append(cells, r)
		}
	}
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Cell != cells[j].Cell {
			return cells[i].Cell < cells[j].Cell
		}
		return cells[i].Seq < cells[j].Seq
	})
	return cells
}
