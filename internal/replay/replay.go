// Package replay provides the two experience stores the paper uses:
//
//   - Buffer: the classic ring-buffer experience replay with uniform random
//     sampling that the DQN baseline needs (paper §2.4). Its size is the
//     very memory cost the paper argues makes DQN infeasible on edge
//     devices.
//   - InitStore: the small Ñ-slot buffer D of Algorithm 1 that the ELM and
//     OS-ELM Q-Networks fill once to run their initial training; after the
//     initial training OS-ELM needs no buffer at all (the "random update"
//     replaces replay, §3.2).
package replay

import "oselmrl/internal/rng"

// Transition is one (sₜ, aₜ, rₜ, sₜ₊₁, dₜ) tuple (Algorithm 1 line 15).
type Transition struct {
	State     []float64
	Action    int
	Reward    float64
	NextState []float64
	Done      bool
}

// Buffer is a fixed-capacity ring buffer with uniform sampling.
type Buffer struct {
	data  []Transition
	next  int
	count int
}

// NewBuffer allocates a buffer with the given capacity.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic("replay: capacity must be positive")
	}
	return &Buffer{data: make([]Transition, capacity)}
}

// Add stores a transition, evicting the oldest when full.
func (b *Buffer) Add(t Transition) {
	b.data[b.next] = t
	b.next = (b.next + 1) % len(b.data)
	if b.count < len(b.data) {
		b.count++
	}
}

// Len returns the number of stored transitions.
func (b *Buffer) Len() int { return b.count }

// Cap returns the buffer capacity.
func (b *Buffer) Cap() int { return len(b.data) }

// Sample draws n transitions uniformly with replacement. It panics if the
// buffer is empty.
func (b *Buffer) Sample(r *rng.RNG, n int) []Transition {
	if b.count == 0 {
		panic("replay: sampling from empty buffer")
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = b.data[r.Intn(b.count)]
	}
	return out
}

// Clear empties the buffer (agent reinitialization).
func (b *Buffer) Clear() {
	b.next = 0
	b.count = 0
}

// MemoryBytes estimates the buffer's storage footprint assuming float64
// observations of the given width — the quantity the paper's edge-device
// argument is about.
func (b *Buffer) MemoryBytes(obsWidth int) int {
	perTransition := 2*obsWidth*8 + 8 + 8 + 1 // two states, reward, action, done
	return len(b.data) * perTransition
}

// InitStore is Algorithm 1's buffer D: it accumulates exactly capacity
// transitions for the one-time initial training, then reports full.
type InitStore struct {
	data     []Transition
	capacity int
}

// NewInitStore allocates the Ñ-slot store.
func NewInitStore(capacity int) *InitStore {
	if capacity <= 0 {
		panic("replay: init store capacity must be positive")
	}
	return &InitStore{capacity: capacity}
}

// Add appends a transition while the store has room; once full, further
// adds are dropped (Algorithm 1 only stores until len(D) == Ñ).
func (s *InitStore) Add(t Transition) {
	if len(s.data) < s.capacity {
		s.data = append(s.data, t)
	}
}

// Full reports len(D) == Ñ (Algorithm 1 line 17).
func (s *InitStore) Full() bool { return len(s.data) == s.capacity }

// Len returns the number of stored transitions.
func (s *InitStore) Len() int { return len(s.data) }

// Cap returns the store capacity Ñ.
func (s *InitStore) Cap() int { return s.capacity }

// Drain returns the stored transitions and empties the store.
func (s *InitStore) Drain() []Transition {
	out := s.data
	s.data = nil
	return out
}

// Clear empties the store (agent reinitialization).
func (s *InitStore) Clear() { s.data = nil }
