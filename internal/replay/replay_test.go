package replay

import (
	"testing"
	"testing/quick"

	"oselmrl/internal/rng"
)

func tr(id int) Transition {
	return Transition{
		State:     []float64{float64(id)},
		Action:    id % 2,
		Reward:    float64(id),
		NextState: []float64{float64(id + 1)},
		Done:      id%10 == 0,
	}
}

func TestBufferFillAndEvict(t *testing.T) {
	b := NewBuffer(3)
	if b.Cap() != 3 || b.Len() != 0 {
		t.Fatalf("fresh buffer cap=%d len=%d", b.Cap(), b.Len())
	}
	for i := 1; i <= 3; i++ {
		b.Add(tr(i))
		if b.Len() != i {
			t.Fatalf("len after %d adds = %d", i, b.Len())
		}
	}
	// Fourth add evicts the oldest; Len stays at capacity.
	b.Add(tr(4))
	if b.Len() != 3 {
		t.Errorf("len after eviction = %d", b.Len())
	}
	// The evicted transition (id=1) must never be sampled again.
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		s := b.Sample(r, 1)[0]
		if s.Reward == 1 {
			t.Fatal("evicted transition sampled")
		}
	}
}

func TestBufferSampleDistribution(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 4; i++ {
		b.Add(tr(i))
	}
	r := rng.New(2)
	counts := make(map[float64]int)
	for _, s := range b.Sample(r, 4000) {
		counts[s.Reward]++
	}
	for i := 0; i < 4; i++ {
		if c := counts[float64(i)]; c < 700 {
			t.Errorf("transition %d sampled %d/4000 times", i, c)
		}
	}
}

func TestBufferSampleEmptyPanics(t *testing.T) {
	b := NewBuffer(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Sample(rng.New(3), 1)
}

func TestBufferClear(t *testing.T) {
	b := NewBuffer(2)
	b.Add(tr(1))
	b.Clear()
	if b.Len() != 0 {
		t.Error("Clear must empty the buffer")
	}
}

func TestBufferInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuffer(0)
}

func TestBufferMemoryBytes(t *testing.T) {
	b := NewBuffer(1000)
	// 4-wide observations: 2*4*8 + 8 + 8 + 1 = 81 bytes per transition.
	if got := b.MemoryBytes(4); got != 81000 {
		t.Errorf("MemoryBytes = %d", got)
	}
	// The paper's edge argument: the DQN buffer dwarfs OS-ELM's Ñ-slot one.
	small := NewInitStore(64)
	if small.Cap()*81 >= b.MemoryBytes(4) {
		t.Error("init store must be far smaller than the replay buffer")
	}
}

func TestInitStoreFillsExactly(t *testing.T) {
	s := NewInitStore(3)
	for i := 0; i < 5; i++ {
		s.Add(tr(i))
	}
	if !s.Full() || s.Len() != 3 {
		t.Fatalf("full=%v len=%d", s.Full(), s.Len())
	}
	got := s.Drain()
	if len(got) != 3 {
		t.Fatalf("drained %d", len(got))
	}
	// The first three adds are kept, later ones dropped.
	for i, g := range got {
		if g.Reward != float64(i) {
			t.Errorf("drained[%d].Reward = %v", i, g.Reward)
		}
	}
	if s.Len() != 0 || s.Full() {
		t.Error("Drain must empty the store")
	}
}

func TestInitStoreClear(t *testing.T) {
	s := NewInitStore(2)
	s.Add(tr(1))
	s.Clear()
	if s.Len() != 0 {
		t.Error("Clear failed")
	}
}

func TestInitStoreInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewInitStore(-1)
}

// Property: a buffer never reports more than capacity and sampling returns
// only stored values.
func TestPropertyBufferInvariants(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		capacity := int(n%20) + 1
		b := NewBuffer(capacity)
		r := rng.New(seed)
		total := int(seed%50) + 1
		for i := 0; i < total; i++ {
			b.Add(tr(i))
			if b.Len() > capacity {
				return false
			}
		}
		lo := total - capacity
		if lo < 0 {
			lo = 0
		}
		for _, s := range b.Sample(r, 20) {
			if int(s.Reward) < lo || int(s.Reward) >= total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
