package tabular

import (
	"testing"

	"oselmrl/internal/env"
	"oselmrl/internal/harness"
	"oselmrl/internal/replay"
)

func gridDiscretizer(t *testing.T, n int) *Discretizer {
	t.Helper()
	d, err := NewUniformDiscretizer([]float64{0, 0}, []float64{1.0001, 1.0001}, n)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiscretizerIndexing(t *testing.T) {
	d := gridDiscretizer(t, 3)
	if d.States() != 9 {
		t.Fatalf("states = %d", d.States())
	}
	// Distinct cells for distinct grid positions.
	seen := map[int]bool{}
	for _, pos := range [][]float64{{0, 0}, {0, 0.5}, {0, 1}, {0.5, 0}, {1, 1}} {
		idx := d.Index(pos)
		if idx < 0 || idx >= 9 {
			t.Fatalf("index %d out of range", idx)
		}
		seen[idx] = true
	}
	if len(seen) != 5 {
		t.Errorf("positions collided: %v", seen)
	}
	// Out-of-range values clamp.
	if d.Index([]float64{-5, 7}) != d.Index([]float64{0, 1.0001 - 1e-9}) {
		t.Error("clamping broken")
	}
}

func TestDiscretizerValidation(t *testing.T) {
	if _, err := NewUniformDiscretizer([]float64{0}, []float64{0}, 3); err == nil {
		t.Error("empty range must fail")
	}
	if _, err := NewUniformDiscretizer([]float64{0}, []float64{1, 2}, 3); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := NewUniformDiscretizer([]float64{0}, []float64{1}, 0); err == nil {
		t.Error("zero bins must fail")
	}
}

func TestConfigValidation(t *testing.T) {
	d := gridDiscretizer(t, 3)
	bad := DefaultConfig(0)
	if _, err := New(bad, d); err == nil {
		t.Error("zero actions must fail")
	}
	bad2 := DefaultConfig(2)
	bad2.Alpha = 0
	if _, err := New(bad2, d); err == nil {
		t.Error("zero alpha must fail")
	}
	if _, err := New(DefaultConfig(2), nil); err == nil {
		t.Error("nil discretizer must fail")
	}
}

func TestQUpdateMovesTowardTarget(t *testing.T) {
	d := gridDiscretizer(t, 2)
	a := MustNew(DefaultConfig(2), d)
	s := []float64{0, 0}
	if a.Q(s, 1) != 0 {
		t.Fatal("fresh table must be zero")
	}
	for i := 0; i < 100; i++ {
		if err := a.Observe(replay.Transition{State: s, Action: 1, Reward: 1, NextState: s, Done: true}); err != nil {
			t.Fatal(err)
		}
	}
	if q := a.Q(s, 1); q < 0.95 {
		t.Errorf("Q after repeated reward-1 updates = %v", q)
	}
	if q := a.Q(s, 0); q != 0 {
		t.Errorf("untouched action Q = %v", q)
	}
}

// TestTabularSolvesGridWorld: the reference agent masters GridWorld — the
// ground truth the function-approximation agents are compared against.
func TestTabularSolvesGridWorld(t *testing.T) {
	g := env.NewGridWorld(4, 5)
	d := gridDiscretizer(t, 4)
	cfg := DefaultConfig(g.ActionCount())
	cfg.Seed = 7
	a := MustNew(cfg, d)
	for ep := 1; ep <= 500; ep++ {
		s := g.Reset()
		for {
			act := a.SelectAction(s)
			ns, r, done := g.Step(act)
			if err := a.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
				t.Fatal(err)
			}
			s = ns
			if done {
				break
			}
		}
		a.EndEpisode(ep)
	}
	// Optimal path on a 4x4 grid is 6 moves.
	score := harness.EvaluateGreedy(a, g, 5, true)
	if score > 6.5 {
		t.Errorf("tabular greedy path = %v moves, optimal is 6", score)
	}
}

// TestAgreementWithDQN: on the same grid, tabular and DQN greedy policies
// agree on the first move from the start state (both must head toward the
// goal). Validates the function approximators against ground truth.
func TestAgreementWithDQN(t *testing.T) {
	g := env.NewGridWorld(3, 9)
	d := gridDiscretizer(t, 3)
	cfg := DefaultConfig(g.ActionCount())
	cfg.Seed = 7
	a := MustNew(cfg, d)
	for ep := 1; ep <= 400; ep++ {
		s := g.Reset()
		for {
			act := a.SelectAction(s)
			ns, r, done := g.Step(act)
			if err := a.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
				t.Fatal(err)
			}
			s = ns
			if done {
				break
			}
		}
		a.EndEpisode(ep)
	}
	start := g.Reset()
	move := a.GreedyAction(start)
	// From (0,0) the optimal first moves are right (1) or down (2).
	if move != 1 && move != 2 {
		t.Errorf("tabular first move = %d, optimal is right or down", move)
	}
}

func TestReinitialize(t *testing.T) {
	d := gridDiscretizer(t, 2)
	a := MustNew(DefaultConfig(2), d)
	s := []float64{0, 0}
	if err := a.Observe(replay.Transition{State: s, Action: 0, Reward: 1, NextState: s, Done: true}); err != nil {
		t.Fatal(err)
	}
	a.EndEpisode(1)
	a.Reinitialize()
	if a.Q(s, 0) != 0 {
		t.Error("table must be zeroed")
	}
}

// The harness contract holds end to end.
func TestHarnessIntegration(t *testing.T) {
	g := env.NewGridWorld(3, 11)
	d := gridDiscretizer(t, 3)
	cfg := DefaultConfig(g.ActionCount())
	cfg.Seed = 3
	a := MustNew(cfg, d)
	rc := harness.Config{MaxEpisodes: 200, SolveWindow: 20, SolveThreshold: 1e18, ScoreIsSteps: false, RecordCurve: true}
	res := harness.Run(a, g, rc)
	if res.Episodes != 200 || len(res.Curve) != 200 {
		t.Errorf("episodes %d curve %d", res.Episodes, len(res.Curve))
	}
}
