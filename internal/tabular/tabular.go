// Package tabular implements classic table-based Q-learning (Watkins,
// 1989). It serves as the ground-truth reference the function-
// approximation agents are validated against: on a small discrete task
// (GridWorld) tabular Q-learning provably converges to the optimal
// policy, so any correct ELM/OS-ELM/DQN agent must reach the same greedy
// decisions there. The discretizer also lets it run on continuous tasks
// as a crude baseline.
package tabular

import (
	"fmt"
	"math"

	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
	"oselmrl/internal/timing"
)

// Discretizer maps a continuous observation to a table index.
type Discretizer struct {
	// Low and High bound each dimension; values clamp to the range.
	Low, High []float64
	// Bins is the number of cells per dimension.
	Bins []int
}

// NewUniformDiscretizer builds a discretizer with the same bin count per
// dimension.
func NewUniformDiscretizer(low, high []float64, bins int) (*Discretizer, error) {
	if len(low) != len(high) || len(low) == 0 {
		return nil, fmt.Errorf("tabular: bounds length mismatch %d/%d", len(low), len(high))
	}
	if bins < 1 {
		return nil, fmt.Errorf("tabular: bins must be >= 1")
	}
	b := make([]int, len(low))
	for i := range b {
		if !(high[i] > low[i]) {
			return nil, fmt.Errorf("tabular: empty range in dimension %d", i)
		}
		b[i] = bins
	}
	return &Discretizer{Low: append([]float64(nil), low...), High: append([]float64(nil), high...), Bins: b}, nil
}

// States returns the table size.
func (d *Discretizer) States() int {
	n := 1
	for _, b := range d.Bins {
		n *= b
	}
	return n
}

// Index maps an observation to its cell index.
func (d *Discretizer) Index(obs []float64) int {
	if len(obs) != len(d.Bins) {
		panic(fmt.Sprintf("tabular: observation length %d, discretizer expects %d", len(obs), len(d.Bins)))
	}
	idx := 0
	for i, v := range obs {
		cell := int(float64(d.Bins[i]) * (v - d.Low[i]) / (d.High[i] - d.Low[i]))
		if cell < 0 {
			cell = 0
		}
		if cell >= d.Bins[i] {
			cell = d.Bins[i] - 1
		}
		idx = idx*d.Bins[i] + cell
	}
	return idx
}

// Config holds the Q-learning hyperparameters.
type Config struct {
	// Actions is the number of discrete actions.
	Actions int
	// Alpha is the learning rate.
	Alpha float64
	// Gamma is the discount rate.
	Gamma float64
	// Epsilon1 is the greedy probability (Algorithm 1's convention).
	Epsilon1 float64
	// ExploreDecay anneals exploration per episode, as in qnet.
	ExploreDecay float64
	// Seed drives the exploration stream.
	Seed uint64
}

// DefaultConfig returns standard tabular settings.
func DefaultConfig(actions int) Config {
	return Config{Actions: actions, Alpha: 0.2, Gamma: 0.99, Epsilon1: 0.7, ExploreDecay: 0.99, Seed: 1}
}

// Agent is a tabular Q-learner implementing the harness Agent contract.
type Agent struct {
	cfg  Config
	disc *Discretizer
	q    []float64 // states × actions, row-major
	rng  *rng.RNG

	exploreProb float64
	counters    *timing.Counters
}

// New builds the agent over a discretizer.
func New(cfg Config, disc *Discretizer) (*Agent, error) {
	if cfg.Actions <= 0 {
		return nil, fmt.Errorf("tabular: actions must be positive")
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("tabular: alpha %g outside (0, 1]", cfg.Alpha)
	}
	if disc == nil {
		return nil, fmt.Errorf("tabular: discretizer required")
	}
	a := &Agent{
		cfg:      cfg,
		disc:     disc,
		q:        make([]float64, disc.States()*cfg.Actions),
		rng:      rng.New(cfg.Seed),
		counters: timing.NewCounters(),
	}
	a.exploreProb = 1 - cfg.Epsilon1
	return a, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config, disc *Discretizer) *Agent {
	a, err := New(cfg, disc)
	if err != nil {
		panic(err)
	}
	return a
}

// Name implements the harness contract.
func (a *Agent) Name() string { return "Tabular-Q" }

// Counters implements the harness contract; table lookups are free
// relative to the matrix designs, so only seq_train-equivalent updates are
// tracked (4 flops each).
func (a *Agent) Counters() *timing.Counters { return a.counters }

func (a *Agent) row(state []float64) []float64 {
	i := a.disc.Index(state)
	return a.q[i*a.cfg.Actions : (i+1)*a.cfg.Actions]
}

// GreedyAction returns argmax with random tie-breaking.
func (a *Agent) GreedyAction(state []float64) int {
	row := a.row(state)
	best, arg, ties := math.Inf(-1), 0, 0
	for i, v := range row {
		switch {
		case v > best:
			best, arg, ties = v, i, 1
		case v == best:
			ties++
			if a.rng.Intn(ties) == 0 {
				arg = i
			}
		}
	}
	return arg
}

// SelectAction is ε-greedy.
func (a *Agent) SelectAction(state []float64) int {
	if a.rng.Float64() < a.exploreProb {
		return a.rng.Intn(a.cfg.Actions)
	}
	return a.GreedyAction(state)
}

// Observe applies the Q-learning update
// Q(s,a) += α (r + γ(1-d) max Q(s',·) − Q(s,a)).
func (a *Agent) Observe(t replay.Transition) error {
	row := a.row(t.State)
	target := t.Reward
	if !t.Done {
		next := a.row(t.NextState)
		best := math.Inf(-1)
		for _, v := range next {
			if v > best {
				best = v
			}
		}
		target += a.cfg.Gamma * best
	}
	row[t.Action] += a.cfg.Alpha * (target - row[t.Action])
	a.counters.Add(timing.PhaseSeqTrain, 4)
	return nil
}

// EndEpisode anneals exploration.
func (a *Agent) EndEpisode(int) {
	if a.cfg.ExploreDecay > 0 && a.cfg.ExploreDecay <= 1 {
		a.exploreProb *= a.cfg.ExploreDecay
	}
}

// Reinitialize zeroes the table and restores exploration.
func (a *Agent) Reinitialize() {
	for i := range a.q {
		a.q[i] = 0
	}
	a.exploreProb = 1 - a.cfg.Epsilon1
}

// Q returns Q(s, a) for inspection.
func (a *Agent) Q(state []float64, action int) float64 { return a.row(state)[action] }
