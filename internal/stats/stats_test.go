package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"oselmrl/internal/rng"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %v", s.Mean)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %v want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Error("empty summary must be zero")
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.Median != 3 {
		t.Errorf("single-value summary %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%g = %v want %v", c.p, got, c.want)
		}
	}
	// Out-of-range p clamps.
	if Percentile(xs, -5) != 1 || Percentile(xs, 200) != 5 {
		t.Error("percentile clamping failed")
	}
	// Input must not be mutated (sorted copy).
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestConfidenceInterval(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 10000)
	r.FillNormal(xs, 10, 2)
	mean, hw := ConfidenceInterval95(xs)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %v", mean)
	}
	// Half width ≈ 1.96 * 2/sqrt(10000) ≈ 0.0392.
	if hw < 0.03 || hw > 0.05 {
		t.Errorf("half width = %v", hw)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, 1.5, -3}
	h := NewHistogram(xs, 4, 0, 1)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram lost values: %d", total)
	}
	// -3 clamps to bin 0; 1.5 clamps to the last bin.
	if h.Counts[0] < 3 { // 0.1, 0.2, -3
		t.Errorf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[3] < 2 { // 0.9, 1.5
		t.Errorf("bin 3 = %d", h.Counts[3])
	}
	if h.Mode() != 0 {
		t.Errorf("mode = %d", h.Mode())
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Error("render missing bars")
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(nil, 0, 0, 1)
}

func TestWelch(t *testing.T) {
	r := rng.New(2)
	a := make([]float64, 200)
	b := make([]float64, 200)
	r.FillNormal(a, 0, 1)
	r.FillNormal(b, 1, 1)
	tStat, df := Welch(a, b)
	if tStat > -5 {
		t.Errorf("clearly different means should give large negative t, got %v", tStat)
	}
	if df < 100 {
		t.Errorf("df = %v", df)
	}
	// Identical samples: t == 0.
	if tt, _ := Welch(a, a); tt != 0 {
		t.Errorf("self-test t = %v", tt)
	}
	// Degenerate inputs.
	if tt, dd := Welch([]float64{1}, []float64{2}); tt != 0 || dd != 0 {
		t.Error("tiny samples must return zeros")
	}
}

// Property: Summarize is translation-equivariant in the mean and
// translation-invariant in the std.
func TestPropertyTranslation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		r.FillUniform(xs, -10, 10)
		shift := r.Uniform(-100, 100)
		ys := make([]float64, n)
		for i, x := range xs {
			ys[i] = x + shift
		}
		sx, sy := Summarize(xs), Summarize(ys)
		return math.Abs(sy.Mean-(sx.Mean+shift)) < 1e-9 &&
			math.Abs(sy.Std-sx.Std) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: min <= P25 <= median <= P75 <= max.
func TestPropertyQuantileOrdering(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(40)
		xs := make([]float64, n)
		r.FillUniform(xs, -50, 50)
		s := Summarize(xs)
		return s.Min <= s.P25+1e-12 && s.P25 <= s.Median+1e-12 &&
			s.Median <= s.P75+1e-12 && s.P75 <= s.Max+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
