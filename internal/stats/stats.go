// Package stats provides the summary statistics the experiment reports
// use: central moments, percentiles, confidence intervals and fixed-width
// histograms. The paper reports averages over 100 trials (20 for the FPGA
// design); these helpers turn raw trial vectors into those summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
	P25, P75  float64
	// SE is the standard error of the mean.
	SE float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
		s.SE = s.Std / math.Sqrt(float64(len(xs)))
	}
	s.Median = Percentile(xs, 50)
	s.P25 = Percentile(xs, 25)
	s.P75 = Percentile(xs, 75)
	return s
}

// Percentile returns the p-th percentile (0..100) by linear interpolation
// between order statistics. It panics on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ConfidenceInterval95 returns the mean ± half-width of a normal-theory
// 95% confidence interval (z = 1.96). For the small trial counts here this
// slightly understates the width versus a t interval; it matches how such
// plots are usually annotated.
func ConfidenceInterval95(xs []float64) (mean, halfWidth float64) {
	s := Summarize(xs)
	return s.Mean, 1.96 * s.SE
}

// Histogram bins xs into n equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram with n bins; values outside [min, max]
// clamp to the edge bins. It panics for n <= 0 or an empty range.
func NewHistogram(xs []float64, n int, min, max float64) *Histogram {
	if n <= 0 || !(max > min) {
		panic(fmt.Sprintf("stats: invalid histogram spec n=%d range=[%g,%g]", n, min, max))
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, n)}
	width := (max - min) / float64(n)
	for _, x := range xs {
		i := int((x - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		h.Counts[i]++
	}
	return h
}

// Mode returns the index of the fullest bin.
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// Render draws an ASCII bar chart, one row per bin.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	binWidth := (h.Max - h.Min) / float64(len(h.Counts))
	var sb strings.Builder
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*binWidth
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&sb, "%10.3f | %-*s %d\n", lo, width, bar, c)
	}
	return sb.String()
}

// Welch performs Welch's unequal-variance t-test and returns the t
// statistic and approximate degrees of freedom — used to check whether two
// designs' episodes-to-solve distributions differ.
func Welch(a, b []float64) (t, df float64) {
	sa, sb := Summarize(a), Summarize(b)
	if sa.N < 2 || sb.N < 2 {
		return 0, 0
	}
	va := sa.Std * sa.Std / float64(sa.N)
	vb := sb.Std * sb.Std / float64(sb.N)
	if va+vb == 0 {
		return 0, 0
	}
	t = (sa.Mean - sb.Mean) / math.Sqrt(va+vb)
	df = (va + vb) * (va + vb) /
		(va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1))
	return t, df
}
