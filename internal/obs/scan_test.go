package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// sampleLog renders n well-formed event lines through the real sink so
// the truncation tests cut exactly what a killed writer would leave.
func sampleLog(t *testing.T, n int) string {
	t.Helper()
	var buf bytes.Buffer
	e := NewEmitter(NewJSONLSink(&buf))
	for i := 1; i <= n; i++ {
		e.Emit(EventEpisodeEnd, i, map[string]float64{"steps": float64(i * 100)})
	}
	if err := e.Close(); err != nil {
		t.Fatalf("closing sink: %v", err)
	}
	return buf.String()
}

func TestScanEventsPartialCompleteLog(t *testing.T) {
	log := sampleLog(t, 3)
	var got int
	truncated, err := ScanEventsPartial(strings.NewReader(log), func(*Event) error {
		got++
		return nil
	})
	if err != nil {
		t.Fatalf("ScanEventsPartial: %v", err)
	}
	if truncated {
		t.Fatal("complete log reported as truncated")
	}
	if got != 3 {
		t.Fatalf("decoded %d events, want 3", got)
	}
}

// A run killed mid-write tears the final record. ScanEventsPartial must
// deliver every complete event and flag the torn tail; ScanEvents (the
// strict scanner) must keep failing on the same input — the tolerance is
// opt-in.
func TestScanEventsPartialMidRecordTruncation(t *testing.T) {
	log := sampleLog(t, 3)
	// Cut inside the final record's JSON (12 bytes into its line).
	lastStart := strings.LastIndex(strings.TrimRight(log, "\n"), "\n") + 1
	torn := log[:lastStart+12]

	var got int
	truncated, err := ScanEventsPartial(strings.NewReader(torn), func(ev *Event) error {
		got++
		if ev.Type != EventEpisodeEnd {
			t.Fatalf("event %d: type %q", got, ev.Type)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ScanEventsPartial on torn log: %v", err)
	}
	if !truncated {
		t.Fatal("torn tail not reported as truncated")
	}
	if got != 2 {
		t.Fatalf("decoded %d events, want the 2 complete ones", got)
	}

	if err := ScanEvents(strings.NewReader(torn), func(*Event) error { return nil }); err == nil {
		t.Fatal("strict ScanEvents accepted a torn log")
	}
}

// A final line that parses but lacks its newline was cut mid-flush: the
// event is delivered (its content is valid JSON) but the log is flagged.
func TestScanEventsPartialMissingFinalNewline(t *testing.T) {
	log := strings.TrimRight(sampleLog(t, 2), "\n")
	var got int
	truncated, err := ScanEventsPartial(strings.NewReader(log), func(*Event) error {
		got++
		return nil
	})
	if err != nil {
		t.Fatalf("ScanEventsPartial: %v", err)
	}
	if got != 2 {
		t.Fatalf("decoded %d events, want 2", got)
	}
	if !truncated {
		t.Fatal("missing final newline not reported as truncated")
	}
}

// Corruption before the tail is tampering or a bug, never a torn write —
// still a hard error, carrying the line number.
func TestScanEventsPartialMidLogCorruptionFails(t *testing.T) {
	log := sampleLog(t, 3)
	lines := strings.SplitAfter(log, "\n")
	lines[1] = "{\"type\":\"episode_end\",&&&}\n"
	corrupt := strings.Join(lines, "")

	_, err := ScanEventsPartial(strings.NewReader(corrupt), func(*Event) error { return nil })
	if err == nil {
		t.Fatal("mid-log corruption accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name the corrupt line", err)
	}
}

func TestScanEventsPartialPropagatesFnError(t *testing.T) {
	log := sampleLog(t, 2)
	wantErr := errors.New("stop")
	calls := 0
	_, err := ScanEventsPartial(strings.NewReader(log), func(*Event) error {
		calls++
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want fn's error", err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times after erroring, want 1", calls)
	}
}
