package obs

import "strings"

// Labeled series on the flat registry. The Registry keys metrics by
// plain strings; a labeled series is a key of the form
//
//	name{k1=v1,k2=v2}
//
// built with Labeled. Consumers reading snapshots directly (manifests,
// /snapshot) see the flat key verbatim; the export layer's Prometheus
// renderer recognizes the shape and emits real labels
// (oselmrl_name_total{k1="v1",k2="v2"}). Label keys and values must be
// bare tokens — no commas, braces, '=' or quotes; the producers (the
// fpga device profiler) use fixed enum names, so nothing escapes.

// Labeled builds a labeled registry key from alternating key/value
// pairs: Labeled("fpga_cycles", "phase", "predict", "unit", "add") is
// "fpga_cycles{phase=predict,unit=add}". With no pairs (or an odd
// count, which is a programming error) the bare name is returned.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 || len(kv)%2 != 0 {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 2 + len(kv)*8)
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// SplitLabeled parses a Labeled key back into its base name and label
// pairs, in key order. A key without a well-formed label block returns
// the key unchanged with nil pairs.
func SplitLabeled(key string) (base string, pairs [][2]string) {
	i := strings.IndexByte(key, '{')
	if i < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	spec := key[i+1 : len(key)-1]
	if spec == "" {
		return key, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok || k == "" {
			return key, nil // malformed: treat the whole key as the name
		}
		pairs = append(pairs, [2]string{k, v})
	}
	return key[:i], pairs
}
