package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// ManifestSchemaVersion is bumped whenever a field changes meaning or is
// removed; additions are backwards-compatible and do not bump it. The
// current schema is documented in README.md §Observability and
// results/README.md.
const ManifestSchemaVersion = 1

// Manifest is the JSON header of a run: everything needed to trace a
// results file back to the exact configuration that produced it.
type Manifest struct {
	// SchemaVersion is ManifestSchemaVersion at write time.
	SchemaVersion int `json:"schema_version"`
	// Design is the paper design name ("OS-ELM-L2-Lipschitz", "DQN", ...).
	Design string `json:"design,omitempty"`
	// Env is the environment name.
	Env string `json:"env,omitempty"`
	// Hidden is Ñ, the hidden-layer width.
	Hidden int `json:"hidden,omitempty"`
	// Seed is the run seed (single runs) and BaseSeed/Trials describe a
	// repeated-trial sweep (trial i uses BaseSeed + i).
	Seed     uint64 `json:"seed,omitempty"`
	BaseSeed uint64 `json:"base_seed,omitempty"`
	Trials   int    `json:"trials,omitempty"`
	// QFormat is the fixed-point format of the FPGA datapath ("Q20");
	// empty for float-only designs. Additive field, schema unchanged.
	QFormat string `json:"qformat,omitempty"`
	// Config is the full run configuration (harness.Config for training
	// runs; tool-specific sweep parameters otherwise). Stored verbatim so
	// ReadManifest round-trips it without this package importing the
	// config's package.
	Config any `json:"config,omitempty"`
	// Start and End bound the run in wall-clock time.
	Start time.Time `json:"start"`
	End   time.Time `json:"end,omitempty"`
	// Outcome summarizes the result; nil while the run is in flight.
	Outcome *Outcome `json:"outcome,omitempty"`
	// Metrics is the final registry snapshot, when observability was on.
	Metrics *Snapshot `json:"metrics,omitempty"`
	// EventsPath points at the companion JSONL event log, if one was
	// written.
	EventsPath string `json:"events_path,omitempty"`
	// GitSHA is the commit the run executed against ("unknown" outside a
	// checkout) and GitDirty flags uncommitted changes — a dirty run may
	// not be reproducible from the SHA alone. Stamped by
	// cli.WriteManifestFile (internal/vcs); additive fields, schema
	// unchanged. Ledger records (internal/ledger) carry the same pair, so
	// a manifest and the ledger entry referencing it agree on provenance.
	GitSHA   string `json:"git_sha,omitempty"`
	GitDirty bool   `json:"git_dirty,omitempty"`
	// Host pins the machine the run executed on.
	Host HostInfo `json:"host"`
	// Extra carries tool-specific fields (sweep labels, notes).
	Extra map[string]string `json:"extra,omitempty"`
}

// Outcome is a run's verdict.
type Outcome struct {
	// Solved is the §4.4 verdict: true when the solve criterion was met
	// before the episode cutoff, false for "impossible".
	Solved bool `json:"solved"`
	// Episodes, TotalSteps and Resets are the run totals.
	Episodes   int `json:"episodes"`
	TotalSteps int `json:"total_steps,omitempty"`
	Resets     int `json:"resets,omitempty"`
	// WallSeconds is the host wall-clock duration.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Err records an agent failure, if any.
	Err string `json:"err,omitempty"`
	// Diverged reports whether the divergence watchdog tripped. Absent
	// (false) for a healthy run and for runs without a watchdog — the
	// watchdog_diverged gauge in Metrics distinguishes the two.
	Diverged bool `json:"diverged,omitempty"`
	// NumericAlerts holds the watchdog's tripped rules in first-trip
	// order; omitted when the run was healthy or unwatched.
	NumericAlerts []Alert `json:"numeric_alerts,omitempty"`
}

// HostInfo identifies the runtime environment of a run.
type HostInfo struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`
}

// NewManifest starts a manifest stamped with the current schema version,
// start time and host info.
func NewManifest() *Manifest {
	return &Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Start:         time.Now(),
		Host: HostInfo{
			GoVersion: runtime.Version(),
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
	}
}

// WriteManifest writes m as indented JSON.
func WriteManifest(w io.Writer, m *Manifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadManifest decodes a manifest and validates its schema version.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("obs: decoding manifest: %w", err)
	}
	if m.SchemaVersion <= 0 || m.SchemaVersion > ManifestSchemaVersion {
		return nil, fmt.Errorf("obs: unsupported manifest schema version %d (supported: 1..%d)",
			m.SchemaVersion, ManifestSchemaVersion)
	}
	return &m, nil
}
