package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest()
	m.Design = "OS-ELM-L2-Lipschitz"
	m.Env = "CartPole-v0"
	m.Hidden = 64
	m.Seed = 7
	m.Config = map[string]any{"MaxEpisodes": 5000.0, "ResetAfter": 300.0}
	m.End = m.Start.Add(3 * time.Second)
	m.Outcome = &Outcome{Solved: true, Episodes: 412, TotalSteps: 33017, Resets: 1, WallSeconds: 2.9}
	m.EventsPath = "run.jsonl"
	m.Extra = map[string]string{"tool": "train"}

	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != ManifestSchemaVersion {
		t.Fatalf("schema version = %d, want %d", got.SchemaVersion, ManifestSchemaVersion)
	}
	if got.Design != m.Design || got.Env != m.Env || got.Hidden != 64 || got.Seed != 7 {
		t.Fatalf("identity fields mangled: %+v", got)
	}
	if got.Outcome == nil || !got.Outcome.Solved || got.Outcome.Episodes != 412 {
		t.Fatalf("outcome mangled: %+v", got.Outcome)
	}
	cfg, ok := got.Config.(map[string]any)
	if !ok || cfg["MaxEpisodes"] != 5000.0 {
		t.Fatalf("config mangled: %#v", got.Config)
	}
	if got.Host.GoVersion == "" || got.Host.NumCPU <= 0 {
		t.Fatalf("host info missing: %+v", got.Host)
	}
	if got.Extra["tool"] != "train" {
		t.Fatalf("extra mangled: %+v", got.Extra)
	}
}

func TestManifestRejectsBadVersion(t *testing.T) {
	for _, doc := range []string{
		`{"schema_version": 0, "start": "2026-01-01T00:00:00Z"}`,
		`{"schema_version": 999, "start": "2026-01-01T00:00:00Z"}`,
		`not json`,
	} {
		if _, err := ReadManifest(strings.NewReader(doc)); err == nil {
			t.Fatalf("want error for %q", doc)
		}
	}
}
