package obs

import (
	"bytes"
	"math"
	"testing"
)

func TestWatchdogRules(t *testing.T) {
	cfg := DefaultWatchdogConfig()
	w := NewWatchdog(cfg)

	// Healthy values trip nothing.
	for _, c := range []struct {
		name string
		v    float64
	}{
		{GaugeBetaSigmaMax, 3.2},
		{HistLearnTDErrorAbs, 1.5},
		{GaugeFixedSaturationRateSeqTrain, 0.0001},
		{"unrelated_gauge", 1e12},
	} {
		if _, first := w.CheckValue(c.name, c.v); first {
			t.Errorf("healthy value %s=%g tripped the watchdog", c.name, c.v)
		}
	}
	if w.Diverged() || w.AlertCount() != 0 {
		t.Fatalf("healthy series must not diverge: %+v", w.Alerts())
	}

	// σmax(β) runaway.
	al, first := w.CheckValue(GaugeBetaSigmaMax, 250)
	if !first || al.Rule != RuleSigmaRunaway || al.Threshold != cfg.MaxBetaSigmaMax {
		t.Fatalf("sigma runaway not tripped: %+v first=%v", al, first)
	}
	// Second violation of the same pair is counted, not re-alerted.
	if _, again := w.CheckValue(GaugeBetaSigmaMax, 300); again {
		t.Fatal("duplicate (rule, metric) trip must not re-alert")
	}
	if got := w.Alerts()[0].Count; got != 2 {
		t.Fatalf("violation count = %d, want 2", got)
	}

	// TD-error blowup, saturation rate, NaN gauge, NaN counter.
	if _, first := w.CheckValue(HistLearnTDErrorAbs, 1e4); !first {
		t.Fatal("td blowup not tripped")
	}
	if _, first := w.CheckValue(GaugeFixedSaturationRatePredict, 0.5); !first {
		t.Fatal("saturation rate not tripped")
	}
	if al, first := w.CheckValue(GaugeLearnBetaNorm, math.NaN()); !first || al.Rule != RuleNonFinite {
		t.Fatal("NaN value not tripped as non_finite")
	}
	if al, first := w.CheckCounter(MetricFixedNaNs, 3); !first || al.Rule != RuleNonFinite {
		t.Fatal("fixed_nan_inputs counter not tripped")
	}
	if _, first := w.CheckCounter(MetricSeqUpdates, 100); first {
		t.Fatal("unrelated counter must not trip")
	}

	if !w.Diverged() || w.AlertCount() != 5 {
		t.Fatalf("expected 5 distinct alerts, got %d (%+v)", w.AlertCount(), w.Alerts())
	}
}

func TestWatchdogZeroThresholdsDisableRules(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{DisableNonFinite: true})
	w.CheckValue(GaugeBetaSigmaMax, 1e9)
	w.CheckValue(HistLearnTDErrorAbs, 1e9)
	w.CheckValue(GaugeFixedSaturationRateSeqTrain, 1)
	w.CheckValue("x", math.Inf(1))
	w.CheckCounter(MetricFixedNaNs, 5)
	if w.Diverged() {
		t.Fatalf("all-disabled watchdog tripped: %+v", w.Alerts())
	}
}

func TestNilWatchdogIsInert(t *testing.T) {
	var w *Watchdog
	if _, first := w.CheckValue(GaugeBetaSigmaMax, 1e9); first {
		t.Fatal("nil watchdog tripped")
	}
	if _, first := w.CheckCounter(MetricFixedNaNs, 1); first {
		t.Fatal("nil watchdog counter tripped")
	}
	if w.Diverged() || w.Alerts() != nil || w.AlertCount() != 0 {
		t.Fatal("nil watchdog must report clean state")
	}
	if w.Config() != (WatchdogConfig{}) {
		t.Fatal("nil watchdog config must be zero")
	}
}

// TestEmitterWatchdogWiring covers the full pipeline: a metric write that
// violates a rule must produce exactly one numeric_alert event, the
// watchdog_alerts counter and the watchdog_diverged gauge — and derived
// emitters must share the watchdog like they share the registry.
func TestEmitterWatchdogWiring(t *testing.T) {
	var buf bytes.Buffer
	e := NewEmitter(NewJSONLSink(&buf))
	w := NewWatchdog(DefaultWatchdogConfig())
	e.SetWatchdog(w)
	if e.Watchdog() != w {
		t.Fatal("SetWatchdog not stored")
	}

	child := e.With(map[string]string{"trial": "1"})
	child.SetGauge(GaugeBetaSigmaMax, 5) // healthy
	child.SetGauge(GaugeBetaSigmaMax, 500)
	child.SetGauge(GaugeBetaSigmaMax, 900) // duplicate: counted, no event
	child.Observe(HistLearnTDErrorAbs, 1e3)
	child.Inc(MetricFixedNaNs, 1)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	if !w.Diverged() || w.AlertCount() != 3 {
		t.Fatalf("want 3 alerts, got %d: %+v", w.AlertCount(), w.Alerts())
	}
	snap := e.Metrics().Snapshot()
	if got := snap.Counter(MetricWatchdogAlerts); got != 3 {
		t.Fatalf("watchdog_alerts = %d, want 3", got)
	}
	if snap.Gauges[GaugeWatchdogDiverged] != 1 {
		t.Fatal("watchdog_diverged gauge not set")
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var alerts []Event
	for _, ev := range events {
		if ev.Type == EventNumericAlert {
			alerts = append(alerts, ev)
		}
	}
	if len(alerts) != 3 {
		t.Fatalf("want 3 numeric_alert events, got %d", len(alerts))
	}
	first := alerts[0]
	if first.Labels["rule"] != RuleSigmaRunaway || first.Labels["metric"] != GaugeBetaSigmaMax {
		t.Fatalf("alert labels wrong: %+v", first.Labels)
	}
	if first.Labels["trial"] != "1" {
		t.Fatal("alert must keep the emitter's own labels")
	}
	if first.Data["value"] != 500 || first.Data["threshold"] != DefaultWatchdogConfig().MaxBetaSigmaMax {
		t.Fatalf("alert payload wrong: %+v", first.Data)
	}

	// Nil emitter stays inert.
	var nilE *Emitter
	nilE.SetWatchdog(w)
	if nilE.Watchdog() != nil {
		t.Fatal("nil emitter must report nil watchdog")
	}
}

// TestDisabledWatchdogPathDoesNotAllocate pins the disabled-path cost:
// metric writes through an emitter with no watchdog attached allocate
// nothing extra, and a nil watchdog's checks are a pointer comparison.
func TestDisabledWatchdogPathDoesNotAllocate(t *testing.T) {
	var w *Watchdog
	if allocs := testing.AllocsPerRun(1000, func() {
		w.CheckValue(GaugeBetaSigmaMax, 1e9)
		w.CheckCounter(MetricFixedNaNs, 1)
	}); allocs != 0 {
		t.Fatalf("nil watchdog check allocates %g per run", allocs)
	}
}

func BenchmarkWatchdogDisabledCheck(b *testing.B) {
	var w *Watchdog
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.CheckValue(GaugeBetaSigmaMax, 3)
	}
}

func BenchmarkWatchdogEnabledHealthyCheck(b *testing.B) {
	w := NewWatchdog(DefaultWatchdogConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.CheckValue(GaugeBetaSigmaMax, 3)
	}
}
