package obs

import (
	"math"
	"strings"
	"sync"
)

// Watchdog rule names, stamped on alerts and the numeric_alert event's
// "rule" label.
const (
	// RuleNonFinite trips on any NaN or ±Inf observed value, or on a
	// nonzero fixed_nan_inputs counter (a NaN crossed the float→fixed
	// boundary).
	RuleNonFinite = "non_finite"
	// RuleSaturationRate trips when a fixed_saturation_rate_* gauge
	// exceeds the configured rate — the fixed-point datapath is clamping
	// at the rails often enough to distort learning.
	RuleSaturationRate = "saturation_rate"
	// RuleSigmaRunaway trips when σmax(β) exceeds its bound — the §3.3
	// Lipschitz runaway the spectral/L2 regularization exists to prevent.
	RuleSigmaRunaway = "beta_sigma_runaway"
	// RuleTDBlowup trips when a per-update TD error exceeds its bound —
	// targets are clipped to [-1,1], so a huge TD error means the network's
	// own predictions have blown up.
	RuleTDBlowup = "td_error_blowup"
)

// WatchdogConfig holds the divergence thresholds. The defaults are an
// order of magnitude beyond anything a healthy run produces (healthy
// σmax(β) stays O(1), TD errors stay O(1) against [-1,1]-clipped targets,
// and the fixed-point datapath essentially never saturates on CartPole),
// so a healthy run must report zero alerts.
type WatchdogConfig struct {
	// MaxBetaSigmaMax bounds the beta_sigma_max gauge (0 disables).
	MaxBetaSigmaMax float64
	// MaxTDErrorAbs bounds learn_td_error_abs observations (0 disables).
	MaxTDErrorAbs float64
	// MaxSaturationRate bounds the fixed_saturation_rate_* gauges
	// (0 disables).
	MaxSaturationRate float64
	// DisableNonFinite turns off the NaN/Inf rule (on by default).
	DisableNonFinite bool
}

// DefaultWatchdogConfig returns the standard thresholds.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		MaxBetaSigmaMax:   100,
		MaxTDErrorAbs:     25,
		MaxSaturationRate: 0.01,
	}
}

// Alert records the first trip of one (rule, metric) pair. Count tracks
// how many subsequent observations also violated it — the event stream
// carries only the first trip, so a single alert cannot flood a JSONL log
// from a hot loop.
type Alert struct {
	// Rule is one of the Rule* constants.
	Rule string `json:"rule"`
	// Metric is the registry series that tripped the rule.
	Metric string `json:"metric"`
	// Value is the first offending value; Threshold the configured bound.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Count is the total number of violating observations so far.
	Count int64 `json:"count"`
}

// Watchdog evaluates threshold rules over the metric stream an Emitter
// records. Like *Tracer, a nil *Watchdog is the disabled state: every
// method no-ops, so the hot path pays one pointer comparison when the
// watchdog is off. A non-nil Watchdog is safe for concurrent use (the
// parallel trial runner shares one across trials).
type Watchdog struct {
	cfg WatchdogConfig

	mu     sync.Mutex
	alerts []Alert
	index  map[string]int // rule+metric → alerts index
}

// NewWatchdog returns an enabled watchdog with the given thresholds.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	return &Watchdog{cfg: cfg, index: make(map[string]int)}
}

// Config returns the thresholds (zero value for a nil watchdog).
func (w *Watchdog) Config() WatchdogConfig {
	if w == nil {
		return WatchdogConfig{}
	}
	return w.cfg
}

// Diverged reports whether any rule has tripped. Nil-safe.
func (w *Watchdog) Diverged() bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.alerts) > 0
}

// Alerts returns a copy of the tripped rules in first-trip order.
// Nil-safe.
func (w *Watchdog) Alerts() []Alert {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Alert(nil), w.alerts...)
}

// AlertCount returns the number of distinct (rule, metric) trips.
// Nil-safe.
func (w *Watchdog) AlertCount() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.alerts)
}

// record registers a violation and reports whether it is the first trip of
// its (rule, metric) pair.
func (w *Watchdog) record(rule, metric string, v, threshold float64) (Alert, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	key := rule + "\x00" + metric
	if i, ok := w.index[key]; ok {
		w.alerts[i].Count++
		return Alert{}, false
	}
	al := Alert{Rule: rule, Metric: metric, Value: v, Threshold: threshold, Count: 1}
	w.index[key] = len(w.alerts)
	w.alerts = append(w.alerts, al)
	return al, true
}

// CheckValue evaluates the rules against one observed gauge/histogram
// value and returns the alert if this observation is a new first trip.
// Nil-safe; the disabled path is a single pointer comparison.
func (w *Watchdog) CheckValue(name string, v float64) (Alert, bool) {
	if w == nil {
		return Alert{}, false
	}
	if !w.cfg.DisableNonFinite && (math.IsNaN(v) || math.IsInf(v, 0)) {
		return w.record(RuleNonFinite, name, v, 0)
	}
	switch {
	case name == GaugeBetaSigmaMax:
		if w.cfg.MaxBetaSigmaMax > 0 && v > w.cfg.MaxBetaSigmaMax {
			return w.record(RuleSigmaRunaway, name, v, w.cfg.MaxBetaSigmaMax)
		}
	case name == HistLearnTDErrorAbs:
		if w.cfg.MaxTDErrorAbs > 0 && v > w.cfg.MaxTDErrorAbs {
			return w.record(RuleTDBlowup, name, v, w.cfg.MaxTDErrorAbs)
		}
	case strings.HasPrefix(name, "fixed_saturation_rate"):
		if w.cfg.MaxSaturationRate > 0 && v > w.cfg.MaxSaturationRate {
			return w.record(RuleSaturationRate, name, v, w.cfg.MaxSaturationRate)
		}
	}
	return Alert{}, false
}

// CheckCounter evaluates counter increments: a positive fixed_nan_inputs
// delta means a NaN crossed the fixed-point boundary. Nil-safe.
func (w *Watchdog) CheckCounter(name string, delta int64) (Alert, bool) {
	if w == nil {
		return Alert{}, false
	}
	if !w.cfg.DisableNonFinite && name == MetricFixedNaNs && delta > 0 {
		return w.record(RuleNonFinite, name, float64(delta), 0)
	}
	return Alert{}, false
}
