package obs

import (
	"testing"
	"time"
)

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan("seq_train")
	if !sp.Active() {
		t.Fatal("span from a live tracer must be active")
	}
	time.Sleep(time.Millisecond)
	sp.EndModelled(0.25) // 0.25 s of modelled device time

	gsp := tr.StartSpanGroup("episode", "trial=1")
	gsp.End()

	spans := tr.Spans()
	if len(spans) != 2 || tr.Len() != 2 {
		t.Fatalf("want 2 spans, got %d (Len %d)", len(spans), tr.Len())
	}
	first := spans[0]
	if first.Name != "seq_train" || first.Group != "" {
		t.Fatalf("span 0 identity wrong: %+v", first)
	}
	if first.StartUS < 0 || first.DurUS < 1000 {
		t.Fatalf("span 0 timing wrong (slept 1ms): %+v", first)
	}
	if first.ModelUS != 0.25*1e6 {
		t.Fatalf("modelled duration = %g us, want 250000", first.ModelUS)
	}
	second := spans[1]
	if second.Name != "episode" || second.Group != "trial=1" || second.ModelUS != 0 {
		t.Fatalf("span 1 wrong: %+v", second)
	}
	if second.StartUS < first.StartUS {
		t.Fatalf("spans out of order: %+v before %+v", first, second)
	}

	// Spans returns a copy: mutating it must not corrupt the tracer.
	spans[0].Name = "mutated"
	if tr.Spans()[0].Name != "seq_train" {
		t.Fatal("Spans aliased tracer state")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.SetMaxSpans(10)
	sp := tr.StartSpan("seq_train")
	if sp.Active() {
		t.Fatal("nil tracer must hand out inactive spans")
	}
	sp.End()
	sp.EndModelled(1)
	gsp := tr.StartSpanGroup("episode", "g")
	if gsp.Active() {
		t.Fatal("nil tracer group span must be inactive")
	}
	gsp.End()
	if tr.Spans() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report empty state")
	}
	// The zero Span (from e.g. a nil emitter) is equally inert.
	var zero Span
	zero.End()
	zero.EndModelled(1)
}

func TestTracerSpanCap(t *testing.T) {
	tr := NewTracer()
	tr.SetMaxSpans(2)
	for i := 0; i < 5; i++ {
		tr.StartSpan("seq_train").End()
	}
	if tr.Len() != 2 {
		t.Fatalf("cap not enforced: %d spans retained", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
	tr.SetMaxSpans(0) // restores the default
	tr.StartSpan("seq_train").End()
	if tr.Len() != 3 {
		t.Fatalf("raising the cap must resume recording, got %d", tr.Len())
	}
}

func TestEmitterSpanPlumbing(t *testing.T) {
	e := NewEmitter(nil)
	if e.Tracer() != nil {
		t.Fatal("fresh emitter must have no tracer")
	}
	if sp := e.StartSpan("seq_train"); sp.Active() {
		t.Fatal("emitter without tracer must hand out inactive spans")
	}
	tr := NewTracer()
	e.SetTracer(tr)
	if e.Tracer() != tr {
		t.Fatal("SetTracer not stored")
	}
	// Derived emitters keep the tracer, like the shared registry.
	child := e.With(map[string]string{"trial": "1"})
	child.StartSpan("seq_train").End()
	if tr.Len() != 1 {
		t.Fatalf("span via derived emitter not recorded: %d", tr.Len())
	}

	// Nil emitter: every span method inert.
	var nilE *Emitter
	nilE.SetTracer(tr)
	if nilE.Tracer() != nil {
		t.Fatal("nil emitter must report nil tracer")
	}
	if sp := nilE.StartSpan("x"); sp.Active() {
		t.Fatal("nil emitter span must be inactive")
	}
}

// TestDisabledSpanPathDoesNotAllocate pins the tentpole's zero-cost
// contract: with tracing off (nil tracer / nil emitter), starting and
// ending a span performs no allocation and reads no clock.
func TestDisabledSpanPathDoesNotAllocate(t *testing.T) {
	var tr *Tracer
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("seq_train")
		sp.EndModelled(1)
	}); allocs != 0 {
		t.Fatalf("nil tracer span path allocates %g per op", allocs)
	}
	var e *Emitter
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := e.StartSpan("seq_train")
		sp.End()
	}); allocs != 0 {
		t.Fatalf("nil emitter span path allocates %g per op", allocs)
	}
}

// The benchmark pair quantifies the disabled-vs-enabled span cost (the
// PR's no-overhead-when-off evidence): disabled is a pointer check,
// enabled pays two clock reads plus one locked append.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("seq_train")
		sp.EndModelled(1e-6)
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Recycle the backing slice so large b.N measures the record path,
		// not the past-cap drop path (nor unbounded growth).
		if i&(1<<16-1) == 0 {
			b.StopTimer()
			tr.mu.Lock()
			tr.spans = tr.spans[:0]
			tr.mu.Unlock()
			b.StartTimer()
		}
		sp := tr.StartSpan("seq_train")
		sp.EndModelled(1e-6)
	}
}

func BenchmarkSpanDisabledViaEmitter(b *testing.B) {
	var e *Emitter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := e.StartSpan("seq_train")
		sp.End()
	}
}
