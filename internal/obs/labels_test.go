package obs

import "testing"

func TestLabeledRoundTrip(t *testing.T) {
	key := Labeled(MetricFPGACycles, "phase", "seq_train", "kernel", "p_h", "unit", "mul")
	if want := "fpga_cycles{phase=seq_train,kernel=p_h,unit=mul}"; key != want {
		t.Fatalf("Labeled = %q, want %q", key, want)
	}
	base, pairs := SplitLabeled(key)
	if base != MetricFPGACycles {
		t.Errorf("base = %q", base)
	}
	want := [][2]string{{"phase", "seq_train"}, {"kernel", "p_h"}, {"unit", "mul"}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Errorf("pair %d = %v, want %v", i, pairs[i], want[i])
		}
	}
}

func TestLabeledDegenerate(t *testing.T) {
	if got := Labeled("name"); got != "name" {
		t.Errorf("no pairs: %q", got)
	}
	if got := Labeled("name", "odd"); got != "name" {
		t.Errorf("odd pairs: %q", got)
	}
}

// TestSplitLabeledMalformed: anything that is not a well-formed label
// block comes back as a plain name — a flat key with braces in it must
// not be half-parsed.
func TestSplitLabeledMalformed(t *testing.T) {
	for _, key := range []string{
		"plain_name",
		"name{}",          // empty block
		"name{a}",         // no '='
		"name{=v}",        // empty key
		"name{a=1",        // unterminated
		"name{a=1}suffix", // trailing text
	} {
		base, pairs := SplitLabeled(key)
		if pairs != nil {
			t.Errorf("%q: pairs = %v, want nil", key, pairs)
		}
		if base != key {
			t.Errorf("%q: base = %q, want the key unchanged", key, base)
		}
	}
}

// TestLabeledSeriesOnRegistry: labeled keys are ordinary flat registry
// keys — increments accumulate per distinct label set.
func TestLabeledSeriesOnRegistry(t *testing.T) {
	r := NewRegistry()
	k1 := Labeled(MetricFPGACycles, "phase", "predict", "kernel", "hidden_pass", "unit", "add")
	k2 := Labeled(MetricFPGACycles, "phase", "predict", "kernel", "hidden_pass", "unit", "mul")
	r.Inc(k1, 10)
	r.Inc(k1, 5)
	r.Inc(k2, 7)
	snap := r.Snapshot()
	if snap.Counters[k1] != 15 || snap.Counters[k2] != 7 {
		t.Errorf("labeled counters = %v / %v", snap.Counters[k1], snap.Counters[k2])
	}
}
