package obs

import (
	"sort"
	"sync"
	"time"
)

// Metric names the training stack records. Consumers key Snapshot maps by
// these; the set is open.
const (
	// MetricSeqUpdates counts executed OS-ELM sequential updates.
	MetricSeqUpdates = "seq_updates"
	// MetricSeqSkipped counts update opportunities the ε₂ random-update
	// gate skipped (Algorithm 1 line 21 with r₂ ≥ ε₂).
	MetricSeqSkipped = "seq_updates_skipped"
	// MetricTargets counts Bellman targets computed.
	MetricTargets = "targets"
	// MetricTargetsClipped counts targets saturated by the §3.1 Q-value
	// clip; clipped/targets is the clip saturation rate.
	MetricTargetsClipped = "targets_clipped"
	// MetricInitTrains counts initial trainings / batch-ELM retrains.
	MetricInitTrains = "init_trains"
	// MetricTheta2Syncs counts θ2 ← θ1 target-network syncs.
	MetricTheta2Syncs = "theta2_syncs"
	// MetricTrainSteps counts DQN gradient steps.
	MetricTrainSteps = "train_steps"
	// GaugeBufferOccupancy is the replay/init-store fill level [0, 1].
	GaugeBufferOccupancy = "buffer_occupancy"
	// GaugeBetaSigmaMax is the latest σmax(β) estimate (§3.3); the
	// same-named histogram tracks its distribution over the run.
	GaugeBetaSigmaMax = "beta_sigma_max"
)

// Numeric-health metrics: the fixed_* family reports the fixed-point
// (Qm.f, Q20 by default) datapath's arithmetic accounting
// (internal/fixed.Acct, attributed per FPGA module), the learn_* family
// reports learning dynamics from the agents, and the watchdog_* family
// reports divergence-watchdog state. Naming is documented in README.md
// §Numeric health and results/README.md.
const (
	// MetricFixedNaNs counts NaN inputs coerced to 0 at the float→fixed
	// boundary (any NaN here is a numeric emergency — the fixed-point
	// datapath itself cannot produce one).
	MetricFixedNaNs = "fixed_nan_inputs"
	// MetricFixedSaturationsPredict / SeqTrain count arithmetic results
	// clamped at the int32 rails inside the predict / seq_train modules.
	MetricFixedSaturationsPredict  = "fixed_saturations_predict"
	MetricFixedSaturationsSeqTrain = "fixed_saturations_seq_train"
	// MetricFixedOpsPredict / SeqTrain count accounted fixed-point ops per
	// module — the denominator of the saturation rate.
	MetricFixedOpsPredict  = "fixed_ops_predict"
	MetricFixedOpsSeqTrain = "fixed_ops_seq_train"
	// GaugeFixedQuantErrPredict / SeqTrain accumulate the absolute rounding
	// error (real value units) of the module's non-saturating ops.
	GaugeFixedQuantErrPredict  = "fixed_quant_error_abs_predict"
	GaugeFixedQuantErrSeqTrain = "fixed_quant_error_abs_seq_train"
	// GaugeFixedSaturationRatePredict / SeqTrain are saturations/ops over
	// the whole run so far — the series the watchdog's saturation rule
	// watches.
	GaugeFixedSaturationRatePredict  = "fixed_saturation_rate_predict"
	GaugeFixedSaturationRateSeqTrain = "fixed_saturation_rate_seq_train"
	// MetricFixedSaturationsLoad / MetricFixedOpsLoad /
	// GaugeFixedQuantErrLoad account the float→fixed parameter load (the
	// LoadFloat DMA boundary after CPU-side initial training).
	MetricFixedSaturationsLoad = "fixed_saturations_load"
	MetricFixedOpsLoad         = "fixed_ops_load"
	GaugeFixedQuantErrLoad     = "fixed_quant_error_abs_load"
	// MetricFixedDenomGuard counts seq_train updates rejected by the
	// Eq. 5 denominator guard (1 + h·P·hᵀ fell below 0.5 — a saturated
	// or poisoned P). Zero in a healthy run; the first trip also emits a
	// numeric_alert event.
	MetricFixedDenomGuard = "fixed_denom_guard_trips"
	// MetricBatchGuard counts rank-k SeqTrainBatch updates rejected by
	// the Eq. 5 conditioning guard (a Cholesky pivot of K = I + H·P·Hᵀ
	// fell below 0.5 — K is at least I in exact arithmetic, so a
	// collapsed pivot means P lost positive-definiteness). The float-path
	// sibling of MetricFixedDenomGuard; the first trip also emits a
	// numeric_alert event with rule seq_train_batch_guard.
	MetricBatchGuard = "learn_batch_guard_trips"

	// HistLearnTDErrorAbs is the per-update |target − Q(s,a)| (qnet/fpga:
	// per sequential update; dqn: batch mean per gradient step).
	HistLearnTDErrorAbs = "learn_td_error_abs"
	// HistLearnQValue is the predicted Q(s,a) at update time — outliers
	// here are what §3.1's clipping defends against.
	HistLearnQValue = "learn_q_value"
	// GaugeLearnBetaNorm is ‖β‖_F (or the DQN θ1 weight norm), the
	// quantity L2 regularization suppresses.
	GaugeLearnBetaNorm = "learn_beta_norm"
	// GaugeLearnPTrace is trace(P)/Ñ, the effective learning rate.
	GaugeLearnPTrace = "learn_p_trace"
	// GaugeLearnPCond is max|diag(P)| / min|diag(P)| — a cheap condition
	// proxy for P. It explodes when the initial Gram matrix was
	// near-singular, and reports MaxFloat64 when a diagonal entry goes
	// non-positive (P losing positive-definiteness).
	GaugeLearnPCond = "learn_p_cond_proxy"
	// GaugeLearnClipRate is targets_clipped/targets so far.
	GaugeLearnClipRate = "learn_clip_rate"

	// MetricWatchdogAlerts counts divergence-watchdog rule trips.
	MetricWatchdogAlerts = "watchdog_alerts"
	// GaugeWatchdogDiverged is 1 once any watchdog rule has tripped.
	GaugeWatchdogDiverged = "watchdog_diverged"
)

// Experiment-grid metrics (the grid_* family): cmd/grid publishes these
// on its -serve telemetry endpoint while driving a declared experiment
// matrix, so a long grid run is observable like any single run. Naming
// is documented in results/README.md.
const (
	// GaugeGridCellsPlanned is the matrix size — the number of declared
	// cells this invocation is responsible for.
	GaugeGridCellsPlanned = "grid_cells_planned"
	// GaugeGridCellsRunning is the number of cells currently executing.
	GaugeGridCellsRunning = "grid_cells_running"
	// MetricGridCellsDone counts cells that ran to a verdict (solved,
	// unsolved or timeout) and were appended to the ledger this run.
	MetricGridCellsDone = "grid_cells_done"
	// MetricGridCellsSkipped counts cells skipped because the ledger
	// already holds a verdict for their config hash (resume).
	MetricGridCellsSkipped = "grid_cells_skipped"
	// MetricGridCellsFailed counts cells whose execution errored (agent
	// construction failure, artifact write failure) — no verdict, retried
	// on the next invocation.
	MetricGridCellsFailed = "grid_cells_failed"
	// HistGridCellSeconds is the wall-clock duration of executed cells.
	HistGridCellSeconds = "grid_cell_seconds"
)

// Device-profiler metrics (the fpga_* family): the FPGA agent's
// device-level cycle profiler publishes these when armed with -profile.
// The counters are labeled series — registry keys built with Labeled,
// which the export layer renders as real Prometheus labels. Naming is
// documented in README.md §Device profiling and results/README.md.
const (
	// MetricFPGACycles counts datapath cycles attributed per
	// {phase, kernel, unit} cell; the sum over all cells equals the
	// core's total cycle count exactly (the attribution invariant).
	MetricFPGACycles = "fpga_cycles"
	// MetricFPGABRAMAccess counts per-BRAM-bank word accesses, labeled
	// {bank, op} with the membank.go bank names and read/write.
	MetricFPGABRAMAccess = "fpga_bram_access"
	// GaugeFPGAUnitBusy is the run-so-far fraction of attributed cycles
	// spent on one datapath unit, labeled {unit} — the occupancy of the
	// add/mul/div units and the invocation FSM.
	GaugeFPGAUnitBusy = "fpga_unit_busy_fraction"
	// GaugeFPGAOpsPerCycle is the achieved arithmetic ops per datapath
	// cycle — the roofline position against the single-unit peak of 1.
	GaugeFPGAOpsPerCycle = "fpga_ops_per_cycle"
)

// Fleet-simulation metrics (the fleet_* family): the discrete-event
// multi-core fleet simulator (internal/fleet) publishes these after
// each simulated device, labeled {device} (and {device, core} for the
// per-core series). Naming is documented in README.md §Fleet simulation
// and results/README.md.
const (
	// GaugeFleetCoreBusy is one simulated core's busy fraction of the
	// fleet makespan, labeled {device, core}.
	GaugeFleetCoreBusy = "fleet_core_busy_fraction"
	// GaugeFleetCores is the simulated core count per device.
	GaugeFleetCores = "fleet_cores"
	// GaugeFleetQueueDepthMax / Mean describe the shared dispatcher's
	// ready-queue depth (peak, and mean at dispatch instants).
	GaugeFleetQueueDepthMax  = "fleet_queue_depth_max"
	GaugeFleetQueueDepthMean = "fleet_queue_depth_mean"
	// GaugeFleetSpeedup is the modelled fleet speedup over the
	// serialized one-core reference.
	GaugeFleetSpeedup = "fleet_modelled_speedup"
	// GaugeFleetMakespan is the fleet's modelled completion time in
	// device seconds.
	GaugeFleetMakespan = "fleet_makespan_seconds"
	// MetricFleetDispatches counts kernels issued by the dispatcher;
	// MetricFleetJobs counts kernels completed by cores (equal at the
	// end of a simulation).
	MetricFleetDispatches = "fleet_dispatches"
	MetricFleetJobs       = "fleet_jobs"
)

// DefaultBuckets are the upper bounds used when Observe creates a
// histogram implicitly: a coarse log scale covering the magnitudes the
// stack records (σmax estimates, wall milliseconds, target values).
var DefaultBuckets = []float64{0.01, 0.1, 0.5, 1, 2, 5, 10, 100, 1000}

// Histogram is a fixed-bucket histogram: Counts[i] tallies values v with
// v <= Bounds[i] (and above the previous bound); values above the last
// bound land in the overflow count Counts[len(Bounds)].
type Histogram struct {
	// Bounds are the inclusive upper bounds, ascending.
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is overflow.
	Counts []int64 `json:"counts"`
	// N, Sum, Min and Max summarize all observed values.
	N   int64   `json:"n"`
	Sum float64 `json:"sum"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// P50, P95 and P99 are Quantile estimates filled when the histogram
	// is snapshotted (Registry.Snapshot); zero on a live histogram.
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
	P99 float64 `json:"p99,omitempty"`
}

// NewHistogram returns a standalone fixed-bucket histogram (consumers
// aggregating outside a Registry, e.g. cmd/runlog). Observe is not
// synchronized; wrap access or use Registry.Observe for concurrent use.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{Bounds: b, Counts: make([]int64, len(b)+1)}
}

// Observe adds one value. Not synchronized — Registry.Observe locks.
func (h *Histogram) Observe(v float64) { h.observe(v) }

func (h *Histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
}

// Mean returns the observed mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Quantile estimates the p-quantile (p in [0, 1]) by linear
// interpolation within the fixed buckets, clamped to the observed
// [Min, Max]. The first bucket interpolates from Min and the overflow
// bucket toward Max, so estimates never leave the observed range. An
// empty histogram returns 0.
func (h *Histogram) Quantile(p float64) float64 {
	if h.N == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min
	}
	if p >= 1 {
		return h.Max
	}
	rank := p * float64(h.N)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc < rank {
			cum += fc
			continue
		}
		lo, hi := h.bucketEdges(i)
		v := lo + (hi-lo)*(rank-cum)/fc
		if v < h.Min {
			v = h.Min
		}
		if v > h.Max {
			v = h.Max
		}
		return v
	}
	return h.Max
}

// bucketEdges returns bucket i's interpolation range, substituting the
// observed Min/Max for the open outer edges.
func (h *Histogram) bucketEdges(i int) (lo, hi float64) {
	switch {
	case len(h.Bounds) == 0:
		return h.Min, h.Max
	case i == 0:
		return h.Min, h.Bounds[0]
	case i == len(h.Bounds):
		return h.Bounds[i-1], h.Max
	default:
		return h.Bounds[i-1], h.Bounds[i]
	}
}

func (h *Histogram) clone() *Histogram {
	c := *h
	c.Bounds = append([]float64(nil), h.Bounds...)
	c.Counts = append([]int64(nil), h.Counts...)
	c.P50 = h.Quantile(0.50)
	c.P95 = h.Quantile(0.95)
	c.P99 = h.Quantile(0.99)
	return &c
}

// Registry is a thread-safe in-process metrics store: counters, gauges,
// histograms and per-phase wall-clock accumulators. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
	wall     map[string]time.Duration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
		wall:     make(map[string]time.Duration),
	}
}

// Inc adds delta to a counter.
func (r *Registry) Inc(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge records the latest value of a gauge.
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// NewHistogram registers a histogram with explicit bucket bounds,
// replacing any existing histogram of that name.
func (r *Registry) NewHistogram(name string, bounds []float64) {
	r.mu.Lock()
	r.hists[name] = newHistogram(bounds)
	r.mu.Unlock()
}

// Observe adds v to a histogram, creating it with DefaultBuckets on first
// use.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(DefaultBuckets)
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// AddWall accumulates wall-clock time under a phase name.
func (r *Registry) AddWall(phase string, d time.Duration) {
	r.mu.Lock()
	r.wall[phase] += d
	r.mu.Unlock()
}

// Snapshot is a point-in-time copy of a registry, JSON-serializable (it
// is embedded in manifests and summaries).
type Snapshot struct {
	Counters   map[string]int64      `json:"counters,omitempty"`
	Gauges     map[string]float64    `json:"gauges,omitempty"`
	Histograms map[string]*Histogram `json:"histograms,omitempty"`
	// WallSeconds is real elapsed time per phase — the measured companion
	// to internal/timing's modelled device seconds.
	WallSeconds map[string]float64 `json:"wall_seconds,omitempty"`
}

// Counter returns a counter's value from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:    make(map[string]int64, len(r.counters)),
		Gauges:      make(map[string]float64, len(r.gauges)),
		Histograms:  make(map[string]*Histogram, len(r.hists)),
		WallSeconds: make(map[string]float64, len(r.wall)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.clone()
	}
	for k, d := range r.wall {
		s.WallSeconds[k] = d.Seconds()
	}
	return s
}

// Reset clears all metrics (histogram bucket layouts registered with
// NewHistogram are preserved with zeroed counts).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]int64)
	r.gauges = make(map[string]float64)
	r.wall = make(map[string]time.Duration)
	for name, h := range r.hists {
		r.hists[name] = newHistogram(h.Bounds)
	}
}
