package obs

import (
	"sync"
	"time"
)

// DefaultMaxSpans bounds a tracer's memory: a multi-million-step run with
// per-step spans would otherwise grow without limit. Spans past the cap
// are counted in Dropped and discarded; the exporters report the loss.
const DefaultMaxSpans = 1 << 20

// SpanRecord is one completed span on a trace timeline. Times are in
// microseconds — the unit of the Chrome trace-event format the export
// package writes — relative to the tracer's creation.
type SpanRecord struct {
	// Name is the phase name (timing.Phase values plus harness-level
	// names like "episode" and "buffer_refill").
	Name string `json:"name"`
	// Group separates concurrent producers (e.g. trials in a merged
	// sweep) onto distinct trace processes; empty means the single
	// default group.
	Group string `json:"group,omitempty"`
	// StartUS and DurUS are the measured wall-clock start and duration.
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	// ModelUS is the modelled device duration of the same work
	// (internal/timing profiles), zero when the span has no modelled
	// counterpart. The exporter renders these as a second, aligned track.
	ModelUS float64 `json:"model_us,omitempty"`
}

// Tracer records phase-level spans with both measured wall time and
// modelled device time. Like *Emitter, a nil *Tracer is the disabled
// state: StartSpan returns an inactive Span and every method no-ops, so
// the training hot path pays one pointer comparison when tracing is off —
// no clock reads, no allocation, no locks.
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	spans   []SpanRecord
	max     int
	dropped int64
}

// NewTracer returns an enabled tracer whose timeline starts now, capped
// at DefaultMaxSpans records.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), max: DefaultMaxSpans}
}

// SetMaxSpans caps the number of retained spans (n <= 0 restores the
// default). Nil-safe.
func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSpans
	}
	t.mu.Lock()
	t.max = n
	t.mu.Unlock()
}

// Span is an in-flight span handle, held by value so starting and ending
// a span never allocates. The zero Span is inactive: End and EndModelled
// no-op.
type Span struct {
	tr    *Tracer
	name  string
	group string
	start time.Time
}

// StartSpan opens a span; close it with End or EndModelled. On a nil
// tracer it returns the inactive zero Span without reading the clock.
func (t *Tracer) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, start: time.Now()}
}

// StartSpanGroup is StartSpan with an explicit group (trace process) for
// merged multi-trial timelines.
func (t *Tracer) StartSpanGroup(name, group string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, group: group, start: time.Now()}
}

// Active reports whether the span records anything — use it to skip
// computing modelled durations on the disabled path.
func (s Span) Active() bool { return s.tr != nil }

// End closes the span with its measured wall duration only.
func (s Span) End() { s.end(0) }

// EndModelled closes the span recording both the measured wall duration
// and modelSeconds of modelled device time for the same work.
func (s Span) EndModelled(modelSeconds float64) { s.end(modelSeconds * 1e6) }

func (s Span) end(modelUS float64) {
	if s.tr == nil {
		return
	}
	now := time.Now()
	rec := SpanRecord{
		Name:    s.name,
		Group:   s.group,
		StartUS: float64(s.start.Sub(s.tr.start)) / float64(time.Microsecond),
		DurUS:   float64(now.Sub(s.start)) / float64(time.Microsecond),
		ModelUS: modelUS,
	}
	t := s.tr
	t.mu.Lock()
	if len(t.spans) < t.max {
		t.spans = append(t.spans, rec)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
// Nil-safe.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Len returns the number of retained spans. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns the number of spans discarded past the cap. Nil-safe.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
