package obs

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilEmitterIsSafe(t *testing.T) {
	var e *Emitter
	if e.Enabled() {
		t.Fatal("nil emitter must report disabled")
	}
	// Every method must be callable on nil without panicking.
	e.Emit(EventEpisodeEnd, 1, map[string]float64{"steps": 10})
	e.Inc(MetricSeqUpdates, 1)
	e.SetGauge(GaugeBufferOccupancy, 0.5)
	e.Observe(GaugeBetaSigmaMax, 1.2)
	e.AddWall("seq_train", time.Millisecond)
	e.AddWallSince("seq_train", e.Now())
	if !e.Now().IsZero() {
		t.Fatal("nil emitter Now() must return the zero time")
	}
	if e.Metrics() != nil {
		t.Fatal("nil emitter must have nil registry")
	}
	if e.With(map[string]string{"a": "b"}) != nil {
		t.Fatal("With on nil must stay nil")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEmitter(NewJSONLSink(&buf))
	e.Emit(EventRunStart, 0, nil)
	e.Emit(EventEpisodeEnd, 1, map[string]float64{"steps": 17, "score": 17})
	e.Emit(EventRunEnd, 1, map[string]float64{"solved": 1})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	if n := strings.Count(buf.String(), "\n"); n != 3 {
		t.Fatalf("want 3 lines, got %d: %q", n, buf.String())
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("want 3 events, got %d", len(events))
	}
	if events[0].Type != EventRunStart || events[2].Type != EventRunEnd {
		t.Fatalf("unexpected event order: %+v", events)
	}
	if events[1].Episode != 1 || events[1].Data["steps"] != 17 {
		t.Fatalf("episode_end payload mangled: %+v", events[1])
	}
	for i, ev := range events {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.WallMS < 0 {
			t.Fatalf("negative wall_ms: %+v", ev)
		}
	}
}

func TestWithLabels(t *testing.T) {
	var buf bytes.Buffer
	root := NewEmitter(NewJSONLSink(&buf))
	trial := root.With(map[string]string{"trial": "3"})
	trial2 := trial.With(map[string]string{"seed": "7"})
	trial2.Emit(EventEpisodeEnd, 1, nil)
	root.Emit(EventEpisodeEnd, 2, nil)
	if err := root.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if events[0].Labels["trial"] != "3" || events[0].Labels["seed"] != "7" {
		t.Fatalf("derived labels missing: %+v", events[0].Labels)
	}
	if len(events[1].Labels) != 0 {
		t.Fatalf("root emitter must not inherit derived labels: %+v", events[1].Labels)
	}
	// Derived emitters share the registry.
	trial.Inc(MetricSeqUpdates, 2)
	root.Inc(MetricSeqUpdates, 1)
	if got := root.Metrics().Snapshot().Counter(MetricSeqUpdates); got != 3 {
		t.Fatalf("shared registry count = %d, want 3", got)
	}
}

func TestScanEventsStreams(t *testing.T) {
	var buf bytes.Buffer
	e := NewEmitter(NewJSONLSink(&buf))
	e.With(map[string]string{"trial": "1"}).Emit(EventEpisodeEnd, 1, map[string]float64{"steps": 9})
	e.Emit(EventRunEnd, 1, map[string]float64{"solved": 1})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	log := buf.String()

	var got []Event
	err := ScanEvents(strings.NewReader(log), func(ev *Event) error {
		got = append(got, *ev) // the pointer is reused; copy to retain
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 events, got %d", len(got))
	}
	if got[0].Labels["trial"] != "1" || got[0].Data["steps"] != 9 {
		t.Fatalf("first event mangled: %+v", got[0])
	}
	// The reused decode target must not bleed fields between events: the
	// second event has no labels, so its map must be empty even though the
	// first event's decode populated one.
	if len(got[1].Labels) != 0 {
		t.Fatalf("label state leaked across ScanEvents iterations: %+v", got[1].Labels)
	}

	// Errors from fn abort the scan and surface verbatim.
	wantErr := errors.New("stop")
	calls := 0
	err = ScanEvents(strings.NewReader(log), func(*Event) error { calls++; return wantErr })
	if !errors.Is(err, wantErr) || calls != 1 {
		t.Fatalf("fn error not propagated: err=%v calls=%d", err, calls)
	}

	// A truncated final line (run killed mid-write) yields
	// io.ErrUnexpectedEOF after the complete events were delivered.
	truncated := log[:len(log)-10]
	calls = 0
	err = ScanEvents(strings.NewReader(truncated), func(*Event) error { calls++; return nil })
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated log error = %v, want io.ErrUnexpectedEOF", err)
	}
	if calls != 1 {
		t.Fatalf("complete events before the truncation must be delivered, got %d", calls)
	}
}

func TestConcurrentEmission(t *testing.T) {
	var buf bytes.Buffer
	e := NewEmitter(NewJSONLSink(&buf))
	var wg sync.WaitGroup
	const workers, each = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				e.Emit(EventSeqUpdate, i, map[string]float64{"w": float64(w)})
				e.Inc(MetricSeqUpdates, 1)
				e.AddWall("seq_train", time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != workers*each {
		t.Fatalf("got %d events, want %d", len(events), workers*each)
	}
	seen := make(map[int64]bool, len(events))
	for _, ev := range events {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	snap := e.Metrics().Snapshot()
	if snap.Counter(MetricSeqUpdates) != workers*each {
		t.Fatalf("counter = %d, want %d", snap.Counter(MetricSeqUpdates), workers*each)
	}
	if snap.WallSeconds["seq_train"] <= 0 {
		t.Fatal("wall clock not accumulated")
	}
}
