package slo

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for deterministic window
// rotation.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestEngine(obj Objectives) (*Engine, *fakeClock) {
	e := NewEngine(obj)
	c := newFakeClock()
	e.SetClock(c.now)
	return e, c
}

func TestBurnRateMath(t *testing.T) {
	e, _ := newTestEngine(Objectives{LatencyP99MS: 10, Availability: 0.999})
	// 100 OK requests, 2 slow (2% bad against a 1% latency budget →
	// burn 2), plus 1 shed in 1000 eligible → availability burn exactly 1.
	for i := 0; i < 98; i++ {
		e.Record(OK, 0.1, 0.2, 0.5)
	}
	e.Record(OK, 0.1, 0.2, 50) // slow
	e.Record(OK, 0.1, 0.2, 11) // slow
	rep := e.Report()
	if rep.Requests != 100 || rep.OK != 100 || rep.SlowRequests != 2 {
		t.Fatalf("counts: %+v", rep)
	}
	lat := rep.Window5m.Latency
	if lat == nil || lat.Requests != 100 || lat.Bad != 2 {
		t.Fatalf("latency burn: %+v", lat)
	}
	if got, want := lat.Rate, 0.02/0.01; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("latency burn rate = %g, want %g", got, want)
	}
	av := rep.Window5m.Availability
	if av == nil || av.Rate != 0 {
		t.Fatalf("availability burn: %+v", av)
	}

	e.Record(Shed, 0.3, 0, 0.3)
	rep = e.Report()
	av = rep.Window5m.Availability
	if av.Requests != 101 || av.Bad != 1 {
		t.Fatalf("availability after shed: %+v", av)
	}
	wantRate := (1.0 / 101.0) / (1 - 0.999)
	if diff := av.Rate - wantRate; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("availability burn = %g, want %g", av.Rate, wantRate)
	}
	if rep.Shed != 1 {
		t.Errorf("shed = %d", rep.Shed)
	}
}

func TestClientErrorsConsumeNoBudget(t *testing.T) {
	e, _ := newTestEngine(DefaultObjectives())
	for i := 0; i < 50; i++ {
		e.Record(ClientError, 0.1, 0.1, 0.2)
	}
	rep := e.Report()
	if rep.ClientErrors != 50 {
		t.Fatalf("client errors = %d", rep.ClientErrors)
	}
	if av := rep.Window5m.Availability; av.Requests != 0 || av.Rate != 0 {
		t.Errorf("client errors must not enter the availability denominator: %+v", av)
	}
}

func TestQuantileSplit(t *testing.T) {
	e, _ := newTestEngine(DefaultObjectives())
	for i := 0; i < 100; i++ {
		e.Record(OK, 2, 8, 10.5)
	}
	rep := e.Report()
	if rep.QueueMS.N != 100 || rep.EvalMS.N != 100 || rep.TotalMS.N != 100 {
		t.Fatalf("distribution sizes: %+v", rep)
	}
	if rep.QueueMS.P99MS <= 0 || rep.QueueMS.P99MS > 2.5 {
		t.Errorf("queue p99 = %g", rep.QueueMS.P99MS)
	}
	if rep.EvalMS.P99MS < 5 || rep.EvalMS.P99MS > 10 {
		t.Errorf("eval p99 = %g", rep.EvalMS.P99MS)
	}
	if rep.TotalMS.MaxMS != 10.5 {
		t.Errorf("total max = %g", rep.TotalMS.MaxMS)
	}
}

// Window rotation: data older than the window span must stop
// contributing to that window's burn rate.
func TestWindowRotationExpiresOldData(t *testing.T) {
	e, c := newTestEngine(Objectives{LatencyP99MS: 1})
	for i := 0; i < 100; i++ {
		e.Record(OK, 0.1, 0.2, 50) // all slow: burn 100 on both windows
	}
	if b := e.Report().Window5m.Latency; b.Rate < 99 {
		t.Fatalf("pre-rotation 5m burn = %g", b.Rate)
	}
	if !e.FastBurn() {
		t.Fatal("expected fast burn with every request slow")
	}

	// Past the 5m window the short burn clears while the 1h window still
	// remembers — so the page condition (both windows) clears too.
	c.advance(6 * time.Minute)
	rep := e.Report()
	if b := rep.Window5m.Latency; b.Requests != 0 || b.Rate != 0 {
		t.Errorf("5m window after 6m: %+v", b)
	}
	if b := rep.Window1h.Latency; b.Requests != 100 || b.Rate < 99 {
		t.Errorf("1h window after 6m: %+v", b)
	}
	if e.FastBurn() {
		t.Error("fast burn must clear once the short window empties")
	}

	c.advance(time.Hour)
	rep = e.Report()
	if b := rep.Window1h.Latency; b.Requests != 0 {
		t.Errorf("1h window after 66m: %+v", b)
	}
	// Lifetime accounting is unaffected by rotation.
	if rep.Requests != 100 || rep.SlowRequests != 100 {
		t.Errorf("lifetime counts after rotation: %+v", rep)
	}
	if b := rep.Overall.Latency; b == nil || b.Rate < 99 {
		t.Errorf("overall burn must persist: %+v", rep.Overall.Latency)
	}
}

// Ring reuse: advancing exactly one window span maps new data onto the
// same slots; stale epochs must be zeroed, not accumulated.
func TestWindowRingReuse(t *testing.T) {
	e, c := newTestEngine(Objectives{LatencyP99MS: 1})
	e.Record(OK, 0, 0, 100)
	c.advance(ShortWindow)
	e.Record(OK, 0, 0, 100)
	if b := e.Report().Window5m.Latency; b.Requests != 1 || b.Bad != 1 {
		t.Errorf("reused slot must hold only the new epoch: %+v", b)
	}
}

func TestFastBurnNeedsMinimumPopulation(t *testing.T) {
	e, _ := newTestEngine(Objectives{LatencyP99MS: 1})
	for i := 0; i < int(MinWindowRequests)-1; i++ {
		e.Record(OK, 0.1, 0.2, 50)
	}
	if e.FastBurn() {
		t.Fatal("fast burn below the minimum window population")
	}
	e.Record(OK, 0.1, 0.2, 50)
	if !e.FastBurn() {
		t.Fatal("fast burn expected at the minimum window population")
	}
	if rep := e.Report(); !rep.FastBurn || len(rep.Breached) != 1 || rep.Breached[0] != "latency" {
		t.Fatalf("report verdict: %+v", rep.Breached)
	}
}

func TestGateBreaches(t *testing.T) {
	e, _ := newTestEngine(Objectives{LatencyP99MS: 1, Availability: 0.5})
	for i := 0; i < 10; i++ {
		e.Record(OK, 0.1, 0.2, 0.5) // fast, fine
	}
	if br := GateBreaches(e.Report()); len(br) != 0 {
		t.Fatalf("healthy run breached: %v", br)
	}
	for i := 0; i < 10; i++ {
		e.Record(OK, 0.1, 0.2, 50)
	}
	br := GateBreaches(e.Report())
	if len(br) != 1 || br[0] != "latency" {
		t.Fatalf("breaches = %v, want [latency]", br)
	}
}

func TestDisabledObjectives(t *testing.T) {
	e, _ := newTestEngine(Objectives{})
	e.Record(OK, 0.1, 0.2, 1e9)
	e.Record(Shed, 0.1, 0, 0.1)
	rep := e.Report()
	if rep.Window5m.Latency != nil || rep.Window5m.Availability != nil {
		t.Errorf("disabled objectives must not report burns: %+v", rep.Window5m)
	}
	if e.FastBurn() {
		t.Error("fast burn with no objectives")
	}
	if rep.Requests != 2 {
		t.Errorf("RED accounting must still run: %+v", rep)
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	e.Record(OK, 1, 2, 3) // must not panic
	e.SetClock(time.Now)
	e.SetFastBurn(1, 1)
	if e.FastBurn() || e.Enabled() {
		t.Error("nil engine must be inert")
	}
	if rep := e.Report(); rep.Requests != 0 {
		t.Errorf("nil report: %+v", rep)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		e.Record(OK, 0.1, 0.2, 0.3)
	}); allocs != 0 {
		t.Errorf("nil Record allocates %v/op", allocs)
	}
}

func TestEnabledRecordDoesNotAllocate(t *testing.T) {
	e, _ := newTestEngine(DefaultObjectives())
	if allocs := testing.AllocsPerRun(1000, func() {
		e.Record(OK, 0.1, 0.2, 0.3)
	}); allocs != 0 {
		t.Errorf("Record allocates %v/op", allocs)
	}
}

// Concurrent recording while the clock advances across bucket
// boundaries: run under -race this is the window-rotation data-race
// test; the final lifetime totals must also be exact.
func TestConcurrentRecordAndRotate(t *testing.T) {
	e, c := newTestEngine(DefaultObjectives())
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch i % 3 {
				case 0:
					e.Record(OK, 0.1, 0.2, 0.4)
				case 1:
					e.Record(OK, 5, 0.2, 200) // slow
				default:
					e.Record(Shed, 2, 0, 2)
				}
				if i%100 == 0 {
					e.Report()
					e.FastBurn()
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			c.advance(7 * time.Second) // crosses 10s and 60s bucket edges
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	rep := e.Report()
	if want := int64(workers * perWorker); rep.Requests != want {
		t.Fatalf("requests = %d, want %d", rep.Requests, want)
	}
	// Per worker over i = 0..1999: i%3==1 hits 667 times, i%3==2 666.
	if wantSlow := int64(workers * 667); rep.SlowRequests != wantSlow {
		t.Errorf("slow = %d, want %d", rep.SlowRequests, wantSlow)
	}
	if wantShed := int64(workers * 666); rep.Shed != wantShed {
		t.Errorf("shed = %d, want %d", rep.Shed, wantShed)
	}
}
