// Package slo turns the serving path's per-request stream into
// enforceable service-level objectives: RED accounting (rate, errors,
// duration split into queue-wait and evaluator components) plus a
// multi-window burn-rate engine over declared latency and availability
// objectives — the standard SRE construction where the error budget is
// 1−target and the burn rate is the fraction of that budget consumed per
// unit time (burn 1 exactly exhausts the budget at the window's end;
// burn ≥ FastBurnRate on both the short and the long window is the
// page-worthy "fast burn" that flips /healthz degraded).
//
// Like the rest of the internal/obs stack, a nil *Engine is the fully
// disabled state: Record is a single pointer comparison and allocates
// nothing, so internal/serve threads a possibly-nil engine without
// guards.
package slo

import (
	"sync"
	"time"
)

// Outcome classifies one request for availability accounting.
type Outcome int

const (
	// OK is a request answered 200.
	OK Outcome = iota
	// ClientError is a request rejected for a malformed body or state —
	// the client's fault, so it consumes no availability budget (but is
	// still counted in the request rate).
	ClientError
	// Shed is a request rejected 429 because the worker pool and its
	// bounded queue were full on arrival.
	Shed
	// Timeout is a request admitted to the queue but shed because its
	// request budget expired before a worker freed up.
	Timeout
)

// Objectives declares the service-level objectives the engine evaluates.
// The zero value disables both objectives; DefaultObjectives returns the
// serving defaults.
type Objectives struct {
	// LatencyP99MS declares "99% of OK requests complete within this
	// many milliseconds" (total latency, queue wait included). 0 disables
	// the latency objective. A request slower than the threshold consumes
	// latency error budget; the budget fraction is 1−0.99.
	LatencyP99MS float64 `json:"latency_p99_ms,omitempty"`
	// Availability declares the fraction of availability-eligible
	// requests (everything except client errors) that must not be shed
	// or timed out, e.g. 0.999. 0 disables the availability objective.
	Availability float64 `json:"availability,omitempty"`
}

// DefaultObjectives are the serving defaults: p99 total latency ≤ 100 ms
// (generous for a sub-µs predict core behind localhost HTTP — breaching
// it means queueing, not evaluation) and 99.9% availability.
func DefaultObjectives() Objectives {
	return Objectives{LatencyP99MS: 100, Availability: 0.999}
}

// latencyTarget is the success-fraction target implied by LatencyP99MS.
const latencyTarget = 0.99

// FastBurnRate is the default fast-burn threshold: the Google SRE
// workbook's page-worthy rate for a 5m/1h window pair. At burn 14.4 a
// 30-day error budget is gone in 2 days.
const FastBurnRate = 14.4

// MinWindowRequests is the default minimum number of requests a window
// must hold before its burn rate can declare a fast burn — two requests
// with one slow outlier should not page.
const MinWindowRequests = 20

// Window geometries: a 5-minute window of 10-second buckets and a
// 1-hour window of 1-minute buckets.
const (
	shortWindowBuckets = 30
	shortBucketSeconds = 10
	longWindowBuckets  = 60
	longBucketSeconds  = 60
)

// ShortWindow and LongWindow are the two burn-rate horizons.
const (
	ShortWindow = shortWindowBuckets * shortBucketSeconds * time.Second // 5m
	LongWindow  = longWindowBuckets * longBucketSeconds * time.Second   // 1h
)

// latencyBuckets are the duration-histogram bounds in milliseconds,
// matching internal/serve's request-latency buckets.
var latencyBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250}

// bucket is one time slice of a sliding window.
type bucket struct {
	start time.Time // zero when the bucket holds no data
	total int64     // all requests
	slow  int64     // OK requests over the latency threshold
	avail int64     // availability-eligible requests (not client errors)
	bad   int64     // shed + timeout requests
}

// window is a ring of fixed-width buckets covering span seconds.
type window struct {
	buckets []bucket
	width   time.Duration
}

func newWindow(n int, width time.Duration) *window {
	return &window{buckets: make([]bucket, n), width: width}
}

// slot rotates the ring to now and returns the current bucket. Stale
// buckets (an earlier epoch mapped to the same slot) are zeroed lazily.
func (w *window) slot(now time.Time) *bucket {
	start := now.Truncate(w.width)
	i := int(start.UnixNano()/int64(w.width)) % len(w.buckets)
	if i < 0 {
		i += len(w.buckets)
	}
	b := &w.buckets[i]
	if !b.start.Equal(start) {
		*b = bucket{start: start}
	}
	return b
}

// sum totals the buckets still inside the window ending at now.
func (w *window) sum(now time.Time) (total, slow, avail, bad int64) {
	span := time.Duration(len(w.buckets)) * w.width
	oldest := now.Add(-span)
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.start.IsZero() || b.start.Before(oldest) || b.start.After(now) {
			continue
		}
		total += b.total
		slow += b.slow
		avail += b.avail
		bad += b.bad
	}
	return
}

// hist is an unsynchronized fixed-bucket duration histogram (the engine's
// lock covers it).
type hist struct {
	bounds []float64
	counts []int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

func newHist(bounds []float64) *hist {
	return &hist{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *hist) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// quantile estimates the p-quantile by linear interpolation within the
// buckets, clamped to the observed range (the obs.Histogram scheme).
func (h *hist) quantile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	rank := p * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc < rank {
			cum += fc
			continue
		}
		lo, hi := h.min, h.max
		if len(h.bounds) > 0 {
			switch {
			case i == 0:
				hi = h.bounds[0]
			case i == len(h.bounds):
				lo = h.bounds[i-1]
			default:
				lo, hi = h.bounds[i-1], h.bounds[i]
			}
		}
		v := lo + (hi-lo)*(rank-cum)/fc
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

func (h *hist) dist() Dist {
	return Dist{
		N: h.n,
		MeanMS: func() float64 {
			if h.n == 0 {
				return 0
			}
			return h.sum / float64(h.n)
		}(),
		P50MS: h.quantile(0.50),
		P95MS: h.quantile(0.95),
		P99MS: h.quantile(0.99),
		MaxMS: h.max,
	}
}

// Engine ingests per-request observations and evaluates the declared
// objectives over a 5-minute and a 1-hour sliding window. All methods
// are safe for concurrent use; a nil *Engine disables everything.
type Engine struct {
	obj      Objectives
	fastBurn float64
	minReq   int64
	now      func() time.Time

	mu       sync.Mutex
	short    *window
	long     *window
	started  time.Time
	requests int64
	outcomes [4]int64 // indexed by Outcome
	slow     int64    // lifetime latency-threshold breaches
	totalMS  *hist
	queueMS  *hist
	evalMS   *hist
}

// NewEngine returns an engine evaluating obj. Zero objective fields
// disable the corresponding objective.
func NewEngine(obj Objectives) *Engine {
	e := &Engine{
		obj:      obj,
		fastBurn: FastBurnRate,
		minReq:   MinWindowRequests,
		now:      time.Now,
		short:    newWindow(shortWindowBuckets, shortBucketSeconds*time.Second),
		long:     newWindow(longWindowBuckets, longBucketSeconds*time.Second),
		totalMS:  newHist(latencyBuckets),
		queueMS:  newHist(latencyBuckets),
		evalMS:   newHist(latencyBuckets),
	}
	e.started = e.now()
	return e
}

// SetClock replaces the engine's time source — offline replay
// (cmd/runlog slo) drives the windows with the log's own wall clock, and
// tests rotate windows deterministically. Not for use concurrently with
// Record. Nil-safe.
func (e *Engine) SetClock(now func() time.Time) {
	if e == nil || now == nil {
		return
	}
	e.mu.Lock()
	e.now = now
	e.started = now()
	e.mu.Unlock()
}

// SetFastBurn overrides the fast-burn threshold and the minimum window
// population (n ≤ 0 keeps the current value). Nil-safe.
func (e *Engine) SetFastBurn(rate float64, minRequests int64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	if rate > 0 {
		e.fastBurn = rate
	}
	if minRequests > 0 {
		e.minReq = minRequests
	}
	e.mu.Unlock()
}

// Objectives returns the declared objectives (zero value on nil).
func (e *Engine) Objectives() Objectives {
	if e == nil {
		return Objectives{}
	}
	return e.obj
}

// Enabled reports whether the engine records anything.
func (e *Engine) Enabled() bool { return e != nil }

// Record ingests one request: its outcome and its latency split
// (milliseconds; queue wait, evaluator time, and the total including
// encode). Shed and timed-out requests carry only their queue wait.
// Nil-safe and allocation-free.
func (e *Engine) Record(o Outcome, queueMS, evalMS, totalMS float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	now := e.now()
	e.requests++
	if o >= 0 && int(o) < len(e.outcomes) {
		e.outcomes[o]++
	}
	slow := o == OK && e.obj.LatencyP99MS > 0 && totalMS > e.obj.LatencyP99MS
	if slow {
		e.slow++
	}
	for _, w := range [2]*window{e.short, e.long} {
		b := w.slot(now)
		b.total++
		if slow {
			b.slow++
		}
		if o != ClientError {
			b.avail++
			if o == Shed || o == Timeout {
				b.bad++
			}
		}
	}
	e.totalMS.observe(totalMS)
	e.queueMS.observe(queueMS)
	if o == OK || o == ClientError {
		e.evalMS.observe(evalMS)
	}
	e.mu.Unlock()
}

// Dist summarizes one duration distribution (milliseconds).
type Dist struct {
	N      int64   `json:"n"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Burn is one objective's burn rate over one window. A rate of 1 means
// the error budget is being consumed exactly as fast as the objective
// allows; 0 means no budget spent.
type Burn struct {
	// Requests is the window's population for this objective's
	// denominator (OK requests for latency, availability-eligible
	// requests for availability).
	Requests int64 `json:"requests"`
	// Bad counts the budget-consuming requests in the window.
	Bad int64 `json:"bad"`
	// Rate is (Bad/Requests) / (1 − target); 0 for an empty window.
	Rate float64 `json:"rate"`
}

// WindowReport is one window's burn rates.
type WindowReport struct {
	// Seconds is the window span.
	Seconds float64 `json:"seconds"`
	// Latency and Availability are present when the objective is
	// declared.
	Latency      *Burn `json:"latency,omitempty"`
	Availability *Burn `json:"availability,omitempty"`
}

// Report is the full SLO evaluation — the /slo payload and the
// cmd/loadgen -slo verdict input.
type Report struct {
	Objectives Objectives `json:"objectives"`
	// UptimeSeconds is the observation span so far.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts every recorded request; OK/ClientErrors/Shed/
	// Timeouts break it down.
	Requests     int64 `json:"requests"`
	OK           int64 `json:"ok"`
	ClientErrors int64 `json:"client_errors"`
	Shed         int64 `json:"shed"`
	Timeouts     int64 `json:"timeouts"`
	// SlowRequests counts lifetime latency-threshold breaches.
	SlowRequests int64 `json:"slow_requests"`
	// TotalMS, QueueMS and EvalMS are the lifetime latency distributions
	// (total includes queue wait and encode; eval is evaluator time
	// only).
	TotalMS Dist `json:"total_ms"`
	QueueMS Dist `json:"queue_ms"`
	EvalMS  Dist `json:"eval_ms"`
	// Window5m and Window1h are the two burn-rate horizons.
	Window5m WindowReport `json:"window_5m"`
	Window1h WindowReport `json:"window_1h"`
	// Overall mirrors the windows over the whole observation span — the
	// offline gate cmd/loadgen -slo evaluates (burn ≥ 1 over the run
	// means the run as a whole blew its budget).
	Overall WindowReport `json:"overall"`
	// FastBurn is true when some objective burns at ≥ the fast-burn
	// threshold on BOTH windows (with at least the minimum population in
	// each) — the condition that flips /healthz degraded.
	FastBurn bool `json:"fast_burn"`
	// Breached lists the objectives burning fast ("latency",
	// "availability").
	Breached []string `json:"breached,omitempty"`
}

// burn computes one objective's burn over a (good-denominator, bad)
// count pair.
func burnRate(denom, bad int64, target float64) float64 {
	if denom == 0 || target >= 1 {
		return 0
	}
	return (float64(bad) / float64(denom)) / (1 - target)
}

// windowReport evaluates both objectives over the given sums.
func (e *Engine) windowReport(seconds float64, total, slow, avail, bad int64) WindowReport {
	wr := WindowReport{Seconds: seconds}
	if e.obj.LatencyP99MS > 0 {
		// Latency denominator: requests that completed (total − shed −
		// timeouts is not tracked per window; OK-vs-slow uses total−bad,
		// which also excludes client errors only from slowness, never
		// from the denominator — slow is counted on OK requests only, so
		// the rate under-reports slightly under heavy shedding, which is
		// itself an availability breach).
		done := total - bad
		wr.Latency = &Burn{Requests: done, Bad: slow, Rate: burnRate(done, slow, latencyTarget)}
	}
	if e.obj.Availability > 0 {
		wr.Availability = &Burn{Requests: avail, Bad: bad, Rate: burnRate(avail, bad, e.obj.Availability)}
	}
	return wr
}

// fastBurning reports whether one objective extracted from two window
// reports exceeds the fast-burn threshold on both, with both windows
// sufficiently populated.
func (e *Engine) fastBurning(short, long *Burn) bool {
	return short != nil && long != nil &&
		short.Requests >= e.minReq && long.Requests >= e.minReq &&
		short.Rate >= e.fastBurn && long.Rate >= e.fastBurn
}

// Report evaluates the objectives now. A nil engine returns the zero
// Report.
func (e *Engine) Report() Report {
	if e == nil {
		return Report{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	rep := Report{
		Objectives:    e.obj,
		UptimeSeconds: now.Sub(e.started).Seconds(),
		Requests:      e.requests,
		OK:            e.outcomes[OK],
		ClientErrors:  e.outcomes[ClientError],
		Shed:          e.outcomes[Shed],
		Timeouts:      e.outcomes[Timeout],
		SlowRequests:  e.slow,
		TotalMS:       e.totalMS.dist(),
		QueueMS:       e.queueMS.dist(),
		EvalMS:        e.evalMS.dist(),
	}
	st, ss, sa, sb := e.short.sum(now)
	lt, ls, la, lb := e.long.sum(now)
	rep.Window5m = e.windowReport(ShortWindow.Seconds(), st, ss, sa, sb)
	rep.Window1h = e.windowReport(LongWindow.Seconds(), lt, ls, la, lb)
	bad := e.outcomes[Shed] + e.outcomes[Timeout]
	rep.Overall = e.windowReport(rep.UptimeSeconds, e.requests,
		e.slow, e.requests-e.outcomes[ClientError], bad)
	if e.fastBurning(rep.Window5m.Latency, rep.Window1h.Latency) {
		rep.Breached = append(rep.Breached, "latency")
	}
	if e.fastBurning(rep.Window5m.Availability, rep.Window1h.Availability) {
		rep.Breached = append(rep.Breached, "availability")
	}
	rep.FastBurn = len(rep.Breached) > 0
	return rep
}

// FastBurn reports whether some objective currently burns at or above
// the fast-burn threshold on both windows — the /healthz degraded
// condition. Nil-safe.
func (e *Engine) FastBurn() bool {
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	st, ss, sa, sb := e.short.sum(now)
	lt, ls, la, lb := e.long.sum(now)
	short := e.windowReport(ShortWindow.Seconds(), st, ss, sa, sb)
	long := e.windowReport(LongWindow.Seconds(), lt, ls, la, lb)
	return e.fastBurning(short.Latency, long.Latency) ||
		e.fastBurning(short.Availability, long.Availability)
}

// GateBreaches evaluates r as a CI gate: each objective whose burn over
// the whole observation span reached 1 (the run as a whole spent more
// error budget than the objective allows) is returned by name. An empty
// result is a pass.
func GateBreaches(r Report) []string {
	var out []string
	if b := r.Overall.Latency; b != nil && b.Rate >= 1 {
		out = append(out, "latency")
	}
	if b := r.Overall.Availability; b != nil && b.Rate >= 1 {
		out = append(out, "availability")
	}
	return out
}
