package obs

import (
	"testing"
	"time"
)

func TestRegistryCountersGaugesWall(t *testing.T) {
	r := NewRegistry()
	r.Inc(MetricSeqUpdates, 3)
	r.Inc(MetricSeqUpdates, 2)
	r.SetGauge(GaugeBufferOccupancy, 0.25)
	r.SetGauge(GaugeBufferOccupancy, 0.75) // gauges keep the latest value
	r.AddWall("seq_train", 250*time.Millisecond)
	r.AddWall("seq_train", 250*time.Millisecond)

	s := r.Snapshot()
	if s.Counter(MetricSeqUpdates) != 5 {
		t.Fatalf("counter = %d, want 5", s.Counter(MetricSeqUpdates))
	}
	if s.Gauges[GaugeBufferOccupancy] != 0.75 {
		t.Fatalf("gauge = %g, want 0.75", s.Gauges[GaugeBufferOccupancy])
	}
	if got := s.WallSeconds["seq_train"]; got < 0.499 || got > 0.501 {
		t.Fatalf("wall = %g, want 0.5", got)
	}

	// Snapshot is a copy: later mutation must not leak in.
	r.Inc(MetricSeqUpdates, 100)
	if s.Counter(MetricSeqUpdates) != 5 {
		t.Fatal("snapshot aliased live registry state")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("h", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		r.Observe("h", v)
	}
	h := r.Snapshot().Histograms["h"]
	// Inclusive upper bounds: [<=1]=2 (0.5, 1), [<=2]=2 (1.5, 2),
	// [<=5]=1 (3), overflow=1 (10).
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.N != 6 || h.Min != 0.5 || h.Max != 10 {
		t.Fatalf("summary wrong: n=%d min=%g max=%g", h.N, h.Min, h.Max)
	}
	if mean := h.Mean(); mean < 3 || mean > 3.1 {
		t.Fatalf("mean = %g, want 3", mean)
	}
}

func TestObserveCreatesDefaultHistogram(t *testing.T) {
	r := NewRegistry()
	r.Observe(GaugeBetaSigmaMax, 1.5)
	h := r.Snapshot().Histograms[GaugeBetaSigmaMax]
	if h == nil || h.N != 1 {
		t.Fatalf("implicit histogram missing: %+v", h)
	}
	if len(h.Bounds) != len(DefaultBuckets) {
		t.Fatalf("want default buckets, got %v", h.Bounds)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("h", []float64{1, 10})
	r.Observe("h", 5)
	r.Inc("c", 9)
	r.SetGauge("g", 1)
	r.AddWall("p", time.Second)
	r.Reset()
	s := r.Snapshot()
	if s.Counter("c") != 0 || len(s.Gauges) != 0 || len(s.WallSeconds) != 0 {
		t.Fatalf("reset incomplete: %+v", s)
	}
	h := s.Histograms["h"]
	if h == nil {
		t.Fatal("reset dropped registered histogram layout")
	}
	if h.N != 0 || len(h.Bounds) != 2 {
		t.Fatalf("histogram not zeroed: %+v", h)
	}
}

func TestHistogramEmptyMean(t *testing.T) {
	h := newHistogram([]float64{1})
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean must be 0")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90})
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	// Uniform 1..100: the interpolated estimates should land within one
	// bucket width of the exact quantiles.
	for _, tc := range []struct{ p, want, tol float64 }{
		{0.50, 50, 5},
		{0.95, 95, 5},
		{0.99, 99, 5},
		{0.10, 10, 5},
	} {
		if got := h.Quantile(tc.p); got < tc.want-tc.tol || got > tc.want+tc.tol {
			t.Fatalf("Quantile(%g) = %g, want %g ± %g", tc.p, got, tc.want, tc.tol)
		}
	}
	// Edges clamp to the observed range.
	if h.Quantile(0) != 1 || h.Quantile(-1) != 1 {
		t.Fatalf("p<=0 must return Min, got %g", h.Quantile(0))
	}
	if h.Quantile(1) != 100 || h.Quantile(2) != 100 {
		t.Fatalf("p>=1 must return Max, got %g", h.Quantile(1))
	}
	// Estimates never leave [Min, Max] even in outer buckets.
	if q := h.Quantile(0.001); q < 1 || q > 100 {
		t.Fatalf("quantile escaped observed range: %g", q)
	}
	if q := h.Quantile(0.999); q < 1 || q > 100 {
		t.Fatalf("quantile escaped observed range: %g", q)
	}
}

func TestHistogramQuantileDegenerate(t *testing.T) {
	empty := NewHistogram([]float64{1, 2})
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// All mass in the overflow bucket: interpolation runs from the last
	// bound toward Max but the clamp keeps it within what was observed.
	over := NewHistogram([]float64{1})
	over.Observe(7)
	over.Observe(7)
	if q := over.Quantile(0.5); q < 1 || q > 7 {
		t.Fatalf("overflow-only quantile out of range: %g", q)
	}
	// No bounds at all: everything interpolates across [Min, Max].
	flat := NewHistogram(nil)
	flat.Observe(10)
	flat.Observe(20)
	if q := flat.Quantile(0.5); q < 10 || q > 20 {
		t.Fatalf("boundless quantile out of range: %g", q)
	}
}

func TestSnapshotFillsQuantiles(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("h", []float64{10, 100})
	for v := 1.0; v <= 50; v++ {
		r.Observe("h", v)
	}
	live := r.hists["h"]
	if live.P50 != 0 || live.P95 != 0 || live.P99 != 0 {
		t.Fatalf("live histogram must not carry quantiles: %+v", live)
	}
	h := r.Snapshot().Histograms["h"]
	if h.P50 == 0 || h.P95 == 0 || h.P99 == 0 {
		t.Fatalf("snapshot quantiles missing: %+v", h)
	}
	if !(h.P50 <= h.P95 && h.P95 <= h.P99) {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", h.P50, h.P95, h.P99)
	}
	if h.P99 > h.Max || h.P50 < h.Min {
		t.Fatalf("quantiles escaped [Min, Max]: %+v", h)
	}
}
