package obs

import (
	"testing"
	"time"
)

func TestRegistryCountersGaugesWall(t *testing.T) {
	r := NewRegistry()
	r.Inc(MetricSeqUpdates, 3)
	r.Inc(MetricSeqUpdates, 2)
	r.SetGauge(GaugeBufferOccupancy, 0.25)
	r.SetGauge(GaugeBufferOccupancy, 0.75) // gauges keep the latest value
	r.AddWall("seq_train", 250*time.Millisecond)
	r.AddWall("seq_train", 250*time.Millisecond)

	s := r.Snapshot()
	if s.Counter(MetricSeqUpdates) != 5 {
		t.Fatalf("counter = %d, want 5", s.Counter(MetricSeqUpdates))
	}
	if s.Gauges[GaugeBufferOccupancy] != 0.75 {
		t.Fatalf("gauge = %g, want 0.75", s.Gauges[GaugeBufferOccupancy])
	}
	if got := s.WallSeconds["seq_train"]; got < 0.499 || got > 0.501 {
		t.Fatalf("wall = %g, want 0.5", got)
	}

	// Snapshot is a copy: later mutation must not leak in.
	r.Inc(MetricSeqUpdates, 100)
	if s.Counter(MetricSeqUpdates) != 5 {
		t.Fatal("snapshot aliased live registry state")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("h", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		r.Observe("h", v)
	}
	h := r.Snapshot().Histograms["h"]
	// Inclusive upper bounds: [<=1]=2 (0.5, 1), [<=2]=2 (1.5, 2),
	// [<=5]=1 (3), overflow=1 (10).
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.N != 6 || h.Min != 0.5 || h.Max != 10 {
		t.Fatalf("summary wrong: n=%d min=%g max=%g", h.N, h.Min, h.Max)
	}
	if mean := h.Mean(); mean < 3 || mean > 3.1 {
		t.Fatalf("mean = %g, want 3", mean)
	}
}

func TestObserveCreatesDefaultHistogram(t *testing.T) {
	r := NewRegistry()
	r.Observe(GaugeBetaSigmaMax, 1.5)
	h := r.Snapshot().Histograms[GaugeBetaSigmaMax]
	if h == nil || h.N != 1 {
		t.Fatalf("implicit histogram missing: %+v", h)
	}
	if len(h.Bounds) != len(DefaultBuckets) {
		t.Fatalf("want default buckets, got %v", h.Bounds)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("h", []float64{1, 10})
	r.Observe("h", 5)
	r.Inc("c", 9)
	r.SetGauge("g", 1)
	r.AddWall("p", time.Second)
	r.Reset()
	s := r.Snapshot()
	if s.Counter("c") != 0 || len(s.Gauges) != 0 || len(s.WallSeconds) != 0 {
		t.Fatalf("reset incomplete: %+v", s)
	}
	h := s.Histograms["h"]
	if h == nil {
		t.Fatal("reset dropped registered histogram layout")
	}
	if h.N != 0 || len(h.Bounds) != 2 {
		t.Fatalf("histogram not zeroed: %+v", h)
	}
}

func TestHistogramEmptyMean(t *testing.T) {
	h := newHistogram([]float64{1})
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean must be 0")
	}
}
