// Package obs is the runtime observability layer: structured run events,
// a metrics registry and run manifests. The training stack (harness,
// qnet/dqn/fpga agents, cmd tools) emits through an *Emitter; a nil
// *Emitter is the fully disabled state — every method is nil-safe and
// returns immediately, so the hot path pays one pointer comparison when
// observability is off.
//
// Events are JSON Lines: one JSON object per line, schema documented on
// Event (and in README.md §Observability). Manifests are single JSON
// documents tying a results file to the exact configuration that produced
// it (manifest.go). Metrics are in-process counters/gauges/histograms
// snapshotted into the run_end event and available programmatically
// (metrics.go).
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event types emitted by the training stack. The set is open — consumers
// must tolerate unknown types — but these cover the paper's Algorithm 1
// control flow.
const (
	// EventRunStart opens a run: labels carry design and env.
	EventRunStart = "run_start"
	// EventEpisodeEnd closes one episode: episode, steps, score,
	// moving_avg, resets.
	EventEpisodeEnd = "episode_end"
	// EventSeqUpdate is one OS-ELM rank-1 sequential update (Algorithm 1
	// line 22): step, target, clipped (0/1).
	EventSeqUpdate = "seq_update"
	// EventInitTrain is an initial training / batch-ELM retrain on a full
	// buffer D (lines 16-19): size, wall_ms, retrain (0/1).
	EventInitTrain = "init_train"
	// EventReinit is a §4.3 weight reinitialization: episode,
	// episodes_since_reset.
	EventReinit = "reinit"
	// EventTheta2Sync is the θ2 ← θ1 target sync (lines 23-24): episode,
	// and beta_sigma_max when the model exposes it.
	EventTheta2Sync = "theta2_sync"
	// EventTrainStep is one DQN gradient step: step, batch.
	EventTrainStep = "train_step"
	// EventRunEnd closes a run with the solve/impossible verdict: solved
	// (0/1), episodes, total_steps, resets, wall_ms, plus one
	// wall_ms_<phase> entry per timed phase, and — with a watchdog
	// attached — diverged (0/1) and numeric_alerts.
	EventRunEnd = "run_end"
	// EventDeviceProfile is a cumulative device-profiler snapshot (FPGA
	// agents armed with -profile), flushed with the episode-end metrics:
	// data carries total_cycles, one cycles_<phase>_<kernel>_<unit> entry
	// per nonzero attribution cell, ops_<unit> operation counts and
	// bram_<bank>_<op> access counts — all cumulative, so the last event
	// per label group is the run's profile (what `runlog profile` reads).
	EventDeviceProfile = "device_profile"
	// EventNumericAlert is the first trip of one divergence-watchdog rule:
	// data carries value and threshold; labels carry rule and metric (see
	// the Rule* constants in watchdog.go). Emitted at most once per
	// (rule, metric) pair, so a runaway series cannot flood the log.
	EventNumericAlert = "numeric_alert"
	// EventFleetSim summarizes one simulated fleet device
	// (internal/fleet): data carries cores, jobs, dispatches,
	// makespan_s, speedup and dispatcher queue depths; the matching
	// fleet_* gauges hold the same numbers as scrapeable series.
	EventFleetSim = "fleet_sim"
)

// Event is one line of a JSONL run log.
type Event struct {
	// Type is one of the Event* constants (or a consumer-defined type).
	Type string `json:"type"`
	// Seq is a per-sink monotonically increasing sequence number; with
	// concurrent trials writing to one sink it orders the merged stream.
	Seq int64 `json:"seq"`
	// WallMS is milliseconds since the emitter was created.
	WallMS float64 `json:"wall_ms"`
	// Episode is the 1-based episode number, when meaningful.
	Episode int `json:"episode,omitempty"`
	// Data holds the event's numeric payload.
	Data map[string]float64 `json:"data,omitempty"`
	// Labels holds string context (design, env, trial, ...), set once per
	// emitter via With and attached to every event it emits.
	Labels map[string]string `json:"labels,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent use;
// the harness's parallel trial runner writes one merged stream.
type Sink interface {
	Write(ev *Event) error
	Close() error
}

// jsonlSink writes one JSON document per line through a buffered writer.
type jsonlSink struct {
	mu  sync.Mutex
	buf *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	seq int64
	err error
}

// NewJSONLSink wraps w in a buffered JSONL sink. If w is an io.Closer,
// Close closes it after flushing.
func NewJSONLSink(w io.Writer) Sink {
	buf := bufio.NewWriter(w)
	s := &jsonlSink{buf: buf, enc: json.NewEncoder(buf)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

func (s *jsonlSink) Write(ev *Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.seq++
	ev.Seq = s.seq
	if err := s.enc.Encode(ev); err != nil {
		s.err = err
		return err
	}
	return nil
}

func (s *jsonlSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.buf.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// Emitter attaches a metrics registry and a label set to a sink. The zero
// value of *Emitter (nil) is the disabled state: every method no-ops, so
// callers thread a possibly-nil *Emitter without guards.
type Emitter struct {
	sink     Sink
	reg      *Registry
	tracer   *Tracer
	watchdog *Watchdog
	labels   map[string]string
	start    time.Time
}

// NewEmitter builds an emitter over sink with a fresh metrics registry.
// sink may be nil (metrics-only observability).
func NewEmitter(sink Sink) *Emitter {
	return &Emitter{sink: sink, reg: NewRegistry(), start: time.Now()}
}

// With derives an emitter sharing the sink, registry and clock but
// attaching the extra labels to every event — how the parallel trial
// runner tags each trial's events in the merged stream.
func (e *Emitter) With(labels map[string]string) *Emitter {
	if e == nil {
		return nil
	}
	merged := make(map[string]string, len(e.labels)+len(labels))
	for k, v := range e.labels {
		merged[k] = v
	}
	for k, v := range labels {
		merged[k] = v
	}
	return &Emitter{sink: e.sink, reg: e.reg, tracer: e.tracer, watchdog: e.watchdog, labels: merged, start: e.start}
}

// SetWatchdog attaches a divergence watchdog: every Inc/SetGauge/Observe
// is additionally evaluated against its threshold rules, and a first trip
// emits one numeric_alert event plus the watchdog_* metrics. Attaching
// records watchdog_diverged = 0 immediately, so a metrics snapshot
// distinguishes "watched and clean" (0) from "never watched" (absent).
// Derived emitters created later via With share it. A nil watchdog (the
// default) disables the checks at the cost of one pointer comparison.
// Nil-safe.
func (e *Emitter) SetWatchdog(w *Watchdog) {
	if e == nil {
		return
	}
	e.watchdog = w
	if w != nil {
		e.reg.SetGauge(GaugeWatchdogDiverged, 0)
	}
}

// Watchdog returns the attached watchdog (nil when absent or for a nil
// emitter).
func (e *Emitter) Watchdog() *Watchdog {
	if e == nil {
		return nil
	}
	return e.watchdog
}

// alert records a first-trip watchdog alert: the watchdog_* metrics plus
// one numeric_alert event carrying the rule and offending metric as
// labels. Alerts are rare by construction (one event per (rule, metric)
// pair), so the label-merging allocation here is off the hot path.
func (e *Emitter) alert(al Alert) {
	e.reg.Inc(MetricWatchdogAlerts, 1)
	e.reg.SetGauge(GaugeWatchdogDiverged, 1)
	e.With(map[string]string{"rule": al.Rule, "metric": al.Metric}).
		Emit(EventNumericAlert, 0, map[string]float64{
			"value":     al.Value,
			"threshold": al.Threshold,
		})
}

// SetTracer attaches a span tracer; derived emitters created later via
// With share it. A nil tracer (the default) disables span recording.
// Nil-safe.
func (e *Emitter) SetTracer(t *Tracer) {
	if e == nil {
		return
	}
	e.tracer = t
}

// Tracer returns the attached tracer (nil when absent or for a nil
// emitter).
func (e *Emitter) Tracer() *Tracer {
	if e == nil {
		return nil
	}
	return e.tracer
}

// StartSpan opens a phase span on the attached tracer. With no tracer —
// or a nil emitter — it returns the inactive zero Span at the cost of a
// nil check, keeping the hot path free when tracing is off.
func (e *Emitter) StartSpan(name string) Span {
	if e == nil || e.tracer == nil {
		return Span{}
	}
	return e.tracer.StartSpan(name)
}

// Enabled reports whether the emitter records anything.
func (e *Emitter) Enabled() bool { return e != nil }

// Metrics returns the registry (nil for a nil emitter).
func (e *Emitter) Metrics() *Registry {
	if e == nil {
		return nil
	}
	return e.reg
}

// Emit writes one event. data is owned by the emitter after the call.
func (e *Emitter) Emit(typ string, episode int, data map[string]float64) {
	if e == nil || e.sink == nil {
		return
	}
	e.sink.Write(&Event{
		Type:    typ,
		WallMS:  float64(time.Since(e.start)) / float64(time.Millisecond),
		Episode: episode,
		Data:    data,
		Labels:  e.labels,
	})
}

// EmitLabeled writes one event carrying extra per-event labels on top of
// the emitter's own label set — the per-request path behind serve_access
// events, where the trace ID and route differ on every line and deriving
// a whole emitter via With would be wasteful. data and labels are owned
// by the emitter after the call. Like Emit, a nil emitter or sink-less
// emitter returns immediately.
func (e *Emitter) EmitLabeled(typ string, labels map[string]string, data map[string]float64) {
	if e == nil || e.sink == nil {
		return
	}
	if len(e.labels) > 0 {
		merged := make(map[string]string, len(e.labels)+len(labels))
		for k, v := range e.labels {
			merged[k] = v
		}
		for k, v := range labels {
			merged[k] = v
		}
		labels = merged
	}
	e.sink.Write(&Event{
		Type:   typ,
		WallMS: float64(time.Since(e.start)) / float64(time.Millisecond),
		Data:   data,
		Labels: labels,
	})
}

// Inc adds delta to the named counter.
func (e *Emitter) Inc(name string, delta int64) {
	if e == nil {
		return
	}
	e.reg.Inc(name, delta)
	if e.watchdog != nil {
		if al, first := e.watchdog.CheckCounter(name, delta); first {
			e.alert(al)
		}
	}
}

// SetGauge records the latest value of the named gauge.
func (e *Emitter) SetGauge(name string, v float64) {
	if e == nil {
		return
	}
	e.reg.SetGauge(name, v)
	if e.watchdog != nil {
		if al, first := e.watchdog.CheckValue(name, v); first {
			e.alert(al)
		}
	}
}

// Observe adds v to the named histogram (created with DefaultBuckets on
// first use).
func (e *Emitter) Observe(name string, v float64) {
	if e == nil {
		return
	}
	e.reg.Observe(name, v)
	if e.watchdog != nil {
		if al, first := e.watchdog.CheckValue(name, v); first {
			e.alert(al)
		}
	}
}

// AddWall accumulates real wall-clock time for a phase (the companion to
// the modelled device seconds of internal/timing).
func (e *Emitter) AddWall(phase string, d time.Duration) {
	if e == nil {
		return
	}
	e.reg.AddWall(phase, d)
}

// Now returns the current time when enabled and the zero time when
// disabled, so hot paths can skip the clock read entirely:
//
//	t0 := e.Now()
//	... work ...
//	e.AddWallSince("seq_train", t0)
func (e *Emitter) Now() time.Time {
	if e == nil {
		return time.Time{}
	}
	return time.Now()
}

// AddWallSince accumulates wall-clock since t0 (a Now() result); no-op for
// a nil emitter or zero t0.
func (e *Emitter) AddWallSince(phase string, t0 time.Time) {
	if e == nil || t0.IsZero() {
		return
	}
	e.reg.AddWall(phase, time.Since(t0))
}

// Close flushes and closes the sink, if any.
func (e *Emitter) Close() error {
	if e == nil || e.sink == nil {
		return nil
	}
	return e.sink.Close()
}

// ScanEvents streams a JSONL event log, invoking fn once per decoded
// event. The *Event passed to fn is reused between calls — copy it to
// retain it. Memory stays constant in the log length, so multi-million
// step logs summarize without loading into RAM (the ReadEvents
// alternative). Unknown fields are ignored; decode errors (including a
// trailing partial line) and errors returned by fn stop the scan.
func ScanEvents(r io.Reader, fn func(*Event) error) error {
	dec := json.NewDecoder(r)
	var ev Event
	for {
		ev = Event{}
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if err := fn(&ev); err != nil {
			return err
		}
	}
}

// ScanEventsPartial is ScanEvents for logs whose writer may have been
// killed mid-record: a malformed or unterminated *final* line is dropped
// and reported via the truncated return instead of failing the whole
// scan, so crash-landed runs still summarize (and the grid resumer can
// count how far a killed cell got). A newline-terminated line that fails
// to decode anywhere before the end of the stream is still a hard error
// — only the tail can legitimately be torn. A final line that decodes
// but lacks its terminating newline is delivered to fn and reported as
// truncated: the JSONL sink always writes the newline, so its absence
// means the writer died mid-flush and a trailing numeric field may have
// been cut short.
func ScanEventsPartial(r io.Reader, fn func(*Event) error) (truncated bool, err error) {
	br := bufio.NewReader(r)
	var ev Event
	for lineNo := 1; ; lineNo++ {
		line, rerr := br.ReadBytes('\n')
		if len(line) > 0 {
			terminated := line[len(line)-1] == '\n'
			trimmed := trimSpaceBytes(line)
			if len(trimmed) > 0 {
				ev = Event{}
				if jerr := json.Unmarshal(trimmed, &ev); jerr != nil {
					if terminated && rerr == nil {
						return false, fmt.Errorf("obs: event log line %d: %w", lineNo, jerr)
					}
					// Torn tail: drop it.
					return true, nil
				}
				if err := fn(&ev); err != nil {
					return false, err
				}
				if !terminated {
					truncated = true
				}
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				return truncated, nil
			}
			return truncated, rerr
		}
	}
}

// trimSpaceBytes strips leading/trailing ASCII whitespace without
// allocating (bytes.TrimSpace equivalent for the JSONL line case).
func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r' || b[0] == '\n') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r' || b[len(b)-1] == '\n') {
		b = b[:len(b)-1]
	}
	return b
}

// ReadEvents decodes a JSONL stream produced by a JSONL sink into a
// slice. Unknown fields are ignored; a trailing partial line yields an
// error alongside the events decoded so far. Prefer ScanEvents for logs
// of unbounded size.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	err := ScanEvents(r, func(ev *Event) error {
		out = append(out, *ev)
		return nil
	})
	return out, err
}
