package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"oselmrl/internal/obs"
)

var (
	sampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)( [0-9]+)?$`)
	labelRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
	helpRE   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	typeRE   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText validates text against the Prometheus 0.0.4 exposition
// grammar — metric-name and label syntax, float-parseable values, TYPE
// declared before each family's first sample — and returns the samples.
// It is a strict structural check, standing in for a real scraper (no
// external dependencies in this repo).
func parsePromText(t *testing.T, text string) []promSample {
	t.Helper()
	var samples []promSample
	typed := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if m := helpRE.FindStringSubmatch(line); m != nil {
			continue
		} else if strings.HasPrefix(line, "# HELP") {
			t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
		}
		if m := typeRE.FindStringSubmatch(line); m != nil {
			typed[m[1]] = m[2]
			continue
		} else if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: malformed comment: %q", ln+1, line)
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid sample: %q", ln+1, line)
		}
		name, labelText, valueText := m[1], m[2], m[3]
		v, err := strconv.ParseFloat(valueText, 64)
		if err != nil {
			t.Fatalf("line %d: unparseable value %q: %v", ln+1, valueText, err)
		}
		labels := map[string]string{}
		if labelText != "" {
			inner := strings.TrimSuffix(strings.TrimPrefix(labelText, "{"), "}")
			for _, pair := range strings.Split(inner, ",") {
				if !labelRE.MatchString(pair) {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
				k, val, _ := strings.Cut(pair, "=")
				uq, err := strconv.Unquote(val)
				if err != nil {
					t.Fatalf("line %d: label value %q: %v", ln+1, val, err)
				}
				labels[k] = uq
			}
		}
		// Histogram series carry the family name plus a suffix; the TYPE
		// line names the family.
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f := strings.TrimSuffix(name, suf); f != name && typed[f] == "histogram" {
				family = f
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, name)
		}
		samples = append(samples, promSample{name: name, labels: labels, value: v})
	}
	return samples
}

// find returns the samples with the given series name.
func find(samples []promSample, name string) []promSample {
	var out []promSample
	for _, s := range samples {
		if s.name == name {
			out = append(out, s)
		}
	}
	return out
}

func testRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Inc(obs.MetricSeqUpdates, 42)
	r.Inc(obs.MetricInitTrains, 1)
	r.SetGauge(obs.GaugeBufferOccupancy, 0.5)
	r.AddWall("seq_train", 1500*time.Millisecond)
	r.AddWall("predict_seq", 250*time.Millisecond)
	r.NewHistogram("beta_sigma_max", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 10} {
		r.Observe("beta_sigma_max", v)
	}
	return r
}

func TestWriteMetricsTextParses(t *testing.T) {
	var b strings.Builder
	if err := WriteMetricsText(&b, testRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, b.String())

	if s := find(samples, "oselmrl_seq_updates_total"); len(s) != 1 || s[0].value != 42 {
		t.Fatalf("counter wrong: %+v", s)
	}
	if s := find(samples, "oselmrl_buffer_occupancy"); len(s) != 1 || s[0].value != 0.5 {
		t.Fatalf("gauge wrong: %+v", s)
	}
	wall := find(samples, "oselmrl_phase_wall_seconds_total")
	if len(wall) != 2 {
		t.Fatalf("want 2 phase wall samples, got %+v", wall)
	}
	byPhase := map[string]float64{}
	for _, s := range wall {
		byPhase[s.labels["phase"]] = s.value
	}
	if byPhase["seq_train"] != 1.5 || byPhase["predict_seq"] != 0.25 {
		t.Fatalf("wall values wrong: %v", byPhase)
	}

	// Histogram: buckets cumulative and monotone, +Inf equals _count.
	buckets := find(samples, "oselmrl_beta_sigma_max_bucket")
	if len(buckets) != 4 {
		t.Fatalf("want 4 buckets (3 bounds + +Inf), got %+v", buckets)
	}
	prev := -1.0
	var inf float64
	for _, s := range buckets {
		if s.value < prev {
			t.Fatalf("bucket counts not cumulative: %+v", buckets)
		}
		prev = s.value
		if s.labels["le"] == "+Inf" {
			inf = s.value
		}
	}
	count := find(samples, "oselmrl_beta_sigma_max_count")
	if len(count) != 1 || count[0].value != 5 || inf != 5 {
		t.Fatalf("count=%+v +Inf=%g, want 5", count, inf)
	}
	if s := find(samples, "oselmrl_beta_sigma_max_sum"); len(s) != 1 || s[0].value != 16.7 {
		t.Fatalf("sum wrong: %+v", s)
	}
	// Quantile gauges from the Histogram.Quantile satellite.
	for _, q := range []string{"_p50", "_p95", "_p99"} {
		if s := find(samples, "oselmrl_beta_sigma_max"+q); len(s) != 1 || s[0].value < 0.5 || s[0].value > 10 {
			t.Fatalf("quantile %s out of observed range: %+v", q, s)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"seq_updates":    "seq_updates",
		"beta.sigma-max": "beta_sigma_max",
		"9lives":         "_lives",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestServeEndpoints(t *testing.T) {
	reg := testRegistry()
	tr := obs.NewTracer()
	tr.StartSpan("seq_train").EndModelled(0.001)

	srv, err := Serve("127.0.0.1:0", reg, WithTracer(tr), WithPprof())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body, resp := get(t, base+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	samples := parsePromText(t, body)
	if len(find(samples, "oselmrl_seq_updates_total")) != 1 {
		t.Fatal("scraped metrics missing the counter")
	}

	if body, _ := get(t, base+"/healthz"); body != "ok\n" {
		t.Fatalf("healthz = %q", body)
	}

	body, resp = get(t, base+"/snapshot")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("snapshot content type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if snap.Counter(obs.MetricSeqUpdates) != 42 {
		t.Fatalf("snapshot counter = %d, want 42", snap.Counter(obs.MetricSeqUpdates))
	}

	body, _ = get(t, base+"/trace")
	var tf TraceFile
	if err := json.Unmarshal([]byte(body), &tf); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace endpoint returned no events")
	}

	if _, resp := get(t, base+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof not mounted: %d", resp.StatusCode)
	}
}

func TestServeWithoutOptions(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if _, resp := get(t, base+"/trace"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace must 404 without WithTracer, got %d", resp.StatusCode)
	}
	if _, resp := get(t, base+"/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof must 404 without WithPprof, got %d", resp.StatusCode)
	}
	// A nil registry serves an empty but valid exposition.
	body, resp := get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics on nil registry: %d", resp.StatusCode)
	}
	parsePromText(t, body)
}

// TestConcurrentScrapeWhileEmitting is the issue's -race requirement: a
// training-loop stand-in hammers the shared registry and tracer while
// /metrics and /trace are scraped concurrently. Run with -race this
// proves scrapes take consistent snapshots without stalling emission.
func TestConcurrentScrapeWhileEmitting(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	// Keep the span buffer small: the emitters below produce spans far
	// faster than /trace can serialize a near-DefaultMaxSpans timeline.
	tr.SetMaxSpans(2000)
	srv, err := Serve("127.0.0.1:0", reg, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reg.Inc(obs.MetricSeqUpdates, 1)
				reg.SetGauge(obs.GaugeBufferOccupancy, float64(i%100)/100)
				reg.Observe("beta_sigma_max", float64(i%7))
				reg.AddWall("seq_train", time.Microsecond)
				sp := tr.StartSpanGroup("seq_train", fmt.Sprintf("w%d", w))
				sp.EndModelled(1e-6)
			}
		}(w)
	}

	for i := 0; i < 8; i++ {
		body, resp := get(t, base+"/metrics")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, resp.StatusCode)
		}
		parsePromText(t, body)
		if _, resp := get(t, base+"/trace"); resp.StatusCode != http.StatusOK {
			t.Fatalf("trace scrape %d: status %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()

	// After emission stops the scrape must reflect everything emitted.
	body, _ := get(t, base+"/metrics")
	samples := parsePromText(t, body)
	s := find(samples, "oselmrl_seq_updates_total")
	if len(s) != 1 || s[0].value <= 0 {
		t.Fatalf("final counter missing: %+v", s)
	}
}

// TestWriteMetricsTextLabeledSeries: obs.Labeled registry keys must
// render as real Prometheus labels, with one HELP/TYPE header per family
// even when the family has many series — the shape the device profiler's
// fpga_cycles/fpga_bram_access counters and occupancy gauges rely on.
func TestWriteMetricsTextLabeledSeries(t *testing.T) {
	r := obs.NewRegistry()
	r.Inc(obs.Labeled(obs.MetricFPGACycles, "phase", "predict", "kernel", "hidden_pass", "unit", "add"), 320)
	r.Inc(obs.Labeled(obs.MetricFPGACycles, "phase", "seq_train", "kernel", "p_h", "unit", "mul"), 1024)
	r.Inc(obs.Labeled(obs.MetricFPGABRAMAccess, "bank", "P", "op", "read"), 2048)
	r.SetGauge(obs.Labeled(obs.GaugeFPGAUnitBusy, "unit", "div"), 0.05)

	var b strings.Builder
	if err := WriteMetricsText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := parsePromText(t, text)

	cyc := find(samples, "oselmrl_fpga_cycles_total")
	if len(cyc) != 2 {
		t.Fatalf("fpga_cycles series = %d, want 2\n%s", len(cyc), text)
	}
	for _, s := range cyc {
		switch s.labels["phase"] {
		case "predict":
			if s.labels["kernel"] != "hidden_pass" || s.labels["unit"] != "add" || s.value != 320 {
				t.Errorf("predict series wrong: %+v", s)
			}
		case "seq_train":
			if s.labels["kernel"] != "p_h" || s.labels["unit"] != "mul" || s.value != 1024 {
				t.Errorf("seq_train series wrong: %+v", s)
			}
		default:
			t.Errorf("unexpected phase %q", s.labels["phase"])
		}
	}
	if got := find(samples, "oselmrl_fpga_bram_access_total"); len(got) != 1 ||
		got[0].labels["bank"] != "P" || got[0].labels["op"] != "read" || got[0].value != 2048 {
		t.Errorf("bram series wrong: %+v", got)
	}
	if got := find(samples, "oselmrl_fpga_unit_busy_fraction"); len(got) != 1 ||
		got[0].labels["unit"] != "div" || got[0].value != 0.05 {
		t.Errorf("occupancy gauge wrong: %+v", got)
	}
	// One header per family: the two fpga_cycles series share one TYPE line.
	if n := strings.Count(text, "# TYPE oselmrl_fpga_cycles_total counter"); n != 1 {
		t.Errorf("fpga_cycles TYPE lines = %d, want 1", n)
	}
}
