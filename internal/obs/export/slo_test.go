package export

import (
	"encoding/json"
	"net/http"
	"testing"

	"oselmrl/internal/obs/slo"
)

// WithSLO serves the burn-rate report at /slo and degrades /healthz to
// 503 during a fast burn.
func TestServeSLO(t *testing.T) {
	eng := slo.NewEngine(slo.DefaultObjectives())
	srv, err := Serve("127.0.0.1:0", nil, WithSLO(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Healthy traffic: /slo reports it, /healthz stays ok.
	for i := 0; i < 50; i++ {
		eng.Record(slo.OK, 0.01, 0.02, 0.05)
	}
	body, resp := get(t, base+"/slo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/slo status %d", resp.StatusCode)
	}
	var rep slo.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/slo not JSON: %v", err)
	}
	if rep.Requests != 50 || rep.OK != 50 || rep.FastBurn {
		t.Fatalf("/slo report %+v", rep)
	}
	if body, resp := get(t, base+"/healthz"); resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthy /healthz = %d %q", resp.StatusCode, body)
	}

	// Burn the availability budget fast: everything shed.
	for i := 0; i < 100; i++ {
		eng.Record(slo.Shed, 0.5, 0, 0.5)
	}
	body, resp = get(t, base+"/slo")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/slo during fast burn = %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.FastBurn || len(rep.Breached) == 0 {
		t.Fatalf("fast-burn report %+v", rep)
	}
	body, resp = get(t, base+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || body != "degraded\n" {
		t.Fatalf("degraded /healthz = %d %q", resp.StatusCode, body)
	}
}

// Without WithSLO (or with a nil engine) /slo stays unmounted and
// /healthz keeps its unconditional ok.
func TestServeSLOAbsent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, WithSLO(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if _, resp := get(t, base+"/slo"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/slo must 404 without an engine, got %d", resp.StatusCode)
	}
	if body, resp := get(t, base+"/healthz"); resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
}
