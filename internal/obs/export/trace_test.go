package export

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"oselmrl/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSpans is a deterministic timeline exercising every exporter
// feature: the default group and a named group, spans with and without
// modelled counterparts, and paper phase names.
func goldenSpans() []obs.SpanRecord {
	return []obs.SpanRecord{
		{Name: "episode", StartUS: 0, DurUS: 1500},
		{Name: "predict_seq", StartUS: 100, DurUS: 40, ModelUS: 10},
		{Name: "seq_train", StartUS: 200, DurUS: 300, ModelUS: 120},
		{Name: "seq_train", StartUS: 600, DurUS: 280, ModelUS: 110},
		{Name: "init_train", Group: "trial=1", StartUS: 50, DurUS: 400, ModelUS: 600},
	}
}

// validateTraceFile checks tf against the Chrome trace-event schema
// subset the exporter emits: ph X/M only, microsecond ts/dur, 1-based
// pids, the two fixed track tids, named processes and threads, and a
// wall-track partner for every modelled event.
func validateTraceFile(t *testing.T, tf TraceFile) {
	t.Helper()
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	if tf.OtherData["format"] != "oselmrl-span-trace" {
		t.Fatalf("format marker missing: %v", tf.OtherData)
	}
	type track struct {
		pid, tid int
	}
	named := map[track]bool{}
	processes := map[int]bool{}
	wallByName := map[string]int{}
	modelByName := map[string]int{}
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				if ev.Args["name"] == "" {
					t.Fatalf("event %d: unnamed process", i)
				}
				processes[ev.PID] = true
			case "thread_name":
				if ev.TID != tidWall && ev.TID != tidModel {
					t.Fatalf("event %d: metadata for unknown tid %d", i, ev.TID)
				}
				named[track{ev.PID, ev.TID}] = true
			default:
				t.Fatalf("event %d: unknown metadata %q", i, ev.Name)
			}
		case "X":
			if ev.TS < 0 || ev.Dur < 0 {
				t.Fatalf("event %d: negative time: %+v", i, ev)
			}
			if ev.PID < 1 {
				t.Fatalf("event %d: pid %d not 1-based", i, ev.PID)
			}
			if !processes[ev.PID] {
				t.Fatalf("event %d: pid %d has no process_name metadata", i, ev.PID)
			}
			if !named[track{ev.PID, ev.TID}] {
				t.Fatalf("event %d: tid %d/%d has no thread_name metadata", i, ev.PID, ev.TID)
			}
			switch ev.TID {
			case tidWall:
				if ev.Cat != "wall" {
					t.Fatalf("event %d: wall track cat = %q", i, ev.Cat)
				}
				wallByName[ev.Name]++
			case tidModel:
				if ev.Cat != "modelled" {
					t.Fatalf("event %d: model track cat = %q", i, ev.Cat)
				}
				if ev.Args["model_us"] == nil {
					t.Fatalf("event %d: modelled event without model_us arg", i)
				}
				modelByName[ev.Name]++
			default:
				t.Fatalf("event %d: X event on unknown tid %d", i, ev.TID)
			}
		default:
			t.Fatalf("event %d: unsupported ph %q", i, ev.Ph)
		}
	}
	// Both tracks must be populated, and every modelled phase must have a
	// measured-wall partner of the same name.
	if len(wallByName) == 0 || len(modelByName) == 0 {
		t.Fatalf("missing a track: wall=%v model=%v", wallByName, modelByName)
	}
	for name, n := range modelByName {
		if wallByName[name] < n {
			t.Fatalf("modelled %q events (%d) exceed wall partners (%d)", name, n, wallByName[name])
		}
	}
}

func TestBuildTraceTwoTracks(t *testing.T) {
	tf := BuildTrace(goldenSpans(), TraceMeta{
		Tool:    "test",
		Labels:  map[string]string{"design": "OS-ELM"},
		Dropped: 2,
	})
	validateTraceFile(t, tf)
	if tf.OtherData["tool"] != "test" || tf.OtherData["label_design"] != "OS-ELM" {
		t.Fatalf("meta not carried: %v", tf.OtherData)
	}
	if tf.OtherData["dropped_spans"] != int64(2) {
		t.Fatalf("dropped_spans = %v, want 2", tf.OtherData["dropped_spans"])
	}

	// The modelled track lays spans end-to-end per group: the two
	// seq_train modelled events must abut (10 us predict + 120 us first
	// seq_train → second starts at 130).
	var modelTS []float64
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && ev.TID == tidModel && ev.PID == 1 {
			modelTS = append(modelTS, ev.TS)
		}
	}
	want := []float64{0, 10, 130}
	if len(modelTS) != len(want) {
		t.Fatalf("default-group modelled events = %v, want %v", modelTS, want)
	}
	for i := range want {
		if modelTS[i] != want[i] {
			t.Fatalf("modelled track not cumulative: %v, want %v", modelTS, want)
		}
	}

	// Groups sort deterministically: "" (run) gets pid 1, trial=1 pid 2.
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && ev.Name == "init_train" && ev.PID != 2 {
			t.Fatalf("grouped span on pid %d, want 2", ev.PID)
		}
	}
}

// TestTraceGolden pins the exact exported JSON. Regenerate with
//
//	go test ./internal/obs/export -run TestTraceGolden -update
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTrace(&buf, goldenSpans(), TraceMeta{Tool: "golden", Labels: map[string]string{"design": "OS-ELM"}})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exported trace drifted from golden file (re-run with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// The golden bytes must themselves satisfy the schema.
	var tf TraceFile
	if err := json.Unmarshal(want, &tf); err != nil {
		t.Fatal(err)
	}
	validateTraceFile(t, tf)
}

func TestEventConverterRebuildsSpans(t *testing.T) {
	labels := map[string]string{"design": "OS-ELM-L2", "trial": "1"}
	events := []obs.Event{
		{Type: obs.EventRunStart, WallMS: 0, Labels: labels},
		{Type: obs.EventInitTrain, WallMS: 12, Labels: labels,
			Data: map[string]float64{"dur_ms": 8, "model_ms": 20}},
		{Type: obs.EventSeqUpdate, WallMS: 15, Labels: labels,
			Data: map[string]float64{"dur_ms": 2, "model_ms": 0.5}},
		{Type: obs.EventTheta2Sync, WallMS: 16, Labels: labels},
		{Type: obs.EventEpisodeEnd, WallMS: 20, Episode: 1, Labels: labels,
			Data: map[string]float64{"steps": 30}},
		{Type: obs.EventEpisodeEnd, WallMS: 31, Episode: 2, Labels: labels,
			Data: map[string]float64{"steps": 40}},
		// A pre-span-tracer log line: no dur_ms, degrades to zero width.
		{Type: obs.EventTrainStep, WallMS: 33, Labels: map[string]string{"design": "DQN"}},
		{Type: obs.EventRunEnd, WallMS: 35, Labels: labels,
			Data: map[string]float64{"solved": 1}},
	}
	conv := NewEventConverter()
	for i := range events {
		if err := conv.Add(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	spans := conv.Spans()
	byName := map[string][]obs.SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}

	it := byName["init_train"]
	if len(it) != 1 || it[0].StartUS != 4000 || it[0].DurUS != 8000 || it[0].ModelUS != 20000 {
		t.Fatalf("init_train span wrong: %+v", it)
	}
	st := byName["seq_train"]
	if len(st) != 1 || st[0].DurUS != 2000 || st[0].ModelUS != 500 {
		t.Fatalf("seq_train span wrong: %+v", st)
	}
	if st[0].Group != "design=OS-ELM-L2 trial=1" {
		t.Fatalf("group key wrong: %q", st[0].Group)
	}
	eps := byName["episode"]
	if len(eps) != 2 || eps[0].StartUS != 0 || eps[0].DurUS != 20000 ||
		eps[1].StartUS != 20000 || eps[1].DurUS != 11000 {
		t.Fatalf("episode spans wrong: %+v", eps)
	}
	td := byName["train_DQN"]
	if len(td) != 1 || td[0].DurUS != 0 || td[0].StartUS != 33000 || td[0].Group != "design=DQN" {
		t.Fatalf("durationless event must become a marker: %+v", td)
	}
	for _, name := range []string{"theta2_sync", "run_end"} {
		if len(byName[name]) != 1 || byName[name][0].DurUS != 0 {
			t.Fatalf("%s marker missing: %+v", name, byName[name])
		}
	}
	if len(byName["run_start"]) != 0 {
		t.Fatal("run_start must not produce a span")
	}

	// The rebuilt spans must export as a schema-valid two-track trace.
	validateTraceFile(t, BuildTrace(spans, TraceMeta{Tool: "runlog export"}))
}
