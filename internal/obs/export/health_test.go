package export

import (
	"encoding/json"
	"net/http"
	"testing"

	"oselmrl/internal/obs"
)

// TestHealthEndpoint covers the /health contract: 200 + healthy JSON while
// the watchdog is clean, 503 + the tripped rules once it diverges, and 404
// without WithWatchdog.
func TestHealthEndpoint(t *testing.T) {
	wd := obs.NewWatchdog(obs.DefaultWatchdogConfig())
	srv, err := Serve("127.0.0.1:0", obs.NewRegistry(), WithWatchdog(wd))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body, resp := get(t, base+"/health")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /health status = %d", resp.StatusCode)
	}
	var report HealthReport
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("/health not JSON: %v", err)
	}
	if !report.Healthy || report.AlertCount != 0 || len(report.Alerts) != 0 {
		t.Fatalf("healthy report = %+v", report)
	}
	if report.Config.MaxBetaSigmaMax != obs.DefaultWatchdogConfig().MaxBetaSigmaMax {
		t.Fatalf("report config = %+v", report.Config)
	}

	// Trip a rule; the endpoint must flip to 503 and list it.
	wd.CheckValue(obs.GaugeBetaSigmaMax, 1e6)
	body, resp = get(t, base+"/health")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("diverged /health status = %d, want 503", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("/health not JSON after trip: %v", err)
	}
	if report.Healthy || report.AlertCount != 1 || len(report.Alerts) != 1 {
		t.Fatalf("diverged report = %+v", report)
	}
	if report.Alerts[0].Rule != obs.RuleSigmaRunaway {
		t.Fatalf("alert rule = %q", report.Alerts[0].Rule)
	}
}

func TestHealthWithoutWatchdog(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, resp := get(t, "http://"+srv.Addr()+"/health"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/health must 404 without WithWatchdog, got %d", resp.StatusCode)
	}
}
