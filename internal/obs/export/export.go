// Package export serves and exports the runtime observability layer of
// internal/obs: a Prometheus text-format /metrics endpoint rendered from
// a Registry snapshot, JSON snapshots, health checks, optional
// net/http/pprof mounting, and Chrome trace-event / Perfetto-compatible
// span timelines (trace.go) pairing measured wall time with the modelled
// device time of internal/timing.
package export

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"

	"oselmrl/internal/obs"
	"oselmrl/internal/obs/slo"
)

// MetricPrefix namespaces every exposed metric, per the Prometheus
// naming convention (results/README.md documents the full scheme).
const MetricPrefix = "oselmrl_"

// sanitizeMetricName maps a registry name onto the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// splitSeries resolves a registry key that may carry obs.Labeled labels
// into the sanitized Prometheus metric name (without prefix/suffix) and
// the rendered label block ("" for a plain key).
func splitSeries(key string) (name, labelBlock string) {
	base, pairs := obs.SplitLabeled(key)
	if len(pairs) == 0 {
		return sanitizeMetricName(base), ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeMetricName(kv[0]))
		b.WriteByte('=')
		b.WriteString(strconv.Quote(kv[1]))
	}
	b.WriteByte('}')
	return sanitizeMetricName(base), b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteMetricsText renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters as <name>_total, gauges
// verbatim, per-phase wall accumulators as
// oselmrl_phase_wall_seconds_total{phase="..."}, and histograms with
// cumulative le buckets plus _sum/_count and _p50/_p95/_p99 quantile
// gauges.
func WriteMetricsText(w io.Writer, s obs.Snapshot) error {
	var b strings.Builder
	// Labeled series (obs.Labeled keys) of one family sort contiguously,
	// so HELP/TYPE headers are emitted once per family, not per series.
	lastFamily := ""
	for _, name := range sortedKeys(s.Counters) {
		mn, labels := splitSeries(name)
		n := MetricPrefix + mn + "_total"
		if n != lastFamily {
			fmt.Fprintf(&b, "# HELP %s Cumulative count of %q events.\n", n, mn)
			fmt.Fprintf(&b, "# TYPE %s counter\n", n)
			lastFamily = n
		}
		fmt.Fprintf(&b, "%s%s %d\n", n, labels, s.Counters[name])
	}
	lastFamily = ""
	for _, name := range sortedKeys(s.Gauges) {
		mn, labels := splitSeries(name)
		n := MetricPrefix + mn
		if n != lastFamily {
			fmt.Fprintf(&b, "# HELP %s Latest value of %q.\n", n, mn)
			fmt.Fprintf(&b, "# TYPE %s gauge\n", n)
			lastFamily = n
		}
		fmt.Fprintf(&b, "%s%s %s\n", n, labels, formatFloat(s.Gauges[name]))
	}
	if len(s.WallSeconds) > 0 {
		n := MetricPrefix + "phase_wall_seconds_total"
		fmt.Fprintf(&b, "# HELP %s Measured wall-clock seconds per phase (companion to the modelled device seconds).\n", n)
		fmt.Fprintf(&b, "# TYPE %s counter\n", n)
		for _, phase := range sortedKeys(s.WallSeconds) {
			fmt.Fprintf(&b, "%s{phase=%q} %s\n", n, phase, formatFloat(s.WallSeconds[phase]))
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := MetricPrefix + sanitizeMetricName(name)
		fmt.Fprintf(&b, "# HELP %s Distribution of %q.\n", n, name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, formatFloat(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, h.N)
		fmt.Fprintf(&b, "%s_sum %s\n", n, formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", n, h.N)
		for _, q := range []struct {
			suffix string
			p      float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			qn := n + "_" + q.suffix
			fmt.Fprintf(&b, "# TYPE %s gauge\n", qn)
			fmt.Fprintf(&b, "%s %s\n", qn, formatFloat(h.Quantile(q.p)))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Option configures NewHandler / Serve.
type Option func(*handlerOpts)

type handlerOpts struct {
	tracer   *obs.Tracer
	watchdog *obs.Watchdog
	slo      *slo.Engine
	pprof    bool
	routes   []route
}

type route struct {
	pattern string
	handler http.Handler
}

// WithRoute mounts an extra handler on the telemetry mux — how a serving
// subsystem (internal/serve) shares one listener with /metrics so scrapes
// see the serving load of the same process.
func WithRoute(pattern string, h http.Handler) Option {
	return func(o *handlerOpts) { o.routes = append(o.routes, route{pattern, h}) }
}

// WithTracer additionally serves the tracer's current spans as Chrome
// trace-event JSON at /trace.
func WithTracer(t *obs.Tracer) Option {
	return func(o *handlerOpts) { o.tracer = t }
}

// WithPprof mounts net/http/pprof under /debug/pprof/ on the telemetry
// mux (the -pprof serve plumbing of the training CLIs).
func WithPprof() Option {
	return func(o *handlerOpts) { o.pprof = true }
}

// WithSLO additionally serves the burn-rate engine's evaluation at /slo
// (the full slo.Report as JSON, HTTP 503 while some objective fast-burns)
// and folds the verdict into /healthz: the liveness probe answers
// "degraded" with 503 during a fast burn, so a plain HTTP check pages on
// SLO breach without parsing anything. A nil engine is ignored.
func WithSLO(e *slo.Engine) Option {
	return func(o *handlerOpts) {
		if e.Enabled() {
			o.slo = e
		}
	}
}

// WithWatchdog additionally serves the divergence watchdog's state at
// /health: a JSON verdict with the tripped rules, HTTP 200 while healthy
// and 503 once any rule has tripped — so a scrape-side alert needs no
// body parsing.
func WithWatchdog(w *obs.Watchdog) Option {
	return func(o *handlerOpts) { o.watchdog = w }
}

// HealthReport is the /health response body.
type HealthReport struct {
	// Healthy is false once any watchdog rule has tripped.
	Healthy bool `json:"healthy"`
	// AlertCount is the number of distinct (rule, metric) trips.
	AlertCount int `json:"alert_count"`
	// Alerts lists the trips in first-trip order (empty while healthy).
	Alerts []obs.Alert `json:"alerts,omitempty"`
	// Config echoes the active thresholds.
	Config obs.WatchdogConfig `json:"config"`
}

// NewHandler builds the telemetry mux over reg:
//
//	/metrics   Prometheus text exposition of the registry snapshot
//	/healthz   liveness probe: "ok", or "degraded" + 503 on SLO fast burn (WithSLO)
//	/snapshot  the full obs.Snapshot as JSON
//	/slo       burn-rate engine report, 503 during a fast burn (WithSLO)
//	/health    divergence-watchdog verdict, 503 on divergence (WithWatchdog)
//	/trace     Chrome trace-event JSON of recorded spans (WithTracer)
//	/debug/pprof/...  live profiling (WithPprof)
//
// reg may be nil (all endpoints serve empty data).
func NewHandler(reg *obs.Registry, opts ...Option) http.Handler {
	var o handlerOpts
	for _, opt := range opts {
		opt(&o)
	}
	snapshot := func() obs.Snapshot {
		if reg == nil {
			return obs.Snapshot{}
		}
		return reg.Snapshot()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteMetricsText(w, snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	sloEngine := o.slo // nil when no WithSLO: FastBurn is nil-safe
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if sloEngine.FastBurn() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "degraded\n")
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if o.slo != nil {
		eng := o.slo
		mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
			report := eng.Report()
			w.Header().Set("Content-Type", "application/json")
			if report.FastBurn {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(report)
		})
	}
	if o.watchdog != nil {
		wd := o.watchdog
		mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
			report := HealthReport{
				Healthy:    !wd.Diverged(),
				AlertCount: wd.AlertCount(),
				Alerts:     wd.Alerts(),
				Config:     wd.Config(),
			}
			w.Header().Set("Content-Type", "application/json")
			if !report.Healthy {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(report)
		})
	}
	if o.tracer != nil {
		tracer := o.tracer
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := WriteTrace(w, tracer.Spans(), TraceMeta{Dropped: tracer.Dropped()}); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	for _, rt := range o.routes {
		mux.Handle(rt.pattern, rt.handler)
	}
	if o.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a live telemetry HTTP server over one metrics registry.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks a free port; the bound address is
// Addr()) and serves the NewHandler endpoints in the background. The
// listener error is returned synchronously so port conflicts surface at
// startup, matching cli.StartPprof.
func Serve(addr string, reg *obs.Registry, opts ...Option) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandler(reg, opts...)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately. Nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to drain (or ctx to expire) — the graceful counterpart to
// Close, used by long-lived servers like cmd/serve. Nil-safe.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}
