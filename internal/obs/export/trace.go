package export

import (
	"encoding/json"
	"io"
	"sort"
	"strings"

	"oselmrl/internal/obs"
)

// Thread IDs of the two tracks every trace process carries: the
// host-measured wall timeline and the modelled-device timeline built
// from the internal/timing profiles. Rendering them as sibling threads
// makes the wall-vs-modelled divergence visible per phase in
// Perfetto/chrome://tracing.
const (
	tidWall  = 1
	tidModel = 2
)

// TraceEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" complete events carry ts+dur, ph "M" metadata events name
// processes and threads. Timestamps are microseconds.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the JSON-object form of the trace format, which Perfetto
// and chrome://tracing both accept.
type TraceFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// TraceMeta carries run-level annotations into the trace's otherData.
type TraceMeta struct {
	// Tool and Labels identify the producing run.
	Tool   string
	Labels map[string]string
	// Dropped is the tracer's span-cap overflow count; nonzero means the
	// timeline is truncated.
	Dropped int64
}

// BuildTrace converts span records into the Chrome trace-event form.
// Each distinct span group becomes one trace process with two threads:
// the measured wall track replays spans at their recorded start times,
// and the modelled track lays the same spans end-to-end with their
// modelled device durations — an aligned counterpart timeline whose
// total width is the modelled time-to-complete.
func BuildTrace(spans []obs.SpanRecord, meta TraceMeta) TraceFile {
	groups := make(map[string]int)
	var order []string
	for _, sp := range spans {
		if _, ok := groups[sp.Group]; !ok {
			groups[sp.Group] = 0
			order = append(order, sp.Group)
		}
	}
	sort.Strings(order)
	for i, g := range order {
		groups[g] = i + 1 // pids are 1-based
	}

	var events []TraceEvent
	for _, g := range order {
		pid := groups[g]
		pname := g
		if pname == "" {
			pname = "run"
		}
		events = append(events,
			TraceEvent{Name: "process_name", Ph: "M", PID: pid, TID: 0,
				Args: map[string]any{"name": pname}},
			TraceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tidWall,
				Args: map[string]any{"name": "host wall (measured)"}},
			TraceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tidModel,
				Args: map[string]any{"name": "device (modelled)"}},
		)
	}

	modelClock := make(map[string]float64, len(groups)) // per-group modelled timeline cursor
	for _, sp := range spans {
		pid := groups[sp.Group]
		args := map[string]any{"wall_us": sp.DurUS}
		if sp.ModelUS > 0 {
			args["model_us"] = sp.ModelUS
		}
		events = append(events, TraceEvent{
			Name: sp.Name, Cat: "wall", Ph: "X",
			TS: sp.StartUS, Dur: sp.DurUS,
			PID: pid, TID: tidWall, Args: args,
		})
		if sp.ModelUS > 0 {
			ts := modelClock[sp.Group]
			events = append(events, TraceEvent{
				Name: sp.Name, Cat: "modelled", Ph: "X",
				TS: ts, Dur: sp.ModelUS,
				PID: pid, TID: tidModel,
				Args: map[string]any{"wall_us": sp.DurUS, "model_us": sp.ModelUS},
			})
			modelClock[sp.Group] = ts + sp.ModelUS
		}
	}

	other := map[string]any{"format": "oselmrl-span-trace"}
	if meta.Tool != "" {
		other["tool"] = meta.Tool
	}
	for k, v := range meta.Labels {
		other["label_"+k] = v
	}
	if meta.Dropped > 0 {
		other["dropped_spans"] = meta.Dropped
	}
	return TraceFile{TraceEvents: events, DisplayTimeUnit: "ms", OtherData: other}
}

// WriteTrace writes spans as indented Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) and chrome://tracing.
func WriteTrace(w io.Writer, spans []obs.SpanRecord, meta TraceMeta) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(BuildTrace(spans, meta))
}

// EventConverter rebuilds span records from a recorded JSONL event log
// (the -events format), so runs traced only through -events — including
// logs from before span tracing existed — still render as timelines.
//
// Update events that carry dur_ms/model_ms (written since the span
// tracer landed) become full-width spans with modelled counterparts;
// events without durations degrade to zero-width markers. episode_end
// events become back-to-back "episode" spans per label group.
type EventConverter struct {
	spans       []obs.SpanRecord
	lastEpisode map[string]float64 // label group -> previous episode boundary (ms)
}

// NewEventConverter returns an empty converter; feed it events in log
// order with Add (e.g. via obs.ScanEvents) and collect Spans.
func NewEventConverter() *EventConverter {
	return &EventConverter{lastEpisode: make(map[string]float64)}
}

// groupKey distinguishes concurrent producers in a merged sweep log.
func groupKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := sortedKeys(labels)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, " ")
}

// Add consumes one event. The signature matches obs.ScanEvents.
func (c *EventConverter) Add(ev *obs.Event) error {
	group := groupKey(ev.Labels)
	switch ev.Type {
	case obs.EventSeqUpdate:
		c.addPhase(ev, group, "seq_train")
	case obs.EventInitTrain:
		c.addPhase(ev, group, "init_train")
	case obs.EventTrainStep:
		c.addPhase(ev, group, "train_DQN")
	case obs.EventEpisodeEnd:
		start := c.lastEpisode[group]
		c.spans = append(c.spans, obs.SpanRecord{
			Name:    "episode",
			Group:   group,
			StartUS: start * 1e3,
			DurUS:   (ev.WallMS - start) * 1e3,
		})
		c.lastEpisode[group] = ev.WallMS
	case obs.EventReinit, obs.EventTheta2Sync, obs.EventRunEnd:
		// Zero-width markers: visible as instants on the wall track.
		c.spans = append(c.spans, obs.SpanRecord{
			Name:    ev.Type,
			Group:   group,
			StartUS: ev.WallMS * 1e3,
		})
	}
	return nil
}

// addPhase appends a phase span ending at the event's timestamp, using
// the recorded wall duration and modelled device duration when present.
func (c *EventConverter) addPhase(ev *obs.Event, group, name string) {
	dur := ev.Data["dur_ms"]
	start := ev.WallMS - dur
	if start < 0 {
		start = 0
	}
	c.spans = append(c.spans, obs.SpanRecord{
		Name:    name,
		Group:   group,
		StartUS: start * 1e3,
		DurUS:   dur * 1e3,
		ModelUS: ev.Data["model_ms"] * 1e3,
	})
}

// Spans returns the reconstructed spans in log order.
func (c *EventConverter) Spans() []obs.SpanRecord { return c.spans }
