package cli

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oselmrl/internal/env"
	"oselmrl/internal/harness"
	"oselmrl/internal/obs"
	"oselmrl/internal/obs/export"
)

func TestStartTelemetryAllOff(t *testing.T) {
	tel, err := StartTelemetry(TelemetryFlags{})
	if err != nil {
		t.Fatal(err)
	}
	if tel.Emitter != nil {
		t.Fatal("with every flag empty the emitter must stay nil (zero-cost hot path)")
	}
	if tel.Addr() != "" || tel.Tracer() != nil {
		t.Fatal("no server or tracer expected")
	}
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStartTelemetryPprofServeRequiresServe(t *testing.T) {
	if _, err := StartTelemetry(TelemetryFlags{Pprof: "serve"}); err == nil {
		t.Fatal("-pprof serve without -serve must fail")
	}
}

// TestTelemetryEndToEnd exercises the exact wiring cmd/train uses for
// "-events X -serve :0 -trace Y": a real (short) training run against
// the live telemetry server, a /metrics scrape that must be Prometheus
// text, and the trace file written at Close carrying both the measured
// and the modelled track.
func TestTelemetryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "run.jsonl")
	tracePath := filepath.Join(dir, "run-trace.json")

	tel, err := StartTelemetry(TelemetryFlags{
		Events: eventsPath,
		Serve:  "127.0.0.1:0",
		Trace:  tracePath,
		Pprof:  "serve",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tel.server.Close()
	if tel.Addr() == "" {
		t.Fatal("server address missing")
	}

	d, err := harness.ParseDesign("OS-ELM-L2-Lipschitz")
	if err != nil {
		t.Fatal(err)
	}
	// hidden=8 fills the init store within the first episodes, so the run
	// emits init_train, seq_train and predict spans with modelled time.
	agent, err := harness.NewAgent(d, 4, 2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	task := env.NewShaped(env.NewCartPoleV0(7), env.RewardSurvival)
	cfg := harness.RunConfigFor(d, harness.Defaults())
	cfg.MaxEpisodes = 20
	cfg.ResetAfter = 0
	cfg.RecordCurve = false
	cfg.Obs = tel.Emitter.With(map[string]string{"hidden": "8"})
	harness.Run(agent, task, cfg)

	base := "http://" + tel.Addr()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE oselmrl_seq_updates_total counter",
		"oselmrl_phase_wall_seconds_total{phase=\"seq_train\"}",
		"oselmrl_buffer_occupancy",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}
	// -pprof serve mounts the profiler on the telemetry mux.
	if presp, err := http.Get(base + "/debug/pprof/cmdline"); err != nil || presp.StatusCode != http.StatusOK {
		t.Fatalf("pprof on serve mux: %v %v", err, presp)
	} else {
		presp.Body.Close()
	}

	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}

	// The events log must stream-decode.
	f, err := os.Open(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events := 0
	if err := obs.ScanEvents(f, func(*obs.Event) error { events++; return nil }); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no events logged")
	}

	// The trace file must be valid trace-event JSON with both timelines.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf export.TraceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace file not JSON: %v", err)
	}
	tids := map[int]int{}
	phases := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.TID]++
			phases[ev.Name] = true
		}
	}
	if tids[1] == 0 || tids[2] == 0 {
		t.Fatalf("trace missing a track: tid counts %v", tids)
	}
	for _, want := range []string{"episode", "seq_train", "init_train"} {
		if !phases[want] {
			t.Fatalf("trace missing phase %q (got %v)", want, phases)
		}
	}
}
