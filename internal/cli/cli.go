// Package cli holds small helpers shared by the command-line tools.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"oselmrl/internal/fixed"
)

// ParseIntList parses a comma-separated list of positive integers, as used
// by the -hidden flags ("32,64,128").
func ParseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid positive integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseQFormat parses a -qformat flag value ("Q20", "q20" or "20") into a
// normalized fixed-point format.
func ParseQFormat(s string) (fixed.QFormat, error) {
	q, err := fixed.ParseQFormat(s)
	if err != nil {
		return fixed.QFormat{}, err
	}
	return q.Normalized(), nil
}

// ParseQFormatList parses a comma-separated list of formats
// ("Q16,Q20,Q24"), as used by the wordlength-sweep -qformat flag.
func ParseQFormatList(s string) ([]fixed.QFormat, error) {
	parts := strings.Split(s, ",")
	out := make([]fixed.QFormat, 0, len(parts))
	for _, p := range parts {
		q, err := ParseQFormat(p)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}
