// Package cli holds small helpers shared by the command-line tools.
package cli

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseIntList parses a comma-separated list of positive integers, as used
// by the -hidden flags ("32,64,128").
func ParseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid positive integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
