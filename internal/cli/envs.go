package cli

import (
	"fmt"
	"strings"

	"oselmrl/internal/env"
	"oselmrl/internal/harness"
)

// EnvNames lists the built-in environments accepted by MakeEnv, for flag
// usage strings and matrix validation.
var EnvNames = []string{"cartpole", "cartpole-v1", "mountaincar", "acrobot", "gridworld", "pendulum"}

// MakeEnv constructs a built-in environment by name with the reward
// shaping each task trains best under (survival shaping for CartPole,
// clipped per-step cost for the control tasks). Shared by cmd/train and
// cmd/grid so a grid cell reproduces exactly what a one-off train run
// does.
func MakeEnv(name string, seed uint64) (env.Env, error) {
	switch strings.ToLower(name) {
	case "cartpole", "cartpole-v0":
		return env.NewShaped(env.NewCartPoleV0(seed), env.RewardSurvival), nil
	case "cartpole-v1":
		return env.NewShaped(env.NewCartPoleV1(seed), env.RewardSurvival), nil
	case "mountaincar":
		return env.NewShaped(env.NewMountainCar(seed), env.RewardPerStepClipped), nil
	case "acrobot":
		return env.NewShaped(env.NewAcrobot(seed), env.RewardPerStepClipped), nil
	case "gridworld":
		return env.NewGridWorld(5, seed), nil
	case "pendulum":
		return env.NewShaped(env.NewPendulum(seed), env.RewardPerStepClipped), nil
	}
	return nil, fmt.Errorf("unknown environment %q (%s)", name, strings.Join(EnvNames, ", "))
}

// SolveFor adapts the solve criterion to the task: CartPole keeps the
// paper's 195-over-100-episodes criterion; the other tasks have no solved
// notion here, so the threshold is pushed out of reach and the run uses
// its full budget, reporting learning progress instead.
func SolveFor(name string, cfg *harness.Config) {
	if !strings.HasPrefix(strings.ToLower(name), "cartpole") {
		cfg.SolveThreshold = 1e18
	}
}
