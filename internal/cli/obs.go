package cli

import (
	"fmt"
	"net"
	"net/http"
	// Register the profiling handlers on http.DefaultServeMux; the -pprof
	// flag serves that mux.
	_ "net/http/pprof"
	"os"

	"oselmrl/internal/obs"
)

// NewEventsEmitter opens a JSONL event log at path and returns an emitter
// writing to it. An empty path returns a nil emitter (observability off).
// "-" writes to stderr, keeping stdout clean for the tool's tables.
func NewEventsEmitter(path string) (*obs.Emitter, error) {
	switch path {
	case "":
		return nil, nil
	case "-":
		return obs.NewEmitter(obs.NewJSONLSink(os.Stderr)), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("events log: %w", err)
	}
	return obs.NewEmitter(obs.NewJSONLSink(f)), nil
}

// WriteManifestFile writes m to path as a single JSON document.
func WriteManifestFile(path string, m *obs.Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if err := obs.WriteManifest(f, m); err != nil {
		f.Close()
		return fmt.Errorf("manifest: %w", err)
	}
	return f.Close()
}

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060") in the
// background, returning once the listener is bound so port conflicts
// surface synchronously. An empty addr is a no-op. The live profiling
// endpoints are then at http://addr/debug/pprof/.
func StartPprof(addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof: %w", err)
	}
	go http.Serve(ln, nil)
	return nil
}
