package cli

import (
	"fmt"
	"net"
	"net/http"
	// Register the profiling handlers on http.DefaultServeMux; the -pprof
	// flag serves that mux.
	_ "net/http/pprof"
	"os"

	"oselmrl/internal/obs"
	"oselmrl/internal/obs/export"
	"oselmrl/internal/vcs"
)

// NewEventsEmitter opens a JSONL event log at path and returns an emitter
// writing to it. An empty path returns a nil emitter (observability off).
// "-" writes to stderr, keeping stdout clean for the tool's tables.
func NewEventsEmitter(path string) (*obs.Emitter, error) {
	switch path {
	case "":
		return nil, nil
	case "-":
		return obs.NewEmitter(obs.NewJSONLSink(os.Stderr)), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("events log: %w", err)
	}
	return obs.NewEmitter(obs.NewJSONLSink(f)), nil
}

// WriteManifestFile writes m to path as a single JSON document, stamping
// the git commit and dirty-worktree flag (internal/vcs) when the caller
// has not already set them — every tool's manifest ties its results to
// the commit that produced them without per-tool wiring.
func WriteManifestFile(path string, m *obs.Manifest) error {
	if m.GitSHA == "" {
		info := vcs.Head()
		m.GitSHA = info.SHA
		m.GitDirty = info.Dirty
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if err := obs.WriteManifest(f, m); err != nil {
		f.Close()
		return fmt.Errorf("manifest: %w", err)
	}
	return f.Close()
}

// TelemetryFlags groups the observability flags shared by the training
// CLIs (cmd/train, cmd/timetocomplete, cmd/ablation).
type TelemetryFlags struct {
	// Events is the -events JSONL log path ("" off, "-" stderr).
	Events string
	// Serve is the -serve address for live /metrics, /healthz, /snapshot
	// and /trace ("" off; ":0" picks a free port).
	Serve string
	// Trace is the -trace output path for the Chrome/Perfetto trace-event
	// timeline written at Close ("" off).
	Trace string
	// Pprof is the -pprof address for net/http/pprof, or the special
	// value "serve" to mount /debug/pprof on the -serve mux instead of a
	// dedicated listener.
	Pprof string
	// Watchdog enables the divergence watchdog (-watchdog): threshold
	// rules over the metric stream, numeric_alert events, the diverged
	// verdict on run_end/manifest, and /health on the -serve mux.
	Watchdog bool
	// Profile enables the FPGA device-level cycle profiler (-profile):
	// per-kernel/per-unit cycle attribution (fpga_cycles), BRAM access
	// counters (fpga_bram_access), occupancy/roofline gauges and
	// device_profile events. Wired to harness.Config.DeviceProfile by the
	// CLIs; non-FPGA designs ignore it.
	Profile bool
}

// Telemetry is the live observability runtime a training CLI holds for
// the duration of a run: the (possibly nil) emitter to install as
// harness.Config.Obs, the span tracer behind it, and the telemetry HTTP
// server. With every flag empty, Emitter stays nil and the training hot
// path keeps its zero-cost disabled state.
type Telemetry struct {
	// Emitter is nil when all observability is off; otherwise it carries
	// the metrics registry, the event sink (with -events) and the span
	// tracer (with -trace).
	Emitter *obs.Emitter
	// Profile mirrors TelemetryFlags.Profile — the CLIs copy it onto
	// harness.Config.DeviceProfile next to the emitter.
	Profile bool

	tracer    *obs.Tracer
	watchdog  *obs.Watchdog
	tracePath string
	server    *export.Server
}

// StartTelemetry wires up the observability runtime for one tool
// invocation: the events emitter, the span tracer, the telemetry server
// and the pprof listener, in one call. Listener errors surface
// synchronously.
func StartTelemetry(f TelemetryFlags) (*Telemetry, error) {
	t := &Telemetry{}
	emitter, err := NewEventsEmitter(f.Events)
	if err != nil {
		return nil, err
	}
	if emitter == nil && (f.Serve != "" || f.Trace != "" || f.Watchdog || f.Profile) {
		// Metrics/trace/watchdog/profile-only observability: a registry
		// with no event sink.
		emitter = obs.NewEmitter(nil)
	}
	t.Emitter = emitter
	t.Profile = f.Profile

	if f.Trace != "" {
		t.tracer = obs.NewTracer()
		t.tracePath = f.Trace
		emitter.SetTracer(t.tracer)
	}
	if f.Watchdog {
		t.watchdog = obs.NewWatchdog(obs.DefaultWatchdogConfig())
		emitter.SetWatchdog(t.watchdog)
	}

	pprofOnServe := f.Pprof == "serve"
	if pprofOnServe && f.Serve == "" {
		return nil, fmt.Errorf("telemetry: -pprof serve requires -serve")
	}
	if !pprofOnServe {
		if err := StartPprof(f.Pprof); err != nil {
			return nil, err
		}
	}
	if f.Serve != "" {
		var opts []export.Option
		if t.tracer != nil {
			opts = append(opts, export.WithTracer(t.tracer))
		}
		if t.watchdog != nil {
			opts = append(opts, export.WithWatchdog(t.watchdog))
		}
		if pprofOnServe {
			opts = append(opts, export.WithPprof())
		}
		srv, err := export.Serve(f.Serve, emitter.Metrics(), opts...)
		if err != nil {
			return nil, err
		}
		t.server = srv
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}
	return t, nil
}

// Addr returns the telemetry server's bound address ("" when -serve was
// off), for tests binding ":0".
func (t *Telemetry) Addr() string {
	if t.server == nil {
		return ""
	}
	return t.server.Addr()
}

// Tracer exposes the span tracer (nil without -trace).
func (t *Telemetry) Tracer() *obs.Tracer { return t.tracer }

// Watchdog exposes the divergence watchdog (nil without -watchdog).
func (t *Telemetry) Watchdog() *obs.Watchdog { return t.watchdog }

// Close flushes the event log and writes the trace file. The telemetry
// server keeps serving until process exit so a final scrape after the
// run completes still sees the end-state metrics.
func (t *Telemetry) Close() error {
	firstErr := t.Emitter.Close()
	if t.tracer != nil && t.tracePath != "" {
		if err := writeTraceFile(t.tracePath, t.tracer); err != nil && firstErr == nil {
			firstErr = err
		}
		if n := t.tracer.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "telemetry: %d spans beyond the cap were dropped; the trace is truncated\n", n)
		}
	}
	return firstErr
}

func writeTraceFile(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := export.WriteTrace(f, tr.Spans(), export.TraceMeta{Dropped: tr.Dropped()}); err != nil {
		f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	return f.Close()
}

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060") in the
// background, returning once the listener is bound so port conflicts
// surface synchronously. An empty addr is a no-op. The live profiling
// endpoints are then at http://addr/debug/pprof/.
func StartPprof(addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof: %w", err)
	}
	go http.Serve(ln, nil)
	return nil
}
