package cli

import "testing"

func TestParseIntList(t *testing.T) {
	got, err := ParseIntList("32, 64,128")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{32, 64, 128}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	for _, bad := range []string{"", "a", "32,", "0", "-5", "32,,64"} {
		if _, err := ParseIntList(bad); err == nil {
			t.Errorf("%q must fail", bad)
		}
	}
	one, err := ParseIntList("192")
	if err != nil || len(one) != 1 || one[0] != 192 {
		t.Errorf("single value: %v, %v", one, err)
	}
}
