package harness

import (
	"math"
	"os"
	"testing"

	"oselmrl/internal/env"
	"oselmrl/internal/replay"
	"oselmrl/internal/timing"
)

// countingAgent is a minimal Agent whose hot path writes its Counters
// the way real designs do: per-phase calls and cycle work on every
// action selection and observed transition.
type countingAgent struct {
	counters *timing.Counters
}

func (c *countingAgent) Name() string { return "counting" }
func (c *countingAgent) SelectAction([]float64) int {
	c.counters.AddN(timing.PhasePredictSeq, 2, 2*400)
	return 1
}
func (c *countingAgent) Observe(replay.Transition) error {
	c.counters.Add(timing.PhaseSeqTrain, 4689)
	return nil
}
func (c *countingAgent) EndEpisode(int)             {}
func (c *countingAgent) Reinitialize()              {}
func (c *countingAgent) Counters() *timing.Counters { return c.counters }

// TestFleetPerCoreCountersRace is the fleet-barrier concurrency test:
// every member owns its Counters, members run concurrently, and the
// merge happens only after RunTrials' barrier. Under `go test -race`
// this passes ONLY with the per-core pattern — set
// FLEET_SHARED_COUNTERS=1 to reproduce the old shared-counter pattern
// (one Counters written by all members), which the race detector
// rejects immediately.
func TestFleetPerCoreCountersRace(t *testing.T) {
	shared := timing.NewCounters()
	useShared := os.Getenv("FLEET_SHARED_COUNTERS") == "1"
	spec := FleetSpec{
		TrialSpec: TrialSpec{
			MakeAgent: func(seed uint64) (Agent, error) {
				if useShared {
					return &countingAgent{counters: shared}, nil
				}
				return &countingAgent{counters: timing.NewCounters()}, nil
			},
			MakeEnv: func(seed uint64) env.Env { return env.NewCartPoleV0(seed) },
			Config: Config{
				MaxEpisodes: 3, ResetAfter: 0, SolveWindow: 100,
				SolveThreshold: 195, ScoreIsSteps: true,
			},
			BaseSeed:    7,
			Parallelism: 4,
		},
		Cores:   4,
		Devices: 2,
	}
	res, err := RunFleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 8 {
		t.Fatalf("members = %d, want cores*devices = 8", len(res.Members))
	}

	// The barrier merge must equal the sum of the members' counters.
	var calls, seqCalls int64
	var work float64
	for _, r := range res.Members {
		calls += r.Counters.Calls(timing.PhasePredictSeq)
		seqCalls += r.Counters.Calls(timing.PhaseSeqTrain)
		work += r.Counters.Work(timing.PhasePredictSeq) + r.Counters.Work(timing.PhaseSeqTrain)
	}
	if useShared {
		return // totals are not meaningful with a shared counter
	}
	if res.Merged.Calls(timing.PhasePredictSeq) != calls ||
		res.Merged.Calls(timing.PhaseSeqTrain) != seqCalls {
		t.Fatalf("merged calls %d/%d, members sum %d/%d",
			res.Merged.Calls(timing.PhasePredictSeq), res.Merged.Calls(timing.PhaseSeqTrain),
			calls, seqCalls)
	}

	// The measured workload preserves the merged PL work exactly.
	if got := float64(res.Projection.Workload.TotalCycles()); got != work {
		t.Fatalf("workload cycles %v != merged PL work %v", got, work)
	}
	if len(res.Projection.Curve) != 4 {
		t.Fatalf("curve has %d points, want cores=4", len(res.Projection.Curve))
	}
	if res.Projection.Curve[0].Speedup != 1 {
		t.Fatalf("1-core speedup %v, want exactly 1", res.Projection.Curve[0].Speedup)
	}
	for i := 1; i < len(res.Projection.Curve); i++ {
		if res.Projection.Curve[i].Speedup < res.Projection.Curve[i-1].Speedup {
			t.Fatalf("speedup curve not monotone at %d cores", res.Projection.Curve[i].Cores)
		}
	}
	if len(res.Projection.PerDevice) != 2 {
		t.Fatalf("PerDevice has %d entries, want 2", len(res.Projection.PerDevice))
	}
	if res.Projection.Speedup < 1 {
		t.Fatalf("fleet speedup %v < 1", res.Projection.Speedup)
	}
}

// TestFleetWorkloadExactTotals pins the counter→workload conversion:
// work is split over calls with the remainder spread one cycle at a
// time, so chain totals equal the measured work to the cycle even when
// calls does not divide work.
func TestFleetWorkloadExactTotals(t *testing.T) {
	c := timing.NewCounters()
	c.AddN(timing.PhasePredictSeq, 3, 1001) // 334+334+333
	c.AddN(timing.PhaseSeqTrain, 2, 9379)   // 4690+4689
	w := FleetWorkload([]*Result{{Counters: c}})
	if len(w.Members) != 1 {
		t.Fatalf("members = %d", len(w.Members))
	}
	chain := w.Members[0]
	if len(chain) != 5 {
		t.Fatalf("chain has %d jobs, want 5", len(chain))
	}
	var predict, seq int64
	for _, j := range chain {
		if j.Kernel.Phase() == timing.PhasePredictSeq {
			predict += j.Cycles
		} else {
			seq += j.Cycles
		}
	}
	if predict != 1001 || seq != 9379 {
		t.Fatalf("chain totals %d/%d, want 1001/9379 (exact)", predict, seq)
	}

	// Equal inputs produce an identical chain (the interleave is
	// deterministic).
	w2 := FleetWorkload([]*Result{{Counters: c}})
	for i := range chain {
		if chain[i] != w2.Members[0][i] {
			t.Fatalf("interleave not deterministic at job %d", i)
		}
	}
}

// TestProjectFleetPartition checks the round-robin device split and the
// headline ratio.
func TestProjectFleetPartition(t *testing.T) {
	members := make([]*Result, 4)
	for i := range members {
		c := timing.NewCounters()
		c.AddN(timing.PhasePredictSeq, 10, 10*400)
		c.AddN(timing.PhaseSeqTrain, 5, 5*4689)
		members[i] = &Result{Counters: c}
	}
	proj := ProjectFleet(members, 2, 2, 0)
	if len(proj.PerDevice) != 2 {
		t.Fatalf("devices = %d", len(proj.PerDevice))
	}
	for d, r := range proj.PerDevice {
		var jobs int64
		for _, n := range r.CoreJobs {
			jobs += n
		}
		if jobs != 30 { // two members x 15 jobs
			t.Fatalf("device %d executed %d jobs, want 30", d, jobs)
		}
	}
	if proj.FleetSeconds <= 0 || proj.SequentialSeconds <= 0 {
		t.Fatal("zero modelled times")
	}
	got := proj.SequentialSeconds / proj.FleetSeconds
	if math.Abs(got-proj.Speedup) > 1e-12 || proj.Speedup <= 1 {
		t.Fatalf("speedup %v (ratio %v)", proj.Speedup, got)
	}
}
