// Package harness drives the paper's experiments: it runs a design (agent)
// against an environment until the task is solved, recording the training
// curve (Figure 4), the per-phase work counters that the timing model
// converts into the execution-time breakdowns of Figures 5-6, the
// §4.3 reset-after-300-episodes rule, and the §4.4 "impossible after
// 50,000 episodes" cutoff. A parallel multi-trial runner aggregates over
// seeds, since every design's outcome is seed-dependent.
package harness

import (
	"errors"
	"fmt"
	"time"

	"oselmrl/internal/env"
	"oselmrl/internal/obs"
	"oselmrl/internal/replay"
	"oselmrl/internal/timing"
)

// Observable is implemented by agents that accept a runtime observability
// emitter (all designs in this repository do). Run installs the
// configured emitter automatically before the first episode.
type Observable interface {
	SetObserver(*obs.Emitter)
}

// DeviceProfilable is implemented by agents with a device-level cycle
// profiler (fpga.Agent). Run arms it before the first episode when
// Config.DeviceProfile is set; agents without one ignore the flag.
type DeviceProfilable interface {
	EnableDeviceProfile()
}

// Agent is the contract every design implements (qnet.Agent, dqn.Agent,
// fpga.Agent).
type Agent interface {
	// Name returns the paper's design name.
	Name() string
	// SelectAction chooses an action for the current state (ε-greedy).
	SelectAction(state []float64) int
	// Observe delivers one transition; the agent updates per its algorithm.
	Observe(t replay.Transition) error
	// EndEpisode notifies the agent of an episode boundary (θ2 sync).
	EndEpisode(episode int)
	// Reinitialize draws fresh random weights (the reset rule).
	Reinitialize()
	// Counters exposes the accumulated per-phase work.
	Counters() *timing.Counters
}

// Config controls a run. Zero values select the paper's settings via
// Defaults.
type Config struct {
	// MaxEpisodes is the §4.4 cutoff: terminate as "impossible" after this
	// many episodes (paper: 50,000).
	MaxEpisodes int
	// ResetAfter reinitializes the agent's weights if the task is not
	// solved within this many episodes since the last reset (paper §4.3:
	// 300). Zero disables resets.
	ResetAfter int
	// SolveWindow and SolveThreshold define solving: the average episode
	// score over the last SolveWindow episodes reaches SolveThreshold
	// (CartPole-v0: 100 episodes, 195 steps).
	SolveWindow    int
	SolveThreshold float64
	// RecordCurve keeps per-episode scores for Figure 4.
	RecordCurve bool
	// ScoreIsSteps scores an episode by its length (CartPole's "number of
	// steps for continuously standing", the paper's Y-axis); otherwise the
	// accumulated raw reward is the score.
	ScoreIsSteps bool
	// Obs receives structured run events and metrics (internal/obs). Nil —
	// the default — disables observability; the hot path then pays only a
	// nil check. Excluded from manifests (it is runtime plumbing, not
	// configuration).
	Obs *obs.Emitter `json:"-"`
	// DeviceProfile arms the agent's device-level cycle profiler (the
	// -profile flag): per-kernel/per-unit cycle attribution and BRAM
	// access counters on the fpga datapath. Requires Obs for the metrics
	// to flow; agents that are not DeviceProfilable ignore it.
	DeviceProfile bool `json:"device_profile,omitempty"`
	// Stop aborts the run when the channel closes (a context.Done channel
	// in practice — how cmd/grid enforces per-cell timeouts). Checked at
	// episode boundaries, so a stop takes effect within one episode; an
	// interrupted run reports Result.Err = ErrInterrupted with the
	// episodes completed so far. Nil — the default — disables the check.
	// Runtime plumbing like Obs, excluded from manifests.
	Stop <-chan struct{} `json:"-"`
}

// ErrInterrupted marks a Result whose run was aborted via Config.Stop
// before reaching a solve/impossible verdict.
var ErrInterrupted = errors.New("harness: run interrupted")

// Defaults returns the paper's CartPole-v0 run configuration.
func Defaults() Config {
	return Config{
		MaxEpisodes:    50000,
		ResetAfter:     300,
		SolveWindow:    100,
		SolveThreshold: 195,
		RecordCurve:    true,
		ScoreIsSteps:   true,
	}
}

func (c *Config) fill() {
	if c.MaxEpisodes <= 0 {
		c.MaxEpisodes = 50000
	}
	if c.SolveWindow <= 0 {
		c.SolveWindow = 100
	}
	if c.SolveThreshold == 0 {
		c.SolveThreshold = 195
	}
}

// EpisodeStat is one point of a training curve.
type EpisodeStat struct {
	// Episode is 1-based.
	Episode int
	// Steps is the episode length.
	Steps int
	// Score is the episode score (steps or return per Config.ScoreIsSteps).
	Score float64
	// MovingAvg is the score's moving average over the solve window — the
	// darker line in the paper's Figure 4.
	MovingAvg float64
}

// Result summarizes one trial.
type Result struct {
	// Design is the agent's name.
	Design string
	// EnvName identifies the task.
	EnvName string
	// Solved reports whether the solve criterion was met before MaxEpisodes.
	Solved bool
	// Episodes is the number of episodes consumed (including resets).
	Episodes int
	// TotalSteps is the total environment steps consumed.
	TotalSteps int
	// Resets counts weight reinitializations (the §4.3 rule).
	Resets int
	// Curve holds per-episode stats when recording was enabled.
	Curve []EpisodeStat
	// WallTime is the host wall-clock duration of the trial.
	WallTime time.Duration
	// Counters is the per-phase work accumulated across the whole trial
	// (resets included — the paper's time-to-complete counts them).
	Counters *timing.Counters
	// Err records an agent failure (numerical breakdown) if any occurred;
	// the run continues past recoverable update errors.
	Err error
	// Metrics is the final observability snapshot (counters, gauges,
	// histograms, per-phase wall-clock); nil unless Config.Obs was set.
	Metrics *obs.Snapshot
	// Diverged reports whether the divergence watchdog tripped during the
	// trial; always false without a watchdog attached to Config.Obs.
	Diverged bool
	// Alerts holds the watchdog's tripped rules in first-trip order (nil
	// without a watchdog or for a healthy run).
	Alerts []obs.Alert
}

// movingWindow tracks a fixed-size trailing mean.
type movingWindow struct {
	buf  []float64
	next int
	n    int
	sum  float64
}

func newMovingWindow(size int) *movingWindow { return &movingWindow{buf: make([]float64, size)} }

func (w *movingWindow) push(v float64) {
	if w.n == len(w.buf) {
		w.sum -= w.buf[w.next]
	} else {
		w.n++
	}
	w.buf[w.next] = v
	w.sum += v
	w.next = (w.next + 1) % len(w.buf)
}

func (w *movingWindow) mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

func (w *movingWindow) full() bool { return w.n == len(w.buf) }

// Run executes one trial of agent on e under cfg.
func Run(agent Agent, e env.Env, cfg Config) *Result {
	cfg.fill()
	res := &Result{Design: agent.Name(), EnvName: e.Name()}
	eobs := cfg.Obs.With(map[string]string{"design": agent.Name(), "env": e.Name()})
	if eobs.Enabled() {
		if o, ok := agent.(Observable); ok {
			o.SetObserver(eobs)
		}
		if cfg.DeviceProfile {
			if p, ok := agent.(DeviceProfilable); ok {
				p.EnableDeviceProfile()
			}
		}
		eobs.Emit(obs.EventRunStart, 0, map[string]float64{
			"max_episodes": float64(cfg.MaxEpisodes),
			"reset_after":  float64(cfg.ResetAfter),
		})
	}
	window := newMovingWindow(cfg.SolveWindow)
	start := time.Now()
	episodesSinceReset := 0

	for ep := 1; ep <= cfg.MaxEpisodes; ep++ {
		if stopped(cfg.Stop) {
			if res.Err == nil {
				res.Err = ErrInterrupted
			}
			break
		}
		// Episode-level span on the wall track; the agents contribute the
		// per-phase spans (predict, seq_train, ...) nested inside it. An
		// inactive span (no tracer) is a zero value — no clock, no alloc.
		epSpan := eobs.StartSpan("episode")
		state := e.Reset()
		steps := 0
		ret := 0.0
		for {
			action := agent.SelectAction(state)
			next, reward, done := e.Step(action)
			steps++
			ret += reward
			if err := agent.Observe(replay.Transition{
				State:     state,
				Action:    action,
				Reward:    reward,
				NextState: next,
				Done:      done,
			}); err != nil && res.Err == nil {
				res.Err = fmt.Errorf("episode %d step %d: %w", ep, steps, err)
			}
			state = next
			if done {
				break
			}
		}
		agent.EndEpisode(ep)
		epSpan.End()
		res.Episodes = ep
		res.TotalSteps += steps
		episodesSinceReset++

		score := float64(steps)
		if !cfg.ScoreIsSteps {
			score = ret
		}
		window.push(score)
		if cfg.RecordCurve {
			res.Curve = append(res.Curve, EpisodeStat{
				Episode:   ep,
				Steps:     steps,
				Score:     score,
				MovingAvg: window.mean(),
			})
		}
		if eobs.Enabled() {
			eobs.Emit(obs.EventEpisodeEnd, ep, map[string]float64{
				"steps":      float64(steps),
				"score":      score,
				"moving_avg": window.mean(),
				"resets":     float64(res.Resets),
			})
		}
		if window.full() && window.mean() >= cfg.SolveThreshold {
			res.Solved = true
			break
		}
		if cfg.ResetAfter > 0 && episodesSinceReset >= cfg.ResetAfter {
			agent.Reinitialize()
			res.Resets++
			eobs.Emit(obs.EventReinit, ep, map[string]float64{
				"episodes_since_reset": float64(episodesSinceReset),
				"resets":               float64(res.Resets),
			})
			episodesSinceReset = 0
		}
	}
	res.WallTime = time.Since(start)
	res.Counters = agent.Counters()
	if eobs.Enabled() {
		snap := eobs.Metrics().Snapshot()
		res.Metrics = &snap
		data := map[string]float64{
			"solved":      boolTo01(res.Solved),
			"episodes":    float64(res.Episodes),
			"total_steps": float64(res.TotalSteps),
			"resets":      float64(res.Resets),
			"wall_ms":     float64(res.WallTime) / float64(time.Millisecond),
		}
		// Divergence verdict from the watchdog, when one is attached.
		if w := eobs.Watchdog(); w != nil {
			res.Diverged = w.Diverged()
			res.Alerts = w.Alerts()
			data["diverged"] = boolTo01(res.Diverged)
			data["numeric_alerts"] = float64(w.AlertCount())
		}
		// Per-phase real wall-clock alongside the modelled device seconds.
		for phase, sec := range snap.WallSeconds {
			data["wall_ms_"+phase] = sec * 1e3
		}
		eobs.Emit(obs.EventRunEnd, res.Episodes, data)
	}
	return res
}

// stopped polls a Config.Stop channel without blocking; a nil channel
// never stops.
func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// GreedyPolicy is implemented by agents that can act without exploration
// (all designs in this repository do).
type GreedyPolicy interface {
	GreedyAction(state []float64) int
}

// EvaluateGreedy measures the exploration-free policy: it runs episodes
// complete rollouts with GreedyAction and returns the mean episode score
// (steps or return per cfg.ScoreIsSteps). Figure 4's flat-200 plateaus are
// this quantity once exploration has annealed away.
func EvaluateGreedy(agent GreedyPolicy, e env.Env, episodes int, scoreIsSteps bool) float64 {
	if episodes <= 0 {
		episodes = 1
	}
	var total float64
	for ep := 0; ep < episodes; ep++ {
		state := e.Reset()
		for {
			next, reward, done := e.Step(agent.GreedyAction(state))
			if scoreIsSteps {
				total++
			} else {
				total += reward
			}
			state = next
			if done {
				break
			}
		}
	}
	return total / float64(episodes)
}
