package harness

import (
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"oselmrl/internal/env"
)

// Regression: a NaN modelled total on a *solved* trial must drop that
// entry from the MeanModelSeconds numerator AND denominator. The pre-fix
// code skipped it from the sum but still divided by the full solved
// count, deflating the mean ((10+20)/3 instead of (10+20)/2).
func TestSummarizeNaNModelSecondsOnSolvedTrial(t *testing.T) {
	results := []*Result{
		{Solved: true, Episodes: 100, TotalSteps: 5000},
		{Solved: true, Episodes: 200, TotalSteps: 9000},
		{Solved: true, Episodes: 300, TotalSteps: 9000},
	}
	secs := []float64{10, 20, math.NaN()}
	agg := Summarize(results, secs)
	if agg.SolvedCount != 3 {
		t.Fatalf("solved = %d", agg.SolvedCount)
	}
	if agg.MeanModelSeconds != 15 {
		t.Errorf("MeanModelSeconds = %v, want 15 (mean over the two non-NaN entries)", agg.MeanModelSeconds)
	}
	// A modelSeconds slice shorter than results behaves like NaN padding.
	agg = Summarize(results, []float64{10, 20})
	if agg.MeanModelSeconds != 15 {
		t.Errorf("short slice MeanModelSeconds = %v, want 15", agg.MeanModelSeconds)
	}
	// All-NaN leaves the mean at zero rather than NaN/Inf.
	agg = Summarize(results, []float64{math.NaN(), math.NaN(), math.NaN()})
	if agg.MeanModelSeconds != 0 {
		t.Errorf("all-NaN MeanModelSeconds = %v, want 0", agg.MeanModelSeconds)
	}
}

// Regression: a result carrying both Err != nil and Solved == true (an
// agent that hit numerical breakdown after meeting the solve criterion
// mid-aggregation) must never enter the solved statistics. The pre-fix
// skip condition `r.Err != nil && !r.Solved` let it through.
func TestSummarizeErroredTrialNeverAggregated(t *testing.T) {
	results := []*Result{
		{Solved: true, Episodes: 100, TotalSteps: 5000, Resets: 1},
		{Solved: true, Episodes: 300, TotalSteps: 9000, Err: errors.New("singular P"), Resets: 3},
	}
	agg := Summarize(results, []float64{10, 99})
	if agg.SolvedCount != 1 {
		t.Fatalf("SolvedCount = %d, want 1 (errored trial excluded)", agg.SolvedCount)
	}
	if agg.MeanEpisodes != 100 {
		t.Errorf("MeanEpisodes = %v, want 100", agg.MeanEpisodes)
	}
	if agg.MeanSteps != 5000 {
		t.Errorf("MeanSteps = %v, want 5000", agg.MeanSteps)
	}
	if agg.MeanModelSeconds != 10 {
		t.Errorf("MeanModelSeconds = %v, want 10", agg.MeanModelSeconds)
	}
	// Resets still count for every non-nil result, errored or not.
	if agg.MeanResets != 2 {
		t.Errorf("MeanResets = %v, want 2", agg.MeanResets)
	}
}

// Regression: RunTrials must not materialize one goroutine per trial up
// front — with Parallelism 2 and many trials, only about two trial
// goroutines may exist at a time. The pre-fix code spawned all n
// immediately (each blocking on the semaphore with a live agent closure).
func TestRunTrialsBoundsGoroutines(t *testing.T) {
	const trials = 64
	gate := make(chan struct{})
	var started atomic.Int32
	spec := TrialSpec{
		MakeAgent: func(seed uint64) (Agent, error) {
			started.Add(1)
			<-gate
			return nil, errors.New("measurement-only trial")
		},
		MakeEnv:     func(seed uint64) env.Env { return env.NewCartPoleV0(seed) },
		Config:      Config{MaxEpisodes: 1},
		Trials:      trials,
		Parallelism: 2,
	}
	base := runtime.NumGoroutine()
	done := make(chan []*Result, 1)
	go func() { done <- RunTrials(spec) }()
	// Wait until both permitted trials are inside MakeAgent.
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("trials never started")
		}
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base+trials/2 {
		t.Errorf("%d goroutines live for %d trials at parallelism 2 (baseline %d) — trial goroutines not bounded by the semaphore", g, trials, base)
	}
	close(gate)
	results := <-done
	if len(results) != trials {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r == nil || r.Err == nil {
			t.Fatalf("trial %d expected the construction error result", i)
		}
	}
}
