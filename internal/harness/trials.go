package harness

import (
	"math"
	"runtime"
	"strconv"
	"sync"

	"oselmrl/internal/env"
)

// TrialSpec describes a repeated-trial experiment: fresh agent and
// environment per seed, identical config.
type TrialSpec struct {
	// MakeAgent builds a fresh agent for a trial seed.
	MakeAgent func(seed uint64) (Agent, error)
	// MakeEnv builds a fresh environment for a trial seed.
	MakeEnv func(seed uint64) env.Env
	// Config is the per-trial run configuration.
	Config Config
	// Trials is the number of independent trials.
	Trials int
	// BaseSeed offsets trial seeds (trial i uses BaseSeed + i).
	BaseSeed uint64
	// Parallelism caps concurrent trials; 0 means GOMAXPROCS. Each trial
	// is independent (own agent, env, RNG streams), so trials parallelize
	// perfectly — this is where the repeated-measurement sweeps of
	// Figures 4-6 (100 trials per design in the paper) get their speed.
	Parallelism int
}

// RunTrials executes the spec, returning one Result per trial in seed
// order. Agent construction errors surface as Result.Err with a nil curve.
func RunTrials(spec TrialSpec) []*Result {
	n := spec.Trials
	if n <= 0 {
		n = 1
	}
	par := spec.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	results := make([]*Result, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := 0; i < n; i++ {
		// A stop (per-cell timeout in cmd/grid) also gates trial launch:
		// trials not yet started report ErrInterrupted without building an
		// agent, so a timed-out cell returns promptly instead of queueing
		// its remaining seeds.
		if stopped(spec.Config.Stop) {
			results[i] = &Result{Err: ErrInterrupted}
			continue
		}
		// Acquire before spawning so at most par goroutines (each holding a
		// live agent closure) exist at once — spawning all n up front made a
		// 10k-trial sweep allocate 10k goroutines that immediately blocked.
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			seed := spec.BaseSeed + uint64(i)
			agent, err := spec.MakeAgent(seed)
			if err != nil {
				results[i] = &Result{Err: err}
				return
			}
			e := spec.MakeEnv(seed)
			cfg := spec.Config
			// Tag each trial's events so the merged JSONL stream (one sink,
			// parallel writers) stays attributable; the metrics registry is
			// shared and aggregates across trials.
			cfg.Obs = cfg.Obs.With(map[string]string{
				"trial": strconv.Itoa(i),
				"seed":  strconv.FormatUint(seed, 10),
			})
			results[i] = Run(agent, e, cfg)
		}(i)
	}
	wg.Wait()
	return results
}

// Aggregate summarizes a set of trial results.
type Aggregate struct {
	// Trials is the number of results aggregated.
	Trials int
	// SolvedCount is how many trials met the solve criterion.
	SolvedCount int
	// MeanEpisodes and StdEpisodes summarize episodes-to-solve over the
	// solved trials only (the paper's completion metric).
	MeanEpisodes, StdEpisodes float64
	// MeanSteps is the mean total environment steps over solved trials.
	MeanSteps float64
	// MeanResets is the mean number of weight resets over all trials.
	MeanResets float64
	// MeanModelSeconds is the mean modelled device time-to-complete over
	// solved trials (filled by the caller via Breakdown totals).
	MeanModelSeconds float64
}

// Summarize aggregates results; modelSeconds may be nil or one modelled
// total per result. Errored trials (Result.Err != nil) never enter the
// solved statistics, whatever their Solved flag says; NaN or missing
// modelSeconds entries are excluded from MeanModelSeconds only (the
// trial's other statistics still count).
func Summarize(results []*Result, modelSeconds []float64) Aggregate {
	agg := Aggregate{Trials: len(results)}
	var epSum, epSq, stepSum, secSum float64
	var resetSum float64
	solved, secCount := 0, 0
	for i, r := range results {
		if r == nil {
			continue
		}
		resetSum += float64(r.Resets)
		if r.Err != nil || !r.Solved {
			continue
		}
		solved++
		epSum += float64(r.Episodes)
		epSq += float64(r.Episodes) * float64(r.Episodes)
		stepSum += float64(r.TotalSteps)
		if modelSeconds != nil && i < len(modelSeconds) && !math.IsNaN(modelSeconds[i]) {
			secSum += modelSeconds[i]
			secCount++
		}
	}
	agg.SolvedCount = solved
	if len(results) > 0 {
		agg.MeanResets = resetSum / float64(len(results))
	}
	if solved > 0 {
		n := float64(solved)
		agg.MeanEpisodes = epSum / n
		variance := epSq/n - agg.MeanEpisodes*agg.MeanEpisodes
		if variance > 0 {
			agg.StdEpisodes = math.Sqrt(variance)
		}
		agg.MeanSteps = stepSum / n
	}
	// Divide by the count of trials that actually contributed a modelled
	// total — dividing by the solved count silently deflated the mean
	// whenever any entry was NaN or the slice was short.
	if secCount > 0 {
		agg.MeanModelSeconds = secSum / float64(secCount)
	}
	return agg
}
