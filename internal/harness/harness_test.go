package harness

import (
	"errors"
	"math"
	"testing"

	"oselmrl/internal/env"
	"oselmrl/internal/replay"
	"oselmrl/internal/timing"
)

// scriptedAgent is a deterministic test double: it plays a fixed policy and
// records lifecycle calls.
type scriptedAgent struct {
	name        string
	action      int
	reinits     int
	episodeEnds []int
	counters    *timing.Counters
	observeErr  error
}

func newScripted(action int) *scriptedAgent {
	return &scriptedAgent{name: "scripted", action: action, counters: timing.NewCounters()}
}

func (s *scriptedAgent) Name() string               { return s.name }
func (s *scriptedAgent) SelectAction([]float64) int { return s.action }
func (s *scriptedAgent) Observe(replay.Transition) error {
	return s.observeErr
}
func (s *scriptedAgent) EndEpisode(ep int)          { s.episodeEnds = append(s.episodeEnds, ep) }
func (s *scriptedAgent) Reinitialize()              { s.reinits++ }
func (s *scriptedAgent) Counters() *timing.Counters { return s.counters }

// balancerAgent plays a hand-tuned PD policy that solves CartPole, letting
// the harness's solve detection be tested end to end.
type balancerAgent struct{ scriptedAgent }

func (b *balancerAgent) GreedyAction(s []float64) int { return b.SelectAction(s) }

func (b *balancerAgent) SelectAction(s []float64) int {
	if 1.0*s[2]+0.5*s[3]+0.05*s[0]+0.1*s[1] > 0 {
		return 1
	}
	return 0
}

func TestRunSolvesWithPerfectPolicy(t *testing.T) {
	a := &balancerAgent{}
	a.counters = timing.NewCounters()
	a.name = "balancer"
	e := env.NewCartPoleV0(1)
	cfg := Config{MaxEpisodes: 500, SolveWindow: 100, SolveThreshold: 195,
		RecordCurve: true, ScoreIsSteps: true}
	r := Run(a, e, cfg)
	if !r.Solved {
		t.Fatalf("PD balancer must solve CartPole; got %d episodes, last MA %v",
			r.Episodes, r.Curve[len(r.Curve)-1].MovingAvg)
	}
	if r.Episodes != 100 {
		t.Errorf("perfect policy should solve at exactly the window size, got %d", r.Episodes)
	}
	if r.Resets != 0 {
		t.Errorf("resets = %d", r.Resets)
	}
	// Curve invariants.
	if len(r.Curve) != r.Episodes {
		t.Errorf("curve length %d != episodes %d", len(r.Curve), r.Episodes)
	}
	last := r.Curve[len(r.Curve)-1]
	if last.MovingAvg < 195 {
		t.Errorf("final moving average %v", last.MovingAvg)
	}
	if r.TotalSteps < 195*100 {
		t.Errorf("TotalSteps = %d", r.TotalSteps)
	}
}

func TestRunImpossibleCutoff(t *testing.T) {
	a := newScripted(1) // constant push fails quickly
	e := env.NewCartPoleV0(2)
	cfg := Config{MaxEpisodes: 50, SolveWindow: 10, SolveThreshold: 195}
	r := Run(a, e, cfg)
	if r.Solved {
		t.Fatal("constant policy must not solve")
	}
	if r.Episodes != 50 {
		t.Errorf("episodes = %d, want the MaxEpisodes cutoff", r.Episodes)
	}
}

func TestRunResetRule(t *testing.T) {
	a := newScripted(0)
	e := env.NewCartPoleV0(3)
	cfg := Config{MaxEpisodes: 1000, ResetAfter: 300, SolveWindow: 100, SolveThreshold: 195}
	r := Run(a, e, cfg)
	if r.Resets != 3 {
		t.Errorf("resets = %d, want 3 in 1000 episodes with ResetAfter=300", r.Resets)
	}
	if a.reinits != 3 {
		t.Errorf("agent saw %d reinits", a.reinits)
	}
}

func TestRunEndEpisodeCalledEveryEpisode(t *testing.T) {
	a := newScripted(1)
	e := env.NewCartPoleV0(4)
	cfg := Config{MaxEpisodes: 5, SolveWindow: 100, SolveThreshold: 195}
	Run(a, e, cfg)
	if len(a.episodeEnds) != 5 {
		t.Fatalf("EndEpisode called %d times", len(a.episodeEnds))
	}
	for i, ep := range a.episodeEnds {
		if ep != i+1 {
			t.Errorf("EndEpisode arg %d = %d", i, ep)
		}
	}
}

func TestRunRecordsFirstObserveError(t *testing.T) {
	a := newScripted(1)
	a.observeErr = errors.New("boom")
	e := env.NewCartPoleV0(5)
	cfg := Config{MaxEpisodes: 2, SolveWindow: 10, SolveThreshold: 195}
	r := Run(a, e, cfg)
	if r.Err == nil || !errors.Is(r.Err, a.observeErr) {
		t.Errorf("Err = %v", r.Err)
	}
	if r.Episodes != 2 {
		t.Error("run must continue past recoverable errors")
	}
}

func TestRunScoreIsReturn(t *testing.T) {
	// GridWorld: with ScoreIsSteps=false the score is the accumulated
	// reward, which for the direct path is 1 - 0.01*(moves-1)... verify the
	// recorded score matches the env's reward stream.
	g := env.NewGridWorld(3, 6)
	a := newScripted(1) // always right: hits the east wall, times out
	cfg := Config{MaxEpisodes: 1, SolveWindow: 5, SolveThreshold: 1e9,
		RecordCurve: true, ScoreIsSteps: false}
	r := Run(a, g, cfg)
	want := -0.01 * float64(g.MaxSteps())
	if math.Abs(r.Curve[0].Score-want) > 1e-9 {
		t.Errorf("score = %v want %v", r.Curve[0].Score, want)
	}
}

func TestMovingWindow(t *testing.T) {
	w := newMovingWindow(3)
	if w.full() || w.mean() != 0 {
		t.Fatal("fresh window")
	}
	w.push(3)
	if w.mean() != 3 {
		t.Errorf("mean = %v", w.mean())
	}
	w.push(6)
	w.push(9)
	if !w.full() || w.mean() != 6 {
		t.Errorf("full=%v mean=%v", w.full(), w.mean())
	}
	w.push(12) // evicts 3
	if w.mean() != 9 {
		t.Errorf("rolling mean = %v", w.mean())
	}
}

func TestParseDesign(t *testing.T) {
	for _, d := range AllDesigns {
		got, err := ParseDesign(string(d))
		if err != nil || got != d {
			t.Errorf("ParseDesign(%q) = %v, %v", d, got, err)
		}
	}
	if _, err := ParseDesign("NOPE"); err == nil {
		t.Error("unknown design must error")
	}
}

func TestNewAgentAllDesigns(t *testing.T) {
	for _, d := range AllDesigns {
		a, err := NewAgent(d, 4, 2, 32, 1)
		if err != nil {
			t.Errorf("NewAgent(%s): %v", d, err)
			continue
		}
		if a.Name() != string(d) {
			t.Errorf("NewAgent(%s).Name() = %q", d, a.Name())
		}
	}
}

func TestNewAgentFPGAInfeasible(t *testing.T) {
	if _, err := NewAgent(DesignFPGA, 4, 2, 256, 1); err == nil {
		t.Error("256-unit FPGA agent must be rejected")
	}
}

func TestRunConfigFor(t *testing.T) {
	base := Defaults()
	if RunConfigFor(DesignDQN, base).ResetAfter != 0 {
		t.Error("DQN must not use the reset rule")
	}
	if RunConfigFor(DesignOSELM, base).ResetAfter != 300 {
		t.Error("OS-ELM keeps the 300-episode reset")
	}
}

func TestBreakdownProfiles(t *testing.T) {
	c := timing.NewCounters()
	c.Add(timing.PhaseSeqTrain, 1e6)
	// The same work must cost differently per design stack.
	oselmT := Breakdown(DesignOSELM, c).Total()
	fpgaT := Breakdown(DesignFPGA, c).Total()
	if fpgaT >= oselmT {
		t.Errorf("1e6 cycles on FPGA (%v s) must be cheaper than 1e6 flops on PyTorch (%v s)", fpgaT, oselmT)
	}
	c2 := timing.NewCounters()
	c2.Add(timing.PhaseTrainDQN, 1e6)
	if Breakdown(DesignDQN, c2).Total() <= 0 {
		t.Error("DQN breakdown empty")
	}
}

func TestRunTrialsParallel(t *testing.T) {
	spec := TrialSpec{
		MakeAgent: func(seed uint64) (Agent, error) {
			b := &balancerAgent{}
			b.counters = timing.NewCounters()
			b.name = "balancer"
			return b, nil
		},
		MakeEnv: func(seed uint64) env.Env { return env.NewCartPoleV0(seed) },
		Config: Config{MaxEpisodes: 300, SolveWindow: 50, SolveThreshold: 190,
			ScoreIsSteps: true},
		Trials:   6,
		BaseSeed: 100,
	}
	results := RunTrials(spec)
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("trial %d nil", i)
		}
		if !r.Solved {
			t.Errorf("trial %d unsolved", i)
		}
	}
	agg := Summarize(results, nil)
	if agg.SolvedCount != 6 || agg.Trials != 6 {
		t.Errorf("aggregate %+v", agg)
	}
	if agg.MeanEpisodes < 50 || agg.MeanEpisodes > 300 {
		t.Errorf("MeanEpisodes = %v", agg.MeanEpisodes)
	}
}

func TestRunTrialsAgentError(t *testing.T) {
	spec := TrialSpec{
		MakeAgent: func(seed uint64) (Agent, error) { return nil, errors.New("nope") },
		MakeEnv:   func(seed uint64) env.Env { return env.NewCartPoleV0(seed) },
		Config:    Config{MaxEpisodes: 1},
		Trials:    2,
	}
	results := RunTrials(spec)
	for _, r := range results {
		if r.Err == nil {
			t.Error("construction error must surface in the result")
		}
	}
	agg := Summarize(results, nil)
	if agg.SolvedCount != 0 {
		t.Error("failed trials must not count as solved")
	}
}

func TestSummarizeWithModelSeconds(t *testing.T) {
	results := []*Result{
		{Solved: true, Episodes: 100, TotalSteps: 5000},
		{Solved: true, Episodes: 200, TotalSteps: 9000},
		{Solved: false, Episodes: 500},
	}
	secs := []float64{10, 20, math.NaN()}
	agg := Summarize(results, secs)
	if agg.SolvedCount != 2 {
		t.Fatalf("solved = %d", agg.SolvedCount)
	}
	if agg.MeanEpisodes != 150 {
		t.Errorf("MeanEpisodes = %v", agg.MeanEpisodes)
	}
	if agg.MeanModelSeconds != 15 {
		t.Errorf("MeanModelSeconds = %v", agg.MeanModelSeconds)
	}
	if agg.StdEpisodes != 50 {
		t.Errorf("StdEpisodes = %v", agg.StdEpisodes)
	}
}

func TestEvaluateGreedy(t *testing.T) {
	b := &balancerAgent{}
	b.counters = timing.NewCounters()
	e := env.NewCartPoleV0(30)
	score := EvaluateGreedy(b, e, 5, true)
	// The PD balancer survives full episodes.
	if score < 195 {
		t.Errorf("balancer greedy score = %v", score)
	}
	// Return-based scoring on GridWorld.
	g := env.NewGridWorld(3, 31)
	fixed := newScripted(1) // pushes right until timeout
	ret := EvaluateGreedy(scriptedGreedy{fixed}, g, 1, false)
	if ret >= 0 {
		t.Errorf("timeout policy return = %v, should be negative", ret)
	}
}

// scriptedGreedy adapts the scripted test double to GreedyPolicy.
type scriptedGreedy struct{ *scriptedAgent }

func (s scriptedGreedy) GreedyAction(state []float64) int { return s.SelectAction(state) }
