package harness

import (
	"bytes"
	"testing"

	"oselmrl/internal/env"
	"oselmrl/internal/obs"
	"oselmrl/internal/qnet"
)

// runWatched trains variant on CartPole with a default-threshold watchdog
// attached and returns the result plus the decoded event stream.
func runWatched(t *testing.T, variant qnet.Variant, hidden, episodes int) (*Result, []obs.Event) {
	t.Helper()
	var buf bytes.Buffer
	emitter := obs.NewEmitter(obs.NewJSONLSink(&buf))
	emitter.SetWatchdog(obs.NewWatchdog(obs.DefaultWatchdogConfig()))

	cfg := qnet.DefaultConfig(variant, 4, 2, hidden)
	cfg.Seed = 1
	agent := qnet.MustNew(cfg)
	task := env.NewShaped(env.NewCartPoleV0(101), env.RewardSurvival)
	rc := Defaults()
	rc.MaxEpisodes = episodes
	rc.Obs = emitter

	res := Run(agent, task, rc)
	if err := emitter.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return res, events
}

// TestWatchdogFlagsDestabilizedRun is the divergence half of the
// watchdog's acceptance criterion: plain OS-ELM (no L2, no spectral
// normalization — the §3.3 failure mode the paper's design (5) exists to
// prevent) must trip the watchdog, yielding numeric_alert events, a
// diverged Result and a diverged run_end verdict.
func TestWatchdogFlagsDestabilizedRun(t *testing.T) {
	res, events := runWatched(t, qnet.VariantOSELM, 32, 100)

	if !res.Diverged {
		t.Fatal("destabilized OS-ELM run did not trip the watchdog")
	}
	if len(res.Alerts) == 0 {
		t.Fatal("Result.Diverged set but Alerts empty")
	}
	for _, al := range res.Alerts {
		if al.Rule == "" || al.Metric == "" || al.Count < 1 {
			t.Fatalf("malformed alert: %+v", al)
		}
	}

	var alerts []obs.Event
	var end *obs.Event
	for i, ev := range events {
		switch ev.Type {
		case obs.EventNumericAlert:
			alerts = append(alerts, events[i])
		case obs.EventRunEnd:
			end = &events[i]
		}
	}
	if len(alerts) != len(res.Alerts) {
		t.Fatalf("numeric_alert events = %d, Result.Alerts = %d", len(alerts), len(res.Alerts))
	}
	for i, ev := range alerts {
		if ev.Labels["rule"] != res.Alerts[i].Rule || ev.Labels["metric"] != res.Alerts[i].Metric {
			t.Fatalf("alert event %d labels %v disagree with %+v", i, ev.Labels, res.Alerts[i])
		}
		if ev.Data["value"] != res.Alerts[i].Value || ev.Data["threshold"] != res.Alerts[i].Threshold {
			t.Fatalf("alert event %d payload %v disagrees with %+v", i, ev.Data, res.Alerts[i])
		}
	}
	if end == nil {
		t.Fatal("no run_end event")
	}
	if end.Data["diverged"] != 1 || int(end.Data["numeric_alerts"]) != len(res.Alerts) {
		t.Fatalf("run_end verdict %v does not record the divergence", end.Data)
	}

	// The watchdog_* series must mirror the verdict.
	if res.Metrics.Counter(obs.MetricWatchdogAlerts) != int64(len(res.Alerts)) {
		t.Fatalf("watchdog_alerts counter = %d, want %d",
			res.Metrics.Counter(obs.MetricWatchdogAlerts), len(res.Alerts))
	}
	if g, ok := res.Metrics.Gauges[obs.GaugeWatchdogDiverged]; !ok || g != 1 {
		t.Fatalf("watchdog_diverged gauge = %v,%v, want 1", g, ok)
	}
}

// TestWatchdogSilentOnHealthyRun is the zero-false-positive half: the
// paper's stabilized design (5) under the default thresholds must finish
// with zero alerts, an un-diverged verdict, and no numeric_alert events.
func TestWatchdogSilentOnHealthyRun(t *testing.T) {
	res, events := runWatched(t, qnet.VariantOSELML2Lipschitz, 16, 120)

	if res.Diverged || len(res.Alerts) != 0 {
		t.Fatalf("healthy run flagged: diverged=%v alerts=%+v", res.Diverged, res.Alerts)
	}
	for _, ev := range events {
		if ev.Type == obs.EventNumericAlert {
			t.Fatalf("healthy run emitted numeric_alert: %+v", ev)
		}
		if ev.Type == obs.EventRunEnd {
			if ev.Data["diverged"] != 0 || ev.Data["numeric_alerts"] != 0 {
				t.Fatalf("healthy run_end verdict: %v", ev.Data)
			}
		}
	}
	if res.Metrics.Counter(obs.MetricWatchdogAlerts) != 0 {
		t.Fatal("watchdog_alerts counter nonzero on a healthy run")
	}
	// diverged=0 (not absent) distinguishes "watched and clean" from
	// "never watched".
	if g, ok := res.Metrics.Gauges[obs.GaugeWatchdogDiverged]; !ok || g != 0 {
		t.Fatalf("watchdog_diverged gauge = %v,%v, want recorded 0", g, ok)
	}
}
