package harness

import (
	"bytes"
	"strings"
	"testing"

	"oselmrl/internal/env"
	"oselmrl/internal/fixed"
	"oselmrl/internal/fpga"
	"oselmrl/internal/obs"
)

// runProfiled trains a small FPGA agent through the harness with the
// device profiler armed and returns the result, the event stream and the
// agent.
func runProfiled(t *testing.T, deviceProfile bool) (*Result, []obs.Event, *fpga.Agent) {
	t.Helper()
	var buf bytes.Buffer
	emitter := obs.NewEmitter(obs.NewJSONLSink(&buf))
	agent, err := NewAgentQ(DesignFPGA, 4, 2, 16, 7, fixed.QFormat{})
	if err != nil {
		t.Fatal(err)
	}
	task := env.NewShaped(env.NewCartPoleV0(107), env.RewardSurvival)
	rc := RunConfigFor(DesignFPGA, Defaults())
	rc.MaxEpisodes = 25
	rc.RecordCurve = false
	rc.Obs = emitter
	rc.DeviceProfile = deviceProfile
	res := Run(agent, task, rc)
	if err := emitter.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return res, events, agent.(*fpga.Agent)
}

// TestRunDeviceProfileEndToEnd is the tentpole's acceptance test at the
// harness level: Config.DeviceProfile arms the agent's profiler, the
// labeled fpga_cycles counters in the final metrics snapshot sum EXACTLY
// to the core's cycle counter, and the last device_profile event carries
// a self-consistent cumulative attribution.
func TestRunDeviceProfileEndToEnd(t *testing.T) {
	res, events, agent := runProfiled(t, true)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !agent.DeviceProfileEnabled() {
		t.Fatal("Run did not arm the device profiler")
	}
	core := agent.Core()
	if core.Cycles() == 0 {
		t.Fatal("no device cycles consumed — test is vacuous")
	}

	// Σ over every fpga_cycles{phase,kernel,unit} series == Cycles().
	if res.Metrics == nil {
		t.Fatal("Result.Metrics not filled")
	}
	var attributed int64
	series := 0
	for key, v := range res.Metrics.Counters {
		base, pairs := obs.SplitLabeled(key)
		if base != obs.MetricFPGACycles {
			continue
		}
		series++
		if len(pairs) != 3 {
			t.Errorf("fpga_cycles key %q has %d labels, want 3", key, len(pairs))
		}
		attributed += v
	}
	if series == 0 {
		t.Fatal("no fpga_cycles series in the metrics snapshot")
	}
	if attributed != core.Cycles() {
		t.Errorf("Σ fpga_cycles = %d, core.Cycles() = %d", attributed, core.Cycles())
	}

	// BRAM counters exist and the occupancy gauges are in range.
	bram := false
	for key := range res.Metrics.Counters {
		if base, _ := obs.SplitLabeled(key); base == obs.MetricFPGABRAMAccess {
			bram = true
			break
		}
	}
	if !bram {
		t.Error("no fpga_bram_access series in the metrics snapshot")
	}
	var busy float64
	for key, v := range res.Metrics.Gauges {
		base, _ := obs.SplitLabeled(key)
		if base == obs.GaugeFPGAUnitBusy {
			if v < 0 || v > 1 {
				t.Errorf("unit busy fraction %q = %v out of [0,1]", key, v)
			}
			busy += v
		}
	}
	if busy < 0.999 || busy > 1.001 {
		t.Errorf("unit busy fractions sum to %v, want 1 (every cycle belongs to a unit)", busy)
	}
	if v := res.Metrics.Gauges[obs.GaugeFPGAOpsPerCycle]; v <= 0 || v > 2 {
		t.Errorf("ops/cycle gauge = %v, implausible", v)
	}

	// The last device_profile event is cumulative and self-consistent.
	var last *obs.Event
	for i := range events {
		if events[i].Type == obs.EventDeviceProfile {
			last = &events[i]
		}
	}
	if last == nil {
		t.Fatal("no device_profile events emitted")
	}
	if got := int64(last.Data["total_cycles"]); got != core.Cycles() {
		t.Errorf("last device_profile total_cycles = %d, core.Cycles() = %d", got, core.Cycles())
	}
	var eventSum int64
	for k, v := range last.Data {
		if strings.HasPrefix(k, "cycles_") {
			eventSum += int64(v)
		}
	}
	if eventSum != int64(last.Data["total_cycles"]) {
		t.Errorf("device_profile cycles_* sum = %d, total_cycles = %v", eventSum, last.Data["total_cycles"])
	}
}

// TestRunDeviceProfileOff: without Config.DeviceProfile the profiler
// stays disarmed and no fpga_cycles series appear, even with full
// observability on.
func TestRunDeviceProfileOff(t *testing.T) {
	res, events, agent := runProfiled(t, false)
	if agent.DeviceProfileEnabled() {
		t.Fatal("profiler armed without DeviceProfile")
	}
	for key := range res.Metrics.Counters {
		if base, _ := obs.SplitLabeled(key); base == obs.MetricFPGACycles || base == obs.MetricFPGABRAMAccess {
			t.Errorf("unexpected profiler series %q with DeviceProfile off", key)
		}
	}
	for _, ev := range events {
		if ev.Type == obs.EventDeviceProfile {
			t.Error("device_profile event emitted with DeviceProfile off")
			break
		}
	}
}

// TestRunDeviceProfileDeterministic: arming the profiler must not change
// the learning outcome — it observes the datapath, never steers it.
func TestRunDeviceProfileDeterministic(t *testing.T) {
	plain, _, plainAgent := runProfiled(t, false)
	profiled, _, profAgent := runProfiled(t, true)
	if plain.Episodes != profiled.Episodes || plain.TotalSteps != profiled.TotalSteps ||
		plain.Solved != profiled.Solved {
		t.Fatalf("profiling changed the run: %+v vs %+v", plain, profiled)
	}
	if plainAgent.Core().Cycles() != profAgent.Core().Cycles() {
		t.Fatalf("profiling changed the cycle count: %d vs %d",
			plainAgent.Core().Cycles(), profAgent.Core().Cycles())
	}
}
