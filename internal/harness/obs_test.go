package harness

import (
	"bytes"
	"math"
	"testing"

	"oselmrl/internal/env"
	"oselmrl/internal/obs"
	"oselmrl/internal/qnet"
	"oselmrl/internal/timing"
)

// runObserved trains a small OS-ELM agent with observability on and
// returns the result plus the decoded event stream.
func runObserved(t *testing.T, maxEpisodes int) (*Result, []obs.Event) {
	t.Helper()
	var buf bytes.Buffer
	emitter := obs.NewEmitter(obs.NewJSONLSink(&buf))

	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 16)
	cfg.Seed = 5
	agent := qnet.MustNew(cfg)
	task := env.NewShaped(env.NewCartPoleV0(105), env.RewardSurvival)
	rc := Defaults()
	rc.MaxEpisodes = maxEpisodes
	rc.ResetAfter = 50
	rc.Obs = emitter

	res := Run(agent, task, rc)
	if err := emitter.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return res, events
}

// TestRunEventRoundTrip is the acceptance check for the observability
// layer: a full harness run with events enabled produces a parseable JSONL
// stream whose run_end verdict, episode count and per-phase wall-clock
// totals match the returned Result.
func TestRunEventRoundTrip(t *testing.T) {
	res, events := runObserved(t, 120)
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	if events[0].Type != obs.EventRunStart {
		t.Fatalf("first event is %q, want run_start", events[0].Type)
	}
	if events[0].Labels["design"] != "OS-ELM-L2-Lipschitz" || events[0].Labels["env"] == "" {
		t.Fatalf("run_start labels missing: %+v", events[0].Labels)
	}

	byType := map[string][]obs.Event{}
	for _, ev := range events {
		byType[ev.Type] = append(byType[ev.Type], ev)
	}

	// One episode_end per consumed episode, in order.
	eps := byType[obs.EventEpisodeEnd]
	if len(eps) != res.Episodes {
		t.Fatalf("episode_end count = %d, want %d", len(eps), res.Episodes)
	}
	for i, ev := range eps {
		if ev.Episode != i+1 {
			t.Fatalf("episode_end %d has episode %d", i, ev.Episode)
		}
	}
	// The per-episode payloads mirror the recorded curve.
	for i, p := range res.Curve {
		if int(eps[i].Data["steps"]) != p.Steps || eps[i].Data["moving_avg"] != p.MovingAvg {
			t.Fatalf("episode %d payload %v disagrees with curve %+v", i+1, eps[i].Data, p)
		}
	}

	// Reinit events match the reset count.
	if len(byType[obs.EventReinit]) != res.Resets {
		t.Fatalf("reinit events = %d, want %d resets", len(byType[obs.EventReinit]), res.Resets)
	}

	// Exactly one verdict, and it matches the Result.
	ends := byType[obs.EventRunEnd]
	if len(ends) != 1 {
		t.Fatalf("run_end events = %d, want 1", len(ends))
	}
	end := ends[0]
	if got := end.Data["solved"] == 1; got != res.Solved {
		t.Fatalf("run_end solved = %v, Result.Solved = %v", got, res.Solved)
	}
	if int(end.Data["episodes"]) != res.Episodes || int(end.Data["total_steps"]) != res.TotalSteps {
		t.Fatalf("run_end totals %v disagree with Result %+v", end.Data, res)
	}
	if int(end.Data["resets"]) != res.Resets {
		t.Fatalf("run_end resets = %v, want %d", end.Data["resets"], res.Resets)
	}
	if end.Data["wall_ms"] <= 0 || end.Data["wall_ms"] > 1.05*float64(res.WallTime.Milliseconds()+1) {
		t.Fatalf("run_end wall_ms = %v vs WallTime %v", end.Data["wall_ms"], res.WallTime)
	}

	// Phase wall-clock totals in the run_end event match the metrics
	// snapshot attached to the Result, and only cover time inside the run.
	if res.Metrics == nil {
		t.Fatal("Result.Metrics not filled")
	}
	var phaseTotal float64
	for phase, sec := range res.Metrics.WallSeconds {
		key := "wall_ms_" + phase
		if math.Abs(end.Data[key]-sec*1e3) > 1e-9 {
			t.Fatalf("%s = %v, snapshot says %v ms", key, end.Data[key], sec*1e3)
		}
		phaseTotal += sec
	}
	if phaseTotal > res.WallTime.Seconds() {
		t.Fatalf("phase wall total %.6fs exceeds run wall %.6fs", phaseTotal, res.WallTime.Seconds())
	}
	if res.Metrics.WallSeconds[string(timing.PhaseSeqTrain)] <= 0 {
		t.Fatal("no seq_train wall-clock recorded")
	}

	// Agent-level event/metric consistency: one seq_update event per
	// executed update, counted updates + skips = gated opportunities, and
	// the timing counters agree with the metrics registry.
	seqEvents := len(byType[obs.EventSeqUpdate])
	if int64(seqEvents) != res.Metrics.Counter(obs.MetricSeqUpdates) {
		t.Fatalf("seq_update events = %d, counter = %d",
			seqEvents, res.Metrics.Counter(obs.MetricSeqUpdates))
	}
	if got, want := res.Metrics.Counter(obs.MetricSeqUpdates), res.Counters.Calls(timing.PhaseSeqTrain); got != want {
		t.Fatalf("metrics seq_updates = %d, timing counters say %d", got, want)
	}
	if res.Metrics.Counter(obs.MetricSeqSkipped) == 0 {
		t.Fatal("ε₂ gate never skipped in 120 episodes — implausible")
	}
	if len(byType[obs.EventInitTrain]) == 0 || len(byType[obs.EventTheta2Sync]) == 0 {
		t.Fatal("init_train / theta2_sync events missing")
	}
	if res.Metrics.Counter(obs.MetricTargets) == 0 {
		t.Fatal("no Bellman targets counted")
	}
}

// TestRunWithoutObserver ensures the disabled path stays disabled: no
// metrics snapshot, no panic, identical behaviour.
func TestRunWithoutObserver(t *testing.T) {
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 16)
	cfg.Seed = 5
	agent := qnet.MustNew(cfg)
	task := env.NewShaped(env.NewCartPoleV0(105), env.RewardSurvival)
	rc := Defaults()
	rc.MaxEpisodes = 30
	res := Run(agent, task, rc)
	if res.Metrics != nil {
		t.Fatal("Metrics must stay nil without an emitter")
	}
}

// TestRunDeterministicUnderObservation: observability must not perturb the
// run (it reads, never writes, agent state).
func TestRunDeterministicUnderObservation(t *testing.T) {
	mk := func(withObs bool) *Result {
		cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 16)
		cfg.Seed = 9
		agent := qnet.MustNew(cfg)
		task := env.NewShaped(env.NewCartPoleV0(109), env.RewardSurvival)
		rc := Defaults()
		rc.MaxEpisodes = 80
		if withObs {
			rc.Obs = obs.NewEmitter(obs.NewJSONLSink(&bytes.Buffer{}))
		}
		return Run(agent, task, rc)
	}
	plain, observed := mk(false), mk(true)
	if plain.Episodes != observed.Episodes || plain.TotalSteps != observed.TotalSteps ||
		plain.Solved != observed.Solved || plain.Resets != observed.Resets {
		t.Fatalf("observation changed the run: %+v vs %+v", plain, observed)
	}
}

// TestRunTrialsLabelsEvents checks the parallel runner tags each trial's
// events in the merged stream.
func TestRunTrialsLabelsEvents(t *testing.T) {
	var buf bytes.Buffer
	emitter := obs.NewEmitter(obs.NewJSONLSink(&buf))
	spec := TrialSpec{
		MakeAgent: func(seed uint64) (Agent, error) {
			cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 8)
			cfg.Seed = seed
			return qnet.New(cfg)
		},
		MakeEnv: func(seed uint64) env.Env {
			return env.NewShaped(env.NewCartPoleV0(seed+1000), env.RewardSurvival)
		},
		Config: func() Config {
			c := Defaults()
			c.MaxEpisodes = 10
			c.RecordCurve = false
			c.Obs = emitter
			return c
		}(),
		Trials:   3,
		BaseSeed: 2,
	}
	results := RunTrials(spec)
	if err := emitter.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	trials := map[string]int{}
	for _, ev := range events {
		if ev.Type == obs.EventRunEnd {
			trials[ev.Labels["trial"]]++
		}
	}
	for i := 0; i < 3; i++ {
		if trials[string(rune('0'+i))] != 1 {
			t.Fatalf("trial %d run_end missing: %v", i, trials)
		}
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}
