package harness

import (
	"fmt"
	"sort"

	"oselmrl/internal/dqn"
	"oselmrl/internal/fixed"
	"oselmrl/internal/fpga"
	"oselmrl/internal/qnet"
	"oselmrl/internal/timing"
)

// Design names the seven compared designs of paper §4.1.
type Design string

// The seven designs, in the paper's order.
const (
	DesignELM              Design = "ELM"
	DesignOSELM            Design = "OS-ELM"
	DesignOSELML2          Design = "OS-ELM-L2"
	DesignOSELMLipschitz   Design = "OS-ELM-Lipschitz"
	DesignOSELML2Lipschitz Design = "OS-ELM-L2-Lipschitz"
	DesignDQN              Design = "DQN"
	DesignFPGA             Design = "FPGA"
)

// AllDesigns lists the seven designs in the paper's order.
var AllDesigns = []Design{
	DesignELM, DesignOSELM, DesignOSELML2, DesignOSELMLipschitz,
	DesignOSELML2Lipschitz, DesignDQN, DesignFPGA,
}

// TrainingCurveDesigns are the six software designs of Figure 4 (§4.3:
// the FPGA design is excluded from the algorithm-level training-curve
// comparison).
var TrainingCurveDesigns = AllDesigns[:6]

// qnetVariant maps software ELM/OS-ELM designs to their qnet variant.
func qnetVariant(d Design) (qnet.Variant, bool) {
	switch d {
	case DesignELM:
		return qnet.VariantELM, true
	case DesignOSELM:
		return qnet.VariantOSELM, true
	case DesignOSELML2:
		return qnet.VariantOSELML2, true
	case DesignOSELMLipschitz:
		return qnet.VariantOSELMLipschitz, true
	case DesignOSELML2Lipschitz:
		return qnet.VariantOSELML2Lipschitz, true
	}
	return 0, false
}

// ParseDesign resolves a design name case-sensitively, returning the list
// of valid names on failure.
func ParseDesign(name string) (Design, error) {
	for _, d := range AllDesigns {
		if string(d) == name {
			return d, nil
		}
	}
	names := make([]string, len(AllDesigns))
	for i, d := range AllDesigns {
		names[i] = string(d)
	}
	sort.Strings(names)
	return "", fmt.Errorf("harness: unknown design %q (valid: %v)", name, names)
}

// NewAgent constructs the named design with the paper's §4.1 defaults for
// the given environment dimensions, hidden width and seed.
func NewAgent(d Design, obsSize, actions, hidden int, seed uint64) (Agent, error) {
	return NewAgentQ(d, obsSize, actions, hidden, seed, fixed.QFormat{})
}

// NewAgentQ is NewAgent with a selectable fixed-point format for the FPGA
// design's datapath. The zero format is the Q20 default; requesting a
// non-default format for a float-only design is an error (precision is a
// property of the fixed-point datapath, not of the software designs).
func NewAgentQ(d Design, obsSize, actions, hidden int, seed uint64, q fixed.QFormat) (Agent, error) {
	if d != DesignFPGA && q != (fixed.QFormat{}) && q.Normalized() != fixed.DefaultFormat {
		return nil, fmt.Errorf("harness: design %s runs in float64; -qformat %s only applies to the FPGA design", d, q)
	}
	if v, ok := qnetVariant(d); ok {
		cfg := qnet.DefaultConfig(v, obsSize, actions, hidden)
		cfg.Seed = seed
		return qnet.New(cfg)
	}
	switch d {
	case DesignDQN:
		cfg := dqn.DefaultConfig(obsSize, actions, hidden)
		cfg.Seed = seed
		return dqn.New(cfg)
	case DesignFPGA:
		cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, obsSize, actions, hidden)
		cfg.Seed = seed
		return fpga.NewAgentQ(cfg, fpga.DefaultCycleModel(), q)
	}
	return nil, fmt.Errorf("harness: unknown design %q", d)
}

// RunConfigFor adapts a run configuration to a design: the §4.3 reset rule
// applies to "the designs other than DQN" because of their high dependence
// on initial weights, so DQN runs without resets.
func RunConfigFor(d Design, base Config) Config {
	if d == DesignDQN {
		base.ResetAfter = 0
	}
	return base
}

// Breakdown converts a design's work counters into modelled device seconds
// using the design's software/hardware stack (§4.3: NumPy for DQN, PyTorch
// for ELM/OS-ELM; §4.2: 125 MHz PL + CPU init for FPGA).
func Breakdown(d Design, c *timing.Counters) timing.Breakdown {
	switch d {
	case DesignDQN:
		return timing.Model(c, timing.CortexA9NumPy)
	case DesignFPGA:
		return timing.ModelMixed(c, fpga.PhaseProfiles(), timing.CortexA9Init)
	default:
		return timing.Model(c, timing.CortexA9PyTorch)
	}
}
