package harness

import (
	"fmt"
	"math"

	"oselmrl/internal/fleet"
	"oselmrl/internal/fpga"
	"oselmrl/internal/timing"
)

// FleetSpec describes a fleet experiment: Cores × Devices population
// members trained as independent trials (per-member agents, environments
// and RNG streams — member i seeds from BaseSeed+i, so every simulated
// core has its own stream), whose measured per-phase work is then
// scheduled on the discrete-event fleet simulator to model multi-core
// device time.
type FleetSpec struct {
	TrialSpec
	// Cores is the simulated core count per device (>= 1).
	Cores int
	// Devices is the number of replicated devices (>= 1); members are
	// partitioned round-robin across devices.
	Devices int
	// DispatchCycles overrides the simulator's serialized dispatch cost
	// (0 selects fleet.DefaultDispatchCycles).
	DispatchCycles int64
}

// FleetProjection is the simulator's view of a set of trained members:
// the workload their counters describe, the per-device simulations, and
// the headline speedup numbers.
type FleetProjection struct {
	// Workload is the whole fleet's measured kernel workload.
	Workload fleet.Workload
	// PerDevice holds one simulation result per device (each running
	// its member subset on Cores cores).
	PerDevice []*fleet.Result
	// Curve is the 1→Cores speedup curve of the whole workload on one
	// device — the headline artifact.
	Curve []fleet.SpeedupPoint
	// SequentialSeconds is the serialized one-core reference time;
	// FleetSeconds is the slowest device's makespan; Speedup their
	// ratio.
	SequentialSeconds float64
	FleetSeconds      float64
	Speedup           float64
}

// FleetResult bundles the trained members with the fleet projection.
type FleetResult struct {
	// Members holds one training Result per member, in seed order.
	Members []*Result
	// Merged is every member's Counters merged at the fleet barrier —
	// the only place the per-member counters are aggregated (they are
	// unsynchronized; see timing.Counters).
	Merged *timing.Counters
	// Projection is the simulator's modelled-time view.
	Projection *FleetProjection
}

// RunFleet trains the spec's population members concurrently (each with
// its own agent, env, RNG stream and Counters), merges their counters
// at the barrier, and projects the measured workload through the fleet
// simulator. Fleet metrics and per-core trace tracks are published on
// spec.Config.Obs.
func RunFleet(spec FleetSpec) (*FleetResult, error) {
	cores, devices := spec.Cores, spec.Devices
	if cores < 1 {
		cores = 1
	}
	if devices < 1 {
		devices = 1
	}
	spec.Trials = cores * devices
	members := RunTrials(spec.TrialSpec)
	for _, r := range members {
		if r != nil && r.Err != nil && r.Counters == nil {
			return nil, fmt.Errorf("harness: fleet member failed before running: %w", r.Err)
		}
	}

	// The fleet barrier: all member goroutines have joined (RunTrials
	// waits), so merging their private counters is race-free.
	merged := timing.NewCounters()
	for _, r := range members {
		if r != nil && r.Counters != nil {
			merged.Merge(r.Counters)
		}
	}

	proj := ProjectFleet(members, cores, devices, spec.DispatchCycles)
	for d, res := range proj.PerDevice {
		res.Publish(spec.Config.Obs, d)
		res.EmitTrace(spec.Config.Obs.Tracer(), d)
	}
	return &FleetResult{Members: members, Merged: merged, Projection: proj}, nil
}

// ProjectFleet builds the measured fleet workload from trained members
// and simulates it: a 1→cores speedup curve of the whole workload on
// one device, plus per-device simulations with members partitioned
// round-robin. It is also used standalone (cmd/timetocomplete) to
// project already-collected trial results onto a fleet.
func ProjectFleet(members []*Result, cores, devices int, dispatchCycles int64) *FleetProjection {
	if cores < 1 {
		cores = 1
	}
	if devices < 1 {
		devices = 1
	}
	w := FleetWorkload(members)
	cfg := fleet.Config{Cores: cores, DispatchCycles: dispatchCycles}
	proj := &FleetProjection{
		Workload: w,
		Curve:    fleet.SpeedupCurve(w, cfg, cores),
	}
	proj.SequentialSeconds = proj.Curve[0].MakespanSeconds

	for d := 0; d < devices; d++ {
		dw := fleet.Workload{Name: w.Name}
		for i := d; i < len(w.Members); i += devices {
			dw.Members = append(dw.Members, w.Members[i])
		}
		res := fleet.Simulate(dw, cfg)
		proj.PerDevice = append(proj.PerDevice, res)
		if s := res.MakespanSeconds(); s > proj.FleetSeconds {
			proj.FleetSeconds = s
		}
	}
	if proj.FleetSeconds > 0 {
		proj.Speedup = proj.SequentialSeconds / proj.FleetSeconds
	} else {
		proj.Speedup = 1
	}
	return proj
}

// FleetWorkload converts trained members' measured counters into a
// fleet workload: each member becomes one chain holding its PL-phase
// kernel invocations (predict_seq and seq_train; the CPU-side
// init_train and predict_init phases stay off the fabric). Totals are
// exact — each phase's measured cycle work is split over its calls with
// the remainder spread one cycle at a time, so Σ chain cycles equals
// the member's counted PL work to the cycle — and predict/seq_train
// jobs are interleaved proportionally to mimic the RL inner loop's
// alternation.
func FleetWorkload(members []*Result) fleet.Workload {
	w := fleet.Workload{Name: "population-training"}
	for _, r := range members {
		if r == nil || r.Counters == nil {
			w.Members = append(w.Members, nil)
			continue
		}
		pred := phaseJobs(r.Counters, timing.PhasePredictSeq)
		seq := phaseJobs(r.Counters, timing.PhaseSeqTrain)
		w.Members = append(w.Members, interleave(pred, seq))
	}
	return w
}

// phaseJobs splits one phase's measured (calls, work) into per-call
// jobs preserving the exact total.
func phaseJobs(c *timing.Counters, p timing.Phase) []fleet.Job {
	calls := c.Calls(p)
	if calls <= 0 {
		return nil
	}
	kernel := kernelOf(p)
	total := int64(math.Round(c.Work(p)))
	base, rem := total/calls, total%calls
	jobs := make([]fleet.Job, calls)
	for i := range jobs {
		cy := base
		if int64(i) < rem {
			cy++
		}
		jobs[i] = fleet.Job{Kernel: kernel, Cycles: cy}
	}
	return jobs
}

func kernelOf(p timing.Phase) fpga.Kernel {
	if p == timing.PhaseSeqTrain {
		return fpga.KernelSeqTrain
	}
	return fpga.KernelPredict
}

// interleave merges two job lists proportionally (a deterministic
// Bresenham walk), approximating the inner loop's
// predict/predict/seq_train alternation without reordering either list.
func interleave(a, b []fleet.Job) fleet.Chain {
	out := make(fleet.Chain, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a):
			out = append(out, b[j])
			j++
		case j == len(b):
			out = append(out, a[i])
			i++
		// Issue from a while its progress fraction trails b's:
		// i/len(a) <= j/len(b) cross-multiplied to stay in integers.
		case i*len(b) <= j*len(a):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	return out
}
