package harness

import (
	"errors"
	"testing"
	"time"

	"oselmrl/internal/env"
	"oselmrl/internal/timing"
)

func TestRunStopChannelAborts(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	a := newScripted(0)
	cfg := Config{MaxEpisodes: 50000, SolveWindow: 100, SolveThreshold: 195, Stop: stop}
	r := Run(a, env.NewCartPoleV0(1), cfg)
	if !errors.Is(r.Err, ErrInterrupted) {
		t.Fatalf("Err = %v, want ErrInterrupted", r.Err)
	}
	if r.Episodes != 0 {
		t.Fatalf("pre-closed stop still ran %d episodes", r.Episodes)
	}
	if r.Solved {
		t.Fatal("interrupted run reported solved")
	}
}

func TestRunStopMidRunKeepsProgress(t *testing.T) {
	stop := make(chan struct{})
	a := &balancerAgent{}
	a.counters = timing.NewCounters()
	a.name = "balancer"
	done := make(chan *Result, 1)
	go func() {
		cfg := Config{MaxEpisodes: 50000, SolveWindow: 5000, SolveThreshold: 1e18,
			ScoreIsSteps: true, Stop: stop}
		done <- Run(a, env.NewCartPoleV0(1), cfg)
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case r := <-done:
		if !errors.Is(r.Err, ErrInterrupted) {
			t.Fatalf("Err = %v, want ErrInterrupted", r.Err)
		}
		if r.Episodes == 0 {
			t.Fatal("mid-run stop recorded no progress")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not honor the stop channel")
	}
}

// A stopped spec must not launch the trials it has not started yet, and
// interrupted trials must stay out of the solved statistics.
func TestRunTrialsStopSkipsRemaining(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	spec := TrialSpec{
		MakeAgent: func(seed uint64) (Agent, error) {
			t.Error("MakeAgent called despite a pre-closed stop")
			return newScripted(0), nil
		},
		MakeEnv: func(seed uint64) env.Env { return env.NewCartPoleV0(seed) },
		Config:  Config{MaxEpisodes: 10, Stop: stop},
		Trials:  4,
	}
	results := RunTrials(spec)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for i, r := range results {
		if !errors.Is(r.Err, ErrInterrupted) {
			t.Fatalf("trial %d: Err = %v, want ErrInterrupted", i, r.Err)
		}
	}
	agg := Summarize(results, nil)
	if agg.SolvedCount != 0 {
		t.Fatalf("interrupted trials entered solved stats: %+v", agg)
	}
}
