package nn

import (
	"math"
	"testing"

	"oselmrl/internal/activation"
	"oselmrl/internal/mat"
	"oselmrl/internal/rng"
)

func smallNet(seed uint64) *MLP {
	return NewMLP([]int{3, 8, 2},
		[]activation.Func{activation.Tanh, activation.Identity}, rng.New(seed))
}

func TestMLPShapes(t *testing.T) {
	m := smallNet(1)
	if m.InputSize() != 3 || m.OutputSize() != 2 {
		t.Fatalf("in/out %d/%d", m.InputSize(), m.OutputSize())
	}
	if len(m.Layers) != 2 {
		t.Fatalf("layers %d", len(m.Layers))
	}
	if m.ParamCount() != 3*8+8+8*2+2 {
		t.Errorf("ParamCount = %d", m.ParamCount())
	}
	out := m.Forward([]float64{0.1, 0.2, 0.3})
	if len(out) != 2 {
		t.Fatalf("output len %d", len(out))
	}
}

func TestMLPConstructorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for activation count mismatch")
		}
	}()
	NewMLP([]int{2, 3}, []activation.Func{activation.ReLU, activation.ReLU}, rng.New(1))
}

func TestForwardBatchMatchesForward(t *testing.T) {
	m := smallNet(2)
	xs := [][]float64{{0.1, -0.5, 0.3}, {1, 2, -3}, {0, 0, 0}}
	batch := mat.FromRows(xs)
	out, _ := m.ForwardBatch(batch)
	for i, x := range xs {
		single := m.Forward(x)
		for j := range single {
			if math.Abs(single[j]-out.At(i, j)) > 1e-14 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, single[j], out.At(i, j))
			}
		}
	}
}

// TestGradientCheck verifies backprop against central finite differences
// for every parameter of a small network — the canonical correctness test
// for a hand-written backward pass.
func TestGradientCheck(t *testing.T) {
	m := NewMLP([]int{2, 4, 2},
		[]activation.Func{activation.Sigmoid, activation.Identity}, rng.New(3))
	x := mat.FromRows([][]float64{{0.3, -0.7}, {0.9, 0.1}})
	targets := [][]float64{{0.5, -0.5}, {1, 0}}

	// Loss: L = Σ_batch Σ_out (pred - target)² / 2 — a plain quadratic so
	// the analytic gradient is pred - target.
	loss := func() float64 {
		out, _ := m.ForwardBatch(x)
		var l float64
		for i := range targets {
			for j := range targets[i] {
				d := out.At(i, j) - targets[i][j]
				l += d * d / 2
			}
		}
		return l
	}
	out, cache := m.ForwardBatch(x)
	dLoss := mat.Zeros(2, 2)
	for i := range targets {
		for j := range targets[i] {
			dLoss.Set(i, j, out.At(i, j)-targets[i][j])
		}
	}
	grads := m.BackwardBatch(cache, dLoss)

	const h = 1e-6
	const tol = 1e-4
	for li, layer := range m.Layers {
		rows, cols := layer.W.Dims()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				orig := layer.W.At(i, j)
				layer.W.Set(i, j, orig+h)
				lp := loss()
				layer.W.Set(i, j, orig-h)
				lm := loss()
				layer.W.Set(i, j, orig)
				numeric := (lp - lm) / (2 * h)
				if math.Abs(numeric-grads.W[li].At(i, j)) > tol {
					t.Errorf("layer %d W(%d,%d): analytic %v numeric %v",
						li, i, j, grads.W[li].At(i, j), numeric)
				}
			}
		}
		for j := range layer.B {
			orig := layer.B[j]
			layer.B[j] = orig + h
			lp := loss()
			layer.B[j] = orig - h
			lm := loss()
			layer.B[j] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-grads.B[li][j]) > tol {
				t.Errorf("layer %d B(%d): analytic %v numeric %v",
					li, j, grads.B[li][j], numeric)
			}
		}
	}
}

func TestCloneAndCopy(t *testing.T) {
	m := smallNet(4)
	c := m.Clone()
	x := []float64{0.5, -0.5, 1}
	a, b := m.Forward(x), c.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("clone must compute identically")
		}
	}
	c.Layers[0].W.Set(0, 0, 42)
	if m.Layers[0].W.At(0, 0) == 42 {
		t.Fatal("clone must deep-copy")
	}
	m.CopyWeightsFrom(c)
	if m.Layers[0].W.At(0, 0) != 42 {
		t.Fatal("CopyWeightsFrom failed")
	}
}

// TestAdamLearnsRegression: the full stack (forward, backward, Adam) must
// fit a small regression problem.
func TestAdamLearnsRegression(t *testing.T) {
	r := rng.New(5)
	m := NewMLP([]int{1, 16, 1},
		[]activation.Func{activation.Tanh, activation.Identity}, r)
	opt := NewAdam(0.01)
	var loss MSELoss

	// Target: y = x² on [-1, 1].
	k := 64
	x := mat.Zeros(k, 1)
	y := make([]float64, k)
	for i := 0; i < k; i++ {
		v := -1 + 2*float64(i)/float64(k-1)
		x.Set(i, 0, v)
		y[i] = v * v
	}
	var final float64
	for epoch := 0; epoch < 2000; epoch++ {
		out, cache := m.ForwardBatch(x)
		pred := out.Col(0)
		final = loss.Loss(pred, y)
		g := loss.Grad(pred, y)
		dLoss := mat.Zeros(k, 1)
		for i, gv := range g {
			dLoss.Set(i, 0, gv)
		}
		grads := m.BackwardBatch(cache, dLoss)
		opt.Step(m, grads)
	}
	if final > 1e-3 {
		t.Errorf("regression did not converge: loss %v", final)
	}
	if opt.StepCount() != 2000 {
		t.Errorf("StepCount = %d", opt.StepCount())
	}
}

func TestAdamReset(t *testing.T) {
	m := smallNet(6)
	opt := NewAdam(0.01)
	g := m.ZeroGradsLike()
	opt.Step(m, g)
	opt.Reset()
	if opt.StepCount() != 0 {
		t.Error("Reset must zero the step counter")
	}
	opt.Step(m, g) // must not panic after reset (buffers reallocate)
}

func TestHuberLoss(t *testing.T) {
	var h HuberLoss
	// Quadratic region: |d| < 1.
	if got := h.Loss([]float64{0.5}, []float64{0}); got != 0.125 {
		t.Errorf("quadratic Huber = %v", got)
	}
	// Linear region: |d| >= 1 → |d| - 0.5 (paper Eq. 15).
	if got := h.Loss([]float64{3}, []float64{0}); got != 2.5 {
		t.Errorf("linear Huber = %v", got)
	}
	// Gradient clips at ±1/n.
	g := h.Grad([]float64{5, -5, 0.5, 0}, []float64{0, 0, 0, 0})
	want := []float64{0.25, -0.25, 0.125, 0}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-14 {
			t.Errorf("grad[%d] = %v want %v", i, g[i], want[i])
		}
	}
	if h.Loss(nil, nil) != 0 {
		t.Error("empty Huber loss must be 0")
	}
}

func TestHuberGradMatchesFiniteDifference(t *testing.T) {
	var hl HuberLoss
	x := []float64{0.3, -2, 0.9}
	y := []float64{0, 0, 1}
	g := hl.Grad(x, y)
	const h = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		numeric := (hl.Loss(xp, y) - hl.Loss(xm, y)) / (2 * h)
		if math.Abs(numeric-g[i]) > 1e-5 {
			t.Errorf("Huber grad[%d]: analytic %v numeric %v", i, g[i], numeric)
		}
	}
}

func TestMSELoss(t *testing.T) {
	var m MSELoss
	if got := m.Loss([]float64{2}, []float64{0}); got != 2 {
		t.Errorf("MSE = %v", got)
	}
	g := m.Grad([]float64{2, 4}, []float64{0, 0})
	if g[0] != 1 || g[1] != 2 {
		t.Errorf("MSE grad = %v", g)
	}
}
