package nn

import "math"

// HuberLoss is the elementwise Huber function of paper Eq. 14-15 with the
// transition at |x-y| = 1:
//
//	z = ½(x−y)²       if |x−y| < 1
//	z = |x−y| − ½     otherwise
//
// Loss returns the mean of z over the inputs; Grad returns ∂L/∂x, which is
// the clipped error (x−y) limited to [−1, 1], divided by n — the gradient
// clipping DQNs rely on for stability.
type HuberLoss struct{}

// Loss returns the mean Huber loss between predictions x and targets y.
func (HuberLoss) Loss(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("nn: Huber loss length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for i := range x {
		d := x[i] - y[i]
		if math.Abs(d) < 1 {
			sum += 0.5 * d * d
		} else {
			sum += math.Abs(d) - 0.5
		}
	}
	return sum / float64(len(x))
}

// Grad returns ∂L/∂x for the mean Huber loss.
func (HuberLoss) Grad(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("nn: Huber grad length mismatch")
	}
	n := float64(len(x))
	g := make([]float64, len(x))
	for i := range x {
		d := x[i] - y[i]
		if d > 1 {
			d = 1
		} else if d < -1 {
			d = -1
		}
		g[i] = d / n
	}
	return g
}

// MSELoss is the mean squared error, used in the supervised example and the
// gradient-check tests.
type MSELoss struct{}

// Loss returns mean((x-y)²)/2.
func (MSELoss) Loss(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("nn: MSE loss length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for i := range x {
		d := x[i] - y[i]
		sum += d * d
	}
	return sum / (2 * float64(len(x)))
}

// Grad returns ∂L/∂x for the halved mean squared error.
func (MSELoss) Grad(x, y []float64) []float64 {
	n := float64(len(x))
	g := make([]float64, len(x))
	for i := range x {
		g[i] = (x[i] - y[i]) / n
	}
	return g
}
