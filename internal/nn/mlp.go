// Package nn implements the small feed-forward neural network stack the
// conventional DQN baseline needs (paper §2.4 and §4.1): a multi-layer
// perceptron with manual backpropagation, the Adam optimizer (Kingma & Ba,
// 2015) and the Huber loss (paper Eq. 14-15). Nothing here is used by the
// proposed OS-ELM designs — it exists so the baseline the paper compares
// against is a real, trainable DQN rather than a stub.
package nn

import (
	"fmt"
	"math"

	"oselmrl/internal/activation"
	"oselmrl/internal/mat"
	"oselmrl/internal/rng"
)

// Layer is a fully connected layer y = G(x·W + b).
type Layer struct {
	// W is the in×out weight matrix.
	W *mat.Dense
	// B is the bias vector of length out.
	B []float64
	// Act is the layer activation.
	Act activation.Func
}

// MLP is a feed-forward network of fully connected layers.
type MLP struct {
	Layers []*Layer
	sizes  []int
}

// NewMLP builds a network with the given layer sizes (len >= 2) and one
// activation per weight layer. Weights use He-uniform initialization
// (appropriate for the ReLU hidden layers the paper evaluates with).
func NewMLP(sizes []int, acts []activation.Func, r *rng.RNG) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	if len(acts) != len(sizes)-1 {
		panic(fmt.Sprintf("nn: %d activations for %d layers", len(acts), len(sizes)-1))
	}
	m := &MLP{sizes: append([]int(nil), sizes...)}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		w := mat.Zeros(in, out)
		bound := math.Sqrt(6.0 / float64(in))
		r.FillUniform(w.RawData(), -bound, bound)
		m.Layers = append(m.Layers, &Layer{
			W:   w,
			B:   make([]float64, out),
			Act: acts[l],
		})
	}
	return m
}

// InputSize returns the network input dimension.
func (m *MLP) InputSize() int { return m.sizes[0] }

// OutputSize returns the network output dimension.
func (m *MLP) OutputSize() int { return m.sizes[len(m.sizes)-1] }

// Sizes returns a copy of the layer sizes.
func (m *MLP) Sizes() []int { return append([]int(nil), m.sizes...) }

// WeightNorm returns the Frobenius norm over all weight matrices and bias
// vectors — the DQN baseline's counterpart to ‖β‖F in the learning-
// dynamics telemetry (learn_beta_norm).
func (m *MLP) WeightNorm() float64 {
	var sum float64
	for _, l := range m.Layers {
		for _, w := range l.W.RawData() {
			sum += w * w
		}
		for _, b := range l.B {
			sum += b * b
		}
	}
	return math.Sqrt(sum)
}

// Cache holds the per-layer pre- and post-activation values of a forward
// pass, needed by backpropagation.
type Cache struct {
	// Input is the k×in batch fed to the network.
	Input *mat.Dense
	// Pre[l] is the k×out pre-activation of layer l.
	Pre []*mat.Dense
	// Post[l] is the k×out post-activation of layer l.
	Post []*mat.Dense
}

// ForwardBatch runs a k×in batch through the network, returning the k×out
// output and the cache for backpropagation.
func (m *MLP) ForwardBatch(x *mat.Dense) (*mat.Dense, *Cache) {
	if x.Cols() != m.InputSize() {
		panic(fmt.Sprintf("nn: input width %d, network expects %d", x.Cols(), m.InputSize()))
	}
	cache := &Cache{Input: x}
	cur := x
	for _, layer := range m.Layers {
		pre := mat.Mul(cur, layer.W)
		k, out := pre.Dims()
		for i := 0; i < k; i++ {
			for j := 0; j < out; j++ {
				pre.Set(i, j, pre.At(i, j)+layer.B[j])
			}
		}
		post := mat.Apply(pre, layer.Act.F)
		cache.Pre = append(cache.Pre, pre)
		cache.Post = append(cache.Post, post)
		cur = post
	}
	return cur, cache
}

// Forward runs a single input vector through the network.
func (m *MLP) Forward(x []float64) []float64 {
	out, _ := m.ForwardBatch(mat.RowVector(x))
	return out.Row(0)
}

// Grads holds per-layer parameter gradients.
type Grads struct {
	W []*mat.Dense
	B [][]float64
}

// ZeroGradsLike allocates zero gradients shaped like m's parameters.
func (m *MLP) ZeroGradsLike() *Grads {
	g := &Grads{}
	for _, l := range m.Layers {
		r, c := l.W.Dims()
		g.W = append(g.W, mat.Zeros(r, c))
		g.B = append(g.B, make([]float64, len(l.B)))
	}
	return g
}

// BackwardBatch backpropagates dLoss (k×out, ∂L/∂output) through the
// cached forward pass and returns parameter gradients summed over the batch.
func (m *MLP) BackwardBatch(cache *Cache, dLoss *mat.Dense) *Grads {
	g := m.ZeroGradsLike()
	nl := len(m.Layers)
	// delta starts as ∂L/∂post of the last layer.
	delta := dLoss.Clone()
	for l := nl - 1; l >= 0; l-- {
		layer := m.Layers[l]
		pre := cache.Pre[l]
		// delta ← delta ∘ G'(pre): ∂L/∂pre.
		k, out := delta.Dims()
		for i := 0; i < k; i++ {
			for j := 0; j < out; j++ {
				delta.Set(i, j, delta.At(i, j)*layer.Act.Deriv(pre.At(i, j)))
			}
		}
		// Input to this layer.
		var in *mat.Dense
		if l == 0 {
			in = cache.Input
		} else {
			in = cache.Post[l-1]
		}
		// dW = inᵀ·delta ; dB = column sums of delta.
		g.W[l] = mat.Mul(in.T(), delta)
		for j := 0; j < out; j++ {
			var s float64
			for i := 0; i < k; i++ {
				s += delta.At(i, j)
			}
			g.B[l][j] = s
		}
		// Propagate: delta ← delta·Wᵀ.
		if l > 0 {
			delta = mat.Mul(delta, layer.W.T())
		}
	}
	return g
}

// Clone deep-copies the network (target network θ2).
func (m *MLP) Clone() *MLP {
	c := &MLP{sizes: append([]int(nil), m.sizes...)}
	for _, l := range m.Layers {
		b := make([]float64, len(l.B))
		copy(b, l.B)
		c.Layers = append(c.Layers, &Layer{W: l.W.Clone(), B: b, Act: l.Act})
	}
	return c
}

// CopyWeightsFrom copies parameters from src (θ2 ← θ1 sync).
func (m *MLP) CopyWeightsFrom(src *MLP) {
	if len(m.Layers) != len(src.Layers) {
		panic("nn: CopyWeightsFrom layer count mismatch")
	}
	for i, l := range m.Layers {
		l.W.CopyFrom(src.Layers[i].W)
		copy(l.B, src.Layers[i].B)
	}
}

// ParamCount returns the total number of trainable parameters.
func (m *MLP) ParamCount() int {
	n := 0
	for _, l := range m.Layers {
		r, c := l.W.Dims()
		n += r*c + len(l.B)
	}
	return n
}
