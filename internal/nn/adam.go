package nn

import (
	"math"

	"oselmrl/internal/mat"
)

// Adam implements the Adam optimizer (Kingma & Ba, 2015), the optimizer the
// paper's DQN baseline uses with learning rate 0.01 (§4.1).
type Adam struct {
	// LR is the step size (paper: 0.01).
	LR float64
	// Beta1, Beta2 are the moment decay rates (defaults 0.9, 0.999).
	Beta1, Beta2 float64
	// Eps is the denominator fuzz (default 1e-8).
	Eps float64

	t  int
	mW []*mat.Dense
	vW []*mat.Dense
	mB [][]float64
	vB [][]float64
}

// NewAdam returns an Adam optimizer with standard moment coefficients.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update of model parameters using gradients g.
// Moment buffers are allocated lazily on first use and keyed positionally
// to the model's layers.
func (a *Adam) Step(model *MLP, g *Grads) {
	if a.mW == nil {
		for _, l := range model.Layers {
			r, c := l.W.Dims()
			a.mW = append(a.mW, mat.Zeros(r, c))
			a.vW = append(a.vW, mat.Zeros(r, c))
			a.mB = append(a.mB, make([]float64, len(l.B)))
			a.vB = append(a.vB, make([]float64, len(l.B)))
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for li, l := range model.Layers {
		w, gw := l.W.RawData(), g.W[li].RawData()
		mw, vw := a.mW[li].RawData(), a.vW[li].RawData()
		for i := range w {
			mw[i] = a.Beta1*mw[i] + (1-a.Beta1)*gw[i]
			vw[i] = a.Beta2*vw[i] + (1-a.Beta2)*gw[i]*gw[i]
			w[i] -= a.LR * (mw[i] / bc1) / (math.Sqrt(vw[i]/bc2) + a.Eps)
		}
		b, gb := l.B, g.B[li]
		mb, vb := a.mB[li], a.vB[li]
		for i := range b {
			mb[i] = a.Beta1*mb[i] + (1-a.Beta1)*gb[i]
			vb[i] = a.Beta2*vb[i] + (1-a.Beta2)*gb[i]*gb[i]
			b[i] -= a.LR * (mb[i] / bc1) / (math.Sqrt(vb[i]/bc2) + a.Eps)
		}
	}
}

// Reset clears optimizer state (used when an agent reinitializes weights).
func (a *Adam) Reset() {
	a.t = 0
	a.mW, a.vW, a.mB, a.vB = nil, nil, nil, nil
}

// StepCount returns the number of updates applied.
func (a *Adam) StepCount() int { return a.t }
