package trace

import (
	"strings"
	"testing"

	"oselmrl/internal/harness"
	"oselmrl/internal/timing"
)

func sampleRows() []BreakdownRow {
	return []BreakdownRow{
		{
			Design: "DQN", Hidden: 32, Solved: true, Episodes: 4000,
			Breakdown: timing.Breakdown{
				timing.PhaseTrainDQN:  100,
				timing.PhasePredict1:  20,
				timing.PhasePredict32: 30,
			},
		},
		{
			Design: "OS-ELM-L2-Lipschitz", Hidden: 32, Solved: true, Episodes: 2000,
			Breakdown: timing.Breakdown{
				timing.PhaseSeqTrain:   10,
				timing.PhasePredictSeq: 4,
				timing.PhaseInitTrain:  1,
			},
		},
		{
			Design: "OS-ELM", Hidden: 32, Solved: false, Episodes: 50000,
			Breakdown: timing.Breakdown{timing.PhaseSeqTrain: 99},
		},
		{
			Design: "FPGA", Hidden: 64, Solved: true, Episodes: 1500,
			Breakdown: timing.Breakdown{timing.PhaseSeqTrain: 2},
		},
	}
}

func TestWriteCurveCSV(t *testing.T) {
	curve := []harness.EpisodeStat{
		{Episode: 1, Steps: 12, Score: 12, MovingAvg: 12},
		{Episode: 2, Steps: 30, Score: 30, MovingAvg: 21},
	}
	var sb strings.Builder
	if err := WriteCurveCSV(&sb, curve); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "episode,steps,score,moving_avg" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "2,30,30,21") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestWriteBreakdownCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteBreakdownCSV(&sb, sampleRows()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "seq_train") || !strings.Contains(lines[0], "train_DQN") {
		t.Errorf("header missing phases: %q", lines[0])
	}
	if !strings.Contains(lines[1], "DQN,32,true,4000") {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Total column: DQN total = 150.
	if !strings.HasSuffix(lines[1], ",150") {
		t.Errorf("DQN total suffix wrong: %q", lines[1])
	}
}

func TestFormatBreakdownTable(t *testing.T) {
	out := FormatBreakdownTable(sampleRows())
	if !strings.Contains(out, "== 32 hidden units ==") ||
		!strings.Contains(out, "== 64 hidden units ==") {
		t.Error("missing hidden-size groups")
	}
	if !strings.Contains(out, "NOT SOLVED") {
		t.Error("unsolved marker missing")
	}
	if !strings.Contains(out, "OS-ELM-L2-Lipschitz") {
		t.Error("design name missing")
	}
}

func TestSpeedupTable(t *testing.T) {
	out := SpeedupTable(sampleRows())
	// 32 units: DQN 150s vs OS-ELM-L2-Lipschitz 15s → 10x.
	if !strings.Contains(out, "10.00x faster than DQN") {
		t.Errorf("speedup not computed:\n%s", out)
	}
	// Unsolved OS-ELM must not be listed as a speedup.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "OS-ELM ") && strings.Contains(line, "faster") {
			t.Errorf("unsolved design listed: %q", line)
		}
	}
	// 64 units: no DQN baseline present.
	if !strings.Contains(out, "64 units: no solved DQN baseline") {
		t.Errorf("missing baseline note:\n%s", out)
	}
}

// TestSpeedupTableNoDQNRow: a sweep run without the DQN design at all
// (e.g. -designs FPGA) must degrade to the baseline note for every hidden
// size rather than fabricate ratios or panic.
func TestSpeedupTableNoDQNRow(t *testing.T) {
	rows := []BreakdownRow{
		{Design: "FPGA", Hidden: 32, Solved: true, Episodes: 1500,
			Breakdown: timing.Breakdown{timing.PhaseSeqTrain: 2}},
		{Design: "OS-ELM-L2-Lipschitz", Hidden: 64, Solved: true, Episodes: 2000,
			Breakdown: timing.Breakdown{timing.PhaseSeqTrain: 10}},
	}
	out := SpeedupTable(rows)
	if !strings.Contains(out, "32 units: no solved DQN baseline") ||
		!strings.Contains(out, "64 units: no solved DQN baseline") {
		t.Errorf("missing baseline notes:\n%s", out)
	}
	if strings.Contains(out, "faster than DQN") {
		t.Errorf("speedup fabricated without a baseline:\n%s", out)
	}
}

// TestSpeedupTableUnsolvedDQN: a DQN row that exhausted its budget is not
// a valid baseline — its (censored) total would overstate every speedup.
func TestSpeedupTableUnsolvedDQN(t *testing.T) {
	rows := []BreakdownRow{
		{Design: "DQN", Hidden: 32, Solved: false, Episodes: 3000,
			Breakdown: timing.Breakdown{timing.PhaseTrainDQN: 500}},
		{Design: "FPGA", Hidden: 32, Solved: true, Episodes: 1500,
			Breakdown: timing.Breakdown{timing.PhaseSeqTrain: 2}},
	}
	out := SpeedupTable(rows)
	if !strings.Contains(out, "32 units: no solved DQN baseline") {
		t.Errorf("unsolved DQN accepted as baseline:\n%s", out)
	}
	if strings.Contains(out, "faster than DQN") {
		t.Errorf("speedup computed against unsolved DQN:\n%s", out)
	}
}

// TestSpeedupTableEmpty: no rows, no output, no panic.
func TestSpeedupTableEmpty(t *testing.T) {
	if out := SpeedupTable(nil); out != "" {
		t.Errorf("empty input produced output: %q", out)
	}
}
