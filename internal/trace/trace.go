// Package trace renders experiment results as CSV and aligned-text tables
// so the cmd/ tools can regenerate the paper's figures as data files that
// plot directly (each figure's X/Y series or table rows).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"oselmrl/internal/harness"
	"oselmrl/internal/timing"
)

// WriteCurveCSV emits a training curve (paper Figure 4's light line plus
// the 100-episode moving average dark line) as CSV:
// episode,steps,score,moving_avg.
func WriteCurveCSV(w io.Writer, curve []harness.EpisodeStat) error {
	if _, err := fmt.Fprintln(w, "episode,steps,score,moving_avg"); err != nil {
		return err
	}
	for _, p := range curve {
		if _, err := fmt.Fprintf(w, "%d,%d,%s,%s\n",
			p.Episode, p.Steps, formatFloat(p.Score), formatFloat(p.MovingAvg)); err != nil {
			return err
		}
	}
	return nil
}

// BreakdownRow is one design's execution-time breakdown at one hidden size
// (one bar of paper Figure 5/6).
type BreakdownRow struct {
	Design string
	Hidden int
	// Breakdown maps phase to modelled seconds.
	Breakdown timing.Breakdown
	// Solved and Episodes qualify the measurement.
	Solved   bool
	Episodes int
}

// WriteBreakdownCSV emits Figure 5-style rows:
// design,hidden,solved,episodes,<phase columns...>,total.
func WriteBreakdownCSV(w io.Writer, rows []BreakdownRow) error {
	cols := make([]string, 0, len(timing.AllPhases))
	for _, p := range timing.AllPhases {
		cols = append(cols, string(p))
	}
	if _, err := fmt.Fprintf(w, "design,hidden,solved,episodes,%s,total\n",
		strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, r := range rows {
		fields := []string{r.Design, strconv.Itoa(r.Hidden),
			strconv.FormatBool(r.Solved), strconv.Itoa(r.Episodes)}
		for _, p := range timing.AllPhases {
			fields = append(fields, formatFloat(r.Breakdown[p]))
		}
		fields = append(fields, formatFloat(r.Breakdown.Total()))
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

// FormatBreakdownTable renders rows as an aligned text table grouped by
// hidden size, mirroring how Figure 5 is organized.
func FormatBreakdownTable(rows []BreakdownRow) string {
	var sb strings.Builder
	byHidden := map[int][]BreakdownRow{}
	hiddens := []int{}
	for _, r := range rows {
		if _, ok := byHidden[r.Hidden]; !ok {
			hiddens = append(hiddens, r.Hidden)
		}
		byHidden[r.Hidden] = append(byHidden[r.Hidden], r)
	}
	sort.Ints(hiddens)
	for _, h := range hiddens {
		fmt.Fprintf(&sb, "== %d hidden units ==\n", h)
		for _, r := range byHidden[h] {
			status := "solved"
			if !r.Solved {
				status = "NOT SOLVED"
			}
			fmt.Fprintf(&sb, "%-22s %-10s episodes=%-6d total=%9.2fs\n",
				r.Design, status, r.Episodes, r.Breakdown.Total())
			for _, p := range timing.AllPhases {
				if v, ok := r.Breakdown[p]; ok && v > 0 {
					fmt.Fprintf(&sb, "    %-13s %10.3fs\n", p, v)
				}
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SpeedupTable renders "X.XXx faster than DQN" comparisons per hidden size
// (the paper's §4.4 headline numbers).
func SpeedupTable(rows []BreakdownRow) string {
	var sb strings.Builder
	byHidden := map[int]map[string]BreakdownRow{}
	hiddens := []int{}
	for _, r := range rows {
		if byHidden[r.Hidden] == nil {
			byHidden[r.Hidden] = map[string]BreakdownRow{}
			hiddens = append(hiddens, r.Hidden)
		}
		byHidden[r.Hidden][r.Design] = r
	}
	sort.Ints(hiddens)
	for _, h := range hiddens {
		group := byHidden[h]
		dqn, ok := group["DQN"]
		if !ok || !dqn.Solved {
			fmt.Fprintf(&sb, "%d units: no solved DQN baseline\n", h)
			continue
		}
		base := dqn.Breakdown.Total()
		fmt.Fprintf(&sb, "%d units (DQN = %.2fs):\n", h, base)
		names := make([]string, 0, len(group))
		for name := range group {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			r := group[name]
			if name == "DQN" || !r.Solved {
				continue
			}
			fmt.Fprintf(&sb, "  %-22s %8.2fs  %6.2fx faster than DQN\n",
				name, r.Breakdown.Total(), base/r.Breakdown.Total())
		}
	}
	return sb.String()
}

// formatFloat renders with enough precision for plotting without noise.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
