// Package elm implements the Extreme Learning Machine (Huang et al., 2004)
// exactly as the paper's §2.1 describes: a single-hidden-layer network
// y = G(x·α + b)·β whose input weights α and bias b are random and frozen,
// and whose output weights β are solved analytically in one shot,
// β̂ = H†·t with H = G(x·α + b) (paper Eq. 1-3).
//
// The package also provides the spectral normalization of α from paper
// §3.3 / Algorithm 1 lines 2-3: α ← α / σmax(α), performed once at
// initialization (offline, so the SVD cost does not matter at runtime).
package elm

import (
	"errors"
	"fmt"

	"oselmrl/internal/activation"
	"oselmrl/internal/mat"
	"oselmrl/internal/rng"
)

// Options configures model initialization.
type Options struct {
	// InitLow and InitHigh bound the uniform distribution for α and b.
	// Algorithm 1 line 1 initializes "using a random value R ∈ [0,1]";
	// a symmetric [-1, 1] is the common ELM choice and the default here —
	// both are supported and the agent configs pick explicitly.
	InitLow, InitHigh float64
	// SpectralNormalizeAlpha divides α by its largest singular value after
	// initialization (Algorithm 1 lines 2-3), bounding α's contribution to
	// the network Lipschitz constant by 1.
	SpectralNormalizeAlpha bool
}

// DefaultOptions returns symmetric [-1,1] init without normalization.
func DefaultOptions() Options { return Options{InitLow: -1, InitHigh: 1} }

// Model is a single-hidden-layer ELM network.
type Model struct {
	// Alpha is the frozen n×Ñ input weight matrix.
	Alpha *mat.Dense
	// Bias is the frozen hidden bias vector of length Ñ.
	Bias []float64
	// Beta is the trained Ñ×m output weight matrix.
	Beta *mat.Dense
	// Act is the hidden activation G.
	Act activation.Func
	// AlphaSigmaMax records σmax(α) after initialization (before any
	// normalization), for reporting.
	AlphaSigmaMax float64

	inputSize, hiddenSize, outputSize int
}

// ErrNotTrained is returned by Predict before any training call.
var ErrNotTrained = errors.New("elm: model has no trained output weights")

// NewModel builds an ELM with random frozen α, b per opts and zero β.
func NewModel(inputSize, hiddenSize, outputSize int, act activation.Func, r *rng.RNG, opts Options) *Model {
	if inputSize <= 0 || hiddenSize <= 0 || outputSize <= 0 {
		panic(fmt.Sprintf("elm: invalid sizes %d/%d/%d", inputSize, hiddenSize, outputSize))
	}
	if opts.InitLow == 0 && opts.InitHigh == 0 {
		opts = DefaultOptions()
	}
	alpha := mat.Zeros(inputSize, hiddenSize)
	r.FillUniform(alpha.RawData(), opts.InitLow, opts.InitHigh)
	bias := make([]float64, hiddenSize)
	r.FillUniform(bias, opts.InitLow, opts.InitHigh)

	m := &Model{
		Alpha:      alpha,
		Bias:       bias,
		Beta:       mat.Zeros(hiddenSize, outputSize),
		Act:        act,
		inputSize:  inputSize,
		hiddenSize: hiddenSize,
		outputSize: outputSize,
	}
	m.AlphaSigmaMax = mat.LargestSingularValue(alpha, 200, nil)
	if opts.SpectralNormalizeAlpha {
		m.SpectralNormalizeAlpha()
	}
	return m
}

// RestoreModel rebuilds an ELM from persisted parameters. The matrices are
// used directly (not copied); dimensions are taken from their shapes.
func RestoreModel(alpha *mat.Dense, bias []float64, beta *mat.Dense, act activation.Func) *Model {
	m := &Model{
		Alpha:      alpha,
		Bias:       bias,
		Beta:       beta,
		Act:        act,
		inputSize:  alpha.Rows(),
		hiddenSize: alpha.Cols(),
		outputSize: beta.Cols(),
	}
	m.AlphaSigmaMax = mat.LargestSingularValue(alpha, 200, nil)
	return m
}

// InputSize returns n.
func (m *Model) InputSize() int { return m.inputSize }

// HiddenSize returns Ñ.
func (m *Model) HiddenSize() int { return m.hiddenSize }

// OutputSize returns m (the paper's output dimension; 1 under the
// simplified output model).
func (m *Model) OutputSize() int { return m.outputSize }

// SpectralNormalizeAlpha scales α by 1/σmax(α) (Algorithm 1 lines 2-3) and
// returns the σmax that was divided out. After the call σmax(α) == 1, so
// the network's Lipschitz constant is bounded by σmax(β)·Lip(G) (§3.3).
func (m *Model) SpectralNormalizeAlpha() float64 {
	sigma := mat.LargestSingularValue(m.Alpha, 500, nil)
	if sigma > 0 {
		mat.ScaleInPlace(1/sigma, m.Alpha)
	}
	return sigma
}

// HiddenBatch computes H = G(x·α + b) for a k×n input chunk.
func (m *Model) HiddenBatch(x *mat.Dense) *mat.Dense {
	if x.Cols() != m.inputSize {
		panic(fmt.Sprintf("elm: input has %d features, model expects %d", x.Cols(), m.inputSize))
	}
	h := mat.Mul(x, m.Alpha)
	k := h.Rows()
	for i := 0; i < k; i++ {
		for j := 0; j < m.hiddenSize; j++ {
			h.Set(i, j, m.Act.F(h.At(i, j)+m.Bias[j]))
		}
	}
	return h
}

// HiddenBatchInto computes H = G(x·α + b) into dst (k×Ñ) without
// allocating, where k = x.Rows(). Unlike HiddenBatch it uses the serial
// deterministic GEMM, so every row of dst is bit-identical to
// HiddenOneInto on the same input row — the invariant that lets the
// serving tier batch inference without changing any answer.
func (m *Model) HiddenBatchInto(dst, x *mat.Dense) {
	if x.Cols() != m.inputSize {
		panic(fmt.Sprintf("elm: input has %d features, model expects %d", x.Cols(), m.inputSize))
	}
	if dst.Rows() != x.Rows() || dst.Cols() != m.hiddenSize {
		panic(fmt.Sprintf("elm: hidden dst is %dx%d, want %dx%d", dst.Rows(), dst.Cols(), x.Rows(), m.hiddenSize))
	}
	mat.MulSerialInto(dst, x, m.Alpha)
	d := dst.RawData()
	for i := 0; i < dst.Rows(); i++ {
		row := d[i*m.hiddenSize : (i+1)*m.hiddenSize]
		for j := range row {
			row[j] = m.Act.F(row[j] + m.Bias[j])
		}
	}
}

// HiddenOne computes the hidden activation row for a single input vector.
// This is the k=1 fast path the FPGA's predict module implements.
func (m *Model) HiddenOne(x []float64) []float64 {
	if len(x) != m.inputSize {
		panic(fmt.Sprintf("elm: input has %d features, model expects %d", len(x), m.inputSize))
	}
	h := mat.VecMul(x, m.Alpha)
	for j := range h {
		h[j] = m.Act.F(h[j] + m.Bias[j])
	}
	return h
}

// HiddenOneInto computes the hidden activation row into dst (length Ñ)
// without allocating — the hot path of the rank-1 sequential update.
func (m *Model) HiddenOneInto(dst, x []float64) {
	if len(x) != m.inputSize {
		panic(fmt.Sprintf("elm: input has %d features, model expects %d", len(x), m.inputSize))
	}
	mat.VecMulInto(dst, x, m.Alpha)
	for j := range dst {
		dst[j] = m.Act.F(dst[j] + m.Bias[j])
	}
}

// PredictBatch computes y = H·β for a k×n input chunk.
func (m *Model) PredictBatch(x *mat.Dense) *mat.Dense {
	return mat.Mul(m.HiddenBatch(x), m.Beta)
}

// PredictOne computes the m-vector output for a single input.
func (m *Model) PredictOne(x []float64) []float64 {
	return mat.VecMul(m.HiddenOne(x), m.Beta)
}

// TrainBatch solves β from a k×n input chunk and k×m target chunk in one
// shot. With delta == 0 it uses the SVD pseudo-inverse β = H†·t (Eq. 3);
// with delta > 0 it solves the L2-regularized normal equations
// β = (HᵀH + δI)⁻¹ Hᵀ t — the ReOS-ELM initial training of Eq. 8, which is
// also how the CPU-side init_train runs on the PYNQ platform.
func (m *Model) TrainBatch(x, t *mat.Dense, delta float64) error {
	if t.Rows() != x.Rows() || t.Cols() != m.outputSize {
		return fmt.Errorf("elm: target shape %dx%d does not match inputs %d / outputs %d",
			t.Rows(), t.Cols(), x.Rows(), m.outputSize)
	}
	h := m.HiddenBatch(x)
	if delta > 0 {
		ht := h.T()
		gram := mat.AddScaledIdentity(mat.Mul(ht, h), delta)
		inv, err := mat.Inverse(gram)
		if err != nil {
			return fmt.Errorf("elm: regularized solve: %w", err)
		}
		m.Beta = mat.MulT3(inv, ht, t)
		return nil
	}
	pinv, err := mat.PseudoInverse(h, 0)
	if err != nil {
		return fmt.Errorf("elm: pseudo-inverse: %w", err)
	}
	m.Beta = mat.Mul(pinv, t)
	return nil
}

// BetaSigmaMax returns σmax(β) by power iteration — the quantity that
// bounds the network's Lipschitz constant after spectral normalization of
// α (paper §3.3: "Lipschitz constant of OS-ELM is σmax(βi) or less").
func (m *Model) BetaSigmaMax() float64 {
	return mat.LargestSingularValue(m.Beta, 200, nil)
}

// LipschitzBound returns the product bound σmax(α)·Lip(G)·σmax(β) on the
// network's Lipschitz constant (paper §2.5).
func (m *Model) LipschitzBound() float64 {
	sa := mat.LargestSingularValue(m.Alpha, 200, nil)
	return sa * m.Act.Lipschitz * m.BetaSigmaMax()
}

// Clone deep-copies the model (used for the fixed target network θ2).
func (m *Model) Clone() *Model {
	bias := make([]float64, len(m.Bias))
	copy(bias, m.Bias)
	return &Model{
		Alpha:         m.Alpha.Clone(),
		Bias:          bias,
		Beta:          m.Beta.Clone(),
		Act:           m.Act,
		AlphaSigmaMax: m.AlphaSigmaMax,
		inputSize:     m.inputSize,
		hiddenSize:    m.hiddenSize,
		outputSize:    m.outputSize,
	}
}

// CopyWeightsFrom copies β (and α/b, which are frozen but may differ after
// re-initialization) from src — the θ2 ← θ1 sync of Algorithm 1 line 24.
func (m *Model) CopyWeightsFrom(src *Model) {
	if m.inputSize != src.inputSize || m.hiddenSize != src.hiddenSize || m.outputSize != src.outputSize {
		panic("elm: CopyWeightsFrom shape mismatch")
	}
	m.Alpha.CopyFrom(src.Alpha)
	copy(m.Bias, src.Bias)
	m.Beta.CopyFrom(src.Beta)
	m.AlphaSigmaMax = src.AlphaSigmaMax
}
