package elm

import (
	"math"
	"testing"
	"testing/quick"

	"oselmrl/internal/activation"
	"oselmrl/internal/mat"
	"oselmrl/internal/rng"
)

func newTestModel(t *testing.T, in, hidden, out int, opts Options) *Model {
	t.Helper()
	return NewModel(in, hidden, out, activation.Sigmoid, rng.New(1), opts)
}

func TestNewModelShapes(t *testing.T) {
	m := newTestModel(t, 3, 16, 2, DefaultOptions())
	if m.InputSize() != 3 || m.HiddenSize() != 16 || m.OutputSize() != 2 {
		t.Fatalf("sizes %d/%d/%d", m.InputSize(), m.HiddenSize(), m.OutputSize())
	}
	if r, c := m.Alpha.Dims(); r != 3 || c != 16 {
		t.Errorf("Alpha %dx%d", r, c)
	}
	if r, c := m.Beta.Dims(); r != 16 || c != 2 {
		t.Errorf("Beta %dx%d", r, c)
	}
	if len(m.Bias) != 16 {
		t.Errorf("Bias len %d", len(m.Bias))
	}
}

func TestNewModelInitRange(t *testing.T) {
	m := NewModel(4, 32, 1, activation.ReLU, rng.New(2), Options{InitLow: 0, InitHigh: 1})
	// Zero-valued options select the default [-1, 1]; explicit [0,1] must
	// be honored when InitHigh != 0.
	for _, v := range m.Alpha.RawData() {
		if v < 0 || v >= 1 {
			t.Fatalf("alpha value %v outside [0,1)", v)
		}
	}
}

func TestNewModelInvalidSizesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel(0, 4, 1, activation.ReLU, rng.New(1), DefaultOptions())
}

func TestSpectralNormalizeAlpha(t *testing.T) {
	m := newTestModel(t, 5, 24, 1, DefaultOptions())
	before := mat.LargestSingularValue(m.Alpha, 500, nil)
	if before <= 0 {
		t.Fatal("sigma must be positive for random alpha")
	}
	returned := m.SpectralNormalizeAlpha()
	if math.Abs(returned-before) > 1e-6*before {
		t.Errorf("returned sigma %v, measured %v", returned, before)
	}
	after := mat.LargestSingularValue(m.Alpha, 500, nil)
	if math.Abs(after-1) > 1e-6 {
		t.Errorf("after normalization sigma = %v, want 1", after)
	}
}

func TestOptionsSpectralNormalizeAtInit(t *testing.T) {
	m := NewModel(5, 24, 1, activation.ReLU, rng.New(3),
		Options{InitLow: -1, InitHigh: 1, SpectralNormalizeAlpha: true})
	sigma := mat.LargestSingularValue(m.Alpha, 500, nil)
	if math.Abs(sigma-1) > 1e-6 {
		t.Errorf("sigma after init normalization = %v", sigma)
	}
	if m.AlphaSigmaMax <= 0 {
		t.Error("AlphaSigmaMax must record the pre-normalization value")
	}
}

func TestHiddenOneMatchesBatch(t *testing.T) {
	m := newTestModel(t, 4, 10, 1, DefaultOptions())
	x := []float64{0.1, -0.2, 0.3, 0.4}
	one := m.HiddenOne(x)
	batch := m.HiddenBatch(mat.RowVector(x))
	for j := range one {
		if math.Abs(one[j]-batch.At(0, j)) > 1e-14 {
			t.Fatalf("HiddenOne[%d] = %v, batch = %v", j, one[j], batch.At(0, j))
		}
	}
}

func TestPredictOneMatchesBatch(t *testing.T) {
	m := newTestModel(t, 4, 10, 3, DefaultOptions())
	// Give beta nonzero values.
	r := rng.New(4)
	r.FillUniform(m.Beta.RawData(), -1, 1)
	x := []float64{0.5, 0.1, -0.7, 0.9}
	one := m.PredictOne(x)
	batch := m.PredictBatch(mat.RowVector(x))
	for j := range one {
		if math.Abs(one[j]-batch.At(0, j)) > 1e-14 {
			t.Fatalf("PredictOne[%d] mismatch", j)
		}
	}
}

func TestInputSizeMismatchPanics(t *testing.T) {
	m := newTestModel(t, 4, 8, 1, DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.HiddenOne([]float64{1, 2})
}

// TestTrainBatchInterpolation: with hidden >= samples, ELM interpolates the
// training targets (Eq. 2-3: zero training error).
func TestTrainBatchInterpolation(t *testing.T) {
	r := rng.New(5)
	m := NewModel(2, 30, 1, activation.Sigmoid, r, DefaultOptions())
	k := 20
	x := mat.Zeros(k, 2)
	tgt := mat.Zeros(k, 1)
	r.FillUniform(x.RawData(), -1, 1)
	r.FillUniform(tgt.RawData(), -1, 1)
	if err := m.TrainBatch(x, tgt, 0); err != nil {
		t.Fatal(err)
	}
	pred := m.PredictBatch(x)
	if !mat.Equal(pred, tgt, 1e-6) {
		t.Errorf("ELM with excess capacity must interpolate; max err %v",
			mat.Sub(pred, tgt).MaxAbs())
	}
}

// TestTrainBatchLearnsSmoothFunction: ELM approximates sin on [-π, π].
func TestTrainBatchLearnsSmoothFunction(t *testing.T) {
	r := rng.New(6)
	m := NewModel(1, 60, 1, activation.Sigmoid, r, DefaultOptions())
	k := 200
	x := mat.Zeros(k, 1)
	tgt := mat.Zeros(k, 1)
	for i := 0; i < k; i++ {
		v := -math.Pi + 2*math.Pi*float64(i)/float64(k-1)
		x.Set(i, 0, v)
		tgt.Set(i, 0, math.Sin(v))
	}
	if err := m.TrainBatch(x, tgt, 0); err != nil {
		t.Fatal(err)
	}
	// Evaluate on held-out points.
	var worst float64
	for i := 0; i < 50; i++ {
		v := r.Uniform(-math.Pi, math.Pi)
		got := m.PredictOne([]float64{v})[0]
		if d := math.Abs(got - math.Sin(v)); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Errorf("held-out max error %v", worst)
	}
}

// TestTrainBatchRegularizationShrinksBeta: larger delta must shrink ||β||.
func TestTrainBatchRegularizationShrinksBeta(t *testing.T) {
	r := rng.New(7)
	k := 50
	x := mat.Zeros(k, 3)
	tgt := mat.Zeros(k, 1)
	r.FillUniform(x.RawData(), -1, 1)
	r.FillUniform(tgt.RawData(), -1, 1)

	norms := make([]float64, 0, 3)
	for _, delta := range []float64{0.01, 1, 100} {
		m := NewModel(3, 40, 1, activation.Sigmoid, rng.New(8), DefaultOptions())
		if err := m.TrainBatch(x, tgt, delta); err != nil {
			t.Fatal(err)
		}
		norms = append(norms, m.Beta.FrobeniusNorm())
	}
	if !(norms[0] > norms[1] && norms[1] > norms[2]) {
		t.Errorf("beta norms not decreasing with delta: %v", norms)
	}
}

func TestTrainBatchShapeErrors(t *testing.T) {
	m := newTestModel(t, 3, 8, 1, DefaultOptions())
	x := mat.Zeros(5, 3)
	badT := mat.Zeros(4, 1)
	if err := m.TrainBatch(x, badT, 0); err == nil {
		t.Error("expected error for row mismatch")
	}
	badT2 := mat.Zeros(5, 2)
	if err := m.TrainBatch(x, badT2, 0); err == nil {
		t.Error("expected error for output-width mismatch")
	}
}

func TestCloneAndCopyWeights(t *testing.T) {
	m := newTestModel(t, 3, 8, 1, DefaultOptions())
	r := rng.New(9)
	r.FillUniform(m.Beta.RawData(), -1, 1)
	c := m.Clone()
	if !mat.Equal(m.Beta, c.Beta, 0) {
		t.Fatal("clone beta mismatch")
	}
	c.Beta.Set(0, 0, 99)
	if m.Beta.At(0, 0) == 99 {
		t.Fatal("clone must deep-copy")
	}
	m.CopyWeightsFrom(c)
	if m.Beta.At(0, 0) != 99 {
		t.Fatal("CopyWeightsFrom failed")
	}
}

func TestLipschitzBound(t *testing.T) {
	m := NewModel(4, 16, 1, activation.ReLU, rng.New(10),
		Options{InitLow: -1, InitHigh: 1, SpectralNormalizeAlpha: true})
	r := rng.New(11)
	r.FillUniform(m.Beta.RawData(), -1, 1)
	bound := m.LipschitzBound()
	sigmaBeta := m.BetaSigmaMax()
	// After normalization, the bound is sigma(beta) * 1 * 1.
	if math.Abs(bound-sigmaBeta) > 1e-6*sigmaBeta {
		t.Errorf("bound %v != sigma(beta) %v after normalization", bound, sigmaBeta)
	}
}

// Property: the spectrally-normalized network is empirically 1·σmax(β)-
// Lipschitz on random input pairs — the paper's §3.3 claim.
func TestPropertyNetworkLipschitz(t *testing.T) {
	m := NewModel(3, 20, 1, activation.ReLU, rng.New(12),
		Options{InitLow: -1, InitHigh: 1, SpectralNormalizeAlpha: true})
	r := rng.New(13)
	r.FillUniform(m.Beta.RawData(), -1, 1)
	bound := m.LipschitzBound()
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		x1 := make([]float64, 3)
		x2 := make([]float64, 3)
		rr.FillUniform(x1, -10, 10)
		rr.FillUniform(x2, -10, 10)
		d := 0.0
		for i := range x1 {
			d += (x1[i] - x2[i]) * (x1[i] - x2[i])
		}
		d = math.Sqrt(d)
		out := math.Abs(m.PredictOne(x1)[0] - m.PredictOne(x2)[0])
		return out <= bound*d+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ELM training is deterministic given the seed — identical
// models from identical seeds after identical training.
func TestPropertyDeterministicTraining(t *testing.T) {
	f := func(seed uint64) bool {
		build := func() *mat.Dense {
			r := rng.New(seed)
			m := NewModel(2, 10, 1, activation.Sigmoid, r, DefaultOptions())
			x := mat.Zeros(12, 2)
			tgt := mat.Zeros(12, 1)
			r.FillUniform(x.RawData(), -1, 1)
			r.FillUniform(tgt.RawData(), -1, 1)
			if err := m.TrainBatch(x, tgt, 0.1); err != nil {
				return nil
			}
			return m.Beta
		}
		b1, b2 := build(), build()
		return b1 != nil && b2 != nil && mat.Equal(b1, b2, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRestoreModel(t *testing.T) {
	src := newTestModel(t, 3, 8, 2, DefaultOptions())
	r := rng.New(90)
	r.FillUniform(src.Beta.RawData(), -1, 1)
	restored := RestoreModel(src.Alpha.Clone(), append([]float64(nil), src.Bias...),
		src.Beta.Clone(), src.Act)
	if restored.InputSize() != 3 || restored.HiddenSize() != 8 || restored.OutputSize() != 2 {
		t.Fatalf("restored sizes %d/%d/%d", restored.InputSize(), restored.HiddenSize(), restored.OutputSize())
	}
	x := []float64{0.2, -0.5, 0.7}
	a, b := src.PredictOne(x), restored.PredictOne(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("restored model predicts differently")
		}
	}
	if restored.AlphaSigmaMax <= 0 {
		t.Error("AlphaSigmaMax must be recomputed")
	}
}

func TestHiddenOneInto(t *testing.T) {
	m := newTestModel(t, 4, 10, 1, DefaultOptions())
	x := []float64{0.1, -0.2, 0.3, 0.4}
	dst := make([]float64, 10)
	for i := range dst {
		dst[i] = 99 // stale
	}
	m.HiddenOneInto(dst, x)
	want := m.HiddenOne(x)
	for j := range want {
		if dst[j] != want[j] {
			t.Fatalf("HiddenOneInto[%d] = %v want %v", j, dst[j], want[j])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input length")
		}
	}()
	m.HiddenOneInto(dst, []float64{1})
}

func TestHiddenBatchWrongWidthPanics(t *testing.T) {
	m := newTestModel(t, 3, 6, 1, DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.HiddenBatch(mat.Zeros(2, 5))
}

func TestCopyWeightsFromShapePanics(t *testing.T) {
	a := newTestModel(t, 3, 6, 1, DefaultOptions())
	b := newTestModel(t, 3, 8, 1, DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.CopyWeightsFrom(b)
}
