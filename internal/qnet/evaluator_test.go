package qnet

import (
	"sync"
	"testing"

	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
)

// trainSmallAgent builds an agent and feeds enough random transitions to
// complete the initial training plus some sequential updates, so β is
// non-trivial.
func trainSmallAgent(t *testing.T, cfg Config) *Agent {
	t.Helper()
	a := MustNew(cfg)
	r := rng.New(99)
	randState := func() []float64 {
		s := make([]float64, cfg.ObservationSize)
		for i := range s {
			s[i] = r.Uniform(-1, 1)
		}
		return s
	}
	for i := 0; i < 4*cfg.Hidden; i++ {
		tr := replay.Transition{
			State:     randState(),
			Action:    r.Intn(cfg.ActionCount),
			Reward:    r.Uniform(-1, 1),
			NextState: randState(),
			Done:      i%17 == 0,
		}
		if err := a.Observe(tr); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	if !a.Trained() {
		t.Fatal("agent did not reach the trained state")
	}
	return a
}

// The evaluator must reproduce the agent's own Q values and greedy argmax
// exactly, for both output models and both action encodings.
func TestEvaluatorMatchesAgent(t *testing.T) {
	configs := map[string]func(*Config){
		"simplified": func(c *Config) {},
		"onehot":     func(c *Config) { c.OneHotActions = true },
		"standard":   func(c *Config) { c.StandardOutputModel = true },
	}
	for name, mod := range configs {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig(VariantOSELML2Lipschitz, 4, 3, 8)
			mod(&cfg)
			a := trainSmallAgent(t, cfg)
			ev := a.NewEvaluator()
			if ev.ObservationSize() != 4 || ev.ActionCount() != 3 {
				t.Fatalf("dims %d/%d", ev.ObservationSize(), ev.ActionCount())
			}
			r := rng.New(7)
			for trial := 0; trial < 50; trial++ {
				state := []float64{r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1)}
				qs, err := ev.QValues(state)
				if err != nil {
					t.Fatal(err)
				}
				for act := 0; act < cfg.ActionCount; act++ {
					if want := a.qValue(a.theta1, state, act); qs[act] != want {
						t.Fatalf("Q(s,%d) = %v, agent says %v", act, qs[act], want)
					}
				}
				best, bestQ, err := ev.Best(state)
				if err != nil {
					t.Fatal(err)
				}
				if wantQ, _ := a.maxQ(a.theta1, state); bestQ != wantQ {
					t.Fatalf("Best Q = %v, agent max = %v", bestQ, wantQ)
				}
				if qs[best] != bestQ {
					t.Fatalf("Best action %d inconsistent with QValues", best)
				}
			}
		})
	}
}

func TestEvaluatorRejectsWrongStateLength(t *testing.T) {
	a := trainSmallAgent(t, DefaultConfig(VariantOSELML2, 4, 2, 8))
	ev := a.NewEvaluator()
	if _, err := ev.QValues([]float64{1, 2}); err == nil {
		t.Error("short state must error")
	}
	if _, _, err := ev.Best(make([]float64, 9)); err == nil {
		t.Error("long state must error")
	}
}

// Many evaluators over one frozen model must be race-free (run with
// -race): this is the serving concurrency contract.
func TestEvaluatorsConcurrent(t *testing.T) {
	a := trainSmallAgent(t, DefaultConfig(VariantOSELML2Lipschitz, 4, 2, 8))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ev := a.NewEvaluator()
			r := rng.New(uint64(g))
			for i := 0; i < 200; i++ {
				state := []float64{r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1)}
				if _, _, err := ev.Best(state); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// Batched evaluation must be BIT-identical to the per-request path — this
// is the golden contract the serving tier's micro-batcher relies on: a
// request's answer may never depend on who it shared a batch with.
func TestQValuesBatchBitIdentical(t *testing.T) {
	configs := map[string]func(*Config){
		"simplified": func(c *Config) {},
		"onehot":     func(c *Config) { c.OneHotActions = true },
		"standard":   func(c *Config) { c.StandardOutputModel = true },
	}
	for name, mod := range configs {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig(VariantOSELML2Lipschitz, 4, 3, 16)
			mod(&cfg)
			a := trainSmallAgent(t, cfg)
			ev := a.NewEvaluator()
			evRef := a.NewEvaluator()
			r := rng.New(31)
			// Vary batch sizes, including shrink-then-regrow to exercise
			// the scratch re-viewing.
			for _, k := range []int{1, 7, 3, 16, 2, 16} {
				states := make([][]float64, k)
				for i := range states {
					s := make([]float64, 4)
					for j := range s {
						s[j] = r.Uniform(-1, 1)
					}
					states[i] = s
				}
				qm, err := ev.QValuesBatch(states)
				if err != nil {
					t.Fatal(err)
				}
				if qm.Rows() != k || qm.Cols() != cfg.ActionCount {
					t.Fatalf("batch result %dx%d, want %dx%d", qm.Rows(), qm.Cols(), k, cfg.ActionCount)
				}
				acts, qs, err := ev.BestBatch(states)
				if err != nil {
					t.Fatal(err)
				}
				for i, st := range states {
					want, err := evRef.QValues(st)
					if err != nil {
						t.Fatal(err)
					}
					for act := range want {
						if got := qm.At(i, act); got != want[act] {
							t.Fatalf("k=%d row %d act %d: batch %v, single %v", k, i, act, got, want[act])
						}
					}
					wantAct, wantQ, err := evRef.Best(st)
					if err != nil {
						t.Fatal(err)
					}
					if acts[i] != wantAct || qs[i] != wantQ {
						t.Fatalf("k=%d row %d: BestBatch (%d,%v), Best (%d,%v)",
							k, i, acts[i], qs[i], wantAct, wantQ)
					}
				}
			}
		})
	}
}

func TestQValuesBatchRejectsBadRow(t *testing.T) {
	a := trainSmallAgent(t, DefaultConfig(VariantOSELML2, 4, 2, 8))
	ev := a.NewEvaluator()
	states := [][]float64{make([]float64, 4), make([]float64, 3), make([]float64, 4)}
	if _, err := ev.QValuesBatch(states); err == nil {
		t.Error("bad row must error")
	}
	if _, _, err := ev.BestBatch(states); err == nil {
		t.Error("BestBatch must propagate the error")
	}
	// Empty batch is legal and returns an empty view.
	if qm, err := ev.QValuesBatch(nil); err != nil || qm.Rows() != 0 {
		t.Errorf("empty batch: %v rows=%d", err, qm.Rows())
	}
}
