package qnet

import (
	"testing"

	"oselmrl/internal/mat"
	"oselmrl/internal/replay"
	"oselmrl/internal/timing"
)

// Table-driven regression over all five design variants: each must honor
// its own combination of stabilization techniques. This pins the §4.1
// design matrix so a refactor cannot silently merge variant behaviours.
func TestVariantBehaviourMatrix(t *testing.T) {
	state := []float64{0.1, 0.2, 0.3, 0.4}
	for _, v := range []Variant{
		VariantELM, VariantOSELM, VariantOSELML2,
		VariantOSELMLipschitz, VariantOSELML2Lipschitz,
	} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			cfg := DefaultConfig(v, 4, 2, 8)
			cfg.Seed = 7
			cfg.Epsilon2 = 1 // deterministic updates for counting
			a := MustNew(cfg)

			// 1. Spectral normalization iff the variant declares it.
			sigma := mat.LargestSingularValue(a.Theta1().Alpha, 500, nil)
			if v.SpectralNormalize() {
				if sigma < 0.999 || sigma > 1.001 {
					t.Errorf("sigma(alpha) = %v, want 1", sigma)
				}
			} else if sigma > 0.9 && sigma < 1.1 {
				t.Errorf("sigma(alpha) = %v suspiciously normalized", sigma)
			}

			// 2. L2 regularization iff declared: theta1.Delta mirrors it.
			if v.UsesL2() && a.Theta1().Delta == 0 {
				t.Error("L2 variant must carry delta")
			}
			if !v.UsesL2() && a.Theta1().Delta != 0 {
				t.Error("non-L2 variant must not carry delta")
			}

			// 3. Fill buffer D: all variants train at exactly Ñ observations.
			for i := 0; i < 8; i++ {
				if err := a.Observe(replay.Transition{State: state, NextState: state, Reward: 0.1}); err != nil {
					t.Fatal(err)
				}
			}
			if !a.Trained() {
				t.Fatal("must train when D fills")
			}
			if got := a.Counters().Calls(timing.PhaseInitTrain); got != 1 {
				t.Fatalf("init_train calls = %d", got)
			}

			// 4. Post-init behaviour: sequential variants update per step
			// (ε₂ = 1); batch ELM accumulates a fresh buffer instead.
			for i := 0; i < 8; i++ {
				if err := a.Observe(replay.Transition{State: state, NextState: state, Reward: 0.1}); err != nil {
					t.Fatal(err)
				}
			}
			seq := a.Counters().Calls(timing.PhaseSeqTrain)
			init := a.Counters().Calls(timing.PhaseInitTrain)
			if v.Sequential() {
				if seq != 8 {
					t.Errorf("sequential updates = %d, want 8", seq)
				}
				if init != 1 {
					t.Errorf("init_train calls = %d, want 1 (no retraining)", init)
				}
			} else {
				if seq != 0 {
					t.Errorf("batch ELM ran %d sequential updates", seq)
				}
				if init != 2 {
					t.Errorf("batch ELM trainings = %d, want 2", init)
				}
			}

			// 5. θ2 sync: sequential variants sync on even episodes; the
			// batch ELM keeps θ2 pinned to its own post-training copy.
			if v.Sequential() {
				a.EndEpisode(2)
				if !mat.Equal(a.Theta1().Beta, a.Theta2().Beta, 0) {
					t.Error("θ2 must sync at UPDATE_STEP")
				}
			} else if !mat.Equal(a.Theta1().Beta, a.Theta2().Beta, 0) {
				t.Error("batch ELM keeps θ2 = θ1 after each batch training")
			}
		})
	}
}
