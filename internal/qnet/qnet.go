// Package qnet implements the paper's primary contribution: the ELM
// Q-Network and OS-ELM Q-Network reinforcement-learning agents of
// Algorithm 1, with the four stabilization techniques of §3:
//
//  1. Simplified output model (§3.1): the network maps the concatenation of
//     state and action to a *scalar* Q value, so the input size is
//     |state| + 1 (5 for CartPole) and the output size is 1.
//  2. Q-value clipping (§3.1): Bellman targets are clipped to [-1, 1].
//  3. Random update (§3.2): each step triggers a sequential update only
//     with probability ε₂ — the buffer-free replacement for experience
//     replay.
//  4. Spectral normalization for α + L2 regularization for β (§3.3):
//     α ← α/σmax(α) once at init, and δI added in the initial training.
//
// The five ELM/OS-ELM designs of §4.1 are expressed as Variant values; the
// DQN baseline lives in internal/dqn and the fixed-point FPGA design in
// internal/fpga.
package qnet

import (
	"fmt"
	"math"
	"time"

	"oselmrl/internal/activation"
	"oselmrl/internal/elm"
	"oselmrl/internal/mat"
	"oselmrl/internal/obs"
	"oselmrl/internal/oselm"
	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
	"oselmrl/internal/timing"
)

// Variant selects which of the paper's ELM/OS-ELM designs to run (§4.1
// designs (1)-(5)).
type Variant int

const (
	// VariantELM is design (1): batch ELM with simplified output model and
	// Q-value clipping; it retrains from buffer D each time D fills.
	VariantELM Variant = iota
	// VariantOSELM is design (2): OS-ELM with simplified output model,
	// Q-value clipping and random update, no regularization.
	VariantOSELM
	// VariantOSELML2 is design (3): OS-ELM + L2 regularization for β.
	VariantOSELML2
	// VariantOSELMLipschitz is design (4): OS-ELM + spectral normalization
	// for α.
	VariantOSELMLipschitz
	// VariantOSELML2Lipschitz is design (5): both techniques — the paper's
	// headline design and the one the FPGA implements.
	VariantOSELML2Lipschitz
)

// String returns the paper's name for the design.
func (v Variant) String() string {
	switch v {
	case VariantELM:
		return "ELM"
	case VariantOSELM:
		return "OS-ELM"
	case VariantOSELML2:
		return "OS-ELM-L2"
	case VariantOSELMLipschitz:
		return "OS-ELM-Lipschitz"
	case VariantOSELML2Lipschitz:
		return "OS-ELM-L2-Lipschitz"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// SpectralNormalize reports whether the variant normalizes α (§3.3).
func (v Variant) SpectralNormalize() bool {
	return v == VariantOSELMLipschitz || v == VariantOSELML2Lipschitz
}

// UsesL2 reports whether the variant regularizes the initial training.
func (v Variant) UsesL2() bool {
	return v == VariantOSELML2 || v == VariantOSELML2Lipschitz
}

// Sequential reports whether the variant performs OS-ELM sequential
// updates (false only for batch ELM).
func (v Variant) Sequential() bool { return v != VariantELM }

// Config holds the hyperparameters of Algorithm 1 with the paper's §4.1
// defaults.
type Config struct {
	// Variant selects the design.
	Variant Variant
	// ObservationSize and ActionCount describe the environment.
	ObservationSize, ActionCount int
	// Hidden is Ñ, the hidden-layer width.
	Hidden int
	// Epsilon1 is the initial probability of acting greedily (Algorithm 1
	// line 10: greedy iff r₁ < ε₁). Paper: 0.7.
	Epsilon1 float64
	// ExploreDecay multiplies the exploration probability (1 − ε₁) after
	// every episode. The paper states a constant ε₁ = 0.7, but its Figure 4
	// training curves plateau at a flat 200 steps, which is unreachable
	// with a permanent 30% random-action rate (see DESIGN.md §5) — so the
	// exploration rate must anneal. 1 keeps the literal constant-ε
	// algorithm; DefaultConfig uses 0.99.
	ExploreDecay float64
	// Epsilon2 is the random-update probability (line 21). Paper: 0.5.
	Epsilon2 float64
	// Gamma is the discount rate γ.
	Gamma float64
	// Delta is the L2 regularization parameter δ for the initial training;
	// ignored unless the variant uses L2. Paper: 1 for OS-ELM-L2, 0.5 for
	// OS-ELM-L2-Lipschitz.
	Delta float64
	// UpdateEvery is UPDATE_STEP: θ2 ← θ1 every this many episodes. Paper: 2.
	UpdateEvery int
	// ClipLow and ClipHigh bound the Bellman targets. Paper: -1, 1.
	ClipLow, ClipHigh float64
	// Activation is the hidden activation; the paper uses ReLU.
	Activation activation.Func
	// Seed drives every random choice the agent makes.
	Seed uint64
	// InitLow and InitHigh bound the uniform weight init (Algorithm 1
	// line 1 uses [0,1]; [-1,1] is the common ELM default). Zero values
	// select [-1, 1].
	InitLow, InitHigh float64
	// OneHotActions encodes the action as a one-hot vector instead of the
	// paper's scalar index, making the input size |state| + |actions|
	// (6 instead of 5 for CartPole). Extension beyond the paper; the
	// scalar encoding is the default and what §4.2 sizes the core for.
	OneHotActions bool
	// DoubleQ selects Double Q-learning targets (van Hasselt): the next
	// action is chosen by argmax over θ1 but its value is read from θ2,
	// reducing the max-operator's overestimation bias. Extension beyond
	// the paper (ablation X3).
	DoubleQ bool
	// StandardOutputModel uses the left-hand network of the paper's
	// Figure 2 — input is the state alone and the output layer has one Q
	// value per action, as in DQN — instead of the simplified output model
	// the paper proposes. One prediction evaluates all actions, but the
	// one-shot OS-ELM update must supply a full target vector, so the
	// untaken actions are trained toward their own current predictions
	// (a no-op target). Kept for the Figure 2 design-space comparison.
	StandardOutputModel bool
}

// DefaultConfig returns the paper's §4.1 parameters for a variant.
func DefaultConfig(v Variant, obsSize, actions, hidden int) Config {
	delta := 0.0
	switch v {
	case VariantOSELML2:
		delta = 1.0
	case VariantOSELML2Lipschitz:
		delta = 0.5
	}
	return Config{
		Variant:         v,
		ObservationSize: obsSize,
		ActionCount:     actions,
		Hidden:          hidden,
		Epsilon1:        0.7,
		ExploreDecay:    0.99,
		Epsilon2:        0.5,
		Gamma:           0.99,
		Delta:           delta,
		UpdateEvery:     2,
		ClipLow:         -1,
		ClipHigh:        1,
		Activation:      activation.ReLU,
		Seed:            1,
		InitLow:         -1,
		InitHigh:        1,
	}
}

func (c *Config) validate() error {
	if c.ObservationSize <= 0 || c.ActionCount <= 0 || c.Hidden <= 0 {
		return fmt.Errorf("qnet: invalid dimensions obs=%d actions=%d hidden=%d",
			c.ObservationSize, c.ActionCount, c.Hidden)
	}
	if c.Epsilon1 < 0 || c.Epsilon1 > 1 || c.Epsilon2 < 0 || c.Epsilon2 > 1 {
		return fmt.Errorf("qnet: epsilons must be in [0,1]: %g, %g", c.Epsilon1, c.Epsilon2)
	}
	if c.Gamma < 0 || c.Gamma > 1 {
		return fmt.Errorf("qnet: gamma must be in [0,1]: %g", c.Gamma)
	}
	if c.ClipLow >= c.ClipHigh {
		return fmt.Errorf("qnet: clip range [%g, %g] is empty", c.ClipLow, c.ClipHigh)
	}
	if c.UpdateEvery <= 0 {
		return fmt.Errorf("qnet: UpdateEvery must be positive")
	}
	if c.ExploreDecay <= 0 || c.ExploreDecay > 1 {
		return fmt.Errorf("qnet: ExploreDecay must be in (0, 1]: %g", c.ExploreDecay)
	}
	if c.Activation.F == nil {
		c.Activation = activation.ReLU
	}
	return nil
}

// Agent is an ELM or OS-ELM Q-Network agent implementing Algorithm 1.
type Agent struct {
	cfg Config
	rng *rng.RNG

	// theta1 and theta2 are Qθ1 and the fixed target Qθ2.
	theta1 *oselm.Model
	theta2 *oselm.Model

	buffer      *replay.InitStore
	globalStep  int
	exploreProb float64
	// targetsN / targetsClipped track the Bellman-target clip rate since
	// (re)initialization, published as the learn_clip_rate gauge at sync.
	targetsN, targetsClipped int64
	// batchTrained marks that the batch-ELM variant has completed at least
	// one training (its oselm initialized flag never sets).
	batchTrained bool
	dims         timing.OSELMDims
	counters     *timing.Counters

	// scratch holds the network input [state..., action] to avoid per-call
	// allocation in the hot path.
	scratch []float64

	// obs receives structured events and metrics; nil (the default)
	// disables observability at the cost of one nil check per guard.
	obs *obs.Emitter
}

// New builds an agent from cfg.
func New(cfg Config) (*Agent, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	inputSize := cfg.ObservationSize + 1
	outputSize := 1
	switch {
	case cfg.StandardOutputModel:
		if cfg.OneHotActions {
			return nil, fmt.Errorf("qnet: StandardOutputModel and OneHotActions are mutually exclusive")
		}
		inputSize = cfg.ObservationSize
		outputSize = cfg.ActionCount
	case cfg.OneHotActions:
		inputSize = cfg.ObservationSize + cfg.ActionCount
	}
	a := &Agent{
		cfg:      cfg,
		rng:      rng.New(cfg.Seed),
		buffer:   replay.NewInitStore(cfg.Hidden),
		counters: timing.NewCounters(),
		dims: timing.OSELMDims{
			In:     inputSize,
			Hidden: cfg.Hidden,
			Out:    outputSize,
		},
		scratch: make([]float64, inputSize),
	}
	a.initModels()
	return a, nil
}

// MustNew is New that panics on configuration errors (tests, examples).
func MustNew(cfg Config) *Agent {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

func (a *Agent) initModels() {
	opts := elm.Options{
		InitLow:                a.cfg.InitLow,
		InitHigh:               a.cfg.InitHigh,
		SpectralNormalizeAlpha: a.cfg.Variant.SpectralNormalize(),
	}
	delta := 0.0
	if a.cfg.Variant.UsesL2() {
		delta = a.cfg.Delta
	}
	base := elm.NewModel(a.dims.In, a.cfg.Hidden, a.dims.Out, a.cfg.Activation, a.rng, opts)
	a.theta1 = oselm.New(base, delta)
	a.theta2 = a.theta1.Clone() // Algorithm 1 line 4: θ2 ← θ1
	a.buffer.Clear()
	a.globalStep = 0
	a.exploreProb = 1 - a.cfg.Epsilon1
	a.batchTrained = false
	a.targetsN, a.targetsClipped = 0, 0
}

// Name returns the paper's design name.
func (a *Agent) Name() string { return a.cfg.Variant.String() }

// Config returns the agent's configuration.
func (a *Agent) Config() Config { return a.cfg }

// Counters exposes the timing counters accumulated so far.
func (a *Agent) Counters() *timing.Counters { return a.counters }

// SetObserver installs the observability emitter (harness.Observable).
func (a *Agent) SetObserver(e *obs.Emitter) { a.obs = e }

// Trained reports whether initial training has completed (OS-ELM) or the
// first batch training has run (ELM).
func (a *Agent) Trained() bool { return a.theta1.Initialized() || a.batchTrained }

// encode writes the simplified-output-model input into dst: [state...,
// action] with the action as a scalar by default (the paper's input size
// for CartPole is 5 = 4 states + 1 action), or [state..., onehot(action)]
// when OneHotActions is set.
func (a *Agent) encode(dst, state []float64, action int) []float64 {
	copy(dst, state)
	if !a.cfg.OneHotActions {
		dst[len(state)] = float64(action)
		return dst
	}
	for i := 0; i < a.cfg.ActionCount; i++ {
		v := 0.0
		if i == action {
			v = 1
		}
		dst[len(state)+i] = v
	}
	return dst
}

// qValue evaluates Q(s, a) on the given model.
func (a *Agent) qValue(m *oselm.Model, state []float64, action int) float64 {
	if a.cfg.StandardOutputModel {
		return m.PredictOne(state)[action]
	}
	in := a.encode(a.scratch, state, action)
	return m.PredictOne(in)[0]
}

// maxQ returns max over actions of Q(s, ·) on model m, and the argmax with
// uniform random tie-breaking (before training all Q values are 0, so
// deterministic argmax would freeze on action 0).
func (a *Agent) maxQ(m *oselm.Model, state []float64) (best float64, argmax int) {
	best = math.Inf(-1)
	ties := 0
	if a.cfg.StandardOutputModel {
		qs := m.PredictOne(state)
		for act, q := range qs {
			switch {
			case q > best:
				best, argmax, ties = q, act, 1
			case q == best:
				ties++
				if a.rng.Intn(ties) == 0 {
					argmax = act
				}
			}
		}
		return best, argmax
	}
	for act := 0; act < a.cfg.ActionCount; act++ {
		q := a.qValue(m, state, act)
		switch {
		case q > best:
			best, argmax, ties = q, act, 1
		case q == best:
			ties++
			if a.rng.Intn(ties) == 0 {
				argmax = act
			}
		}
	}
	return best, argmax
}

// predictPhase is predict_init before the initial training completes and
// predict_seq after, matching the paper's Figure 5 legend. The batch ELM
// retrains forever and never enters a sequential regime, so its
// predictions all count as predict_init — matching the paper's ELM bars
// (init_train + predict_init dominant).
func (a *Agent) predictPhase() timing.Phase {
	if a.theta1.Initialized() {
		return timing.PhasePredictSeq
	}
	return timing.PhasePredictInit
}

// modelSeconds converts one phase invocation's work into modelled device
// seconds on the software stack this agent represents (§4.3: PyTorch on
// the Cortex-A9) — the modelled counterpart the span tracer records next
// to measured wall time.
func modelSeconds(p timing.Phase, work float64) float64 {
	return timing.CortexA9PyTorch.Seconds(p, 1, work)
}

// SelectAction implements Algorithm 1 lines 10-13: greedy with probability
// ε₁, uniformly random otherwise.
func (a *Agent) SelectAction(state []float64) int {
	if a.rng.Float64() >= a.exploreProb {
		phase := a.predictPhase()
		sp := a.obs.StartSpan(string(phase))
		_, act := a.maxQ(a.theta1, state)
		// One framework call: a NumPy/PyTorch implementation stacks the
		// action candidates into a single batched forward pass.
		work := float64(a.cfg.ActionCount) * a.dims.PredictFlops()
		a.counters.Add(phase, work)
		if sp.Active() {
			sp.EndModelled(modelSeconds(phase, work))
		}
		return act
	}
	return a.rng.Intn(a.cfg.ActionCount)
}

// GreedyAction returns argmax_a Q(s,a) without exploration (evaluation).
func (a *Agent) GreedyAction(state []float64) int {
	_, act := a.maxQ(a.theta1, state)
	return act
}

// target computes the clipped Bellman target of Algorithm 1 lines 19/22:
// clip(r + γ(1-d)·max_a Qθ2(s', a), ClipLow, ClipHigh).
func (a *Agent) target(t replay.Transition) float64 {
	var next float64
	if !t.Done {
		if a.cfg.DoubleQ {
			// Double Q: θ1 selects, θ2 evaluates.
			_, act := a.maxQ(a.theta1, t.NextState)
			next = a.qValue(a.theta2, t.NextState, act)
		} else {
			next, _ = a.maxQ(a.theta2, t.NextState)
		}
	}
	y := t.Reward + a.cfg.Gamma*boolTo01(!t.Done)*next
	clipped := false
	if y < a.cfg.ClipLow {
		y = a.cfg.ClipLow
		clipped = true
	}
	if y > a.cfg.ClipHigh {
		y = a.cfg.ClipHigh
		clipped = true
	}
	a.targetsN++
	if clipped {
		a.targetsClipped++
	}
	if a.obs != nil {
		a.obs.Inc(obs.MetricTargets, 1)
		if clipped {
			a.obs.Inc(obs.MetricTargetsClipped, 1)
		}
	}
	return y
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Observe implements Algorithm 1 lines 14-22: store the transition and run
// the appropriate update.
func (a *Agent) Observe(t replay.Transition) error {
	a.globalStep++
	if !a.theta1.Initialized() {
		a.bufferAdd(t)
		// Line 16-19: once D holds Ñ transitions, run the initial (ELM:
		// batch) training.
		if a.buffer.Full() {
			return a.trainFromBuffer()
		}
		return nil
	}
	if !a.cfg.Variant.Sequential() {
		// Batch ELM keeps refilling D and retraining when it is full.
		a.bufferAdd(t)
		if a.buffer.Full() {
			return a.trainFromBuffer()
		}
		return nil
	}
	// Lines 20-22: random update — sequential training with probability ε₂.
	if a.rng.Float64() < a.cfg.Epsilon2 {
		return a.sequentialUpdate(t)
	}
	a.obs.Inc(obs.MetricSeqSkipped, 1)
	return nil
}

// bufferAdd stores one transition in D under a "buffer_refill" trace
// span, tracking occupancy.
func (a *Agent) bufferAdd(t replay.Transition) {
	sp := a.obs.StartSpan("buffer_refill")
	a.buffer.Add(t)
	if a.obs != nil {
		a.obs.SetGauge(obs.GaugeBufferOccupancy, float64(a.buffer.Len())/float64(a.buffer.Cap()))
	}
	sp.End()
}

// trainFromBuffer runs the initial/batch training on buffer D with targets
// computed from θ2 (Algorithm 1 lines 17-19), then clears D.
func (a *Agent) trainFromBuffer() error {
	sp := a.obs.StartSpan(string(timing.PhaseInitTrain))
	t0 := a.obs.Now()
	retrain := a.Trained() // refilled-buffer retrain vs first initial training
	trans := a.buffer.Drain()
	k := len(trans)
	x := mat.Zeros(k, a.dims.In)
	y := mat.Zeros(k, a.dims.Out)
	row := make([]float64, a.dims.In)
	for i, tr := range trans {
		if a.cfg.StandardOutputModel {
			x.SetRow(i, tr.State)
			// The taken action trains toward the Bellman target; untaken
			// actions toward their current predictions (no-op targets).
			cur := a.theta1.PredictOne(tr.State)
			cur[tr.Action] = a.target(tr)
			y.SetRow(i, cur)
			continue
		}
		x.SetRow(i, a.encode(row, tr.State, tr.Action))
		y.Set(i, 0, a.target(tr))
	}
	// Target evaluations on θ2: k×ActionCount predictions.
	nEvals := int64(k * a.cfg.ActionCount)
	work := float64(nEvals)*a.dims.PredictFlops() + a.dims.InitTrainFlops(k)

	var err error
	if a.cfg.Variant.Sequential() {
		err = a.theta1.InitTrain(x, y)
	} else {
		// Batch ELM: with L2 off this is the pseudo-inverse solve of Eq. 3.
		// A tiny ridge keeps the Gram matrix invertible when D contains
		// duplicate states, matching the pseudo-inverse's truncation.
		err = a.theta1.Model.TrainBatch(x, y, 1e-8)
		// ELM has no separate sequential phase; keep θ2 in sync with the
		// freshly trained θ1 so targets are not computed from the initial
		// random network forever (see DESIGN.md interpretation note).
		a.theta2.CopyStateFrom(a.theta1)
		a.batchTrained = true
	}
	a.counters.Add(timing.PhaseInitTrain, work)
	if a.obs != nil {
		model := modelSeconds(timing.PhaseInitTrain, work)
		sp.EndModelled(model)
		d := time.Since(t0)
		a.obs.AddWall(string(timing.PhaseInitTrain), d)
		a.obs.Inc(obs.MetricInitTrains, 1)
		a.obs.SetGauge(obs.GaugeBufferOccupancy, 0)
		a.obs.Emit(obs.EventInitTrain, 0, map[string]float64{
			"size":     float64(k),
			"step":     float64(a.globalStep),
			"retrain":  boolTo01(retrain),
			"dur_ms":   float64(d) / float64(time.Millisecond),
			"model_ms": model * 1e3,
		})
	}
	return err
}

// sequentialUpdate runs one rank-1 OS-ELM update toward the clipped target
// (Algorithm 1 line 22).
func (a *Agent) sequentialUpdate(t replay.Transition) error {
	sp := a.obs.StartSpan(string(timing.PhaseSeqTrain))
	t0 := a.obs.Now()
	y := a.target(t)
	var err error
	// pred is Qθ1(s, a) before the update; y − pred is the TD error the
	// update corrects. The extra prediction is an observability probe, run
	// only when an emitter is attached, and excluded from the work counters
	// (the real device would not execute it).
	pred := math.NaN()
	if a.cfg.StandardOutputModel {
		cur := a.theta1.PredictOne(t.State)
		pred = cur[t.Action]
		cur[t.Action] = y
		err = a.theta1.SeqTrainOne(t.State, cur)
	} else {
		in := make([]float64, a.dims.In)
		a.encode(in, t.State, t.Action)
		if a.obs != nil {
			pred = a.theta1.PredictOne(in)[0]
		}
		err = a.theta1.SeqTrainOne(in, []float64{y})
	}
	// Work: the target's θ2 evaluations plus the rank-1 update itself.
	work := float64(a.cfg.ActionCount)*a.dims.PredictFlops() + a.dims.SeqTrainFlops()
	a.counters.Add(timing.PhaseSeqTrain, work)
	if a.obs != nil {
		model := modelSeconds(timing.PhaseSeqTrain, work)
		sp.EndModelled(model)
		d := time.Since(t0)
		tdErr := y - pred
		a.obs.AddWall(string(timing.PhaseSeqTrain), d)
		a.obs.Inc(obs.MetricSeqUpdates, 1)
		a.obs.Observe(obs.HistLearnTDErrorAbs, math.Abs(tdErr))
		a.obs.Observe(obs.HistLearnQValue, pred)
		a.obs.Emit(obs.EventSeqUpdate, 0, map[string]float64{
			"step":     float64(a.globalStep),
			"target":   y,
			"td_error": tdErr,
			"dur_ms":   float64(d) / float64(time.Millisecond),
			"model_ms": model * 1e3,
		})
	}
	return err
}

// EndEpisode implements Algorithm 1 lines 23-24: every UpdateEvery
// episodes, sync the target network θ2 ← θ1. Episodes are 1-based.
func (a *Agent) EndEpisode(episode int) {
	a.exploreProb *= a.cfg.ExploreDecay
	if !a.cfg.Variant.Sequential() {
		return // θ2 sync is OS-ELM-specific (paper §3.1)
	}
	if episode%a.cfg.UpdateEvery == 0 {
		a.theta2.CopyStateFrom(a.theta1)
		if a.obs != nil {
			// σmax(β) is the Lipschitz bound the §3.3 regularization caps;
			// tracked at sync points so its drift over a run is inspectable,
			// together with the learn_* numeric-health gauges.
			h := a.theta1.Health()
			a.obs.Inc(obs.MetricTheta2Syncs, 1)
			a.obs.SetGauge(obs.GaugeBetaSigmaMax, h.BetaSigmaMax)
			a.obs.Observe(obs.GaugeBetaSigmaMax, h.BetaSigmaMax)
			a.obs.SetGauge(obs.GaugeLearnBetaNorm, h.BetaNorm)
			if a.theta1.Initialized() {
				a.obs.SetGauge(obs.GaugeLearnPTrace, h.PTrace)
				a.obs.SetGauge(obs.GaugeLearnPCond, h.PCondProxy)
			}
			if a.targetsN > 0 {
				a.obs.SetGauge(obs.GaugeLearnClipRate,
					float64(a.targetsClipped)/float64(a.targetsN))
			}
			a.obs.Emit(obs.EventTheta2Sync, episode, map[string]float64{
				"beta_sigma_max": h.BetaSigmaMax,
				"beta_norm":      h.BetaNorm,
			})
		}
	}
}

// Reinitialize draws fresh random weights — the §4.3 reset rule for
// unpromising initializations ("reset if they did not complete the task
// after 300 episodes"). Timing counters are preserved: the paper's
// time-to-complete includes failed attempts.
func (a *Agent) Reinitialize() { a.initModels() }

// BetaSigmaMax exposes σmax(β), the agent's Lipschitz bound after spectral
// normalization (§3.3), for the stability diagnostics.
func (a *Agent) BetaSigmaMax() float64 { return a.theta1.BetaSigmaMax() }

// LipschitzBound returns σmax(α)·Lip(G)·σmax(β) for θ1.
func (a *Agent) LipschitzBound() float64 { return a.theta1.LipschitzBound() }

// Theta1 exposes the online model for white-box tests.
func (a *Agent) Theta1() *oselm.Model { return a.theta1 }

// Theta2 exposes the target model for white-box tests.
func (a *Agent) Theta2() *oselm.Model { return a.theta2 }

// GlobalStep returns the number of Observe calls since (re)initialization.
func (a *Agent) GlobalStep() int { return a.globalStep }

// RestoreModels installs persisted θ1/θ2 models (internal/persist). The
// models must match the agent's dimensions.
func (a *Agent) RestoreModels(theta1, theta2 *oselm.Model) error {
	for _, m := range []*oselm.Model{theta1, theta2} {
		if m.InputSize() != a.dims.In || m.HiddenSize() != a.cfg.Hidden || m.OutputSize() != 1 {
			return fmt.Errorf("qnet: restored model is %d/%d/%d, agent expects %d/%d/1",
				m.InputSize(), m.HiddenSize(), m.OutputSize(), a.dims.In, a.cfg.Hidden)
		}
	}
	a.theta1 = theta1
	a.theta2 = theta2
	return nil
}

// ExploreProb returns the current per-step random-action probability.
func (a *Agent) ExploreProb() float64 { return a.exploreProb }
