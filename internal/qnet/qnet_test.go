package qnet

import (
	"math"
	"testing"

	"oselmrl/internal/env"
	"oselmrl/internal/mat"
	"oselmrl/internal/replay"
	"oselmrl/internal/timing"
)

func cfgFor(v Variant) Config {
	c := DefaultConfig(v, 4, 2, 16)
	c.Seed = 7
	return c
}

func TestVariantNames(t *testing.T) {
	want := map[Variant]string{
		VariantELM:              "ELM",
		VariantOSELM:            "OS-ELM",
		VariantOSELML2:          "OS-ELM-L2",
		VariantOSELMLipschitz:   "OS-ELM-Lipschitz",
		VariantOSELML2Lipschitz: "OS-ELM-L2-Lipschitz",
	}
	for v, name := range want {
		if v.String() != name {
			t.Errorf("%d.String() = %q want %q", v, v.String(), name)
		}
	}
}

func TestVariantFlags(t *testing.T) {
	if VariantOSELM.SpectralNormalize() || !VariantOSELMLipschitz.SpectralNormalize() ||
		!VariantOSELML2Lipschitz.SpectralNormalize() {
		t.Error("SpectralNormalize flags wrong")
	}
	if VariantOSELM.UsesL2() || !VariantOSELML2.UsesL2() || !VariantOSELML2Lipschitz.UsesL2() {
		t.Error("UsesL2 flags wrong")
	}
	if VariantELM.Sequential() || !VariantOSELM.Sequential() {
		t.Error("Sequential flags wrong")
	}
}

func TestDefaultConfigPaperParams(t *testing.T) {
	c := DefaultConfig(VariantOSELML2Lipschitz, 4, 2, 64)
	if c.Epsilon1 != 0.7 || c.Epsilon2 != 0.5 || c.UpdateEvery != 2 {
		t.Error("epsilon/UPDATE_STEP defaults must match §4.1")
	}
	if c.Delta != 0.5 {
		t.Errorf("L2-Lipschitz delta = %v, paper says 0.5", c.Delta)
	}
	if DefaultConfig(VariantOSELML2, 4, 2, 64).Delta != 1.0 {
		t.Error("OS-ELM-L2 delta must be 1 per §4.1")
	}
	if c.ClipLow != -1 || c.ClipHigh != 1 {
		t.Error("clip range must be [-1, 1]")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Hidden = 0 },
		func(c *Config) { c.Epsilon1 = 1.5 },
		func(c *Config) { c.Epsilon2 = -0.1 },
		func(c *Config) { c.Gamma = 2 },
		func(c *Config) { c.ClipLow, c.ClipHigh = 1, -1 },
		func(c *Config) { c.UpdateEvery = 0 },
		func(c *Config) { c.ExploreDecay = 0 },
		func(c *Config) { c.ExploreDecay = 1.5 },
	}
	for i, mutate := range bad {
		c := cfgFor(VariantOSELM)
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestSimplifiedOutputModel: the network input size must be |state|+1 and
// the output scalar — 5 and 1 for CartPole (§3.1 / §4.2).
func TestSimplifiedOutputModel(t *testing.T) {
	a := MustNew(cfgFor(VariantOSELML2Lipschitz))
	if got := a.Theta1().InputSize(); got != 5 {
		t.Errorf("input size = %d, paper says 5 for CartPole", got)
	}
	if got := a.Theta1().OutputSize(); got != 1 {
		t.Errorf("output size = %d, must be scalar", got)
	}
}

// TestSpectralNormalizationApplied: Lipschitz variants must have
// σmax(α) == 1 after construction; others keep the raw α.
func TestSpectralNormalizationApplied(t *testing.T) {
	lip := MustNew(cfgFor(VariantOSELML2Lipschitz))
	sigma := mat.LargestSingularValue(lip.Theta1().Alpha, 500, nil)
	if math.Abs(sigma-1) > 1e-6 {
		t.Errorf("Lipschitz variant σmax(α) = %v, want 1", sigma)
	}
	plain := MustNew(cfgFor(VariantOSELM))
	sigma = mat.LargestSingularValue(plain.Theta1().Alpha, 500, nil)
	if math.Abs(sigma-1) < 0.1 {
		t.Errorf("plain variant should not be normalized (σ = %v)", sigma)
	}
}

// TestInitTrainingTriggersAtBufferFull: Algorithm 1 lines 16-19 — after Ñ
// observations, the model must be trained.
func TestInitTrainingTriggersAtBufferFull(t *testing.T) {
	cfg := cfgFor(VariantOSELML2)
	cfg.Hidden = 8
	a := MustNew(cfg)
	state := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 7; i++ {
		if err := a.Observe(replay.Transition{State: state, NextState: state}); err != nil {
			t.Fatal(err)
		}
		if a.Trained() {
			t.Fatalf("trained after only %d observations", i+1)
		}
	}
	if err := a.Observe(replay.Transition{State: state, NextState: state}); err != nil {
		t.Fatal(err)
	}
	if !a.Trained() {
		t.Fatal("must train when buffer D reaches Ñ")
	}
	if a.Counters().Calls(timing.PhaseInitTrain) != 1 {
		t.Error("init_train must be counted once")
	}
}

// TestQValueClipping: targets must be clipped into [-1, 1] even when the
// target network emits outliers.
func TestQValueClipping(t *testing.T) {
	cfg := cfgFor(VariantOSELM)
	a := MustNew(cfg)
	// Force enormous θ2 outputs by setting β directly.
	beta := a.Theta2().Beta
	for i := 0; i < beta.Rows(); i++ {
		beta.Set(i, 0, 100)
	}
	tr := replay.Transition{
		State:     []float64{1, 1, 1, 1},
		NextState: []float64{1, 1, 1, 1},
		Reward:    0.5,
	}
	y := a.target(tr)
	if y != 1 {
		t.Errorf("clipped target = %v, want 1", y)
	}
	tr.Reward = -100
	beta2 := a.Theta2().Beta
	for i := 0; i < beta2.Rows(); i++ {
		beta2.Set(i, 0, -100)
	}
	if y := a.target(tr); y != -1 {
		t.Errorf("clipped target = %v, want -1", y)
	}
}

// TestTerminalTargetIgnoresNextState: with done, the target is just the
// clipped reward (the (1-d) factor of Algorithm 1 line 22).
func TestTerminalTargetIgnoresNextState(t *testing.T) {
	a := MustNew(cfgFor(VariantOSELM))
	beta := a.Theta2().Beta
	for i := 0; i < beta.Rows(); i++ {
		beta.Set(i, 0, 100)
	}
	y := a.target(replay.Transition{
		State:     []float64{0, 0, 0, 0},
		NextState: []float64{1, 1, 1, 1},
		Reward:    -0.5,
		Done:      true,
	})
	if y != -0.5 {
		t.Errorf("terminal target = %v, want the raw reward -0.5", y)
	}
}

// TestRandomUpdateRate: with ε₂ = 0.5, roughly half the post-init steps
// trigger sequential updates (§3.2).
func TestRandomUpdateRate(t *testing.T) {
	cfg := cfgFor(VariantOSELML2)
	cfg.Hidden = 8
	a := MustNew(cfg)
	e := env.NewCartPoleV0(3)
	s := e.Reset()
	steps := 0
	for steps < 2000 {
		act := a.SelectAction(s)
		ns, r, done := e.Step(act)
		if err := a.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
			t.Fatal(err)
		}
		steps++
		s = ns
		if done {
			s = e.Reset()
		}
	}
	postInit := int64(steps - 8)
	updates := a.Counters().Calls(timing.PhaseSeqTrain)
	rate := float64(updates) / float64(postInit)
	if rate < 0.42 || rate > 0.58 {
		t.Errorf("sequential update rate = %v, want ~0.5", rate)
	}
}

// TestELMRetrainsEveryBufferFill: the batch ELM design retrains each time D
// fills (Algorithm 1 ELM path), never running sequential updates.
func TestELMRetrainsEveryBufferFill(t *testing.T) {
	cfg := cfgFor(VariantELM)
	cfg.Hidden = 8
	a := MustNew(cfg)
	state := []float64{0.1, 0, 0, 0}
	for i := 0; i < 40; i++ {
		if err := a.Observe(replay.Transition{State: state, NextState: state}); err != nil {
			t.Fatal(err)
		}
	}
	c := a.Counters()
	if got := c.Calls(timing.PhaseInitTrain); got != 5 {
		t.Errorf("ELM trained %d times in 40 steps with Ñ=8, want 5", got)
	}
	if c.Calls(timing.PhaseSeqTrain) != 0 {
		t.Error("ELM must never run sequential updates")
	}
}

// TestTargetSyncEveryUpdateStep: θ2 ← θ1 every UPDATE_STEP episodes
// (Algorithm 1 lines 23-24).
func TestTargetSyncEveryUpdateStep(t *testing.T) {
	cfg := cfgFor(VariantOSELML2)
	cfg.Hidden = 8
	a := MustNew(cfg)
	// Train enough to diverge θ1 from θ2.
	state := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 8; i++ {
		if err := a.Observe(replay.Transition{State: state, NextState: state, Reward: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if mat.Equal(a.Theta1().Beta, a.Theta2().Beta, 1e-12) {
		t.Fatal("θ1 should have diverged from θ2 after init training")
	}
	a.EndEpisode(1) // odd episode: no sync with UpdateEvery=2
	if mat.Equal(a.Theta1().Beta, a.Theta2().Beta, 1e-12) {
		t.Fatal("θ2 must not sync on odd episodes")
	}
	a.EndEpisode(2) // even: sync
	if !mat.Equal(a.Theta1().Beta, a.Theta2().Beta, 0) {
		t.Fatal("θ2 must sync on UPDATE_STEP boundary")
	}
}

// TestReinitializePreservesCounters: the reset rule redraws weights but the
// paper's time-to-complete includes failed attempts.
func TestReinitializePreservesCounters(t *testing.T) {
	cfg := cfgFor(VariantOSELML2)
	cfg.Hidden = 8
	a := MustNew(cfg)
	state := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 10; i++ {
		if err := a.Observe(replay.Transition{State: state, NextState: state}); err != nil {
			t.Fatal(err)
		}
	}
	before := a.Counters().Calls(timing.PhaseInitTrain)
	betaBefore := a.Theta1().Beta.Clone()
	a.Reinitialize()
	if a.Trained() {
		t.Error("Reinitialize must reset training state")
	}
	if a.GlobalStep() != 0 {
		t.Error("Reinitialize must reset the step counter")
	}
	if a.Counters().Calls(timing.PhaseInitTrain) != before {
		t.Error("Reinitialize must preserve timing counters")
	}
	// Fresh weights: alpha redrawn.
	_ = betaBefore
}

// TestExplorationAnneals: the explore probability decays per episode and is
// restored on reinitialization.
func TestExplorationAnneals(t *testing.T) {
	cfg := cfgFor(VariantOSELM)
	cfg.Epsilon1 = 0.7
	cfg.ExploreDecay = 0.9
	a := MustNew(cfg)
	if math.Abs(a.ExploreProb()-0.3) > 1e-12 {
		t.Fatalf("initial explore prob %v", a.ExploreProb())
	}
	a.EndEpisode(1)
	if math.Abs(a.ExploreProb()-0.27) > 1e-12 {
		t.Fatalf("after one episode %v", a.ExploreProb())
	}
	a.Reinitialize()
	if math.Abs(a.ExploreProb()-0.3) > 1e-12 {
		t.Fatal("reset must restore exploration")
	}
}

// TestSelectActionCountsPredictions: greedy selections record ActionCount
// predict evaluations in the right phase.
func TestSelectActionCountsPredictions(t *testing.T) {
	cfg := cfgFor(VariantOSELML2)
	cfg.Epsilon1 = 1.0 // always greedy
	cfg.ExploreDecay = 1
	a := MustNew(cfg)
	state := []float64{0, 0, 0, 0}
	a.SelectAction(state)
	if got := a.Counters().Calls(timing.PhasePredictInit); got != 1 {
		t.Errorf("predict_init calls = %d, want one batched evaluation", got)
	}
	if w := a.Counters().Work(timing.PhasePredictInit); w != 2*a.dims.PredictFlops() {
		t.Errorf("predict_init work = %v, want ActionCount x PredictFlops", w)
	}
	if a.Counters().Calls(timing.PhasePredictSeq) != 0 {
		t.Error("no predict_seq before init training")
	}
}

// TestGreedyActionPrefersHigherQ: after forcing β, the greedy action must
// select the action with the larger Q value.
func TestGreedyActionPrefersHigherQ(t *testing.T) {
	cfg := cfgFor(VariantOSELML2)
	cfg.Hidden = 8
	a := MustNew(cfg)
	// Train the model toward: action 1 is always better.
	state := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 8; i++ {
		act := i % 2
		rwd := -0.9
		if act == 1 {
			rwd = 0.9
		}
		if err := a.Observe(replay.Transition{State: state, Action: act, Reward: rwd, NextState: state, Done: true}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Trained() {
		t.Fatal("should be trained")
	}
	q0 := a.qValue(a.Theta1(), state, 0)
	q1 := a.qValue(a.Theta1(), state, 1)
	if q1 <= q0 {
		t.Fatalf("q1=%v should exceed q0=%v after training", q1, q0)
	}
	if got := a.GreedyAction(state); got != 1 {
		t.Errorf("GreedyAction = %d", got)
	}
}

// TestDeterministicRuns: identical seeds produce identical trajectories.
func TestDeterministicRuns(t *testing.T) {
	run := func() []int {
		cfg := cfgFor(VariantOSELML2Lipschitz)
		cfg.Hidden = 8
		a := MustNew(cfg)
		e := env.NewCartPoleV0(5)
		s := e.Reset()
		var actions []int
		for i := 0; i < 500; i++ {
			act := a.SelectAction(s)
			actions = append(actions, act)
			ns, r, done := e.Step(act)
			if err := a.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
				t.Fatal(err)
			}
			s = ns
			if done {
				s = e.Reset()
			}
		}
		return actions
	}
	a1, a2 := run(), run()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("trajectories diverge at step %d", i)
		}
	}
}

// TestLipschitzBoundHolds: after training, the agent's empirical output
// difference respects the σmax(β) bound (§3.3).
func TestLipschitzBoundHolds(t *testing.T) {
	cfg := cfgFor(VariantOSELML2Lipschitz)
	cfg.Hidden = 12
	a := MustNew(cfg)
	e := env.NewCartPoleV0(6)
	s := e.Reset()
	for i := 0; i < 400; i++ {
		act := a.SelectAction(s)
		ns, r, done := e.Step(act)
		if err := a.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
			t.Fatal(err)
		}
		s = ns
		if done {
			s = e.Reset()
		}
	}
	bound := a.LipschitzBound()
	sb := a.BetaSigmaMax()
	if bound > sb*1.0001 {
		t.Errorf("Lipschitz bound %v exceeds σmax(β) %v for a normalized net", bound, sb)
	}
}
