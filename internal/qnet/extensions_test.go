package qnet

import (
	"testing"

	"oselmrl/internal/env"
	"oselmrl/internal/replay"
)

func TestOneHotEncodingInputSize(t *testing.T) {
	cfg := cfgFor(VariantOSELML2Lipschitz)
	cfg.OneHotActions = true
	a := MustNew(cfg)
	// CartPole: 4 states + 2 actions = 6 inputs under one-hot.
	if got := a.Theta1().InputSize(); got != 6 {
		t.Fatalf("one-hot input size = %d, want 6", got)
	}
	// The encoding itself.
	dst := make([]float64, 6)
	a.encode(dst, []float64{1, 2, 3, 4}, 1)
	want := []float64{1, 2, 3, 4, 0, 1}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("encode = %v", dst)
		}
	}
	a.encode(dst, []float64{1, 2, 3, 4}, 0)
	if dst[4] != 1 || dst[5] != 0 {
		t.Fatalf("encode action 0 = %v", dst)
	}
}

func TestScalarEncodingDefault(t *testing.T) {
	a := MustNew(cfgFor(VariantOSELM))
	dst := make([]float64, 5)
	a.encode(dst, []float64{1, 2, 3, 4}, 1)
	if dst[4] != 1 {
		t.Fatalf("scalar encode = %v", dst)
	}
}

// TestDoubleQTargetSelection: with θ1 and θ2 diverged, the Double-Q target
// must read θ2's value at θ1's argmax rather than θ2's own max.
func TestDoubleQTargetSelection(t *testing.T) {
	cfg := cfgFor(VariantOSELM)
	cfg.DoubleQ = true
	cfg.Gamma = 1
	cfg.ClipLow, cfg.ClipHigh = -100, 100 // disable clipping for the check
	a := MustNew(cfg)

	// Diverge θ1 from θ2 by training them toward opposite action
	// preferences through the normal Observe/EndEpisode flow.
	state := []float64{0.2, 0.2, 0.2, 0.2}
	// Initial-train θ1 via buffer (targets are clipped rewards):
	// action 1 worth +0.9, action 0 worth -0.9.
	for i := 0; i < cfg.Hidden; i++ {
		act := i % 2
		r := -0.9
		if act == 1 {
			r = 0.9
		}
		if err := a.Observe(replay.Transition{State: state, Action: act, Reward: r, NextState: state, Done: true}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Trained() {
		t.Fatal("agent should be trained")
	}
	// θ2 still holds the untrained zero network: its value at any action
	// is 0, while θ2's own max is also ~0 — diverge θ2 by copying θ1 and
	// then retraining θ1 to the opposite preference.
	a.EndEpisode(2) // θ2 ← θ1 (prefers action 1)
	for i := 0; i < 200; i++ {
		act := i % 2
		r := 0.9
		if act == 1 {
			r = -0.9
		}
		if err := a.Observe(replay.Transition{State: state, Action: act, Reward: r, NextState: state, Done: true}); err != nil {
			t.Fatal(err)
		}
	}
	// Now θ1 prefers action 0, θ2 prefers action 1.
	q1a0 := a.qValue(a.theta1, state, 0)
	q1a1 := a.qValue(a.theta1, state, 1)
	if q1a0 <= q1a1 {
		t.Skip("retraining did not flip θ1's preference; seed-dependent")
	}
	q2atTheta1Argmax := a.qValue(a.theta2, state, 0)
	got := a.target(replay.Transition{State: state, NextState: state, Reward: 0})
	if got != q2atTheta1Argmax {
		t.Errorf("Double-Q target = %v, want θ2's value %v at θ1's argmax", got, q2atTheta1Argmax)
	}
}

// TestExtensionsStillLearn: one-hot + Double-Q agents run end-to-end on
// CartPole without errors and improve past the random baseline.
func TestExtensionsStillLearn(t *testing.T) {
	cfg := DefaultConfig(VariantOSELML2Lipschitz, 4, 2, 32)
	cfg.Seed = 3
	cfg.OneHotActions = true
	cfg.DoubleQ = true
	a := MustNew(cfg)
	e := env.NewShaped(env.NewCartPoleV0(103), env.RewardSurvival)
	var window []float64
	best := 0.0
	for ep := 1; ep <= 600; ep++ {
		s := e.Reset()
		steps := 0
		for {
			act := a.SelectAction(s)
			ns, r, done := e.Step(act)
			if err := a.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
				t.Fatal(err)
			}
			s = ns
			steps++
			if done {
				break
			}
		}
		a.EndEpisode(ep)
		window = append(window, float64(steps))
		if len(window) >= 100 {
			sum := 0.0
			for _, v := range window[len(window)-100:] {
				sum += v
			}
			if avg := sum / 100; avg > best {
				best = avg
			}
		}
	}
	// Outcomes are strongly seed-dependent (the paper resets unpromising
	// seeds); this test pins a seed known to clear the random baseline.
	if best < 25 {
		t.Errorf("one-hot Double-Q best average = %v (random ~20)", best)
	}
}

// TestStandardOutputModel: the Figure 2 left-hand network — state-only
// inputs, one Q output per action.
func TestStandardOutputModel(t *testing.T) {
	cfg := cfgFor(VariantOSELML2Lipschitz)
	cfg.StandardOutputModel = true
	a := MustNew(cfg)
	if got := a.Theta1().InputSize(); got != 4 {
		t.Fatalf("input size = %d, want the bare state (4)", got)
	}
	if got := a.Theta1().OutputSize(); got != 2 {
		t.Fatalf("output size = %d, want one per action", got)
	}
	// Mutually exclusive with one-hot.
	cfg.OneHotActions = true
	if _, err := New(cfg); err == nil {
		t.Error("StandardOutputModel + OneHotActions must be rejected")
	}
}

// TestStandardOutputModelLearns: end-to-end — the standard layout trains
// the taken action toward the target while the untaken one holds.
func TestStandardOutputModelLearns(t *testing.T) {
	cfg := cfgFor(VariantOSELML2)
	cfg.Hidden = 8
	cfg.StandardOutputModel = true
	a := MustNew(cfg)
	s := []float64{0.3, -0.2, 0.1, 0.4}
	for i := 0; i < 8; i++ {
		act := i % 2
		r := -0.8
		if act == 1 {
			r = 0.8
		}
		if err := a.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: s, Done: true}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Trained() {
		t.Fatal("should be trained")
	}
	qs := a.Theta1().PredictOne(s)
	if qs[1] <= qs[0] {
		t.Errorf("Q = %v, action 1 must dominate after rewards", qs)
	}
	if got := a.GreedyAction(s); got != 1 {
		t.Errorf("greedy = %d", got)
	}
	// Sequential updates also work in the multi-output layout.
	for i := 0; i < 50; i++ {
		if err := a.Observe(replay.Transition{State: s, Action: 0, Reward: 0.9, NextState: s, Done: true}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAgentAccessors(t *testing.T) {
	cfg := cfgFor(VariantOSELML2)
	a := MustNew(cfg)
	if a.Name() != "OS-ELM-L2" {
		t.Errorf("Name = %q", a.Name())
	}
	got := a.Config()
	if got.Hidden != cfg.Hidden || got.Variant != cfg.Variant {
		t.Error("Config accessor")
	}
}

func TestRestoreModelsValidation(t *testing.T) {
	a := MustNew(cfgFor(VariantOSELML2))
	// Mismatched hidden size must be rejected.
	other := MustNew(func() Config {
		c := cfgFor(VariantOSELML2)
		c.Hidden = 8
		return c
	}())
	if err := a.RestoreModels(other.Theta1(), other.Theta2()); err == nil {
		t.Error("mismatched models must be rejected")
	}
	// Matching models install.
	twin := MustNew(cfgFor(VariantOSELML2))
	if err := a.RestoreModels(twin.Theta1(), twin.Theta2()); err != nil {
		t.Fatal(err)
	}
	if a.Theta1() != twin.Theta1() {
		t.Error("theta1 not installed")
	}
}
