package qnet

import (
	"fmt"

	"oselmrl/internal/mat"
	"oselmrl/internal/oselm"
)

// Evaluator is an inference-only view of a trained agent's online network
// θ1 for concurrent serving. Unlike SelectAction/GreedyAction it touches
// none of the agent's mutable state (RNG, scratch buffer, counters): each
// Evaluator carries its own work buffers, so any number of Evaluators over
// the same agent may run in parallel — the one rule is that nothing may
// train the underlying model concurrently. Ties in the argmax break
// deterministically toward the lowest action index (serving wants
// reproducible answers; the random tie-break in SelectAction exists only
// to unfreeze untrained training-time agents).
//
// The QValues result is reused between calls on the same Evaluator; copy
// it if it must outlive the next call.
type Evaluator struct {
	cfg   Config
	model *oselm.Model
	in    []float64 // encoded network input (simplified output model)
	hid   []float64 // hidden activations
	q     []float64 // one Q value per action
	out   []float64 // raw network output row
}

// NewEvaluator builds an inference view over the agent's current θ1.
// Snapshot semantics: a later Reinitialize or RestoreModels on the agent
// swaps θ1 and is NOT seen by existing Evaluators — build new ones (this
// is exactly what makes checkpoint hot-swap race-free in internal/serve).
func (a *Agent) NewEvaluator() *Evaluator {
	outSize := 1
	if a.cfg.StandardOutputModel {
		outSize = a.cfg.ActionCount
	}
	return &Evaluator{
		cfg:   a.cfg,
		model: a.theta1,
		in:    make([]float64, a.dims.In),
		hid:   make([]float64, a.cfg.Hidden),
		q:     make([]float64, a.cfg.ActionCount),
		out:   make([]float64, outSize),
	}
}

// ObservationSize returns the expected state vector length.
func (ev *Evaluator) ObservationSize() int { return ev.cfg.ObservationSize }

// ActionCount returns the number of actions.
func (ev *Evaluator) ActionCount() int { return ev.cfg.ActionCount }

// QValues evaluates Q(state, ·) for every action without allocating.
// The returned slice is owned by the Evaluator and reused on the next
// call. The only error is a state-length mismatch.
func (ev *Evaluator) QValues(state []float64) ([]float64, error) {
	if len(state) != ev.cfg.ObservationSize {
		return nil, fmt.Errorf("qnet: state has %d features, model expects %d",
			len(state), ev.cfg.ObservationSize)
	}
	if ev.cfg.StandardOutputModel {
		ev.model.HiddenOneInto(ev.hid, state)
		mat.VecMulInto(ev.out, ev.hid, ev.model.Beta)
		copy(ev.q, ev.out)
		return ev.q, nil
	}
	copy(ev.in, state)
	for act := 0; act < ev.cfg.ActionCount; act++ {
		ev.encodeAction(len(state), act)
		ev.model.HiddenOneInto(ev.hid, ev.in)
		mat.VecMulInto(ev.out, ev.hid, ev.model.Beta)
		ev.q[act] = ev.out[0]
	}
	return ev.q, nil
}

// encodeAction writes the action part of the simplified-output-model
// input (scalar index by default, one-hot with OneHotActions), mirroring
// Agent.encode.
func (ev *Evaluator) encodeAction(stateLen, action int) {
	if !ev.cfg.OneHotActions {
		ev.in[stateLen] = float64(action)
		return
	}
	for i := 0; i < ev.cfg.ActionCount; i++ {
		v := 0.0
		if i == action {
			v = 1
		}
		ev.in[stateLen+i] = v
	}
}

// Best returns the greedy action and its Q value, breaking ties toward
// the lowest action index.
func (ev *Evaluator) Best(state []float64) (action int, q float64, err error) {
	qs, err := ev.QValues(state)
	if err != nil {
		return 0, 0, err
	}
	action, q = 0, qs[0]
	for a := 1; a < len(qs); a++ {
		if qs[a] > q {
			action, q = a, qs[a]
		}
	}
	return action, q, nil
}
