package qnet

import (
	"fmt"

	"oselmrl/internal/mat"
	"oselmrl/internal/oselm"
)

// Evaluator is an inference-only view of a trained agent's online network
// θ1 for concurrent serving. Unlike SelectAction/GreedyAction it touches
// none of the agent's mutable state (RNG, scratch buffer, counters): each
// Evaluator carries its own work buffers, so any number of Evaluators over
// the same agent may run in parallel — the one rule is that nothing may
// train the underlying model concurrently. Ties in the argmax break
// deterministically toward the lowest action index (serving wants
// reproducible answers; the random tie-break in SelectAction exists only
// to unfreeze untrained training-time agents).
//
// The QValues result is reused between calls on the same Evaluator; copy
// it if it must outlive the next call.
type Evaluator struct {
	cfg   Config
	model *oselm.Model
	in    []float64 // encoded network input (simplified output model)
	hid   []float64 // hidden activations
	q     []float64 // one Q value per action
	out   []float64 // raw network output row

	// Batch scratch for QValuesBatch/BestBatch, lazily grown to the
	// largest batch seen and reused between calls (the serving tier's
	// micro-batcher flushes through one Evaluator at a time).
	bin   *mat.Dense // k×In encoded inputs
	bhid  *mat.Dense // k×Hidden activations
	bout  *mat.Dense // k×outSize raw outputs
	bq    *mat.Dense // k×ActionCount Q values (the QValuesBatch result)
	bact  []int      // BestBatch actions
	bbest []float64  // BestBatch Q values
	bcap  int        // rows the batch backing arrays can hold
}

// NewEvaluator builds an inference view over the agent's current θ1.
// Snapshot semantics: a later Reinitialize or RestoreModels on the agent
// swaps θ1 and is NOT seen by existing Evaluators — build new ones (this
// is exactly what makes checkpoint hot-swap race-free in internal/serve).
func (a *Agent) NewEvaluator() *Evaluator {
	outSize := 1
	if a.cfg.StandardOutputModel {
		outSize = a.cfg.ActionCount
	}
	return &Evaluator{
		cfg:   a.cfg,
		model: a.theta1,
		in:    make([]float64, a.dims.In),
		hid:   make([]float64, a.cfg.Hidden),
		q:     make([]float64, a.cfg.ActionCount),
		out:   make([]float64, outSize),
	}
}

// ObservationSize returns the expected state vector length.
func (ev *Evaluator) ObservationSize() int { return ev.cfg.ObservationSize }

// ActionCount returns the number of actions.
func (ev *Evaluator) ActionCount() int { return ev.cfg.ActionCount }

// QValues evaluates Q(state, ·) for every action without allocating.
// The returned slice is owned by the Evaluator and reused on the next
// call. The only error is a state-length mismatch.
func (ev *Evaluator) QValues(state []float64) ([]float64, error) {
	if len(state) != ev.cfg.ObservationSize {
		return nil, fmt.Errorf("qnet: state has %d features, model expects %d",
			len(state), ev.cfg.ObservationSize)
	}
	if ev.cfg.StandardOutputModel {
		ev.model.HiddenOneInto(ev.hid, state)
		mat.VecMulInto(ev.out, ev.hid, ev.model.Beta)
		copy(ev.q, ev.out)
		return ev.q, nil
	}
	copy(ev.in, state)
	for act := 0; act < ev.cfg.ActionCount; act++ {
		ev.encodeAction(len(state), act)
		ev.model.HiddenOneInto(ev.hid, ev.in)
		mat.VecMulInto(ev.out, ev.hid, ev.model.Beta)
		ev.q[act] = ev.out[0]
	}
	return ev.q, nil
}

// encodeAction writes the action part of the simplified-output-model
// input (scalar index by default, one-hot with OneHotActions), mirroring
// Agent.encode.
func (ev *Evaluator) encodeAction(stateLen, action int) {
	ev.encodeActionInto(ev.in, stateLen, action)
}

// encodeActionInto writes the action encoding into an arbitrary input row
// (the batch path encodes into rows of its input matrix).
func (ev *Evaluator) encodeActionInto(dst []float64, stateLen, action int) {
	if !ev.cfg.OneHotActions {
		dst[stateLen] = float64(action)
		return
	}
	for i := 0; i < ev.cfg.ActionCount; i++ {
		v := 0.0
		if i == action {
			v = 1
		}
		dst[stateLen+i] = v
	}
}

// growBatch (re)sizes the batch scratch for k rows. Backing arrays only
// ever grow; a smaller batch reuses a prefix of the largest allocation.
func (ev *Evaluator) growBatch(k int) {
	if ev.bq == nil || k > ev.bcap {
		ev.bcap = k
		ev.bin = mat.Zeros(k, ev.model.InputSize())
		ev.bhid = mat.Zeros(k, ev.cfg.Hidden)
		ev.bout = mat.Zeros(k, len(ev.out))
		ev.bq = mat.Zeros(k, ev.cfg.ActionCount)
		ev.bact = make([]int, k)
		ev.bbest = make([]float64, k)
		return
	}
	if ev.bq.Rows() == k {
		return
	}
	// Re-view the backing arrays at k rows (slice caps hold bcap rows).
	ev.bin = mat.New(k, ev.model.InputSize(), ev.bin.RawData()[:k*ev.model.InputSize()])
	ev.bhid = mat.New(k, ev.cfg.Hidden, ev.bhid.RawData()[:k*ev.cfg.Hidden])
	ev.bout = mat.New(k, len(ev.out), ev.bout.RawData()[:k*len(ev.out)])
	ev.bq = mat.New(k, ev.cfg.ActionCount, ev.bq.RawData()[:k*ev.cfg.ActionCount])
	ev.bact = ev.bact[:k]
	ev.bbest = ev.bbest[:k]
}

// QValuesBatch evaluates Q(state, ·) for every action of every state in
// one pass: the hidden projection and the output projection each run as a
// single serial GEMM over internal/mat instead of len(states) independent
// matvecs. Row i of the result is bit-identical to QValues(states[i]) —
// the GEMM kernel accumulates in the same order with the same
// zero-operand skip — so batching never changes a served answer. The
// returned matrix is owned by the Evaluator and reused on the next batch
// call; copy rows that must outlive it. The only error is a state-length
// mismatch (reported with the offending row).
func (ev *Evaluator) QValuesBatch(states [][]float64) (*mat.Dense, error) {
	for i, st := range states {
		if len(st) != ev.cfg.ObservationSize {
			return nil, fmt.Errorf("qnet: state %d has %d features, model expects %d",
				i, len(st), ev.cfg.ObservationSize)
		}
	}
	k := len(states)
	ev.growBatch(k)
	if k == 0 {
		return ev.bq, nil
	}
	if ev.cfg.StandardOutputModel {
		for i, st := range states {
			ev.bin.SetRow(i, st)
		}
		ev.model.HiddenBatchInto(ev.bhid, ev.bin)
		mat.MulSerialInto(ev.bq, ev.bhid, ev.model.Beta)
		return ev.bq, nil
	}
	// Simplified output model: one (hidden GEMM, output GEMM) pair per
	// action over action-encoded input rows, scattered into the Q matrix.
	bind := ev.bin.RawData()
	in := ev.model.InputSize()
	qd := ev.bq.RawData()
	outd := ev.bout.RawData()
	for act := 0; act < ev.cfg.ActionCount; act++ {
		for i, st := range states {
			row := bind[i*in : (i+1)*in]
			copy(row, st)
			ev.encodeActionInto(row, len(st), act)
		}
		ev.model.HiddenBatchInto(ev.bhid, ev.bin)
		mat.MulSerialInto(ev.bout, ev.bhid, ev.model.Beta)
		for i := 0; i < k; i++ {
			qd[i*ev.cfg.ActionCount+act] = outd[i]
		}
	}
	return ev.bq, nil
}

// BestBatch returns the greedy action and its Q value for every state,
// with the same lowest-index tie-break as Best. The returned slices are
// owned by the Evaluator and reused on the next batch call.
func (ev *Evaluator) BestBatch(states [][]float64) (actions []int, qs []float64, err error) {
	qm, err := ev.QValuesBatch(states)
	if err != nil {
		return nil, nil, err
	}
	qd := qm.RawData()
	na := ev.cfg.ActionCount
	for i := range states {
		row := qd[i*na : (i+1)*na]
		best := 0
		for a := 1; a < na; a++ {
			if row[a] > row[best] {
				best = a
			}
		}
		ev.bact[i], ev.bbest[i] = best, row[best]
	}
	return ev.bact[:len(states)], ev.bbest[:len(states)], nil
}

// Best returns the greedy action and its Q value, breaking ties toward
// the lowest action index.
func (ev *Evaluator) Best(state []float64) (action int, q float64, err error) {
	qs, err := ev.QValues(state)
	if err != nil {
		return 0, 0, err
	}
	action, q = 0, qs[0]
	for a := 1; a < len(qs); a++ {
		if qs[a] > q {
			action, q = a, qs[a]
		}
	}
	return action, q, nil
}
