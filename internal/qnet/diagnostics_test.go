package qnet

import (
	"testing"

	"oselmrl/internal/env"
	"oselmrl/internal/replay"
)

func runEpisodes(t *testing.T, a *Agent, seed uint64, episodes int) {
	t.Helper()
	e := env.NewShaped(env.NewCartPoleV0(seed), env.RewardSurvival)
	for ep := 1; ep <= episodes; ep++ {
		s := e.Reset()
		for {
			act := a.SelectAction(s)
			ns, r, done := e.Step(act)
			// Plain OS-ELM may report recoverable numerical errors; the
			// diagnostics are exactly about observing that regime.
			_ = a.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done})
			s = ns
			if done {
				break
			}
		}
		a.EndEpisode(ep)
	}
}

func TestSnapshotFieldsPopulated(t *testing.T) {
	cfg := cfgFor(VariantOSELML2Lipschitz)
	a := MustNew(cfg)
	runEpisodes(t, a, 100, 30)
	probes := [][]float64{{0.1, 0, 0.05, 0}, {-0.5, 1, -0.1, 0.5}}
	d := a.Snapshot(30, probes)
	if d.Episode != 30 {
		t.Errorf("episode = %d", d.Episode)
	}
	if d.BetaSigmaMax <= 0 || d.BetaFrobenius <= 0 {
		t.Error("beta norms must be positive after training")
	}
	if d.GainTrace <= 0 || d.PMaxAbs <= 0 {
		t.Error("P diagnostics must be positive after init training")
	}
	if d.QProbeMax < 0 {
		t.Error("QProbeMax is an absolute value")
	}
	// Relation 13: the spectral norm never exceeds the Frobenius norm.
	if d.BetaSigmaMax > d.BetaFrobenius+1e-9 {
		t.Errorf("sigma(B)=%v > ||B||_F=%v violates Relation 13", d.BetaSigmaMax, d.BetaFrobenius)
	}
	// Spectral normalization held: the bound equals sigma(B).
	if d.AlphaSigmaMax < 0.999 || d.AlphaSigmaMax > 1.001 {
		t.Errorf("sigma(alpha) = %v, want 1 for the Lipschitz variant", d.AlphaSigmaMax)
	}
}

func TestSnapshotBeforeTraining(t *testing.T) {
	a := MustNew(cfgFor(VariantOSELM))
	d := a.Snapshot(0, nil)
	if d.BetaSigmaMax != 0 || d.GainTrace != 0 || d.PMaxAbs != 0 {
		t.Errorf("untrained snapshot should be zeros: %+v", d)
	}
}

// The paper's §4.3 mechanism, quantified: the unregularized design's
// stability metrics blow up relative to the fully regularized one on the
// same workload.
func TestRegularizationShrinksDiagnostics(t *testing.T) {
	mk := func(v Variant) Diagnostics {
		cfg := DefaultConfig(v, 4, 2, 32)
		cfg.Seed = 1
		a := MustNew(cfg)
		runEpisodes(t, a, 101, 120)
		return a.Snapshot(120, [][]float64{{0, 0, 0.05, 0}, {1, -1, -0.1, 1}})
	}
	plain := mk(VariantOSELM)
	reg := mk(VariantOSELML2Lipschitz)
	if !(reg.BetaSigmaMax < plain.BetaSigmaMax) {
		t.Errorf("sigma(B): regularized %v should be < plain %v", reg.BetaSigmaMax, plain.BetaSigmaMax)
	}
	if !(reg.PMaxAbs < plain.PMaxAbs) {
		t.Errorf("max|P|: regularized %v should be < plain %v", reg.PMaxAbs, plain.PMaxAbs)
	}
	if !(reg.LipschitzBound < plain.LipschitzBound) {
		t.Errorf("Lipschitz bound: regularized %v should be < plain %v", reg.LipschitzBound, plain.LipschitzBound)
	}
	// δ = 0.5 bounds P's entries by 1/δ = 2.
	if reg.PMaxAbs > 2.0+1e-6 {
		t.Errorf("regularized max|P| = %v exceeds 1/delta", reg.PMaxAbs)
	}
}
