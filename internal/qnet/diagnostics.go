package qnet

import "oselmrl/internal/mat"

// Diagnostics is a point-in-time stability snapshot of the agent — the
// quantities §3.3/§4.3 reason about when explaining why plain OS-ELM
// degrades and the regularized variants do not.
type Diagnostics struct {
	// Episode stamps when the snapshot was taken (caller-provided).
	Episode int
	// BetaSigmaMax is σmax(β): the network's Lipschitz bound after
	// spectral normalization of α.
	BetaSigmaMax float64
	// BetaFrobenius is ‖β‖_F, the quantity L2 regularization suppresses
	// (paper Relation 13: σmax ≤ ‖·‖_F).
	BetaFrobenius float64
	// AlphaSigmaMax is σmax(α) (1.0 for the Lipschitz variants).
	AlphaSigmaMax float64
	// LipschitzBound is σmax(α)·Lip(G)·σmax(β).
	LipschitzBound float64
	// GainTrace is trace(P)/Ñ, the mean eigenvalue of P — the effective
	// learning rate, which pure RLS drives to zero (the stall the reset
	// rule and the forgetting extension both address).
	GainTrace float64
	// PMaxAbs is max|Pᵢⱼ|; plain OS-ELM's near-singular initial training
	// blows this up along dead-feature directions.
	PMaxAbs float64
	// QProbeMax is max|Q(s, a)| over the provided probe states — the
	// outliers that Q-value clipping defends against.
	QProbeMax float64
}

// Snapshot computes diagnostics for the online network θ1. probeStates may
// be nil; when provided, QProbeMax scans |Q| over them and every action.
func (a *Agent) Snapshot(episode int, probeStates [][]float64) Diagnostics {
	d := Diagnostics{
		Episode:       episode,
		BetaSigmaMax:  a.theta1.BetaSigmaMax(),
		BetaFrobenius: a.theta1.Beta.FrobeniusNorm(),
		AlphaSigmaMax: mat.LargestSingularValue(a.theta1.Alpha, 200, nil),
	}
	d.LipschitzBound = d.AlphaSigmaMax * a.cfg.Activation.Lipschitz * d.BetaSigmaMax
	if a.theta1.P != nil {
		d.GainTrace = a.theta1.GainTrace()
		d.PMaxAbs = a.theta1.P.MaxAbs()
	}
	for _, s := range probeStates {
		for act := 0; act < a.cfg.ActionCount; act++ {
			q := a.qValue(a.theta1, s, act)
			if q < 0 {
				q = -q
			}
			if q > d.QProbeMax {
				d.QProbeMax = q
			}
		}
	}
	return d
}
