package fpga

import (
	"fmt"
	"math"
	"time"

	"oselmrl/internal/elm"
	"oselmrl/internal/fixed"
	"oselmrl/internal/mat"
	"oselmrl/internal/obs"
	"oselmrl/internal/oselm"
	"oselmrl/internal/qnet"
	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
	"oselmrl/internal/timing"
)

// Agent is the paper's design (7): the OS-ELM-L2-Lipschitz algorithm with
// its prediction and sequential training executed by the fixed-point
// programmable-logic core, and initial training on the CPU (Figure 3).
//
// The control flow is Algorithm 1 exactly as internal/qnet implements it
// in floating point; here the Determine/Update hot paths run on the
// cycle-counted fixed-point datapath (Q20 by default; NewAgentQ selects
// any Qm.f format), and work is recorded in datapath cycles
// (timing.FPGA125 converts them) for the PL phases and in flops
// (timing.CortexA9Init) for the CPU-side init_train.
type Agent struct {
	cfg qnet.Config
	rng *rng.RNG

	// cpu is the float-side model used before the core is loaded: it owns
	// the random α/b (with spectral normalization) and runs init_train.
	cpu *oselm.Model
	// core is the PL datapath holding the quantized θ1.
	core *Core
	// beta2 is the quantized target-network output weights (θ2's β; α and
	// b are shared with θ1 since they are frozen).
	beta2 *fixed.Matrix

	buffer     *replay.InitStore
	globalStep int
	loaded     bool
	bus        *Bus

	dims        timing.OSELMDims
	counters    *timing.Counters
	cycles      CycleModel
	q           fixed.QFormat
	scratch     []fixed.Fixed
	exploreProb float64

	// obs receives structured events and metrics; nil disables.
	obs *obs.Emitter

	// flushed* snapshot the core's accounting accumulators at the last
	// metrics flush, so counter increments are deltas even though the
	// accumulators themselves are cumulative (and survive across episodes
	// but not across Reinitialize — the flush snapshots reset with them).
	flushedPredict, flushedSeq, flushedConv fixed.Acct
	// flushedGuard mirrors the same delta scheme for the seq_train
	// denominator guard trip counter.
	flushedGuard int64

	// profile records that device-level cycle profiling was requested
	// (EnableDeviceProfile / harness.Config.DeviceProfile); it survives
	// Reinitialize — initModels re-arms the fresh core. flushedProf is
	// the delta-flush snapshot for the fpga_cycles/fpga_bram_access
	// counters, mirroring the flushed* accounting scheme above.
	profile     bool
	flushedProf Prof
}

// NewAgent builds the FPGA agent with the default Q20 datapath. The
// variant is forced to OS-ELM-L2-Lipschitz (the design the paper
// synthesized); cfg's dimensions and hyperparameters are honored.
func NewAgent(cfg qnet.Config, cycles CycleModel) (*Agent, error) {
	return NewAgentQ(cfg, cycles, fixed.QFormat{})
}

// NewAgentQ is NewAgent with the datapath's Qm.f format selectable. The
// zero format is the Q20 default, bit-identical to NewAgent; resources
// and cycle counts do not depend on the format.
func NewAgentQ(cfg qnet.Config, cycles CycleModel, q fixed.QFormat) (*Agent, error) {
	cfg.Variant = qnet.VariantOSELML2Lipschitz
	if cfg.Delta == 0 {
		cfg.Delta = 0.5 // paper §4.1: δ = 0.5 for OS-ELM-L2-Lipschitz
	}
	if cfg.ObservationSize <= 0 || cfg.ActionCount <= 0 || cfg.Hidden <= 0 {
		return nil, fmt.Errorf("fpga: invalid dimensions obs=%d actions=%d hidden=%d",
			cfg.ObservationSize, cfg.ActionCount, cfg.Hidden)
	}
	if cfg.ExploreDecay <= 0 || cfg.ExploreDecay > 1 {
		return nil, fmt.Errorf("fpga: ExploreDecay must be in (0, 1]: %g", cfg.ExploreDecay)
	}
	res := EstimateResources(cfg.ObservationSize+1, cfg.Hidden)
	if !res.Feasible {
		return nil, fmt.Errorf("fpga: %d hidden units do not fit %s (needs %d/%d BRAM36)",
			cfg.Hidden, XC7Z020.Name, res.BRAM36, XC7Z020.BRAM36)
	}
	a := &Agent{
		cfg:      cfg,
		rng:      rng.New(cfg.Seed),
		buffer:   replay.NewInitStore(cfg.Hidden),
		counters: timing.NewCounters(),
		cycles:   cycles,
		q:        q.Normalized(),
		dims: timing.OSELMDims{
			In:     cfg.ObservationSize + 1,
			Hidden: cfg.Hidden,
			Out:    1,
		},
	}
	a.scratch = make([]fixed.Fixed, a.dims.In)
	a.bus = DefaultBus()
	a.initModels()
	return a, nil
}

// MustNewAgent is NewAgent that panics on configuration errors.
func MustNewAgent(cfg qnet.Config, cycles CycleModel) *Agent {
	a, err := NewAgent(cfg, cycles)
	if err != nil {
		panic(err)
	}
	return a
}

func (a *Agent) initModels() {
	opts := elm.Options{
		InitLow:                a.cfg.InitLow,
		InitHigh:               a.cfg.InitHigh,
		SpectralNormalizeAlpha: true,
	}
	if opts.InitLow == 0 && opts.InitHigh == 0 {
		opts.InitLow, opts.InitHigh = -1, 1
	}
	base := elm.NewModel(a.dims.In, a.cfg.Hidden, 1, a.cfg.Activation, a.rng, opts)
	a.cpu = oselm.New(base, a.cfg.Delta)
	a.core = NewCoreQ(a.dims.In, a.cfg.Hidden, 1, a.cycles, a.q)
	if a.obs != nil {
		a.core.EnableAccounting()
	}
	if a.profile {
		a.core.EnableProfiling()
	}
	a.flushedPredict, a.flushedSeq, a.flushedConv = fixed.Acct{}, fixed.Acct{}, fixed.Acct{}
	a.flushedGuard = 0
	a.flushedProf = Prof{}
	a.beta2 = fixed.NewMatrixQ(a.cfg.Hidden, 1, a.q)
	a.buffer.Clear()
	a.globalStep = 0
	a.loaded = false
	a.exploreProb = 1 - a.cfg.Epsilon1
}

// Name returns the paper's design name.
func (a *Agent) Name() string { return "FPGA" }

// Format returns the datapath's Qm.f format.
func (a *Agent) Format() fixed.QFormat { return a.q }

// Counters exposes the accumulated timing counters. PL phases are in
// datapath cycles; init_train is in flops (see timing.ModelMixed).
func (a *Agent) Counters() *timing.Counters { return a.counters }

// SetObserver installs the observability emitter (harness.Observable) and,
// when non-nil, turns on the core's per-module numeric-health accounting —
// accounting is free to the modelled hardware (no cycle or result change)
// but costs a few integer adds per op, so it follows the emitter's state.
func (a *Agent) SetObserver(e *obs.Emitter) {
	a.obs = e
	if e != nil && !a.core.AccountingEnabled() {
		a.core.EnableAccounting()
	}
}

// EnableDeviceProfile arms the core's device-level cycle profiler (the
// -profile flag, via harness.Config.DeviceProfile): every datapath cycle
// is attributed along (phase × kernel × unit) and BRAM bank accesses are
// counted, surfaced as delta-flushed fpga_cycles/fpga_bram_access
// counters, occupancy/roofline gauges and cumulative device_profile
// events. Profiling changes no datapath result and no cycle count. The
// metrics only flow once an observer is attached (SetObserver), but
// arming is independent so callers can wire either first; it survives
// Reinitialize.
func (a *Agent) EnableDeviceProfile() {
	a.profile = true
	a.core.EnableProfiling()
	a.flushedProf = Prof{}
}

// DeviceProfileEnabled reports whether EnableDeviceProfile has been
// called.
func (a *Agent) DeviceProfileEnabled() bool { return a.profile }

// Core exposes the datapath for white-box tests.
func (a *Agent) Core() *Core { return a.core }

// Trained reports whether the core has been loaded after init training.
func (a *Agent) Trained() bool { return a.loaded }

func (a *Agent) encode(state []float64, action int) []fixed.Fixed {
	for i, v := range state {
		a.scratch[i] = a.q.FromFloat(v)
	}
	a.scratch[len(state)] = a.q.FromFloat(float64(action))
	return a.scratch
}

// maxQCore evaluates max/argmax over actions on the core using beta.
func (a *Agent) maxQCore(beta *fixed.Matrix, state []float64) (float64, int) {
	best, arg, ties := math.Inf(-1), 0, 0
	for act := 0; act < a.cfg.ActionCount; act++ {
		in := a.encode(state, act)
		var q float64
		if beta == nil {
			q = a.q.Float(a.core.Predict(in)[0])
		} else {
			q = a.q.Float(a.core.PredictUsing(beta, in)[0])
		}
		switch {
		case q > best:
			best, arg, ties = q, act, 1
		case q == best:
			ties++
			if a.rng.Intn(ties) == 0 {
				arg = act
			}
		}
	}
	return best, arg
}

// maxQCPU is the pre-load float path (before init training completes).
func (a *Agent) maxQCPU(state []float64, useTheta2 bool) (float64, int) {
	in := make([]float64, a.dims.In)
	copy(in, state)
	best, arg, ties := math.Inf(-1), 0, 0
	for act := 0; act < a.cfg.ActionCount; act++ {
		in[len(state)] = float64(act)
		q := a.cpu.PredictOne(in)[0]
		_ = useTheta2 // pre-load, θ2 == θ1 == untrained; same model
		switch {
		case q > best:
			best, arg, ties = q, act, 1
		case q == best:
			ties++
			if a.rng.Intn(ties) == 0 {
				arg = act
			}
		}
	}
	return best, arg
}

// SelectAction implements Algorithm 1 lines 10-13.
func (a *Agent) SelectAction(state []float64) int {
	if a.rng.Float64() < a.exploreProb {
		return a.rng.Intn(a.cfg.ActionCount)
	}
	if !a.loaded {
		sp := a.obs.StartSpan(string(timing.PhasePredictInit))
		_, act := a.maxQCPU(state, false)
		a.counters.AddN(timing.PhasePredictInit, int64(a.cfg.ActionCount),
			float64(a.cfg.ActionCount)*a.dims.PredictFlops())
		if sp.Active() {
			sp.EndModelled(timing.CortexA9Init.Seconds(timing.PhasePredictInit,
				int64(a.cfg.ActionCount), float64(a.cfg.ActionCount)*a.dims.PredictFlops()))
		}
		return act
	}
	sp := a.obs.StartSpan(string(timing.PhasePredictSeq))
	start := a.core.Cycles()
	_, act := a.maxQCore(nil, state)
	cycles := float64(a.core.Cycles() - start)
	a.counters.AddN(timing.PhasePredictSeq, int64(a.cfg.ActionCount), cycles)
	if sp.Active() {
		// Modelled PL time: datapath cycles at 125 MHz plus one AXI
		// handshake per action-candidate invocation.
		sp.EndModelled(timing.FPGA125.Seconds(timing.PhasePredictSeq,
			int64(a.cfg.ActionCount), cycles))
	}
	return act
}

// GreedyAction evaluates without exploration.
func (a *Agent) GreedyAction(state []float64) int {
	if !a.loaded {
		_, act := a.maxQCPU(state, false)
		return act
	}
	_, act := a.maxQCore(nil, state)
	return act
}

// Observe implements Algorithm 1 lines 14-22.
func (a *Agent) Observe(t replay.Transition) error {
	a.globalStep++
	if !a.loaded {
		sp := a.obs.StartSpan("buffer_refill")
		a.buffer.Add(t)
		if a.obs != nil {
			a.obs.SetGauge(obs.GaugeBufferOccupancy, float64(a.buffer.Len())/float64(a.buffer.Cap()))
		}
		sp.End()
		if a.buffer.Full() {
			return a.initTrain()
		}
		return nil
	}
	if a.rng.Float64() < a.cfg.Epsilon2 {
		a.sequentialUpdate(t)
	} else {
		a.obs.Inc(obs.MetricSeqSkipped, 1)
	}
	return nil
}

// initTrain runs the CPU-side ReOS-ELM initial training (Eq. 8) and DMA-loads
// the quantized parameters into the core.
func (a *Agent) initTrain() error {
	sp := a.obs.StartSpan(string(timing.PhaseInitTrain))
	t0 := a.obs.Now()
	trans := a.buffer.Drain()
	k := len(trans)
	x := mat.Zeros(k, a.dims.In)
	y := mat.Zeros(k, 1)
	in := make([]float64, a.dims.In)
	for i, tr := range trans {
		copy(in, tr.State)
		in[len(tr.State)] = float64(tr.Action)
		x.SetRow(i, in)
		// Targets from the untrained θ2 are just the clipped rewards; the
		// float path computes them exactly as qnet does.
		yv := tr.Reward
		if !tr.Done {
			next, _ := a.maxQCPU(tr.NextState, true)
			yv += a.cfg.Gamma * next
		}
		if yv < a.cfg.ClipLow {
			yv = a.cfg.ClipLow
		}
		if yv > a.cfg.ClipHigh {
			yv = a.cfg.ClipHigh
		}
		y.Set(i, 0, yv)
	}
	if err := a.cpu.InitTrain(x, y); err != nil {
		return fmt.Errorf("fpga: cpu init training: %w", err)
	}
	work := float64(k*a.cfg.ActionCount)*a.dims.PredictFlops() + a.dims.InitTrainFlops(k)
	a.counters.Add(timing.PhaseInitTrain, work)

	a.core.LoadFloat(a.cpu.Alpha, a.cpu.Bias, a.cpu.Beta, a.cpu.P)
	a.beta2 = fixed.FromDenseQ(a.cpu.Beta, a.q, nil)
	// The AXI bulk load of the quantized parameters rides on the CPU side
	// of the init_train phase; its duration converts to that profile's
	// work units so the breakdown stays single-unit per phase.
	busSec := a.bus.LoadCoreParameters(a.core)
	a.counters.AddN(timing.PhaseInitTrain, 0, busSec*timing.CortexA9Init.WorkUnitsPerSec)
	a.loaded = true
	if a.obs != nil {
		// CPU-side modelled time for the solve plus the AXI bulk load,
		// expressed in the same profile's work units as the counters.
		model := timing.CortexA9Init.Seconds(timing.PhaseInitTrain, 1,
			work+busSec*timing.CortexA9Init.WorkUnitsPerSec)
		sp.EndModelled(model)
		d := time.Since(t0)
		a.obs.AddWall(string(timing.PhaseInitTrain), d)
		a.obs.Inc(obs.MetricInitTrains, 1)
		a.obs.SetGauge(obs.GaugeBufferOccupancy, 0)
		a.obs.Emit(obs.EventInitTrain, 0, map[string]float64{
			"size":        float64(k),
			"step":        float64(a.globalStep),
			"bus_load_ms": busSec * 1e3,
			"dur_ms":      float64(d) / float64(time.Millisecond),
			"model_ms":    model * 1e3,
		})
		// Publish the parameter-load conversion accounting immediately —
		// a NaN or rail hit at the DMA boundary should alert now, not at
		// the end of the episode. The device profile flushes with it so
		// the load phase's BRAM writes surface right away too.
		a.flushAccounting()
		a.flushProfile()
	}
	return nil
}

// sequentialUpdate computes the clipped target with the θ2 β on the core
// and runs the seq_train module.
func (a *Agent) sequentialUpdate(t replay.Transition) {
	sp := a.obs.StartSpan(string(timing.PhaseSeqTrain))
	t0 := a.obs.Now()
	start := a.core.Cycles()
	y := t.Reward
	if !t.Done {
		next, _ := a.maxQCore(a.beta2, t.NextState)
		y += a.cfg.Gamma * next
	}
	clipped := false
	if y < a.cfg.ClipLow {
		y = a.cfg.ClipLow
		clipped = true
	}
	if y > a.cfg.ClipHigh {
		y = a.cfg.ClipHigh
		clipped = true
	}
	in := a.encode(t.State, t.Action)
	// pred is θ1's Q(s,a) before the update, read through PredictSilent so
	// the observability probe is invisible to the cycle model and the
	// accounting (the real core would not execute it).
	pred := math.NaN()
	if a.obs != nil {
		pred = a.q.Float(a.core.PredictSilent(in)[0])
	}
	// With both tracing and profiling on, snapshot the profile around
	// SeqTrain so the update's per-kernel breakdown can be replayed as
	// spans on a dedicated modelled-device track.
	kernelSpans := sp.Active() && a.core.ProfilingEnabled()
	var profBefore Prof
	if kernelSpans {
		profBefore = *a.core.Prof()
	}
	a.core.SeqTrain(in, []fixed.Fixed{a.q.FromFloat(y)})
	cycles := float64(a.core.Cycles() - start)
	a.counters.Add(timing.PhaseSeqTrain, cycles)
	if kernelSpans {
		a.emitKernelSpans(profBefore)
	}
	if a.obs != nil {
		model := timing.FPGA125.Seconds(timing.PhaseSeqTrain, 1, cycles)
		sp.EndModelled(model)
		d := time.Since(t0)
		tdErr := y - pred
		a.obs.AddWall(string(timing.PhaseSeqTrain), d)
		a.obs.Inc(obs.MetricSeqUpdates, 1)
		a.obs.Inc(obs.MetricTargets, 1)
		if clipped {
			a.obs.Inc(obs.MetricTargetsClipped, 1)
		}
		a.obs.Observe(obs.HistLearnTDErrorAbs, math.Abs(tdErr))
		a.obs.Observe(obs.HistLearnQValue, pred)
		a.obs.Emit(obs.EventSeqUpdate, 0, map[string]float64{
			"step":     float64(a.globalStep),
			"target":   y,
			"td_error": tdErr,
			"dur_ms":   float64(d) / float64(time.Millisecond),
			"model_ms": model * 1e3,
		})
	}
}

// emitKernelSpans records one span per seq_train kernel that charged
// cycles since the profile snapshot, on the dedicated "device-kernels"
// trace group: the exporter lays modelled spans end-to-end per group, so
// the track reads as the paper-style cycle breakdown of each update.
// Kernel spans carry pure datapath time (cycles at 125 MHz, no AXI
// overhead — the parent seq_train span already models the handshake).
func (a *Agent) emitKernelSpans(before Prof) {
	tr := a.obs.Tracer()
	if tr == nil {
		return
	}
	cur := a.core.Prof()
	for k := ProfKernel(0); k < NumProfKernels; k++ {
		var cyc int64
		for u := ProfUnit(0); u < NumProfUnits; u++ {
			cyc += cur.Cycles(ProfSeqTrain, k, u) - before.Cycles(ProfSeqTrain, k, u)
		}
		if cyc > 0 {
			ks := tr.StartSpanGroup("kern:"+k.String(), "device-kernels")
			ks.EndModelled(timing.FPGA125.WorkSeconds(float64(cyc)))
		}
	}
}

// flushAccounting publishes the core's numeric-health accounting to the
// metrics registry: counter increments are deltas since the last flush
// (the accumulators are cumulative), gauges carry the cumulative
// quantization error and run-so-far saturation rates the watchdog
// evaluates.
func (a *Agent) flushAccounting() {
	if a.obs == nil || !a.core.AccountingEnabled() {
		return
	}
	pa, sa, ca := *a.core.PredictAcct(), *a.core.SeqTrainAcct(), *a.core.ConvAcct()
	a.obs.Inc(obs.MetricFixedOpsPredict, pa.Ops-a.flushedPredict.Ops)
	a.obs.Inc(obs.MetricFixedSaturationsPredict, pa.Saturations-a.flushedPredict.Saturations)
	a.obs.Inc(obs.MetricFixedOpsSeqTrain, sa.Ops-a.flushedSeq.Ops)
	a.obs.Inc(obs.MetricFixedSaturationsSeqTrain, sa.Saturations-a.flushedSeq.Saturations)
	a.obs.Inc(obs.MetricFixedOpsLoad, ca.Ops-a.flushedConv.Ops)
	a.obs.Inc(obs.MetricFixedSaturationsLoad, ca.Saturations-a.flushedConv.Saturations)
	if d := (pa.NaNs - a.flushedPredict.NaNs) + (sa.NaNs - a.flushedSeq.NaNs) +
		(ca.NaNs - a.flushedConv.NaNs); d > 0 {
		a.obs.Inc(obs.MetricFixedNaNs, d)
	}
	a.obs.SetGauge(obs.GaugeFixedQuantErrPredict, pa.QuantErrAbs)
	a.obs.SetGauge(obs.GaugeFixedQuantErrSeqTrain, sa.QuantErrAbs)
	a.obs.SetGauge(obs.GaugeFixedQuantErrLoad, ca.QuantErrAbs)
	a.obs.SetGauge(obs.GaugeFixedSaturationRatePredict, pa.SaturationRate())
	a.obs.SetGauge(obs.GaugeFixedSaturationRateSeqTrain, sa.SaturationRate())
	if trips := a.core.DenomGuardTrips(); trips > a.flushedGuard {
		a.obs.Inc(obs.MetricFixedDenomGuard, trips-a.flushedGuard)
		if a.flushedGuard == 0 {
			// First trip of the run: a rejected Eq. 5 update means P was
			// saturated or poisoned — surface it as a numeric alert, once,
			// the same shape the divergence watchdog emits.
			a.obs.With(map[string]string{
				"rule":   "seq_train_denom_guard",
				"metric": obs.MetricFixedDenomGuard,
			}).Emit(obs.EventNumericAlert, 0, map[string]float64{
				"value":     float64(trips),
				"threshold": a.q.Float(a.core.denomFloor),
			})
		}
		a.flushedGuard = trips
	}
	a.flushedPredict, a.flushedSeq, a.flushedConv = pa, sa, ca
}

// flushProfile publishes the device profiler's attribution to the
// metrics registry (counter increments are deltas since the last flush,
// built with obs.Labeled keys the export layer renders as Prometheus
// labels), refreshes the cumulative occupancy/roofline gauges, and emits
// one cumulative device_profile event — the record cmd/runlog's profile
// report is built from. No-op when nothing changed since the last flush.
func (a *Agent) flushProfile() {
	if a.obs == nil || !a.core.ProfilingEnabled() {
		return
	}
	cur := *a.core.Prof()
	if cur == a.flushedProf {
		return
	}
	data := map[string]float64{"total_cycles": float64(cur.TotalCycles())}
	for ph := ProfPhase(0); ph < NumProfPhases; ph++ {
		for k := ProfKernel(0); k < NumProfKernels; k++ {
			for u := ProfUnit(0); u < NumProfUnits; u++ {
				v := cur.Cycles(ph, k, u)
				if v != 0 {
					data["cycles_"+ph.String()+"_"+k.String()+"_"+u.String()] = float64(v)
				}
				if d := v - a.flushedProf.Cycles(ph, k, u); d != 0 {
					a.obs.Inc(obs.Labeled(obs.MetricFPGACycles,
						"phase", ph.String(), "kernel", k.String(), "unit", u.String()), d)
				}
			}
		}
	}
	for bank := Bank(0); bank < NumBanks; bank++ {
		for op := BankOp(0); op < NumBankOps; op++ {
			v := cur.BRAM(bank, op)
			if v != 0 {
				data["bram_"+bank.String()+"_"+op.String()] = float64(v)
			}
			if d := v - a.flushedProf.BRAM(bank, op); d != 0 {
				a.obs.Inc(obs.Labeled(obs.MetricFPGABRAMAccess,
					"bank", bank.String(), "op", op.String()), d)
			}
		}
	}
	if cur.TotalCycles() > 0 {
		for u := UnitAdd; u <= UnitInvoke; u++ {
			a.obs.SetGauge(obs.Labeled(obs.GaugeFPGAUnitBusy, "unit", u.String()),
				cur.UnitBusyFraction(u))
			if n := cur.UnitOps(u); n > 0 {
				data["ops_"+u.String()] = float64(n)
			}
		}
		a.obs.SetGauge(obs.GaugeFPGAOpsPerCycle, cur.OpsPerCycle())
	}
	a.obs.Emit(obs.EventDeviceProfile, 0, data)
	a.flushedProf = cur
}

// EndEpisode syncs θ2's β every UpdateEvery episodes (Algorithm 1 line 23-24)
// and flushes the episode's numeric-health accounting and device profile.
func (a *Agent) EndEpisode(episode int) {
	a.exploreProb *= a.cfg.ExploreDecay
	a.flushAccounting()
	if episode%a.cfg.UpdateEvery == 0 && a.loaded {
		a.beta2 = a.core.Beta.Clone()
		a.core.NoteTheta2Sync()
		if a.obs != nil {
			betaNorm := a.core.Beta.FrobeniusNorm()
			a.obs.Inc(obs.MetricTheta2Syncs, 1)
			a.obs.SetGauge(obs.GaugeLearnBetaNorm, betaNorm)
			a.obs.SetGauge(obs.GaugeLearnPTrace, a.core.P.Trace()/float64(a.cfg.Hidden))
			a.obs.Emit(obs.EventTheta2Sync, episode, map[string]float64{
				"beta_norm": betaNorm,
			})
		}
	}
	a.flushProfile()
}

// Reinitialize draws fresh weights (the 300-episode reset rule), keeping
// accumulated timing counters.
func (a *Agent) Reinitialize() { a.initModels() }

// GlobalStep returns Observe calls since (re)initialization.
func (a *Agent) GlobalStep() int { return a.globalStep }

// Bus exposes the AXI transfer model (tests, reporting).
func (a *Agent) Bus() *Bus { return a.bus }

// PhaseProfiles returns the per-phase device profiles for ModelMixed: PL
// phases at 125 MHz cycles, CPU phases at the software profile.
func PhaseProfiles() map[timing.Phase]timing.Profile {
	return map[timing.Phase]timing.Profile{
		timing.PhasePredictSeq:  timing.FPGA125,
		timing.PhaseSeqTrain:    timing.FPGA125,
		timing.PhaseInitTrain:   timing.CortexA9Init,
		timing.PhasePredictInit: timing.CortexA9Init,
	}
}
