package fpga

// Device-level cycle profiler. Prof attributes every cycle the core
// charges along (phase × kernel × unit) and counts per-BRAM-bank
// accesses, in the style of internal/fixed.Acct: a nil *Prof is the
// disabled state — charge and access return after one pointer
// comparison, so the datapath pays nothing measurable when profiling is
// off (pinned by the disabled-path benchmarks).
//
// The load-bearing invariant: the sum of all attributed cycles equals
// Core.Cycles() exactly — every `c.cycles +=` site in core.go has a
// matching charge — and, for complete module invocations, the per-kernel
// sums equal the analytic PredictKernelCycles/SeqTrainKernelCycles
// breakdowns. The profiler is therefore a cross-check on the cycle model
// itself, not just a lens over it (prof_test.go enforces this across
// QFormats and hidden sizes).
//
// Prof is a plain value type (fixed-size arrays, no pointers): snapshot
// it with a struct copy, diff snapshots with Delta, compare with ==.
// It is not synchronized — like the Core it instruments, one goroutine.

// ProfPhase is the module (invocation context) a cycle was charged in.
type ProfPhase uint8

const (
	// ProfPredict covers Predict/PredictUsing invocations — including the
	// target-network reads the agent issues while computing a Bellman
	// target inside its seq_train *timing* phase; the profiler attributes
	// by datapath module, not by the agent's phase windows.
	ProfPredict ProfPhase = iota
	// ProfSeqTrain covers SeqTrain invocations.
	ProfSeqTrain
	// ProfLoad is the LoadFloat DMA boundary. It charges no datapath
	// cycles in this model (the bulk load rides the CPU-side timing
	// profile) but records the BRAM writes of the parameter load.
	ProfLoad
	// ProfTheta2Sync is the θ2 ← θ1 target sync: zero datapath cycles,
	// but the β-bank reads of the copy are recorded (NoteTheta2Sync).
	ProfTheta2Sync

	// NumProfPhases is the number of ProfPhase values.
	NumProfPhases = 4
)

// String returns the label used in fpga_cycles{phase=...} metrics.
func (p ProfPhase) String() string {
	switch p {
	case ProfPredict:
		return "predict"
	case ProfSeqTrain:
		return "seq_train"
	case ProfLoad:
		return "load"
	case ProfTheta2Sync:
		return "theta2_sync"
	}
	return "unknown"
}

// ProfKernel is the dataflow stage a cycle was charged in.
type ProfKernel uint8

const (
	// KernHiddenPass is h = ReLU(x·α + b).
	KernHiddenPass ProfKernel = iota
	// KernPH is ph = P·hᵀ.
	KernPH
	// KernGain is the Eq. 5 scalar path: the denominator accumulation
	// 1 + h·ph, the single divide s = 1/denom, and the gain scaling
	// g = s·ph.
	KernGain
	// KernDowndate is the rank-1 covariance downdate P ← P − g·phᵀ.
	KernDowndate
	// KernResidual is the h·β evaluation: the predict module's output
	// pass y = h·β, and in seq_train the same dot product plus the
	// subtract of e = t − h·β.
	KernResidual
	// KernBetaUpdate is β ← β + g·e.
	KernBetaUpdate
	// KernOverhead is the per-invocation FSM/handshake cost
	// (CycleModel.InvokeOverhead), charged to the invoke unit.
	KernOverhead

	// NumProfKernels is the number of ProfKernel values.
	NumProfKernels = 7
)

// String returns the label used in fpga_cycles{kernel=...} metrics.
func (k ProfKernel) String() string {
	switch k {
	case KernHiddenPass:
		return "hidden_pass"
	case KernPH:
		return "p_h"
	case KernGain:
		return "gain"
	case KernDowndate:
		return "downdate"
	case KernResidual:
		return "residual"
	case KernBetaUpdate:
		return "beta_update"
	case KernOverhead:
		return "overhead"
	}
	return "unknown"
}

// ProfUnit is the datapath unit a cycle was spent on — the paper's
// "single add, mult, and div unit" plus the invocation FSM.
type ProfUnit uint8

const (
	// UnitAdd is the adder (subtracts are adds; ReLU is a comparator and
	// charges nothing).
	UnitAdd ProfUnit = iota
	// UnitMul is the multiplier.
	UnitMul
	// UnitDiv is the iterative divider.
	UnitDiv
	// UnitInvoke is the module-invocation FSM (control, not arithmetic).
	UnitInvoke

	// NumProfUnits is the number of ProfUnit values.
	NumProfUnits = 4
)

// String returns the label used in fpga_cycles{unit=...} metrics.
func (u ProfUnit) String() string {
	switch u {
	case UnitAdd:
		return "add"
	case UnitMul:
		return "mul"
	case UnitDiv:
		return "div"
	case UnitInvoke:
		return "invoke"
	}
	return "unknown"
}

// Bank identifies one on-chip array bank; the names match the CoreArrays
// inventory in membank.go (and Table 3's memory map).
type Bank uint8

const (
	BankP Bank = iota
	BankPt
	BankAlpha
	BankBeta
	BankBias
	BankH
	BankPH
	BankX

	// NumBanks is the number of Bank values.
	NumBanks = 8
)

// String returns the label used in fpga_bram_access{bank=...} metrics;
// it matches the ArraySpec.Name of the same bank.
func (b Bank) String() string {
	switch b {
	case BankP:
		return "P"
	case BankPt:
		return "Pt"
	case BankAlpha:
		return "alpha"
	case BankBeta:
		return "beta"
	case BankBias:
		return "bias"
	case BankH:
		return "h"
	case BankPH:
		return "ph"
	case BankX:
		return "x"
	}
	return "unknown"
}

// BankOp is the access direction of a BRAM port.
type BankOp uint8

const (
	BankRead BankOp = iota
	BankWrite

	// NumBankOps is the number of BankOp values.
	NumBankOps = 2
)

// String returns the label used in fpga_bram_access{op=...} metrics.
func (o BankOp) String() string {
	if o == BankRead {
		return "read"
	}
	return "write"
}

// profCells is the flat size of the (phase × kernel × unit) attribution
// grid.
const profCells = NumProfPhases * NumProfKernels * NumProfUnits

// profIndex flattens (phase, kernel, unit) into the grid.
func profIndex(p ProfPhase, k ProfKernel, u ProfUnit) int {
	return (int(p)*NumProfKernels+int(k))*NumProfUnits + int(u)
}

// Prof is the attribution state. The zero value is an empty profile;
// a nil *Prof is the disabled profiler.
type Prof struct {
	// cycles[profIndex(p,k,u)] is datapath cycles charged to that cell.
	cycles [profCells]int64
	// ops[profIndex(p,k,u)] counts operations issued to that cell — an op
	// can cost zero cycles (PipelinedCycleModel's fused Mul), which is
	// exactly what the ops/cycle roofline surfaces.
	ops [profCells]int64
	// bram[bank*NumBankOps+op] counts per-bank word accesses.
	bram [NumBanks * NumBankOps]int64
}

// charge attributes cyc cycles and ops operations to one (phase, kernel,
// unit) cell. Nil-safe: the disabled profiler costs one pointer
// comparison. Kernels bulk-charge their deterministic loop totals at the
// kernel boundary rather than per elementary op — the loop trip counts
// are fixed by the core's dimensions, so the attribution is exact while
// the datapath's add/mul/div helpers stay small enough to inline and the
// profiler-off hot path is identical to the pre-profiler core.
func (p *Prof) charge(ph ProfPhase, k ProfKernel, u ProfUnit, cyc, ops int64) {
	if p == nil {
		return
	}
	idx := profIndex(ph, k, u)
	p.cycles[idx] += cyc
	p.ops[idx] += ops
}

// access records n word accesses on one bank port. Nil-safe; callers
// bulk-charge once per kernel loop, not per word.
func (p *Prof) access(bank Bank, op BankOp, n int64) {
	if p == nil {
		return
	}
	p.bram[int(bank)*NumBankOps+int(op)] += n
}

// Cycles returns the cycles attributed to one (phase, kernel, unit) cell.
func (p *Prof) Cycles(ph ProfPhase, k ProfKernel, u ProfUnit) int64 {
	return p.cycles[profIndex(ph, k, u)]
}

// Ops returns the operations attributed to one cell.
func (p *Prof) Ops(ph ProfPhase, k ProfKernel, u ProfUnit) int64 {
	return p.ops[profIndex(ph, k, u)]
}

// BRAM returns the access count of one bank port.
func (p *Prof) BRAM(bank Bank, op BankOp) int64 {
	return p.bram[int(bank)*NumBankOps+int(op)]
}

// TotalCycles sums every attributed cycle; it must equal the delta of
// Core.Cycles() over the profiled window.
func (p *Prof) TotalCycles() int64 {
	var t int64
	for _, c := range p.cycles {
		t += c
	}
	return t
}

// PhaseCycles sums one phase's attributed cycles.
func (p *Prof) PhaseCycles(ph ProfPhase) int64 {
	var t int64
	base := profIndex(ph, 0, 0)
	for i := 0; i < NumProfKernels*NumProfUnits; i++ {
		t += p.cycles[base+i]
	}
	return t
}

// KernelCycles sums one (phase, kernel) row across units.
func (p *Prof) KernelCycles(ph ProfPhase, k ProfKernel) int64 {
	var t int64
	base := profIndex(ph, k, 0)
	for u := 0; u < NumProfUnits; u++ {
		t += p.cycles[base+u]
	}
	return t
}

// UnitCycles sums one unit's attributed cycles across phases and kernels.
func (p *Prof) UnitCycles(u ProfUnit) int64 {
	var t int64
	for i := int(u); i < profCells; i += NumProfUnits {
		t += p.cycles[i]
	}
	return t
}

// UnitOps sums one unit's operation count across phases and kernels.
func (p *Prof) UnitOps(u ProfUnit) int64 {
	var t int64
	for i := int(u); i < profCells; i += NumProfUnits {
		t += p.ops[i]
	}
	return t
}

// ArithOps is the total add+mul+div operations issued (invocations are
// control, not arithmetic).
func (p *Prof) ArithOps() int64 {
	return p.UnitOps(UnitAdd) + p.UnitOps(UnitMul) + p.UnitOps(UnitDiv)
}

// UnitBusyFraction is the fraction of all attributed cycles spent on one
// unit — the occupancy of that unit in the sequential schedule. Zero for
// an empty profile.
func (p *Prof) UnitBusyFraction(u ProfUnit) float64 {
	total := p.TotalCycles()
	if total == 0 {
		return 0
	}
	return float64(p.UnitCycles(u)) / float64(total)
}

// OpsPerCycle is the achieved arithmetic throughput: ArithOps divided by
// total attributed cycles — the roofline position against the
// single-unit peak of 1 op/cycle. The sequential single-issue datapath
// stays below 1 (overhead and divider latency); PipelinedCycleModel's
// fused MAC can exceed 1 because a Mul retires in the Add's cycle.
func (p *Prof) OpsPerCycle() float64 {
	total := p.TotalCycles()
	if total == 0 {
		return 0
	}
	return float64(p.ArithOps()) / float64(total)
}

// Delta returns p − prev cell-wise — the increment between two
// snapshots, used by the agent's delta-flushed metrics.
func (p Prof) Delta(prev Prof) Prof {
	var d Prof
	for i := range p.cycles {
		d.cycles[i] = p.cycles[i] - prev.cycles[i]
		d.ops[i] = p.ops[i] - prev.ops[i]
	}
	for i := range p.bram {
		d.bram[i] = p.bram[i] - prev.bram[i]
	}
	return d
}

// Reset zeroes the profile in place.
func (p *Prof) Reset() {
	if p == nil {
		return
	}
	*p = Prof{}
}
