package fpga

import (
	"testing"

	"oselmrl/internal/fixed"
)

// TestDatapathGolden locks the datapath bit-for-bit: a fixed parameter set
// and update sequence must produce exactly these Q20 words. Any change to
// the arithmetic (rounding mode, operation order, saturation) — intended
// or not — trips this test, which is the regression guarantee behind the
// "bit-accurate simulator" claim.
func TestDatapathGolden(t *testing.T) {
	core := NewCore(3, 4, 1, DefaultCycleModel())
	// Deterministic, hand-set parameters on the Q20 grid.
	alphaVals := [][]float64{
		{0.25, -0.5, 0.125, 0.75},
		{-0.25, 0.5, 0.375, -0.125},
		{0.0625, 0.3125, -0.4375, 0.15625},
	}
	for i, row := range alphaVals {
		for j, v := range row {
			core.Alpha.Set(i, j, fixed.FromFloat(v))
		}
	}
	for j, v := range []float64{0.1, -0.2, 0.3, 0.05} {
		core.Bias[j] = fixed.FromFloat(v)
	}
	for j, v := range []float64{0.5, -0.25, 0.75, 0.125} {
		core.Beta.Set(j, 0, fixed.FromFloat(v))
	}
	// P = 2·I (the δ = 0.5 initial value for an empty Gram matrix).
	for i := 0; i < 4; i++ {
		core.P.Set(i, i, fixed.FromFloat(2))
	}

	x := []fixed.Fixed{fixed.FromFloat(0.5), fixed.FromFloat(-0.25), fixed.FromFloat(0.125)}

	// Golden values recorded from the reference implementation.
	pred0 := core.Predict(x)[0]
	if got, want := int32(pred0), int32(385537); got != want {
		t.Errorf("golden predict = %d, want %d (%.6f vs %.6f)",
			got, want, pred0.Float(), fixed.Fixed(want).Float())
	}

	core.SeqTrain(x, []fixed.Fixed{fixed.FromFloat(0.9)})
	// β after one update.
	wantBeta := []int32{716094, -262144, 925466, 440092}
	for j := 0; j < 4; j++ {
		if got := int32(core.Beta.At(j, 0)); got != wantBeta[j] {
			t.Errorf("golden beta[%d] = %d, want %d", j, got, wantBeta[j])
		}
	}
	// P diagonal after the rank-1 downdate.
	wantPDiag := []int32{1884338, 2097152, 1985333, 1544757}
	for i := 0; i < 4; i++ {
		if got := int32(core.P.At(i, i)); got != wantPDiag[i] {
			t.Errorf("golden P[%d][%d] = %d, want %d", i, i, got, wantPDiag[i])
		}
	}
	// Cycle count is part of the contract too.
	if got := core.Cycles(); got != core.PredictCycles()+core.SeqTrainCycles() {
		t.Errorf("golden cycles = %d", got)
	}
}
