package fpga

// Bus models the AXI interface between the Cortex-A9 PS and the
// programmable logic in Figure 3 of the paper. Three transfer classes
// matter for the timing story:
//
//  1. the one-time bulk DMA loading α, b, β and P into BRAM after the
//     CPU-side init_train (Ñ²+O(Ñ) words),
//  2. the tiny per-invocation transfers of the observation/action inputs
//     and the scalar Q result (AXI-Lite register writes), and
//  3. the per-update target write for seq_train.
//
// The per-invocation costs are already folded into the cycle model's
// InvokeOverhead; Bus accounts for the bulk loads, which matter once per
// initial training (and per reset) and grow with Ñ² — at 192 units the
// parameter load is ~150 KB, a visible slice of init_train.
type Bus struct {
	// WordsPerBeat is the number of 32-bit words moved per bus beat
	// (AXI HP 64-bit = 2 words).
	WordsPerBeat int
	// BeatsPerSec is the sustained burst rate (beats x clock, after
	// protocol overhead).
	BeatsPerSec float64
	// SetupSec is the fixed DMA descriptor/interrupt cost per transfer.
	SetupSec float64

	totalWords     int64
	totalTransfers int64
}

// DefaultBus models the Zynq AXI HP port at 64 bits x 100 MHz with ~70%
// protocol efficiency and a ~5 microsecond driver/DMA setup cost.
func DefaultBus() *Bus {
	return &Bus{WordsPerBeat: 2, BeatsPerSec: 70e6, SetupSec: 5e-6}
}

// TransferWords records one DMA transfer of n 32-bit words and returns its
// modelled duration in seconds.
func (b *Bus) TransferWords(n int) float64 {
	if n < 0 {
		panic("fpga: negative transfer size")
	}
	b.totalWords += int64(n)
	b.totalTransfers++
	beats := (n + b.WordsPerBeat - 1) / b.WordsPerBeat
	return b.SetupSec + float64(beats)/b.BeatsPerSec
}

// LoadCoreParameters models the post-init_train bulk load of a core's
// parameters (α, b, β, P) and returns the modelled seconds.
func (b *Bus) LoadCoreParameters(c *Core) float64 {
	return b.TransferWords(c.BRAMWords())
}

// TotalWords returns the cumulative words moved.
func (b *Bus) TotalWords() int64 { return b.totalWords }

// TotalTransfers returns the number of transfers recorded.
func (b *Bus) TotalTransfers() int64 { return b.totalTransfers }
