package fpga

import (
	"math"
	"strings"
	"testing"

	"oselmrl/internal/activation"
	"oselmrl/internal/elm"
	"oselmrl/internal/env"
	"oselmrl/internal/fixed"
	"oselmrl/internal/mat"
	"oselmrl/internal/oselm"
	"oselmrl/internal/qnet"
	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
	"oselmrl/internal/timing"
)

func trainedFloatModel(t *testing.T, hidden int) *oselm.Model {
	t.Helper()
	r := rng.New(1)
	base := elm.NewModel(5, hidden, 1, activation.ReLU, r,
		elm.Options{InitLow: -1, InitHigh: 1, SpectralNormalizeAlpha: true})
	m := oselm.New(base, 0.5)
	x := mat.Zeros(hidden, 5)
	y := mat.Zeros(hidden, 1)
	r.FillUniform(x.RawData(), -1, 1)
	r.FillUniform(y.RawData(), -1, 1)
	if err := m.InitTrain(x, y); err != nil {
		t.Fatal(err)
	}
	return m
}

func loadedCore(t *testing.T, m *oselm.Model) *Core {
	t.Helper()
	c := NewCore(5, m.HiddenSize(), 1, DefaultCycleModel())
	c.LoadFloat(m.Alpha, m.Bias, m.Beta, m.P)
	return c
}

// TestPredictMatchesFloat: the fixed-point predict module must agree with
// the float model within the Q20 error budget.
func TestPredictMatchesFloat(t *testing.T) {
	m := trainedFloatModel(t, 32)
	c := loadedCore(t, m)
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		x := make([]float64, 5)
		r.FillUniform(x, -2, 2)
		want := m.PredictOne(x)[0]
		got := c.PredictFloat(x)[0]
		if math.Abs(got-want) > 1e-3 {
			t.Fatalf("predict mismatch: float %v fixed %v", want, got)
		}
	}
}

// TestSeqTrainTracksFloat: after many identical updates, the fixed-point β
// must track the float β within a small bound (quantization drift).
func TestSeqTrainTracksFloat(t *testing.T) {
	m := trainedFloatModel(t, 16)
	c := loadedCore(t, m)
	r := rng.New(3)
	for i := 0; i < 2000; i++ {
		x := make([]float64, 5)
		r.FillUniform(x, -1, 1)
		y := r.Uniform(-1, 1)
		if err := m.SeqTrainOne(x, []float64{y}); err != nil {
			t.Fatal(err)
		}
		c.SeqTrainFloat(x, []float64{y})
	}
	probe := []float64{0.2, -0.3, 0.5, -0.1, 1}
	d := math.Abs(m.PredictOne(probe)[0] - c.PredictFloat(probe)[0])
	if d > 0.1 {
		t.Errorf("prediction drift after 2000 updates = %v", d)
	}
	// P must also track.
	if e := c.P.MaxAbsError(m.P); e > 0.05 {
		t.Errorf("P drift = %v", e)
	}
}

// TestCycleCountsMatchAnalytic: the simulator's counted cycles must equal
// the closed-form PredictCycles/SeqTrainCycles formulas exactly.
func TestCycleCountsMatchAnalytic(t *testing.T) {
	for _, hidden := range []int{8, 32, 64} {
		c := NewCore(5, hidden, 1, DefaultCycleModel())
		x := make([]fixed.Fixed, 5)
		c.ResetCycles()
		c.Predict(x)
		if got, want := c.Cycles(), c.PredictCycles(); got != want {
			t.Errorf("hidden=%d: predict cycles %d, analytic %d", hidden, got, want)
		}
		c.ResetCycles()
		c.SeqTrain(x, []fixed.Fixed{0})
		if got, want := c.Cycles(), c.SeqTrainCycles(); got != want {
			t.Errorf("hidden=%d: seq_train cycles %d, analytic %d", hidden, got, want)
		}
	}
}

// TestSeqTrainCyclesQuadratic: doubling Ñ must roughly quadruple seq_train
// cycles (the paper's §4.4 growth argument).
func TestSeqTrainCyclesQuadratic(t *testing.T) {
	c32 := NewCore(5, 32, 1, DefaultCycleModel()).SeqTrainCycles()
	c64 := NewCore(5, 64, 1, DefaultCycleModel()).SeqTrainCycles()
	c128 := NewCore(5, 128, 1, DefaultCycleModel()).SeqTrainCycles()
	if r := float64(c64) / float64(c32); r < 3 || r > 4.5 {
		t.Errorf("32→64 cycle ratio %v", r)
	}
	if r := float64(c128) / float64(c64); r < 3.4 || r > 4.4 {
		t.Errorf("64→128 cycle ratio %v", r)
	}
}

// TestPredictUsingRestoresBeta: the θ2 path must not corrupt θ1's BRAM.
func TestPredictUsingRestoresBeta(t *testing.T) {
	m := trainedFloatModel(t, 8)
	c := loadedCore(t, m)
	beta2 := fixed.NewMatrix(8, 1) // all zeros
	x := make([]fixed.Fixed, 5)
	for i := range x {
		x[i] = fixed.FromFloat(0.5)
	}
	out2 := c.PredictUsing(beta2, x)
	if out2[0] != 0 {
		t.Error("zero β2 must predict 0")
	}
	out1 := c.Predict(x)
	if out1[0] == 0 && m.PredictOne([]float64{0.5, 0.5, 0.5, 0.5, 0.5})[0] != 0 {
		t.Error("θ1 β corrupted by PredictUsing")
	}
}

// TestTable3Resources: the resource model must reproduce paper Table 3 at
// the synthesized design points, and the 256-unit design must not fit.
func TestTable3Resources(t *testing.T) {
	want := map[int][4]float64{ // BRAM%, DSP%, FF%, LUT%
		32:  {2.86, 1.82, 1.49, 3.52},
		64:  {11.43, 1.82, 4.5, 5},
		128: {45.71, 1.82, 4.5, 7.93},
		192: {91.43, 1.82, 6.44, 11.03},
	}
	for hidden, w := range want {
		u := EstimateResources(5, hidden)
		if !u.Feasible {
			t.Errorf("%d units must fit the device", hidden)
		}
		b, d, f, l := u.Percent(XC7Z020)
		got := [4]float64{b, d, f, l}
		for i, g := range got {
			if math.Abs(g-w[i]) > 0.25 {
				t.Errorf("%d units: resource %d = %.2f%%, Table 3 says %.2f%%", hidden, i, g, w[i])
			}
		}
	}
	if u := EstimateResources(5, 256); u.Feasible {
		t.Error("256 units must exceed the device's BRAM (paper Table 3)")
	}
}

func TestTable3Sweep(t *testing.T) {
	rows := Table3Sweep()
	if len(rows) != 5 {
		t.Fatalf("sweep rows = %d", len(rows))
	}
	// BRAM demand must be monotonically increasing in Ñ.
	for i := 1; i < len(rows); i++ {
		if rows[i].BRAM36 <= rows[i-1].BRAM36 {
			t.Errorf("BRAM not increasing: %v then %v", rows[i-1].BRAM36, rows[i].BRAM36)
		}
	}
	// DSP count is constant (single shared add/mul/div unit).
	for _, r := range rows {
		if r.DSP48 != 4 {
			t.Errorf("%d units: DSP = %d, want the constant 4", r.Hidden, r.DSP48)
		}
	}
	if rows[4].Feasible {
		t.Error("256-unit row must be infeasible")
	}
}

func TestEstimateResourcesNonPaperSize(t *testing.T) {
	// Non-tabulated sizes use the inventory model; sanity-check monotone
	// growth and feasibility at small sizes.
	u48 := EstimateResources(5, 48)
	u96 := EstimateResources(5, 96)
	if !u48.Feasible || !u96.Feasible {
		t.Error("mid sizes must fit")
	}
	if u96.BRAM36 <= u48.BRAM36 {
		t.Error("BRAM must grow with hidden width")
	}
	// A different input size must not hit the calibration table.
	u := EstimateResources(7, 64)
	if u.Hidden != 64 || u.BRAM36 <= 0 {
		t.Error("inventory path broken for non-CartPole input size")
	}
}

// TestAgentRejectsInfeasible: constructing a 256-unit agent must fail like
// the paper's synthesis did.
func TestAgentRejectsInfeasible(t *testing.T) {
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 256)
	if _, err := NewAgent(cfg, DefaultCycleModel()); err == nil {
		t.Fatal("256-unit FPGA agent must be rejected")
	}
}

// TestAgentLifecycle: the FPGA agent follows Algorithm 1 — untrained until
// D fills, then loaded, PL phases counted in cycles.
func TestAgentLifecycle(t *testing.T) {
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 8)
	cfg.Seed = 5
	cfg.Epsilon2 = 1 // update every step for the test
	a := MustNewAgent(cfg, DefaultCycleModel())
	if a.Name() != "FPGA" {
		t.Errorf("Name = %q", a.Name())
	}
	s := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 8; i++ {
		if a.Trained() {
			t.Fatal("trained too early")
		}
		if err := a.Observe(replay.Transition{State: s, NextState: s, Reward: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Trained() {
		t.Fatal("must be trained once D fills")
	}
	if a.Counters().Calls(timing.PhaseInitTrain) != 1 {
		t.Error("init_train counted once")
	}
	// Post-load updates count seq_train cycles.
	if err := a.Observe(replay.Transition{State: s, NextState: s, Reward: 0.1}); err != nil {
		t.Fatal(err)
	}
	if a.Counters().Calls(timing.PhaseSeqTrain) != 1 {
		t.Error("seq_train not counted")
	}
	if a.Counters().Work(timing.PhaseSeqTrain) < float64(a.Core().SeqTrainCycles()) {
		t.Error("seq_train work must include the core's cycles")
	}
}

// TestAgentLearnsCartPole: integration — the fixed-point agent improves on
// CartPole (moving average well above the random baseline of ~20 steps).
func TestAgentLearnsCartPole(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 32)
	cfg.Seed = 6
	a := MustNewAgent(cfg, DefaultCycleModel())
	e := env.NewShaped(env.NewCartPoleV0(106), env.RewardSurvival)
	best := 0.0
	window := make([]float64, 0, 2000)
	for ep := 1; ep <= 2000; ep++ {
		s := e.Reset()
		steps := 0
		for {
			act := a.SelectAction(s)
			ns, r, done := e.Step(act)
			if err := a.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
				t.Fatal(err)
			}
			s = ns
			steps++
			if done {
				break
			}
		}
		a.EndEpisode(ep)
		window = append(window, float64(steps))
		if len(window) >= 100 {
			sum := 0.0
			for _, v := range window[len(window)-100:] {
				sum += v
			}
			if avg := sum / 100; avg > best {
				best = avg
			}
		}
		if ep%300 == 0 && best < 100 {
			a.Reinitialize()
		}
	}
	if best < 60 {
		t.Errorf("best 100-episode average = %v; fixed-point agent failed to learn", best)
	}
}

func TestPhaseProfiles(t *testing.T) {
	p := PhaseProfiles()
	if p[timing.PhaseSeqTrain].Name != timing.FPGA125.Name {
		t.Error("seq_train must run on the PL profile")
	}
	if p[timing.PhaseInitTrain].Name != timing.CortexA9Init.Name {
		t.Error("init_train must run on the CPU profile")
	}
}

func TestBRAMWords(t *testing.T) {
	c := NewCore(5, 32, 1, DefaultCycleModel())
	// alpha 5*32 + bias 32 + beta 32 + P 1024 + h 32 + ph 32 + x 5.
	want := 160 + 32 + 32 + 1024 + 32 + 32 + 5
	if got := c.BRAMWords(); got != want {
		t.Errorf("BRAMWords = %d want %d", got, want)
	}
}

func TestCoreAccessorsAndUtilString(t *testing.T) {
	c := NewCore(5, 16, 1, DefaultCycleModel())
	if c.InputSize() != 5 || c.HiddenSize() != 16 || c.OutputSize() != 1 {
		t.Error("core accessors")
	}
	u := EstimateResources(5, 64)
	if s := u.String(); !strings.Contains(s, "64 units") || !strings.Contains(s, "BRAM") {
		t.Errorf("String = %q", s)
	}
	bad := EstimateResources(5, 256)
	if s := bad.String(); !strings.Contains(s, "does not fit") {
		t.Errorf("infeasible String = %q", s)
	}
}

func TestNewCoreInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCore(0, 8, 1, DefaultCycleModel())
}

func TestAgentGreedyActionAndAccessors(t *testing.T) {
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 8)
	cfg.Seed = 9
	a := MustNewAgent(cfg, DefaultCycleModel())
	s := []float64{0.1, 0.2, 0.3, 0.4}
	// Pre-load: greedy runs on the CPU path.
	if act := a.GreedyAction(s); act != 0 && act != 1 {
		t.Fatalf("greedy = %d", act)
	}
	for i := 0; i < 8; i++ {
		if err := a.Observe(replay.Transition{State: s, NextState: s, Reward: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	// Post-load: greedy runs on the core.
	if act := a.GreedyAction(s); act != 0 && act != 1 {
		t.Fatalf("greedy post-load = %d", act)
	}
	if a.GlobalStep() != 8 {
		t.Errorf("GlobalStep = %d", a.GlobalStep())
	}
	if a.Bus().TotalTransfers() != 1 {
		t.Errorf("bus transfers = %d, want 1 parameter load", a.Bus().TotalTransfers())
	}
	// Invalid configs error rather than panic in NewAgent.
	bad := cfg
	bad.ObservationSize = 0
	if _, err := NewAgent(bad, DefaultCycleModel()); err == nil {
		t.Error("bad dims must fail")
	}
	bad2 := cfg
	bad2.ExploreDecay = 2
	if _, err := NewAgent(bad2, DefaultCycleModel()); err == nil {
		t.Error("bad decay must fail")
	}
}

// TestPipelinedCycleModel: the II=1 MAC pipeline roughly halves seq_train
// cycles versus the non-pipelined model, and the simulator still matches
// its analytic formulas exactly.
func TestPipelinedCycleModel(t *testing.T) {
	seq := NewCore(5, 64, 1, DefaultCycleModel())
	pipe := NewCore(5, 64, 1, PipelinedCycleModel())
	x := make([]fixed.Fixed, 5)
	pipe.SeqTrain(x, []fixed.Fixed{0})
	if got, want := pipe.Cycles(), pipe.SeqTrainCycles(); got != want {
		t.Fatalf("pipelined counted %d, analytic %d", got, want)
	}
	ratio := float64(seq.SeqTrainCycles()) / float64(pipe.SeqTrainCycles())
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("pipeline speedup = %vx, want ~2x", ratio)
	}
}
