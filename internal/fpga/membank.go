package fpga

import (
	"fmt"
	"sort"
	"strings"
)

// This file models how the core's arrays map onto 7-series memory
// primitives — the mechanism behind Table 3's BRAM column. Vivado maps
// each partitioned array bank to BRAM36/BRAM18 primitives in the aspect
// ratio fitting the word width, and spills small arrays to LUTRAM
// (distributed RAM) instead. EstimateResources reports the synthesized
// Table 3 numbers at the paper's design points; MemoryMap is the
// first-principles companion used for non-tabulated configurations and for
// explaining *why* the 256-unit design cannot fit.

// ArraySpec describes one on-chip array of the datapath.
type ArraySpec struct {
	// Name identifies the array ("P", "alpha", ...).
	Name string
	// Words is the number of elements.
	Words int
	// WordBits is the element width in storage bits — 32 for every Qm.f
	// fixed-point word (the format only moves the binary point, never
	// the word width), which is why Table 3's resource model is
	// format-invariant.
	WordBits int
	// Partitions is the cyclic partition factor (HLS array_partition):
	// the array is split across this many independently-addressed banks
	// so the pipeline can read/write several elements per cycle.
	Partitions int
	// DoubleBuffer duplicates the storage (ping-pong), used when a module
	// reads the previous iteration's values while writing the next.
	DoubleBuffer bool
}

// banks returns the number of physical banks including double buffering.
func (a ArraySpec) banks() int {
	p := a.Partitions
	if p < 1 {
		p = 1
	}
	if a.DoubleBuffer {
		p *= 2
	}
	return p
}

// wordsPerBank returns the depth of each bank.
func (a ArraySpec) wordsPerBank() int {
	p := a.Partitions
	if p < 1 {
		p = 1
	}
	return (a.Words + p - 1) / p
}

// lutRAMThresholdBits is the size below which Vivado prefers distributed
// RAM over a block RAM (small arrays burn LUTs, not BRAMs). 4 Kb covers
// the RAM64M-composed memories synthesis keeps out of block RAM.
const lutRAMThresholdBits = 4096

// bram36DepthFor returns how many words of the given width one BRAM36
// holds, per the 7-series aspect ratios (32K×1, 16K×2, 8K×4, 4K×9, 2K×18,
// 1K×36, 512×72).
func bram36DepthFor(wordBits int) int {
	switch {
	case wordBits <= 1:
		return 32768
	case wordBits <= 2:
		return 16384
	case wordBits <= 4:
		return 8192
	case wordBits <= 9:
		return 4096
	case wordBits <= 18:
		return 2048
	case wordBits <= 36:
		return 1024
	case wordBits <= 72:
		return 512
	default:
		return 0 // wider words span multiple BRAMs
	}
}

// Placement records where one array landed.
type Placement struct {
	Array   ArraySpec
	BRAM36  int
	LUTBits int
}

// MemoryMap is the allocation of a full array inventory.
type MemoryMap struct {
	Placements []Placement
}

// TotalBRAM36 sums the block-RAM demand.
func (m *MemoryMap) TotalBRAM36() int {
	n := 0
	for _, p := range m.Placements {
		n += p.BRAM36
	}
	return n
}

// TotalLUTBits sums the distributed-RAM demand.
func (m *MemoryMap) TotalLUTBits() int {
	n := 0
	for _, p := range m.Placements {
		n += p.LUTBits
	}
	return n
}

// String renders the map, largest consumers first.
func (m *MemoryMap) String() string {
	ps := append([]Placement(nil), m.Placements...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].BRAM36 > ps[j].BRAM36 })
	var sb strings.Builder
	for _, p := range ps {
		if p.BRAM36 > 0 {
			fmt.Fprintf(&sb, "  %-8s %6d words x%2d bits  banks=%d  -> %3d BRAM36\n",
				p.Array.Name, p.Array.Words, p.Array.WordBits, p.Array.banks(), p.BRAM36)
		} else {
			fmt.Fprintf(&sb, "  %-8s %6d words x%2d bits  -> LUTRAM (%d bits)\n",
				p.Array.Name, p.Array.Words, p.Array.WordBits, p.LUTBits)
		}
	}
	return sb.String()
}

// Allocate places each array: banks smaller than the LUTRAM threshold go
// to distributed RAM; the rest consume ceil(depth / bramDepth) BRAM36s per
// bank.
func Allocate(arrays []ArraySpec) (*MemoryMap, error) {
	m := &MemoryMap{}
	for _, a := range arrays {
		if a.Words < 0 || a.WordBits <= 0 {
			return nil, fmt.Errorf("fpga: invalid array spec %+v", a)
		}
		depth := a.wordsPerBank()
		bankBits := depth * a.WordBits
		pl := Placement{Array: a}
		if bankBits <= lutRAMThresholdBits {
			pl.LUTBits = bankBits * a.banks()
		} else {
			per := bram36DepthFor(a.WordBits)
			if per == 0 {
				return nil, fmt.Errorf("fpga: word width %d not mappable", a.WordBits)
			}
			bramsPerBank := (depth + per - 1) / per
			pl.BRAM36 = bramsPerBank * a.banks()
		}
		m.Placements = append(m.Placements, pl)
	}
	return m, nil
}

// CoreArrays returns the OS-ELM core's array inventory for the given
// dimensions, with the storage layout the pipelined single-MAC design
// uses:
//
//   - P is held twice — row-major and transposed — because the seq_train
//     dataflow streams both P's rows (computing ph = P·hᵀ) and its columns
//     (the rank-1 downdate touches P[i][j] for a fixed j sweep); a single
//     row-major BRAM layout cannot feed both patterns at initiation
//     interval 1.
//   - Each copy is cyclic-partitioned by 4 for banked access and
//     double-buffered (the Eq. 5 downdate reads Pᵢ₋₁ while writing Pᵢ).
//   - Everything else is a small array that synthesis places in LUTRAM.
//
// The resulting counts match synthesized Table 3 exactly at 64 and 128
// units (16 and 64 BRAM36); at 32 units the model's shallow banks
// overstate what Vivado merges (16 vs 4), and at 192 its odd 9K depths
// overstate packing (144 vs 128) — the map is an upper bound, and
// EstimateResources reports the synthesized values at the paper's design
// points.
func CoreArrays(inputSize, hidden int) []ArraySpec {
	return []ArraySpec{
		{Name: "P", Words: hidden * hidden, WordBits: 32, Partitions: 4, DoubleBuffer: true},
		{Name: "Pt", Words: hidden * hidden, WordBits: 32, Partitions: 4, DoubleBuffer: true},
		{Name: "alpha", Words: inputSize * hidden, WordBits: 32, Partitions: 1},
		{Name: "beta", Words: hidden, WordBits: 32, Partitions: 1, DoubleBuffer: true},
		{Name: "bias", Words: hidden, WordBits: 32, Partitions: 1},
		{Name: "h", Words: hidden, WordBits: 32, Partitions: 1},
		{Name: "ph", Words: hidden, WordBits: 32, Partitions: 1},
		{Name: "x", Words: inputSize, WordBits: 32, Partitions: 1},
	}
}

// CoreMemoryMap allocates the core's arrays for the given dimensions.
func CoreMemoryMap(inputSize, hidden int) (*MemoryMap, error) {
	return Allocate(CoreArrays(inputSize, hidden))
}
