package fpga

import (
	"testing"

	"oselmrl/internal/fixed"
	"oselmrl/internal/mat"
)

// goldenCore builds the TestDatapathGolden parameter set.
func goldenCore() *Core {
	core := NewCore(3, 4, 1, DefaultCycleModel())
	alphaVals := [][]float64{
		{0.25, -0.5, 0.125, 0.75},
		{-0.25, 0.5, 0.375, -0.125},
		{0.0625, 0.3125, -0.4375, 0.15625},
	}
	for i, row := range alphaVals {
		for j, v := range row {
			core.Alpha.Set(i, j, fixed.FromFloat(v))
		}
	}
	for j, v := range []float64{0.1, -0.2, 0.3, 0.05} {
		core.Bias[j] = fixed.FromFloat(v)
	}
	for j, v := range []float64{0.5, -0.25, 0.75, 0.125} {
		core.Beta.Set(j, 0, fixed.FromFloat(v))
	}
	for i := 0; i < 4; i++ {
		core.P.Set(i, i, fixed.FromFloat(2))
	}
	return core
}

// TestGoldenVectorsWithAccounting re-runs the golden datapath sequence with
// accounting ON and asserts the exact same Q20 words and cycle count —
// accounting observes the datapath, it must never change it.
func TestGoldenVectorsWithAccounting(t *testing.T) {
	core := goldenCore()
	core.EnableAccounting()
	if !core.AccountingEnabled() {
		t.Fatal("EnableAccounting did not enable")
	}
	x := []fixed.Fixed{fixed.FromFloat(0.5), fixed.FromFloat(-0.25), fixed.FromFloat(0.125)}

	pred0 := core.Predict(x)[0]
	if got, want := int32(pred0), int32(385537); got != want {
		t.Errorf("accounted predict = %d, want golden %d", got, want)
	}
	core.SeqTrain(x, []fixed.Fixed{fixed.FromFloat(0.9)})
	wantBeta := []int32{716094, -262144, 925466, 440092}
	for j := 0; j < 4; j++ {
		if got := int32(core.Beta.At(j, 0)); got != wantBeta[j] {
			t.Errorf("accounted beta[%d] = %d, want golden %d", j, got, wantBeta[j])
		}
	}
	wantPDiag := []int32{1884338, 2097152, 1985333, 1544757}
	for i := 0; i < 4; i++ {
		if got := int32(core.P.At(i, i)); got != wantPDiag[i] {
			t.Errorf("accounted P[%d][%d] = %d, want golden %d", i, i, got, wantPDiag[i])
		}
	}
	if got := core.Cycles(); got != core.PredictCycles()+core.SeqTrainCycles() {
		t.Errorf("accounted cycles = %d, want %d", got, core.PredictCycles()+core.SeqTrainCycles())
	}

	// Ops landed in the right per-module accumulators.
	pa, sa := core.PredictAcct(), core.SeqTrainAcct()
	if pa.Ops == 0 || sa.Ops == 0 {
		t.Fatalf("per-module ops not recorded: predict=%d seq=%d", pa.Ops, sa.Ops)
	}
	// Predict: hidden (h·n muls + h·n adds) + output (m·h each) ops.
	if want := int64(2 * (4*3 + 1*4)); pa.Ops != want {
		t.Errorf("predict ops = %d, want %d", pa.Ops, want)
	}
	if pa.NaNs != 0 || sa.NaNs != 0 {
		t.Errorf("unexpected NaN counts: predict=%d seq=%d", pa.NaNs, sa.NaNs)
	}
}

// TestLoadFloatAccounting routes the DMA quantization boundary through the
// conversion accumulator, including NaN coercion.
func TestLoadFloatAccounting(t *testing.T) {
	core := NewCore(2, 2, 1, DefaultCycleModel())
	core.EnableAccounting()
	alpha := mat.Zeros(2, 2)
	alpha.Set(0, 0, 0.5)
	beta := mat.Zeros(2, 1)
	p := mat.Zeros(2, 2)
	p.Set(1, 1, 5000) // saturates the Q11.20 range
	core.LoadFloat(alpha, []float64{0.1, 0.2}, beta, p)

	ca := core.ConvAcct()
	if want := int64(2*2 + 2 + 2*1 + 2*2); ca.Ops != want {
		t.Errorf("conversion ops = %d, want %d", ca.Ops, want)
	}
	if ca.Saturations != 1 {
		t.Errorf("conversion saturations = %d, want 1", ca.Saturations)
	}
	if got := core.P.At(1, 1); got != fixed.Fixed(fixed.Max) {
		t.Errorf("saturated load = %d, want rail", int32(got))
	}
}

// TestPredictSilent pins the probe contract: same outputs as Predict, zero
// cycle-counter movement, zero accounting movement.
func TestPredictSilent(t *testing.T) {
	core := goldenCore()
	core.EnableAccounting()
	x := []fixed.Fixed{fixed.FromFloat(0.5), fixed.FromFloat(-0.25), fixed.FromFloat(0.125)}

	loud := core.Predict(x)[0]
	cyclesBefore := core.Cycles()
	acctBefore := *core.PredictAcct()

	silent := core.PredictSilent(x)[0]
	if silent != loud {
		t.Errorf("PredictSilent = %d, Predict = %d", int32(silent), int32(loud))
	}
	if core.Cycles() != cyclesBefore {
		t.Errorf("PredictSilent moved cycles: %d -> %d", cyclesBefore, core.Cycles())
	}
	if got := *core.PredictAcct(); got != acctBefore {
		t.Errorf("PredictSilent moved accounting: %+v -> %+v", acctBefore, got)
	}
}

// TestDisabledAccountingPathDoesNotAllocate pins the disabled-path cost of
// the datapath with accounting off: Predict's only allocation is its
// output slice (1 per call), and SeqTrain allocates only the gain vector.
func TestDisabledAccountingPathDoesNotAllocate(t *testing.T) {
	core := goldenCore()
	x := []fixed.Fixed{fixed.FromFloat(0.5), fixed.FromFloat(-0.25), fixed.FromFloat(0.125)}
	tgt := []fixed.Fixed{fixed.FromFloat(0.9)}

	if allocs := testing.AllocsPerRun(100, func() {
		core.Predict(x)
	}); allocs > 1 {
		t.Errorf("disabled-accounting Predict allocates %g per run, want <= 1 (output slice)", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		core.SeqTrain(x, tgt)
	}); allocs > 1 {
		t.Errorf("disabled-accounting SeqTrain allocates %g per run, want <= 1 (gain vector)", allocs)
	}
}

// BenchmarkSeqTrainAccounting quantifies the accounting overhead on the
// seq_train hot loop (compare the Disabled and Enabled variants).
func BenchmarkSeqTrainAccountingDisabled(b *testing.B) { benchSeqTrain(b, false) }
func BenchmarkSeqTrainAccountingEnabled(b *testing.B)  { benchSeqTrain(b, true) }

func benchSeqTrain(b *testing.B, acct bool) {
	core := goldenCore()
	if acct {
		core.EnableAccounting()
	}
	x := []fixed.Fixed{fixed.FromFloat(0.5), fixed.FromFloat(-0.25), fixed.FromFloat(0.125)}
	tgt := []fixed.Fixed{fixed.FromFloat(0.9)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.SeqTrain(x, tgt)
	}
}
