package fpga

import (
	"fmt"
	"math"
)

// DeviceXC7Z020 describes the PYNQ-Z1's Zynq xc7z020clg400-1 programmable
// logic, the paper's target device (§4.2).
type Device struct {
	Name   string
	BRAM36 int // 36Kb block RAMs
	DSP48  int // DSP48E1 slices
	FF     int // flip-flops
	LUT    int // 6-input LUTs
}

// XC7Z020 is the paper's target device.
var XC7Z020 = Device{
	Name:   "xc7z020clg400-1",
	BRAM36: 140,
	DSP48:  220,
	FF:     106400,
	LUT:    53200,
}

// Utilization is one row of paper Table 3.
type Utilization struct {
	// Hidden is Ñ, the hidden-layer width.
	Hidden int
	// BRAM36, DSP48, FF, LUT are absolute resource demands.
	BRAM36, DSP48, FF, LUT int
	// Feasible reports whether the design fits the device; the paper's
	// 256-unit design does not ("cannot be implemented for PYNQ-Z1 board
	// due to an excessive BRAM requirement").
	Feasible bool
}

// Percent returns utilization percentages against the device.
func (u Utilization) Percent(d Device) (bram, dsp, ff, lut float64) {
	return 100 * float64(u.BRAM36) / float64(d.BRAM36),
		100 * float64(u.DSP48) / float64(d.DSP48),
		100 * float64(u.FF) / float64(d.FF),
		100 * float64(u.LUT) / float64(d.LUT)
}

// String renders a Table 3 style row.
func (u Utilization) String() string {
	b, d, f, l := u.Percent(XC7Z020)
	if !u.Feasible {
		return fmt.Sprintf("%4d units: does not fit (needs %d/%d BRAM36)", u.Hidden, u.BRAM36, XC7Z020.BRAM36)
	}
	return fmt.Sprintf("%4d units: BRAM %.2f%%  DSP %.2f%%  FF %.2f%%  LUT %.2f%%", u.Hidden, b, d, f, l)
}

// table3 holds the paper's synthesized utilization at the reported sizes.
// Vivado's BRAM packing (array partitioning, aspect-ratio padding,
// duplication for port bandwidth) cannot be derived from first principles
// without running synthesis, so at the paper's exact design points the
// estimator returns the synthesized values, and elsewhere it interpolates
// with the inventory model below. See DESIGN.md §5.
var table3 = map[int]Utilization{
	32:  {Hidden: 32, BRAM36: 4, DSP48: 4, FF: 1585, LUT: 1873, Feasible: true},
	64:  {Hidden: 64, BRAM36: 16, DSP48: 4, FF: 4788, LUT: 2660, Feasible: true},
	128: {Hidden: 128, BRAM36: 64, DSP48: 4, FF: 4788, LUT: 4219, Feasible: true},
	192: {Hidden: 192, BRAM36: 128, DSP48: 4, FF: 6852, LUT: 5868, Feasible: true},
}

// bramExpansionFactor is the average ratio between the synthesized BRAM
// demand and the raw-word lower bound across the paper's design points —
// the cost of partitioning and padding arrays for the pipelined datapath.
const bramExpansionFactor = 3.5

// EstimateResources returns the core's resource demand for a hidden width,
// using inputSize states+action inputs and a scalar output.
func EstimateResources(inputSize, hidden int) Utilization {
	if u, ok := table3[hidden]; ok && inputSize == 5 {
		return u
	}
	// Inventory lower bound: every on-chip word of α, b, β, P and the
	// working vectors at 32 bits.
	words := inputSize*hidden + hidden + hidden + hidden*hidden + 2*hidden + inputSize
	bits := float64(words * 32)
	ideal := bits / 36864 // one BRAM36 = 36Kb
	bram := int(math.Ceil(bramExpansionFactor * ideal))
	if bram < 1 {
		bram = 1
	}
	// One shared add, one mul (3 DSP48s for a 32×32 product) and an
	// iterative divider (LUT-based) — constant 4 DSPs, as Table 3 shows
	// (1.82% of 220 ≈ 4 at every size).
	dsp := 4
	// Control logic grows with address widths; linear fits to Table 3.
	ff := 1200 + 30*hidden
	lut := 1060 + 25*hidden
	return Utilization{
		Hidden:   hidden,
		BRAM36:   bram,
		DSP48:    dsp,
		FF:       ff,
		LUT:      lut,
		Feasible: bram <= XC7Z020.BRAM36 && dsp <= XC7Z020.DSP48 && ff <= XC7Z020.FF && lut <= XC7Z020.LUT,
	}
}

// CoresPerDevice is the static replication headroom: how many copies of
// one core's resource demand fit in the device, and which resource binds
// the count. This caps the fleet simulator's cores-per-device (the 1→N
// speedup sweep never models more cores than the estimator admits) and
// the cmd/fpgares fleet-headroom report.
func CoresPerDevice(u Utilization, d Device) (cores int, binding string) {
	cores = -1
	for _, r := range []struct {
		name      string
		need, cap int
	}{
		{"BRAM", u.BRAM36, d.BRAM36},
		{"DSP", u.DSP48, d.DSP48},
		{"FF", u.FF, d.FF},
		{"LUT", u.LUT, d.LUT},
	} {
		if r.need <= 0 {
			continue
		}
		if fit := r.cap / r.need; cores < 0 || fit < cores {
			cores, binding = fit, r.name
		}
	}
	if cores < 0 {
		cores = 0
	}
	return cores, binding
}

// Table3Sweep reproduces paper Table 3: utilization for hidden widths
// 32..256 with the CartPole input size (5).
func Table3Sweep() []Utilization {
	sizes := []int{32, 64, 128, 192, 256}
	out := make([]Utilization, 0, len(sizes))
	for _, n := range sizes {
		out = append(out, EstimateResources(5, n))
	}
	return out
}
