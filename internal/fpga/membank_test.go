package fpga

import (
	"strings"
	"testing"
)

func TestBRAM36Aspects(t *testing.T) {
	cases := []struct{ bits, depth int }{
		{1, 32768}, {2, 16384}, {4, 8192}, {9, 4096},
		{18, 2048}, {32, 1024}, {36, 1024}, {72, 512}, {128, 0},
	}
	for _, c := range cases {
		if got := bram36DepthFor(c.bits); got != c.depth {
			t.Errorf("depth for %d-bit words = %d want %d", c.bits, got, c.depth)
		}
	}
}

func TestAllocateSmallArraysGoToLUTRAM(t *testing.T) {
	m, err := Allocate([]ArraySpec{
		{Name: "tiny", Words: 16, WordBits: 32, Partitions: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalBRAM36() != 0 {
		t.Error("16x32 bits must map to LUTRAM")
	}
	if m.TotalLUTBits() != 512 {
		t.Errorf("LUT bits = %d", m.TotalLUTBits())
	}
}

func TestAllocateBigArrayBRAMCount(t *testing.T) {
	// 4096 32-bit words, one bank: 4096/1024 = 4 BRAM36.
	m, err := Allocate([]ArraySpec{
		{Name: "big", Words: 4096, WordBits: 32, Partitions: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TotalBRAM36(); got != 4 {
		t.Errorf("BRAM36 = %d want 4", got)
	}
}

func TestAllocatePartitioningCosts(t *testing.T) {
	// Partitioning a 2048-word array into 8 banks of 256 words each: each
	// 8 Kb bank exceeds the LUTRAM threshold, so 8 BRAMs instead of 2.
	one, err := Allocate([]ArraySpec{{Name: "a", Words: 2048, WordBits: 32, Partitions: 1}})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Allocate([]ArraySpec{{Name: "a", Words: 2048, WordBits: 32, Partitions: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if one.TotalBRAM36() != 2 || eight.TotalBRAM36() != 8 {
		t.Errorf("partition cost: %d vs %d", one.TotalBRAM36(), eight.TotalBRAM36())
	}
}

func TestAllocateDoubleBufferDoubles(t *testing.T) {
	single, _ := Allocate([]ArraySpec{{Name: "a", Words: 2048, WordBits: 32, Partitions: 1}})
	double, _ := Allocate([]ArraySpec{{Name: "a", Words: 2048, WordBits: 32, Partitions: 1, DoubleBuffer: true}})
	if double.TotalBRAM36() != 2*single.TotalBRAM36() {
		t.Errorf("double buffering: %d vs %d", double.TotalBRAM36(), single.TotalBRAM36())
	}
}

func TestAllocateRejectsInvalid(t *testing.T) {
	if _, err := Allocate([]ArraySpec{{Name: "bad", Words: -1, WordBits: 32}}); err == nil {
		t.Error("negative words must fail")
	}
	if _, err := Allocate([]ArraySpec{{Name: "bad", Words: 10, WordBits: 0}}); err == nil {
		t.Error("zero width must fail")
	}
	if _, err := Allocate([]ArraySpec{{Name: "wide", Words: 5000, WordBits: 128, Partitions: 1}}); err == nil {
		t.Error("unmappable width must fail")
	}
}

func TestCoreMemoryMapScaling(t *testing.T) {
	m32, err := CoreMemoryMap(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	m256, err := CoreMemoryMap(5, 256)
	if err != nil {
		t.Fatal(err)
	}
	// P dominates: the map's BRAM demand grows ~quadratically once banks
	// are deeper than one BRAM (bank granularity flattens the small end).
	if m256.TotalBRAM36() < 12*m32.TotalBRAM36() {
		t.Errorf("scaling: %d -> %d BRAMs", m32.TotalBRAM36(), m256.TotalBRAM36())
	}
	// At the paper's mid design points the map lands within one interface
	// BRAM of synthesized Table 3 (16 at 64 units, 64 at 128 units).
	m64, err := CoreMemoryMap(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := m64.TotalBRAM36(); got < 16 || got > 17 {
		t.Errorf("64-unit map = %d BRAM36, Table 3 says 16", got)
	}
	m128, err := CoreMemoryMap(5, 128)
	if err != nil {
		t.Fatal(err)
	}
	if got := m128.TotalBRAM36(); got < 64 || got > 65 {
		t.Errorf("128-unit map = %d BRAM36, Table 3 says 64", got)
	}
	// The 256-unit map alone must exceed the xc7z020 — the first-principles
	// explanation of Table 3's missing row.
	if m256.TotalBRAM36() <= XC7Z020.BRAM36 {
		t.Errorf("256-unit core needs %d BRAMs, must exceed the device's %d",
			m256.TotalBRAM36(), XC7Z020.BRAM36)
	}
}

func TestCoreMemoryMapSmallArraysAreLUTRAM(t *testing.T) {
	m, err := CoreMemoryMap(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Placements {
		switch p.Array.Name {
		case "x":
			if p.BRAM36 != 0 {
				t.Errorf("%s must be LUTRAM", p.Array.Name)
			}
		case "P":
			if p.BRAM36 == 0 {
				t.Error("P must be block RAM")
			}
		}
	}
	out := m.String()
	if !strings.Contains(out, "P") || !strings.Contains(out, "LUTRAM") {
		t.Errorf("map rendering incomplete:\n%s", out)
	}
}
