package fpga

import "oselmrl/internal/timing"

// Kernel identifies one schedulable module invocation at the core's
// kernel boundary — the unit of work a dispatcher hands to a core. The
// fleet simulator (internal/fleet) schedules Kernels and charges their
// cycle cost without re-executing the fixed-point arithmetic; the cost
// comes from the same analytic formulas the Prof invariant pins against
// the executed datapath (PredictCycles/SeqTrainCycles), so simulated
// fleet time and executed single-core time agree cycle-exactly.
//
// Kernel is the module-level boundary (one AXI invocation); ProfKernel
// is the finer intra-module attribution (hidden_pass, gain, ...) inside
// one Kernel.
type Kernel uint8

// The two PL-resident module invocations of the paper's core (§4.2).
const (
	// KernelPredict is one predict-module invocation: y = h·β.
	KernelPredict Kernel = iota
	// KernelSeqTrain is one seq_train-module invocation: the rank-1
	// OS-ELM update (Eq. 5, k = 1).
	KernelSeqTrain
	// NumKernels sizes KernelCosts.
	NumKernels = 2
)

// String returns the paper's module name.
func (k Kernel) String() string {
	switch k {
	case KernelPredict:
		return "predict"
	case KernelSeqTrain:
		return "seq_train"
	}
	return "unknown"
}

// Phase maps a kernel to the timing phase its cycles are reported under
// in the Figure 5 breakdowns (both PL phases; init_train stays on the
// CPU and never crosses the kernel boundary).
func (k Kernel) Phase() timing.Phase {
	if k == KernelSeqTrain {
		return timing.PhaseSeqTrain
	}
	return timing.PhasePredictSeq
}

// KernelCosts is the kernel → cycle-cost table of one core: the number
// of datapath cycles one invocation of each kernel consumes, indexed by
// Kernel.
type KernelCosts [NumKernels]int64

// Cycles returns the cost of one invocation of k.
func (kc KernelCosts) Cycles(k Kernel) int64 { return kc[k] }

// KernelCycles returns the analytic cycle cost of one invocation of k on
// this core — the kernel-boundary interface the fleet simulator charges
// time through. It equals what executing the kernel on the datapath
// counts (asserted by the Prof invariant tests and the fleet N=1
// property test).
func (c *Core) KernelCycles(k Kernel) int64 {
	if k == KernelSeqTrain {
		return c.SeqTrainCycles()
	}
	return c.PredictCycles()
}

// KernelCosts returns the core's full kernel → cycle-cost table.
func (c *Core) KernelCosts() KernelCosts {
	return KernelCosts{
		KernelPredict:  c.PredictCycles(),
		KernelSeqTrain: c.SeqTrainCycles(),
	}
}

// AnalyticKernelCosts returns the kernel cost table for a core of the
// given dimensions without allocating its BRAM state — the cycle
// formulas depend only on dimensions and the cycle model (they are
// QFormat-invariant: only the binary point moves, not the operation
// schedule).
func AnalyticKernelCosts(inputSize, hiddenSize, outputSize int, model CycleModel) KernelCosts {
	n, h, m := int64(inputSize), int64(hiddenSize), int64(outputSize)
	am := model.Add + model.Mul
	predict := model.InvokeOverhead + h*n*am + m*h*am
	seq := model.InvokeOverhead + h*n*am + h*h*am + h*am + model.Div +
		h*model.Mul + h*h*am + m*(h*am+model.Add+h*am)
	return KernelCosts{KernelPredict: predict, KernelSeqTrain: seq}
}
