package fpga

import (
	"testing"

	"oselmrl/internal/fixed"
)

// profProbe returns a deterministic input vector on q's grid.
func profProbe(q fixed.QFormat, n int) []fixed.Fixed {
	x := make([]fixed.Fixed, n)
	for i := range x {
		x[i] = q.FromFloat(float64(i%5-2) / 8)
	}
	return x
}

// TestProfAttributionMatchesAnalytic is the profiler's load-bearing
// property test: for every QFormat × hidden size × cycle model, the
// measured per-kernel attribution of one predict and one (accepted)
// seq_train must equal the analytic PredictKernelCycles /
// SeqTrainKernelCycles breakdowns exactly, and the total attributed
// cycles must equal Core.Cycles() — the profiler cross-checks the cycle
// model, not just samples it.
func TestProfAttributionMatchesAnalytic(t *testing.T) {
	models := []struct {
		name  string
		model CycleModel
	}{
		{"default", DefaultCycleModel()},
		{"pipelined", PipelinedCycleModel()},
	}
	for _, m := range models {
		for _, q := range []fixed.QFormat{fixed.Q16, fixed.Q20, fixed.Q24} {
			for _, hidden := range []int{32, 64, 128, 192} {
				c := NewCoreQ(5, hidden, 1, m.model, q)
				c.EnableProfiling()
				x := profProbe(q, 5)

				before := *c.Prof()
				c.Predict(x)
				d := c.Prof().Delta(before)
				want := c.PredictKernelCycles()
				for k := ProfKernel(0); k < NumProfKernels; k++ {
					if got := d.KernelCycles(ProfPredict, k); got != want[k] {
						t.Errorf("%s/%v/h=%d: predict kernel %v = %d cycles, analytic %d",
							m.name, q, hidden, k, got, want[k])
					}
				}
				if got := d.TotalCycles(); got != c.PredictCycles() {
					t.Errorf("%s/%v/h=%d: predict attributed %d cycles, analytic %d",
						m.name, q, hidden, got, c.PredictCycles())
				}

				before = *c.Prof()
				c.SeqTrain(x, []fixed.Fixed{q.FromFloat(0.25)})
				if c.DenomGuardTrips() != 0 {
					t.Fatalf("%s/%v/h=%d: probe update tripped the guard", m.name, q, hidden)
				}
				d = c.Prof().Delta(before)
				want = c.SeqTrainKernelCycles()
				for k := ProfKernel(0); k < NumProfKernels; k++ {
					if got := d.KernelCycles(ProfSeqTrain, k); got != want[k] {
						t.Errorf("%s/%v/h=%d: seq_train kernel %v = %d cycles, analytic %d",
							m.name, q, hidden, k, got, want[k])
					}
				}
				if got := d.TotalCycles(); got != c.SeqTrainCycles() {
					t.Errorf("%s/%v/h=%d: seq_train attributed %d cycles, analytic %d",
						m.name, q, hidden, got, c.SeqTrainCycles())
				}

				// Whole-run invariant: every counted cycle is attributed.
				if got, cyc := c.Prof().TotalCycles(), c.Cycles(); got != cyc {
					t.Errorf("%s/%v/h=%d: ΣProf = %d, Cycles() = %d",
						m.name, q, hidden, got, cyc)
				}
			}
		}
	}
}

// TestProfAttributionOnTrainedCore repeats the invariant on a realistically
// loaded core (trained float model, mixed predict/seq_train traffic) so
// data-dependent paths cannot desynchronize counter and profile.
func TestProfAttributionOnTrainedCore(t *testing.T) {
	m := trainedFloatModel(t, 32)
	c := loadedCore(t, m)
	c.EnableProfiling()
	c.ResetCycles()
	for i := 0; i < 50; i++ {
		x := profProbe(fixed.Q20, 5)
		x[i%5] = fixed.FromFloat(float64(i)/64 - 0.4)
		c.Predict(x)
		c.Predict(x)
		c.SeqTrain(x, []fixed.Fixed{fixed.FromFloat(0.5)})
	}
	if got, cyc := c.Prof().TotalCycles(), c.Cycles(); got != cyc {
		t.Errorf("ΣProf = %d, Cycles() = %d", got, cyc)
	}
	if trips := c.DenomGuardTrips(); trips != 0 {
		t.Fatalf("healthy trained core tripped the guard %d times", trips)
	}
}

// TestGuardBailAttribution: a guard-rejected seq_train charges exactly the
// cycles that ran — the FSM bails after the denominator accumulation, so
// the gain kernel holds only the denom MACs (no divide, no g scaling) and
// the downdate/residual/beta_update kernels stay empty. ΣProf == Cycles()
// must hold for rejected updates too.
func TestGuardBailAttribution(t *testing.T) {
	core := corruptGoldenP()
	core.EnableProfiling()
	core.ResetCycles()
	x := []fixed.Fixed{fixed.FromFloat(0.5), fixed.FromFloat(-0.25), fixed.FromFloat(0.125)}
	core.SeqTrain(x, []fixed.Fixed{fixed.FromFloat(0.9)})
	if core.DenomGuardTrips() != 1 {
		t.Fatalf("DenomGuardTrips = %d, want 1", core.DenomGuardTrips())
	}
	p := core.Prof()
	if got, cyc := p.TotalCycles(), core.Cycles(); got != cyc {
		t.Errorf("rejected update: ΣProf = %d, Cycles() = %d", got, cyc)
	}
	model := DefaultCycleModel()
	wantGain := int64(4) * (model.Add + model.Mul) // denom MACs only (hidden=4)
	if got := p.KernelCycles(ProfSeqTrain, KernGain); got != wantGain {
		t.Errorf("rejected update: gain kernel %d cycles, want %d (denom only)", got, wantGain)
	}
	if div := p.Cycles(ProfSeqTrain, KernGain, UnitDiv); div != 0 {
		t.Errorf("rejected update charged %d divider cycles; the guard fires before the divide", div)
	}
	for _, k := range []ProfKernel{KernDowndate, KernResidual, KernBetaUpdate} {
		if got := p.KernelCycles(ProfSeqTrain, k); got != 0 {
			t.Errorf("rejected update charged %d cycles to %v; the FSM bailed before it", got, k)
		}
	}
}

// TestPredictSilentProfile: the silent probe must leave BOTH the cycle
// counter and the attribution profile untouched — an instrumentation-only
// read is invisible to the modelled device.
func TestPredictSilentProfile(t *testing.T) {
	core := goldenCore()
	core.EnableProfiling()
	x := []fixed.Fixed{fixed.FromFloat(0.5), fixed.FromFloat(-0.25), fixed.FromFloat(0.125)}
	core.SeqTrain(x, []fixed.Fixed{fixed.FromFloat(0.9)}) // nonzero profile first
	profBefore := *core.Prof()
	cyclesBefore := core.Cycles()

	silent := core.PredictSilent(x)

	if core.Cycles() != cyclesBefore {
		t.Errorf("PredictSilent moved the cycle counter: %d -> %d", cyclesBefore, core.Cycles())
	}
	if *core.Prof() != profBefore {
		t.Error("PredictSilent changed the attribution profile")
	}
	if !core.ProfilingEnabled() {
		t.Error("PredictSilent left the profiler detached")
	}
	// Same datapath result as the counted path.
	counted := core.Predict(x)
	for i := range counted {
		if silent[i] != counted[i] {
			t.Errorf("silent[%d] = %v, counted %v", i, silent[i], counted[i])
		}
	}
}

// TestResetCyclesResetsProfile: counter and attribution reset together, so
// the ΣProf == Cycles invariant survives a reset mid-run.
func TestResetCyclesResetsProfile(t *testing.T) {
	core := goldenCore()
	core.EnableProfiling()
	x := []fixed.Fixed{fixed.FromFloat(0.5), fixed.FromFloat(-0.25), fixed.FromFloat(0.125)}
	core.Predict(x)
	core.SeqTrain(x, []fixed.Fixed{fixed.FromFloat(0.9)})
	if core.Prof().TotalCycles() == 0 {
		t.Fatal("profile empty before reset")
	}
	core.ResetCycles()
	if core.Cycles() != 0 {
		t.Errorf("Cycles() = %d after reset", core.Cycles())
	}
	if got := core.Prof().TotalCycles(); got != 0 {
		t.Errorf("profile holds %d cycles after ResetCycles", got)
	}
	core.Predict(x)
	if got, cyc := core.Prof().TotalCycles(), core.Cycles(); got != cyc {
		t.Errorf("post-reset: ΣProf = %d, Cycles() = %d", got, cyc)
	}
}

// TestProfilingDoesNotPerturbDatapath: enabling the profiler changes no
// datapath result and no cycle count — it only observes.
func TestProfilingDoesNotPerturbDatapath(t *testing.T) {
	plain := goldenCore()
	profiled := goldenCore()
	profiled.EnableProfiling()
	x := []fixed.Fixed{fixed.FromFloat(0.5), fixed.FromFloat(-0.25), fixed.FromFloat(0.125)}
	tgt := []fixed.Fixed{fixed.FromFloat(0.9)}
	for i := 0; i < 20; i++ {
		a := plain.Predict(x)
		b := profiled.Predict(x)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("step %d: predict diverged: %v vs %v", i, a[j], b[j])
			}
		}
		plain.SeqTrain(x, tgt)
		profiled.SeqTrain(x, tgt)
	}
	if plain.Cycles() != profiled.Cycles() {
		t.Errorf("cycle counts diverged: plain %d, profiled %d", plain.Cycles(), profiled.Cycles())
	}
	for j := 0; j < 4; j++ {
		if plain.Beta.At(j, 0) != profiled.Beta.At(j, 0) {
			t.Errorf("β[%d] diverged under profiling", j)
		}
	}
}

// TestProfBRAMCounts pins the per-bank access model for one predict and
// one seq_train on a 5-input, 8-hidden, 1-output core.
func TestProfBRAMCounts(t *testing.T) {
	const in, hid, out = 5, 8, 1
	c := NewCore(in, hid, out, DefaultCycleModel())
	c.EnableProfiling()
	x := profProbe(fixed.Q20, in)
	c.Predict(x)
	c.SeqTrain(x, []fixed.Fixed{fixed.FromFloat(0.25)})
	if c.DenomGuardTrips() != 0 {
		t.Fatal("probe update tripped the guard")
	}

	// Two hidden passes (predict + seq_train) plus each module's own traffic.
	want := map[Bank]map[BankOp]int64{
		BankX:     {BankWrite: 2 * in, BankRead: 2 * in * hid},
		BankAlpha: {BankRead: 2 * in * hid},
		BankBias:  {BankRead: 2 * hid},
		BankH:     {BankWrite: 2 * hid, BankRead: out*hid + hid*hid + hid + out*hid},
		BankP:     {BankRead: 2 * hid * hid, BankWrite: hid * hid},
		BankPt:    {BankWrite: hid * hid},
		BankPH:    {BankWrite: hid, BankRead: hid + hid + hid*hid},
		BankBeta:  {BankRead: out*hid + 2*out*hid, BankWrite: out * hid},
	}
	for bank := Bank(0); bank < NumBanks; bank++ {
		for op := BankOp(0); op < NumBankOps; op++ {
			if got := c.Prof().BRAM(bank, op); got != want[bank][op] {
				t.Errorf("bram %v %v = %d, want %d", bank, op, got, want[bank][op])
			}
		}
	}
}

// TestLoadFloatBRAMWrites: the DMA load charges zero cycles but records
// the parameter-load writes, including the transposed P copy.
func TestLoadFloatBRAMWrites(t *testing.T) {
	m := trainedFloatModel(t, 16)
	c := NewCore(5, 16, 1, DefaultCycleModel())
	c.EnableProfiling()
	c.LoadFloat(m.Alpha, m.Bias, m.Beta, m.P)
	if c.Cycles() != 0 {
		t.Errorf("LoadFloat charged %d datapath cycles", c.Cycles())
	}
	if got := c.Prof().TotalCycles(); got != 0 {
		t.Errorf("LoadFloat attributed %d cycles", got)
	}
	for _, tc := range []struct {
		bank Bank
		want int64
	}{
		{BankAlpha, 5 * 16}, {BankBias, 16}, {BankBeta, 16}, {BankP, 16 * 16}, {BankPt, 16 * 16},
	} {
		if got := c.Prof().BRAM(tc.bank, BankWrite); got != tc.want {
			t.Errorf("load writes to %v = %d, want %d", tc.bank, got, tc.want)
		}
	}
}

// TestNoteTheta2Sync records the target-sync β reads under the
// theta2_sync phase without touching the cycle counter.
func TestNoteTheta2Sync(t *testing.T) {
	core := goldenCore()
	core.EnableProfiling()
	before := core.Cycles()
	core.NoteTheta2Sync()
	if core.Cycles() != before {
		t.Error("NoteTheta2Sync charged datapath cycles")
	}
	if got := core.Prof().BRAM(BankBeta, BankRead); got != 4 { // hidden=4, out=1
		t.Errorf("theta2 sync β reads = %d, want 4", got)
	}
}

// TestDisabledProfilerAllocs: with profiling off, the hot path allocates
// exactly as much as before the profiler existed — the off state must
// cost zero extra bytes (the benchmark pair pins cycles-level overhead).
func TestDisabledProfilerAllocs(t *testing.T) {
	x := []fixed.Fixed{fixed.FromFloat(0.5), fixed.FromFloat(-0.25), fixed.FromFloat(0.125)}
	tgt := []fixed.Fixed{fixed.FromFloat(0.1)}

	off := goldenCore()
	allocsOff := testing.AllocsPerRun(100, func() { off.SeqTrain(x, tgt) })
	on := goldenCore()
	on.EnableProfiling()
	allocsOn := testing.AllocsPerRun(100, func() { on.SeqTrain(x, tgt) })

	// SeqTrain's only allocation is the gain scratch vector; the profiler
	// must add none in either state.
	if allocsOff != allocsOn {
		t.Errorf("profiler changed SeqTrain allocations: off %v, on %v", allocsOff, allocsOn)
	}
	if allocsOff > 1 {
		t.Errorf("SeqTrain allocates %v objects/op; expected at most the gain scratch", allocsOff)
	}
}

// BenchmarkSeqTrainProfilerOff/On: the pair the perf gate watches — the
// profiler-off path must be indistinguishable from the pre-profiler core,
// and the on path's overhead stays bounded (a few counter increments per
// kernel plus two stores per op).
func benchmarkSeqTrainProf(b *testing.B, profile bool) {
	c := NewCore(5, 32, 1, DefaultCycleModel())
	if profile {
		c.EnableProfiling()
	}
	x := profProbe(fixed.Q20, 5)
	tgt := []fixed.Fixed{fixed.FromFloat(0.25)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SeqTrain(x, tgt)
	}
}

func BenchmarkSeqTrainProfilerOff(b *testing.B) { benchmarkSeqTrainProf(b, false) }
func BenchmarkSeqTrainProfilerOn(b *testing.B)  { benchmarkSeqTrainProf(b, true) }
