package fpga

import (
	"math"
	"testing"
)

func TestBusTransferAccounting(t *testing.T) {
	b := DefaultBus()
	d := b.TransferWords(1000)
	// 1000 words = 500 beats at 70e6 beats/s + 5us setup.
	want := 5e-6 + 500.0/70e6
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("duration = %v want %v", d, want)
	}
	if b.TotalWords() != 1000 || b.TotalTransfers() != 1 {
		t.Error("accounting wrong")
	}
	b.TransferWords(1) // one word still costs one beat + setup
	if b.TotalTransfers() != 2 {
		t.Error("transfer count")
	}
}

func TestBusZeroTransferCostsSetupOnly(t *testing.T) {
	b := DefaultBus()
	if d := b.TransferWords(0); d != b.SetupSec {
		t.Errorf("empty transfer = %v", d)
	}
}

func TestBusNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultBus().TransferWords(-1)
}

func TestLoadCoreParametersScales(t *testing.T) {
	b := DefaultBus()
	small := NewCore(5, 32, 1, DefaultCycleModel())
	large := NewCore(5, 192, 1, DefaultCycleModel())
	ds := b.TransferWords(small.BRAMWords())
	dl := b.TransferWords(large.BRAMWords())
	// P dominates: the 192-unit load is ~36x the 32-unit one in words, so
	// well over 10x in time despite the fixed setup.
	if dl < 10*(ds-b.SetupSec) {
		t.Errorf("large load %v vs small %v", dl, ds)
	}
	// Absolute scale sanity: the 192-unit parameter set is ~38k words
	// (~150 KB), loading in well under 10 ms on the HP port.
	if dl > 0.01 {
		t.Errorf("192-unit load = %v s, implausibly slow", dl)
	}
	b2 := DefaultBus()
	if got := b2.LoadCoreParameters(large); math.Abs(got-dl) > 1e-9 {
		t.Error("LoadCoreParameters must equal TransferWords(BRAMWords)")
	}
}
