// Package fpga simulates the paper's PYNQ-Z1 implementation (§4.2): the
// OS-ELM Q-Network's predict and seq_train modules realized in 32-bit
// fixed point on the programmable logic at 125 MHz, with initial training
// on the Cortex-A9 CPU. The paper fixes the format to Q20; the simulator
// parameterizes it (NewCoreQ/NewAgentQ take any Qm.f format) with Q20 as
// the default. The simulator is bit-accurate — every add, mul and div
// goes through internal/fixed's saturating Qm.f arithmetic — and
// cycle-counted: the paper's core has "only a single add, mult, and div
// unit", so datapath cycles are the sequential operation count (divides
// take an iterative divider's latency). Cycle counts and BRAM/DSP/FF/LUT
// resources are format-invariant: only the binary point moves, the 32-bit
// word and the operation schedule do not.
//
// The package also models the core's FPGA resource utilization
// (BRAM/DSP/FF/LUT of an xc7z020, paper Table 3), including the result
// that a 256-unit design does not fit the device.
package fpga

import (
	"fmt"

	"oselmrl/internal/fixed"
	"oselmrl/internal/mat"
)

// CycleModel holds per-operation latencies of the single-unit datapath.
type CycleModel struct {
	// Add, Mul are 1-cycle pipelined units; Div is an iterative divider.
	Add, Mul, Div int64
	// InvokeOverhead is the control/handshake cost per module invocation.
	InvokeOverhead int64
}

// DefaultCycleModel matches a simple non-pipelined datapath: each add and
// multiply issues on its own cycle through the single shared units, a
// 32-cycle radix-2 divider, and a small FSM overhead per invocation.
func DefaultCycleModel() CycleModel {
	return CycleModel{Add: 1, Mul: 1, Div: 32, InvokeOverhead: 16}
}

// PipelinedCycleModel models a fused multiply-accumulate pipeline at
// initiation interval 1: one MAC issues per cycle, so the multiply's
// cycle is absorbed into the accumulating add (Mul = 0, Add = 1). The
// divider and FSM costs are unchanged. This is the II=1 design a Vivado
// HLS `pipeline` pragma produces and roughly halves seq_train cycles
// relative to DefaultCycleModel — an ablation on the paper's "single add,
// mult, and div unit" statement.
func PipelinedCycleModel() CycleModel {
	return CycleModel{Add: 1, Mul: 0, Div: 32, InvokeOverhead: 16}
}

// Core is the fixed-point OS-ELM datapath: the on-chip state (α, b, β, P
// in BRAM) plus cycle accounting.
type Core struct {
	// Alpha is the n×Ñ input weight BRAM.
	Alpha *fixed.Matrix
	// Bias is the Ñ-entry bias BRAM.
	Bias []fixed.Fixed
	// Beta is the Ñ×m output weight BRAM.
	Beta *fixed.Matrix
	// P is the Ñ×Ñ inverse-covariance BRAM.
	P *fixed.Matrix

	inputSize, hiddenSize, outputSize int

	model  CycleModel
	cycles int64

	// q is the Qm.f arithmetic context (normalized; Q20 by default); one
	// is 1.0 in that format, cached because the seq_train inner loop and
	// the denominator guard compare against it every update.
	q   fixed.QFormat
	one fixed.Fixed

	// denomFloor is the seq_train denominator guard threshold (one half,
	// i.e. 0.5 in the core's format). The Eq. 5 scalar 1 + h·P·hᵀ stays
	// ≥ 1 while P is positive semi-definite; quantization jitter can
	// nibble a few LSBs below 1, but a drop past 0.5 means P has been
	// saturated or poisoned and the reciprocal would amplify garbage.
	denomFloor fixed.Fixed
	// denomGuardTrips counts seq_train updates rejected by the guard.
	denomGuardTrips int64

	// scratch vectors model the working BRAMs (h and P·h).
	h  []fixed.Fixed
	ph []fixed.Fixed

	// Numeric-health accounting. acct is the active accumulator during a
	// module invocation (acctPredict inside Predict, acctSeq inside
	// SeqTrain); acctConv accounts the LoadFloat quantization boundary.
	// All nil when accounting is off — the datapath then pays one nil
	// check per op and nothing else (pinned by the disabled-path tests).
	acct        *fixed.Acct
	acctPredict *fixed.Acct
	acctSeq     *fixed.Acct
	acctConv    *fixed.Acct

	// Device-level cycle profiler (prof.go); nil when profiling is off.
	// Kernels bulk-charge their deterministic loop totals at kernel
	// boundaries (Prof.charge is nil-safe), so the per-op hot path —
	// add/mul/div below — carries no profiler code at all and stays
	// inlinable. profPhase is the module being executed, set by
	// enterModule and read by the shared hidden() pass.
	prof      *Prof
	profPhase ProfPhase
}

// NewCore allocates a core for the given dimensions in the default Q20
// format.
func NewCore(inputSize, hiddenSize, outputSize int, model CycleModel) *Core {
	return NewCoreQ(inputSize, hiddenSize, outputSize, model, fixed.QFormat{})
}

// NewCoreQ allocates a core whose datapath runs in the given Qm.f format.
// The zero format is the Q20 default, bit-identical to NewCore.
func NewCoreQ(inputSize, hiddenSize, outputSize int, model CycleModel, q fixed.QFormat) *Core {
	if inputSize <= 0 || hiddenSize <= 0 || outputSize <= 0 {
		panic(fmt.Sprintf("fpga: invalid core dimensions %d/%d/%d", inputSize, hiddenSize, outputSize))
	}
	q = q.Normalized()
	one := q.One()
	return &Core{
		Alpha:      fixed.NewMatrixQ(inputSize, hiddenSize, q),
		Bias:       make([]fixed.Fixed, hiddenSize),
		Beta:       fixed.NewMatrixQ(hiddenSize, outputSize, q),
		P:          fixed.NewMatrixQ(hiddenSize, hiddenSize, q),
		inputSize:  inputSize,
		hiddenSize: hiddenSize,
		outputSize: outputSize,
		q:          q,
		one:        one,
		denomFloor: one / 2,
		model:      model,
		h:          make([]fixed.Fixed, hiddenSize),
		ph:         make([]fixed.Fixed, hiddenSize),
	}
}

// Format returns the core's Qm.f arithmetic format.
func (c *Core) Format() fixed.QFormat { return c.q }

// DenomGuardTrips returns how many seq_train updates the denominator
// guard rejected (see SeqTrain).
func (c *Core) DenomGuardTrips() int64 { return c.denomGuardTrips }

// LoadFloat quantizes float64 parameters into the core's BRAMs — the DMA
// transfer after the CPU-side initial training. With accounting enabled
// the conversion accumulator records NaN coercions, rail saturations and
// quantization error of every loaded parameter. The load charges no
// datapath cycles (the bulk transfer rides the CPU-side timing profile),
// but with profiling enabled its BRAM writes are recorded under the load
// phase — including the transposed P copy (the Pt bank) the real design
// fills alongside P.
func (c *Core) LoadFloat(alpha *mat.Dense, bias []float64, beta, p *mat.Dense) {
	c.Alpha = fixed.FromDenseQ(alpha, c.q, c.acctConv)
	for i, b := range bias {
		c.Bias[i] = c.acctConv.FromFloatQ(c.q, b)
	}
	c.Beta = fixed.FromDenseQ(beta, c.q, c.acctConv)
	c.P = fixed.FromDenseQ(p, c.q, c.acctConv)
	n, h, m := int64(c.inputSize), int64(c.hiddenSize), int64(c.outputSize)
	c.prof.access(BankAlpha, BankWrite, n*h)
	c.prof.access(BankBias, BankWrite, h)
	c.prof.access(BankBeta, BankWrite, h*m)
	c.prof.access(BankP, BankWrite, h*h)
	c.prof.access(BankPt, BankWrite, h*h)
}

// EnableAccounting attaches per-module numeric-health accumulators:
// predict-module ops, seq_train-module ops and LoadFloat conversions are
// accounted separately so saturation and quantization-error metrics stay
// attributable to their phase. Accounting changes no datapath result and
// no cycle count (asserted by the golden-vector test); it only observes.
func (c *Core) EnableAccounting() {
	c.acctPredict = &fixed.Acct{}
	c.acctSeq = &fixed.Acct{}
	c.acctConv = &fixed.Acct{}
}

// AccountingEnabled reports whether EnableAccounting has been called.
func (c *Core) AccountingEnabled() bool { return c.acctPredict != nil }

// PredictAcct returns the predict-module accumulator (nil when accounting
// is off).
func (c *Core) PredictAcct() *fixed.Acct { return c.acctPredict }

// SeqTrainAcct returns the seq_train-module accumulator (nil when
// accounting is off).
func (c *Core) SeqTrainAcct() *fixed.Acct { return c.acctSeq }

// ConvAcct returns the LoadFloat conversion accumulator (nil when
// accounting is off).
func (c *Core) ConvAcct() *fixed.Acct { return c.acctConv }

// EnableProfiling attaches the device-level cycle profiler: every cycle
// charged from here on is attributed along (phase × kernel × unit) and
// BRAM bank accesses are counted. Like accounting, profiling changes no
// datapath result and no cycle count — it only observes (asserted by
// TestProfilingDoesNotPerturbDatapath).
func (c *Core) EnableProfiling() {
	if c.prof == nil {
		c.prof = &Prof{}
	}
}

// ProfilingEnabled reports whether EnableProfiling has been called.
func (c *Core) ProfilingEnabled() bool { return c.prof != nil }

// Prof returns the attribution profile (nil when profiling is off). The
// returned profile is live — snapshot it with a struct copy.
func (c *Core) Prof() *Prof { return c.prof }

// NoteTheta2Sync records the BRAM traffic of the θ2 ← θ1 target sync
// (the agent cloning the β bank): one read per β word under the
// theta2_sync phase. The sync costs no datapath cycles in this model —
// the copy rides the double-buffered β bank's second port.
func (c *Core) NoteTheta2Sync() {
	c.prof.access(BankBeta, BankRead, int64(c.hiddenSize)*int64(c.outputSize))
}

// Cycles returns the datapath cycles consumed so far.
func (c *Core) Cycles() int64 { return c.cycles }

// ResetCycles zeroes the cycle counter and, when profiling is enabled,
// the attribution profile — the two must stay in lockstep for the
// attribution invariant (ΣProf == Cycles) to hold.
func (c *Core) ResetCycles() {
	c.cycles = 0
	c.prof.Reset()
}

// InputSize returns n.
func (c *Core) InputSize() int { return c.inputSize }

// HiddenSize returns Ñ.
func (c *Core) HiddenSize() int { return c.hiddenSize }

// OutputSize returns m.
func (c *Core) OutputSize() int { return c.outputSize }

// enterModule marks a module invocation for the profiler: sets the phase
// and charges the FSM invocation overhead to (phase, overhead, invoke).
func (c *Core) enterModule(ph ProfPhase) {
	c.profPhase = ph
	c.cycles += c.model.InvokeOverhead
	c.prof.charge(ph, KernOverhead, UnitInvoke, c.model.InvokeOverhead, 1)
}

// chargeMACs attributes one kernel's n multiply-accumulates (n adds + n
// muls through the shared units) to the profiler. The MAC count of every
// kernel loop is fixed by the core's dimensions, so charging the bulk
// total at the kernel boundary is exact — and keeps add/mul below free of
// profiler code.
func (c *Core) chargeMACs(k ProfKernel, n int64) {
	c.prof.charge(c.profPhase, k, UnitAdd, n*c.model.Add, n)
	c.prof.charge(c.profPhase, k, UnitMul, n*c.model.Mul, n)
}

func (c *Core) add(a, b fixed.Fixed) fixed.Fixed {
	c.cycles += c.model.Add
	return c.acct.Add(a, b)
}

func (c *Core) sub(a, b fixed.Fixed) fixed.Fixed {
	c.cycles += c.model.Add
	return c.acct.Sub(a, b)
}

func (c *Core) mul(a, b fixed.Fixed) fixed.Fixed {
	c.cycles += c.model.Mul
	return c.acct.MulQ(c.q, a, b)
}

func (c *Core) div(a, b fixed.Fixed) fixed.Fixed {
	c.cycles += c.model.Div
	return c.acct.DivQ(c.q, a, b)
}

// hidden computes h = ReLU(x·α + b) into c.h. The caller has set the
// profiler phase (enterModule) — the hidden pass itself charges the
// hidden_pass kernel and the x/α/bias/h bank traffic: the input DMA'd
// into the x bank once, then x and α streamed once per MAC.
func (c *Core) hidden(x []fixed.Fixed) {
	if len(x) != c.inputSize {
		panic(fmt.Sprintf("fpga: input length %d, core expects %d", len(x), c.inputSize))
	}
	for j := 0; j < c.hiddenSize; j++ {
		acc := c.Bias[j]
		for i := 0; i < c.inputSize; i++ {
			acc = c.add(acc, c.mul(x[i], c.Alpha.At(i, j)))
		}
		c.h[j] = fixed.ReLU(acc) // comparator, no arithmetic-unit cycle
	}
	n, h := int64(c.inputSize), int64(c.hiddenSize)
	c.chargeMACs(KernHiddenPass, n*h)
	c.prof.access(BankX, BankWrite, n)
	c.prof.access(BankX, BankRead, n*h)
	c.prof.access(BankAlpha, BankRead, n*h)
	c.prof.access(BankBias, BankRead, h)
	c.prof.access(BankH, BankWrite, h)
}

// Predict runs the predict module: y = h·β for one input vector. The
// output pass is attributed to the residual kernel — it is the same h·β
// dot product the seq_train residual evaluates.
func (c *Core) Predict(x []fixed.Fixed) []fixed.Fixed {
	c.acct = c.acctPredict
	c.enterModule(ProfPredict)
	c.hidden(x)
	out := make([]fixed.Fixed, c.outputSize)
	for o := 0; o < c.outputSize; o++ {
		var acc fixed.Fixed
		for j := 0; j < c.hiddenSize; j++ {
			acc = c.add(acc, c.mul(c.h[j], c.Beta.At(j, o)))
		}
		out[o] = acc
	}
	hn, m := int64(c.hiddenSize), int64(c.outputSize)
	c.chargeMACs(KernResidual, m*hn)
	c.prof.access(BankH, BankRead, m*hn)
	c.prof.access(BankBeta, BankRead, m*hn)
	return out
}

// PredictFloat is Predict with float64 conversion at the boundary (the
// AXI interface quantizes observations on the way in).
func (c *Core) PredictFloat(x []float64) []float64 {
	in := make([]fixed.Fixed, len(x))
	for i, v := range x {
		in[i] = c.q.FromFloat(v)
	}
	out := c.Predict(in)
	res := make([]float64, len(out))
	for i, v := range out {
		res[i] = c.q.Float(v)
	}
	return res
}

// PredictUsing runs the predict datapath with an alternative output-weight
// BRAM — the target network θ2's β, which shares α and b with θ1 (α is
// frozen; only β is trained). Cycle cost is identical to Predict.
func (c *Core) PredictUsing(beta *fixed.Matrix, x []fixed.Fixed) []fixed.Fixed {
	saved := c.Beta
	c.Beta = beta
	out := c.Predict(x)
	c.Beta = saved
	return out
}

// PredictSilent evaluates the predict datapath WITHOUT modelling it: the
// cycle counter is saved and restored around the call, the accounting
// accumulator is snapshotted and rolled back, and the profiler is
// detached for the duration (cheaper than copying its attribution grid),
// so the call is invisible to the timing model, the numeric-health
// metrics AND the cycle-attribution profile — keeping the ΣProf ==
// Cycles invariant intact. It exists for observability probes (e.g.
// measuring the post-update TD error) that the real hardware would not
// execute — an instrumentation-only read must not perturb the modelled
// device (asserted by TestPredictSilent / TestPredictSilentProfile).
func (c *Core) PredictSilent(x []fixed.Fixed) []fixed.Fixed {
	savedCycles := c.cycles
	savedProf := c.prof
	c.prof = nil
	var savedAcct fixed.Acct
	if c.acctPredict != nil {
		savedAcct = *c.acctPredict
	}
	out := c.Predict(x)
	c.cycles = savedCycles
	c.prof = savedProf
	if c.acctPredict != nil {
		*c.acctPredict = savedAcct
	}
	return out
}

// SeqTrain runs the seq_train module: one rank-1 OS-ELM update (Eq. 5 with
// k = 1, the scalar-reciprocal form) entirely in Q20 fixed point:
//
//	h   = ReLU(x·α + b)
//	ph  = P·hᵀ
//	s   = 1 / (1 + h·ph)     ← the single divide that replaced SVD/QRD
//	P  -= (s·ph)·phᵀ
//	e   = t − h·β
//	β  += (s·ph)·e
//
// Denominator guard: with P positive semi-definite the scalar 1 + h·P·hᵀ
// is ≥ 1, but a saturated/poisoned P can drive it toward 0, where the
// reciprocal silently saturates to the rail and the rank-1 downdate
// shreds P and β. If the denominator falls below 0.5 (quantization jitter
// alone cannot take it that low) the update is rejected: state is left
// untouched, DenomGuardTrips increments, and the agent surfaces the trip
// as a numeric_alert-style event. A rejected update stops counting cycles
// at the point of rejection — the hardware FSM would bail the same way.
func (c *Core) SeqTrain(x []fixed.Fixed, t []fixed.Fixed) {
	if len(t) != c.outputSize {
		panic(fmt.Sprintf("fpga: target length %d, core expects %d", len(t), c.outputSize))
	}
	c.acct = c.acctSeq
	c.enterModule(ProfSeqTrain)
	c.hidden(x)
	n := c.hiddenSize
	nn := int64(n) * int64(n)

	// ph = P·hᵀ
	for i := 0; i < n; i++ {
		var acc fixed.Fixed
		for j := 0; j < n; j++ {
			acc = c.add(acc, c.mul(c.P.At(i, j), c.h[j]))
		}
		c.ph[i] = acc
	}
	c.chargeMACs(KernPH, nn)
	c.prof.access(BankP, BankRead, nn)
	c.prof.access(BankH, BankRead, nn)
	c.prof.access(BankPH, BankWrite, int64(n))

	// denom = 1 + h·ph ; s = 1/denom (the gain kernel's scalar path).
	// The denominator MACs are charged before the guard check so a
	// rejected update's attribution still covers exactly the work that ran.
	denom := c.one
	for j := 0; j < n; j++ {
		denom = c.add(denom, c.mul(c.h[j], c.ph[j]))
	}
	c.chargeMACs(KernGain, int64(n))
	c.prof.access(BankH, BankRead, int64(n))
	c.prof.access(BankPH, BankRead, int64(n))
	if denom < c.denomFloor {
		// Guard bail: the FSM stops here, so only the work that actually
		// ran is charged — the attribution invariant holds for rejected
		// updates too (the analytic SeqTrainKernelCycles describes the
		// full, accepted update).
		c.denomGuardTrips++
		return
	}
	s := c.div(c.one, denom)
	c.prof.charge(ProfSeqTrain, KernGain, UnitDiv, c.model.Div, 1)

	// g = s·ph (the Kalman-style gain, reused for both P and β updates;
	// g lives in register/LUTRAM scratch, not a modelled BRAM bank)
	g := make([]fixed.Fixed, n)
	for i := 0; i < n; i++ {
		g[i] = c.mul(s, c.ph[i])
	}
	c.prof.charge(ProfSeqTrain, KernGain, UnitMul, int64(n)*c.model.Mul, int64(n))
	c.prof.access(BankPH, BankRead, int64(n))

	// P ← P − g·phᵀ. The transposed copy (Pt bank) is written alongside
	// P to keep the ping-pong pair coherent for the next iteration's
	// column sweep.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c.P.Set(i, j, c.sub(c.P.At(i, j), c.mul(g[i], c.ph[j])))
		}
	}
	c.chargeMACs(KernDowndate, nn)
	c.prof.access(BankP, BankRead, nn)
	c.prof.access(BankPH, BankRead, nn)
	c.prof.access(BankP, BankWrite, nn)
	c.prof.access(BankPt, BankWrite, nn)

	// e = t − h·β ; β ← β + g·e
	for o := 0; o < c.outputSize; o++ {
		var pred fixed.Fixed
		for j := 0; j < n; j++ {
			pred = c.add(pred, c.mul(c.h[j], c.Beta.At(j, o)))
		}
		e := c.sub(t[o], pred)
		for j := 0; j < n; j++ {
			c.Beta.Set(j, o, c.add(c.Beta.At(j, o), c.mul(g[j], e)))
		}
	}
	mn := int64(c.outputSize) * int64(n)
	c.chargeMACs(KernResidual, mn)
	// The residual's e = t − pred subtract: one extra add-unit op per output.
	c.prof.charge(ProfSeqTrain, KernResidual, UnitAdd, int64(c.outputSize)*c.model.Add, int64(c.outputSize))
	c.chargeMACs(KernBetaUpdate, mn)
	c.prof.access(BankH, BankRead, mn)
	c.prof.access(BankBeta, BankRead, 2*mn) // residual read + update read-modify-write
	c.prof.access(BankBeta, BankWrite, mn)
}

// SeqTrainFloat is SeqTrain with float64 conversion at the boundary.
func (c *Core) SeqTrainFloat(x []float64, t []float64) {
	in := make([]fixed.Fixed, len(x))
	for i, v := range x {
		in[i] = c.q.FromFloat(v)
	}
	tt := make([]fixed.Fixed, len(t))
	for i, v := range t {
		tt[i] = c.q.FromFloat(v)
	}
	c.SeqTrain(in, tt)
}

// PredictCycles returns the analytic cycle count of one predict call,
// which must match what the simulator actually counts (asserted in tests).
func (c *Core) PredictCycles() int64 {
	n, h, m := int64(c.inputSize), int64(c.hiddenSize), int64(c.outputSize)
	hiddenOps := h * n * (c.model.Add + c.model.Mul)
	outOps := m * h * (c.model.Add + c.model.Mul)
	return c.model.InvokeOverhead + hiddenOps + outOps
}

// SeqTrainCycles returns the analytic cycle count of one seq_train call.
func (c *Core) SeqTrainCycles() int64 {
	n, h, m := int64(c.inputSize), int64(c.hiddenSize), int64(c.outputSize)
	am := c.model.Add + c.model.Mul
	hiddenOps := h * n * am
	phOps := h * h * am
	denomOps := h * am
	divOps := c.model.Div
	gainOps := h * c.model.Mul
	pOps := h * h * am
	betaOps := m * (h*am + c.model.Add + h*am)
	return c.model.InvokeOverhead + hiddenOps + phOps + denomOps + divOps + gainOps + pOps + betaOps
}

// PredictKernelCycles returns the analytic per-kernel breakdown of one
// predict call, indexed by ProfKernel. The entries sum to
// PredictCycles() and match what the profiler measures (prof_test.go
// asserts both, for every QFormat and hidden size).
func (c *Core) PredictKernelCycles() [NumProfKernels]int64 {
	var out [NumProfKernels]int64
	n, h, m := int64(c.inputSize), int64(c.hiddenSize), int64(c.outputSize)
	am := c.model.Add + c.model.Mul
	out[KernOverhead] = c.model.InvokeOverhead
	out[KernHiddenPass] = h * n * am
	out[KernResidual] = m * h * am // the y = h·β output pass
	return out
}

// SeqTrainKernelCycles returns the analytic per-kernel breakdown of one
// complete (not guard-rejected) seq_train call, indexed by ProfKernel.
// The entries sum to SeqTrainCycles().
func (c *Core) SeqTrainKernelCycles() [NumProfKernels]int64 {
	var out [NumProfKernels]int64
	n, h, m := int64(c.inputSize), int64(c.hiddenSize), int64(c.outputSize)
	am := c.model.Add + c.model.Mul
	out[KernOverhead] = c.model.InvokeOverhead
	out[KernHiddenPass] = h * n * am
	out[KernPH] = h * h * am
	out[KernGain] = h*am + c.model.Div + h*c.model.Mul // denom + divide + g = s·ph
	out[KernDowndate] = h * h * am
	out[KernResidual] = m * (h*am + c.model.Add) // h·β dot + the e = t − pred subtract
	out[KernBetaUpdate] = m * h * am
	return out
}

// BRAMWords returns the number of 32-bit words of on-chip state the core
// holds — the input to the resource model.
func (c *Core) BRAMWords() int {
	return c.Alpha.Words() + len(c.Bias) + c.Beta.Words() + c.P.Words() +
		len(c.h) + len(c.ph) + c.inputSize
}
