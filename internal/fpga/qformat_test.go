package fpga

import (
	"testing"

	"oselmrl/internal/fixed"
	"oselmrl/internal/mat"
	"oselmrl/internal/obs"
	"oselmrl/internal/qnet"
	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
)

// goldenCoreQ is goldenCore built through the format-parameterized
// constructor.
func goldenCoreQ(q fixed.QFormat) *Core {
	core := NewCoreQ(3, 4, 1, DefaultCycleModel(), q)
	alphaVals := [][]float64{
		{0.25, -0.5, 0.125, 0.75},
		{-0.25, 0.5, 0.375, -0.125},
		{0.0625, 0.3125, -0.4375, 0.15625},
	}
	for i, row := range alphaVals {
		for j, v := range row {
			core.Alpha.Set(i, j, q.FromFloat(v))
		}
	}
	for j, v := range []float64{0.1, -0.2, 0.3, 0.05} {
		core.Bias[j] = q.FromFloat(v)
	}
	for j, v := range []float64{0.5, -0.25, 0.75, 0.125} {
		core.Beta.Set(j, 0, q.FromFloat(v))
	}
	for i := 0; i < 4; i++ {
		core.P.Set(i, i, q.FromFloat(2))
	}
	return core
}

// TestGoldenQ20ViaNewCoreQ pins the refactor's central guarantee: the
// parameterized constructor at Q20 (explicit or zero value) reproduces the
// pre-refactor golden vectors byte for byte.
func TestGoldenQ20ViaNewCoreQ(t *testing.T) {
	for _, q := range []fixed.QFormat{{}, fixed.Q20} {
		core := goldenCoreQ(q)
		if core.Format() != fixed.Q20 {
			t.Fatalf("Format() = %v, want Q20", core.Format())
		}
		x := []fixed.Fixed{fixed.FromFloat(0.5), fixed.FromFloat(-0.25), fixed.FromFloat(0.125)}
		if got, want := int32(core.Predict(x)[0]), int32(385537); got != want {
			t.Errorf("%v: predict = %d, want golden %d", q, got, want)
		}
		core.SeqTrain(x, []fixed.Fixed{fixed.FromFloat(0.9)})
		wantBeta := []int32{716094, -262144, 925466, 440092}
		for j := 0; j < 4; j++ {
			if got := int32(core.Beta.At(j, 0)); got != wantBeta[j] {
				t.Errorf("%v: beta[%d] = %d, want golden %d", q, j, got, wantBeta[j])
			}
		}
		wantPDiag := []int32{1884338, 2097152, 1985333, 1544757}
		for i := 0; i < 4; i++ {
			if got := int32(core.P.At(i, i)); got != wantPDiag[i] {
				t.Errorf("%v: P[%d][%d] = %d, want golden %d", q, i, i, got, wantPDiag[i])
			}
		}
		if got := core.Cycles(); got != core.PredictCycles()+core.SeqTrainCycles() {
			t.Errorf("%v: cycles = %d", q, got)
		}
	}
}

// TestFormatInvariants asserts what the format must NOT change: storage
// words, analytic cycle counts, the BRAM inventory's word widths and the
// Table 3 resource estimate are identical at every sweep format.
func TestFormatInvariants(t *testing.T) {
	ref := NewCore(5, 32, 1, DefaultCycleModel())
	for _, q := range []fixed.QFormat{fixed.Q16, fixed.Q20, fixed.Q24} {
		c := NewCoreQ(5, 32, 1, DefaultCycleModel(), q)
		if c.BRAMWords() != ref.BRAMWords() {
			t.Errorf("%v: BRAMWords = %d, want %d", q, c.BRAMWords(), ref.BRAMWords())
		}
		if c.PredictCycles() != ref.PredictCycles() || c.SeqTrainCycles() != ref.SeqTrainCycles() {
			t.Errorf("%v: cycle model changed with format", q)
		}
	}
	for _, a := range CoreArrays(5, 32) {
		if a.WordBits != 32 {
			t.Errorf("array %s: WordBits = %d, want 32 (storage is format-invariant)", a.Name, a.WordBits)
		}
	}
	// EstimateResources takes no format at all — Table 3 cannot vary.
	r := EstimateResources(5, 32)
	if !r.Feasible {
		t.Error("32-unit design must fit")
	}
}

// TestLoadFloatPerFormatPrecision: LoadFloat under each format quantizes
// within half an LSB of that format's grid.
func TestLoadFloatPerFormatPrecision(t *testing.T) {
	r := rng.New(7)
	alpha := mat.Zeros(3, 8)
	beta := mat.Zeros(8, 1)
	p := mat.Zeros(8, 8)
	for _, m := range []*mat.Dense{alpha, beta, p} {
		d := m.RawData()
		for i := range d {
			d[i] = r.Uniform(-2, 2)
		}
	}
	bias := make([]float64, 8)
	for i := range bias {
		bias[i] = r.Uniform(-1, 1)
	}
	for _, q := range []fixed.QFormat{fixed.Q16, fixed.Q20, fixed.Q24} {
		c := NewCoreQ(3, 8, 1, DefaultCycleModel(), q)
		c.LoadFloat(alpha, bias, beta, p)
		half := q.Resolution() / 2
		if got := c.Alpha.MaxAbsError(alpha); got > half {
			t.Errorf("%v: alpha error %g > %g", q, got, half)
		}
		if got := c.P.MaxAbsError(p); got > half {
			t.Errorf("%v: P error %g > %g", q, got, half)
		}
	}
}

// corruptGoldenP returns the golden core with a poisoned P: a strongly
// negative diagonal drives the Eq. 5 denominator 1 + h·P·hᵀ far below the
// 0.5 guard floor.
func corruptGoldenP() *Core {
	core := goldenCore()
	for i := 0; i < 4; i++ {
		core.P.Set(i, i, fixed.FromFloat(-100))
	}
	return core
}

// TestDenomGuardRejectsCorruptP is the satellite regression test: feeding
// a corrupted P into seq_train must trip the denominator guard, leave β
// and P untouched, and never reach the saturating reciprocal.
func TestDenomGuardRejectsCorruptP(t *testing.T) {
	core := corruptGoldenP()
	core.EnableAccounting()
	betaBefore := core.Beta.Clone()
	pBefore := core.P.Clone()

	x := []fixed.Fixed{fixed.FromFloat(0.5), fixed.FromFloat(-0.25), fixed.FromFloat(0.125)}
	core.SeqTrain(x, []fixed.Fixed{fixed.FromFloat(0.9)})

	if got := core.DenomGuardTrips(); got != 1 {
		t.Fatalf("DenomGuardTrips = %d, want 1", got)
	}
	for j := 0; j < 4; j++ {
		if core.Beta.At(j, 0) != betaBefore.At(j, 0) {
			t.Errorf("beta[%d] changed by a rejected update", j)
		}
		for i := 0; i < 4; i++ {
			if core.P.At(i, j) != pBefore.At(i, j) {
				t.Errorf("P[%d][%d] changed by a rejected update", i, j)
			}
		}
	}
	// The guard fires before the divide: without it, 1/denom would have
	// been accounted (and for denom→0⁻ would pin the negative rail).
	// The ops that did run are the hidden layer, ph and denom MACs only.
	if sat := core.SeqTrainAcct().Saturations; sat != 0 {
		t.Errorf("rejected update recorded %d saturations; guard must fire before the divide", sat)
	}
	// A healthy update on the same inputs (fresh golden core) must not trip.
	healthy := goldenCore()
	healthy.SeqTrain(x, []fixed.Fixed{fixed.FromFloat(0.9)})
	if healthy.DenomGuardTrips() != 0 {
		t.Error("healthy golden update tripped the guard")
	}
}

// recordSink captures emitted events for assertions.
type recordSink struct{ events []obs.Event }

func (s *recordSink) Write(ev *obs.Event) error { s.events = append(s.events, *ev); return nil }
func (s *recordSink) Close() error              { return nil }

// TestAgentDenomGuardAlert drives the guard through the agent: a poisoned
// P during online updates must surface as a fixed_denom_guard_trips
// counter and a numeric_alert event at the episode flush.
func TestAgentDenomGuardAlert(t *testing.T) {
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 8)
	cfg.Seed = 5
	cfg.Epsilon2 = 1 // update every step
	a := MustNewAgent(cfg, DefaultCycleModel())
	sink := &recordSink{}
	emitter := obs.NewEmitter(sink)
	a.SetObserver(emitter)

	s := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 8; i++ {
		if err := a.Observe(replay.Transition{State: s, NextState: s, Reward: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Trained() {
		t.Fatal("agent must be trained once D fills")
	}
	// Poison the loaded P and push one more update through Algorithm 1.
	for i := 0; i < 8; i++ {
		a.Core().P.Set(i, i, fixed.FromFloat(-100))
	}
	if err := a.Observe(replay.Transition{State: s, NextState: s, Reward: 0.1}); err != nil {
		t.Fatal(err)
	}
	if got := a.Core().DenomGuardTrips(); got != 1 {
		t.Fatalf("DenomGuardTrips = %d, want 1", got)
	}
	a.EndEpisode(1)

	snap := emitter.Metrics().Snapshot()
	if got := snap.Counters[obs.MetricFixedDenomGuard]; got != 1 {
		t.Errorf("counter %s = %d, want 1", obs.MetricFixedDenomGuard, got)
	}
	found := false
	for _, ev := range sink.events {
		if ev.Type == obs.EventNumericAlert && ev.Labels["rule"] == "seq_train_denom_guard" {
			found = true
		}
	}
	if !found {
		t.Error("no numeric_alert event with rule seq_train_denom_guard emitted")
	}

	// A second tripped update increments the counter but must not emit a
	// second alert (first-trip-only, like the watchdog's first-violation
	// alerts).
	if err := a.Observe(replay.Transition{State: s, NextState: s, Reward: 0.1}); err != nil {
		t.Fatal(err)
	}
	a.EndEpisode(2)
	alerts := 0
	for _, ev := range sink.events {
		if ev.Type == obs.EventNumericAlert {
			alerts++
		}
	}
	if alerts != 1 {
		t.Errorf("numeric_alert emitted %d times, want 1", alerts)
	}
	if got := emitter.Metrics().Snapshot().Counters[obs.MetricFixedDenomGuard]; got != 2 {
		t.Errorf("counter after second trip = %d, want 2", got)
	}
}

// TestAgentFormatThreading checks NewAgentQ wires the format end to end:
// the core, the θ2 matrix and the Format accessor all agree, and learning
// still runs at a non-default format.
func TestAgentFormatThreading(t *testing.T) {
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 8)
	cfg.Seed = 5
	cfg.Epsilon2 = 1
	a, err := NewAgentQ(cfg, DefaultCycleModel(), fixed.Q16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() != fixed.Q16 {
		t.Fatalf("Format = %v, want Q16", a.Format())
	}
	if a.Core().Format() != fixed.Q16 {
		t.Fatalf("core Format = %v, want Q16", a.Core().Format())
	}
	s := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 9; i++ {
		if err := a.Observe(replay.Transition{State: s, NextState: s, Reward: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Trained() {
		t.Fatal("Q16 agent must train")
	}
	// Reinitialize must preserve the format (fresh core, same context).
	a.Reinitialize()
	if a.Core().Format() != fixed.Q16 {
		t.Error("Reinitialize dropped the format")
	}
}
