package svgplot

import (
	"strings"
	"testing"
)

func TestLineChartRenders(t *testing.T) {
	c := &LineChart{
		Title:  "Training curve",
		XLabel: "episode",
		YLabel: "steps",
		Series: []Series{
			{Name: "OS-ELM-L2", X: []float64{1, 2, 3}, Y: []float64{10, 100, 195}},
			{Name: "raw", X: []float64{1, 2, 3}, Y: []float64{5, 150, 200}, Light: true},
		},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "polyline", "Training curve", "OS-ELM-L2", "episode", "steps"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in SVG", want)
		}
	}
	// Light series must not appear in the legend.
	if strings.Count(out, ">raw<") != 0 {
		t.Error("light series leaked into the legend")
	}
	// Two polylines: one per series.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d", got)
	}
}

func TestLineChartErrors(t *testing.T) {
	c := &LineChart{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := c.Render(); err == nil {
		t.Error("mismatched series must fail")
	}
	empty := &LineChart{}
	if _, err := empty.Render(); err == nil {
		t.Error("no data must fail")
	}
}

func TestLineChartDegenerateRanges(t *testing.T) {
	// Constant series: ranges must expand rather than divide by zero.
	c := &LineChart{Series: []Series{{Name: "flat", X: []float64{1, 1}, Y: []float64{5, 5}}}}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Error("degenerate range produced NaN/Inf coordinates")
	}
}

func TestBarChartRenders(t *testing.T) {
	c := &BarChart{
		Title:        "Execution time",
		YLabel:       "seconds",
		SegmentNames: []string{"seq_train", "predict_seq"},
		Bars: []Bar{
			{Label: "OS-ELM", Segments: []float64{60, 20}},
			{Label: "FPGA", Segments: []float64{5, 2}},
		},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "seq_train", "OS-ELM", "FPGA", "<rect"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// 4 segment rects + background + 2 legend swatches = at least 7 rects.
	if got := strings.Count(out, "<rect"); got < 7 {
		t.Errorf("rects = %d", got)
	}
}

func TestBarChartLogScale(t *testing.T) {
	c := &BarChart{
		SegmentNames: []string{"a"},
		Bars: []Bar{
			{Label: "small", Segments: []float64{1}},
			{Label: "big", Segments: []float64{1000}},
		},
		LogScale: true,
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "NaN") {
		t.Error("log scale produced NaN")
	}
}

func TestBarChartErrors(t *testing.T) {
	if _, err := (&BarChart{}).Render(); err == nil {
		t.Error("no bars must fail")
	}
	bad := &BarChart{SegmentNames: []string{"a", "b"}, Bars: []Bar{{Label: "x", Segments: []float64{1}}}}
	if _, err := bad.Render(); err == nil {
		t.Error("segment count mismatch must fail")
	}
	neg := &BarChart{SegmentNames: []string{"a"}, Bars: []Bar{{Label: "x", Segments: []float64{-1}}}}
	if _, err := neg.Render(); err == nil {
		t.Error("negative segment must fail")
	}
}

func TestEscape(t *testing.T) {
	c := &LineChart{
		Title:  `<script>&"`,
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "<script>") {
		t.Error("title not escaped")
	}
}
