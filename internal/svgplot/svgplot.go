// Package svgplot renders minimal SVG line and stacked-bar charts using
// the standard library only. It exists so the regenerated figures can be
// *drawn*, not just tabulated: cmd/plot turns the harness's CSV outputs
// into figure4.svg (training curves) and figure5.svg (stacked
// time-to-complete bars) lookalikes.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Palette is a set of line/bar colors cycled by series index.
var Palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb",
}

// Series is one named line on a line chart.
type Series struct {
	Name string
	X, Y []float64
	// Light draws the series thin and translucent (Figure 4's per-episode
	// line under the moving average).
	Light bool
}

// LineChart describes a line plot.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Series []Series
}

const margin = 55.0

// Render produces a complete SVG document.
func (c *LineChart) Render() (string, error) {
	if c.Width <= 0 {
		c.Width = 720
	}
	if c.Height <= 0 {
		c.Height = 420
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("svgplot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return "", fmt.Errorf("svgplot: no data")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range and include zero when close.
	if ymin > 0 && ymin < 0.3*ymax {
		ymin = 0
	}
	w, h := float64(c.Width), float64(c.Height)
	plotW, plotH := w-2*margin, h-2*margin
	sx := func(x float64) float64 { return margin + (x-xmin)/(xmax-xmin)*plotW }
	sy := func(y float64) float64 { return h - margin - (y-ymin)/(ymax-ymin)*plotH }

	var sb strings.Builder
	header(&sb, c.Width, c.Height, c.Title)
	axes(&sb, w, h, c.XLabel, c.YLabel, xmin, xmax, ymin, ymax)

	colorIdx := 0
	for _, s := range c.Series {
		color := Palette[colorIdx%len(Palette)]
		if !s.Light {
			colorIdx++
		}
		var pts strings.Builder
		for i := range s.X {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", sx(s.X[i]), sy(s.Y[i]))
		}
		width, opacity := 2.0, 1.0
		if s.Light {
			width, opacity = 1.0, 0.3
		}
		fmt.Fprintf(&sb,
			`<polyline fill="none" stroke="%s" stroke-width="%.1f" stroke-opacity="%.2f" points="%s"/>`+"\n",
			color, width, opacity, pts.String())
	}
	legend(&sb, c.Series)
	sb.WriteString("</svg>\n")
	return sb.String(), nil
}

// Bar is one stacked bar.
type Bar struct {
	Label string
	// Segments are stacked bottom-up in order; keys order follows SegmentNames.
	Segments []float64
}

// BarChart describes a stacked bar plot (Figure 5's breakdowns).
type BarChart struct {
	Title        string
	YLabel       string
	SegmentNames []string
	Bars         []Bar
	Width        int
	Height       int
	// LogScale plots bar heights on log10 (the paper's Figure 5 spans
	// three decades).
	LogScale bool
}

// Render produces a complete SVG document.
func (c *BarChart) Render() (string, error) {
	if c.Width <= 0 {
		c.Width = 720
	}
	if c.Height <= 0 {
		c.Height = 420
	}
	if len(c.Bars) == 0 {
		return "", fmt.Errorf("svgplot: no bars")
	}
	maxTotal := 0.0
	for _, b := range c.Bars {
		if len(b.Segments) != len(c.SegmentNames) {
			return "", fmt.Errorf("svgplot: bar %q has %d segments, chart names %d",
				b.Label, len(b.Segments), len(c.SegmentNames))
		}
		total := 0.0
		for _, v := range b.Segments {
			if v < 0 {
				return "", fmt.Errorf("svgplot: negative segment in bar %q", b.Label)
			}
			total += v
		}
		maxTotal = math.Max(maxTotal, total)
	}
	if maxTotal == 0 {
		maxTotal = 1
	}
	w, h := float64(c.Width), float64(c.Height)
	plotW, plotH := w-2*margin, h-2*margin
	scale := func(total float64) float64 {
		if c.LogScale {
			// Map [0.1, maxTotal] to the plot height on log10.
			lo, hi := math.Log10(0.1), math.Log10(maxTotal)
			if total <= 0.1 {
				return 0
			}
			return (math.Log10(total) - lo) / (hi - lo) * plotH
		}
		return total / maxTotal * plotH
	}

	var sb strings.Builder
	header(&sb, c.Width, c.Height, c.Title)
	fmt.Fprintf(&sb, `<text x="14" y="%.1f" transform="rotate(-90 14 %.1f)" font-size="12" text-anchor="middle">%s</text>`+"\n",
		h/2, h/2, escape(c.YLabel))

	barW := plotW / float64(len(c.Bars)) * 0.6
	gap := plotW / float64(len(c.Bars))
	for i, b := range c.Bars {
		x := margin + float64(i)*gap + (gap-barW)/2
		// Stack from the bottom: heights are proportional to each
		// segment's share of the (possibly log-scaled) total height.
		total := 0.0
		for _, v := range b.Segments {
			total += v
		}
		hTotal := scale(total)
		yCursor := h - margin
		for si, v := range b.Segments {
			if v <= 0 || total == 0 {
				continue
			}
			segH := hTotal * (v / total)
			yCursor -= segH
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, yCursor, barW, segH, Palette[si%len(Palette)])
		}
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle">%s</text>`+"\n",
			x+barW/2, h-margin+14, escape(b.Label))
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle">%.4g</text>`+"\n",
			x+barW/2, h-margin-hTotal-4, total)
	}
	// Segment legend.
	for si, name := range c.SegmentNames {
		y := margin + float64(si)*16
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n",
			w-margin-120, y, Palette[si%len(Palette)])
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n",
			w-margin-105, y+9, escape(name))
	}
	sb.WriteString("</svg>\n")
	return sb.String(), nil
}

func header(sb *strings.Builder, w, h int, title string) {
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(sb, `<text x="%d" y="24" font-size="15" text-anchor="middle">%s</text>`+"\n", w/2, escape(title))
}

func axes(sb *strings.Builder, w, h float64, xl, yl string, xmin, xmax, ymin, ymax float64) {
	fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		margin, h-margin, w-margin, h-margin)
	fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		margin, margin, margin, h-margin)
	fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle">%s</text>`+"\n",
		w/2, h-14, escape(xl))
	fmt.Fprintf(sb, `<text x="14" y="%.1f" transform="rotate(-90 14 %.1f)" font-size="12" text-anchor="middle">%s</text>`+"\n",
		h/2, h/2, escape(yl))
	// Min/max tick labels.
	fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="10">%.4g</text>`+"\n", margin, h-margin+14, xmin)
	fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end">%.4g</text>`+"\n", w-margin, h-margin+14, xmax)
	fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end">%.4g</text>`+"\n", margin-4, h-margin, ymin)
	fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end">%.4g</text>`+"\n", margin-4, margin+4, ymax)
}

func legend(sb *strings.Builder, series []Series) {
	idx := 0
	for _, s := range series {
		if s.Light {
			continue
		}
		y := margin + float64(idx)*16
		fmt.Fprintf(sb, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n",
			margin+10, y, Palette[idx%len(Palette)])
		fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n",
			margin+25, y+9, escape(s.Name))
		idx++
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
