package timing

import "testing"

// TestCalibrationWindows pins the modelled per-operation costs at the
// paper's design points. EXPERIMENTS.md's paper-vs-ours tables depend on
// these constants; an accidental recalibration should fail loudly here,
// not surface as silently different tables.
func TestCalibrationWindows(t *testing.T) {
	type window struct{ lo, hi float64 } // seconds
	cases := []struct {
		hidden int
		want   window
	}{
		// One OS-ELM rank-1 update (with its θ2 target evaluation) on the
		// PyTorch profile: sub-millisecond at 32 units, a few ms at 192.
		{32, window{300e-6, 900e-6}},
		{64, window{500e-6, 2e-3}},
		{128, window{1e-3, 4e-3}},
		{192, window{2e-3, 8e-3}},
	}
	for _, c := range cases {
		d := OSELMDims{In: 5, Hidden: c.hidden, Out: 1}
		work := 2*d.PredictFlops() + d.SeqTrainFlops()
		sec := CortexA9PyTorch.Seconds(PhaseSeqTrain, 1, work)
		if sec < c.want.lo || sec > c.want.hi {
			t.Errorf("%d units: seq_train step = %v s, outside [%v, %v]",
				c.hidden, sec, c.want.lo, c.want.hi)
		}
	}

	// One DQN train step (batch 32) on the NumPy profile: milliseconds,
	// growing with width — the cost that makes DQN the slow baseline.
	prev := 0.0
	for _, hidden := range []int{32, 64, 128, 192} {
		d := DQNDims{In: 4, Hidden: hidden, Actions: 2}
		work := d.TrainFlops(32) + d.PredictBatchFlops(32)
		sec := CortexA9NumPy.Seconds(PhaseTrainDQN, 1, work)
		if sec <= prev {
			t.Errorf("DQN step cost not increasing at %d units", hidden)
		}
		if sec < 1e-3 || sec > 30e-3 {
			t.Errorf("%d units: DQN step = %v s, outside the ms regime", hidden, sec)
		}
		prev = sec
	}

	// The FPGA profile turns the 64-unit seq_train cycle count (17,521)
	// into ~140 µs — the figure EXPERIMENTS.md quotes.
	sec := FPGA125.Seconds(PhaseSeqTrain, 1, 17521)
	if sec < 130e-6 || sec > 160e-6 {
		t.Errorf("FPGA 64-unit update = %v s, want ~140 µs", sec)
	}

	// Cross-design ordering at 64 units: one DQN step costs more than one
	// OS-ELM update, which costs more than one FPGA update.
	oselmSec := CortexA9PyTorch.Seconds(PhaseSeqTrain, 1,
		2*OSELMDims{In: 5, Hidden: 64, Out: 1}.PredictFlops()+
			OSELMDims{In: 5, Hidden: 64, Out: 1}.SeqTrainFlops())
	dqnSec := CortexA9NumPy.Seconds(PhaseTrainDQN, 1, DQNDims{In: 4, Hidden: 64, Actions: 2}.TrainFlops(32))
	if !(dqnSec > oselmSec && oselmSec > sec) {
		t.Errorf("ordering broken: dqn %v, oselm %v, fpga %v", dqnSec, oselmSec, sec)
	}
}
