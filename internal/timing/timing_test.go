package timing

import (
	"math"
	"strings"
	"testing"
)

func TestCountersAccumulate(t *testing.T) {
	c := NewCounters()
	c.Add(PhaseSeqTrain, 100)
	c.Add(PhaseSeqTrain, 50)
	c.AddN(PhasePredictSeq, 4, 400)
	if c.Calls(PhaseSeqTrain) != 2 || c.Work(PhaseSeqTrain) != 150 {
		t.Errorf("seq_train calls=%d work=%v", c.Calls(PhaseSeqTrain), c.Work(PhaseSeqTrain))
	}
	if c.Calls(PhasePredictSeq) != 4 || c.Work(PhasePredictSeq) != 400 {
		t.Errorf("predict_seq calls=%d work=%v", c.Calls(PhasePredictSeq), c.Work(PhasePredictSeq))
	}
	c.Reset()
	if c.Calls(PhaseSeqTrain) != 0 {
		t.Error("Reset failed")
	}
}

func TestCountersMerge(t *testing.T) {
	a, b := NewCounters(), NewCounters()
	a.Add(PhaseInitTrain, 10)
	b.Add(PhaseInitTrain, 20)
	b.Add(PhaseTrainDQN, 5)
	a.Merge(b)
	if a.Work(PhaseInitTrain) != 30 || a.Calls(PhaseInitTrain) != 2 {
		t.Error("Merge init_train")
	}
	if a.Work(PhaseTrainDQN) != 5 {
		t.Error("Merge train_DQN")
	}
}

func TestProfileSeconds(t *testing.T) {
	p := Profile{WorkUnitsPerSec: 1e6, CallOverheadSec: 1e-3}
	// 1e6 units = 1s compute + 10 calls * 1ms = 1.01s.
	if got := p.Seconds(PhasePredictSeq, 10, 1e6); math.Abs(got-1.01) > 1e-12 {
		t.Errorf("Seconds = %v", got)
	}
	// Phase op factors multiply the per-call overhead.
	p.PhaseOps = map[Phase]float64{PhaseSeqTrain: 5}
	if got := p.Seconds(PhaseSeqTrain, 10, 1e6); math.Abs(got-1.05) > 1e-12 {
		t.Errorf("Seconds with PhaseOps = %v", got)
	}
	// Unlisted phases keep factor 1.
	if got := p.Seconds(PhaseTrainDQN, 10, 1e6); math.Abs(got-1.01) > 1e-12 {
		t.Errorf("Seconds unlisted phase = %v", got)
	}
}

func TestModelBreakdown(t *testing.T) {
	c := NewCounters()
	c.Add(PhaseSeqTrain, 1e8)
	c.Add(PhasePredictSeq, 1e7)
	b := Model(c, Profile{WorkUnitsPerSec: 1e8, CallOverheadSec: 0})
	if math.Abs(b[PhaseSeqTrain]-1) > 1e-12 {
		t.Errorf("seq_train = %v", b[PhaseSeqTrain])
	}
	if math.Abs(b.Total()-1.1) > 1e-12 {
		t.Errorf("total = %v", b.Total())
	}
	// Phases with zero calls are omitted.
	if _, ok := b[PhaseTrainDQN]; ok {
		t.Error("zero-call phase must be absent")
	}
}

func TestModelMixed(t *testing.T) {
	c := NewCounters()
	c.Add(PhaseSeqTrain, 125e6)  // cycles
	c.Add(PhaseInitTrain, 1.1e8) // flops
	per := map[Phase]Profile{PhaseSeqTrain: FPGA125}
	b := ModelMixed(c, per, CortexA9PyTorch)
	// 125e6 cycles at 125MHz = 1s (+ tiny overhead).
	if b[PhaseSeqTrain] < 1 || b[PhaseSeqTrain] > 1.001 {
		t.Errorf("seq_train on fpga = %v", b[PhaseSeqTrain])
	}
	// 1.1e8 flops at 1.1e8/s = 1s (+ 30-op dispatch overhead).
	if b[PhaseInitTrain] < 1 || b[PhaseInitTrain] > 1.01 {
		t.Errorf("init_train on cpu = %v", b[PhaseInitTrain])
	}
}

func TestBreakdownFormat(t *testing.T) {
	b := Breakdown{PhaseSeqTrain: 1.5, PhasePredictSeq: 0.5}
	s := b.Format()
	if !strings.Contains(s, "seq_train") || !strings.Contains(s, "total") {
		t.Errorf("Format output missing fields:\n%s", s)
	}
}

func TestOSELMDimsFlops(t *testing.T) {
	d := OSELMDims{In: 5, Hidden: 64, Out: 1}
	// Predict: 2*5*64 + 64 + 2*64 = 832.
	if got := d.PredictFlops(); got != 832 {
		t.Errorf("PredictFlops = %v", got)
	}
	// SeqTrain is dominated by the Ñ² terms; verify it is ~5Ñ².
	st := d.SeqTrainFlops()
	if st < 5*64*64 || st > 7*64*64 {
		t.Errorf("SeqTrainFlops = %v outside the expected Ñ² regime", st)
	}
	// InitTrain is cubic: doubling Ñ multiplies the inverse term by ~8.
	small := OSELMDims{In: 5, Hidden: 32, Out: 1}.InitTrainFlops(32)
	large := OSELMDims{In: 5, Hidden: 64, Out: 1}.InitTrainFlops(64)
	if ratio := large / small; ratio < 6 || ratio > 10 {
		t.Errorf("InitTrain scaling ratio = %v, want ~8 (cubic)", ratio)
	}
	if d.ELMBatchTrainFlops(64) != d.InitTrainFlops(64) {
		t.Error("ELM batch train must cost the same as init train")
	}
}

func TestDQNDimsFlops(t *testing.T) {
	d := DQNDims{In: 4, Hidden: 64, Actions: 2}
	p1 := d.Predict1Flops()
	p32 := d.PredictBatchFlops(32)
	if math.Abs(p32-32*p1) > 1e-9 {
		t.Errorf("batch-32 forward should be 32x batch-1: %v vs %v", p32, 32*p1)
	}
	// Training costs more than forward alone.
	if d.TrainFlops(32) <= p32 {
		t.Error("train must cost more than forward")
	}
}

// The seq_train cost grows quadratically in Ñ — the paper's §4.4
// observation that matrix products RÑ×Ñ·RÑ×Ñ dominate.
func TestSeqTrainQuadraticGrowth(t *testing.T) {
	f32 := OSELMDims{In: 5, Hidden: 32, Out: 1}.SeqTrainFlops()
	f64 := OSELMDims{In: 5, Hidden: 64, Out: 1}.SeqTrainFlops()
	f128 := OSELMDims{In: 5, Hidden: 128, Out: 1}.SeqTrainFlops()
	r1 := f64 / f32
	r2 := f128 / f64
	if r1 < 3 || r1 > 4.5 || r2 < 3 || r2 > 4.5 {
		t.Errorf("growth ratios %v, %v — want ~4 (quadratic)", r1, r2)
	}
}

func TestAllPhasesListed(t *testing.T) {
	if len(AllPhases) != 7 {
		t.Fatalf("the paper's Figure 5 has 7 phases, got %d", len(AllPhases))
	}
	want := map[Phase]bool{
		PhaseSeqTrain: true, PhasePredictSeq: true, PhaseInitTrain: true,
		PhasePredictInit: true, PhaseTrainDQN: true, PhasePredict1: true,
		PhasePredict32: true,
	}
	for _, p := range AllPhases {
		if !want[p] {
			t.Errorf("unexpected phase %q", p)
		}
	}
}
