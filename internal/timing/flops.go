package timing

// Analytic floating-point operation counts per phase, parameterized on the
// network dimensions. These are the standard 2·m·n·k GEMM counts plus the
// vector terms; they drive the device-time model for the software designs.
// The FPGA design does not use these — its cycle counts come from the
// datapath simulator in internal/fpga, which counts every add/mul/div it
// actually issues.

// OSELMDims describes an OS-ELM Q-network: n inputs (states+action under
// the simplified output model), hidden units, m outputs (1).
type OSELMDims struct {
	In, Hidden, Out int
}

// PredictFlops is one k=1 forward pass: H = G(x·α+b) then H·β.
func (d OSELMDims) PredictFlops() float64 {
	n, h, m := float64(d.In), float64(d.Hidden), float64(d.Out)
	return 2*n*h + h + 2*h*m
}

// SeqTrainFlops is one rank-1 sequential update (Eq. 5, k=1): the hidden
// pass, P·hᵀ, the scalar gain, the symmetric rank-1 downdate of P, the
// prediction residual and the β update. The Ñ² terms dominate — this is
// the "RÑ×Ñ·RÑ×Ñ" growth the paper cites for rising completion times.
func (d OSELMDims) SeqTrainFlops() float64 {
	n, h, m := float64(d.In), float64(d.Hidden), float64(d.Out)
	hidden := 2*n*h + h
	ph := 2 * h * h
	gain := 2*h + 2
	downdate := 3 * h * h
	residual := 2 * h * m
	betaUpd := h + 3*h*m
	return hidden + ph + gain + downdate + residual + betaUpd
}

// InitTrainFlops is the one-shot initial training (Eq. 7/8) on a k-row
// chunk: build H, form HᵀH (+δI), invert (Gauss-Jordan ~2Ñ³), then
// P·Hᵀ·t.
func (d OSELMDims) InitTrainFlops(chunk int) float64 {
	n, h, m, k := float64(d.In), float64(d.Hidden), float64(d.Out), float64(chunk)
	buildH := k * (2*n*h + h)
	gram := 2 * h * h * k
	inverse := 2 * h * h * h
	pht := 2 * h * h * k
	times := 2 * h * k * m
	return buildH + gram + inverse + pht + times
}

// ELMBatchTrainFlops is ELM's batch training via the regularized normal
// equations on a k-row chunk — the same cost shape as OS-ELM's initial
// training (the ELM design retrains from its buffer each time D fills).
func (d OSELMDims) ELMBatchTrainFlops(chunk int) float64 {
	return d.InitTrainFlops(chunk)
}

// DQNDims describes the baseline three-layer DQN: n inputs, hidden units,
// a outputs (one Q per action).
type DQNDims struct {
	In, Hidden, Actions int
}

func (d DQNDims) forwardFlops(batch int) float64 {
	n, h, a, b := float64(d.In), float64(d.Hidden), float64(d.Actions), float64(batch)
	return b * (2*n*h + h + 2*h*a + a)
}

// Predict1Flops is a batch-1 forward pass (action selection).
func (d DQNDims) Predict1Flops() float64 { return d.forwardFlops(1) }

// PredictBatchFlops is a batch-k forward pass (target computation).
func (d DQNDims) PredictBatchFlops(batch int) float64 { return d.forwardFlops(batch) }

// TrainFlops is one gradient step on a batch: forward + backward (≈2×
// forward for the matrix products) + Adam's ~10 flops per parameter.
func (d DQNDims) TrainFlops(batch int) float64 {
	params := float64(d.In*d.Hidden + d.Hidden + d.Hidden*d.Actions + d.Actions)
	return 3*d.forwardFlops(batch) + 10*params
}
