// Package timing models execution time the way the paper's Figures 5 and 6
// report it: per-phase breakdowns (seq_train, predict_seq, init_train,
// predict_init, train_DQN, predict_1, predict_32) for each design.
//
// We cannot run on the paper's 650 MHz Cortex-A9 or its 125 MHz FPGA
// fabric, so the harness counts the *work* each phase performs (floating
// point operations for software designs, datapath cycles for the FPGA
// simulator) and converts work to device seconds through calibrated device
// profiles. Per DESIGN.md §5 this preserves the relative shape of the
// paper's results — which design wins and by roughly what factor — which is
// the reproducible claim; absolute seconds are testbed-specific.
package timing

import (
	"fmt"
	"sort"
	"strings"
)

// Phase labels one segment of the execution-time breakdown, matching the
// paper's Figure 5 legend exactly.
type Phase string

// The seven phases of paper Figure 5.
const (
	// PhasePredictInit is ELM/OS-ELM prediction before initial training
	// completes (the agent acts randomly-informed while filling buffer D).
	PhasePredictInit Phase = "predict_init"
	// PhasePredictSeq is ELM/OS-ELM prediction after initial training.
	PhasePredictSeq Phase = "predict_seq"
	// PhaseInitTrain is the one-shot ELM/OS-ELM initial training (Eq. 7/8).
	PhaseInitTrain Phase = "init_train"
	// PhaseSeqTrain is the OS-ELM rank-1 sequential update (Eq. 5, k=1).
	PhaseSeqTrain Phase = "seq_train"
	// PhaseTrainDQN is one DQN gradient step.
	PhaseTrainDQN Phase = "train_DQN"
	// PhasePredict1 is a DQN forward pass with batch size 1.
	PhasePredict1 Phase = "predict_1"
	// PhasePredict32 is a DQN forward pass with batch size 32.
	PhasePredict32 Phase = "predict_32"
)

// AllPhases lists phases in the paper's legend order.
var AllPhases = []Phase{
	PhaseSeqTrain, PhasePredictSeq, PhaseInitTrain, PhasePredictInit,
	PhaseTrainDQN, PhasePredict1, PhasePredict32,
}

// Counters accumulates calls and work units per phase. Work units are
// floating-point operations for software designs and datapath cycles for
// the FPGA design; the Profile converting them knows which.
//
// Concurrency contract: a Counters is intentionally unsynchronized — it
// sits on every agent's hot path, where a lock would tax the
// single-threaded common case. Concurrent users (the fleet runner's
// per-core members, parallel trials) must give each goroutine its own
// Counters and combine them with Merge only at a barrier, after all
// writers have stopped. Sharing one Counters across concurrently
// running members is a data race (caught by the harness fleet -race
// test).
type Counters struct {
	calls map[Phase]int64
	work  map[Phase]float64
}

// NewCounters returns empty counters.
func NewCounters() *Counters {
	return &Counters{calls: make(map[Phase]int64), work: make(map[Phase]float64)}
}

// Add records one call performing the given work units in phase p.
func (c *Counters) Add(p Phase, work float64) {
	c.calls[p]++
	c.work[p] += work
}

// AddN records n calls performing total work units in phase p.
func (c *Counters) AddN(p Phase, n int64, work float64) {
	c.calls[p] += n
	c.work[p] += work
}

// Calls returns the number of calls recorded for p.
func (c *Counters) Calls(p Phase) int64 { return c.calls[p] }

// Work returns the total work units recorded for p.
func (c *Counters) Work(p Phase) float64 { return c.work[p] }

// Reset zeroes all counters (agent reinitialization does NOT reset them —
// the paper's time-to-complete includes failed attempts; Reset is for
// starting a fresh trial).
func (c *Counters) Reset() {
	c.calls = make(map[Phase]int64)
	c.work = make(map[Phase]float64)
}

// Merge adds other's counts into c — the fleet-barrier aggregation
// point of the per-goroutine Counters pattern (see the type comment).
// Neither side may have live writers during the merge.
func (c *Counters) Merge(other *Counters) {
	for p, n := range other.calls {
		c.calls[p] += n
	}
	for p, w := range other.work {
		c.work[p] += w
	}
}

// Profile converts work units into device seconds.
type Profile struct {
	// Name identifies the device, e.g. "cortex-a9-numpy".
	Name string
	// WorkUnitsPerSec is the sustained throughput: FLOP/s for software
	// profiles, datapath cycles/s for the FPGA fabric.
	WorkUnitsPerSec float64
	// CallOverheadSec is the fixed cost per dispatched operation: one
	// framework tensor op for software profiles, one AXI-invoked module
	// run for the FPGA.
	CallOverheadSec float64
	// PhaseOps is the number of dispatched operations one logical call in
	// a phase issues (a rank-1 OS-ELM update is ~a dozen tensor ops in
	// PyTorch; a batched predict is ~3). Phases absent from the map count
	// as 1 op per call. The FPGA profile leaves this nil — one invocation
	// is one handshake.
	PhaseOps map[Phase]float64
}

// Seconds returns the modelled time for calls invocations doing work units
// in phase p.
func (p Profile) Seconds(phase Phase, calls int64, work float64) float64 {
	ops := 1.0
	if p.PhaseOps != nil {
		if f, ok := p.PhaseOps[phase]; ok {
			ops = f
		}
	}
	return work/p.WorkUnitsPerSec + float64(calls)*ops*p.CallOverheadSec
}

// WorkSeconds converts raw work units (datapath cycles for PL profiles,
// flops for software ones) to device seconds with no per-call overhead —
// the duration of a kernel inside an already-dispatched invocation,
// where the handshake is accounted to the enclosing module. Used by the
// device profiler's per-kernel spans and reports.
func (p Profile) WorkSeconds(work float64) float64 {
	return work / p.WorkUnitsPerSec
}

// Calibrated device profiles. The throughput and overhead constants were
// chosen once so that the modelled per-phase times land in the regime the
// paper reports for a 650 MHz Cortex-A9 running NumPy 1.17 / PyTorch 1.3
// and a 125 MHz programmable-logic fabric; see EXPERIMENTS.md for the
// paper-vs-model comparison.
var (
	// CortexA9NumPy models the DQN software stack (§4.3: NumPy for DQN).
	// A 650 MHz in-order core sustains ~100 MFLOP/s on tiny matrices, and
	// each NumPy dispatch costs tens of microseconds; a DQN train step is
	// a few dozen such dispatches (forward, backward, Adam per layer).
	CortexA9NumPy = Profile{
		Name:            "cortex-a9-numpy",
		WorkUnitsPerSec: 1.3e8,
		CallOverheadSec: 60e-6,
		PhaseOps: map[Phase]float64{
			PhaseTrainDQN:  25,
			PhasePredict1:  3,
			PhasePredict32: 3,
		},
	}
	// CortexA9PyTorch models the ELM/OS-ELM software stack (§4.3: PyTorch
	// for the ELM/OS-ELM approaches). PyTorch dispatch is more expensive
	// than NumPy's; a rank-1 sequential update issues ~a dozen tensor ops
	// (hidden pass, P·h, gain, outer-product downdate, β update) while a
	// batched predict issues ~3.
	CortexA9PyTorch = Profile{
		Name:            "cortex-a9-pytorch",
		WorkUnitsPerSec: 1.1e8,
		CallOverheadSec: 40e-6,
		PhaseOps: map[Phase]float64{
			PhaseSeqTrain:    12,
			PhaseInitTrain:   30,
			PhasePredictSeq:  3,
			PhasePredictInit: 3,
		},
	}
	// FPGA125 models the programmable-logic datapath: one work unit is one
	// datapath cycle at 125 MHz (§4.2), and each predict/seq_train
	// invocation pays an AXI handshake.
	FPGA125 = Profile{
		Name:            "fpga-pl-125mhz",
		WorkUnitsPerSec: 125e6,
		CallOverheadSec: 8e-6,
	}
	// CortexA9Init models the CPU-side init_train of the FPGA design
	// (§4.2: "init_train is executed on the CPU part").
	CortexA9Init = CortexA9PyTorch
)

// Breakdown maps phases to modelled seconds.
type Breakdown map[Phase]float64

// Total returns the sum over phases.
func (b Breakdown) Total() float64 {
	var s float64
	for _, v := range b {
		s += v
	}
	return s
}

// Model converts counters to a breakdown using profile for every phase.
func Model(c *Counters, profile Profile) Breakdown {
	out := make(Breakdown)
	for _, p := range AllPhases {
		if c.calls[p] == 0 {
			continue
		}
		out[p] = profile.Seconds(p, c.calls[p], c.work[p])
	}
	return out
}

// ModelMixed converts counters using a per-phase profile map with a
// default. The FPGA design uses this: predict/seq_train on the fabric,
// init_train and pre-init prediction on the CPU.
func ModelMixed(c *Counters, perPhase map[Phase]Profile, def Profile) Breakdown {
	out := make(Breakdown)
	for _, p := range AllPhases {
		if c.calls[p] == 0 {
			continue
		}
		prof, ok := perPhase[p]
		if !ok {
			prof = def
		}
		out[p] = prof.Seconds(p, c.calls[p], c.work[p])
	}
	return out
}

// Format renders a breakdown as aligned text, phases in legend order.
func (b Breakdown) Format() string {
	var sb strings.Builder
	keys := make([]Phase, 0, len(b))
	for _, p := range AllPhases {
		if _, ok := b[p]; ok {
			keys = append(keys, p)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return indexOf(keys[i]) < indexOf(keys[j]) })
	for _, p := range keys {
		fmt.Fprintf(&sb, "  %-13s %12.4fs\n", p, b[p])
	}
	fmt.Fprintf(&sb, "  %-13s %12.4fs\n", "total", b.Total())
	return sb.String()
}

func indexOf(p Phase) int {
	for i, q := range AllPhases {
		if q == p {
			return i
		}
	}
	return len(AllPhases)
}
