// Package activation defines the activation functions used by the ELM,
// OS-ELM and DQN networks, together with their derivatives (needed by the
// DQN baseline's backpropagation) and Lipschitz constants (needed by the
// spectral-normalization analysis in paper §2.5/§3.3).
package activation

import "math"

// Func is a named scalar activation.
type Func struct {
	// Name identifies the activation in configs and reports.
	Name string
	// F is the forward function.
	F func(float64) float64
	// Deriv is dF/dx expressed in terms of x (the pre-activation input).
	Deriv func(float64) float64
	// Lipschitz is the global Lipschitz constant of F. The paper relies on
	// ReLU and tanh having Lipschitz constant <= 1 (§2.5).
	Lipschitz float64
}

// ReLU is G(x) = max(0, x), the activation the paper evaluates with (§4.1).
var ReLU = Func{
	Name: "relu",
	F: func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	},
	Deriv: func(x float64) float64 {
		if x > 0 {
			return 1
		}
		return 0
	},
	Lipschitz: 1,
}

// LeakyReLU has slope alpha for negative inputs; used in ablations.
func LeakyReLU(alpha float64) Func {
	return Func{
		Name: "leaky_relu",
		F: func(x float64) float64 {
			if x > 0 {
				return x
			}
			return alpha * x
		},
		Deriv: func(x float64) float64 {
			if x > 0 {
				return 1
			}
			return alpha
		},
		Lipschitz: math.Max(1, math.Abs(alpha)),
	}
}

// Sigmoid is the logistic function, the classic ELM activation.
var Sigmoid = Func{
	Name: "sigmoid",
	F: func(x float64) float64 {
		return 1 / (1 + math.Exp(-x))
	},
	Deriv: func(x float64) float64 {
		s := 1 / (1 + math.Exp(-x))
		return s * (1 - s)
	},
	Lipschitz: 0.25,
}

// Tanh is the hyperbolic tangent.
var Tanh = Func{
	Name:      "tanh",
	F:         math.Tanh,
	Deriv:     func(x float64) float64 { t := math.Tanh(x); return 1 - t*t },
	Lipschitz: 1,
}

// Identity passes inputs through; used for linear output layers.
var Identity = Func{
	Name:      "identity",
	F:         func(x float64) float64 { return x },
	Deriv:     func(float64) float64 { return 1 },
	Lipschitz: 1,
}

// ByName returns the activation with the given name, defaulting to ReLU for
// unknown names so configuration typos fail loudly in tests rather than
// silently changing dynamics.
func ByName(name string) (Func, bool) {
	switch name {
	case "relu":
		return ReLU, true
	case "sigmoid":
		return Sigmoid, true
	case "tanh":
		return Tanh, true
	case "identity":
		return Identity, true
	}
	return ReLU, false
}
