package activation

import (
	"math"
	"testing"
	"testing/quick"

	"oselmrl/internal/rng"
)

func TestReLU(t *testing.T) {
	cases := []struct{ in, out, deriv float64 }{
		{-2, 0, 0},
		{0, 0, 0},
		{3, 3, 1},
		{0.001, 0.001, 1},
	}
	for _, c := range cases {
		if got := ReLU.F(c.in); got != c.out {
			t.Errorf("ReLU(%v) = %v want %v", c.in, got, c.out)
		}
		if got := ReLU.Deriv(c.in); got != c.deriv {
			t.Errorf("ReLU'(%v) = %v want %v", c.in, got, c.deriv)
		}
	}
	if ReLU.Lipschitz != 1 {
		t.Error("ReLU Lipschitz constant must be 1")
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid.F(0); got != 0.5 {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid.F(100); math.Abs(got-1) > 1e-12 {
		t.Errorf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid.Deriv(0); got != 0.25 {
		t.Errorf("Sigmoid'(0) = %v", got)
	}
}

func TestTanhAndIdentity(t *testing.T) {
	if Tanh.F(0) != 0 || Tanh.Deriv(0) != 1 {
		t.Error("Tanh at 0")
	}
	if Identity.F(3.7) != 3.7 || Identity.Deriv(-5) != 1 {
		t.Error("Identity")
	}
}

func TestLeakyReLU(t *testing.T) {
	l := LeakyReLU(0.1)
	if got := l.F(-10); got != -1 {
		t.Errorf("LeakyReLU(-10) = %v", got)
	}
	if got := l.Deriv(-10); got != 0.1 {
		t.Errorf("LeakyReLU'(-10) = %v", got)
	}
	if l.Lipschitz != 1 {
		t.Errorf("LeakyReLU(0.1) Lipschitz = %v", l.Lipschitz)
	}
	steep := LeakyReLU(2)
	if steep.Lipschitz != 2 {
		t.Errorf("LeakyReLU(2) Lipschitz = %v", steep.Lipschitz)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"relu", "sigmoid", "tanh", "identity"} {
		f, ok := ByName(name)
		if !ok || f.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, f.Name, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name must report !ok")
	}
}

// Property: every activation respects its declared Lipschitz constant on
// random input pairs — the invariant §2.5's analysis builds on.
func TestPropertyLipschitz(t *testing.T) {
	funcs := []Func{ReLU, Sigmoid, Tanh, Identity, LeakyReLU(0.3)}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		x1 := r.Uniform(-50, 50)
		x2 := r.Uniform(-50, 50)
		for _, fn := range funcs {
			lhs := math.Abs(fn.F(x1) - fn.F(x2))
			rhs := fn.Lipschitz*math.Abs(x1-x2) + 1e-12
			if lhs > rhs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: derivatives match finite differences where the function is
// smooth (checked away from ReLU's kink).
func TestPropertyDerivFiniteDifference(t *testing.T) {
	funcs := []Func{Sigmoid, Tanh, Identity}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		x := r.Uniform(-5, 5)
		const h = 1e-6
		for _, fn := range funcs {
			numeric := (fn.F(x+h) - fn.F(x-h)) / (2 * h)
			if math.Abs(numeric-fn.Deriv(x)) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
