package env

import (
	"math"

	"oselmrl/internal/rng"
)

// MountainCar is Gym's MountainCar-v0: an underpowered car in a valley must
// rock back and forth to reach the right hilltop. It exercises the paper's
// future-work claim that the approach should extend beyond CartPole: the
// reward is sparse (-1 per step until the goal), which stresses the
// Q-value-clipping scheme differently than CartPole's dense survival signal.
//
// Observation: [position, velocity]. Actions: 0 = push left, 1 = no push,
// 2 = push right.
type MountainCar struct {
	rng      *rng.RNG
	pos, vel float64
	steps    int
	done     bool
}

const (
	mcMinPosition  = -1.2
	mcMaxPosition  = 0.6
	mcMaxSpeed     = 0.07
	mcGoalPosition = 0.5
	mcForce        = 0.001
	mcGravity      = 0.0025
	mcMaxSteps     = 200
)

// NewMountainCar returns a seeded MountainCar-v0.
func NewMountainCar(seed uint64) *MountainCar {
	return &MountainCar{rng: rng.New(seed)}
}

// Name implements Env.
func (m *MountainCar) Name() string { return "MountainCar-v0" }

// ObservationSize implements Env.
func (m *MountainCar) ObservationSize() int { return 2 }

// ActionCount implements Env.
func (m *MountainCar) ActionCount() int { return 3 }

// MaxSteps implements Env.
func (m *MountainCar) MaxSteps() int { return mcMaxSteps }

// Reset implements Env: position ~ Uniform(-0.6, -0.4), velocity 0.
func (m *MountainCar) Reset() []float64 {
	m.pos = m.rng.Uniform(-0.6, -0.4)
	m.vel = 0
	m.steps = 0
	m.done = false
	return []float64{m.pos, m.vel}
}

// Step implements Env with the Gym dynamics.
func (m *MountainCar) Step(action int) ([]float64, float64, bool) {
	if m.done {
		return []float64{m.pos, m.vel}, 0, true
	}
	if action < 0 || action > 2 {
		panic("env: MountainCar action must be 0, 1 or 2")
	}
	m.vel += float64(action-1)*mcForce - mcGravity*math.Cos(3*m.pos)
	m.vel = clamp(m.vel, -mcMaxSpeed, mcMaxSpeed)
	m.pos += m.vel
	m.pos = clamp(m.pos, mcMinPosition, mcMaxPosition)
	if m.pos <= mcMinPosition && m.vel < 0 {
		m.vel = 0 // inelastic collision with the left wall
	}
	m.steps++
	reachedGoal := m.pos >= mcGoalPosition
	m.done = reachedGoal || m.steps >= mcMaxSteps
	return []float64{m.pos, m.vel}, -1, m.done
}

// ObservationBounds implements BoundsReporter.
func (m *MountainCar) ObservationBounds() (low, high []float64) {
	return []float64{mcMinPosition, -mcMaxSpeed}, []float64{mcMaxPosition, mcMaxSpeed}
}

// ReachedGoal reports whether the last episode ended at the flag.
func (m *MountainCar) ReachedGoal() bool { return m.pos >= mcGoalPosition }
