package env

import (
	"math"
	"testing"
)

// allEnvs builds one of each environment for interface-contract tests.
func allEnvs(seed uint64) []Env {
	return []Env{
		NewCartPoleV0(seed),
		NewCartPoleV1(seed),
		NewMountainCar(seed),
		NewAcrobot(seed),
		NewGridWorld(5, seed),
		NewPendulum(seed),
		NewLander(seed),
		NewCliffWalk(),
	}
}

// TestEnvContract checks the Env interface invariants every implementation
// must satisfy: observation shape stability, termination by MaxSteps, and
// finite observations.
func TestEnvContract(t *testing.T) {
	for _, e := range allEnvs(11) {
		t.Run(e.Name(), func(t *testing.T) {
			if e.ObservationSize() <= 0 || e.ActionCount() <= 0 || e.MaxSteps() <= 0 {
				t.Fatalf("invalid static properties: %d/%d/%d",
					e.ObservationSize(), e.ActionCount(), e.MaxSteps())
			}
			obs := e.Reset()
			if len(obs) != e.ObservationSize() {
				t.Fatalf("reset obs len %d, want %d", len(obs), e.ObservationSize())
			}
			steps := 0
			for {
				obs, _, done := e.Step(steps % e.ActionCount())
				steps++
				if len(obs) != e.ObservationSize() {
					t.Fatalf("step obs len %d", len(obs))
				}
				for i, v := range obs {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("obs[%d] = %v at step %d", i, v, steps)
					}
				}
				if done {
					break
				}
				if steps > e.MaxSteps()+1 {
					t.Fatalf("episode exceeded MaxSteps+1 (%d)", steps)
				}
			}
		})
	}
}

// TestBoundsReporters verifies observations stay inside declared bounds for
// environments that declare finite ones.
func TestBoundsReporters(t *testing.T) {
	for _, e := range allEnvs(12) {
		br, ok := e.(BoundsReporter)
		if !ok {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			low, high := br.ObservationBounds()
			if len(low) != e.ObservationSize() || len(high) != e.ObservationSize() {
				t.Fatalf("bounds length mismatch")
			}
			obs := e.Reset()
			for step := 0; step < 100; step++ {
				for i, v := range obs {
					if !math.IsInf(low[i], -1) && v < low[i]-1e-9 {
						t.Fatalf("obs[%d]=%v below low %v", i, v, low[i])
					}
					if !math.IsInf(high[i], 1) && v > high[i]+1e-9 {
						t.Fatalf("obs[%d]=%v above high %v", i, v, high[i])
					}
				}
				var done bool
				obs, _, done = e.Step(step % e.ActionCount())
				if done {
					break
				}
			}
		})
	}
}

func TestShapedTerminalMode(t *testing.T) {
	inner := NewCartPoleV0(13)
	s := NewShaped(inner, RewardTerminal)
	s.Reset()
	// Drive to failure with constant pushes.
	var lastR float64
	var steps int
	for {
		_, r, done := s.Step(1)
		steps++
		lastR = r
		if done {
			break
		}
		if r != 0 {
			t.Fatalf("non-terminal reward %v at step %d", r, steps)
		}
	}
	if steps < inner.MaxSteps() && lastR != -1 {
		t.Errorf("early failure reward = %v, want -1", lastR)
	}
}

func TestShapedSurvivalMode(t *testing.T) {
	inner := NewCartPoleV0(14)
	s := NewShaped(inner, RewardSurvival)
	s.Reset()
	var lastR float64
	var steps int
	for {
		_, r, done := s.Step(1)
		steps++
		lastR = r
		if done {
			break
		}
		if r != 1 {
			t.Fatalf("non-terminal survival reward %v", r)
		}
	}
	if steps < inner.MaxSteps() && lastR != -1 {
		t.Errorf("failure reward = %v, want -1", lastR)
	}
}

func TestShapedRawAndClipped(t *testing.T) {
	// MountainCar's raw reward is -1 per step; both Raw and Clipped pass it.
	for _, mode := range []RewardMode{RewardRaw, RewardPerStepClipped} {
		s := NewShaped(NewMountainCar(15), mode)
		s.Reset()
		_, r, _ := s.Step(1)
		if r != -1 {
			t.Errorf("mode %v: reward = %v", mode, r)
		}
	}
	// Pendulum's raw cost can exceed -1; clipping must bound it.
	s := NewShaped(NewPendulum(16), RewardPerStepClipped)
	s.Reset()
	for i := 0; i < 20; i++ {
		_, r, _ := s.Step(0)
		if r < -1 || r > 1 {
			t.Fatalf("clipped reward %v out of range", r)
		}
	}
}

func TestShapedPreservesEnvMetadata(t *testing.T) {
	inner := NewCartPoleV0(17)
	s := NewShaped(inner, RewardTerminal)
	if s.Name() != inner.Name() || s.ObservationSize() != 4 ||
		s.ActionCount() != 2 || s.MaxSteps() != 200 {
		t.Error("Shaped must forward metadata")
	}
}

func TestShapedSurvivalAtCap(t *testing.T) {
	// Survival mode only overrides *failing* terminal steps; reaching the
	// step cap passes the raw reward through (success is not punished).
	g := NewGridWorld(3, 18)
	s := NewShaped(g, RewardSurvival)
	s.Reset()
	var lastR float64
	steps := 0
	for {
		// Bounce against the wall forever: action 0 (up) from the top row.
		_, r, done := s.Step(0)
		lastR = r
		steps++
		if done {
			break
		}
	}
	if steps != g.MaxSteps() {
		t.Fatalf("expected cap termination, got %d steps", steps)
	}
	if lastR != -0.01 {
		t.Errorf("cap-reaching survival reward = %v, want the raw -0.01", lastR)
	}
}
