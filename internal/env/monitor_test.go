package env

import (
	"math"
	"testing"
)

func TestMonitorRecordsEpisodes(t *testing.T) {
	m := NewMonitor(NewGridWorld(3, 1))
	// Two full episodes via the direct path (4 moves each).
	for ep := 0; ep < 2; ep++ {
		m.Reset()
		for _, a := range []int{1, 1, 2, 2} {
			m.Step(a)
		}
	}
	if m.Episodes() != 2 {
		t.Fatalf("episodes = %d", m.Episodes())
	}
	if m.Lengths[0] != 4 || m.Lengths[1] != 4 {
		t.Errorf("lengths = %v", m.Lengths)
	}
	// Return: 3 moves at -0.01 plus +1 at the goal.
	want := 1 - 0.03
	if math.Abs(m.Returns[0]-want) > 1e-12 {
		t.Errorf("return = %v want %v", m.Returns[0], want)
	}
	ls := m.LengthStats()
	if ls.Mean != 4 || ls.N != 2 {
		t.Errorf("length stats %+v", ls)
	}
}

func TestMonitorTruncatedEpisodeOnReset(t *testing.T) {
	m := NewMonitor(NewGridWorld(3, 2))
	m.Reset()
	m.Step(1) // one move, then abandon
	m.Reset()
	if m.Episodes() != 1 {
		t.Fatalf("truncated episode not recorded: %d", m.Episodes())
	}
	if m.Lengths[0] != 1 {
		t.Errorf("truncated length = %v", m.Lengths[0])
	}
}

func TestMonitorRecentMean(t *testing.T) {
	m := NewMonitor(NewGridWorld(3, 3))
	if m.RecentMean(10) != 0 {
		t.Error("empty monitor recent mean must be 0")
	}
	m.Lengths = []float64{10, 20, 30}
	if m.RecentMean(2) != 25 {
		t.Errorf("RecentMean(2) = %v", m.RecentMean(2))
	}
	if m.RecentMean(100) != 20 {
		t.Errorf("RecentMean(all) = %v", m.RecentMean(100))
	}
}

// TestMonitorSummaryEmpty: with no completed episodes Summary must return
// the zero Summary for both series, not panic on the empty sample — even
// after a Reset that starts (but does not finish) an episode.
func TestMonitorSummaryEmpty(t *testing.T) {
	m := NewMonitor(NewGridWorld(3, 5))
	ls, rs := m.Summary()
	if ls.N != 0 || rs.N != 0 || ls.Mean != 0 || rs.Mean != 0 {
		t.Fatalf("empty summary not zero: lengths=%+v returns=%+v", ls, rs)
	}
	m.Reset() // episode in progress, still nothing completed
	if ls, rs = m.Summary(); ls.N != 0 || rs.N != 0 {
		t.Fatalf("in-progress episode counted: lengths=%+v returns=%+v", ls, rs)
	}
	// A bare Reset with zero steps must not record a ghost episode either.
	m.Reset()
	if ls, _ = m.Summary(); ls.N != 0 {
		t.Fatalf("zero-step reset recorded an episode: %+v", ls)
	}
}

// TestMonitorSummaryMidEpisodeReset: a mid-episode Reset truncates the
// running episode into the record, and Summary covers both the truncated
// and the completed episodes.
func TestMonitorSummaryMidEpisodeReset(t *testing.T) {
	m := NewMonitor(NewGridWorld(3, 6))
	// One full 4-step episode.
	m.Reset()
	for _, a := range []int{1, 1, 2, 2} {
		m.Step(a)
	}
	// Two steps, then abandon mid-episode.
	m.Reset()
	m.Step(1)
	m.Step(1)
	m.Reset()
	ls, rs := m.Summary()
	if ls.N != 2 || rs.N != 2 {
		t.Fatalf("want 2 recorded episodes, got lengths=%+v returns=%+v", ls, rs)
	}
	if ls.Min != 2 || ls.Max != 4 || ls.Mean != 3 {
		t.Fatalf("length summary %+v, want min=2 max=4 mean=3", ls)
	}
	// The truncated episode's return is two -0.01 step penalties.
	if math.Abs(rs.Min-(-0.02)) > 1e-12 {
		t.Fatalf("truncated return = %v, want -0.02", rs.Min)
	}
	// Consistency with the single-series accessors.
	if l2 := m.LengthStats(); l2 != ls {
		t.Fatalf("Summary lengths %+v != LengthStats %+v", ls, l2)
	}
	if r2 := m.ReturnStats(); r2 != rs {
		t.Fatalf("Summary returns %+v != ReturnStats %+v", rs, r2)
	}
}

func TestMonitorTransparent(t *testing.T) {
	inner := NewCartPoleV0(4)
	m := NewMonitor(inner)
	if m.Name() != inner.Name() || m.ObservationSize() != 4 ||
		m.ActionCount() != 2 || m.MaxSteps() != 200 {
		t.Error("monitor must forward metadata")
	}
	obs := m.Reset()
	if len(obs) != 4 {
		t.Error("reset obs shape")
	}
	_, r, _ := m.Step(0)
	if r != 1 {
		t.Errorf("reward passthrough = %v", r)
	}
}
