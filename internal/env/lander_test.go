package env

import (
	"math"
	"testing"
)

func TestLanderGravityPullsDown(t *testing.T) {
	l := NewLander(1)
	l.Reset()
	l.SetState(0, 1.5, 0, 0, 0, 0)
	obs, _, _ := l.Step(0) // coast
	if obs[3] >= 0 {
		t.Errorf("vy = %v, gravity must pull down", obs[3])
	}
}

func TestLanderMainEngineThrustsUp(t *testing.T) {
	l := NewLander(2)
	l.Reset()
	l.SetState(0, 1.5, 0, 0, 0, 0)
	obs, _, _ := l.Step(2) // main engine, upright
	// Net acceleration = thrust (2.2) + gravity (-1) > 0.
	if obs[3] <= 0 {
		t.Errorf("vy = %v, main engine must overcome gravity", obs[3])
	}
	if math.Abs(obs[2]) > 1e-9 {
		t.Errorf("vx = %v, upright main engine must not push sideways", obs[2])
	}
}

func TestLanderSideThrustersRotate(t *testing.T) {
	l := NewLander(3)
	l.Reset()
	l.SetState(0, 1.5, 0, 0, 0, 0)
	obs, _, _ := l.Step(1) // left thruster
	if obs[5] >= 0 {
		t.Errorf("vAngle = %v, left thruster must rotate clockwise (negative)", obs[5])
	}
	l.SetState(0, 1.5, 0, 0, 0, 0)
	obs, _, _ = l.Step(3)
	if obs[5] <= 0 {
		t.Errorf("vAngle = %v, right thruster must rotate counter-clockwise", obs[5])
	}
}

func TestLanderSafeLanding(t *testing.T) {
	l := NewLander(4)
	l.Reset()
	// Just above the pad, slow, upright: the next coast step touches down.
	l.SetState(0.05, 0.01, 0, -0.2, 0, 0)
	_, reward, done := l.Step(0)
	if !done {
		t.Fatal("touchdown must end the episode")
	}
	if !l.Landed() {
		t.Fatal("slow upright pad touchdown must be safe")
	}
	if reward < 50 {
		t.Errorf("safe landing reward = %v", reward)
	}
}

func TestLanderCrash(t *testing.T) {
	l := NewLander(5)
	l.Reset()
	// Fast descent: crash.
	l.SetState(0, 0.01, 0, -3, 0, 0)
	_, reward, done := l.Step(0)
	if !done || l.Landed() {
		t.Fatal("fast touchdown must crash")
	}
	if reward > -50 {
		t.Errorf("crash reward = %v", reward)
	}
	// Off-pad touchdown: crash even if slow.
	l2 := NewLander(6)
	l2.Reset()
	l2.SetState(1.5, 0.005, 0, -0.1, 0, 0)
	_, _, done = l2.Step(0)
	if !done || l2.Landed() {
		t.Fatal("off-pad touchdown must not count as landed")
	}
}

func TestLanderOutOfBounds(t *testing.T) {
	l := NewLander(7)
	l.Reset()
	l.SetState(1.99, 1.0, 3.0, 0, 0, 0)
	_, reward, done := l.Step(0)
	if !done {
		t.Fatal("flying out of bounds must end the episode")
	}
	if reward > -50 {
		t.Errorf("out-of-bounds reward = %v", reward)
	}
}

func TestLanderShapingRewardsProgress(t *testing.T) {
	l := NewLander(8)
	l.Reset()
	// Hovering far from the pad and drifting toward it: positive shaping.
	l.SetState(1.0, 1.0, -0.5, 0.1, 0, 0)
	_, rTowards, _ := l.Step(0)
	l.SetState(1.0, 1.0, 0.5, 0.1, 0, 0)
	_, rAway, _ := l.Step(0)
	if rTowards <= rAway {
		t.Errorf("shaping: toward pad %v should beat away %v", rTowards, rAway)
	}
}

func TestCliffWalkStartGoal(t *testing.T) {
	c := NewCliffWalk()
	obs := c.Reset()
	if len(obs) != 2 {
		t.Fatal("obs shape")
	}
	if r, col := c.Position(); r != 3 || col != 0 {
		t.Fatalf("start = (%d,%d)", r, col)
	}
	// Safe path: up, 11 rights, down.
	c.Step(0)
	for i := 0; i < 11; i++ {
		if _, _, done := c.Step(1); done {
			t.Fatal("premature termination on the safe path")
		}
	}
	_, reward, done := c.Step(2)
	if !done {
		t.Fatal("goal must end the episode")
	}
	if reward != -1 {
		t.Errorf("goal step reward = %v", reward)
	}
}

func TestCliffWalkCliffTeleports(t *testing.T) {
	c := NewCliffWalk()
	c.Reset()
	_, reward, done := c.Step(1) // step right off the start: into the cliff
	if done {
		t.Fatal("the cliff does not end the episode")
	}
	if reward != -100 {
		t.Errorf("cliff reward = %v", reward)
	}
	if r, col := c.Position(); r != 3 || col != 0 {
		t.Errorf("must teleport to start, got (%d,%d)", r, col)
	}
}

func TestCliffWalkWallsClamp(t *testing.T) {
	c := NewCliffWalk()
	c.Reset()
	c.Step(2) // down from the bottom row: clamped
	if r, col := c.Position(); r != 3 || col != 0 {
		t.Errorf("clamping failed: (%d,%d)", r, col)
	}
	c.Step(3) // left from column 0
	if _, col := c.Position(); col != 0 {
		t.Error("left wall clamp failed")
	}
}

func TestCliffWalkTimeout(t *testing.T) {
	c := NewCliffWalk()
	c.Reset()
	steps := 0
	for {
		_, _, done := c.Step(0) // bump the top wall forever
		steps++
		if done {
			break
		}
	}
	if steps != cwMaxSteps {
		t.Errorf("timeout after %d steps", steps)
	}
}

// Tabular-style sanity: a hand-coded safe policy beats wandering.
func TestCliffWalkSafePathReturn(t *testing.T) {
	c := NewCliffWalk()
	c.Reset()
	total := 0.0
	acts := append(append([]int{0}, repeat(1, 11)...), 2)
	for _, a := range acts {
		_, r, done := c.Step(a)
		total += r
		if done {
			break
		}
	}
	if total != -13 {
		t.Errorf("safe path return = %v, want -13", total)
	}
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
