package env

import (
	"math"

	"oselmrl/internal/rng"
)

// Pendulum is Gym's Pendulum-v1 swing-up task with the continuous torque
// discretized into a small action set, making it usable by the discrete
// Q-learning agents here. The reward is the standard
// -(θ² + 0.1·θ̇² + 0.001·τ²), which is dense and negative — a very
// different reward landscape from CartPole, exercising the paper's claim
// of applicability to "some other reinforcement tasks".
//
// Observation: [cosθ, sinθ, θ̇]. Actions index into Torques.
type Pendulum struct {
	rng      *rng.RNG
	theta    float64
	thetaDot float64
	steps    int
	done     bool
	// Torques are the discretized torque values; default {-2, 0, +2}.
	Torques []float64
}

const (
	pdMaxSpeed  = 8.0
	pdMaxTorque = 2.0
	pdDT        = 0.05
	pdGravity   = 10.0
	pdMass      = 1.0
	pdLength    = 1.0
	pdMaxSteps  = 200
)

// NewPendulum returns a seeded discrete-torque Pendulum.
func NewPendulum(seed uint64) *Pendulum {
	return &Pendulum{
		rng:     rng.New(seed),
		Torques: []float64{-pdMaxTorque, 0, pdMaxTorque},
	}
}

// Name implements Env.
func (p *Pendulum) Name() string { return "Pendulum-v1-discrete" }

// ObservationSize implements Env.
func (p *Pendulum) ObservationSize() int { return 3 }

// ActionCount implements Env.
func (p *Pendulum) ActionCount() int { return len(p.Torques) }

// MaxSteps implements Env.
func (p *Pendulum) MaxSteps() int { return pdMaxSteps }

// Reset implements Env: θ ~ Uniform(-π, π), θ̇ ~ Uniform(-1, 1).
func (p *Pendulum) Reset() []float64 {
	p.theta = p.rng.Uniform(-math.Pi, math.Pi)
	p.thetaDot = p.rng.Uniform(-1, 1)
	p.steps = 0
	p.done = false
	return p.obs()
}

func (p *Pendulum) obs() []float64 {
	return []float64{math.Cos(p.theta), math.Sin(p.theta), p.thetaDot}
}

// Step implements Env with Gym's semi-implicit Euler dynamics.
func (p *Pendulum) Step(action int) ([]float64, float64, bool) {
	if p.done {
		return p.obs(), 0, true
	}
	if action < 0 || action >= len(p.Torques) {
		panic("env: Pendulum action out of range")
	}
	u := clamp(p.Torques[action], -pdMaxTorque, pdMaxTorque)

	thetaNorm := wrapAngle(p.theta)
	cost := thetaNorm*thetaNorm + 0.1*p.thetaDot*p.thetaDot + 0.001*u*u

	g, m, l := pdGravity, pdMass, pdLength
	newThetaDot := p.thetaDot +
		(3*g/(2*l)*math.Sin(p.theta)+3.0/(m*l*l)*u)*pdDT
	newThetaDot = clamp(newThetaDot, -pdMaxSpeed, pdMaxSpeed)
	p.theta += newThetaDot * pdDT
	p.thetaDot = newThetaDot
	p.steps++
	p.done = p.steps >= pdMaxSteps
	return p.obs(), -cost, p.done
}

// ObservationBounds implements BoundsReporter.
func (p *Pendulum) ObservationBounds() (low, high []float64) {
	return []float64{-1, -1, -pdMaxSpeed}, []float64{1, 1, pdMaxSpeed}
}
