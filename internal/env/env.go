// Package env re-implements the reinforcement-learning environments the
// paper evaluates on. The paper uses OpenAI Gym's CartPole-v0; Gym is a
// Python library, so the substitution here (per DESIGN.md §2) is a
// line-by-line port of the classic-control physics with the same constants,
// integrator, termination bounds and reset distribution. Extra environments
// (MountainCar, Acrobot, GridWorld, discrete Pendulum) cover the paper's
// stated future work of "some other reinforcement tasks".
package env

import "oselmrl/internal/rng"

// Env is a discrete-action episodic environment. Implementations own their
// random state (seeded at construction) so trials are reproducible.
type Env interface {
	// Name identifies the environment, e.g. "CartPole-v0".
	Name() string
	// ObservationSize is the dimension of the observation vector.
	ObservationSize() int
	// ActionCount is the number of discrete actions.
	ActionCount() int
	// MaxSteps is the episode step cap (termination with success).
	MaxSteps() int
	// Reset starts a new episode and returns the initial observation.
	Reset() []float64
	// Step applies the action and returns the next observation, the raw
	// environment reward, and whether the episode terminated.
	Step(action int) (obs []float64, reward float64, done bool)
}

// BoundsReporter is implemented by environments that can describe their
// observation-space bounds (used to validate paper Table 2).
type BoundsReporter interface {
	// ObservationBounds returns per-dimension (low, high) bounds; infinities
	// mark unbounded dimensions.
	ObservationBounds() (low, high []float64)
}

// RewardMode selects how a wrapper reshapes raw environment rewards into
// the [-1, 1] convention the paper's Q-value clipping assumes (§3.1:
// "the maximum reward given by the environment is 1 and the minimum reward
// is -1").
type RewardMode int

const (
	// RewardRaw passes environment rewards through unchanged.
	RewardRaw RewardMode = iota
	// RewardTerminal gives 0 every step, +1 when the episode reaches the
	// step cap (success) and -1 when it terminates early (failure). This is
	// the scheme used for CartPole in the authors' related on-device
	// learning implementations and is what makes the clipped targets
	// informative.
	RewardTerminal
	// RewardPerStepClipped clips the raw per-step reward into [-1, 1].
	RewardPerStepClipped
	// RewardSurvival passes the environment's +1-per-step reward through
	// but replaces the reward of a *failing* terminal step with -1. This
	// matches §3.1's framing most directly ("the maximum reward given by
	// the environment is 1 and the minimum reward is -1"): CartPole's raw
	// reward is +1 every step, and failure is the -1 event. Under the
	// paper's Q-value clipping the targets then saturate at +1 in safe
	// regions and dip toward -1 near failure, giving the decisive action
	// gap the OS-ELM Q-networks learn from.
	RewardSurvival
)

// Shaped wraps an Env with a RewardMode. The underlying episode dynamics
// are untouched; only the reward channel changes.
type Shaped struct {
	Inner Env
	Mode  RewardMode
	steps int
}

// NewShaped wraps inner with the given reward mode.
func NewShaped(inner Env, mode RewardMode) *Shaped {
	return &Shaped{Inner: inner, Mode: mode}
}

// Name implements Env.
func (s *Shaped) Name() string { return s.Inner.Name() }

// ObservationSize implements Env.
func (s *Shaped) ObservationSize() int { return s.Inner.ObservationSize() }

// ActionCount implements Env.
func (s *Shaped) ActionCount() int { return s.Inner.ActionCount() }

// MaxSteps implements Env.
func (s *Shaped) MaxSteps() int { return s.Inner.MaxSteps() }

// Reset implements Env.
func (s *Shaped) Reset() []float64 {
	s.steps = 0
	return s.Inner.Reset()
}

// Step implements Env, reshaping the reward per the mode.
func (s *Shaped) Step(action int) ([]float64, float64, bool) {
	obs, r, done := s.Inner.Step(action)
	s.steps++
	switch s.Mode {
	case RewardTerminal:
		switch {
		case done && s.steps >= s.Inner.MaxSteps():
			r = 1 // survived to the cap
		case done:
			r = -1 // failed early
		default:
			r = 0
		}
	case RewardPerStepClipped:
		if r > 1 {
			r = 1
		} else if r < -1 {
			r = -1
		}
	case RewardSurvival:
		if done && s.steps < s.Inner.MaxSteps() {
			r = -1
		}
	}
	return obs, r, done
}

// clampObs truncates observations elementwise; several envs clamp state to
// their bounds after integration exactly as Gym does.
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// uniformState fills a state vector with Uniform(lo, hi) entries.
func uniformState(r *rng.RNG, n int, lo, hi float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.Uniform(lo, hi)
	}
	return s
}
