package env

import (
	"math"
	"testing"
)

func TestPerturbedNoNoisePassesThrough(t *testing.T) {
	inner := NewCartPoleV0(1)
	ref := NewCartPoleV0(1)
	p := NewPerturbed(inner, 2)
	a, b := p.Reset(), ref.Reset()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("zero noise must pass observations through")
		}
	}
	pa, _, _ := p.Step(1)
	ra, _, _ := ref.Step(1)
	for i := range pa {
		if pa[i] != ra[i] {
			t.Fatal("step observations must match without noise")
		}
	}
}

func TestPerturbedNoiseStatistics(t *testing.T) {
	inner := NewGridWorld(3, 3) // deterministic obs
	p := NewPerturbed(inner, 4)
	p.NoiseStd = 0.5
	base := inner.Reset()
	var sum, sq float64
	n := 5000
	for i := 0; i < n; i++ {
		obs := p.noisy(base)
		d := obs[0] - base[0]
		sum += d
		sq += d * d
	}
	mean := sum / float64(n)
	std := math.Sqrt(sq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.03 {
		t.Errorf("noise mean = %v", mean)
	}
	if math.Abs(std-0.5) > 0.03 {
		t.Errorf("noise std = %v want 0.5", std)
	}
}

func TestPerturbedActionFlip(t *testing.T) {
	// With flip probability 1 on a deterministic grid, the walked path
	// diverges from the commanded path almost surely within a few steps.
	g := NewGridWorld(5, 5)
	p := NewPerturbed(g, 6)
	p.ActionFlipProb = 1
	p.Reset()
	diverged := false
	for i := 0; i < 20; i++ {
		before := [2]int{}
		before[0], before[1] = g.Position()
		_, _, done := p.Step(1) // always command "right"
		r, c := g.Position()
		// A flip to up/down/left moves differently than right.
		if !(r == before[0] && c == before[1]+1) {
			diverged = true
			break
		}
		if done {
			break
		}
	}
	if !diverged {
		t.Error("action flips never diverged from the commanded path")
	}
}

func TestPerturbedRewardsUntouched(t *testing.T) {
	p := NewPerturbed(NewMountainCar(7), 8)
	p.NoiseStd = 1
	p.Reset()
	_, r, _ := p.Step(1)
	if r != -1 {
		t.Errorf("reward = %v, must pass through", r)
	}
}

func TestPerturbedMetadata(t *testing.T) {
	inner := NewCartPoleV0(9)
	p := NewPerturbed(inner, 10)
	if p.ObservationSize() != 4 || p.ActionCount() != 2 || p.MaxSteps() != 200 {
		t.Error("metadata must forward")
	}
	if p.Name() != "CartPole-v0+noise" {
		t.Errorf("name = %q", p.Name())
	}
}
