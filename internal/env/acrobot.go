package env

import (
	"math"

	"oselmrl/internal/rng"
)

// Acrobot is Gym's Acrobot-v1: a two-link pendulum actuated only at the
// elbow must swing its tip above a target height. The dynamics follow
// Sutton & Barto's book formulation as implemented in Gym's
// classic_control/acrobot.py, integrated with RK4 over 0.2s steps.
//
// Observation: [cosθ1, sinθ1, cosθ2, sinθ2, θ̇1, θ̇2].
// Actions: 0 = torque -1, 1 = torque 0, 2 = torque +1.
type Acrobot struct {
	rng              *rng.RNG
	theta1           float64
	theta2           float64
	dtheta1, dtheta2 float64
	steps            int
	done             bool
}

const (
	acLinkLength1  = 1.0
	acLinkLength2  = 1.0
	acLinkMass1    = 1.0
	acLinkMass2    = 1.0
	acLinkCOMPos1  = 0.5
	acLinkCOMPos2  = 0.5
	acLinkMOI      = 1.0
	acMaxVel1      = 4 * math.Pi
	acMaxVel2      = 9 * math.Pi
	acDT           = 0.2
	acGravityConst = 9.8
	acMaxSteps     = 500
)

// NewAcrobot returns a seeded Acrobot-v1.
func NewAcrobot(seed uint64) *Acrobot { return &Acrobot{rng: rng.New(seed)} }

// Name implements Env.
func (a *Acrobot) Name() string { return "Acrobot-v1" }

// ObservationSize implements Env.
func (a *Acrobot) ObservationSize() int { return 6 }

// ActionCount implements Env.
func (a *Acrobot) ActionCount() int { return 3 }

// MaxSteps implements Env.
func (a *Acrobot) MaxSteps() int { return acMaxSteps }

// Reset implements Env: all state vars ~ Uniform(-0.1, 0.1).
func (a *Acrobot) Reset() []float64 {
	a.theta1 = a.rng.Uniform(-0.1, 0.1)
	a.theta2 = a.rng.Uniform(-0.1, 0.1)
	a.dtheta1 = a.rng.Uniform(-0.1, 0.1)
	a.dtheta2 = a.rng.Uniform(-0.1, 0.1)
	a.steps = 0
	a.done = false
	return a.obs()
}

func (a *Acrobot) obs() []float64 {
	return []float64{
		math.Cos(a.theta1), math.Sin(a.theta1),
		math.Cos(a.theta2), math.Sin(a.theta2),
		a.dtheta1, a.dtheta2,
	}
}

// dynamics returns the state derivative for RK4. State layout:
// [θ1, θ2, θ̇1, θ̇2]; torque is the applied elbow torque.
func acDynamics(s [4]float64, torque float64) [4]float64 {
	m1, m2 := acLinkMass1, acLinkMass2
	l1 := acLinkLength1
	lc1, lc2 := acLinkCOMPos1, acLinkCOMPos2
	i1, i2 := acLinkMOI, acLinkMOI
	g := acGravityConst
	theta1, theta2, dtheta1, dtheta2 := s[0], s[1], s[2], s[3]

	d1 := m1*lc1*lc1 + m2*(l1*l1+lc2*lc2+2*l1*lc2*math.Cos(theta2)) + i1 + i2
	d2 := m2*(lc2*lc2+l1*lc2*math.Cos(theta2)) + i2
	phi2 := m2 * lc2 * g * math.Cos(theta1+theta2-math.Pi/2)
	phi1 := -m2*l1*lc2*dtheta2*dtheta2*math.Sin(theta2) -
		2*m2*l1*lc2*dtheta2*dtheta1*math.Sin(theta2) +
		(m1*lc1+m2*l1)*g*math.Cos(theta1-math.Pi/2) + phi2

	// "Book" formulation (Gym's default book_or_nips = "book").
	ddtheta2 := (torque + d2/d1*phi1 - m2*l1*lc2*dtheta1*dtheta1*math.Sin(theta2) - phi2) /
		(m2*lc2*lc2 + i2 - d2*d2/d1)
	ddtheta1 := -(d2*ddtheta2 + phi1) / d1
	return [4]float64{dtheta1, dtheta2, ddtheta1, ddtheta2}
}

// rk4 integrates the acrobot state over one env step of acDT seconds.
func acRK4(s [4]float64, torque float64) [4]float64 {
	h := acDT
	k1 := acDynamics(s, torque)
	k2 := acDynamics(addScaled(s, k1, h/2), torque)
	k3 := acDynamics(addScaled(s, k2, h/2), torque)
	k4 := acDynamics(addScaled(s, k3, h), torque)
	var out [4]float64
	for i := range out {
		out[i] = s[i] + h/6*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
	}
	return out
}

func addScaled(s, d [4]float64, h float64) [4]float64 {
	var out [4]float64
	for i := range out {
		out[i] = s[i] + h*d[i]
	}
	return out
}

// wrapAngle maps x into [-π, π).
func wrapAngle(x float64) float64 {
	twoPi := 2 * math.Pi
	x = math.Mod(x+math.Pi, twoPi)
	if x < 0 {
		x += twoPi
	}
	return x - math.Pi
}

// Step implements Env.
func (a *Acrobot) Step(action int) ([]float64, float64, bool) {
	if a.done {
		return a.obs(), 0, true
	}
	if action < 0 || action > 2 {
		panic("env: Acrobot action must be 0, 1 or 2")
	}
	torque := float64(action - 1)
	ns := acRK4([4]float64{a.theta1, a.theta2, a.dtheta1, a.dtheta2}, torque)
	a.theta1 = wrapAngle(ns[0])
	a.theta2 = wrapAngle(ns[1])
	a.dtheta1 = clamp(ns[2], -acMaxVel1, acMaxVel1)
	a.dtheta2 = clamp(ns[3], -acMaxVel2, acMaxVel2)
	a.steps++

	// Terminal when the tip rises above one link length over the pivot.
	reached := -math.Cos(a.theta1)-math.Cos(a.theta2+a.theta1) > 1.0
	a.done = reached || a.steps >= acMaxSteps
	reward := -1.0
	if reached {
		reward = 0
	}
	return a.obs(), reward, a.done
}

// ObservationBounds implements BoundsReporter.
func (a *Acrobot) ObservationBounds() (low, high []float64) {
	high = []float64{1, 1, 1, 1, acMaxVel1, acMaxVel2}
	low = []float64{-1, -1, -1, -1, -acMaxVel1, -acMaxVel2}
	return low, high
}
