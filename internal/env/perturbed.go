package env

import "oselmrl/internal/rng"

// Perturbed wraps an Env and injects Gaussian observation noise and/or
// random action flips. It exists to probe the paper's central stability
// claim (§2.5/§3.3): a network with a bounded Lipschitz constant changes
// its output by at most K·‖Δx‖ under an observation perturbation Δx, so
// the spectrally-normalized designs should degrade gracefully where the
// unregularized OS-ELM's outliers blow up. The robustness ablation bench
// sweeps NoiseStd across design variants.
type Perturbed struct {
	Inner Env
	// NoiseStd is the standard deviation of i.i.d. Gaussian noise added to
	// every observation component (0 = none).
	NoiseStd float64
	// ActionFlipProb replaces the agent's action with a uniformly random
	// one with this probability (actuator fault model).
	ActionFlipProb float64

	rng *rng.RNG
}

// NewPerturbed wraps inner with its own deterministic noise stream.
func NewPerturbed(inner Env, seed uint64) *Perturbed {
	return &Perturbed{Inner: inner, rng: rng.New(seed)}
}

// Name implements Env.
func (p *Perturbed) Name() string { return p.Inner.Name() + "+noise" }

// ObservationSize implements Env.
func (p *Perturbed) ObservationSize() int { return p.Inner.ObservationSize() }

// ActionCount implements Env.
func (p *Perturbed) ActionCount() int { return p.Inner.ActionCount() }

// MaxSteps implements Env.
func (p *Perturbed) MaxSteps() int { return p.Inner.MaxSteps() }

// Reset implements Env.
func (p *Perturbed) Reset() []float64 { return p.noisy(p.Inner.Reset()) }

// Step implements Env: the action may flip, the observation gains noise.
// The underlying dynamics and rewards are untouched — only what the agent
// *sees* is corrupted.
func (p *Perturbed) Step(action int) ([]float64, float64, bool) {
	if p.ActionFlipProb > 0 && p.rng.Float64() < p.ActionFlipProb {
		action = p.rng.Intn(p.Inner.ActionCount())
	}
	obs, r, done := p.Inner.Step(action)
	return p.noisy(obs), r, done
}

func (p *Perturbed) noisy(obs []float64) []float64 {
	if p.NoiseStd <= 0 {
		return obs
	}
	out := make([]float64, len(obs))
	for i, v := range obs {
		out[i] = v + p.rng.Normal(0, p.NoiseStd)
	}
	return out
}
