package env

import (
	"math"

	"oselmrl/internal/rng"
)

// Lander is a simplified 2-D lunar-lander task in the spirit of Gym's
// LunarLander-v2, built for the paper's future-work sweep: a harder
// continuous-state task than CartPole with a 6-D observation and shaped
// rewards. The craft starts above a landing pad at the origin, subject to
// gravity; discrete thrusters steer it to a soft, upright touchdown.
//
// Observation: [x, y, vx, vy, angle, vAngle] (pad-relative units).
// Actions: 0 = coast, 1 = fire left thruster (rotates right, pushes
// right), 2 = fire main engine (thrust along the body axis), 3 = fire
// right thruster.
// Reward: potential-based shaping toward the pad plus fuel costs, +100 on
// a safe landing, -100 on a crash or flying out of bounds.
type Lander struct {
	rng *rng.RNG

	x, y, vx, vy, angle, vAngle float64
	steps                       int
	done                        bool
	landed                      bool
	prevPotential               float64
}

const (
	ldGravity    = -1.0
	ldMainThrust = 2.2
	ldSideThrust = 0.45
	ldSideTorque = 1.6
	ldDT         = 0.05
	ldMaxSteps   = 400
	// Landing tolerances.
	ldPadHalfWidth = 0.3
	ldMaxLandVel   = 0.6
	ldMaxLandAngle = 0.35
	// World bounds.
	ldBoundX = 2.0
	ldBoundY = 2.2
)

// NewLander returns a seeded lander.
func NewLander(seed uint64) *Lander { return &Lander{rng: rng.New(seed)} }

// Name implements Env.
func (l *Lander) Name() string { return "Lander-2D" }

// ObservationSize implements Env.
func (l *Lander) ObservationSize() int { return 6 }

// ActionCount implements Env.
func (l *Lander) ActionCount() int { return 4 }

// MaxSteps implements Env.
func (l *Lander) MaxSteps() int { return ldMaxSteps }

// Reset implements Env: start high above the pad with a random lateral
// offset and drift.
func (l *Lander) Reset() []float64 {
	l.x = l.rng.Uniform(-0.6, 0.6)
	l.y = l.rng.Uniform(1.4, 1.8)
	l.vx = l.rng.Uniform(-0.2, 0.2)
	l.vy = l.rng.Uniform(-0.2, 0)
	l.angle = l.rng.Uniform(-0.1, 0.1)
	l.vAngle = l.rng.Uniform(-0.1, 0.1)
	l.steps = 0
	l.done = false
	l.landed = false
	l.prevPotential = l.potential()
	return l.obs()
}

func (l *Lander) obs() []float64 {
	return []float64{l.x, l.y, l.vx, l.vy, l.angle, l.vAngle}
}

// potential is the shaping function: closer, slower and more upright is
// better. Potential-based shaping keeps the optimal policy unchanged.
func (l *Lander) potential() float64 {
	dist := math.Hypot(l.x, l.y)
	speed := math.Hypot(l.vx, l.vy)
	return -(1.2*dist + 0.6*speed + 0.4*math.Abs(l.angle))
}

// Step implements Env.
func (l *Lander) Step(action int) ([]float64, float64, bool) {
	if l.done {
		return l.obs(), 0, true
	}
	if action < 0 || action > 3 {
		panic("env: Lander action must be in [0,3]")
	}
	fuel := 0.0
	ax, ay, aAngle := 0.0, ldGravity, 0.0
	switch action {
	case 1: // left thruster: pushes craft rightward, rotates clockwise
		ax += ldSideThrust * math.Cos(l.angle)
		ay += ldSideThrust * math.Sin(l.angle)
		aAngle -= ldSideTorque
		fuel = 0.03
	case 2: // main engine: thrust along the body's up axis
		ax += -ldMainThrust * math.Sin(l.angle)
		ay += ldMainThrust * math.Cos(l.angle)
		fuel = 0.1
	case 3: // right thruster
		ax += -ldSideThrust * math.Cos(l.angle)
		ay += -ldSideThrust * math.Sin(l.angle)
		aAngle += ldSideTorque
		fuel = 0.03
	}
	l.vx += ax * ldDT
	l.vy += ay * ldDT
	l.vAngle += aAngle * ldDT
	l.x += l.vx * ldDT
	l.y += l.vy * ldDT
	l.angle += l.vAngle * ldDT
	l.steps++

	// Shaping reward: potential difference minus fuel.
	pot := l.potential()
	reward := (pot - l.prevPotential) - fuel
	l.prevPotential = pot

	switch {
	case l.y <= 0:
		// Touchdown: safe if on the pad, slow, and upright.
		speed := math.Hypot(l.vx, l.vy)
		safe := math.Abs(l.x) <= ldPadHalfWidth && speed <= ldMaxLandVel &&
			math.Abs(l.angle) <= ldMaxLandAngle
		l.done = true
		if safe {
			l.landed = true
			reward += 100
		} else {
			reward -= 100
		}
	case math.Abs(l.x) > ldBoundX || l.y > ldBoundY:
		l.done = true
		reward -= 100
	case l.steps >= ldMaxSteps:
		l.done = true
	}
	return l.obs(), reward, l.done
}

// Landed reports whether the last episode ended in a safe landing.
func (l *Lander) Landed() bool { return l.landed }

// ObservationBounds implements BoundsReporter (loose physical bounds).
func (l *Lander) ObservationBounds() (low, high []float64) {
	inf := math.Inf(1)
	high = []float64{ldBoundX, ldBoundY, inf, inf, inf, inf}
	low = []float64{-ldBoundX, -0.5, -inf, -inf, -inf, -inf}
	return low, high
}

// State exposes the raw pose for tests.
func (l *Lander) State() (x, y, vx, vy, angle, vAngle float64) {
	return l.x, l.y, l.vx, l.vy, l.angle, l.vAngle
}

// SetState overrides the pose (tests).
func (l *Lander) SetState(x, y, vx, vy, angle, vAngle float64) {
	l.x, l.y, l.vx, l.vy, l.angle, l.vAngle = x, y, vx, vy, angle, vAngle
	l.done = false
	l.prevPotential = l.potential()
}

// CliffWalk is Sutton & Barto's cliff-walking gridworld (Example 6.6): a
// 4×12 grid where the bottom row between start and goal is a cliff.
// Stepping into the cliff costs -100 and teleports back to the start;
// every other move costs -1. It is the classic task separating Q-learning
// (optimal, risky path) from SARSA (safe path), used here to exercise the
// tabular reference and the Q-network agents on a sparse-penalty task.
//
// Observation: [row/3, col/11]. Actions: 0 up, 1 right, 2 down, 3 left.
type CliffWalk struct {
	row, col int
	steps    int
	done     bool
}

// NewCliffWalk returns the standard 4×12 cliff world.
func NewCliffWalk() *CliffWalk { return &CliffWalk{} }

const (
	cwRows     = 4
	cwCols     = 12
	cwMaxSteps = 300
)

// Name implements Env.
func (c *CliffWalk) Name() string { return "CliffWalking" }

// ObservationSize implements Env.
func (c *CliffWalk) ObservationSize() int { return 2 }

// ActionCount implements Env.
func (c *CliffWalk) ActionCount() int { return 4 }

// MaxSteps implements Env.
func (c *CliffWalk) MaxSteps() int { return cwMaxSteps }

// Reset implements Env: start at the bottom-left corner.
func (c *CliffWalk) Reset() []float64 {
	c.row, c.col = cwRows-1, 0
	c.steps = 0
	c.done = false
	return c.obs()
}

func (c *CliffWalk) obs() []float64 {
	return []float64{float64(c.row) / (cwRows - 1), float64(c.col) / (cwCols - 1)}
}

// Step implements Env.
func (c *CliffWalk) Step(action int) ([]float64, float64, bool) {
	if c.done {
		return c.obs(), 0, true
	}
	r, col := c.row, c.col
	switch action {
	case 0:
		r--
	case 1:
		col++
	case 2:
		r++
	case 3:
		col--
	default:
		panic("env: CliffWalk action must be in [0,3]")
	}
	if r < 0 {
		r = 0
	}
	if r >= cwRows {
		r = cwRows - 1
	}
	if col < 0 {
		col = 0
	}
	if col >= cwCols {
		col = cwCols - 1
	}
	c.steps++
	reward := -1.0
	switch {
	case r == cwRows-1 && col > 0 && col < cwCols-1:
		// The cliff: big penalty, teleport to start, episode continues.
		reward = -100
		r, col = cwRows-1, 0
	case r == cwRows-1 && col == cwCols-1:
		c.done = true // goal
	}
	if c.steps >= cwMaxSteps {
		c.done = true
	}
	c.row, c.col = r, col
	return c.obs(), reward, c.done
}

// Position returns the current cell (tests).
func (c *CliffWalk) Position() (row, col int) { return c.row, c.col }
