package env

import (
	"math"
	"testing"
	"testing/quick"
)

// TestCartPoleTable2 validates the observation-space bounds the paper
// quotes in Table 2: cart position ±2.4 (termination bound), velocities
// unbounded, pole angle bound 0.418 rad (printed as "41.8°" in the paper).
func TestCartPoleTable2(t *testing.T) {
	c := NewCartPoleV0(1)
	low, high := c.ObservationBounds()
	if len(low) != 4 || len(high) != 4 {
		t.Fatalf("bounds length %d/%d", len(low), len(high))
	}
	if CartPositionLimit != 2.4 {
		t.Errorf("cart position termination bound = %v, Table 2 says 2.4", CartPositionLimit)
	}
	if !math.IsInf(high[1], 1) || !math.IsInf(high[3], 1) {
		t.Error("velocities must be unbounded (Table 2: -inf..inf)")
	}
	// The paper's "41.8°" is 0.418 radians.
	if math.Abs(PoleAngleObsBoundRad-0.418) > 0.001 {
		t.Errorf("pole angle obs bound = %v rad, Table 2 says 0.418", PoleAngleObsBoundRad)
	}
	if high[2] != PoleAngleObsBoundRad || low[2] != -PoleAngleObsBoundRad {
		t.Error("angle bounds not symmetric")
	}
}

func TestCartPoleResetDistribution(t *testing.T) {
	c := NewCartPoleV0(2)
	for i := 0; i < 200; i++ {
		obs := c.Reset()
		if len(obs) != 4 {
			t.Fatalf("obs length %d", len(obs))
		}
		for j, v := range obs {
			if v < -0.05 || v >= 0.05 {
				t.Fatalf("reset state[%d] = %v outside ±0.05", j, v)
			}
		}
	}
}

// TestCartPoleDynamicsExact cross-checks one step against the hand-computed
// Gym update from a known state.
func TestCartPoleDynamicsExact(t *testing.T) {
	c := NewCartPoleV0(3)
	c.Reset()
	c.SetState([4]float64{0.1, 0.2, 0.05, -0.1})

	// Hand computation with force = +10 (action 1):
	// temp = (10 + 0.05*0.01*sin(0.05)) / 1.1
	// thetaacc = (9.8*sin(.05) - cos(.05)*temp) / (0.5*(4/3 - 0.1*cos²(.05)/1.1))
	// xacc = temp - 0.05*thetaacc*cos(.05)/1.1
	sin, cos := math.Sin(0.05), math.Cos(0.05)
	temp := (10 + 0.05*(-0.1)*(-0.1)*sin) / 1.1
	thetaAcc := (9.8*sin - cos*temp) / (0.5 * (4.0/3.0 - 0.1*cos*cos/1.1))
	xAcc := temp - 0.05*thetaAcc*cos/1.1
	wantX := 0.1 + 0.02*0.2
	wantXDot := 0.2 + 0.02*xAcc
	wantTheta := 0.05 + 0.02*(-0.1)
	wantThetaDot := -0.1 + 0.02*thetaAcc

	obs, reward, done := c.Step(1)
	if done {
		t.Fatal("must not terminate from a benign state")
	}
	if reward != 1 {
		t.Errorf("reward = %v, Gym gives +1", reward)
	}
	got := [4]float64{obs[0], obs[1], obs[2], obs[3]}
	want := [4]float64{wantX, wantXDot, wantTheta, wantThetaDot}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("state[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestCartPoleTerminatesOnAngle(t *testing.T) {
	c := NewCartPoleV0(4)
	c.Reset()
	c.SetState([4]float64{0, 0, PoleAngleLimitRad - 0.001, 5}) // falling fast
	_, _, done := c.Step(1)
	if !done {
		t.Error("episode must end when the pole passes 12°")
	}
}

func TestCartPoleTerminatesOnPosition(t *testing.T) {
	c := NewCartPoleV0(5)
	c.Reset()
	c.SetState([4]float64{2.39, 10, 0, 0})
	_, _, done := c.Step(1)
	if !done {
		t.Error("episode must end when the cart passes ±2.4")
	}
}

func TestCartPoleV0StepCap(t *testing.T) {
	c := NewCartPoleV0(6)
	if c.MaxSteps() != 200 {
		t.Fatalf("v0 cap = %d", c.MaxSteps())
	}
	if NewCartPoleV1(6).MaxSteps() != 500 {
		t.Fatal("v1 cap must be 500")
	}
}

// A left-right alternating policy keeps the pole up briefly; verify the cap
// terminates a surviving episode at exactly MaxSteps.
func TestCartPoleCapTerminates(t *testing.T) {
	c := NewCartPoleV0(7)
	c.Reset()
	steps := 0
	for {
		// A crude but effective balancing policy for the test.
		s := c.State()
		action := 0
		if 1.0*s[2]+0.5*s[3] > 0 {
			action = 1
		}
		_, _, done := c.Step(action)
		steps++
		if done {
			break
		}
		if steps > 300 {
			t.Fatal("episode failed to terminate")
		}
	}
	if steps == 200 && c.StepsTaken() != 200 {
		t.Errorf("StepsTaken = %d", c.StepsTaken())
	}
}

func TestCartPoleStepAfterDone(t *testing.T) {
	c := NewCartPoleV0(8)
	c.Reset()
	c.SetState([4]float64{3, 0, 0, 0}) // already out of bounds
	_, _, done := c.Step(0)
	if !done {
		t.Fatal("expected done")
	}
	obs, r, done2 := c.Step(0)
	if !done2 || r != 0 {
		t.Error("stepping a finished episode must be a frozen no-op")
	}
	if len(obs) != 4 {
		t.Error("obs shape")
	}
}

func TestCartPoleInvalidActionPanics(t *testing.T) {
	c := NewCartPoleV0(9)
	c.Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Step(2)
}

func TestCartPoleDeterministicSeeding(t *testing.T) {
	a, b := NewCartPoleV0(42), NewCartPoleV0(42)
	for i := 0; i < 5; i++ {
		oa, ob := a.Reset(), b.Reset()
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatal("same seed must give identical resets")
			}
		}
	}
}

// Property: pushing right (action 1) from the zero state accelerates the
// cart rightward and the pole leftward (reaction), for any small initial
// angle — a physical sanity invariant.
func TestPropertyPushDirection(t *testing.T) {
	f := func(seed uint64) bool {
		c := NewCartPoleV0(seed)
		c.Reset()
		theta := (float64(seed%100)/100 - 0.5) * 0.1
		c.SetState([4]float64{0, 0, theta, 0})
		obs, _, _ := c.Step(1)
		// Velocity must become positive after a rightward push.
		return obs[1] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: energy-free drift — with alternating pushes from rest the cart
// position stays bounded for a while (no NaN/explosion in dynamics).
func TestPropertyDynamicsStayFinite(t *testing.T) {
	f := func(seed uint64) bool {
		c := NewCartPoleV0(seed)
		c.Reset()
		for i := 0; i < 50; i++ {
			obs, _, done := c.Step(i % 2)
			for _, v := range obs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
			if done {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
