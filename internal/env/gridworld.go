package env

import (
	"fmt"

	"oselmrl/internal/rng"
)

// GridWorld is a deterministic N×N navigation task with optional obstacle
// cells: the agent starts in the top-left corner and must reach the
// bottom-right goal. It provides a fully deterministic, quickly solvable
// environment for agent unit tests and the future-work sweep — tabular
// Q-learning solves it, so any correct function-approximation agent must
// solve it too.
//
// Observation: [row/(N-1), col/(N-1)] normalized to [0,1].
// Actions: 0 = up, 1 = right, 2 = down, 3 = left.
// Reward: -0.01 per move, +1 at the goal, -1 when hitting an obstacle
// (episode ends).
type GridWorld struct {
	rng       *rng.RNG
	n         int
	obstacles map[[2]int]bool
	row, col  int
	steps     int
	done      bool
	maxSteps  int
	// randomStart scatters the start cell; default is the fixed corner.
	randomStart bool
}

// NewGridWorld returns an n×n grid world. Obstacles are optional cell
// coordinates; the start (0,0) and goal (n-1,n-1) cells must stay free.
func NewGridWorld(n int, seed uint64, obstacles ...[2]int) *GridWorld {
	if n < 2 {
		panic("env: GridWorld needs n >= 2")
	}
	obs := make(map[[2]int]bool, len(obstacles))
	for _, o := range obstacles {
		if (o == [2]int{0, 0}) || (o == [2]int{n - 1, n - 1}) {
			panic(fmt.Sprintf("env: obstacle %v blocks start or goal", o))
		}
		if o[0] < 0 || o[0] >= n || o[1] < 0 || o[1] >= n {
			panic(fmt.Sprintf("env: obstacle %v outside %dx%d grid", o, n, n))
		}
		obs[o] = true
	}
	return &GridWorld{rng: rng.New(seed), n: n, obstacles: obs, maxSteps: 4 * n * n}
}

// SetRandomStart scatters episode starts over free non-goal cells.
func (g *GridWorld) SetRandomStart(on bool) { g.randomStart = on }

// Name implements Env.
func (g *GridWorld) Name() string { return fmt.Sprintf("GridWorld-%dx%d", g.n, g.n) }

// ObservationSize implements Env.
func (g *GridWorld) ObservationSize() int { return 2 }

// ActionCount implements Env.
func (g *GridWorld) ActionCount() int { return 4 }

// MaxSteps implements Env.
func (g *GridWorld) MaxSteps() int { return g.maxSteps }

// Reset implements Env.
func (g *GridWorld) Reset() []float64 {
	g.row, g.col = 0, 0
	if g.randomStart {
		for {
			r, c := g.rng.Intn(g.n), g.rng.Intn(g.n)
			if !g.obstacles[[2]int{r, c}] && !(r == g.n-1 && c == g.n-1) {
				g.row, g.col = r, c
				break
			}
		}
	}
	g.steps = 0
	g.done = false
	return g.obs()
}

func (g *GridWorld) obs() []float64 {
	d := float64(g.n - 1)
	return []float64{float64(g.row) / d, float64(g.col) / d}
}

// Step implements Env.
func (g *GridWorld) Step(action int) ([]float64, float64, bool) {
	if g.done {
		return g.obs(), 0, true
	}
	r, c := g.row, g.col
	switch action {
	case 0:
		r--
	case 1:
		c++
	case 2:
		r++
	case 3:
		c--
	default:
		panic("env: GridWorld action must be in [0,3]")
	}
	// Moves off the board bounce back (stay in place).
	if r < 0 || r >= g.n || c < 0 || c >= g.n {
		r, c = g.row, g.col
	}
	g.steps++
	reward := -0.01
	switch {
	case g.obstacles[[2]int{r, c}]:
		g.done = true
		reward = -1
	case r == g.n-1 && c == g.n-1:
		g.done = true
		reward = 1
	case g.steps >= g.maxSteps:
		g.done = true
	}
	g.row, g.col = r, c
	return g.obs(), reward, g.done
}

// Position returns the current cell (tests).
func (g *GridWorld) Position() (row, col int) { return g.row, g.col }
