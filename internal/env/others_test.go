package env

import (
	"math"
	"testing"
)

func TestMountainCarReset(t *testing.T) {
	m := NewMountainCar(1)
	for i := 0; i < 100; i++ {
		obs := m.Reset()
		if obs[0] < -0.6 || obs[0] >= -0.4 {
			t.Fatalf("reset position %v outside [-0.6,-0.4)", obs[0])
		}
		if obs[1] != 0 {
			t.Fatalf("reset velocity %v != 0", obs[1])
		}
	}
}

func TestMountainCarDynamicsExact(t *testing.T) {
	m := NewMountainCar(2)
	m.Reset()
	m.pos, m.vel = -0.5, 0
	// Push right: v' = 0 + 1*0.001 - 0.0025*cos(-1.5)
	wantV := 0.001 - 0.0025*math.Cos(3*-0.5)
	obs, r, done := m.Step(2)
	if r != -1 {
		t.Errorf("reward = %v", r)
	}
	if done {
		t.Error("must not terminate")
	}
	if math.Abs(obs[1]-wantV) > 1e-15 {
		t.Errorf("velocity = %v want %v", obs[1], wantV)
	}
	if math.Abs(obs[0]-(-0.5+wantV)) > 1e-15 {
		t.Errorf("position = %v", obs[0])
	}
}

func TestMountainCarGoal(t *testing.T) {
	m := NewMountainCar(3)
	m.Reset()
	m.pos, m.vel = 0.49, 0.07
	_, _, done := m.Step(2)
	if !done || !m.ReachedGoal() {
		t.Error("crossing 0.5 must end the episode at the goal")
	}
}

func TestMountainCarLeftWall(t *testing.T) {
	m := NewMountainCar(4)
	m.Reset()
	m.pos, m.vel = -1.2, -0.05
	m.Step(0)
	if m.vel < 0 {
		t.Error("velocity must zero at the left wall")
	}
	if m.pos < -1.2 {
		t.Error("position clamped at -1.2")
	}
}

func TestMountainCarNeverSolvedByConstantPush(t *testing.T) {
	// A constant rightward push cannot climb the hill: the episode must
	// time out (that is the entire point of the task).
	m := NewMountainCar(5)
	m.Reset()
	steps := 0
	for {
		_, _, done := m.Step(2)
		steps++
		if done {
			break
		}
	}
	if m.ReachedGoal() {
		t.Error("constant push should not reach the goal")
	}
	if steps != mcMaxSteps {
		t.Errorf("timed out after %d steps, want %d", steps, mcMaxSteps)
	}
}

func TestMountainCarOscillationSolves(t *testing.T) {
	// The classic energy-pumping policy (push in the direction of motion)
	// must reach the goal.
	m := NewMountainCar(6)
	m.Reset()
	for {
		action := 0
		if m.vel >= 0 {
			action = 2
		}
		_, _, done := m.Step(action)
		if done {
			break
		}
	}
	if !m.ReachedGoal() {
		t.Error("energy pumping must solve MountainCar")
	}
}

func TestAcrobotReset(t *testing.T) {
	a := NewAcrobot(7)
	obs := a.Reset()
	if len(obs) != 6 {
		t.Fatalf("obs len %d", len(obs))
	}
	// cos/sin components must be consistent.
	if math.Abs(obs[0]*obs[0]+obs[1]*obs[1]-1) > 1e-12 {
		t.Error("cos²+sin² != 1 for link 1")
	}
	if math.Abs(obs[2]*obs[2]+obs[3]*obs[3]-1) > 1e-12 {
		t.Error("cos²+sin² != 1 for link 2")
	}
}

func TestAcrobotVelocityClamped(t *testing.T) {
	a := NewAcrobot(8)
	a.Reset()
	for i := 0; i < 100; i++ {
		obs, _, done := a.Step(2)
		if math.Abs(obs[4]) > acMaxVel1+1e-9 || math.Abs(obs[5]) > acMaxVel2+1e-9 {
			t.Fatalf("velocity out of bounds: %v, %v", obs[4], obs[5])
		}
		if done {
			break
		}
	}
}

func TestAcrobotRewardScheme(t *testing.T) {
	a := NewAcrobot(9)
	a.Reset()
	_, r, done := a.Step(1)
	if done {
		t.Skip("unlucky immediate termination")
	}
	if r != -1 {
		t.Errorf("per-step reward = %v, want -1", r)
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi / 2, math.Pi / 2},
		{math.Pi + 0.1, -math.Pi + 0.1},
		{-math.Pi - 0.1, math.Pi - 0.1},
		{2 * math.Pi, 0},
	}
	for _, c := range cases {
		if got := wrapAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("wrapAngle(%v) = %v want %v", c.in, got, c.want)
		}
	}
}

func TestGridWorldDirectPath(t *testing.T) {
	g := NewGridWorld(4, 10)
	g.Reset()
	// Right 3, down 3 reaches the goal with reward +1 on arrival.
	var lastR float64
	var done bool
	for i := 0; i < 3; i++ {
		_, lastR, done = g.Step(1)
		if done {
			t.Fatal("premature termination")
		}
	}
	for i := 0; i < 3; i++ {
		_, lastR, done = g.Step(2)
	}
	if !done || lastR != 1 {
		t.Errorf("goal not reached: done=%v r=%v", done, lastR)
	}
}

func TestGridWorldObstacle(t *testing.T) {
	g := NewGridWorld(3, 11, [2]int{0, 1})
	g.Reset()
	_, r, done := g.Step(1) // step right into the obstacle
	if !done || r != -1 {
		t.Errorf("obstacle: done=%v r=%v", done, r)
	}
}

func TestGridWorldWallBounce(t *testing.T) {
	g := NewGridWorld(3, 12)
	g.Reset()
	g.Step(0) // up from (0,0) bounces
	if r, c := g.Position(); r != 0 || c != 0 {
		t.Errorf("position after bounce = (%d,%d)", r, c)
	}
}

func TestGridWorldObstacleValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 0}, {2, 2}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("obstacle %v must panic", bad)
				}
			}()
			NewGridWorld(3, 13, bad)
		}()
	}
}

func TestGridWorldRandomStart(t *testing.T) {
	g := NewGridWorld(5, 14)
	g.SetRandomStart(true)
	seen := make(map[[2]int]bool)
	for i := 0; i < 200; i++ {
		g.Reset()
		r, c := g.Position()
		if r == 4 && c == 4 {
			t.Fatal("random start must avoid the goal")
		}
		seen[[2]int{r, c}] = true
	}
	if len(seen) < 10 {
		t.Errorf("random start visited only %d cells", len(seen))
	}
}

func TestPendulumEnergyPumping(t *testing.T) {
	// Applying torque with the direction of motion raises the pendulum's
	// total reward relative to fighting the motion.
	run := func(withMotion bool) float64 {
		p := NewPendulum(15)
		p.Reset()
		// Start hanging straight down at rest so both strategies face the
		// same swing-up problem.
		p.theta, p.thetaDot = math.Pi, 0
		obs := p.obs()
		total := 0.0
		for {
			action := 1
			if withMotion {
				if obs[2] >= 0 {
					action = 2
				} else {
					action = 0
				}
			}
			var r float64
			var done bool
			obs, r, done = p.Step(action)
			total += r
			if done {
				break
			}
		}
		return total
	}
	if run(true) <= run(false) {
		t.Error("energy pumping should beat no torque on average")
	}
}

func TestPendulumRewardNonPositive(t *testing.T) {
	p := NewPendulum(16)
	p.Reset()
	for i := 0; i < 50; i++ {
		_, r, done := p.Step(i % 3)
		if r > 0 {
			t.Fatalf("pendulum reward %v must be <= 0", r)
		}
		if done {
			break
		}
	}
}

func TestPendulumCustomTorques(t *testing.T) {
	p := NewPendulum(17)
	p.Torques = []float64{-2, -1, 0, 1, 2}
	if p.ActionCount() != 5 {
		t.Errorf("ActionCount = %d", p.ActionCount())
	}
	p.Reset()
	p.Step(4)
}

func TestInvalidActionsPanic(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"MountainCar", func() { m := NewMountainCar(1); m.Reset(); m.Step(3) }},
		{"Acrobot", func() { a := NewAcrobot(1); a.Reset(); a.Step(-1) }},
		{"GridWorld", func() { g := NewGridWorld(3, 1); g.Reset(); g.Step(4) }},
		{"Pendulum", func() { p := NewPendulum(1); p.Reset(); p.Step(3) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.f()
		}()
	}
}
