package env

import (
	"math"

	"oselmrl/internal/rng"
)

// CartPole is the inverted-pendulum task the paper evaluates on (§4.1,
// Table 2). The physics constants, semi-implicit-free Euler integrator,
// reset distribution and termination bounds are ported from OpenAI Gym's
// classic_control/cartpole.py, which in turn follows Barto, Sutton &
// Anderson (1983).
//
// Observation: [cart position, cart velocity, pole angle (rad), pole tip
// velocity]. Actions: 0 = push left, 1 = push right.
//
// Paper Table 2 lists the observation-space bounds: cart position ±2.4,
// pole angle "±41.8°". Gym's bound is 0.418 rad (= 2× the 12° termination
// threshold, in radians); the paper prints the radian value with a degree
// sign. Termination uses |x| > 2.4 or |θ| > 12° exactly as Gym does.
type CartPole struct {
	rng   *rng.RNG
	state [4]float64
	steps int
	done  bool

	// maxSteps distinguishes v0 (200) from v1 (500).
	maxSteps int
	version  string
}

// Physical constants (Gym classic_control cartpole.py).
const (
	cpGravity        = 9.8
	cpMassCart       = 1.0
	cpMassPole       = 0.1
	cpTotalMass      = cpMassCart + cpMassPole
	cpLength         = 0.5 // half the pole's length
	cpPoleMassLength = cpMassPole * cpLength
	cpForceMag       = 10.0
	cpTau            = 0.02 // seconds between state updates

	// CartPositionLimit is the termination bound on |x| (paper Table 2).
	CartPositionLimit = 2.4
	// PoleAngleLimitRad is the termination bound on |θ|: 12°.
	PoleAngleLimitRad = 12 * 2 * math.Pi / 360
	// PoleAngleObsBoundRad is the observation-space bound on θ reported in
	// paper Table 2 as "41.8°" — it is 0.418 radians (2× the termination
	// threshold), Gym's observation_space.high[2].
	PoleAngleObsBoundRad = 2 * PoleAngleLimitRad
	// CartPositionObsBound is Gym's observation bound on x (2× threshold).
	CartPositionObsBound = 2 * CartPositionLimit
)

// NewCartPoleV0 returns a CartPole-v0 (200-step cap) seeded deterministically.
func NewCartPoleV0(seed uint64) *CartPole {
	return &CartPole{rng: rng.New(seed), maxSteps: 200, version: "CartPole-v0"}
}

// NewCartPoleV1 returns a CartPole-v1 (500-step cap).
func NewCartPoleV1(seed uint64) *CartPole {
	return &CartPole{rng: rng.New(seed), maxSteps: 500, version: "CartPole-v1"}
}

// Name implements Env.
func (c *CartPole) Name() string { return c.version }

// ObservationSize implements Env.
func (c *CartPole) ObservationSize() int { return 4 }

// ActionCount implements Env.
func (c *CartPole) ActionCount() int { return 2 }

// MaxSteps implements Env.
func (c *CartPole) MaxSteps() int { return c.maxSteps }

// Reset implements Env: all four state variables ~ Uniform(-0.05, 0.05).
func (c *CartPole) Reset() []float64 {
	for i := range c.state {
		c.state[i] = c.rng.Uniform(-0.05, 0.05)
	}
	c.steps = 0
	c.done = false
	return c.obs()
}

func (c *CartPole) obs() []float64 {
	out := make([]float64, 4)
	copy(out, c.state[:])
	return out
}

// Step implements Env with the Gym CartPole dynamics.
func (c *CartPole) Step(action int) ([]float64, float64, bool) {
	if c.done {
		// Stepping a finished episode returns the terminal state, matching
		// Gym's warning-and-freeze behaviour without the warning.
		return c.obs(), 0, true
	}
	if action != 0 && action != 1 {
		panic("env: CartPole action must be 0 or 1")
	}
	x, xDot, theta, thetaDot := c.state[0], c.state[1], c.state[2], c.state[3]

	force := cpForceMag
	if action == 0 {
		force = -cpForceMag
	}
	cosTheta, sinTheta := math.Cos(theta), math.Sin(theta)

	temp := (force + cpPoleMassLength*thetaDot*thetaDot*sinTheta) / cpTotalMass
	thetaAcc := (cpGravity*sinTheta - cosTheta*temp) /
		(cpLength * (4.0/3.0 - cpMassPole*cosTheta*cosTheta/cpTotalMass))
	xAcc := temp - cpPoleMassLength*thetaAcc*cosTheta/cpTotalMass

	// Explicit Euler in Gym's "euler" kinematics mode.
	x += cpTau * xDot
	xDot += cpTau * xAcc
	theta += cpTau * thetaDot
	thetaDot += cpTau * thetaAcc

	c.state = [4]float64{x, xDot, theta, thetaDot}
	c.steps++

	failed := x < -CartPositionLimit || x > CartPositionLimit ||
		theta < -PoleAngleLimitRad || theta > PoleAngleLimitRad
	capped := c.steps >= c.maxSteps
	c.done = failed || capped

	// Gym gives +1 for every step taken, including the terminal one.
	return c.obs(), 1, c.done
}

// ObservationBounds implements BoundsReporter with Gym's observation space,
// which is what paper Table 2 quotes.
func (c *CartPole) ObservationBounds() (low, high []float64) {
	inf := math.Inf(1)
	high = []float64{CartPositionObsBound, inf, PoleAngleObsBoundRad, inf}
	low = []float64{-CartPositionObsBound, -inf, -PoleAngleObsBoundRad, -inf}
	return low, high
}

// SolvedThreshold is the classic CartPole-v0 solve criterion: an average
// return of 195 over 100 consecutive episodes.
const SolvedThreshold = 195.0

// State returns the raw 4-vector (for tests that need exact dynamics).
func (c *CartPole) State() [4]float64 { return c.state }

// SetState overrides the state (tests of specific dynamics trajectories).
func (c *CartPole) SetState(s [4]float64) { c.state = s; c.done = false }

// StepsTaken returns the number of steps in the current episode.
func (c *CartPole) StepsTaken() int { return c.steps }
