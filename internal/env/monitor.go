package env

import "oselmrl/internal/stats"

// Monitor wraps an Env and records per-episode statistics — the analogue
// of Gym's Monitor wrapper. It is transparent to the agent: rewards and
// dynamics pass through unchanged.
type Monitor struct {
	Inner Env

	curSteps  int
	curReturn float64
	started   bool

	// Lengths and Returns hold one entry per completed episode.
	Lengths []float64
	Returns []float64
}

// NewMonitor wraps inner.
func NewMonitor(inner Env) *Monitor { return &Monitor{Inner: inner} }

// Name implements Env.
func (m *Monitor) Name() string { return m.Inner.Name() }

// ObservationSize implements Env.
func (m *Monitor) ObservationSize() int { return m.Inner.ObservationSize() }

// ActionCount implements Env.
func (m *Monitor) ActionCount() int { return m.Inner.ActionCount() }

// MaxSteps implements Env.
func (m *Monitor) MaxSteps() int { return m.Inner.MaxSteps() }

// Reset implements Env. Resetting mid-episode records the truncated
// episode (matching Gym's behaviour of closing the record on reset).
func (m *Monitor) Reset() []float64 {
	if m.started && m.curSteps > 0 {
		m.flush()
	}
	m.started = true
	m.curSteps = 0
	m.curReturn = 0
	return m.Inner.Reset()
}

// Step implements Env.
func (m *Monitor) Step(action int) ([]float64, float64, bool) {
	obs, r, done := m.Inner.Step(action)
	m.curSteps++
	m.curReturn += r
	if done {
		m.flush()
		m.curSteps = 0
		m.curReturn = 0
	}
	return obs, r, done
}

func (m *Monitor) flush() {
	m.Lengths = append(m.Lengths, float64(m.curSteps))
	m.Returns = append(m.Returns, m.curReturn)
}

// Episodes returns the number of completed episodes.
func (m *Monitor) Episodes() int { return len(m.Lengths) }

// Summary returns the descriptive statistics of the completed episodes'
// lengths and returns in one call. With no completed episodes both
// summaries are zero (stats.Summarize's empty-sample convention); an
// episode in progress is not counted until it finishes or a mid-episode
// Reset truncates it.
func (m *Monitor) Summary() (lengths, returns stats.Summary) {
	return stats.Summarize(m.Lengths), stats.Summarize(m.Returns)
}

// LengthStats summarizes episode lengths.
func (m *Monitor) LengthStats() stats.Summary { return stats.Summarize(m.Lengths) }

// ReturnStats summarizes episode returns.
func (m *Monitor) ReturnStats() stats.Summary { return stats.Summarize(m.Returns) }

// RecentMean returns the mean length of the last n episodes (all if fewer).
func (m *Monitor) RecentMean(n int) float64 {
	if len(m.Lengths) == 0 {
		return 0
	}
	if n > len(m.Lengths) {
		n = len(m.Lengths)
	}
	var sum float64
	for _, v := range m.Lengths[len(m.Lengths)-n:] {
		sum += v
	}
	return sum / float64(n)
}
