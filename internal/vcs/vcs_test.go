package vcs

import (
	"regexp"
	"testing"
)

// The test binary may run inside or outside a checkout, so the contract
// under test is "a well-formed SHA or the Unknown sentinel, never empty".
func TestSHAWellFormed(t *testing.T) {
	sha := SHA()
	if sha == Unknown {
		return
	}
	if !regexp.MustCompile(`^[0-9a-f]{40,64}$`).MatchString(sha) {
		t.Fatalf("SHA() = %q, want 40-64 hex chars or %q", sha, Unknown)
	}
}

func TestHeadConsistent(t *testing.T) {
	info := Head()
	if info.SHA == "" {
		t.Fatal("Head().SHA is empty; want a hash or the Unknown sentinel")
	}
	if info.SHA == Unknown && info.Dirty {
		t.Fatal("Head() reports dirty outside a checkout")
	}
}
