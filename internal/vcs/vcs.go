// Package vcs reads the git state of the working tree so run artifacts
// (manifests, bench snapshots, ledger records) can tie results to the
// exact commit that produced them. Every accessor degrades gracefully
// outside a checkout (or without a git binary): the SHA becomes
// "unknown" and the dirty flag false, never an error — provenance is
// best-effort metadata, not a precondition for running experiments.
package vcs

import (
	"os/exec"
	"strings"
)

// Unknown is the SHA reported outside a git checkout.
const Unknown = "unknown"

// Info pins a run to a commit.
type Info struct {
	// SHA is the full HEAD commit hash, or Unknown outside a checkout.
	SHA string `json:"sha"`
	// Dirty reports uncommitted changes in the worktree or index — a
	// dirty SHA still names HEAD, but the run may not be reproducible
	// from it.
	Dirty bool `json:"dirty,omitempty"`
}

// Head returns the current commit and worktree cleanliness.
func Head() Info {
	return Info{SHA: SHA(), Dirty: Dirty()}
}

// SHA returns the current HEAD commit, or Unknown outside a checkout.
func SHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return Unknown
	}
	return strings.TrimSpace(string(out))
}

// Dirty reports whether the worktree or index differs from HEAD. Outside
// a checkout it returns false (there is nothing to be dirty against).
func Dirty() bool {
	out, err := exec.Command("git", "status", "--porcelain").Output()
	if err != nil {
		return false
	}
	return len(strings.TrimSpace(string(out))) > 0
}
