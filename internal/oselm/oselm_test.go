package oselm

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"oselmrl/internal/activation"
	"oselmrl/internal/elm"
	"oselmrl/internal/mat"
	"oselmrl/internal/obs"
	"oselmrl/internal/rng"
)

func newBase(seed uint64, in, hidden, out int) *elm.Model {
	return elm.NewModel(in, hidden, out, activation.Sigmoid, rng.New(seed), elm.DefaultOptions())
}

func randomData(seed uint64, k, in, out int) (*mat.Dense, *mat.Dense) {
	r := rng.New(seed)
	x := mat.Zeros(k, in)
	t := mat.Zeros(k, out)
	r.FillUniform(x.RawData(), -1, 1)
	r.FillUniform(t.RawData(), -1, 1)
	return x, t
}

func TestSeqBeforeInitErrors(t *testing.T) {
	m := New(newBase(1, 2, 8, 1), 0.1)
	if err := m.SeqTrainOne([]float64{1, 2}, []float64{0}); !errors.Is(err, ErrNotInitialized) {
		t.Errorf("expected ErrNotInitialized, got %v", err)
	}
	x, tt := randomData(2, 3, 2, 1)
	if err := m.SeqTrainBatch(x, tt); !errors.Is(err, ErrNotInitialized) {
		t.Errorf("expected ErrNotInitialized, got %v", err)
	}
}

func TestInitTrainMatchesDirectSolve(t *testing.T) {
	base := newBase(3, 3, 12, 1)
	m := New(base, 0.5)
	x, tt := randomData(4, 20, 3, 1)
	if err := m.InitTrain(x, tt); err != nil {
		t.Fatal(err)
	}
	want, err := SolveDirect(base, x, tt, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(m.Beta, want, 1e-8) {
		t.Errorf("init beta != direct solve; max diff %v", mat.Sub(m.Beta, want).MaxAbs())
	}
	if !m.Initialized() {
		t.Error("Initialized must be true")
	}
}

// The central OS-ELM correctness property (paper Eq. 5-8): after an initial
// chunk and a stream of rank-1 sequential updates, β equals the one-shot
// regularized least-squares solution over ALL the data.
func TestSequentialEqualsBatchSolution(t *testing.T) {
	base := newBase(5, 3, 15, 2)
	m := New(base, 0.3)

	xInit, tInit := randomData(6, 20, 3, 2)
	if err := m.InitTrain(xInit, tInit); err != nil {
		t.Fatal(err)
	}
	xSeq, tSeq := randomData(7, 40, 3, 2)
	for i := 0; i < xSeq.Rows(); i++ {
		if err := m.SeqTrainOne(xSeq.Row(i), tSeq.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Ground truth over the concatenated dataset.
	allX := mat.Zeros(60, 3)
	allT := mat.Zeros(60, 2)
	for i := 0; i < 20; i++ {
		allX.SetRow(i, xInit.Row(i))
		allT.SetRow(i, tInit.Row(i))
	}
	for i := 0; i < 40; i++ {
		allX.SetRow(20+i, xSeq.Row(i))
		allT.SetRow(20+i, tSeq.Row(i))
	}
	want, err := SolveDirect(base, allX, allT, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(m.Beta, want, 1e-6) {
		t.Errorf("sequential != batch solution; max diff %v", mat.Sub(m.Beta, want).MaxAbs())
	}
	if m.Updates() != 40 {
		t.Errorf("Updates = %d", m.Updates())
	}
}

// Rank-k sequential updates must agree with rank-1 updates on the same data.
func TestBatchUpdateEqualsRank1Stream(t *testing.T) {
	mk := func() *Model {
		base := newBase(8, 2, 10, 1)
		m := New(base, 0.2)
		xi, ti := randomData(9, 15, 2, 1)
		if err := m.InitTrain(xi, ti); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1 := mk()
	m2 := mk()
	x, tt := randomData(10, 8, 2, 1)
	for i := 0; i < 8; i++ {
		if err := m1.SeqTrainOne(x.Row(i), tt.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m2.SeqTrainBatch(x, tt); err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(m1.Beta, m2.Beta, 1e-7) {
		t.Errorf("rank-1 stream and rank-8 batch disagree; max diff %v",
			mat.Sub(m1.Beta, m2.Beta).MaxAbs())
	}
	if !mat.Equal(m1.P, m2.P, 1e-7) {
		t.Error("P matrices disagree between rank-1 and rank-k paths")
	}
}

func TestInitTrainSingularWithoutDelta(t *testing.T) {
	// A chunk smaller than the hidden size makes H^T H rank-deficient; with
	// delta == 0 the jitter fallback must still produce a finite model.
	base := newBase(11, 2, 20, 1)
	m := New(base, 0)
	x, tt := randomData(12, 5, 2, 1)
	if err := m.InitTrain(x, tt); err != nil {
		t.Fatalf("jitter fallback failed: %v", err)
	}
	if m.Beta.MaxAbs() == 0 || math.IsNaN(m.Beta.MaxAbs()) {
		t.Error("beta must be finite and nonzero")
	}
}

func TestInitTrainShapeErrors(t *testing.T) {
	m := New(newBase(13, 3, 8, 1), 0.1)
	x := mat.Zeros(5, 3)
	if err := m.InitTrain(x, mat.Zeros(4, 1)); err == nil {
		t.Error("expected row-mismatch error")
	}
	if err := m.InitTrain(x, mat.Zeros(5, 3)); err == nil {
		t.Error("expected output-width error")
	}
}

func TestSeqTrainOneLengthError(t *testing.T) {
	m := New(newBase(14, 2, 8, 1), 0.1)
	x, tt := randomData(15, 10, 2, 1)
	if err := m.InitTrain(x, tt); err != nil {
		t.Fatal(err)
	}
	if err := m.SeqTrainOne([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("expected target-length error")
	}
}

// P must stay symmetric positive-definite through many updates — the
// numerical invariant the FPGA core also relies on.
func TestPStaysSymmetricPositive(t *testing.T) {
	base := newBase(16, 3, 12, 1)
	m := New(base, 0.5)
	xi, ti := randomData(17, 15, 3, 1)
	if err := m.InitTrain(xi, ti); err != nil {
		t.Fatal(err)
	}
	r := rng.New(18)
	for i := 0; i < 2000; i++ {
		x := make([]float64, 3)
		r.FillUniform(x, -1, 1)
		if err := m.SeqTrainOne(x, []float64{r.Uniform(-1, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	n := m.P.Rows()
	for i := 0; i < n; i++ {
		if m.P.At(i, i) <= 0 {
			t.Fatalf("P diagonal %d = %v not positive", i, m.P.At(i, i))
		}
		for j := i + 1; j < n; j++ {
			if math.Abs(m.P.At(i, j)-m.P.At(j, i)) > 1e-8 {
				t.Fatalf("P asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

// The gain denominator 1 + hPh must stay >= some positive floor: P is PSD
// so hPh >= 0 in exact arithmetic.
func TestGainDenominatorPositive(t *testing.T) {
	base := newBase(19, 2, 10, 1)
	m := New(base, 1.0)
	xi, ti := randomData(20, 12, 2, 1)
	if err := m.InitTrain(xi, ti); err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	for i := 0; i < 500; i++ {
		x := make([]float64, 2)
		r.FillUniform(x, -2, 2)
		if err := m.SeqTrainOne(x, []float64{r.Uniform(-1, 1)}); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
}

// Sequential training must reduce the prediction error on the point it just
// trained on (RLS moves toward the target).
func TestSeqTrainReducesPointError(t *testing.T) {
	base := newBase(22, 2, 10, 1)
	m := New(base, 0.5)
	xi, ti := randomData(23, 12, 2, 1)
	if err := m.InitTrain(xi, ti); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.4}
	target := 0.8
	before := math.Abs(m.PredictOne(x)[0] - target)
	if err := m.SeqTrainOne(x, []float64{target}); err != nil {
		t.Fatal(err)
	}
	after := math.Abs(m.PredictOne(x)[0] - target)
	if after >= before {
		t.Errorf("error did not decrease: %v -> %v", before, after)
	}
}

func TestCloneAndCopyState(t *testing.T) {
	base := newBase(24, 2, 8, 1)
	m := New(base, 0.5)
	xi, ti := randomData(25, 10, 2, 1)
	if err := m.InitTrain(xi, ti); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if !mat.Equal(m.P, c.P, 0) || !mat.Equal(m.Beta, c.Beta, 0) {
		t.Fatal("clone state mismatch")
	}
	// Diverge the clone, then copy back.
	if err := c.SeqTrainOne([]float64{0.1, 0.2}, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	if mat.Equal(m.Beta, c.Beta, 1e-15) {
		t.Fatal("clone should have diverged")
	}
	m.CopyStateFrom(c)
	if !mat.Equal(m.Beta, c.Beta, 0) || !mat.Equal(m.P, c.P, 0) {
		t.Fatal("CopyStateFrom mismatch")
	}
}

// Property: for arbitrary seeds, the sequential solution converges to the
// direct regularized least-squares solution.
func TestPropertySequentialConvergence(t *testing.T) {
	f := func(seed uint64) bool {
		base := elm.NewModel(2, 8, 1, activation.Sigmoid, rng.New(seed), elm.DefaultOptions())
		m := New(base, 0.4)
		r := rng.New(seed + 1)
		k1, k2 := 10, 15
		x := mat.Zeros(k1+k2, 2)
		tt := mat.Zeros(k1+k2, 1)
		r.FillUniform(x.RawData(), -1, 1)
		r.FillUniform(tt.RawData(), -1, 1)
		xi := mat.Zeros(k1, 2)
		ti := mat.Zeros(k1, 1)
		for i := 0; i < k1; i++ {
			xi.SetRow(i, x.Row(i))
			ti.SetRow(i, tt.Row(i))
		}
		if err := m.InitTrain(xi, ti); err != nil {
			return false
		}
		for i := k1; i < k1+k2; i++ {
			if err := m.SeqTrainOne(x.Row(i), tt.Row(i)); err != nil {
				return false
			}
		}
		want, err := SolveDirect(base, x, tt, 0.4)
		if err != nil {
			return false
		}
		return mat.Equal(m.Beta, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// OS-ELM as an online regressor: learn sin(x) incrementally — the
// supervised substrate use-case (Tsukada et al.).
func TestOnlineRegressionSine(t *testing.T) {
	base := elm.NewModel(1, 40, 1, activation.Sigmoid, rng.New(30), elm.DefaultOptions())
	m := New(base, 0.01)
	r := rng.New(31)
	k := 40
	xi := mat.Zeros(k, 1)
	ti := mat.Zeros(k, 1)
	for i := 0; i < k; i++ {
		v := r.Uniform(-math.Pi, math.Pi)
		xi.Set(i, 0, v)
		ti.Set(i, 0, math.Sin(v))
	}
	if err := m.InitTrain(xi, ti); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		v := r.Uniform(-math.Pi, math.Pi)
		if err := m.SeqTrainOne([]float64{v}, []float64{math.Sin(v)}); err != nil {
			t.Fatal(err)
		}
	}
	var worst float64
	for i := 0; i < 50; i++ {
		v := r.Uniform(-math.Pi, math.Pi)
		if d := math.Abs(m.PredictOne([]float64{v})[0] - math.Sin(v)); d > worst {
			worst = d
		}
	}
	if worst > 0.08 {
		t.Errorf("online sine regression max error %v", worst)
	}
}

func TestRestore(t *testing.T) {
	base := newBase(60, 3, 10, 1)
	// Valid restore with P.
	p := mat.Eye(10)
	m, err := Restore(base, p, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Initialized() || m.Updates() != 7 || m.Delta != 0.5 {
		t.Error("restored state wrong")
	}
	// Restored model accepts sequential updates.
	if err := m.SeqTrainOne([]float64{1, 2, 3}, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	// Nil P restores untrained.
	m2, err := Restore(newBase(61, 3, 10, 1), nil, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Initialized() {
		t.Error("nil P must restore untrained")
	}
	// Dimension mismatch rejected.
	if _, err := Restore(newBase(62, 3, 10, 1), mat.Eye(5), 0.5, 0); err == nil {
		t.Error("mismatched P must be rejected")
	}
}

func TestSeqTrainBatchShapeErrors(t *testing.T) {
	base := newBase(63, 3, 8, 1)
	m := New(base, 0.5)
	xi, ti := randomData(64, 10, 3, 1)
	if err := m.InitTrain(xi, ti); err != nil {
		t.Fatal(err)
	}
	if err := m.SeqTrainBatch(mat.Zeros(4, 3), mat.Zeros(5, 1)); err == nil {
		t.Error("row mismatch must fail")
	}
	if err := m.SeqTrainBatch(mat.Zeros(4, 3), mat.Zeros(4, 2)); err == nil {
		t.Error("output-width mismatch must fail")
	}
}

func TestCopyStateFromNilAndResize(t *testing.T) {
	base := newBase(65, 2, 6, 1)
	src := New(base, 0.3)
	xi, ti := randomData(66, 8, 2, 1)
	if err := src.InitTrain(xi, ti); err != nil {
		t.Fatal(err)
	}
	// Destination with nil P: CopyStateFrom must clone it.
	dst := New(newBase(65, 2, 6, 1), 0.3)
	dst.CopyStateFrom(src)
	if !dst.Initialized() || !mat.Equal(dst.P, src.P, 0) {
		t.Fatal("CopyStateFrom with nil destination P failed")
	}
	// Mutating the copy must not touch the source.
	dst.P.Set(0, 0, 99)
	if src.P.At(0, 0) == 99 {
		t.Error("P aliased between models")
	}
}

// The rank-1 sequential update is the system's hot path (it runs on every
// random-update step for the entire training); it must not allocate.
func TestSeqTrainOneDoesNotAllocate(t *testing.T) {
	base := newBase(70, 5, 32, 1)
	m := New(base, 0.5)
	xi, ti := randomData(71, 32, 5, 1)
	if err := m.InitTrain(xi, ti); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.2, 0.3, -0.4, 1}
	y := []float64{0.5}
	if err := m.SeqTrainOne(x, y); err != nil { // warm the scratch buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := m.SeqTrainOne(x, y); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SeqTrainOne allocates %v objects per call; the hot path must be allocation-free", allocs)
	}
}

// Property: for any healthy data, a rank-k SeqTrainBatch agrees with k
// sequential rank-1 updates to tolerance, and the conditioning guard never
// fires. Runs the equivalence across many random draws and batch sizes
// (the guard sits in front of the update, so this also proves the guard
// does not reject well-conditioned updates).
func TestPropertyBatchEqualsRank1Stream(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		k := int(seed%10) + 1
		base1 := newBase(40+seed, 3, 12, 2)
		m1 := New(base1, 0.3)
		m2 := New(base1.Clone(), 0.3)
		xi, ti := randomData(60+seed, 18, 3, 2)
		if err := m1.InitTrain(xi, ti); err != nil {
			t.Fatal(err)
		}
		if err := m2.InitTrain(xi, ti); err != nil {
			t.Fatal(err)
		}
		x, tt := randomData(80+seed, k, 3, 2)
		for i := 0; i < k; i++ {
			if err := m1.SeqTrainOne(x.Row(i), tt.Row(i)); err != nil {
				t.Fatalf("seed %d rank-1 %d: %v", seed, i, err)
			}
		}
		if err := m2.SeqTrainBatch(x, tt); err != nil {
			t.Fatalf("seed %d rank-%d: %v", seed, k, err)
		}
		if !mat.Equal(m1.Beta, m2.Beta, 1e-6) {
			t.Errorf("seed %d k=%d: beta diff %v", seed, k,
				mat.Sub(m1.Beta, m2.Beta).MaxAbs())
		}
		if !mat.Equal(m1.P, m2.P, 1e-6) {
			t.Errorf("seed %d k=%d: P diff %v", seed, k,
				mat.Sub(m1.P, m2.P).MaxAbs())
		}
		if m2.GuardTrips() != 0 {
			t.Errorf("seed %d: guard tripped on healthy data", seed)
		}
	}
}

// guardSink captures emitted events for the guard regression test.
type guardSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *guardSink) Write(ev *obs.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, *ev)
	return nil
}
func (s *guardSink) Close() error { return nil }

// Regression for the PR 8 bugfix: a corrupted (non-positive-definite) P
// must make SeqTrainBatch REJECT the rank-k update — old P/β preserved,
// ErrIllConditioned returned, guard counter bumped, one numeric_alert
// emitted — instead of silently pushing the corruption through Eq. 5.
// Mirrors the PR 5 rank-1 corrupt-P test for the fixed-point core.
func TestSeqTrainBatchGuardRejectsCorruptP(t *testing.T) {
	base := newBase(90, 2, 8, 1)
	m := New(base, 0.5)
	xi, ti := randomData(91, 12, 2, 1)
	if err := m.InitTrain(xi, ti); err != nil {
		t.Fatal(err)
	}
	sink := &guardSink{}
	m.SetObserver(obs.NewEmitter(sink))

	// Poison P: a large negative diagonal destroys positive-definiteness,
	// so K = I + H·P·Hᵀ collapses below the exact-arithmetic floor of I.
	for i := 0; i < m.P.Rows(); i++ {
		m.P.Set(i, i, m.P.At(i, i)-100)
	}
	pBefore := m.P.Clone()
	betaBefore := m.Beta.Clone()
	updatesBefore := m.Updates()

	x, tt := randomData(92, 4, 2, 1)
	err := m.SeqTrainBatch(x, tt)
	if !errors.Is(err, ErrIllConditioned) {
		t.Fatalf("expected ErrIllConditioned, got %v", err)
	}
	if !mat.Equal(m.P, pBefore, 0) {
		t.Error("rejected update must leave P untouched")
	}
	if !mat.Equal(m.Beta, betaBefore, 0) {
		t.Error("rejected update must leave beta untouched")
	}
	if m.Updates() != updatesBefore {
		t.Error("rejected update must not count as an update")
	}
	if m.GuardTrips() != 1 {
		t.Errorf("GuardTrips = %d, want 1", m.GuardTrips())
	}

	// Second trip: counter advances, but the numeric_alert is emitted only
	// on the first trip of the run (same contract as the fixed-point core).
	if err := m.SeqTrainBatch(x, tt); !errors.Is(err, ErrIllConditioned) {
		t.Fatalf("second update: expected ErrIllConditioned, got %v", err)
	}
	if m.GuardTrips() != 2 {
		t.Errorf("GuardTrips = %d, want 2", m.GuardTrips())
	}
	var alerts []obs.Event
	for _, ev := range sink.events {
		if ev.Type == obs.EventNumericAlert {
			alerts = append(alerts, ev)
		}
	}
	if len(alerts) != 1 {
		t.Fatalf("numeric_alert count = %d, want 1", len(alerts))
	}
	if alerts[0].Labels["rule"] != "seq_train_batch_guard" {
		t.Errorf("alert rule = %q", alerts[0].Labels["rule"])
	}
	if alerts[0].Labels["metric"] != obs.MetricBatchGuard {
		t.Errorf("alert metric = %q", alerts[0].Labels["metric"])
	}
	if alerts[0].Data["threshold"] != 0.5 {
		t.Errorf("alert threshold = %v", alerts[0].Data["threshold"])
	}
}
