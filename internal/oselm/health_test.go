package oselm

import (
	"math"
	"testing"

	"oselmrl/internal/activation"
	"oselmrl/internal/elm"
	"oselmrl/internal/mat"
	"oselmrl/internal/rng"
)

func TestHealthSnapshot(t *testing.T) {
	r := rng.New(7)
	base := elm.NewModel(3, 8, 1, activation.ReLU, r, elm.Options{InitLow: -1, InitHigh: 1})
	m := New(base, 0.5)

	// Before initial training: β is zero, P absent.
	h := m.Health()
	if h.BetaNorm != 0 || h.PTrace != 0 || h.PCondProxy != 0 {
		t.Fatalf("untrained health = %+v, want zeros", h)
	}

	x := mat.Zeros(12, 3)
	y := mat.Zeros(12, 1)
	r.FillUniform(x.RawData(), -1, 1)
	r.FillUniform(y.RawData(), -1, 1)
	if err := m.InitTrain(x, y); err != nil {
		t.Fatal(err)
	}
	h = m.Health()
	if h.BetaNorm <= 0 || math.IsNaN(h.BetaNorm) {
		t.Errorf("BetaNorm = %g", h.BetaNorm)
	}
	if got, want := h.BetaNorm, m.Beta.FrobeniusNorm(); got != want {
		t.Errorf("BetaNorm = %g, want %g", got, want)
	}
	if h.BetaSigmaMax <= 0 || h.BetaSigmaMax > h.BetaNorm+1e-9 {
		t.Errorf("BetaSigmaMax = %g outside (0, ‖β‖F]", h.BetaSigmaMax)
	}
	if got, want := h.PTrace, m.GainTrace(); got != want {
		t.Errorf("PTrace = %g, want %g", got, want)
	}
	if h.PCondProxy < 1 || math.IsInf(h.PCondProxy, 0) {
		t.Errorf("PCondProxy = %g, want finite >= 1", h.PCondProxy)
	}

	// A non-positive diagonal entry must report the finite sentinel, not Inf.
	m.P.Set(0, 0, -1e-6)
	if got := m.Health().PCondProxy; got != math.MaxFloat64 {
		t.Errorf("degenerate PCondProxy = %g, want MaxFloat64", got)
	}
}
