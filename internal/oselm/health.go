package oselm

import "math"

// NumericHealth is a point-in-time snapshot of the quantities that drift
// when OS-ELM learning destabilizes (§3.3): β magnitude/spectral norm for
// Lipschitz runaway, and the P matrix's diagonal for loss of adaptation
// capacity or positive-definiteness. The learning-dynamics telemetry
// publishes these as learn_* gauges at every θ2 sync.
type NumericHealth struct {
	// BetaNorm is ‖β‖F, the cheap magnitude signal.
	BetaNorm float64
	// BetaSigmaMax is σmax(β), the Lipschitz factor the watchdog bounds.
	BetaSigmaMax float64
	// PTrace is trace(P)/Ñ — the mean eigenvalue of P (GainTrace); zero
	// before initial training.
	PTrace float64
	// PCondProxy is max|diag(P)| / min|diag(P)|, a free condition-number
	// proxy. A non-positive diagonal entry (P losing positive-definiteness,
	// the classic RLS failure mode) reports math.MaxFloat64 — deliberately
	// finite so the gauge trips a threshold rule, not the NaN/Inf rule.
	// Zero before initial training.
	PCondProxy float64
}

// Health computes the numeric-health snapshot. Cost is one pass over β
// plus a power iteration for σmax and a pass over diag(P) — cheap enough
// to run at every θ2 sync, too costly for every sequential update.
func (m *Model) Health() NumericHealth {
	h := NumericHealth{
		BetaNorm:     m.Beta.FrobeniusNorm(),
		BetaSigmaMax: m.BetaSigmaMax(),
	}
	if m.P == nil {
		return h
	}
	h.PTrace = m.GainTrace()
	minAbs, maxAbs := math.Inf(1), 0.0
	degenerate := false
	for i := 0; i < m.P.Rows(); i++ {
		d := m.P.At(i, i)
		if d <= 0 {
			degenerate = true
		}
		a := math.Abs(d)
		if a < minAbs {
			minAbs = a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	switch {
	case degenerate || minAbs == 0:
		h.PCondProxy = math.MaxFloat64
	default:
		h.PCondProxy = maxAbs / minAbs
	}
	return h
}
