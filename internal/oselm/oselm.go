// Package oselm implements Online Sequential ELM (Liang et al., 2006) and
// its L2-regularized variant ReOS-ELM (Huynh & Won, 2011) as the paper's
// §2.2-2.3 define them:
//
// Initial training (Eq. 7 / Eq. 8):
//
//	P₀ = (H₀ᵀH₀ + δI)⁻¹        (δ = 0 recovers plain OS-ELM)
//	β₀ = P₀ H₀ᵀ t₀
//
// Sequential training (Eq. 5):
//
//	Pᵢ = Pᵢ₋₁ − Pᵢ₋₁Hᵢᵀ (I + HᵢPᵢ₋₁Hᵢᵀ)⁻¹ HᵢPᵢ₋₁
//	βᵢ = βᵢ₋₁ + PᵢHᵢᵀ (tᵢ − Hᵢβᵢ₋₁)
//
// With the batch size fixed at 1 — the key simplification of [3] that the
// paper adopts — the k×k inverse degenerates to a scalar reciprocal, so
// sequential training needs no SVD/QRD core (§2.2: "the pseudo inverse
// operation of k×k matrix ... is replaced with a simple reciprocal
// operation"). SeqTrainOne implements that fast path; SeqTrainBatch keeps
// the general rank-k form for completeness and for cross-checking.
package oselm

import (
	"errors"
	"fmt"

	"oselmrl/internal/elm"
	"oselmrl/internal/mat"
	"oselmrl/internal/obs"
)

// Model is an OS-ELM: an ELM plus the running inverse-covariance matrix P.
type Model struct {
	*elm.Model
	// P is the Ñ×Ñ matrix Pᵢ of Eq. 5-8.
	P *mat.Dense
	// Delta is the L2 regularization parameter δ of Eq. 8 used at initial
	// training; 0 means plain OS-ELM (Eq. 7).
	Delta float64

	initialized bool
	updates     int
	guardTrips  int64
	emitter     *obs.Emitter

	// scratch buffers for the allocation-free rank-1 hot path; lazily
	// sized, never shared between clones.
	scratchH    []float64
	scratchPh   []float64
	scratchPred []float64
}

// ErrNotInitialized is returned by sequential training before InitTrain.
var ErrNotInitialized = errors.New("oselm: sequential training before initial training")

// ErrIllConditioned is returned (wrapped) when a sequential update is
// rejected by the Eq. 5 conditioning guard: the gain system
// K = I + H·P·Hᵀ, which in exact arithmetic is at least I, has lost that
// floor to accumulated rounding in P. The model keeps its previous P and β.
var ErrIllConditioned = errors.New("oselm: ill-conditioned Eq. 5 gain (numerical drift)")

// batchGuardFloor is the minimum Cholesky pivot of K = I + H·P·Hᵀ accepted
// by SeqTrainBatch. Exact arithmetic guarantees every pivot ≥ 1 (each pivot
// bounds the smallest eigenvalue of a Schur complement of K ⪰ I from
// below), so 0.5 only trips on genuine loss of positive-definiteness —
// the same floor the fixed-point core applies to its rank-1 denominator.
const batchGuardFloor = 0.5

// New wraps an ELM model into an OS-ELM with regularization delta.
func New(base *elm.Model, delta float64) *Model {
	return &Model{Model: base, Delta: delta}
}

// Restore rebuilds a trained OS-ELM from persisted state: the base ELM
// (α, b, β already set), the inverse-covariance matrix P (nil for an
// untrained model), the regularization delta and the update count. Used by
// internal/persist when loading snapshots.
func Restore(base *elm.Model, p *mat.Dense, delta float64, updates int) (*Model, error) {
	m := &Model{Model: base, Delta: delta, updates: updates}
	if p != nil {
		if p.Rows() != base.HiddenSize() || p.Cols() != base.HiddenSize() {
			return nil, fmt.Errorf("oselm: restored P is %dx%d, hidden size %d",
				p.Rows(), p.Cols(), base.HiddenSize())
		}
		m.P = p
		m.initialized = true
	}
	return m, nil
}

// Initialized reports whether initial training has completed.
func (m *Model) Initialized() bool { return m.initialized }

// GuardTrips returns how many sequential updates the Eq. 5 conditioning
// guard has rejected since the last initial training.
func (m *Model) GuardTrips() int64 { return m.guardTrips }

// SetObserver attaches an emitter so guard trips surface as the same
// numeric_alert family the fixed-point core emits (first trip only) plus a
// learn_batch_guard_trips counter. A nil emitter (the default) is silent.
func (m *Model) SetObserver(e *obs.Emitter) { m.emitter = e }

// tripGuard records one rejected update: P is re-symmetrized (the cheap
// repair available without refactoring), the trip counter bumps, and the
// first trip of the run emits a numeric_alert mirroring the rank-1
// seq_train_denom_guard alert of the fixed-point core.
func (m *Model) tripGuard(k int, minPivot float64) error {
	m.P.Symmetrize()
	m.guardTrips++
	m.emitter.Inc(obs.MetricBatchGuard, 1)
	if m.guardTrips == 1 {
		m.emitter.With(map[string]string{
			"rule":   "seq_train_batch_guard",
			"metric": obs.MetricBatchGuard,
		}).Emit(obs.EventNumericAlert, 0, map[string]float64{
			"value":     minPivot,
			"threshold": batchGuardFloor,
		})
	}
	return fmt.Errorf("%w: rank-%d update rejected, min Cholesky pivot %g < %g",
		ErrIllConditioned, k, minPivot, batchGuardFloor)
}

// Updates returns the number of sequential updates performed since the last
// initial training.
func (m *Model) Updates() int { return m.updates }

// InitTrain performs the initial training of Eq. 7/8 on chunk {x, t}. The
// paper requires the initial chunk to have at least Ñ rows for HᵀH to be
// invertible without regularization; with δ > 0 any chunk size works.
func (m *Model) InitTrain(x, t *mat.Dense) error {
	if t.Rows() != x.Rows() || t.Cols() != m.OutputSize() {
		return fmt.Errorf("oselm: target shape %dx%d does not match inputs %d / outputs %d",
			t.Rows(), t.Cols(), x.Rows(), m.OutputSize())
	}
	h := m.HiddenBatch(x)
	ht := h.T()
	gram := mat.Mul(ht, h)
	if m.Delta > 0 {
		gram = mat.AddScaledIdentity(gram, m.Delta)
	}
	p, err := mat.Inverse(gram)
	if err != nil && m.Delta == 0 {
		// Plain OS-ELM's H₀ᵀH₀ is singular whenever a ReLU hidden unit is
		// dead across the whole chunk. Retry with a vanishing numerical
		// jitter: P becomes enormous along the dead directions, which is
		// exactly the instability of unregularized OS-ELM the paper's L2
		// variant exists to fix — we preserve it rather than mask it.
		const jitter = 1e-8
		p, err = mat.Inverse(mat.AddScaledIdentity(gram, jitter))
	}
	if err != nil {
		return fmt.Errorf("oselm: init training gram inverse (need chunk >= hidden size or delta > 0): %w", err)
	}
	m.P = p.Symmetrize()
	m.Beta = mat.MulT3(m.P, ht, t)
	m.initialized = true
	m.updates = 0
	return nil
}

// SeqTrainOne performs one rank-1 sequential update (Eq. 5 with k = 1):
//
//	h  = G(x·α + b)             (row Ñ-vector)
//	ph = P·hᵀ                   (Ñ-vector)
//	s  = 1 / (1 + h·ph)         (the scalar reciprocal)
//	P  = P − s·ph·phᵀ
//	β  = β + P·hᵀ·(t − h·β)
//
// This is exactly the dataflow the FPGA seq_train module executes.
func (m *Model) SeqTrainOne(x, t []float64) error {
	if !m.initialized {
		return ErrNotInitialized
	}
	if len(t) != m.OutputSize() {
		return fmt.Errorf("oselm: target length %d, model outputs %d", len(t), m.OutputSize())
	}
	n := m.HiddenSize()
	if len(m.scratchH) != n {
		m.scratchH = make([]float64, n)
		m.scratchPh = make([]float64, n)
		m.scratchPred = make([]float64, m.OutputSize())
	}
	h, ph := m.scratchH, m.scratchPh
	m.HiddenOneInto(h, x)

	// ph = P·hᵀ
	mat.MulVecInto(ph, m.P, h)
	// s = 1/(1 + h·P·hᵀ)
	denom := 1 + mat.Dot(h, ph)
	if denom <= 0 {
		// P has lost positive-definiteness to rounding; re-symmetrize and
		// skip rather than blow up. In exact arithmetic denom >= 1.
		m.P.Symmetrize()
		return fmt.Errorf("oselm: non-positive gain denominator %g (numerical drift)", denom)
	}
	s := 1 / denom

	// P ← P − s·ph·phᵀ (symmetric rank-1 downdate).
	pd := m.P.RawData()
	for i := 0; i < n; i++ {
		phi := s * ph[i]
		if phi == 0 {
			continue
		}
		row := pd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] -= phi * ph[j]
		}
	}

	// e = t − h·β ; β ← β + (Pᵢ·hᵀ)·e. By Sherman-Morrison the updated
	// gain is Pᵢ·hᵀ = s·(Pᵢ₋₁·hᵀ) = s·ph, so no second matvec is needed —
	// exactly the dataflow the FPGA seq_train module implements.
	pred := m.scratchPred
	mat.VecMulInto(pred, h, m.Beta)
	bd := m.Beta.RawData()
	mOut := m.OutputSize()
	for i := 0; i < n; i++ {
		g := s * ph[i]
		if g == 0 {
			continue
		}
		for c := 0; c < mOut; c++ {
			bd[i*mOut+c] += g * (t[c] - pred[c])
		}
	}
	m.updates++
	return nil
}

// SeqTrainBatch performs the general rank-k sequential update of Eq. 5,
// requiring a k×k matrix inverse. The paper avoids this path on the FPGA
// (it would need an SVD/QRD core); it is kept for validation: a batch of k
// updates must agree with the recursive least-squares solution.
func (m *Model) SeqTrainBatch(x, t *mat.Dense) error {
	if !m.initialized {
		return ErrNotInitialized
	}
	if t.Rows() != x.Rows() || t.Cols() != m.OutputSize() {
		return fmt.Errorf("oselm: target shape %dx%d does not match inputs %d / outputs %d",
			t.Rows(), t.Cols(), x.Rows(), m.OutputSize())
	}
	h := m.HiddenBatch(x)
	ht := h.T()
	k := h.Rows()

	// K = I + H·P·Hᵀ  (k×k)
	php := mat.MulT3(h, m.P, ht)
	kMat := mat.AddScaledIdentity(php, 1)

	// Eq. 5 conditioning guard, rank-k form of the scalar denominator
	// floor in SeqTrainOne and the fixed-point core: in exact arithmetic
	// K ⪰ I, so every Cholesky pivot is ≥ 1. A failed factorization or a
	// pivot under batchGuardFloor means P has silently lost
	// positive-definiteness and applying the update would corrupt it
	// further — reject, keep the old P/β, and surface the trip.
	l, err := mat.Cholesky(kMat)
	if err != nil {
		return m.tripGuard(k, 0)
	}
	minPivot := l.At(0, 0) * l.At(0, 0)
	for i := 1; i < k; i++ {
		if p := l.At(i, i) * l.At(i, i); p < minPivot {
			minPivot = p
		}
	}
	if minPivot < batchGuardFloor {
		return m.tripGuard(k, minPivot)
	}
	kInv, err := mat.Inverse(kMat)
	if err != nil {
		return fmt.Errorf("oselm: rank-%d gain inverse: %w", k, err)
	}
	// P ← P − P·Hᵀ·K⁻¹·H·P
	pht := mat.Mul(m.P, ht)
	update := mat.MulT3(pht, kInv, mat.Mul(h, m.P))
	m.P = mat.Sub(m.P, update).Symmetrize()

	// β ← β + P·Hᵀ·(t − H·β)
	resid := mat.Sub(t, mat.Mul(h, m.Beta))
	m.Beta = mat.Add(m.Beta, mat.MulT3(m.P, ht, resid))
	m.updates += k
	return nil
}

// SolveDirect computes the exact regularized least-squares β over the full
// accumulated dataset, β = (HᵀH + δI)⁻¹Hᵀt. Tests use it as the ground
// truth the sequential updates must converge to.
func SolveDirect(base *elm.Model, x, t *mat.Dense, delta float64) (*mat.Dense, error) {
	h := base.HiddenBatch(x)
	ht := h.T()
	gram := mat.Mul(ht, h)
	if delta > 0 {
		gram = mat.AddScaledIdentity(gram, delta)
	}
	inv, err := mat.Inverse(gram)
	if err != nil {
		return nil, err
	}
	return mat.MulT3(inv, ht, t), nil
}

// Clone deep-copies the OS-ELM including P (for the θ2 target network).
func (m *Model) Clone() *Model {
	c := &Model{
		Model:       m.Model.Clone(),
		Delta:       m.Delta,
		initialized: m.initialized,
		updates:     m.updates,
		guardTrips:  m.guardTrips,
	}
	if m.P != nil {
		c.P = m.P.Clone()
	}
	return c
}

// CopyStateFrom copies weights and P from src (θ2 ← θ1 sync).
func (m *Model) CopyStateFrom(src *Model) {
	m.Model.CopyWeightsFrom(src.Model)
	if src.P != nil {
		if m.P == nil || m.P.Rows() != src.P.Rows() {
			m.P = src.P.Clone()
		} else {
			m.P.CopyFrom(src.P)
		}
	}
	m.Delta = src.Delta
	m.initialized = src.initialized
	m.updates = src.updates
}
