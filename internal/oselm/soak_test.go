package oselm

import (
	"math"
	"testing"

	"oselmrl/internal/activation"
	"oselmrl/internal/elm"
	"oselmrl/internal/mat"
	"oselmrl/internal/rng"
)

// TestLongHaulNumericalStability soaks the rank-1 update for 50k steps —
// roughly a full CartPole training's worth — and checks the invariants
// that keep the on-device learner healthy for unbounded runtimes:
// no NaN/Inf anywhere, P symmetric positive-definite (every eigenvalue
// positive), and the gain monotonically bounded by the initial one.
func TestLongHaulNumericalStability(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	base := elm.NewModel(5, 24, 1, activation.ReLU, rng.New(99),
		elm.Options{InitLow: -1, InitHigh: 1, SpectralNormalizeAlpha: true})
	m := New(base, 0.5)
	r := rng.New(100)
	x := mat.Zeros(24, 5)
	y := mat.Zeros(24, 1)
	r.FillUniform(x.RawData(), -1, 1)
	r.FillUniform(y.RawData(), -1, 1)
	if err := m.InitTrain(x, y); err != nil {
		t.Fatal(err)
	}
	g0 := m.GainTrace()

	xi := make([]float64, 5)
	for i := 0; i < 50000; i++ {
		r.FillUniform(xi, -2.4, 2.4)
		if err := m.SeqTrainOne(xi, []float64{r.Uniform(-1, 1)}); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if i%10000 == 9999 {
			for _, v := range m.Beta.RawData() {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("step %d: beta contains %v", i, v)
				}
			}
		}
	}
	// P spectrum: strictly positive (SPD held through 50k downdates).
	vals, _, err := mat.SymEigen(m.P)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("P eigenvalue %d = %v after soak", i, v)
		}
	}
	// The mean eigenvalue must have decayed but stayed finite-positive.
	g := m.GainTrace()
	if !(g > 0 && g < g0) {
		t.Errorf("gain trace %v -> %v, want positive decay", g0, g)
	}
	// Predictions stay in a sane range for in-domain inputs: the network
	// fit targets in [-1,1], so with the Lipschitz bound outputs must not
	// be orders of magnitude larger.
	var worst float64
	for i := 0; i < 200; i++ {
		r.FillUniform(xi, -2.4, 2.4)
		p := math.Abs(m.PredictOne(xi)[0])
		if p > worst {
			worst = p
		}
	}
	if worst > 50 {
		t.Errorf("post-soak prediction magnitude %v", worst)
	}
}
