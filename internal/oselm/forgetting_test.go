package oselm

import (
	"math"
	"testing"

	"oselmrl/internal/activation"
	"oselmrl/internal/elm"
	"oselmrl/internal/mat"
	"oselmrl/internal/rng"
)

func TestForgettingLambda1MatchesPlain(t *testing.T) {
	mk := func() *Model {
		base := elm.NewModel(2, 10, 1, activation.Sigmoid, rng.New(40), elm.DefaultOptions())
		m := New(base, 0.3)
		x, tt := randomData(41, 12, 2, 1)
		if err := m.InitTrain(x, tt); err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain, forget := mk(), mk()
	x, tt := randomData(42, 20, 2, 1)
	for i := 0; i < 20; i++ {
		if err := plain.SeqTrainOne(x.Row(i), tt.Row(i)); err != nil {
			t.Fatal(err)
		}
		if err := forget.SeqTrainOneForgetting(x.Row(i), tt.Row(i), 1.0); err != nil {
			t.Fatal(err)
		}
	}
	if !mat.Equal(plain.Beta, forget.Beta, 1e-9) {
		t.Error("lambda=1 must match the plain rank-1 update")
	}
	if !mat.Equal(plain.P, forget.P, 1e-9) {
		t.Error("P matrices differ at lambda=1")
	}
}

func TestForgettingValidation(t *testing.T) {
	base := elm.NewModel(2, 8, 1, activation.Sigmoid, rng.New(43), elm.DefaultOptions())
	m := New(base, 0.3)
	if err := m.SeqTrainOneForgetting([]float64{1, 2}, []float64{0}, 0.9); err == nil {
		t.Error("must fail before init training")
	}
	x, tt := randomData(44, 10, 2, 1)
	if err := m.InitTrain(x, tt); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{0, -0.5, 1.5} {
		if err := m.SeqTrainOneForgetting([]float64{1, 2}, []float64{0}, bad); err == nil {
			t.Errorf("lambda=%v must be rejected", bad)
		}
	}
	if err := m.SeqTrainOneForgetting([]float64{1, 2}, []float64{0, 0}, 0.9); err == nil {
		t.Error("target length mismatch must be rejected")
	}
}

// The headline property: under a drifting target, forgetting tracks while
// plain RLS freezes on the average of old and new regimes.
func TestForgettingTracksDrift(t *testing.T) {
	mk := func() *Model {
		base := elm.NewModel(1, 30, 1, activation.Sigmoid, rng.New(45), elm.DefaultOptions())
		m := New(base, 0.01)
		r := rng.New(46)
		x := mat.Zeros(30, 1)
		y := mat.Zeros(30, 1)
		for i := 0; i < 30; i++ {
			v := r.Uniform(-1, 1)
			x.Set(i, 0, v)
			y.Set(i, 0, math.Sin(3*v))
		}
		if err := m.InitTrain(x, y); err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain, forget := mk(), mk()
	r := rng.New(47)

	// Long stationary phase to collapse the plain model's gain.
	for i := 0; i < 3000; i++ {
		v := r.Uniform(-1, 1)
		y := []float64{math.Sin(3 * v)}
		if err := plain.SeqTrainOne([]float64{v}, y); err != nil {
			t.Fatal(err)
		}
		if err := forget.SeqTrainOneForgetting([]float64{v}, y, 0.995); err != nil {
			t.Fatal(err)
		}
	}
	// The target drifts: sin(3x) -> sin(3x) + 1.
	for i := 0; i < 800; i++ {
		v := r.Uniform(-1, 1)
		y := []float64{math.Sin(3*v) + 1}
		if err := plain.SeqTrainOne([]float64{v}, y); err != nil {
			t.Fatal(err)
		}
		if err := forget.SeqTrainOneForgetting([]float64{v}, y, 0.995); err != nil {
			t.Fatal(err)
		}
	}
	errOf := func(m *Model) float64 {
		var sum float64
		for i := 0; i < 100; i++ {
			v := r.Uniform(-1, 1)
			sum += math.Abs(m.PredictOne([]float64{v})[0] - (math.Sin(3*v) + 1))
		}
		return sum / 100
	}
	pe, fe := errOf(plain), errOf(forget)
	if fe >= pe {
		t.Errorf("forgetting error %v should beat plain RLS %v after drift", fe, pe)
	}
	if fe > 0.1 {
		t.Errorf("forgetting model failed to track: error %v", fe)
	}
}

func TestGainTraceBehaviour(t *testing.T) {
	base := elm.NewModel(1, 12, 1, activation.Sigmoid, rng.New(48), elm.DefaultOptions())
	m := New(base, 0.1)
	if m.GainTrace() != 0 {
		t.Error("GainTrace before init must be 0")
	}
	x, tt := randomData(49, 15, 1, 1)
	if err := m.InitTrain(x, tt); err != nil {
		t.Fatal(err)
	}
	g0 := m.GainTrace()
	if g0 <= 0 {
		t.Fatal("GainTrace must be positive after init")
	}
	r := rng.New(50)
	for i := 0; i < 500; i++ {
		v := r.Uniform(-1, 1)
		if err := m.SeqTrainOne([]float64{v}, []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	// Pure RLS: the gain collapses monotonically.
	if g := m.GainTrace(); g >= g0 {
		t.Errorf("plain RLS gain should shrink: %v -> %v", g0, g)
	}
}

// TestForgettingWindUpSurfacesError: with λ < 1 and non-exciting (fixed)
// inputs, P grows exponentially along the unexcited directions — classic
// RLS estimator wind-up. The update must detect the lost positivity and
// return an error instead of silently producing NaNs.
func TestForgettingWindUpSurfacesError(t *testing.T) {
	base := elm.NewModel(5, 64, 1, activation.ReLU, rng.New(55), elm.DefaultOptions())
	m := New(base, 0.5)
	x, tt := randomData(56, 64, 5, 1)
	if err := m.InitTrain(x, tt); err != nil {
		t.Fatal(err)
	}
	xi := []float64{0.1, -0.2, 0.3, -0.4, 1}
	var windUpErr error
	for i := 0; i < 500000; i++ {
		if err := m.SeqTrainOneForgetting(xi, []float64{0.5}, 0.99); err != nil {
			windUpErr = err
			break
		}
	}
	if windUpErr == nil {
		t.Fatal("wind-up never detected under zero excitation")
	}
	// And the model's parameters are still finite (no NaN leaked).
	for _, v := range m.Beta.RawData() {
		if math.IsNaN(v) {
			t.Fatal("beta contains NaN after wind-up")
		}
	}
}
