package oselm

import (
	"fmt"

	"oselmrl/internal/mat"
)

// SeqTrainOneForgetting performs a rank-1 sequential update with an
// exponential forgetting factor λ ∈ (0, 1] (FOS-ELM; Zhao et al. 2012):
//
//	s  = 1 / (λ + h·P·hᵀ)
//	P  = (P − s·(P·hᵀ)(P·hᵀ)ᵀ) / λ
//	β  = β + P·hᵀ·(t − h·β)
//
// λ = 1 recovers the paper's plain OS-ELM update. λ < 1 geometrically
// down-weights old samples, which counters the learning-rate collapse of
// pure recursive least squares: in reinforcement learning the regression
// targets are non-stationary (they move every time θ2 syncs), so without
// forgetting the gain P·hᵀ shrinks toward zero and the Q-network freezes
// on its early — often wrong — targets. This is an extension beyond the
// paper (its remedy is the §4.3 weight-reset rule); the ablation bench
// compares the two.
//
// Caveat (classic RLS estimator wind-up): with λ < 1, P grows by 1/λ per
// step along directions the input stream does not excite, so the data
// must be persistently exciting — feeding the same (or low-rank) inputs
// for tens of thousands of steps blows P up exponentially until the gain
// denominator loses positivity, at which point this method returns an
// error and the caller should reinitialize (the reset rule covers this in
// the RL setting).
func (m *Model) SeqTrainOneForgetting(x, t []float64, lambda float64) error {
	if !m.initialized {
		return ErrNotInitialized
	}
	if lambda <= 0 || lambda > 1 {
		return fmt.Errorf("oselm: forgetting factor %g outside (0, 1]", lambda)
	}
	if len(t) != m.OutputSize() {
		return fmt.Errorf("oselm: target length %d, model outputs %d", len(t), m.OutputSize())
	}
	h := m.HiddenOne(x)
	n := m.HiddenSize()

	ph := mat.MulVec(m.P, h)
	denom := lambda + mat.Dot(h, ph)
	if denom <= 0 {
		m.P.Symmetrize()
		return fmt.Errorf("oselm: non-positive forgetting gain denominator %g", denom)
	}
	s := 1 / denom
	invLambda := 1 / lambda

	pd := m.P.RawData()
	for i := 0; i < n; i++ {
		phi := s * ph[i]
		row := pd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] = (row[j] - phi*ph[j]) * invLambda
		}
	}

	// β update with the refreshed gain P·hᵀ = s·ph/λ · ... recompute for
	// clarity; the Ñ·Ñ work dominates anyway.
	pred := mat.VecMul(h, m.Beta)
	newPh := mat.MulVec(m.P, h)
	bd := m.Beta.RawData()
	mOut := m.OutputSize()
	for i := 0; i < n; i++ {
		g := newPh[i]
		if g == 0 {
			continue
		}
		for c := 0; c < mOut; c++ {
			bd[i*mOut+c] += g * (t[c] - pred[c])
		}
	}
	m.updates++
	return nil
}

// GainTrace returns trace(P)/Ñ — the mean eigenvalue of P, a cheap proxy
// for the effective learning rate. Pure RLS drives it monotonically to
// zero; forgetting holds it at a floor.
func (m *Model) GainTrace() float64 {
	if m.P == nil {
		return 0
	}
	return m.P.Trace() / float64(m.HiddenSize())
}
